package asagen_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"asagen"
	"asagen/internal/core"
	"asagen/internal/models"
)

// sdkSlowModel backs the facade-level cancellation test: a linear chain
// whose Apply sleeps, registered once for this test binary.
type sdkSlowModel struct {
	states int
}

func (m *sdkSlowModel) Name() string   { return "sdk-slow" }
func (m *sdkSlowModel) Parameter() int { return m.states }
func (m *sdkSlowModel) Components() []core.StateComponent {
	return []core.StateComponent{core.NewIntComponent("i", m.states)}
}
func (m *sdkSlowModel) Messages() []string { return []string{"next"} }
func (m *sdkSlowModel) Start() core.Vector { return core.Vector{0} }

func (m *sdkSlowModel) Apply(v core.Vector, msg string) (core.Effect, bool) {
	if msg != "next" {
		return core.Effect{}, false
	}
	time.Sleep(100 * time.Microsecond)
	if v[0] == m.states {
		return core.Effect{Finished: true}, true
	}
	return core.Effect{Target: core.Vector{v[0] + 1}}, true
}

func (m *sdkSlowModel) DescribeState(core.Vector) []string { return nil }

var registerSlow = sync.OnceFunc(func() {
	models.Register(models.Entry{
		Name:         "sdk-slow",
		Description:  "synthetic slow-generation model for facade cancellation tests",
		ParamName:    "chain length",
		DefaultParam: 8,
		Build:        func(states int) (core.Model, error) { return &sdkSlowModel{states: states}, nil },
	})
})

func TestClientModels(t *testing.T) {
	client := asagen.NewClient()
	infos := client.Models()
	if len(infos) < 4 {
		t.Fatalf("Models() returned %d entries, want at least the 4 built-ins", len(infos))
	}
	byName := make(map[string]asagen.ModelInfo, len(infos))
	for _, m := range infos {
		byName[m.Name] = m
	}
	commit, ok := byName["commit"]
	if !ok {
		t.Fatal("commit model missing")
	}
	if commit.ParamName != "replication factor" || commit.DefaultParam != 4 || !commit.HasEFSM {
		t.Errorf("commit info = %+v", commit)
	}
	if commit.Vocabulary != asagen.VocabularyCommit {
		t.Errorf("commit vocabulary = %q", commit.Vocabulary)
	}
	if len(commit.SweepParams) == 0 {
		t.Error("commit sweep params empty")
	}

	if _, err := client.Model("nonsense"); !errors.Is(err, asagen.ErrUnknownModel) {
		t.Errorf("Model(nonsense) error = %v, want ErrUnknownModel", err)
	} else if !strings.Contains(err.Error(), "known:") {
		t.Errorf("unknown-model error %q does not name the registry", err)
	}
}

func TestClientGenerate(t *testing.T) {
	client := asagen.NewClient()
	ctx := context.Background()
	machine, err := client.Generate(ctx, "commit", asagen.WithParam(4))
	if err != nil {
		t.Fatal(err)
	}
	if machine.ModelName() != "commit" || machine.Parameter() != 4 {
		t.Errorf("machine identity = %s/%d", machine.ModelName(), machine.Parameter())
	}
	st := machine.Stats()
	if st.InitialStates != 512 || st.FinalStates != 33 {
		t.Errorf("stats = %+v, want the paper's 512 -> 33", st)
	}
	if f, ok := machine.FaultTolerance(); !ok || f != 1 {
		t.Errorf("fault tolerance = %d,%v, want 1,true", f, ok)
	}
	if len(machine.Fingerprint()) != 64 {
		t.Errorf("fingerprint %q is not 64 hex chars", machine.Fingerprint())
	}
	if machine.StartState() == "" || len(machine.StateNames()) != 33 {
		t.Errorf("state inventory: start %q, %d names", machine.StartState(), len(machine.StateNames()))
	}

	// Default parameter resolution and memoisation.
	again, err := client.Generate(ctx, "commit")
	if err != nil {
		t.Fatal(err)
	}
	if again.Parameter() != 4 {
		t.Errorf("default parameter = %d, want 4", again.Parameter())
	}
	if st := client.Stats(); st.Generations != 1 {
		t.Errorf("generations = %d, want 1 (memoised)", st.Generations)
	}

	if _, err := client.Generate(ctx, "nonsense"); !errors.Is(err, asagen.ErrUnknownModel) {
		t.Errorf("Generate(nonsense) error = %v, want ErrUnknownModel", err)
	}
	if _, err := client.Generate(ctx, "commit", asagen.WithParam(3)); err == nil {
		t.Error("replication factor 3 accepted")
	}
}

func TestClientGenerateWithoutCache(t *testing.T) {
	client := asagen.NewClient()
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := client.Generate(ctx, "termination", asagen.WithoutCache()); err != nil {
			t.Fatal(err)
		}
	}
	if st := client.Stats(); st.Generations != 0 || st.CachedMachines != 0 {
		t.Errorf("stats = %+v, want uncached generations unrecorded and nothing memoised", st)
	}
}

func TestClientGeneratePerCallOptions(t *testing.T) {
	client := asagen.NewClient()
	ctx := context.Background()
	// The redundant commit reading has pre-merge redundancy, so merging
	// visibly shrinks the machine.
	merged, err := client.Generate(ctx, "commit-redundant")
	if err != nil {
		t.Fatal(err)
	}
	unmerged, err := client.Generate(ctx, "commit-redundant", asagen.WithoutMerging())
	if err != nil {
		t.Fatal(err)
	}
	if merged.Stats().FinalStates >= unmerged.Stats().FinalStates {
		t.Errorf("merged %d states, unmerged %d: merging had no effect",
			merged.Stats().FinalStates, unmerged.Stats().FinalStates)
	}
	if merged.Fingerprint() == unmerged.Fingerprint() {
		t.Error("different generation options produced equal fingerprints")
	}
	// Each behaviour set memoises separately.
	if _, err := client.Generate(ctx, "commit-redundant", asagen.WithoutMerging()); err != nil {
		t.Fatal(err)
	}
	if st := client.Stats(); st.Generations != 2 {
		t.Errorf("generations = %d, want 2 (one per option set)", st.Generations)
	}
}

func TestClientGenerateWorkersShareBytes(t *testing.T) {
	client := asagen.NewClient()
	ctx := context.Background()
	serial, err := client.Generate(ctx, "commit", asagen.WithParam(7))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := client.Generate(ctx, "commit", asagen.WithParam(7), asagen.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if serial.Fingerprint() != parallel.Fingerprint() {
		t.Error("worker count changed the fingerprint")
	}
	a, err := serial.Render("text")
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.Render("text")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Data, b.Data) {
		t.Error("parallel generation rendered differently from serial")
	}
}

func TestClientRender(t *testing.T) {
	client := asagen.NewClient()
	ctx := context.Background()
	res, err := client.Render(ctx, asagen.Request{Model: "commit", Format: "dot"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Param != 4 {
		t.Errorf("param resolved to %d, want the default 4", res.Param)
	}
	if !strings.HasPrefix(string(res.Data), "digraph") {
		t.Errorf("dot artefact starts %q", string(res.Data[:min(20, len(res.Data))]))
	}
	if res.MediaType == "" || res.Ext == "" || len(res.ContentHash) != 64 || res.Fingerprint == "" {
		t.Errorf("result metadata incomplete: %+v", res)
	}
	if !strings.HasPrefix(res.FileName(), "commit-r4.dot.") {
		t.Errorf("FileName = %q", res.FileName())
	}

	// The cached pipeline path and the direct Machine path render
	// identical bytes.
	machine, err := client.Generate(ctx, "commit")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := machine.Render("dot")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Data, res.Data) {
		t.Error("Machine.Render differs from Client.Render")
	}

	if _, err := client.Render(ctx, asagen.Request{Model: "commit", Format: "nonsense"}); !errors.Is(err, asagen.ErrUnknownFormat) {
		t.Errorf("unknown format error = %v, want ErrUnknownFormat", err)
	} else if !strings.Contains(err.Error(), "known:") {
		t.Errorf("unknown-format error %q does not name the registry", err)
	}
	if _, err := client.Render(ctx, asagen.Request{Model: "nonsense", Format: "text"}); !errors.Is(err, asagen.ErrUnknownModel) {
		t.Errorf("unknown model error = %v, want ErrUnknownModel", err)
	}

	// EFSM artefacts flow through the same surface.
	efsm, err := client.Render(ctx, asagen.Request{Model: "termination", Format: "efsm"})
	if err != nil {
		t.Fatal(err)
	}
	if efsm.Fingerprint != "" {
		t.Error("EFSM artefact carries a machine fingerprint")
	}
	if len(efsm.Data) == 0 {
		t.Error("empty EFSM artefact")
	}
}

func TestClientRenderGoPackage(t *testing.T) {
	client := asagen.NewClient()
	machine, err := client.Generate(context.Background(), "commit")
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Render("go", asagen.WithGoPackage("demo"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res.Data), "package demo") {
		t.Error("WithGoPackage did not set the package clause")
	}
	if _, err := machine.Render("efsm"); err == nil {
		t.Error("Machine.Render accepted an EFSM format")
	}
}

func TestClientRenderAllAndStream(t *testing.T) {
	client := asagen.NewClient()
	ctx := context.Background()
	reqs := client.AllRequests()
	if len(reqs) == 0 {
		t.Fatal("empty cross product")
	}

	ordered := make([]asagen.Result, 0, len(reqs))
	for i, res := range client.RenderAll(ctx, reqs) {
		if res.Err != nil {
			t.Fatalf("request %d (%s/%s): %v", i, res.Model, res.Format, res.Err)
		}
		if res.Model != reqs[i].Model || res.Format != reqs[i].Format {
			t.Fatalf("result %d out of order: %s/%s", i, res.Model, res.Format)
		}
		ordered = append(ordered, res)
	}
	if len(ordered) != len(reqs) {
		t.Fatalf("RenderAll yielded %d results for %d requests", len(ordered), len(reqs))
	}

	streamed := 0
	for res := range client.Stream(ctx, reqs) {
		if res.Err != nil {
			t.Fatalf("stream %s/%s: %v", res.Model, res.Format, res.Err)
		}
		streamed++
	}
	if streamed != len(reqs) {
		t.Errorf("Stream yielded %d results, want %d", streamed, len(reqs))
	}

	// Early break must not deadlock or leak (buffered delivery).
	for range client.Stream(ctx, reqs) {
		break
	}

	// One generation per distinct model despite many formats and passes.
	if st, want := client.Stats(), len(client.Models()); int(st.Generations) != want {
		t.Errorf("generations = %d, want one per registered built-in model (%d)", st.Generations, want)
	}
}

func TestClientCancellation(t *testing.T) {
	registerSlow()
	client := asagen.NewClient(asagen.WithGenerateOptions(asagen.WithoutMerging(), asagen.WithoutDescriptions()))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := client.Generate(ctx, "sdk-slow", asagen.WithParam(5000))
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for client.Stats().CacheMisses < 1 {
		if time.Now().After(deadline) {
			t.Fatal("generation did not start within 5s")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Generate error = %v, want context.Canceled", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cancelled Generate did not return promptly")
	}
	st := client.Stats()
	if st.CancelledGenerations != 1 || st.Generations != 0 || st.CachedMachines != 0 {
		t.Errorf("stats = %+v, want one cancellation, nothing completed or cached", st)
	}

	// A fresh context succeeds against the same (uncached) fingerprint.
	if _, err := client.Generate(context.Background(), "sdk-slow", asagen.WithParam(5000)); err != nil {
		t.Fatalf("regeneration after cancellation: %v", err)
	}
}

func TestClientConcurrentSingleGeneration(t *testing.T) {
	client := asagen.NewClient()
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Generate(ctx, "consensus", asagen.WithParam(5)); err != nil {
				t.Errorf("concurrent generate: %v", err)
			}
		}()
	}
	wg.Wait()
	if st := client.Stats(); st.Generations != 1 {
		t.Errorf("generations = %d, want 1 under concurrency", st.Generations)
	}
}

func TestClientStateSpaceOverflow(t *testing.T) {
	client := asagen.NewClient()
	// The commit cross product is 32·r²; a huge r overflows the legacy
	// enumeration path before anything is materialised.
	_, err := client.Generate(context.Background(), "commit",
		asagen.WithParam(800_000_000), asagen.WithoutPruning())
	if !errors.Is(err, asagen.ErrStateSpaceOverflow) {
		t.Fatalf("error = %v, want ErrStateSpaceOverflow", err)
	}
}

func TestClientCacheLimit(t *testing.T) {
	client := asagen.NewClient(asagen.WithCacheLimit(1))
	ctx := context.Background()
	for _, param := range []int{1, 2, 4} {
		if _, err := client.Generate(ctx, "termination", asagen.WithParam(param)); err != nil {
			t.Fatal(err)
		}
	}
	st := client.Stats()
	if st.CachedMachines != 1 {
		t.Errorf("cached machines = %d, want the limit of 1", st.CachedMachines)
	}
	if st.CacheEvictions != 2 {
		t.Errorf("evictions = %d, want 2", st.CacheEvictions)
	}
}

func TestClientPurge(t *testing.T) {
	client := asagen.NewClient()
	ctx := context.Background()
	if _, err := client.Generate(ctx, "commit"); err != nil {
		t.Fatal(err)
	}
	client.Purge()
	if st := client.Stats(); st.CachedMachines != 0 {
		t.Errorf("cached machines after purge = %d", st.CachedMachines)
	}
}

func TestInstanceExecution(t *testing.T) {
	client := asagen.NewClient()
	machine, err := client.Generate(context.Background(), "commit", asagen.WithParam(4))
	if err != nil {
		t.Fatal(err)
	}
	var actions []string
	inst, err := machine.NewInstance(func(a string) { actions = append(actions, a) })
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range []string{"FREE", "UPDATE", "VOTE", "VOTE", "COMMIT", "COMMIT"} {
		if _, err := inst.Deliver(msg); err != nil {
			t.Fatalf("deliver %s: %v", msg, err)
		}
	}
	if !inst.Finished() {
		t.Error("round did not finish")
	}
	if len(actions) == 0 {
		t.Error("no actions dispatched")
	}
	inst.Reset()
	if inst.Finished() {
		t.Error("reset instance still finished")
	}
	if inst.StateName() != machine.StartState() {
		t.Errorf("reset state %q != start %q", inst.StateName(), machine.StartState())
	}
}

// TestScenarioModelsFirstClass pins the scenario expansion: the registry
// serves at least six models, the chord and storage scenarios generate
// through the facade with parameterized redundancy, expose their fault
// tolerance, render in every registered format, and execute through the
// interpreter.
func TestScenarioModelsFirstClass(t *testing.T) {
	client := asagen.NewClient()
	ctx := context.Background()

	infos := client.Models()
	if len(infos) < 6 {
		t.Fatalf("Models() lists %d scenarios, want >= 6", len(infos))
	}
	names := map[string]asagen.ModelInfo{}
	for _, m := range infos {
		names[m.Name] = m
	}
	for _, want := range []string{"chord", "storage"} {
		if _, ok := names[want]; !ok {
			t.Fatalf("Models() missing %q (got %v)", want, infos)
		}
		if !names[want].HasEFSM {
			t.Errorf("model %q declares no EFSM generalisation", want)
		}
	}

	// Redundancy parameter → fault tolerance, per scenario semantics.
	cases := []struct {
		model string
		param int
		wantF int
	}{
		{"chord", 4, 3}, // successor-list length s tolerates s-1 failures
		{"chord", 8, 7},
		{"storage", 4, 1}, // replication factor r tolerates f = (r-1)/3
		{"storage", 13, 4},
	}
	for _, c := range cases {
		machine, err := client.Generate(ctx, c.model, asagen.WithParam(c.param))
		if err != nil {
			t.Fatalf("Generate(%s, %d): %v", c.model, c.param, err)
		}
		f, ok := machine.FaultTolerance()
		if !ok || f != c.wantF {
			t.Errorf("%s r=%d: FaultTolerance() = %d,%v, want %d", c.model, c.param, f, ok, c.wantF)
		}
		if st := machine.Stats(); st.FinalStates == 0 || st.Transitions == 0 {
			t.Errorf("%s r=%d: empty machine (%+v)", c.model, c.param, st)
		}
	}

	// Every registered format renders both scenarios, deterministically.
	for _, model := range []string{"chord", "storage"} {
		for _, format := range client.Formats() {
			first, err := client.Render(ctx, asagen.Request{Model: model, Format: format})
			if err != nil {
				t.Fatalf("Render(%s, %s): %v", model, format, err)
			}
			if len(first.Data) == 0 || first.ContentHash == "" {
				t.Fatalf("Render(%s, %s): empty artefact", model, format)
			}
			again, err := asagen.NewClient().Render(ctx, asagen.Request{Model: model, Format: format})
			if err != nil {
				t.Fatal(err)
			}
			if again.ContentHash != first.ContentHash {
				t.Errorf("Render(%s, %s) not byte-stable across clients", model, format)
			}
		}
	}

	// The generated machines execute through the interpreter: one chord
	// join/stabilize/leave lifecycle, one storage store/fetch round trip.
	chordMachine, err := client.Generate(ctx, "chord", asagen.WithParam(2))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := chordMachine.NewInstance(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range []string{"JOIN", "STABILIZE", "NOTIFY", "SUCC_FAIL", "LEAVE"} {
		if _, err := inst.Deliver(msg); err != nil {
			t.Fatalf("chord deliver %s: %v", msg, err)
		}
	}
	if !inst.Finished() {
		t.Error("chord lifecycle did not finish")
	}

	storageMachine, err := client.Generate(ctx, "storage", asagen.WithParam(4))
	if err != nil {
		t.Fatal(err)
	}
	inst, err = storageMachine.NewInstance(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range []string{"STORE", "STORE_ACK", "STORE_ACK", "STORE_ACK", "FETCH", "FETCH_MISS", "FETCH_OK"} {
		if _, err := inst.Deliver(msg); err != nil {
			t.Fatalf("storage deliver %s: %v", msg, err)
		}
	}
	if !inst.Finished() {
		t.Error("storage round trip did not finish")
	}
}
