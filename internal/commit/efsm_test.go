package commit

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"asagen/internal/core"
)

// TestEFSMNineStates verifies the §5.3 claim: the EFSM formulation of the
// commit protocol contains 9 states, for every replication factor.
func TestEFSMNineStates(t *testing.T) {
	for _, r := range []int{4, 7, 13, 25, 46} {
		efsm, err := GenerateEFSM(context.Background(), r)
		if err != nil {
			t.Fatalf("GenerateEFSM(context.Background(), %d): %v", r, err)
		}
		if got := len(efsm.States); got != 9 {
			t.Errorf("r=%d: EFSM has %d states, want 9: %v", r, got, efsm.StateNames())
		}
	}
}

func TestEFSMStateNames(t *testing.T) {
	efsm, err := GenerateEFSM(context.Background(), 13)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		EFSMWaitingNotFree, EFSMWaitingFree, EFSMUpdateHeldNotFree,
		EFSMChosenVoted, EFSMChosenCommitted, EFSMAdoptedCommitted,
		EFSMForcedCommitted, EFSMForcedCommittedUpdate, core.FinishStateName,
	}
	got := efsm.StateNames()
	sort.Strings(got)
	sort.Strings(want)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("state names = %v, want %v", got, want)
	}
	if efsm.Start.Name != EFSMWaitingNotFree {
		t.Errorf("start = %s, want %s", efsm.Start.Name, EFSMWaitingNotFree)
	}
	if efsm.Finish == nil || !efsm.Finish.Final {
		t.Error("missing finish state")
	}
}

// efsmStructure renders an EFSM's full transition structure with symbolic
// guard bounds, for cross-parameter comparison.
func efsmStructure(e *core.EFSM) string {
	var b strings.Builder
	for _, s := range e.States {
		b.WriteString(s.Name)
		b.WriteString(":\n")
		for _, tr := range s.Transitions {
			b.WriteString("  ")
			b.WriteString(tr.Message)
			b.WriteString(" [")
			b.WriteString(symbolicGuard(tr.Guard))
			b.WriteString("] /")
			for _, op := range tr.VarOps {
				b.WriteString(" ")
				b.WriteString(op.String())
			}
			b.WriteString(" {")
			b.WriteString(strings.Join(tr.Actions, ","))
			b.WriteString("} -> ")
			b.WriteString(tr.Target.Name)
			b.WriteString("\n")
		}
	}
	return b.String()
}

// symbolicGuard renders a guard using only its symbolic bounds, failing
// loudly (via a marker) when a bound has no parameter-independent symbol.
func symbolicGuard(g core.Guard) string {
	if g.Unconditional() {
		return "true"
	}
	lo, hi := g.MinSym, g.MaxSym
	if lo == "" {
		lo = "<literal>"
	}
	if hi == "" {
		hi = "<literal>"
	}
	return g.Variable + ":" + lo + ".." + hi
}

// TestEFSMGenericInReplicationFactor checks that the EFSM generalised from
// machines of different replication factors has the identical symbolic
// structure — the §5.3 property that the EFSM "is generic with respect to
// the replication factor". Factors with f ≥ 3 are compared (below that the
// vote-count ceiling coincides with the vote threshold and some guarded
// transitions degenerate; see DESIGN.md).
func TestEFSMGenericInReplicationFactor(t *testing.T) {
	base, err := GenerateEFSM(context.Background(), 13)
	if err != nil {
		t.Fatal(err)
	}
	baseStruct := efsmStructure(base)
	if strings.Contains(baseStruct, "<literal>") {
		t.Fatalf("base structure contains non-symbolic bounds:\n%s", baseStruct)
	}
	for _, r := range []int{16, 25, 46} {
		e, err := GenerateEFSM(context.Background(), r)
		if err != nil {
			t.Fatalf("GenerateEFSM(context.Background(), %d): %v", r, err)
		}
		if s := efsmStructure(e); s != baseStruct {
			t.Errorf("r=%d: EFSM structure differs from r=13:\n--- r=13:\n%s\n--- r=%d:\n%s", r, baseStruct, r, s)
		}
	}
}

// TestEFSMVsGenericDifferential drives the EFSM instance and the generic
// algorithm with identical random message sequences; observable behaviour
// (actions, finished) must agree at every step.
func TestEFSMVsGenericDifferential(t *testing.T) {
	for _, r := range []int{4, 7, 13} {
		efsm, err := GenerateEFSM(context.Background(), r)
		if err != nil {
			t.Fatalf("GenerateEFSM(context.Background(), %d): %v", r, err)
		}
		for seed := int64(1); seed <= 25; seed++ {
			rng := rand.New(rand.NewSource(seed))
			var genActions []string
			gen, err := NewGeneric(r, func(a string) { genActions = append(genActions, a) })
			if err != nil {
				t.Fatal(err)
			}
			inst, err := core.NewEFSMInstance(efsm)
			if err != nil {
				t.Fatal(err)
			}
			msgs := efsm.Messages
			for step := 0; step < 400; step++ {
				msg := msgs[rng.Intn(len(msgs))]
				genActions = genActions[:0]
				gen.Receive(msg)
				actions, _ := inst.Deliver(msg)
				if !equalStrings(genActions, actions) {
					t.Fatalf("r=%d seed=%d step=%d %s: actions diverge: generic=%v efsm=%v (efsm state %s)",
						r, seed, step, msg, genActions, actions, inst.StateName())
				}
				if gen.Finished() != inst.Finished() {
					t.Fatalf("r=%d seed=%d step=%d %s: finished diverges: generic=%v efsm=%v",
						r, seed, step, msg, gen.Finished(), inst.Finished())
				}
				if gen.Finished() {
					break
				}
			}
		}
	}
}

// TestEFSMVariables checks the counter variable set.
func TestEFSMVariables(t *testing.T) {
	efsm, err := GenerateEFSM(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"votes_received": true, "commits_received": true}
	if len(efsm.Variables) != len(want) {
		t.Fatalf("Variables = %v", efsm.Variables)
	}
	for _, v := range efsm.Variables {
		if !want[v] {
			t.Errorf("unexpected variable %q", v)
		}
	}
}

// TestEFSMHappyPathTrace walks the uncontended commit round on the EFSM and
// checks the state trajectory.
func TestEFSMHappyPathTrace(t *testing.T) {
	efsm, err := GenerateEFSM(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := core.NewEFSMInstance(efsm)
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		msg       string
		wantState string
	}{
		{MsgFree, EFSMWaitingFree},
		{MsgUpdate, EFSMChosenVoted},
		{MsgVote, EFSMChosenVoted},
		{MsgVote, EFSMChosenCommitted},
		{MsgCommit, EFSMChosenCommitted},
		{MsgCommit, core.FinishStateName},
	}
	for i, st := range steps {
		inst.Deliver(st.msg)
		if got := inst.StateName(); got != st.wantState {
			t.Fatalf("step %d (%s): state = %s, want %s", i, st.msg, got, st.wantState)
		}
	}
	if !inst.Finished() {
		t.Error("not finished")
	}
	if got := inst.Var("votes_received"); got != 2 {
		t.Errorf("votes_received = %d, want 2", got)
	}
	if got := inst.Var("commits_received"); got != 2 {
		t.Errorf("commits_received = %d, want 2", got)
	}
}

// TestEFSMGuardStrings spot-checks guard rendering.
func TestEFSMGuardStrings(t *testing.T) {
	g := core.Guard{Variable: "votes_received", Min: 0, Max: 2, MinSym: "0", MaxSym: "vote_threshold-1"}
	if got := g.String(); got != "0 <= votes_received <= vote_threshold-1" {
		t.Errorf("String() = %q", got)
	}
	eq := core.Guard{Variable: "v", Min: 3, Max: 3}
	if got := eq.String(); got != "v == 3" {
		t.Errorf("String() = %q", got)
	}
	var unconditional core.Guard
	if got := unconditional.String(); got != "true" {
		t.Errorf("String() = %q", got)
	}
	if !unconditional.Holds(nil) {
		t.Error("unconditional guard does not hold")
	}
}
