package commit

import (
	"errors"
	"math/rand"
	"os"
	"testing"

	"asagen/internal/commit/commitfsm4"
	"asagen/internal/core"
	"asagen/internal/render"
	"asagen/internal/runtime"
)

// recordingActions adapts the generated package's Actions interface to an
// action trace in the model's "->" vocabulary.
type recordingActions struct {
	trace []string
}

var _ commitfsm4.Actions = (*recordingActions)(nil)

func (a *recordingActions) SendVote()    { a.trace = append(a.trace, ActSendVote) }
func (a *recordingActions) SendCommit()  { a.trace = append(a.trace, ActSendCommit) }
func (a *recordingActions) SendFree()    { a.trace = append(a.trace, ActSendFree) }
func (a *recordingActions) SendNotFree() { a.trace = append(a.trace, ActSendNotFree) }

// TestGeneratedSourceMatchesInterpreter drives the checked-in generated Go
// implementation (internal/commit/commitfsm4, produced by cmd/fsmgen per
// the paper's §4.2 one-off generation policy) and the machine interpreter
// with identical random message sequences, requiring identical states,
// actions and completion at every step. Together with the generic-algorithm
// differential test this establishes the equivalence of all three protocol
// encodings.
func TestGeneratedSourceMatchesInterpreter(t *testing.T) {
	machine := mustGenerate(t, 4, core.WithoutDescriptions())
	for seed := int64(1); seed <= 50; seed++ {
		rng := rand.New(rand.NewSource(seed))

		rec := &recordingActions{}
		genMachine := commitfsm4.New(rec)
		inst, err := runtime.New(machine, nil)
		if err != nil {
			t.Fatal(err)
		}

		for step := 0; step < 300; step++ {
			msg := machine.Messages[rng.Intn(len(machine.Messages))]

			rec.trace = rec.trace[:0]
			if !genMachine.Receive(msg) {
				t.Fatalf("generated machine rejected message %q", msg)
			}

			var fsmActions []string
			if !inst.Finished() {
				acts, err := inst.Deliver(msg)
				var ignored *runtime.IgnoredError
				switch {
				case err == nil:
					fsmActions = acts
				case errors.As(err, &ignored):
				default:
					t.Fatalf("seed=%d step=%d: %v", seed, step, err)
				}
			}

			if !equalStrings(rec.trace, fsmActions) {
				t.Fatalf("seed=%d step=%d %s: actions diverge: generated=%v interpreter=%v",
					seed, step, msg, rec.trace, fsmActions)
			}
			if got, want := genMachine.State().String(), inst.StateName(); got != want {
				t.Fatalf("seed=%d step=%d %s: state diverges: generated=%s interpreter=%s",
					seed, step, msg, got, want)
			}
			if genMachine.Finished() != inst.Finished() {
				t.Fatalf("seed=%d step=%d: finished diverges", seed, step)
			}
			if genMachine.Finished() {
				break
			}
		}
	}
}

// TestGeneratedSourceIsCurrent regenerates the r = 4 source and compares it
// with the checked-in artefact, so the committed code can never drift from
// the abstract model.
func TestGeneratedSourceIsCurrent(t *testing.T) {
	machine := mustGenerate(t, 4)
	src, err := render.NewGoSourceRenderer("commitfsm4").Render(machine)
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	checked := readFile(t, "commitfsm4/machine.go")
	if src.String() != checked {
		t.Error("internal/commit/commitfsm4/machine.go is stale: regenerate with " +
			"`go run ./cmd/fsmgen -r 4 -format go -pkg commitfsm4 -o internal/commit/commitfsm4/machine.go`")
	}
}

// TestGeneratedMachineRejectsUnknownMessage covers the generated dispatch
// default branch.
func TestGeneratedMachineRejectsUnknownMessage(t *testing.T) {
	m := commitfsm4.New(nil)
	if m.Receive("BOGUS") {
		t.Error("unknown message accepted")
	}
	if m.State().String() == "INVALID" {
		t.Error("fresh machine reports invalid state")
	}
	if commitfsm4.StateInvalid.String() != "INVALID" {
		t.Errorf("StateInvalid.String() = %q", commitfsm4.StateInvalid.String())
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(data)
}
