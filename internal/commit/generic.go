package commit

// This file implements the generic (non-FSM) commit algorithm: the paper's
// "one state, many variables" end of the state-machine spectrum (§3.2). It
// is written directly from the protocol description — plain variables and
// dynamic control decisions — and is deliberately independent of the
// abstract model's Apply implementation, so that the differential tests
// comparing it with the generated machines exercise two separate encodings
// of the protocol.

// GenericActionFunc receives the protocol messages the algorithm sends
// ("->vote", "->commit", "->free", "->not free"), in order.
type GenericActionFunc func(action string)

// Generic is the hand-written commit algorithm for one ongoing update at
// one peer-set member, maintaining the seven variables of §3.1 explicitly.
type Generic struct {
	r int
	f int

	updateReceived  bool
	votesReceived   int
	voteSent        bool
	commitsReceived int
	commitSent      bool
	couldChoose     bool
	hasChosen       bool
	finished        bool

	act GenericActionFunc
}

// NewGeneric returns the generic algorithm for replication factor r. A nil
// action function discards outgoing messages.
func NewGeneric(r int, act GenericActionFunc) (*Generic, error) {
	// Parameter validation matches the abstract model's.
	if _, err := NewModel(r); err != nil {
		return nil, err
	}
	if act == nil {
		act = func(string) {}
	}
	return &Generic{r: r, f: (r - 1) / 3, act: act}, nil
}

// Finished reports whether the commit instance has completed.
func (g *Generic) Finished() bool { return g.finished }

// Snapshot returns the current variable values in the state-name encoding
// used by the generated machines ("T/2/F/0/F/F/F"), for differential
// comparison. A finished instance reports the finish-state name.
func (g *Generic) Snapshot() string {
	if g.finished {
		return "FINISHED"
	}
	b := func(v bool) string {
		if v {
			return "T"
		}
		return "F"
	}
	return b(g.updateReceived) + "/" + itoa(g.votesReceived) + "/" + b(g.voteSent) + "/" +
		itoa(g.commitsReceived) + "/" + b(g.commitSent) + "/" + b(g.couldChoose) + "/" + b(g.hasChosen)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func (g *Generic) voteThreshold() int   { return 2*g.f + 1 }
func (g *Generic) commitThreshold() int { return g.f + 1 }

func (g *Generic) totalVotes() int {
	total := g.votesReceived
	if g.voteSent {
		total++
	}
	return total
}

// castVote votes for this update: broadcast the vote, send the commit if
// the quorum is already visible, mark the update chosen and broadcast
// not_free.
func (g *Generic) castVote() {
	g.act(ActSendVote)
	g.voteSent = true
	g.couldChoose = false
	if g.totalVotes() >= g.voteThreshold() && !g.commitSent {
		g.act(ActSendCommit)
		g.commitSent = true
	}
	g.hasChosen = true
	g.act(ActSendNotFree)
}

// ReceiveUpdate handles the client's update request.
func (g *Generic) ReceiveUpdate() {
	if g.finished || g.updateReceived {
		return
	}
	g.updateReceived = true
	if g.couldChoose && !g.hasChosen && !g.voteSent {
		g.castVote()
	}
}

// ReceiveVote handles a vote message from another member.
func (g *Generic) ReceiveVote() {
	if g.finished || g.votesReceived == g.r-1 {
		return
	}
	g.votesReceived++
	if g.totalVotes() < g.voteThreshold() {
		return
	}
	if !g.voteSent {
		if g.couldChoose {
			g.hasChosen = true
			g.act(ActSendNotFree)
		}
		g.act(ActSendVote)
		g.voteSent = true
		g.couldChoose = false
	}
	if !g.commitSent {
		g.act(ActSendCommit)
		g.commitSent = true
	}
}

// ReceiveCommit handles a commit message from another member; the f+1-th
// commit completes the instance.
func (g *Generic) ReceiveCommit() {
	if g.finished || g.commitsReceived == g.r-1 {
		return
	}
	g.commitsReceived++
	if g.commitsReceived < g.commitThreshold() {
		return
	}
	if !g.voteSent {
		g.act(ActSendVote)
		g.voteSent = true
	}
	if !g.commitSent {
		g.act(ActSendCommit)
		g.commitSent = true
	}
	if g.hasChosen {
		g.act(ActSendFree)
	}
	g.finished = true
}

// ReceiveFree handles a free message from another machine instance on the
// same member.
func (g *Generic) ReceiveFree() {
	if g.finished || g.hasChosen || g.voteSent {
		return
	}
	g.couldChoose = true
	if g.updateReceived {
		g.castVote()
	}
}

// ReceiveNotFree handles a not_free message from another machine instance
// on the same member.
func (g *Generic) ReceiveNotFree() {
	if g.finished || g.hasChosen || g.voteSent {
		return
	}
	g.couldChoose = false
}

// Receive dispatches a message by type name, mirroring the generated
// machines' message vocabulary. Unknown messages are ignored.
func (g *Generic) Receive(msg string) {
	switch msg {
	case MsgUpdate:
		g.ReceiveUpdate()
	case MsgVote:
		g.ReceiveVote()
	case MsgCommit:
		g.ReceiveCommit()
	case MsgFree:
		g.ReceiveFree()
	case MsgNotFree:
		g.ReceiveNotFree()
	}
}
