package commit

import (
	"context"
	"fmt"

	"asagen/internal/core"
)

// This file applies the paper's §5.3 to the commit protocol: the message
// counting variables are mapped to EFSM variables, coalescing all FSM
// states within a phase. The resulting EFSM contains nine states and its
// state space is independent of the replication factor; only the guard
// bounds depend on the thresholds, and those are recorded symbolically.

// EFSM state names. Each corresponds to one combination of the protocol's
// boolean variables (update_received, vote_sent, commit_sent, could_choose,
// has_chosen) reachable in practice.
const (
	// EFSMWaitingNotFree: nothing received, another update holds the slot.
	EFSMWaitingNotFree = "WAITING_NOT_FREE"
	// EFSMWaitingFree: nothing received, free to choose.
	EFSMWaitingFree = "WAITING_FREE"
	// EFSMUpdateHeldNotFree: client update held, blocked behind another
	// ongoing update.
	EFSMUpdateHeldNotFree = "UPDATE_HELD_NOT_FREE"
	// EFSMChosenVoted: voted for this update voluntarily; quorum pending.
	EFSMChosenVoted = "CHOSEN_VOTED"
	// EFSMChosenCommitted: chosen and committed (quorum reached).
	EFSMChosenCommitted = "CHOSEN_COMMITTED"
	// EFSMAdoptedCommitted: adopted the quorum's update while free, without
	// having received the client request.
	EFSMAdoptedCommitted = "ADOPTED_COMMITTED"
	// EFSMForcedCommitted: forced to join the quorum while blocked; the
	// client request has not been seen.
	EFSMForcedCommitted = "FORCED_COMMITTED"
	// EFSMForcedCommittedUpdate: as EFSMForcedCommitted, after the client
	// request arrived late.
	EFSMForcedCommittedUpdate = "FORCED_COMMITTED_UPDATE"
)

// Abstraction coalesces commit-machine states by dropping the two count
// components, implementing core.EFSMAbstraction.
type Abstraction struct {
	model *Model
}

var _ core.EFSMAbstraction = (*Abstraction)(nil)

// NewAbstraction returns the EFSM abstraction for the given model.
func NewAbstraction(m *Model) *Abstraction { return &Abstraction{model: m} }

// StateLabel implements core.EFSMAbstraction: the label depends only on the
// boolean components.
func (a *Abstraction) StateLabel(v core.Vector) string {
	u := v[idxUpdateReceived] != 0
	vs := v[idxVoteSent] != 0
	cs := v[idxCommitSent] != 0
	cc := v[idxCouldChoose] != 0
	hc := v[idxHasChosen] != 0

	if !vs {
		switch {
		case !u && !cc:
			return EFSMWaitingNotFree
		case !u && cc:
			return EFSMWaitingFree
		case u && !cc:
			return EFSMUpdateHeldNotFree
		default:
			return boolLabel(u, vs, cs, cc, hc)
		}
	}
	switch {
	case !cs && hc && u:
		return EFSMChosenVoted
	case cs && hc && u:
		return EFSMChosenCommitted
	case cs && hc && !u:
		return EFSMAdoptedCommitted
	case cs && !hc && !u:
		return EFSMForcedCommitted
	case cs && !hc && u:
		return EFSMForcedCommittedUpdate
	default:
		return boolLabel(u, vs, cs, cc, hc)
	}
}

// boolLabel is the fallback label for boolean combinations outside the
// canonical reachable set (they can appear under non-default variants).
func boolLabel(u, vs, cs, cc, hc bool) string {
	b := func(x bool) byte {
		if x {
			return 'T'
		}
		return 'F'
	}
	return fmt.Sprintf("U%c/VS%c/CS%c/CC%c/HC%c", b(u), b(vs), b(cs), b(cc), b(hc))
}

// GuardComponent implements core.EFSMAbstraction: vote, update and free
// outcomes depend on the vote count; commit outcomes on the commit count;
// not_free is unconditional.
func (a *Abstraction) GuardComponent(msg string) int {
	switch msg {
	case MsgVote, MsgUpdate, MsgFree:
		return idxVotesReceived
	case MsgCommit:
		return idxCommitsReceived
	default:
		return -1
	}
}

// VarOps implements core.EFSMAbstraction: receipt of a vote or commit
// increments the corresponding counter.
func (a *Abstraction) VarOps(msg string) []core.VarOp {
	switch msg {
	case MsgVote:
		return []core.VarOp{{Variable: "votes_received", Delta: 1}}
	case MsgCommit:
		return []core.VarOp{{Variable: "commits_received", Delta: 1}}
	default:
		return nil
	}
}

// Symbol implements core.EFSMAbstraction: guard bounds are rendered
// relative to the protocol thresholds so the EFSM structure reads
// independently of the replication factor. Threshold anchors are tried
// before count-capacity anchors; the renderings are unambiguous for f ≥ 3
// (see the structural-identity tests).
func (a *Abstraction) Symbol(component, value int) string {
	switch component {
	case idxVotesReceived:
		t := a.model.VoteThreshold()
		switch value {
		case 0:
			return "0"
		case t:
			return "vote_threshold"
		case t - 1:
			return "vote_threshold-1"
		case t - 2:
			return "vote_threshold-2"
		case t - 3:
			return "vote_threshold-3"
		case a.model.r - 1:
			return "max_votes"
		case a.model.r - 2:
			return "max_votes-1"
		}
	case idxCommitsReceived:
		c := a.model.CommitThreshold()
		switch value {
		case 0:
			return "0"
		case c - 1:
			return "commit_threshold-1"
		case c - 2:
			return "commit_threshold-2"
		case c - 3:
			return "commit_threshold-3"
		case a.model.r - 1:
			return "max_commits"
		}
	}
	return ""
}

// GenerateEFSM generates the commit machine for replication factor r and
// coalesces it into the nine-state EFSM of §5.3.
func GenerateEFSM(ctx context.Context, r int, opts ...Option) (*core.EFSM, error) {
	m, err := NewModel(r, opts...)
	if err != nil {
		return nil, err
	}
	machine, err := core.Generate(ctx, m, core.WithoutDescriptions())
	if err != nil {
		return nil, fmt.Errorf("commit: generate machine: %w", err)
	}
	efsm, err := core.GeneralizeEFSM(machine, NewAbstraction(m))
	if err != nil {
		return nil, fmt.Errorf("commit: generalise EFSM: %w", err)
	}
	return efsm, nil
}
