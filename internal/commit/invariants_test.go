package commit

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"asagen/internal/core"
)

// vectorOf decodes a state name back into component values for invariant
// checks.
func vectorOf(t *testing.T, name string) (u, v, vs, c, cs, cc, hc int) {
	t.Helper()
	parts := strings.Split(name, "/")
	if len(parts) != 7 {
		t.Fatalf("unexpected state name %q", name)
	}
	b := func(s string) int {
		if s == "T" {
			return 1
		}
		return 0
	}
	n := func(s string) int {
		val := 0
		for _, r := range s {
			val = val*10 + int(r-'0')
		}
		return val
	}
	return b(parts[0]), n(parts[1]), b(parts[2]), n(parts[3]), b(parts[4]), b(parts[5]), b(parts[6])
}

// TestReachableStateInvariants checks protocol invariants over every
// reachable state of the generated family members:
//
//	I1: has_chosen implies vote_sent (choosing always casts the vote)
//	I2: vote_sent implies !could_choose (strict reading surrenders the slot)
//	I3: commit_sent iff votes sent+received >= 2f+1 (commit follows quorum)
//	I4: commits_received <= f (the f+1-th commit finishes the machine;
//	    the paper's pruning observation)
//	I5: vote_sent below quorum implies has_chosen and update_received
//	    (only voluntary votes happen below the threshold)
func TestReachableStateInvariants(t *testing.T) {
	for _, r := range []int{4, 7, 13} {
		f := (r - 1) / 3
		threshold := 2*f + 1
		machine := mustGenerate(t, r, core.WithoutDescriptions())
		for _, s := range machine.States {
			if s.Final {
				continue
			}
			u, v, vs, c, cs, cc, hc := vectorOf(t, s.Name)
			total := v + vs
			if hc == 1 && vs != 1 {
				t.Errorf("r=%d %s: I1 violated (chosen without voting)", r, s.Name)
			}
			if vs == 1 && cc != 0 {
				t.Errorf("r=%d %s: I2 violated (voted but still free)", r, s.Name)
			}
			if (cs == 1) != (total >= threshold) {
				t.Errorf("r=%d %s: I3 violated (commit_sent=%d, total votes %d, threshold %d)",
					r, s.Name, cs, total, threshold)
			}
			if c > f {
				t.Errorf("r=%d %s: I4 violated (commits %d > f %d)", r, s.Name, c, f)
			}
			if vs == 1 && total < threshold && (hc != 1 || u != 1) {
				t.Errorf("r=%d %s: I5 violated", r, s.Name)
			}
		}
	}
}

// TestApplyDoesNotMutateInput: Apply must be side-effect free on its input
// vector (the generator reuses vectors across message probes).
func TestApplyDoesNotMutateInput(t *testing.T) {
	m, err := NewModel(7)
	if err != nil {
		t.Fatal(err)
	}
	comps := m.Components()
	prop := func(raw uint32, msgIdx uint8) bool {
		size := 1
		for _, c := range comps {
			size *= c.Cardinality()
		}
		idx := int(raw) % size
		v := make(core.Vector, len(comps))
		rem := idx
		for i := len(comps) - 1; i >= 0; i-- {
			card := comps[i].Cardinality()
			v[i] = rem % card
			rem /= card
		}
		before := v.Clone()
		msg := m.Messages()[int(msgIdx)%len(m.Messages())]
		m.Apply(v, msg)
		return v.Equal(before)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestApplyDeterministic: identical inputs produce identical effects.
func TestApplyDeterministic(t *testing.T) {
	m, err := NewModel(4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		v := core.Vector{
			rng.Intn(2), rng.Intn(4), rng.Intn(2), rng.Intn(4),
			rng.Intn(2), rng.Intn(2), rng.Intn(2),
		}
		msg := m.Messages()[rng.Intn(5)]
		e1, ok1 := m.Apply(v, msg)
		e2, ok2 := m.Apply(v, msg)
		if ok1 != ok2 {
			t.Fatalf("applicability nondeterministic for %v %s", v, msg)
		}
		if !ok1 {
			continue
		}
		if e1.Finished != e2.Finished || !equalStrings(e1.Actions, e2.Actions) {
			t.Fatalf("effect nondeterministic for %v %s", v, msg)
		}
		if !e1.Finished && !e1.Target.Equal(e2.Target) {
			t.Fatalf("target nondeterministic for %v %s", v, msg)
		}
	}
}

// TestMergePreservesTraces: the merged machine must be trace-equivalent to
// the unmerged one — identical action sequences and completion for any
// message schedule. Uses the redundant reading, where merging actually
// collapses states.
func TestMergePreservesTraces(t *testing.T) {
	model, err := NewModel(7, WithVariant(RedundantVariant()))
	if err != nil {
		t.Fatal(err)
	}
	merged, err := core.Generate(context.Background(), model, core.WithoutDescriptions())
	if err != nil {
		t.Fatal(err)
	}
	unmerged, err := core.Generate(context.Background(), model, core.WithoutDescriptions(), core.WithoutMerging())
	if err != nil {
		t.Fatal(err)
	}
	if merged.Stats.FinalStates >= unmerged.Stats.FinalStates {
		t.Fatalf("merging removed nothing: %d vs %d",
			merged.Stats.FinalStates, unmerged.Stats.FinalStates)
	}

	msgs := merged.Messages
	for seed := int64(1); seed <= 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := merged.Start
		b := unmerged.Start
		for step := 0; step < 300; step++ {
			msg := msgs[rng.Intn(len(msgs))]
			ta, tb := a.Transition(msg), b.Transition(msg)
			if (ta == nil) != (tb == nil) {
				t.Fatalf("seed=%d step=%d %s: applicability diverges (%s vs %s)",
					seed, step, msg, a.Name, b.Name)
			}
			if ta == nil {
				continue
			}
			if !equalStrings(ta.Actions, tb.Actions) {
				t.Fatalf("seed=%d step=%d %s: actions diverge: %v vs %v",
					seed, step, msg, ta.Actions, tb.Actions)
			}
			if ta.Target.Final != tb.Target.Final {
				t.Fatalf("seed=%d step=%d %s: finality diverges", seed, step, msg)
			}
			a, b = ta.Target, tb.Target
			if a.Final {
				break
			}
		}
	}
}

// TestMergeIdempotent: generating twice (the second time the machine is
// already minimal) yields identical state sets.
func TestMergeIdempotent(t *testing.T) {
	m1 := mustGenerate(t, 7, core.WithoutDescriptions())
	m2 := mustGenerate(t, 7, core.WithoutDescriptions())
	n1, n2 := m1.StateNames(), m2.StateNames()
	if len(n1) != len(n2) {
		t.Fatalf("state counts differ: %d vs %d", len(n1), len(n2))
	}
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Errorf("state order differs at %d: %s vs %s", i, n1[i], n2[i])
		}
	}
}

// TestMergedNamesCoverReachable: after merging under the redundant
// reading, the union of merged names equals the reachable encoded states.
func TestMergedNamesCoverReachable(t *testing.T) {
	model, err := NewModel(4, WithVariant(RedundantVariant()))
	if err != nil {
		t.Fatal(err)
	}
	machine, err := core.Generate(context.Background(), model, core.WithoutDescriptions())
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	seen := map[string]bool{}
	for _, s := range machine.States {
		for _, n := range s.MergedNames {
			if seen[n] {
				t.Errorf("name %s appears in two merged states", n)
			}
			seen[n] = true
			total++
		}
	}
	if total != machine.Stats.ReachableStates {
		t.Errorf("merged names cover %d states, reachable %d", total, machine.Stats.ReachableStates)
	}
}

// TestStartStateIsCanonical: the machine's start state is the all-zero
// vector under the default variant.
func TestStartStateIsCanonical(t *testing.T) {
	machine := mustGenerate(t, 4, core.WithoutDescriptions())
	if machine.Start.Name != "F/0/F/0/F/F/F" {
		t.Errorf("start state = %s", machine.Start.Name)
	}
}

// TestModelAccessors covers the threshold arithmetic per Table 1 row.
func TestModelAccessors(t *testing.T) {
	tests := []struct {
		r, f, voteThreshold, commitThreshold int
	}{
		{4, 1, 3, 2}, {7, 2, 5, 3}, {13, 4, 9, 5}, {25, 8, 17, 9}, {46, 15, 31, 16},
	}
	for _, tt := range tests {
		m, err := NewModel(tt.r)
		if err != nil {
			t.Fatal(err)
		}
		if m.FaultTolerance() != tt.f {
			t.Errorf("r=%d: f = %d, want %d", tt.r, m.FaultTolerance(), tt.f)
		}
		if m.VoteThreshold() != tt.voteThreshold {
			t.Errorf("r=%d: vote threshold = %d, want %d", tt.r, m.VoteThreshold(), tt.voteThreshold)
		}
		if m.CommitThreshold() != tt.commitThreshold {
			t.Errorf("r=%d: commit threshold = %d, want %d", tt.r, m.CommitThreshold(), tt.commitThreshold)
		}
		if m.ReplicationFactor() != tt.r {
			t.Errorf("ReplicationFactor = %d", m.ReplicationFactor())
		}
	}
	if _, err := NewModel(3); err == nil {
		t.Error("r=3 accepted")
	}
}

// TestDescribeStateMentionsThresholds spot-checks the generated Fig. 14
// commentary.
func TestDescribeStateMentionsThresholds(t *testing.T) {
	m, err := NewModel(4)
	if err != nil {
		t.Fatal(err)
	}
	// The Fig. 14 example state T/2/F/0/F/F/F.
	lines := m.DescribeState(core.Vector{1, 2, 0, 0, 0, 0, 0})
	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		"Have received initial update from client.",
		"Have not voted since another update has already been voted for.",
		"Have received 2 votes and no commits.",
		"vote threshold (3)",
		"external commit threshold (2)",
		"Waiting for 1 further vote (including local vote if any) before sending commit.",
		"Waiting for 2 further external commits to finish.",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("description missing %q:\n%s", want, joined)
		}
	}
}
