package commit

import (
	"errors"
	"math/rand"
	"testing"

	"asagen/internal/core"
	"asagen/internal/runtime"
)

// TestGenericVsGeneratedMachine drives the hand-written generic algorithm
// and the interpreted generated machine with identical random message
// sequences and requires identical observable behaviour at every step:
// same emitted actions, same finished flag, and — because the strict
// reading rests only in canonical states — the same encoded state.
func TestGenericVsGeneratedMachine(t *testing.T) {
	for _, r := range []int{4, 7, 13} {
		machine := mustGenerate(t, r, core.WithoutDescriptions())
		for seed := int64(1); seed <= 25; seed++ {
			runDifferential(t, machine, r, seed, 400)
		}
	}
}

func runDifferential(t *testing.T, machine *core.StateMachine, r int, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	var genericActions []string
	gen, err := NewGeneric(r, func(a string) { genericActions = append(genericActions, a) })
	if err != nil {
		t.Fatalf("NewGeneric(%d): %v", r, err)
	}
	inst, err := runtime.New(machine, nil)
	if err != nil {
		t.Fatalf("runtime.New: %v", err)
	}

	messages := machine.Messages
	for step := 0; step < steps; step++ {
		msg := messages[rng.Intn(len(messages))]

		genericActions = genericActions[:0]
		gen.Receive(msg)

		var fsmActions []string
		if !inst.Finished() {
			acts, err := inst.Deliver(msg)
			var ignored *runtime.IgnoredError
			switch {
			case err == nil:
				fsmActions = acts
			case errors.As(err, &ignored):
				// No transition: the model treats the message as
				// effect-free here; the generic algorithm must agree.
			default:
				t.Fatalf("r=%d seed=%d step=%d %s: Deliver: %v", r, seed, step, msg, err)
			}
		}

		if !equalStrings(genericActions, fsmActions) {
			t.Fatalf("r=%d seed=%d step=%d %s: actions diverge: generic=%v fsm=%v (state %s)",
				r, seed, step, msg, genericActions, fsmActions, inst.StateName())
		}
		if gen.Finished() != inst.Finished() {
			t.Fatalf("r=%d seed=%d step=%d %s: finished diverges: generic=%v fsm=%v",
				r, seed, step, msg, gen.Finished(), inst.Finished())
		}
		if got, want := inst.StateName(), gen.Snapshot(); got != want {
			t.Fatalf("r=%d seed=%d step=%d %s: state diverges: fsm=%s generic=%s",
				r, seed, step, msg, got, want)
		}
		if gen.Finished() {
			return
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestGenericHappyPath walks one uncontended commit round: the member
// receives the update while free, votes, collects the quorum and finishes.
func TestGenericHappyPath(t *testing.T) {
	var actions []string
	g, err := NewGeneric(4, func(a string) { actions = append(actions, a) })
	if err != nil {
		t.Fatal(err)
	}

	// Not free initially; a free message from a completed instance opens
	// the slot, but no update has arrived yet.
	g.ReceiveFree()
	if g.Snapshot() != "F/0/F/0/F/T/F" {
		t.Fatalf("after free: %s", g.Snapshot())
	}

	g.ReceiveUpdate()
	if !equalStrings(actions, []string{ActSendVote, ActSendNotFree}) {
		t.Fatalf("update actions = %v", actions)
	}
	if g.Snapshot() != "T/0/T/0/F/F/T" {
		t.Fatalf("after update: %s", g.Snapshot())
	}

	actions = actions[:0]
	g.ReceiveVote() // total 2 < 3
	if len(actions) != 0 {
		t.Fatalf("vote below threshold emitted %v", actions)
	}
	g.ReceiveVote() // total 3: quorum, send commit
	if !equalStrings(actions, []string{ActSendCommit}) {
		t.Fatalf("quorum actions = %v", actions)
	}

	actions = actions[:0]
	g.ReceiveCommit()
	if g.Finished() {
		t.Fatal("finished after 1 commit, want threshold 2")
	}
	g.ReceiveCommit()
	if !g.Finished() {
		t.Fatal("not finished after f+1 commits")
	}
	if !equalStrings(actions, []string{ActSendFree}) {
		t.Fatalf("finish actions = %v", actions)
	}
}

// TestGenericForcedVote exercises the competing-update path: the member
// never receives the client update but is forced to vote when the quorum
// forms among the other members.
func TestGenericForcedVote(t *testing.T) {
	var actions []string
	g, err := NewGeneric(4, func(a string) { actions = append(actions, a) })
	if err != nil {
		t.Fatal(err)
	}

	// Another instance holds the slot.
	g.ReceiveNotFree()
	g.ReceiveVote()
	g.ReceiveVote()
	if len(actions) != 0 {
		t.Fatalf("below threshold emitted %v", actions)
	}
	g.ReceiveVote() // third vote: forced to join the quorum
	if !equalStrings(actions, []string{ActSendVote, ActSendCommit}) {
		t.Fatalf("forced vote actions = %v", actions)
	}
	if g.Snapshot() != "F/3/T/0/T/F/F" {
		t.Fatalf("after forced vote: %s", g.Snapshot())
	}

	actions = actions[:0]
	g.ReceiveCommit()
	g.ReceiveCommit()
	if !g.Finished() {
		t.Fatal("not finished")
	}
	// has_chosen is false, so no free message is sent.
	if len(actions) != 0 {
		t.Fatalf("finish actions = %v, want none", actions)
	}
}

// TestGenericAdoptsQuorumUpdate checks that a free member adopts an update
// that reaches quorum without having received the client request: it marks
// the update chosen and withdraws its availability.
func TestGenericAdoptsQuorumUpdate(t *testing.T) {
	var actions []string
	g, err := NewGeneric(4, func(a string) { actions = append(actions, a) })
	if err != nil {
		t.Fatal(err)
	}
	g.ReceiveFree()
	g.ReceiveVote()
	g.ReceiveVote()
	actions = actions[:0]
	g.ReceiveVote()
	if !equalStrings(actions, []string{ActSendNotFree, ActSendVote, ActSendCommit}) {
		t.Fatalf("adoption actions = %v", actions)
	}
	if g.Snapshot() != "F/3/T/0/T/F/T" {
		t.Fatalf("after adoption: %s", g.Snapshot())
	}
}

// TestGenericIdempotentAfterFinish verifies that a finished instance
// ignores all further traffic.
func TestGenericIdempotentAfterFinish(t *testing.T) {
	var actions []string
	g, err := NewGeneric(4, func(a string) { actions = append(actions, a) })
	if err != nil {
		t.Fatal(err)
	}
	g.ReceiveCommit()
	g.ReceiveCommit()
	if !g.Finished() {
		t.Fatal("not finished after f+1 commits")
	}
	actions = actions[:0]
	for _, msg := range []string{MsgUpdate, MsgVote, MsgCommit, MsgFree, MsgNotFree} {
		g.Receive(msg)
	}
	if len(actions) != 0 {
		t.Fatalf("finished instance emitted %v", actions)
	}
	if g.Snapshot() != "FINISHED" {
		t.Fatalf("Snapshot = %s", g.Snapshot())
	}
}
