package commit

import (
	"context"
	"fmt"
	"os"
	"testing"

	"asagen/internal/core"
)

// variantFromMask decodes a 12-bit mask into a Variant, for exhaustive
// enumeration of the plausible readings of the paper's Fig. 9 pseudo-code.
func variantFromMask(mask int) Variant {
	bit := func(i int) bool { return mask&(1<<i) != 0 }
	return Variant{
		UpdateVotes:      bit(0),
		UpdateUnsetsCC:   bit(1),
		FreeUnsetsCC:     bit(2),
		VoteUnsetsCC:     bit(3),
		FreeGuardVS:      bit(4),
		NotFreeGuardVS:   bit(5),
		FreeGuardHC:      bit(6),
		NotFreeGuardHC:   bit(7),
		VoteSetsHC:       bit(8),
		CastVoteCommits:  bit(9),
		RecordNoops:      bit(10),
		StartCouldChoose: bit(11),
	}
}

const variantBits = 12

// TestVariantSearch brute-forces the space of plausible readings of the
// paper's Fig. 9 pseudo-code (whose printed guards contain reproduction
// errors) and reports the readings whose generated machine family matches
// the published Table 1 state counts. It is a development tool, not a
// regression test: enable with COMMIT_VARIANT_SEARCH=1. The winning reading
// is frozen as DefaultVariant and regression-tested elsewhere.
func TestVariantSearch(t *testing.T) {
	if os.Getenv("COMMIT_VARIANT_SEARCH") == "" {
		t.Skip("set COMMIT_VARIANT_SEARCH=1 to run the exhaustive search")
	}

	hits := 0
	for mask := 0; mask < 1<<variantBits; mask++ {
		v := variantFromMask(mask)
		for _, singlePass := range []bool{false, true} {
			if evaluateVariant(t, v, singlePass) {
				hits++
			}
		}
	}
	t.Logf("total matching variants: %d", hits)
}

// evaluateVariant generates machines for r = 4 and, when the r = 4 counts
// match, for the larger Table 1 rows; it logs any exact match.
func evaluateVariant(t *testing.T, v Variant, singlePass bool) bool {
	t.Helper()
	stats4 := generateStats(t, 4, v, singlePass)

	// The published pre-merge count is 48; our ReachableStates includes the
	// synthetic finish state, so accept 48 (paper counted it) or 49 (paper
	// counted encoded states only). Final counts must match exactly.
	okReach := stats4.ReachableStates == 48 || stats4.ReachableStates == 49
	okFinal := stats4.FinalStates == 33
	if !okReach || !okFinal {
		return false
	}
	t.Logf("candidate %+v singlePass=%v: r=4 reach=%d final=%d",
		v, singlePass, stats4.ReachableStates, stats4.FinalStates)

	want := map[int]int{7: 85, 13: 261, 25: 901}
	for r, wantFinal := range want {
		stats := generateStats(t, r, v, singlePass)
		if stats.FinalStates != wantFinal {
			t.Logf("  ... rejected at r=%d: final=%d want %d", r, stats.FinalStates, wantFinal)
			return false
		}
	}
	t.Logf("MATCH: %+v singlePass=%v", v, singlePass)
	return true
}

func generateStats(t *testing.T, r int, v Variant, singlePass bool) core.Stats {
	t.Helper()
	m, err := NewModel(r, WithVariant(v))
	if err != nil {
		t.Fatalf("NewModel(%d): %v", r, err)
	}
	opts := []core.Option{core.WithoutDescriptions()}
	if singlePass {
		opts = append(opts, core.WithSinglePassMerge())
	}
	machine, err := core.Generate(context.Background(), m, opts...)
	if err != nil {
		t.Fatalf("Generate(r=%d, %+v): %v", r, v, err)
	}
	return machine.Stats
}

// TestVariantSurvey prints the (reachable, final) landscape over the variant
// space for r = 4, as an aid to narrowing the Fig. 9 reading. Enable with
// COMMIT_VARIANT_SEARCH=1.
func TestVariantSurvey(t *testing.T) {
	if os.Getenv("COMMIT_VARIANT_SEARCH") == "" {
		t.Skip("set COMMIT_VARIANT_SEARCH=1 to run the survey")
	}
	counts := map[string]int{}
	sample := map[string]int{}
	for mask := 0; mask < 1<<variantBits; mask++ {
		s := generateStats(t, 4, variantFromMask(mask), false)
		key := fmt.Sprintf("reach=%-3d final=%d", s.ReachableStates, s.FinalStates)
		counts[key]++
		sample[key] = mask
	}
	for key, n := range counts {
		t.Logf("%-24s x%-4d e.g. mask %04x", key, n, sample[key])
	}
}
