package commit

import (
	"context"
	"testing"

	"asagen/internal/core"
)

// table1 mirrors the paper's Table 1: the published characteristics of the
// generated FSM family. Initial states are the raw cross product 32·r²;
// final states follow the closed form 12f² + 16f + 5 (with the finish state
// counted), which fits every published row.
var table1 = []struct {
	f, r          int
	initialStates int
	finalStates   int
}{
	{1, 4, 512, 33},
	{2, 7, 1568, 85},
	{4, 13, 5408, 261},
	{8, 25, 20000, 901},
	{15, 46, 67712, 2945},
}

// TestTable1Counts is the anchor experiment (E1): generation for every
// published (f, r) pair must reproduce the paper's exact initial and final
// state counts.
func TestTable1Counts(t *testing.T) {
	for _, row := range table1 {
		m, err := NewModel(row.r)
		if err != nil {
			t.Fatalf("NewModel(%d): %v", row.r, err)
		}
		if got := m.FaultTolerance(); got != row.f {
			t.Errorf("r=%d: fault tolerance = %d, want %d", row.r, got, row.f)
		}
		machine, err := core.Generate(context.Background(), m, core.WithoutDescriptions())
		if err != nil {
			t.Fatalf("Generate(r=%d): %v", row.r, err)
		}
		if got := machine.Stats.InitialStates; got != row.initialStates {
			t.Errorf("r=%d: initial states = %d, want %d", row.r, got, row.initialStates)
		}
		if got := machine.Stats.FinalStates; got != row.finalStates {
			t.Errorf("r=%d: final states = %d, want %d", row.r, got, row.finalStates)
		}
		if got := len(machine.States); got != row.finalStates {
			t.Errorf("r=%d: len(States) = %d, want %d", row.r, got, row.finalStates)
		}
	}
}

// TestFinalStatesClosedForm checks the family-size law 12f² + 16f + 5 on
// replication factors beyond the published rows (r = 3f+1 so that the
// Byzantine bound is tight, as in every Table 1 row).
func TestFinalStatesClosedForm(t *testing.T) {
	for _, f := range []int{3, 5, 6, 7, 10} {
		r := 3*f + 1
		m, err := NewModel(r)
		if err != nil {
			t.Fatalf("NewModel(%d): %v", r, err)
		}
		machine, err := core.Generate(context.Background(), m, core.WithoutDescriptions())
		if err != nil {
			t.Fatalf("Generate(r=%d): %v", r, err)
		}
		want := 12*f*f + 16*f + 5
		if got := machine.Stats.FinalStates; got != want {
			t.Errorf("f=%d (r=%d): final states = %d, want %d", f, r, got, want)
		}
	}
}

// TestPipelineStageCounts records the r = 4 pipeline behaviour (E11): the
// strict Fig. 9 reading generates the minimal machine directly (merging is
// the identity), while the redundant reading rests in dead-bit variants
// that the merging step collapses to the same published final count. The
// paper reports 48 states before merging; the redundant reading reaches 41,
// the closest reconstruction recoverable from the published pseudo-code
// (see DESIGN.md).
func TestPipelineStageCounts(t *testing.T) {
	tests := []struct {
		name      string
		variant   Variant
		reachable int
		final     int
	}{
		{"strict", DefaultVariant(), 33, 33},
		{"redundant", RedundantVariant(), 41, 33},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := NewModel(4, WithVariant(tt.variant))
			if err != nil {
				t.Fatalf("NewModel: %v", err)
			}
			machine, err := core.Generate(context.Background(), m)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if got := machine.Stats.ReachableStates; got != tt.reachable {
				t.Errorf("reachable = %d, want %d", got, tt.reachable)
			}
			if got := machine.Stats.FinalStates; got != tt.final {
				t.Errorf("final = %d, want %d", got, tt.final)
			}
		})
	}
}

// TestRedundantVariantMatchesTable1 verifies that the redundant reading
// still merges to the published family sizes for every Table 1 row.
func TestRedundantVariantMatchesTable1(t *testing.T) {
	for _, row := range table1 {
		m, err := NewModel(row.r, WithVariant(RedundantVariant()))
		if err != nil {
			t.Fatalf("NewModel(%d): %v", row.r, err)
		}
		machine, err := core.Generate(context.Background(), m, core.WithoutDescriptions())
		if err != nil {
			t.Fatalf("Generate(r=%d): %v", row.r, err)
		}
		if got := machine.Stats.FinalStates; got != row.finalStates {
			t.Errorf("r=%d: final states = %d, want %d", row.r, got, row.finalStates)
		}
		if machine.Stats.ReachableStates <= row.finalStates {
			t.Errorf("r=%d: redundant reading should rest in extra pre-merge states (reachable %d, final %d)",
				row.r, machine.Stats.ReachableStates, row.finalStates)
		}
	}
}

// TestThirtyThreeStatesWithThreeToFourTransitions checks the §3.1
// observation: the r = 4 machine has 33 states with 3–4 transitions from
// each. The prose is approximate — states at the vote ceiling have fewer
// applicable messages — so the test asserts 3–4 for the majority, 1–4 for
// all, and none for the terminating finish state.
func TestThirtyThreeStatesWithThreeToFourTransitions(t *testing.T) {
	machine := mustGenerate(t, 4)
	if len(machine.States) != 33 {
		t.Fatalf("states = %d, want 33", len(machine.States))
	}
	threeToFour := 0
	for _, s := range machine.States {
		if s.Final {
			if len(s.Transitions) != 0 {
				t.Errorf("finish state has %d transitions, want 0", len(s.Transitions))
			}
			continue
		}
		n := len(s.Transitions)
		if n < 1 || n > 4 {
			t.Errorf("state %s has %d transitions, want 1-4", s.Name, n)
		}
		if n >= 3 {
			threeToFour++
		}
	}
	if threeToFour <= 16 {
		t.Errorf("only %d/32 states have 3-4 transitions, want a majority", threeToFour)
	}
}

func mustGenerate(t *testing.T, r int, opts ...core.Option) *core.StateMachine {
	t.Helper()
	m, err := NewModel(r)
	if err != nil {
		t.Fatalf("NewModel(%d): %v", r, err)
	}
	machine, err := core.Generate(context.Background(), m, opts...)
	if err != nil {
		t.Fatalf("Generate(r=%d): %v", r, err)
	}
	return machine
}
