package commit

import (
	"fmt"

	"asagen/internal/core"
)

// DescribeState implements core.Model: it produces the Fig. 14 style
// commentary describing a state in terms of the generic algorithm, derived
// entirely from the state's component values and the model's thresholds.
func (m *Model) DescribeState(v core.Vector) []string {
	var lines []string
	add := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}

	votes := v[idxVotesReceived]
	commits := v[idxCommitsReceived]
	totalVotes := votes + v[idxVoteSent]

	if v[idxUpdateReceived] != 0 {
		add("Have received initial update from client.")
	} else {
		add("Have not yet received initial update from client.")
	}

	if v[idxVoteSent] != 0 {
		add("Have voted for this update.")
	} else if v[idxCouldChoose] == 0 {
		add("Have not voted since another update has already been voted for.")
	} else {
		add("Have not yet voted for this update.")
	}

	add("Have received %s and %s.", plural(votes, "vote"), plural(commits, "commit"))

	if v[idxCommitSent] != 0 {
		add("Have sent a commit.")
	} else {
		add("Have not sent a commit since neither the vote threshold (%d) nor the external commit threshold (%d) has been reached.",
			m.VoteThreshold(), m.CommitThreshold())
	}

	if v[idxCouldChoose] != 0 {
		add("May choose a future update.")
	} else {
		add("May not choose since another ongoing update has been voted for.")
	}

	if v[idxHasChosen] != 0 {
		add("Have chosen this update.")
	} else {
		add("Have not chosen this update since another ongoing update has been chosen.")
	}

	if remaining := m.VoteThreshold() - totalVotes; remaining > 0 {
		add("Waiting for %s (including local vote if any) before sending commit.",
			plural(remaining, "further vote"))
	}
	if remaining := m.CommitThreshold() - commits; remaining > 0 {
		add("Waiting for %s to finish.", plural(remaining, "further external commit"))
	}
	return lines
}

func plural(n int, noun string) string {
	if n == 1 {
		return fmt.Sprintf("1 %s", noun)
	}
	if n == 0 {
		return fmt.Sprintf("no %ss", noun)
	}
	return fmt.Sprintf("%d %ss", n, noun)
}
