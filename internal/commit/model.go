// Package commit implements the abstract model of the paper's motivating
// example: the Byzantine-fault-tolerant commit protocol used to serialise
// updates to the version history of the ASA distributed storage system
// (§2.2). Each peer-set member runs one machine instance per ongoing
// update; the machine reacts to update, vote, commit, free and not_free
// messages, counting votes and commits until quorum thresholds are crossed.
//
// The model is parameterised by the replication factor r. It tolerates
// f = ⌊(r−1)/3⌋ Byzantine members: an update is agreed once 2f+1 votes
// (sent plus received) are observed, and an instance finishes once f+1
// commit messages have been received.
//
// Executing the model through core.Generate yields one member of the FSM
// family; the paper's Table 1 records the family's exact state counts,
// which this implementation reproduces.
package commit

import (
	"fmt"

	"asagen/internal/core"
)

// Message types received by a commit machine (Fig. 20).
const (
	MsgUpdate  = "UPDATE"
	MsgVote    = "VOTE"
	MsgCommit  = "COMMIT"
	MsgFree    = "FREE"
	MsgNotFree = "NOT_FREE"
)

// Actions performed on phase transitions (Fig. 14's "->vote" etc.).
const (
	ActSendVote    = "->vote"
	ActSendCommit  = "->commit"
	ActSendFree    = "->free"
	ActSendNotFree = "->not free"
)

// Component indices in the state vector, in the paper's name-encoding order
// (Fig. 14/16): update_received / votes_received / vote_sent /
// commits_received / commit_sent / could_choose / has_chosen.
const (
	idxUpdateReceived = iota
	idxVotesReceived
	idxVoteSent
	idxCommitsReceived
	idxCommitSent
	idxCouldChoose
	idxHasChosen
	numComponents
)

// MinReplicationFactor is the smallest replication factor that yields a
// Byzantine-fault-tolerant scheme (r > 3f with f ≥ 1).
const MinReplicationFactor = 4

// Variant selects between readings of the paper's Fig. 9 pseudo-code, whose
// printed guards contain reproduction errors (e.g. branches guarded on
// commit_sent that set commit_sent). The default variant is the one whose
// generated family matches the published Table 1 counts exactly; the others
// are retained for the semantic-sensitivity tests.
type Variant struct {
	// UpdateVotes enables the voluntary vote on receipt of the client
	// update when the member is free (guard read as !vote_sent; the
	// printed guard "vote_sent" is unsatisfiable).
	UpdateVotes bool
	// UpdateUnsetsCC clears could_choose when the voluntary vote is cast
	// from the update handler.
	UpdateUnsetsCC bool
	// FreeUnsetsCC clears could_choose when the voluntary vote is cast
	// from the free handler.
	FreeUnsetsCC bool
	// VoteUnsetsCC clears could_choose when a vote is forced by the vote
	// threshold being reached by other members' votes.
	VoteUnsetsCC bool
	// FreeGuardVS includes !vote_sent in the free handler guard.
	FreeGuardVS bool
	// NotFreeGuardVS includes !vote_sent in the not_free handler guard.
	NotFreeGuardVS bool
	// FreeGuardHC includes !has_chosen in the free handler guard.
	FreeGuardHC bool
	// NotFreeGuardHC includes !has_chosen in the not_free handler guard.
	NotFreeGuardHC bool
	// VoteSetsHC makes the forced vote (threshold reached by others'
	// votes while this member was free) also mark the update as chosen
	// and broadcast not_free.
	VoteSetsHC bool
	// CastVoteCommits makes the voluntary vote send the commit
	// immediately when the vote threshold is already met.
	CastVoteCommits bool
	// RecordNoops records applicable-but-effect-free deliveries as
	// explicit self-loop transitions instead of omitting them.
	RecordNoops bool
	// StartCouldChoose sets could_choose in the machine's start state: a
	// freshly created instance considers the member free to choose.
	StartCouldChoose bool
}

// DefaultVariant returns the strict Fig. 9 reading, validated against the
// published Table 1 family sizes: 512 initial and 33 final states for
// r = 4, and 85, 261, 901, 2945 final states for r = 7, 13, 25, 46 — all
// exact. Under this reading the generated machines rest only in canonical
// states, so the merging step is the identity (the paper's pre-merge 48 at
// r = 4 reflects implementation redundancy; see RedundantVariant and
// DESIGN.md). See variant_search_test.go for the derivation.
func DefaultVariant() Variant {
	return Variant{
		UpdateVotes:      true,
		UpdateUnsetsCC:   true,
		FreeUnsetsCC:     true,
		VoteUnsetsCC:     true,
		FreeGuardVS:      true,
		NotFreeGuardVS:   true,
		FreeGuardHC:      true,
		NotFreeGuardHC:   true,
		VoteSetsHC:       true,
		CastVoteCommits:  true,
		RecordNoops:      false,
		StartCouldChoose: false,
	}
}

// RedundantVariant returns a reading in which votes do not surrender
// could_choose, so the generated machines rest in states that differ only in
// a dead could_choose bit. The pre-merge machine is larger (41 reachable
// states at r = 4, against the paper's reported 48) while the merged family
// still matches the published final counts exactly — the closest
// reconstruction of the paper's pre-merge redundancy recoverable from the
// published pseudo-code, used by the pipeline-ablation experiments.
func RedundantVariant() Variant {
	v := DefaultVariant()
	v.UpdateUnsetsCC = false
	v.VoteUnsetsCC = false
	return v
}

// Model is the abstract model of the commit protocol for a fixed
// replication factor. It implements core.Model.
type Model struct {
	r       int
	f       int
	variant Variant
	comps   []core.StateComponent

	// Threshold annotations are fixed per model instance; rendering them
	// once keeps Apply off the fmt.Sprintf path, which dominated the
	// generation profile.
	noteVoteCommit   string
	noteVoteAdd      string
	noteCommitVote   string
	noteCommitCommit string
	noteCommitDone   string
	fpExtra          []string
}

var _ core.Model = (*Model)(nil)

// Option configures a Model.
type Option func(*Model)

// WithVariant overrides the Fig. 9 reading used by the model.
func WithVariant(v Variant) Option {
	return func(m *Model) { m.variant = v }
}

// NewModel returns the commit-protocol abstract model for replication
// factor r. It returns an error when r < MinReplicationFactor, since
// Byzantine fault tolerance requires r > 3f with at least one tolerated
// fault.
func NewModel(r int, opts ...Option) (*Model, error) {
	if r < MinReplicationFactor {
		return nil, fmt.Errorf("commit: replication factor %d < minimum %d", r, MinReplicationFactor)
	}
	m := &Model{
		r:       r,
		f:       (r - 1) / 3,
		variant: DefaultVariant(),
	}
	m.comps = []core.StateComponent{
		core.NewBoolComponent("update_received"),
		core.NewIntComponent("votes_received", r-1),
		core.NewBoolComponent("vote_sent"),
		core.NewIntComponent("commits_received", r-1),
		core.NewBoolComponent("commit_sent"),
		core.NewBoolComponent("could_choose"),
		core.NewBoolComponent("has_chosen"),
	}
	for _, opt := range opts {
		opt(m)
	}
	m.noteVoteCommit = fmt.Sprintf("Vote threshold (%d) reached: send commit.", m.VoteThreshold())
	m.noteVoteAdd = fmt.Sprintf("Vote threshold (%d) reached: add this member's vote.", m.VoteThreshold())
	m.noteCommitVote = fmt.Sprintf("Commit threshold (%d) reached before voting: send vote.", m.CommitThreshold())
	m.noteCommitCommit = fmt.Sprintf("Commit threshold (%d) reached: send commit.", m.CommitThreshold())
	m.noteCommitDone = fmt.Sprintf("External commit threshold (%d) reached: finished.", m.CommitThreshold())
	m.fpExtra = []string{fmt.Sprintf("fig9-variant:%+v", m.variant)}
	return m, nil
}

// ReplicationFactor returns r.
func (m *Model) ReplicationFactor() int { return m.r }

// FaultTolerance returns f = ⌊(r−1)/3⌋, the number of Byzantine members the
// protocol tolerates during one execution.
func (m *Model) FaultTolerance() int { return m.f }

// VoteThreshold returns 2f+1, the number of votes (sent plus received) that
// establishes agreement on the next update.
func (m *Model) VoteThreshold() int { return 2*m.f + 1 }

// CommitThreshold returns f+1, the number of received commit messages at
// which the instance finishes (the "external commit threshold").
func (m *Model) CommitThreshold() int { return m.f + 1 }

// Name implements core.Model.
func (m *Model) Name() string { return "bft-commit" }

// FingerprintExtra implements core.Fingerprinter: the Fig. 9 variant
// changes the transition logic without changing the declared structure, so
// it must be part of the model's cache identity — the strict and redundant
// readings share name, components and messages yet generate different
// pre-merge machines.
func (m *Model) FingerprintExtra() []string { return m.fpExtra }

// Parameter implements core.Model.
func (m *Model) Parameter() int { return m.r }

// Components implements core.Model.
func (m *Model) Components() []core.StateComponent {
	return append([]core.StateComponent(nil), m.comps...)
}

// Messages implements core.Model.
func (m *Model) Messages() []string {
	return []string{MsgUpdate, MsgVote, MsgCommit, MsgFree, MsgNotFree}
}

// Start implements core.Model: nothing received or sent; could_choose is
// set according to the variant.
func (m *Model) Start() core.Vector {
	v := make(core.Vector, numComponents)
	if m.variant.StartCouldChoose {
		v[idxCouldChoose] = 1
	}
	return v
}

// machineState wraps a working copy of the vector during effect
// elaboration, accumulating the actions and annotations triggered by one
// message receipt (the paper's Fig. 10 pattern: a series of updates to the
// working state s1, each recorded with an annotation). The accumulators are
// fixed-capacity arrays — no handler emits more than 3 actions or 6
// annotations — so the whole struct lives on Apply's stack and nothing is
// heap-allocated until an applicable effect is materialised.
type machineState struct {
	v           [numComponents]int
	nact, nann  int
	actions     [3]string
	annotations [6]string
}

func (s *machineState) get(i int) int    { return s.v[i] }
func (s *machineState) isSet(i int) bool { return s.v[i] != 0 }
func (s *machineState) set(i, val int)   { s.v[i] = val }
func (s *machineState) act(a string)     { s.actions[s.nact] = a; s.nact++ }
func (s *machineState) note(line string) { s.annotations[s.nann] = line; s.nann++ }

// totalVotes returns votes received plus the member's own vote, if sent
// ("the total number of votes sent and received").
func (s *machineState) totalVotes() int {
	return s.get(idxVotesReceived) + s.get(idxVoteSent)
}

// unchanged reports whether the elaboration left the vector equal to v.
func (s *machineState) unchanged(v core.Vector) bool {
	for i, val := range v {
		if s.v[i] != val {
			return false
		}
	}
	return true
}

// Apply implements core.Model: it elaborates the full consequences of
// receiving msg in state v, taking at generation time the control decisions
// a generic algorithm would take dynamically.
func (m *Model) Apply(v core.Vector, msg string) (core.Effect, bool) {
	var s machineState
	copy(s.v[:], v)
	finished := false
	switch msg {
	case MsgUpdate:
		m.onUpdate(&s)
	case MsgVote:
		if v[idxVotesReceived] == m.r-1 {
			return core.Effect{}, false // all r−1 peer votes already seen
		}
		m.onVote(&s)
	case MsgCommit:
		if v[idxCommitsReceived] == m.r-1 {
			return core.Effect{}, false
		}
		finished = m.onCommit(&s)
	case MsgFree:
		m.onFree(&s)
	case MsgNotFree:
		m.onNotFree(&s)
	default:
		return core.Effect{}, false
	}

	if !finished && s.nact == 0 && !m.variant.RecordNoops && s.unchanged(v) {
		return core.Effect{}, false // effect-free: message not applicable here
	}
	target := make(core.Vector, numComponents)
	copy(target, s.v[:])
	eff := core.Effect{Target: target, Finished: finished}
	if s.nact > 0 {
		eff.Actions = append(make([]string, 0, s.nact), s.actions[:s.nact]...)
	}
	if s.nann > 0 {
		eff.Annotations = append(make([]string, 0, s.nann), s.annotations[:s.nann]...)
	}
	return eff, true
}

// castVote performs the voluntary vote for this update: send the vote,
// record it, optionally surrender could_choose, send the commit if the vote
// threshold is already met, mark the update chosen and tell the other
// instances this member is no longer free.
func (m *Model) castVote(s *machineState, unsetCC bool) {
	s.act(ActSendVote)
	s.set(idxVoteSent, 1)
	s.note("Vote for this update and record the vote as sent.")
	if unsetCC {
		s.set(idxCouldChoose, 0)
	}
	if m.variant.CastVoteCommits && s.totalVotes() >= m.VoteThreshold() {
		if !s.isSet(idxCommitSent) {
			s.act(ActSendCommit)
			s.set(idxCommitSent, 1)
			s.note(m.noteVoteCommit)
		}
	}
	s.set(idxHasChosen, 1)
	s.act(ActSendNotFree)
	s.note("Choose this update and notify other instances (not free).")
}

// onUpdate handles the client's update request (Fig. 9, update message).
func (m *Model) onUpdate(s *machineState) {
	if s.isSet(idxUpdateReceived) {
		return // duplicate request: no effect
	}
	s.set(idxUpdateReceived, 1)
	s.note("Record receipt of the initial update from the client.")
	if m.variant.UpdateVotes &&
		s.isSet(idxCouldChoose) && !s.isSet(idxHasChosen) && !s.isSet(idxVoteSent) {
		m.castVote(s, m.variant.UpdateUnsetsCC)
	}
}

// onVote handles a vote message from another peer-set member.
func (m *Model) onVote(s *machineState) {
	s.set(idxVotesReceived, s.get(idxVotesReceived)+1)
	s.note("Record one further vote received.")
	if s.totalVotes() < m.VoteThreshold() {
		return
	}
	if !s.isSet(idxVoteSent) {
		// Phase transition: the vote threshold is reached by other
		// members' votes, so this member votes too, allowing the update
		// to proceed ahead of any previous locally selected one.
		if m.variant.VoteSetsHC && s.isSet(idxCouldChoose) {
			s.set(idxHasChosen, 1)
			s.act(ActSendNotFree)
			s.note("Threshold reached while free: adopt the update as chosen.")
		}
		s.act(ActSendVote)
		s.set(idxVoteSent, 1)
		if m.variant.VoteUnsetsCC {
			s.set(idxCouldChoose, 0)
		}
		s.note(m.noteVoteAdd)
	}
	if !s.isSet(idxCommitSent) {
		s.act(ActSendCommit)
		s.set(idxCommitSent, 1)
		s.note(m.noteVoteCommit)
	}
}

// onCommit handles a commit message; reaching the external commit threshold
// finishes the instance. It reports whether the machine finished.
func (m *Model) onCommit(s *machineState) bool {
	s.set(idxCommitsReceived, s.get(idxCommitsReceived)+1)
	s.note("Record one further commit received.")
	if s.get(idxCommitsReceived) < m.CommitThreshold() {
		return false
	}
	// Phase transition: enough commits seen; help lagging members before
	// finishing.
	if !s.isSet(idxVoteSent) {
		s.act(ActSendVote)
		s.set(idxVoteSent, 1)
		s.note(m.noteCommitVote)
	}
	if !s.isSet(idxCommitSent) {
		s.act(ActSendCommit)
		s.set(idxCommitSent, 1)
		s.note(m.noteCommitCommit)
	}
	if s.isSet(idxHasChosen) {
		s.act(ActSendFree)
		s.note("The chosen update is committed: this member is free again.")
	}
	s.note(m.noteCommitDone)
	return true
}

// onFree handles a free message from another machine instance: the member
// has no update in progress, so this instance may choose.
func (m *Model) onFree(s *machineState) {
	if m.variant.FreeGuardHC && s.isSet(idxHasChosen) {
		return
	}
	if m.variant.FreeGuardVS && s.isSet(idxVoteSent) {
		return
	}
	s.set(idxCouldChoose, 1)
	s.note("Member is free: a future update could be voted for.")
	if s.isSet(idxUpdateReceived) && !s.isSet(idxVoteSent) {
		m.castVote(s, m.variant.FreeUnsetsCC)
	}
}

// onNotFree handles a not_free message: another update is in progress, so
// this instance may not choose.
func (m *Model) onNotFree(s *machineState) {
	if m.variant.NotFreeGuardHC && s.isSet(idxHasChosen) {
		return
	}
	if m.variant.NotFreeGuardVS && s.isSet(idxVoteSent) {
		return
	}
	s.set(idxCouldChoose, 0)
	s.note("Another update is in progress: may not choose.")
}
