// Package simnet is a deterministic discrete-event network simulator: the
// substrate on which the ASA storage stack is exercised. The paper's system
// runs on non-trusted, physically distributed infrastructure; here message
// interleaving, variable latency, loss, duplication, partitions and node
// churn are reproduced under a seeded random source, so every experiment is
// replayable and every safety property testable across many schedules.
//
// The simulator is single-threaded: events are delivered one at a time in
// virtual-time order, and handlers run to completion before the next
// delivery. Determinism is part of the API contract — two networks built
// with the same seed and driven by the same calls produce identical
// histories.
package simnet

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// NodeID identifies a simulated node.
type NodeID string

// Message is one in-flight protocol message.
type Message struct {
	// From is the sending node.
	From NodeID
	// To is the destination node.
	To NodeID
	// Type is the protocol-level message type.
	Type string
	// Payload carries arbitrary protocol data.
	Payload any
}

// Handler receives messages delivered to a node.
type Handler interface {
	// HandleMessage processes one delivered message. It runs to completion
	// before the next delivery; it may call back into the network to send
	// further messages or set timers.
	HandleMessage(net *Network, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(net *Network, msg Message)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(net *Network, msg Message) { f(net, msg) }

var _ Handler = HandlerFunc(nil)

// Errors returned by the network.
var (
	// ErrDuplicateNode reports an AddNode with an already-registered ID.
	ErrDuplicateNode = errors.New("simnet: duplicate node")
	// ErrUnknownNode reports an operation on an unregistered node.
	ErrUnknownNode = errors.New("simnet: unknown node")
)

// Stats counts network activity.
type Stats struct {
	// Sent counts messages submitted for delivery.
	Sent int
	// Delivered counts messages handed to handlers.
	Delivered int
	// Dropped counts messages lost to the configured drop rate or to
	// partitions.
	Dropped int
	// Duplicated counts extra deliveries injected by the duplication
	// rate.
	Duplicated int
	// TimersFired counts elapsed timer callbacks.
	TimersFired int
}

// event is a scheduled occurrence: a message delivery or a timer callback.
type event struct {
	at    time.Duration
	seq   uint64 // tie-breaker for deterministic ordering
	msg   Message
	timer func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

type config struct {
	minLatency time.Duration
	maxLatency time.Duration
	dropRate   float64
	dupRate    float64
}

// Option configures a Network.
type Option func(*config)

// WithLatency sets the uniform message latency range.
func WithLatency(minLatency, maxLatency time.Duration) Option {
	return func(c *config) {
		c.minLatency = minLatency
		c.maxLatency = maxLatency
	}
}

// WithDropRate sets the probability in [0,1) that any message is lost.
func WithDropRate(p float64) Option {
	return func(c *config) { c.dropRate = p }
}

// WithDuplicateRate sets the probability in [0,1) that a delivered message
// is delivered a second time.
func WithDuplicateRate(p float64) Option {
	return func(c *config) { c.dupRate = p }
}

// Network is the simulated network: registered nodes, the virtual clock and
// the pending event queue.
type Network struct {
	cfg        config
	rng        *rand.Rand
	now        time.Duration
	seq        uint64
	queue      eventQueue
	nodes      map[NodeID]Handler
	partitions map[[2]NodeID]bool
	stats      Stats
}

// New returns an empty network driven by the given seed. The default
// configuration delivers every message with 1–10ms latency, no loss and no
// duplication.
func New(seed int64, opts ...Option) *Network {
	cfg := config{minLatency: time.Millisecond, maxLatency: 10 * time.Millisecond}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.maxLatency < cfg.minLatency {
		cfg.maxLatency = cfg.minLatency
	}
	return &Network{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(seed)),
		nodes:      make(map[NodeID]Handler),
		partitions: make(map[[2]NodeID]bool),
	}
}

// AddNode registers a node and its handler.
func (n *Network) AddNode(id NodeID, h Handler) error {
	if _, ok := n.nodes[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, id)
	}
	if h == nil {
		return fmt.Errorf("simnet: nil handler for node %s", id)
	}
	n.nodes[id] = h
	return nil
}

// RemoveNode unregisters a node; queued messages to it are dropped at
// delivery time (fail-stop departure).
func (n *Network) RemoveNode(id NodeID) {
	delete(n.nodes, id)
}

// Nodes returns the registered node IDs in sorted order.
func (n *Network) Nodes() []NodeID {
	ids := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// Stats returns a copy of the activity counters.
func (n *Network) Stats() Stats { return n.stats }

// Rand returns the network's seeded random source, shared with protocol
// code that needs reproducible randomness (e.g. replica selection).
func (n *Network) Rand() *rand.Rand { return n.rng }

// Partition cuts the link between a and b in both directions.
func (n *Network) Partition(a, b NodeID) {
	n.partitions[linkKey(a, b)] = true
}

// Heal restores the link between a and b.
func (n *Network) Heal(a, b NodeID) {
	delete(n.partitions, linkKey(a, b))
}

func linkKey(a, b NodeID) [2]NodeID {
	if a > b {
		a, b = b, a
	}
	return [2]NodeID{a, b}
}

func (n *Network) partitioned(a, b NodeID) bool {
	return n.partitions[linkKey(a, b)]
}

// Send schedules msg for delivery after the configured latency. Messages to
// unknown nodes are counted as dropped at delivery time, mirroring a host
// that has left the network.
func (n *Network) Send(msg Message) {
	n.stats.Sent++
	if n.cfg.dropRate > 0 && n.rng.Float64() < n.cfg.dropRate {
		n.stats.Dropped++
		return
	}
	n.schedule(n.latency(), msg, nil)
	if n.cfg.dupRate > 0 && n.rng.Float64() < n.cfg.dupRate {
		n.stats.Duplicated++
		n.schedule(n.latency(), msg, nil)
	}
}

// Broadcast sends the same type and payload from one node to many.
func (n *Network) Broadcast(from NodeID, to []NodeID, msgType string, payload any) {
	for _, dst := range to {
		n.Send(Message{From: from, To: dst, Type: msgType, Payload: payload})
	}
}

// After schedules a callback to run at Now()+d, for protocol timeouts and
// retries.
func (n *Network) After(d time.Duration, f func()) {
	if f == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	n.schedule(d, Message{}, f)
}

func (n *Network) latency() time.Duration {
	span := n.cfg.maxLatency - n.cfg.minLatency
	if span <= 0 {
		return n.cfg.minLatency
	}
	return n.cfg.minLatency + time.Duration(n.rng.Int63n(int64(span)+1))
}

func (n *Network) schedule(d time.Duration, msg Message, timer func()) {
	n.seq++
	heap.Push(&n.queue, &event{at: n.now + d, seq: n.seq, msg: msg, timer: timer})
}

// Pending reports the number of queued events.
func (n *Network) Pending() int { return len(n.queue) }

// Step delivers the next event; it reports false when the queue is empty.
func (n *Network) Step() bool {
	if len(n.queue) == 0 {
		return false
	}
	ev := heap.Pop(&n.queue).(*event)
	n.now = ev.at
	if ev.timer != nil {
		n.stats.TimersFired++
		ev.timer()
		return true
	}
	if n.partitioned(ev.msg.From, ev.msg.To) {
		n.stats.Dropped++
		return true
	}
	h, ok := n.nodes[ev.msg.To]
	if !ok {
		n.stats.Dropped++
		return true
	}
	n.stats.Delivered++
	h.HandleMessage(n, ev.msg)
	return true
}

// Run delivers events until the queue is empty or maxEvents deliveries have
// occurred; it returns the number of events processed. maxEvents <= 0 means
// no limit.
func (n *Network) Run(maxEvents int) int {
	processed := 0
	for (maxEvents <= 0 || processed < maxEvents) && n.Step() {
		processed++
	}
	return processed
}

// RunUntilTime delivers every event scheduled at or before deadline, in
// virtual-time order, and returns the number of events processed. Events
// scheduled later stay queued and the clock never advances past the
// deadline, so a caller can drive many independently scheduled instances
// for a bounded span of virtual time and stop at a cut that is identical
// for every node — the multi-instance analogue of Run's event budget.
func (n *Network) RunUntilTime(deadline time.Duration) int {
	processed := 0
	for len(n.queue) > 0 && n.queue[0].at <= deadline {
		n.Step()
		processed++
	}
	return processed
}

// RunUntil delivers events until cond holds, the queue drains, or maxEvents
// deliveries occur. It reports whether cond held when it stopped.
func (n *Network) RunUntil(cond func() bool, maxEvents int) bool {
	if cond() {
		return true
	}
	processed := 0
	for (maxEvents <= 0 || processed < maxEvents) && n.Step() {
		processed++
		if cond() {
			return true
		}
	}
	return cond()
}
