package simnet

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

type collector struct {
	got []Message
}

func (c *collector) HandleMessage(_ *Network, msg Message) {
	c.got = append(c.got, msg)
}

func TestDeliverBasic(t *testing.T) {
	n := New(1)
	a, b := &collector{}, &collector{}
	if err := n.AddNode("a", a); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("b", b); err != nil {
		t.Fatal(err)
	}

	n.Send(Message{From: "a", To: "b", Type: "ping", Payload: 42})
	if got := n.Run(0); got != 1 {
		t.Fatalf("Run processed %d events, want 1", got)
	}
	if len(b.got) != 1 || b.got[0].Type != "ping" || b.got[0].Payload.(int) != 42 {
		t.Fatalf("b received %v", b.got)
	}
	if len(a.got) != 0 {
		t.Error("sender received its own message")
	}
	if n.Now() <= 0 {
		t.Error("virtual clock did not advance")
	}
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestAddNodeValidation(t *testing.T) {
	n := New(1)
	if err := n.AddNode("a", &collector{}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("a", &collector{}); !errors.Is(err, ErrDuplicateNode) {
		t.Errorf("duplicate AddNode error = %v", err)
	}
	if err := n.AddNode("b", nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []string {
		n := New(seed, WithLatency(time.Millisecond, 20*time.Millisecond))
		var log []string
		for _, id := range []NodeID{"a", "b", "c"} {
			id := id
			err := n.AddNode(id, HandlerFunc(func(net *Network, msg Message) {
				log = append(log, fmt.Sprintf("%s<-%s:%s@%v", id, msg.From, msg.Type, net.Now()))
			}))
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 30; i++ {
			n.Send(Message{From: "a", To: NodeID([]string{"b", "c"}[i%2]), Type: fmt.Sprintf("m%d", i)})
		}
		n.Run(0)
		return log
	}
	t1, t2 := trace(7), trace(7)
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, t1[i], t2[i])
		}
	}
}

func TestDropRate(t *testing.T) {
	n := New(3, WithDropRate(0.5))
	c := &collector{}
	if err := n.AddNode("b", c); err != nil {
		t.Fatal(err)
	}
	const total = 1000
	for i := 0; i < total; i++ {
		n.Send(Message{From: "a", To: "b", Type: "x"})
	}
	n.Run(0)
	st := n.Stats()
	if st.Delivered+st.Dropped != total {
		t.Errorf("delivered+dropped = %d, want %d", st.Delivered+st.Dropped, total)
	}
	if st.Dropped < total/3 || st.Dropped > 2*total/3 {
		t.Errorf("dropped = %d of %d, outside plausible band for p=0.5", st.Dropped, total)
	}
	if len(c.got) != st.Delivered {
		t.Errorf("handler saw %d, stats say %d", len(c.got), st.Delivered)
	}
}

func TestDuplicateRate(t *testing.T) {
	n := New(4, WithDuplicateRate(0.5))
	c := &collector{}
	if err := n.AddNode("b", c); err != nil {
		t.Fatal(err)
	}
	const total = 1000
	for i := 0; i < total; i++ {
		n.Send(Message{From: "a", To: "b", Type: "x"})
	}
	n.Run(0)
	if len(c.got) <= total {
		t.Errorf("no duplicates delivered: %d", len(c.got))
	}
	if got := n.Stats().Duplicated; got != len(c.got)-total {
		t.Errorf("Duplicated = %d, want %d", got, len(c.got)-total)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(5)
	c := &collector{}
	if err := n.AddNode("b", c); err != nil {
		t.Fatal(err)
	}
	n.Partition("a", "b")
	n.Send(Message{From: "a", To: "b", Type: "x"})
	n.Run(0)
	if len(c.got) != 0 {
		t.Error("message crossed a partition")
	}
	if n.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", n.Stats().Dropped)
	}
	n.Heal("a", "b")
	n.Send(Message{From: "a", To: "b", Type: "y"})
	n.Run(0)
	if len(c.got) != 1 || c.got[0].Type != "y" {
		t.Errorf("after heal got %v", c.got)
	}
	// Partition is symmetric.
	n.Partition("b", "a")
	n.Send(Message{From: "a", To: "b", Type: "z"})
	n.Run(0)
	if len(c.got) != 1 {
		t.Error("symmetric partition not enforced")
	}
}

func TestRemoveNodeDropsQueuedMessages(t *testing.T) {
	n := New(6)
	c := &collector{}
	if err := n.AddNode("b", c); err != nil {
		t.Fatal(err)
	}
	n.Send(Message{From: "a", To: "b", Type: "x"})
	n.RemoveNode("b")
	n.Run(0)
	if len(c.got) != 0 {
		t.Error("removed node received message")
	}
	if n.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", n.Stats().Dropped)
	}
}

func TestTimerOrdering(t *testing.T) {
	n := New(7)
	var order []string
	n.After(30*time.Millisecond, func() { order = append(order, "late") })
	n.After(10*time.Millisecond, func() { order = append(order, "early") })
	n.After(-5, func() { order = append(order, "now") })
	n.After(0, nil) // ignored
	n.Run(0)
	want := []string{"now", "early", "late"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if n.Stats().TimersFired != 3 {
		t.Errorf("TimersFired = %d, want 3", n.Stats().TimersFired)
	}
}

func TestTimersChainWithMessages(t *testing.T) {
	n := New(8, WithLatency(5*time.Millisecond, 5*time.Millisecond))
	var events []string
	err := n.AddNode("b", HandlerFunc(func(net *Network, msg Message) {
		events = append(events, "msg")
		net.After(time.Millisecond, func() { events = append(events, "timer") })
	}))
	if err != nil {
		t.Fatal(err)
	}
	n.Send(Message{From: "a", To: "b", Type: "x"})
	n.Run(0)
	if len(events) != 2 || events[0] != "msg" || events[1] != "timer" {
		t.Errorf("events = %v", events)
	}
}

func TestRunUntil(t *testing.T) {
	n := New(9)
	count := 0
	err := n.AddNode("b", HandlerFunc(func(net *Network, msg Message) {
		count++
		if count < 10 {
			net.Send(Message{From: "b", To: "b", Type: "loop"})
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	n.Send(Message{From: "a", To: "b", Type: "loop"})
	if !n.RunUntil(func() bool { return count >= 5 }, 0) {
		t.Fatal("RunUntil did not reach condition")
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	// Condition already true: no events processed.
	before := n.Stats().Delivered
	if !n.RunUntil(func() bool { return true }, 0) {
		t.Fatal("trivially true condition not detected")
	}
	if n.Stats().Delivered != before {
		t.Error("RunUntil processed events despite satisfied condition")
	}
	// Unreachable condition with bounded events terminates.
	if n.RunUntil(func() bool { return false }, 3) {
		t.Error("unreachable condition reported true")
	}
}

func TestRunMaxEvents(t *testing.T) {
	n := New(10)
	if err := n.AddNode("b", &collector{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		n.Send(Message{From: "a", To: "b", Type: "x"})
	}
	if got := n.Run(4); got != 4 {
		t.Errorf("Run(4) = %d", got)
	}
	if n.Pending() != 6 {
		t.Errorf("Pending = %d, want 6", n.Pending())
	}
}

func TestNodesSorted(t *testing.T) {
	n := New(11)
	for _, id := range []NodeID{"c", "a", "b"} {
		if err := n.AddNode(id, &collector{}); err != nil {
			t.Fatal(err)
		}
	}
	got := n.Nodes()
	want := []NodeID{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes() = %v", got)
		}
	}
}

// TestVirtualTimeMonotonic is a property test: across arbitrary seeds,
// delivery times never decrease and all latencies stay within the
// configured band.
func TestVirtualTimeMonotonic(t *testing.T) {
	prop := func(seed int64) bool {
		n := New(seed, WithLatency(2*time.Millisecond, 9*time.Millisecond))
		ok := true
		last := time.Duration(0)
		err := n.AddNode("b", HandlerFunc(func(net *Network, msg Message) {
			if net.Now() < last {
				ok = false
			}
			last = net.Now()
		}))
		if err != nil {
			return false
		}
		for i := 0; i < 50; i++ {
			n.Send(Message{From: "a", To: "b", Type: "x"})
		}
		n.Run(0)
		return ok
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBroadcast(t *testing.T) {
	n := New(12)
	cs := map[NodeID]*collector{"a": {}, "b": {}, "c": {}}
	for id, c := range cs {
		if err := n.AddNode(id, c); err != nil {
			t.Fatal(err)
		}
	}
	n.Broadcast("a", []NodeID{"b", "c"}, "hello", nil)
	n.Run(0)
	if len(cs["b"].got) != 1 || len(cs["c"].got) != 1 {
		t.Errorf("broadcast delivery: b=%d c=%d", len(cs["b"].got), len(cs["c"].got))
	}
	if len(cs["a"].got) != 0 {
		t.Error("broadcast delivered to sender")
	}
}

func TestRunUntilTime(t *testing.T) {
	n := New(14)
	var fired []string
	n.After(5*time.Millisecond, func() { fired = append(fired, "a") })
	n.After(10*time.Millisecond, func() { fired = append(fired, "b") })
	n.After(20*time.Millisecond, func() { fired = append(fired, "c") })

	// Deadline between the second and third timer: exactly two fire.
	if got := n.RunUntilTime(15 * time.Millisecond); got != 2 {
		t.Fatalf("RunUntilTime processed %d events, want 2", got)
	}
	if len(fired) != 2 || fired[0] != "a" || fired[1] != "b" {
		t.Fatalf("fired = %v", fired)
	}
	if n.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", n.Pending())
	}
	if n.Now() > 15*time.Millisecond {
		t.Fatalf("clock advanced past deadline: %v", n.Now())
	}
	// A deadline on an event's exact timestamp includes that event.
	if got := n.RunUntilTime(20 * time.Millisecond); got != 1 {
		t.Fatalf("boundary event not processed: %d", got)
	}
	// Draining an empty queue is a no-op.
	if got := n.RunUntilTime(time.Hour); got != 0 {
		t.Fatalf("empty-queue RunUntilTime processed %d events", got)
	}
}

// timerFiringOrder schedules many timers with durations sampled from the
// network's own PRNG plus latency-jittered self-messages, and returns the
// order everything fired in.
func timerFiringOrder(seed int64) []int {
	n := New(seed, WithLatency(time.Millisecond, 10*time.Millisecond))
	var order []int
	_ = n.AddNode("node", HandlerFunc(func(net *Network, msg Message) {
		order = append(order, msg.Payload.(int))
	}))
	for i := 0; i < 200; i++ {
		i := i
		d := time.Duration(n.Rand().Int63n(int64(50 * time.Millisecond)))
		if i%3 == 0 {
			n.Send(Message{From: "ext", To: "node", Type: "tick", Payload: i})
		} else {
			n.After(d, func() { order = append(order, i) })
		}
	}
	n.Run(0)
	return order
}

// TestManyTimersDeterministicOrder: hundreds of concurrently scheduled
// timers and jittered messages fire in exactly the same order for the
// same seed — the property fleet-scale shard reports depend on — and in
// a different order for a different seed.
func TestManyTimersDeterministicOrder(t *testing.T) {
	a := timerFiringOrder(99)
	b := timerFiringOrder(99)
	if len(a) != 200 {
		t.Fatalf("fired %d of 200 events", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d: %d != %d", i, a[i], b[i])
		}
	}
	c := timerFiringOrder(100)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced an identical firing order")
	}
}
