package version

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"asagen/internal/chord"
	"asagen/internal/commit"
	"asagen/internal/core"
	"asagen/internal/simnet"
	"asagen/internal/storage"
)

// Errors returned by the version service endpoint.
var (
	// ErrUpdateFailed reports an append that exhausted its retry budget
	// without f+1 members confirming the record.
	ErrUpdateFailed = errors.New("version: update not recorded")
	// ErrNoQuorum reports a read for which no value was returned
	// consistently by at least f+1 members.
	ErrNoQuorum = errors.New("version: no f+1 consistent replies")
)

// Service wires the version history layer onto a simulated network and
// routing overlay: one Member per overlay node, executing machines
// generated from a commit-vocabulary abstract model for the configured
// replication factor (the strict commit model by default).
type Service struct {
	net     *simnet.Network
	ring    *chord.Ring
	machine *core.StateMachine
	members map[simnet.NodeID]*Member
	r       int
	f       int
	timeout time.Duration
	builder func(r int) (core.Model, error)
	cache   *core.Cache
}

// ServiceOption configures a Service.
type ServiceOption func(*Service)

// WithAbandonTimeout sets the member-side instance abandonment timeout.
func WithAbandonTimeout(d time.Duration) ServiceOption {
	return func(s *Service) { s.timeout = d }
}

// WithModelBuilder replaces the abstract model the members execute. The
// builder receives the replication factor and must produce a model whose
// generated machine reacts to the commit message vocabulary (UPDATE, VOTE,
// COMMIT, FREE, NOT_FREE) — e.g. a commit-protocol variant from the model
// registry; NewService rejects machines that do not.
func WithModelBuilder(b func(r int) (core.Model, error)) ServiceOption {
	return func(s *Service) { s.builder = b }
}

// WithMachineCache shares a fingerprint-keyed generation cache between
// services (§4.2's cached generation policy): services constructed with
// the same cache and equivalent models pay the generation cost once. The
// cache's own factory is ignored — the service generates through its
// model builder via the cache's fingerprint memoisation.
func WithMachineCache(c *core.Cache) ServiceOption {
	return func(s *Service) { s.cache = c }
}

// NewService generates the peer-set machine for the replication factor and
// installs an honest member on every overlay node. The context cancels the
// machine generation: constructing a service for a very large replication
// factor can be abandoned promptly, and the shared cache (WithMachineCache)
// is left without a poisoned entry.
func NewService(ctx context.Context, net *simnet.Network, ring *chord.Ring, replicationFactor int, opts ...ServiceOption) (*Service, error) {
	s := &Service{
		net:     net,
		ring:    ring,
		members: make(map[simnet.NodeID]*Member),
		r:       replicationFactor,
		timeout: DefaultAbandonTimeout,
		builder: func(r int) (core.Model, error) { return commit.NewModel(r) },
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.cache == nil {
		s.cache = core.NewGenerationCache(core.WithoutDescriptions())
	}
	model, err := s.builder(replicationFactor)
	if err != nil {
		return nil, err
	}
	machine, err := s.cache.MachineFor(ctx, model)
	if err != nil {
		return nil, fmt.Errorf("version: generate machine: %w", err)
	}
	if err := checkCommitVocabulary(machine); err != nil {
		return nil, err
	}
	s.machine = machine
	s.f = faultTolerance(model)
	for _, n := range ring.Nodes() {
		id := simnet.NodeID(n.Name())
		member := NewMember(id, machine, HonestMember, s.timeout)
		s.members[id] = member
		if err := net.AddNode(id, member); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// checkCommitVocabulary verifies the generated machine reacts to the commit
// protocol's message set; members dispatch exactly these messages, so a
// machine from an unrelated model family would sit inert on every delivery.
func checkCommitVocabulary(machine *core.StateMachine) error {
	have := make(map[string]bool, len(machine.Messages))
	for _, msg := range machine.Messages {
		have[msg] = true
	}
	for _, msg := range []string{commit.MsgUpdate, commit.MsgVote, commit.MsgCommit, commit.MsgFree, commit.MsgNotFree} {
		if !have[msg] {
			return fmt.Errorf("version: model %q does not speak the commit vocabulary (missing %s)",
				machine.ModelName, msg)
		}
	}
	return nil
}

// faultTolerance extracts the model's tolerated fault count, falling back to
// the BFT bound ⌊(r−1)/3⌋ for models that do not expose one.
func faultTolerance(model core.Model) int {
	if ft, ok := model.(interface{ FaultTolerance() int }); ok {
		return ft.FaultTolerance()
	}
	return (model.Parameter() - 1) / 3
}

// Machine returns the generated machine members execute.
func (s *Service) Machine() *core.StateMachine { return s.machine }

// MachineCache returns the generation cache the service builds machines
// through, e.g. to inspect its hit/generation statistics.
func (s *Service) MachineCache() *core.Cache { return s.cache }

// ReplicationFactor returns r.
func (s *Service) ReplicationFactor() int { return s.r }

// FaultTolerance returns f.
func (s *Service) FaultTolerance() int { return s.f }

// Member returns the member hosted on the given node.
func (s *Service) Member(id simnet.NodeID) *Member { return s.members[id] }

// Members returns all members in ID order.
func (s *Service) Members() []*Member {
	ids := make([]string, 0, len(s.members))
	for id := range s.members {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	out := make([]*Member, len(ids))
	for i, id := range ids {
		out[i] = s.members[simnet.NodeID(id)]
	}
	return out
}

// SetBehaviour replaces the fault model of the member on the given node.
func (s *Service) SetBehaviour(id simnet.NodeID, b Behaviour) error {
	m, ok := s.members[id]
	if !ok {
		return fmt.Errorf("version: no member %s", id)
	}
	m.behaviour = b
	return nil
}

// PeerSet locates the GUID's peer set: the owners of its replica keys.
func (s *Service) PeerSet(guid storage.GUID) ([]simnet.NodeID, error) {
	keys := storage.KeysForGUID(guid, s.r)
	ids := make([]simnet.NodeID, 0, len(keys))
	for _, key := range keys {
		from, err := s.ring.RandomNode()
		if err != nil {
			return nil, err
		}
		owner, _, err := from.FindSuccessor(key)
		if err != nil {
			return nil, fmt.Errorf("version: locate peer set: %w", err)
		}
		ids = append(ids, simnet.NodeID(owner.Name()))
	}
	return ids, nil
}

// Client is a version-service endpoint: it issues append requests to the
// peer set and reads histories with f+1 agreement.
type Client struct {
	id      simnet.NodeID
	service *Service
	retry   RetryPolicy
	// maxAttempts bounds the append retry loop.
	maxAttempts int
	// requestTimeout bounds one append attempt in virtual time.
	requestTimeout time.Duration

	nextReq   uint64
	confirms  map[UpdateID]map[simnet.NodeID]bool
	histories map[uint64]map[simnet.NodeID][]storage.PID
	// Attempts records how many protocol rounds the last Update needed.
	Attempts int
}

var _ simnet.Handler = (*Client)(nil)

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRetryPolicy selects the back-off scheme (default: exponential).
func WithRetryPolicy(p RetryPolicy) ClientOption {
	return func(c *Client) { c.retry = p }
}

// WithMaxAttempts bounds the append retry loop (default 8).
func WithMaxAttempts(n int) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.maxAttempts = n
		}
	}
}

// WithRequestTimeout bounds one append attempt in virtual time.
func WithRequestTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.requestTimeout = d
		}
	}
}

// NewClient registers a version-service client on the network.
func (s *Service) NewClient(id simnet.NodeID, opts ...ClientOption) (*Client, error) {
	c := &Client{
		id:             id,
		service:        s,
		retry:          ExponentialBackoff{Base: 50 * time.Millisecond, Cap: 2 * time.Second},
		maxAttempts:    8,
		requestTimeout: 400 * time.Millisecond,
		confirms:       make(map[UpdateID]map[simnet.NodeID]bool),
		histories:      make(map[uint64]map[simnet.NodeID][]storage.PID),
	}
	for _, opt := range opts {
		opt(c)
	}
	if err := s.net.AddNode(id, c); err != nil {
		return nil, err
	}
	return c, nil
}

// HandleMessage implements simnet.Handler.
func (c *Client) HandleMessage(_ *simnet.Network, msg simnet.Message) {
	switch msg.Type {
	case MsgRecorded:
		rec, ok := msg.Payload.(Recorded)
		if !ok {
			return
		}
		if confirms, pending := c.confirms[rec.Update]; pending {
			confirms[msg.From] = true
		}
	case MsgHistoryReply:
		reply, ok := msg.Payload.(HistoryReply)
		if !ok {
			return
		}
		if replies, pending := c.histories[reply.ReqID]; pending {
			replies[msg.From] = reply.History
		}
	}
}

// Update appends a new version to the GUID's history: the request is sent
// to every peer-set member, and the append completes once f+1 members have
// confirmed recording it. Attempts that time out are retried under the
// client's back-off policy with a fresh protocol round.
func (c *Client) Update(guid storage.GUID, pid storage.PID) error {
	peers, err := c.service.PeerSet(guid)
	if err != nil {
		return err
	}
	need := c.service.f + 1

	for attempt := 1; attempt <= c.maxAttempts; attempt++ {
		c.Attempts = attempt
		u := UpdateID{PID: pid, Attempt: attempt}
		confirms := make(map[simnet.NodeID]bool)
		c.confirms[u] = confirms

		sent := map[simnet.NodeID]bool{}
		for _, peer := range peers {
			if sent[peer] {
				continue
			}
			sent[peer] = true
			c.service.net.Send(simnet.Message{
				From: c.id, To: peer, Type: MsgUpdate,
				Payload: UpdateRequest{GUID: guid, Update: u, Peers: peers, ReplyTo: c.id},
			})
		}

		deadline := c.service.net.Now() + c.requestTimeout
		done := c.service.net.RunUntil(func() bool {
			return len(confirms) >= need || c.service.net.Now() > deadline
		}, 0)
		recorded := len(confirms) >= need
		delete(c.confirms, u)
		if recorded {
			return nil
		}
		_ = done

		// Back off before the next round; in virtual time this advances
		// the clock so member abandon timers fire and slots free up.
		delay := c.retry.Delay(attempt, c.service.net.Rand())
		waitUntil := c.service.net.Now() + delay
		idle := false
		c.service.net.After(delay, func() { idle = true })
		c.service.net.RunUntil(func() bool { return idle || c.service.net.Now() >= waitUntil }, 0)
	}
	return fmt.Errorf("%w: %s after %d attempts", ErrUpdateFailed, pid.Short(), c.maxAttempts)
}

// History reads the GUID's version sequence: every peer-set member is
// asked, and the longest history returned identically by at least f+1
// members is selected (§2.2's consistent-read rule, applied to the whole
// sequence).
func (c *Client) History(guid storage.GUID) ([]storage.PID, error) {
	peers, err := c.service.PeerSet(guid)
	if err != nil {
		return nil, err
	}
	c.nextReq++
	reqID := c.nextReq
	replies := make(map[simnet.NodeID][]storage.PID)
	c.histories[reqID] = replies
	defer delete(c.histories, reqID)

	sent := map[simnet.NodeID]bool{}
	for _, peer := range peers {
		if sent[peer] {
			continue
		}
		sent[peer] = true
		c.service.net.Send(simnet.Message{
			From: c.id, To: peer, Type: MsgHistoryReq,
			Payload: HistoryRequest{ReqID: reqID, GUID: guid},
		})
	}
	deadline := c.service.net.Now() + c.requestTimeout
	c.service.net.RunUntil(func() bool {
		return len(replies) >= len(sent) || c.service.net.Now() > deadline
	}, 0)

	need := c.service.f + 1
	counts := make(map[string]int)
	values := make(map[string][]storage.PID)
	for _, h := range replies {
		key := historyKey(h)
		counts[key]++
		values[key] = h
	}
	var best []storage.PID
	found := false
	for key, n := range counts {
		if n >= need {
			v := values[key]
			if !found || len(v) > len(best) {
				best = v
				found = true
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: guid %s", ErrNoQuorum, guid.Short())
	}
	return append([]storage.PID(nil), best...), nil
}

// GetVersion returns the version at the given history index, under the
// same f+1 agreement rule.
func (c *Client) GetVersion(guid storage.GUID, index int) (storage.PID, error) {
	h, err := c.History(guid)
	if err != nil {
		return storage.PID{}, err
	}
	if index < 0 || index >= len(h) {
		return storage.PID{}, fmt.Errorf("version: index %d out of range (history length %d)", index, len(h))
	}
	return h[index], nil
}

// Latest returns the most recent version, under the f+1 agreement rule.
func (c *Client) Latest(guid storage.GUID) (storage.PID, error) {
	h, err := c.History(guid)
	if err != nil {
		return storage.PID{}, err
	}
	if len(h) == 0 {
		return storage.PID{}, fmt.Errorf("version: empty history for %s", guid.Short())
	}
	return h[len(h)-1], nil
}

func historyKey(h []storage.PID) string {
	b := make([]byte, 0, len(h)*20)
	for _, pid := range h {
		b = append(b, pid[:]...)
	}
	return string(b)
}
