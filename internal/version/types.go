// Package version implements the version history service of §2.2: each
// GUID maps to an agreed, append-only sequence of PIDs, replicated on the
// peer set of nodes that own the GUID's replica keys. Appending a version
// is an update, so the members execute the Byzantine-fault-tolerant commit
// protocol among themselves — the machines generated from the abstract
// model in package commit — and only complete once the next version is
// agreed.
//
// The paper notes the protocol may deadlock under contention and leaves
// the recovery scheme open ("various schemes such as random or exponential
// back-off ... could be used"); this implementation supplies both halves:
// members abandon instances that fail to finish within a timeout (freeing
// the serialisation slot), and the service endpoint retries with a
// pluggable back-off policy.
package version

import (
	"fmt"

	"asagen/internal/simnet"
	"asagen/internal/storage"
)

// UpdateID identifies one attempt to append a version: the PID being
// recorded plus the endpoint's attempt number, so a retry after an
// abandoned round is a fresh protocol instance.
type UpdateID struct {
	// PID is the version being appended.
	PID storage.PID
	// Attempt distinguishes protocol rounds for the same PID.
	Attempt int
}

// String renders the update id for logs.
func (u UpdateID) String() string {
	return fmt.Sprintf("%s#%d", u.PID.Short(), u.Attempt)
}

// Message types exchanged by the version service.
const (
	// MsgUpdate is the client's append request to a peer-set member.
	MsgUpdate = "version.update"
	// MsgVote is a peer-set member's vote for an update.
	MsgVote = "version.vote"
	// MsgCommit is a peer-set member's commit for an update.
	MsgCommit = "version.commit"
	// MsgRecorded tells the requesting client a member has recorded the
	// update in its history.
	MsgRecorded = "version.recorded"
	// MsgHistoryReq asks a member for its recorded history of a GUID.
	MsgHistoryReq = "version.history_req"
	// MsgHistoryReply returns a member's recorded history.
	MsgHistoryReply = "version.history_reply"
)

// UpdateRequest is the payload of MsgUpdate.
type UpdateRequest struct {
	// GUID selects the version history.
	GUID storage.GUID
	// Update is the version append attempt.
	Update UpdateID
	// Peers is the peer set for the GUID, located by the endpoint.
	Peers []simnet.NodeID
	// ReplyTo receives the MsgRecorded confirmation.
	ReplyTo simnet.NodeID
}

// ProtocolMsg is the payload of MsgVote and MsgCommit.
type ProtocolMsg struct {
	// GUID selects the version history.
	GUID storage.GUID
	// Update is the subject of the vote or commit.
	Update UpdateID
	// Peers propagates the peer set to members that have not yet heard
	// of the GUID.
	Peers []simnet.NodeID
}

// Recorded is the payload of MsgRecorded.
type Recorded struct {
	// GUID selects the version history.
	GUID storage.GUID
	// Update is the recorded append attempt.
	Update UpdateID
	// Index is the position the update received in the member's history.
	Index int
}

// HistoryRequest is the payload of MsgHistoryReq.
type HistoryRequest struct {
	// ReqID correlates the reply.
	ReqID uint64
	// GUID selects the version history.
	GUID storage.GUID
}

// HistoryReply is the payload of MsgHistoryReply.
type HistoryReply struct {
	// ReqID echoes the request.
	ReqID uint64
	// GUID echoes the history identity.
	GUID storage.GUID
	// History is the member's recorded sequence of PIDs.
	History []storage.PID
}
