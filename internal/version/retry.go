package version

import (
	"math/rand"
	"time"
)

// RetryPolicy decides how long the endpoint waits before re-attempting an
// update that timed out — the timeout/retry scheme §2.2 calls for, since
// concurrent updates can deadlock without any reaching the vote threshold.
type RetryPolicy interface {
	// Delay returns the wait before the given attempt (1-based).
	Delay(attempt int, rng *rand.Rand) time.Duration
	// Name identifies the policy in experiment output.
	Name() string
}

// FixedBackoff waits a constant interval between attempts.
type FixedBackoff struct {
	// Interval is the constant retry delay.
	Interval time.Duration
}

var _ RetryPolicy = FixedBackoff{}

// Delay implements RetryPolicy.
func (p FixedBackoff) Delay(int, *rand.Rand) time.Duration { return p.Interval }

// Name implements RetryPolicy.
func (p FixedBackoff) Name() string { return "fixed" }

// RandomBackoff waits a uniformly random interval up to Max, decorrelating
// competing endpoints.
type RandomBackoff struct {
	// Max bounds the random retry delay.
	Max time.Duration
}

var _ RetryPolicy = RandomBackoff{}

// Delay implements RetryPolicy.
func (p RandomBackoff) Delay(_ int, rng *rand.Rand) time.Duration {
	if p.Max <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(p.Max)) + 1)
}

// Name implements RetryPolicy.
func (p RandomBackoff) Name() string { return "random" }

// ExponentialBackoff doubles a jittered base delay each attempt, capped.
type ExponentialBackoff struct {
	// Base is the first-attempt delay.
	Base time.Duration
	// Cap bounds the delay growth.
	Cap time.Duration
}

var _ RetryPolicy = ExponentialBackoff{}

// Delay implements RetryPolicy.
func (p ExponentialBackoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	d := p.Base
	for i := 1; i < attempt && d < p.Cap; i++ {
		d *= 2
	}
	if p.Cap > 0 && d > p.Cap {
		d = p.Cap
	}
	if d <= 0 {
		return 0
	}
	// Full jitter: uniform in (0, d], avoiding synchronised retries.
	return time.Duration(rng.Int63n(int64(d)) + 1)
}

// Name implements RetryPolicy.
func (p ExponentialBackoff) Name() string { return "exponential" }
