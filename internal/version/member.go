package version

import (
	"fmt"
	"sort"
	"time"

	"asagen/internal/commit"
	"asagen/internal/core"
	"asagen/internal/runtime"
	"asagen/internal/simnet"
	"asagen/internal/storage"
)

// Behaviour selects how a peer-set member (mis)behaves.
type Behaviour int

// Member behaviours.
const (
	// HonestMember follows the generated protocol.
	HonestMember Behaviour = iota + 1
	// SilentMember never participates (fail-stop).
	SilentMember
	// EquivocatingMember floods votes and commits for every update it
	// hears of, attempting to subvert the ordering.
	EquivocatingMember
)

// String names the behaviour.
func (b Behaviour) String() string {
	switch b {
	case HonestMember:
		return "honest"
	case SilentMember:
		return "silent"
	case EquivocatingMember:
		return "equivocating"
	default:
		return "unknown"
	}
}

// DefaultAbandonTimeout is the member-side liveness timeout: an instance
// that has not finished after this long is abandoned and its serialisation
// slot freed, so endpoint retries can make progress after vote-split
// deadlocks (§2.2).
const DefaultAbandonTimeout = 250 * time.Millisecond

// guidState is a member's per-GUID protocol state: the running machine
// instances (one per ongoing update, §3.1), the serialisation slot, and the
// recorded history.
type guidState struct {
	peers      []simnet.NodeID
	instances  map[UpdateID]*runtime.Instance
	requesters map[UpdateID][]simnet.NodeID
	slotFree   bool
	// slotOwner is the update whose chosen instance holds the slot, valid
	// when hasSlotOwner is set.
	slotOwner    UpdateID
	hasSlotOwner bool
	history      []storage.PID
	recorded     map[UpdateID]bool
	// abandoned tombstones updates whose instance timed out: stale
	// protocol traffic for them is ignored, preventing vote re-counting.
	abandoned map[UpdateID]bool
	// votedBy and committedBy deduplicate per-sender protocol messages:
	// the machine counts messages and relies on each peer voting and
	// committing at most once per update.
	votedBy     map[UpdateID]map[simnet.NodeID]bool
	committedBy map[UpdateID]map[simnet.NodeID]bool
}

// Member is one version-service peer-set member: it hosts a machine
// instance per (GUID, ongoing update) and routes the instances' actions —
// votes and commits to the other members, free and not_free to its own
// sibling instances.
type Member struct {
	id        simnet.NodeID
	behaviour Behaviour
	machine   *core.StateMachine
	timeout   time.Duration
	guids     map[storage.GUID]*guidState
}

var _ simnet.Handler = (*Member)(nil)

// NewMember returns a member executing the given generated machine.
func NewMember(id simnet.NodeID, machine *core.StateMachine, behaviour Behaviour, timeout time.Duration) *Member {
	if timeout <= 0 {
		timeout = DefaultAbandonTimeout
	}
	return &Member{
		id:        id,
		behaviour: behaviour,
		machine:   machine,
		timeout:   timeout,
		guids:     make(map[storage.GUID]*guidState),
	}
}

// ID returns the member's network identity.
func (m *Member) ID() simnet.NodeID { return m.id }

// Behaviour returns the member's fault model.
func (m *Member) Behaviour() Behaviour { return m.behaviour }

// History returns the member's recorded version sequence for a GUID.
func (m *Member) History(guid storage.GUID) []storage.PID {
	gs, ok := m.guids[guid]
	if !ok {
		return nil
	}
	return append([]storage.PID(nil), gs.history...)
}

func (m *Member) state(guid storage.GUID) *guidState {
	gs, ok := m.guids[guid]
	if !ok {
		gs = &guidState{
			instances:   make(map[UpdateID]*runtime.Instance),
			requesters:  make(map[UpdateID][]simnet.NodeID),
			recorded:    make(map[UpdateID]bool),
			abandoned:   make(map[UpdateID]bool),
			votedBy:     make(map[UpdateID]map[simnet.NodeID]bool),
			committedBy: make(map[UpdateID]map[simnet.NodeID]bool),
			slotFree:    true,
		}
		m.guids[guid] = gs
	}
	return gs
}

// HandleMessage implements simnet.Handler.
func (m *Member) HandleMessage(net *simnet.Network, msg simnet.Message) {
	switch m.behaviour {
	case SilentMember:
		return
	case EquivocatingMember:
		m.equivocate(net, msg)
		return
	}
	switch msg.Type {
	case MsgUpdate:
		req, ok := msg.Payload.(UpdateRequest)
		if !ok {
			return
		}
		gs := m.state(req.GUID)
		m.learnPeers(gs, req.Peers)
		gs.requesters[req.Update] = appendUnique(gs.requesters[req.Update], req.ReplyTo)
		if gs.recorded[req.Update] {
			// Already recorded (e.g. a duplicate request): confirm
			// immediately.
			m.confirm(net, req.GUID, gs, req.Update)
			return
		}
		if gs.abandoned[req.Update] {
			return // this round timed out here; the client will retry
		}
		inst := m.instance(net, req.GUID, gs, req.Update)
		if inst != nil && !inst.Finished() {
			m.deliver(net, req.GUID, gs, req.Update, commit.MsgUpdate)
		}
	case MsgVote:
		m.protocolMessage(net, msg, commit.MsgVote)
	case MsgCommit:
		m.protocolMessage(net, msg, commit.MsgCommit)
	case MsgHistoryReq:
		req, ok := msg.Payload.(HistoryRequest)
		if !ok {
			return
		}
		net.Send(simnet.Message{
			From: m.id, To: msg.From, Type: MsgHistoryReply,
			Payload: HistoryReply{ReqID: req.ReqID, GUID: req.GUID, History: m.History(req.GUID)},
		})
	}
}

func (m *Member) protocolMessage(net *simnet.Network, msg simnet.Message, fsmMsg string) {
	p, ok := msg.Payload.(ProtocolMsg)
	if !ok {
		return
	}
	gs := m.state(p.GUID)
	m.learnPeers(gs, p.Peers)
	if gs.recorded[p.Update] || gs.abandoned[p.Update] {
		return // stale traffic for a settled update
	}
	// Deduplicate per sender: the machine counts vote and commit
	// messages, so each peer must contribute at most one of each.
	var dedup map[UpdateID]map[simnet.NodeID]bool
	if fsmMsg == commit.MsgVote {
		dedup = gs.votedBy
	} else {
		dedup = gs.committedBy
	}
	senders, ok := dedup[p.Update]
	if !ok {
		senders = make(map[simnet.NodeID]bool)
		dedup[p.Update] = senders
	}
	if senders[msg.From] {
		return
	}
	senders[msg.From] = true
	if inst := m.instance(net, p.GUID, gs, p.Update); inst != nil && !inst.Finished() {
		m.deliver(net, p.GUID, gs, p.Update, fsmMsg)
	}
}

func (m *Member) learnPeers(gs *guidState, peers []simnet.NodeID) {
	if len(gs.peers) == 0 && len(peers) > 0 {
		gs.peers = append([]simnet.NodeID(nil), peers...)
	}
}

// instance returns the machine instance for an update, creating it when
// first referenced: a new instance starts in the machine's not-free start
// state and receives a FREE message at once when the member's slot is
// open.
func (m *Member) instance(net *simnet.Network, guid storage.GUID, gs *guidState, u UpdateID) *runtime.Instance {
	if inst, ok := gs.instances[u]; ok {
		return inst
	}
	inst, err := runtime.New(m.machine, runtime.ActionFunc(func(action string) {
		m.act(net, guid, gs, u, action)
	}))
	if err != nil {
		// The machine definition is validated at service construction; a
		// failure here is a programming error surfaced loudly.
		panic(fmt.Sprintf("version: new instance: %v", err))
	}
	gs.instances[u] = inst
	net.After(m.timeout, func() { m.abandon(net, guid, gs, u) })
	if gs.slotFree {
		m.deliver(net, guid, gs, u, commit.MsgFree)
	}
	return inst
}

// deliver feeds one protocol message to an instance, then handles
// completion: a finished instance's update is appended to the history and
// confirmed to its requesters.
func (m *Member) deliver(net *simnet.Network, guid storage.GUID, gs *guidState, u UpdateID, fsmMsg string) {
	inst, ok := gs.instances[u]
	if !ok || inst.Finished() {
		return
	}
	_, err := inst.Deliver(fsmMsg)
	if err != nil {
		return // not applicable in the current state: ignored
	}
	if inst.Finished() && !gs.recorded[u] {
		gs.recorded[u] = true
		gs.history = append(gs.history, u.PID)
		delete(gs.instances, u)
		m.confirm(net, guid, gs, u)
	}
}

func (m *Member) confirm(net *simnet.Network, guid storage.GUID, gs *guidState, u UpdateID) {
	index := len(gs.history) - 1
	for i, pid := range gs.history {
		if pid == u.PID {
			index = i
			break
		}
	}
	for _, client := range gs.requesters[u] {
		net.Send(simnet.Message{
			From: m.id, To: client, Type: MsgRecorded,
			Payload: Recorded{GUID: guid, Update: u, Index: index},
		})
	}
}

// act routes one machine action: votes and commits go to the other peer-set
// members; free and not_free go to the member's sibling instances for the
// same GUID.
func (m *Member) act(net *simnet.Network, guid storage.GUID, gs *guidState, u UpdateID, action string) {
	switch action {
	case commit.ActSendVote, commit.ActSendCommit:
		msgType := MsgVote
		if action == commit.ActSendCommit {
			msgType = MsgCommit
		}
		payload := ProtocolMsg{GUID: guid, Update: u, Peers: gs.peers}
		for _, peer := range gs.peers {
			if peer == m.id {
				continue
			}
			net.Send(simnet.Message{From: m.id, To: peer, Type: msgType, Payload: payload})
		}
	case commit.ActSendNotFree:
		gs.slotFree = false
		gs.slotOwner = u
		gs.hasSlotOwner = true
		m.tellSiblings(net, guid, gs, u, commit.MsgNotFree)
	case commit.ActSendFree:
		gs.slotFree = true
		gs.hasSlotOwner = false
		m.tellSiblings(net, guid, gs, u, commit.MsgFree)
	}
}

// tellSiblings delivers a local free/not_free notification to every other
// live instance for the GUID, in deterministic order.
func (m *Member) tellSiblings(net *simnet.Network, guid storage.GUID, gs *guidState, from UpdateID, fsmMsg string) {
	ids := make([]UpdateID, 0, len(gs.instances))
	for id := range gs.instances {
		if id != from {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].String() < ids[j].String() })
	for _, id := range ids {
		if !gs.slotFree && fsmMsg == commit.MsgFree {
			return // a sibling claimed the slot while we were iterating
		}
		m.deliver(net, guid, gs, id, fsmMsg)
	}
}

// abandon implements the member-side liveness timeout: an unfinished
// instance is discarded and, if it held the serialisation slot, the slot is
// freed so queued updates can proceed.
func (m *Member) abandon(net *simnet.Network, guid storage.GUID, gs *guidState, u UpdateID) {
	inst, ok := gs.instances[u]
	if !ok || inst.Finished() {
		return
	}
	delete(gs.instances, u)
	gs.abandoned[u] = true
	// Free the serialisation slot only if this instance's chosen update
	// held it; freeing another instance's slot would let the member
	// choose two concurrent updates.
	if !gs.slotFree && gs.hasSlotOwner && gs.slotOwner == u {
		gs.slotFree = true
		gs.hasSlotOwner = false
		m.tellSiblings(net, guid, gs, u, commit.MsgFree)
	}
}

// equivocate implements the Byzantine flooder: every update it hears about
// receives an immediate vote and commit, broadcast to the whole peer set.
func (m *Member) equivocate(net *simnet.Network, msg simnet.Message) {
	var guid storage.GUID
	var u UpdateID
	var peers []simnet.NodeID
	switch p := msg.Payload.(type) {
	case UpdateRequest:
		guid, u, peers = p.GUID, p.Update, p.Peers
	case ProtocolMsg:
		guid, u, peers = p.GUID, p.Update, p.Peers
	default:
		return
	}
	gs := m.state(guid)
	m.learnPeers(gs, peers)
	payload := ProtocolMsg{GUID: guid, Update: u, Peers: gs.peers}
	for _, peer := range gs.peers {
		if peer == m.id {
			continue
		}
		net.Send(simnet.Message{From: m.id, To: peer, Type: MsgVote, Payload: payload})
		net.Send(simnet.Message{From: m.id, To: peer, Type: MsgCommit, Payload: payload})
	}
}

func appendUnique(ids []simnet.NodeID, id simnet.NodeID) []simnet.NodeID {
	for _, existing := range ids {
		if existing == id {
			return ids
		}
	}
	return append(ids, id)
}
