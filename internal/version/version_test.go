package version

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"asagen/internal/chord"
	"asagen/internal/core"
	"asagen/internal/simnet"
	"asagen/internal/storage"
)

// testStack wires a ring, network, service and client together.
type testStack struct {
	net     *simnet.Network
	ring    *chord.Ring
	service *Service
	client  *Client
}

func newStack(t *testing.T, seed int64, nodes, replication int, opts ...ServiceOption) *testStack {
	t.Helper()
	net := simnet.New(seed)
	ring, err := chord.Build(seed, nodes)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(context.Background(), net, ring, replication, opts...)
	if err != nil {
		t.Fatal(err)
	}
	client, err := svc.NewClient("client-0")
	if err != nil {
		t.Fatal(err)
	}
	return &testStack{net: net, ring: ring, service: svc, client: client}
}

func pidOf(s string) storage.PID { return storage.ComputePID([]byte(s)) }

func TestSingleUpdateRecorded(t *testing.T) {
	st := newStack(t, 1, 16, 4)
	guid := storage.NewGUID("file")
	pid := pidOf("v1")
	if err := st.client.Update(guid, pid); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if st.client.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (no contention)", st.client.Attempts)
	}
	st.net.Run(0)

	h, err := st.client.History(guid)
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	if len(h) != 1 || h[0] != pid {
		t.Errorf("history = %v", h)
	}
	latest, err := st.client.Latest(guid)
	if err != nil || latest != pid {
		t.Errorf("Latest = %v, %v", latest, err)
	}
}

func TestSequentialUpdatesOrdered(t *testing.T) {
	st := newStack(t, 2, 16, 4)
	guid := storage.NewGUID("doc")
	var want []storage.PID
	for i := 0; i < 5; i++ {
		pid := pidOf(fmt.Sprintf("v%d", i))
		want = append(want, pid)
		if err := st.client.Update(guid, pid); err != nil {
			t.Fatalf("Update %d: %v", i, err)
		}
	}
	st.net.Run(0)
	h, err := st.client.History(guid)
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	if len(h) != len(want) {
		t.Fatalf("history length = %d, want %d", len(h), len(want))
	}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("history[%d] = %s, want %s", i, h[i].Short(), want[i].Short())
		}
	}
}

// honestHistoriesAgree asserts the core safety property: any two honest
// peer-set members record histories where one is a prefix of the other.
func honestHistoriesAgree(t *testing.T, st *testStack, guid storage.GUID, peers []simnet.NodeID) {
	t.Helper()
	seen := map[simnet.NodeID]bool{}
	var histories [][]storage.PID
	var owners []simnet.NodeID
	for _, id := range peers {
		if seen[id] {
			continue
		}
		seen[id] = true
		m := st.service.Member(id)
		if m == nil || m.Behaviour() != HonestMember {
			continue
		}
		histories = append(histories, m.History(guid))
		owners = append(owners, id)
	}
	for i := 0; i < len(histories); i++ {
		for j := i + 1; j < len(histories); j++ {
			a, b := histories[i], histories[j]
			if len(a) > len(b) {
				a, b = b, a
			}
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("members %s and %s diverge at %d: %s vs %s",
						owners[i], owners[j], k, histories[i][k].Short(), histories[j][k].Short())
				}
			}
		}
	}
}

func TestConcurrentClientsAgreeOnOrder(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		st := newStack(t, seed, 16, 4)
		guid := storage.NewGUID("contended")
		peers, err := st.service.PeerSet(guid)
		if err != nil {
			t.Fatal(err)
		}

		c2, err := st.service.NewClient("client-1")
		if err != nil {
			t.Fatal(err)
		}

		// Interleave: both clients issue updates; because Update drives
		// the shared network, contention arises within each call's
		// traffic plus the stale messages of the other's previous calls.
		for i := 0; i < 3; i++ {
			if err := st.client.Update(guid, pidOf(fmt.Sprintf("a%d-%d", seed, i))); err != nil {
				t.Fatalf("seed %d client a update %d: %v", seed, i, err)
			}
			if err := c2.Update(guid, pidOf(fmt.Sprintf("b%d-%d", seed, i))); err != nil {
				t.Fatalf("seed %d client b update %d: %v", seed, i, err)
			}
		}
		st.net.Run(0)
		honestHistoriesAgree(t, st, guid, peers)
	}
}

// TestTrueConcurrentUpdates injects two competing updates into the network
// simultaneously before driving it, exercising vote splits and the
// abandon/retry recovery path.
func TestTrueConcurrentUpdates(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		st := newStack(t, seed, 16, 4)
		guid := storage.NewGUID("race")
		peers, err := st.service.PeerSet(guid)
		if err != nil {
			t.Fatal(err)
		}

		// Inject both update requests directly, without waiting.
		for _, tag := range []string{"left", "right"} {
			u := UpdateID{PID: pidOf(tag + fmt.Sprint(seed)), Attempt: 1}
			sent := map[simnet.NodeID]bool{}
			for _, peer := range peers {
				if sent[peer] {
					continue
				}
				sent[peer] = true
				st.net.Send(simnet.Message{
					From: "client-0", To: peer, Type: MsgUpdate,
					Payload: UpdateRequest{GUID: guid, Update: u, Peers: peers, ReplyTo: "client-0"},
				})
			}
		}
		st.net.Run(200000)
		honestHistoriesAgree(t, st, guid, peers)
	}
}

func TestByzantineSilentMember(t *testing.T) {
	recorded := 0
	for seed := int64(1); seed <= 8; seed++ {
		st := newStack(t, seed, 16, 4)
		guid := storage.NewGUID("partial")
		peers, err := st.service.PeerSet(guid)
		if err != nil {
			t.Fatal(err)
		}
		distinct := distinctIDs(peers)
		if len(distinct) < 4 {
			continue // tiny ring collision: peer set not BFT-capable
		}
		// Silence one peer-set member (f = 1).
		if err := st.service.SetBehaviour(distinct[0], SilentMember); err != nil {
			t.Fatal(err)
		}
		pid := pidOf(fmt.Sprintf("v-%d", seed))
		if err := st.client.Update(guid, pid); err != nil {
			t.Fatalf("seed %d: update with one silent member: %v", seed, err)
		}
		st.net.Run(0)
		honestHistoriesAgree(t, st, guid, peers)
		h, err := st.client.History(guid)
		if err != nil {
			t.Fatalf("seed %d: History: %v", seed, err)
		}
		if len(h) == 1 && h[0] == pid {
			recorded++
		}
	}
	if recorded == 0 {
		t.Error("no seed produced a readable history with a silent member")
	}
}

func TestByzantineEquivocatingMember(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		st := newStack(t, seed, 16, 4)
		guid := storage.NewGUID("hostile")
		peers, err := st.service.PeerSet(guid)
		if err != nil {
			t.Fatal(err)
		}
		distinct := distinctIDs(peers)
		if len(distinct) < 4 {
			continue
		}
		if err := st.service.SetBehaviour(distinct[1], EquivocatingMember); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			pid := pidOf(fmt.Sprintf("e%d-%d", seed, i))
			if err := st.client.Update(guid, pid); err != nil {
				t.Fatalf("seed %d update %d with equivocator: %v", seed, i, err)
			}
		}
		st.net.Run(0)
		// Safety: honest members still agree on one order.
		honestHistoriesAgree(t, st, guid, peers)
	}
}

func TestUpdateFailsWhenQuorumImpossible(t *testing.T) {
	st := newStack(t, 5, 16, 4)
	guid := storage.NewGUID("dead")
	peers, err := st.service.PeerSet(guid)
	if err != nil {
		t.Fatal(err)
	}
	// Silence every peer-set member: no quorum can form.
	for _, id := range distinctIDs(peers) {
		if err := st.service.SetBehaviour(id, SilentMember); err != nil {
			t.Fatal(err)
		}
	}
	client, err := st.service.NewClient("impatient",
		WithMaxAttempts(2), WithRequestTimeout(50*time.Millisecond),
		WithRetryPolicy(FixedBackoff{Interval: 10 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Update(guid, pidOf("x")); !errors.Is(err, ErrUpdateFailed) {
		t.Errorf("Update = %v, want ErrUpdateFailed", err)
	}
	if _, err := client.History(guid); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("History = %v, want ErrNoQuorum", err)
	}
}

func TestRetryPolicies(t *testing.T) {
	policies := []RetryPolicy{
		FixedBackoff{Interval: 20 * time.Millisecond},
		RandomBackoff{Max: 40 * time.Millisecond},
		ExponentialBackoff{Base: 10 * time.Millisecond, Cap: 100 * time.Millisecond},
	}
	for _, p := range policies {
		t.Run(p.Name(), func(t *testing.T) {
			st := newStack(t, 7, 16, 4)
			client, err := st.service.NewClient("retry-client", WithRetryPolicy(p))
			if err != nil {
				t.Fatal(err)
			}
			guid := storage.NewGUID("retry-" + p.Name())
			for i := 0; i < 3; i++ {
				if err := client.Update(guid, pidOf(fmt.Sprintf("%s-%d", p.Name(), i))); err != nil {
					t.Fatalf("update %d: %v", i, err)
				}
			}
			st.net.Run(0)
			h, err := client.History(guid)
			if err != nil {
				t.Fatal(err)
			}
			if len(h) != 3 {
				t.Errorf("history length = %d, want 3", len(h))
			}
		})
	}
}

func TestRetryDelayProperties(t *testing.T) {
	rng := simnet.New(1).Rand()
	fixed := FixedBackoff{Interval: 5 * time.Millisecond}
	for i := 1; i < 5; i++ {
		if fixed.Delay(i, rng) != 5*time.Millisecond {
			t.Error("fixed delay not constant")
		}
	}
	random := RandomBackoff{Max: 10 * time.Millisecond}
	for i := 0; i < 100; i++ {
		d := random.Delay(1, rng)
		if d <= 0 || d > 10*time.Millisecond {
			t.Fatalf("random delay %v out of range", d)
		}
	}
	if (RandomBackoff{}).Delay(1, rng) != 0 {
		t.Error("zero-max random backoff should be 0")
	}
	exp := ExponentialBackoff{Base: 4 * time.Millisecond, Cap: 16 * time.Millisecond}
	for attempt := 1; attempt <= 6; attempt++ {
		d := exp.Delay(attempt, rng)
		if d <= 0 || d > 16*time.Millisecond {
			t.Fatalf("exponential delay %v out of range at attempt %d", d, attempt)
		}
	}
}

func TestGetVersionBounds(t *testing.T) {
	st := newStack(t, 9, 16, 4)
	guid := storage.NewGUID("indexed")
	pid := pidOf("only")
	if err := st.client.Update(guid, pid); err != nil {
		t.Fatal(err)
	}
	st.net.Run(0)
	got, err := st.client.GetVersion(guid, 0)
	if err != nil || got != pid {
		t.Errorf("GetVersion(0) = %v, %v", got, err)
	}
	if _, err := st.client.GetVersion(guid, 5); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := st.client.GetVersion(guid, -1); err == nil {
		t.Error("negative index accepted")
	}
}

func TestBehaviourStrings(t *testing.T) {
	tests := []struct {
		b    Behaviour
		want string
	}{
		{HonestMember, "honest"}, {SilentMember, "silent"},
		{EquivocatingMember, "equivocating"}, {Behaviour(0), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.b.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}

func TestUpdateIDString(t *testing.T) {
	u := UpdateID{PID: pidOf("x"), Attempt: 3}
	s := u.String()
	if len(s) == 0 || s[len(s)-1] != '3' {
		t.Errorf("UpdateID.String() = %q", s)
	}
}

func distinctIDs(ids []simnet.NodeID) []simnet.NodeID {
	seen := map[simnet.NodeID]bool{}
	var out []simnet.NodeID
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// TestServicesShareMachineCache: two services constructed over one shared
// generation cache with equivalent models pay the generation cost once —
// the §4.2 cached-generation policy across service instances.
func TestServicesShareMachineCache(t *testing.T) {
	cache := core.NewGenerationCache(core.WithoutDescriptions())
	a := newStack(t, 1, 8, 4, WithMachineCache(cache))
	b := newStack(t, 2, 12, 4, WithMachineCache(cache))
	if a.service.Machine() != b.service.Machine() {
		t.Error("equivalent services did not share the generated machine")
	}
	st := cache.Stats()
	if st.Generations != 1 {
		t.Errorf("generations = %d, want 1 across two services", st.Generations)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	if a.service.MachineCache() != cache {
		t.Error("MachineCache does not return the shared cache")
	}
	// A different replication factor is a different fingerprint.
	c := newStack(t, 3, 8, 7, WithMachineCache(cache))
	if c.service.Machine() == a.service.Machine() {
		t.Error("different parameters shared one machine")
	}
	if got := cache.Stats().Generations; got != 2 {
		t.Errorf("generations = %d after r=7 service, want 2", got)
	}
}
