package version

import (
	"context"
	"fmt"
	"testing"
	"time"

	"asagen/internal/chord"
	"asagen/internal/simnet"
	"asagen/internal/storage"
)

// newLossyStack builds the stack on a network with the given drop and
// duplication rates.
func newLossyStack(t *testing.T, seed int64, drop, dup float64) *testStack {
	t.Helper()
	net := simnet.New(seed,
		simnet.WithDropRate(drop),
		simnet.WithDuplicateRate(dup),
		simnet.WithLatency(time.Millisecond, 15*time.Millisecond))
	ring, err := chord.Build(seed, 16)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(context.Background(), net, ring, 4)
	if err != nil {
		t.Fatal(err)
	}
	client, err := svc.NewClient("client-0",
		WithMaxAttempts(16),
		WithRetryPolicy(ExponentialBackoff{Base: 50 * time.Millisecond, Cap: time.Second}))
	if err != nil {
		t.Fatal(err)
	}
	return &testStack{net: net, ring: ring, service: svc, client: client}
}

// TestUpdateSurvivesMessageLoss: with 10% loss the retry machinery must
// still record updates, and honest members must stay in agreement.
func TestUpdateSurvivesMessageLoss(t *testing.T) {
	succeeded := 0
	for seed := int64(1); seed <= 6; seed++ {
		st := newLossyStack(t, seed, 0.10, 0)
		guid := storage.NewGUID("lossy")
		peers, err := st.service.PeerSet(guid)
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for i := 0; i < 3; i++ {
			if err := st.client.Update(guid, pidOf(fmt.Sprintf("l%d-%d", seed, i))); err != nil {
				ok = false
				break
			}
		}
		st.net.Run(0)
		honestHistoriesAgree(t, st, guid, peers)
		if ok {
			succeeded++
		}
	}
	if succeeded < 4 {
		t.Errorf("only %d/6 seeds completed all updates under 10%% loss", succeeded)
	}
}

// TestUpdateSurvivesDuplication: duplicated protocol messages must not
// corrupt the vote counts (member-level sender deduplication) and must not
// break agreement.
func TestUpdateSurvivesDuplication(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		st := newLossyStack(t, seed, 0, 0.3)
		guid := storage.NewGUID("dup")
		peers, err := st.service.PeerSet(guid)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if err := st.client.Update(guid, pidOf(fmt.Sprintf("d%d-%d", seed, i))); err != nil {
				t.Fatalf("seed %d update %d under duplication: %v", seed, i, err)
			}
		}
		st.net.Run(0)
		honestHistoriesAgree(t, st, guid, peers)
		h, err := st.client.History(guid)
		if err != nil {
			t.Fatalf("seed %d: History: %v", seed, err)
		}
		if len(h) != 3 {
			t.Errorf("seed %d: history length %d, want 3 (duplicates double-counted?)", seed, len(h))
		}
	}
}

// TestUpdateSurvivesLossAndDuplication combines both fault modes.
func TestUpdateSurvivesLossAndDuplication(t *testing.T) {
	succeeded := 0
	for seed := int64(1); seed <= 6; seed++ {
		st := newLossyStack(t, seed, 0.05, 0.15)
		guid := storage.NewGUID("chaos")
		peers, err := st.service.PeerSet(guid)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.client.Update(guid, pidOf(fmt.Sprintf("c%d", seed))); err == nil {
			succeeded++
		}
		st.net.Run(0)
		honestHistoriesAgree(t, st, guid, peers)
	}
	if succeeded < 4 {
		t.Errorf("only %d/6 seeds recorded under combined faults", succeeded)
	}
}

// TestPartitionedMemberCatchesUpViaQuorum: a member cut off from the
// client still converges with the remaining quorum via peer traffic, or at
// minimum never diverges.
func TestPartitionedMemberCatchesUp(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		st := newStack(t, seed, 16, 4)
		guid := storage.NewGUID("cutoff")
		peers, err := st.service.PeerSet(guid)
		if err != nil {
			t.Fatal(err)
		}
		distinct := distinctIDs(peers)
		if len(distinct) < 4 {
			continue
		}
		// Cut the client's link to one member: it must learn of updates
		// through the other members' votes and commits.
		st.net.Partition("client-0", distinct[2])
		if err := st.client.Update(guid, pidOf(fmt.Sprintf("p%d", seed))); err != nil {
			t.Fatalf("seed %d: update with one partitioned member: %v", seed, err)
		}
		st.net.Run(0)
		honestHistoriesAgree(t, st, guid, peers)
	}
}

// TestAbandonTimerFreesSlot: an update that cannot complete (all other
// members silenced) blocks the slot only until the abandon timeout; a
// later achievable update must succeed.
func TestAbandonTimerFreesSlot(t *testing.T) {
	st := newStack(t, 11, 16, 4, WithAbandonTimeout(100*time.Millisecond))
	guid := storage.NewGUID("stuck-then-fine")
	peers, err := st.service.PeerSet(guid)
	if err != nil {
		t.Fatal(err)
	}
	distinct := distinctIDs(peers)
	if len(distinct) < 4 {
		t.Skip("peer-set collision on this seed")
	}
	// Phase 1: silence everyone but one member; its chosen instance can
	// never reach quorum.
	for _, id := range distinct[1:] {
		if err := st.service.SetBehaviour(id, SilentMember); err != nil {
			t.Fatal(err)
		}
	}
	impatient, err := st.service.NewClient("impatient",
		WithMaxAttempts(1), WithRequestTimeout(60*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := impatient.Update(guid, pidOf("doomed")); err == nil {
		t.Fatal("doomed update succeeded")
	}

	// Phase 2: restore the members; a new update must be recordable once
	// the abandoned instance has freed the slot.
	for _, id := range distinct[1:] {
		if err := st.service.SetBehaviour(id, HonestMember); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.client.Update(guid, pidOf("fine")); err != nil {
		t.Fatalf("post-recovery update: %v", err)
	}
	st.net.Run(0)
	honestHistoriesAgree(t, st, guid, peers)
}
