package consensus

import (
	"context"
	"strings"
	"testing"

	"asagen/internal/core"
	"asagen/internal/runtime"
)

func generate(t *testing.T, n int) *core.StateMachine {
	t.Helper()
	m, err := NewModel(n)
	if err != nil {
		t.Fatalf("NewModel(%d): %v", n, err)
	}
	machine, err := core.Generate(context.Background(), m)
	if err != nil {
		t.Fatalf("Generate(n=%d): %v", n, err)
	}
	return machine
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(2); err == nil {
		t.Error("n=2 accepted")
	}
	m, err := NewModel(5)
	if err != nil {
		t.Fatal(err)
	}
	if m.Majority() != 3 {
		t.Errorf("Majority = %d, want 3", m.Majority())
	}
	if m.Processes() != 5 {
		t.Errorf("Processes = %d", m.Processes())
	}
}

// TestFamilyGrowsWithN verifies the family property: the machine's state
// count depends on the parameter, which is what precludes a single FSM and
// motivates the generative approach.
func TestFamilyGrowsWithN(t *testing.T) {
	prev := 0
	for _, n := range []int{3, 5, 7, 9} {
		machine := generate(t, n)
		if machine.Stats.FinalStates <= prev {
			t.Errorf("n=%d: final states %d did not grow (prev %d)",
				n, machine.Stats.FinalStates, prev)
		}
		prev = machine.Stats.FinalStates
		if machine.Stats.InitialStates != 8*n*n {
			t.Errorf("n=%d: initial states = %d, want %d (2^3·n²)",
				n, machine.Stats.InitialStates, 8*n*n)
		}
	}
}

// TestCoordinatorHappyPath walks the coordinator's view of an uncontended
// round: propose, gather a majority of estimates, gather a majority of
// acks, decide.
func TestCoordinatorHappyPath(t *testing.T) {
	machine := generate(t, 5) // majority 3
	var actions []string
	inst, err := runtime.New(machine, runtime.ActionFunc(func(a string) { actions = append(actions, a) }))
	if err != nil {
		t.Fatal(err)
	}

	deliver := func(msg string) {
		t.Helper()
		if _, err := inst.Deliver(msg); err != nil {
			t.Fatalf("Deliver(%s): %v", msg, err)
		}
	}

	deliver(MsgPropose)
	if !contains(actions, ActSendEstimate) {
		t.Fatalf("propose actions = %v", actions)
	}
	actions = actions[:0]

	deliver(MsgEstimate) // own + 2 received = majority at the second
	deliver(MsgEstimate)
	if !contains(actions, ActSendProposal) {
		t.Fatalf("estimate majority actions = %v", actions)
	}
	actions = actions[:0]

	deliver(MsgProposal) // coordinator acks its own proposal
	if !contains(actions, ActSendAck) {
		t.Fatalf("proposal actions = %v", actions)
	}
	actions = actions[:0]

	deliver(MsgAck)
	deliver(MsgAck) // own + 2 = majority: decide and finish
	if !contains(actions, ActSendDecide) {
		t.Fatalf("ack majority actions = %v", actions)
	}
	if !inst.Finished() {
		t.Error("not finished after deciding")
	}
}

// TestParticipantDecidesOnAnnouncement: a non-coordinator process finishes
// when the decision arrives.
func TestParticipantDecidesOnAnnouncement(t *testing.T) {
	machine := generate(t, 5)
	inst, err := runtime.New(machine, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Deliver(MsgPropose); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Deliver(MsgProposal); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Deliver(MsgDecide); err != nil {
		t.Fatal(err)
	}
	if !inst.Finished() {
		t.Error("participant did not finish on decide")
	}
}

func TestDuplicateProposeIgnored(t *testing.T) {
	m, err := NewModel(5)
	if err != nil {
		t.Fatal(err)
	}
	start := m.Start()
	eff, ok := m.Apply(start, MsgPropose)
	if !ok {
		t.Fatal("propose not applicable at start")
	}
	if _, ok := m.Apply(eff.Target, MsgPropose); ok {
		t.Error("second propose applicable")
	}
	if _, ok := m.Apply(start, "BOGUS"); ok {
		t.Error("unknown message applicable")
	}
}

// TestEFSMIndependentOfN: the EFSM state space must not depend on the
// process count — the §5.3 property carried over to the second algorithm.
func TestEFSMIndependentOfN(t *testing.T) {
	base, err := GenerateEFSM(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	baseNames := strings.Join(base.StateNames(), ",")
	for _, n := range []int{9, 15, 21} {
		e, err := GenerateEFSM(context.Background(), n)
		if err != nil {
			t.Fatalf("GenerateEFSM(context.Background(), %d): %v", n, err)
		}
		if got := strings.Join(e.StateNames(), ","); got != baseNames {
			t.Errorf("n=%d: EFSM states %s, want %s", n, got, baseNames)
		}
	}
}

// TestEFSMHappyPath drives the coalesced machine through a full round.
func TestEFSMHappyPath(t *testing.T) {
	e, err := GenerateEFSM(context.Background(), 5)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := core.NewEFSMInstance(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range []string{MsgPropose, MsgEstimate, MsgEstimate, MsgProposal, MsgAck, MsgAck} {
		inst.Deliver(msg)
	}
	if !inst.Finished() {
		t.Errorf("EFSM not finished; state %s", inst.StateName())
	}
}

func TestDescribeState(t *testing.T) {
	m, err := NewModel(5)
	if err != nil {
		t.Fatal(err)
	}
	lines := m.DescribeState(core.Vector{1, 2, 1, 1, 0})
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"submitted", "2 estimates", "proposal", "acknowledged"} {
		if !strings.Contains(joined, want) {
			t.Errorf("description missing %q: %v", want, lines)
		}
	}
}

func contains(list []string, want string) bool {
	for _, s := range list {
		if s == want {
			return true
		}
	}
	return false
}
