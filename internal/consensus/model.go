// Package consensus applies the generative state-machine methodology to a
// second message-counting algorithm, as §5.2 of the paper proposes: a
// simplified Chandra–Toueg-style single-decree consensus with a coordinator
// collecting estimates and acknowledgements under majority thresholds.
//
// Like the commit protocol, the algorithm counts messages against
// thresholds that depend on a parameter (the number of processes n), so it
// cannot be expressed as one FSM; the abstract model generates the family
// member for any n. The EFSM generalisation collapses the family to a
// fixed-size machine, exactly as for the commit protocol.
package consensus

import (
	"context"
	"fmt"

	"asagen/internal/core"
)

// Message types received by a consensus machine.
const (
	// MsgPropose is the local kick-off: the process submits its estimate.
	MsgPropose = "PROPOSE"
	// MsgEstimate is a participant's estimate, counted by the coordinator.
	MsgEstimate = "ESTIMATE"
	// MsgProposal is the coordinator's chosen value.
	MsgProposal = "PROPOSAL"
	// MsgAck acknowledges the proposal, counted by the coordinator.
	MsgAck = "ACK"
	// MsgDecide announces the decision.
	MsgDecide = "DECIDE"
)

// Actions performed on phase transitions.
const (
	ActSendEstimate = "->estimate"
	ActSendProposal = "->proposal"
	ActSendAck      = "->ack"
	ActSendDecide   = "->decide"
)

// Component indices.
const (
	idxEstimateSent = iota
	idxEstimatesReceived
	idxProposalReceived
	idxAckSent
	idxAcksReceived
	numComponents
)

// MinProcesses is the smallest sensible process count (a majority of one
// process is degenerate).
const MinProcesses = 3

// Model is the consensus abstract model for a fixed process count n. It
// implements core.Model. The machine unions the coordinator and participant
// roles: estimate and ack counting only ever progresses on the coordinator,
// but the state space covers both, as the paper's commit machine covers
// chosen and unchosen members.
type Model struct {
	n int
}

var _ core.Model = (*Model)(nil)

// NewModel returns the consensus model for n processes.
func NewModel(n int) (*Model, error) {
	if n < MinProcesses {
		return nil, fmt.Errorf("consensus: process count %d < minimum %d", n, MinProcesses)
	}
	return &Model{n: n}, nil
}

// Processes returns n.
func (m *Model) Processes() int { return m.n }

// Majority returns ⌊n/2⌋+1, the threshold for both estimate collection and
// acknowledgement collection.
func (m *Model) Majority() int { return m.n/2 + 1 }

// Name implements core.Model.
func (m *Model) Name() string { return "ct-consensus" }

// Parameter implements core.Model.
func (m *Model) Parameter() int { return m.n }

// Components implements core.Model.
func (m *Model) Components() []core.StateComponent {
	return []core.StateComponent{
		core.NewBoolComponent("estimate_sent"),
		core.NewIntComponent("estimates_received", m.n-1),
		core.NewBoolComponent("proposal_received"),
		core.NewBoolComponent("ack_sent"),
		core.NewIntComponent("acks_received", m.n-1),
	}
}

// Messages implements core.Model.
func (m *Model) Messages() []string {
	return []string{MsgPropose, MsgEstimate, MsgProposal, MsgAck, MsgDecide}
}

// Start implements core.Model.
func (m *Model) Start() core.Vector { return make(core.Vector, numComponents) }

// Apply implements core.Model.
func (m *Model) Apply(v core.Vector, msg string) (core.Effect, bool) {
	s := v.Clone()
	var actions []string
	var notes []string
	finished := false

	switch msg {
	case MsgPropose:
		if s[idxEstimateSent] != 0 {
			return core.Effect{}, false // already proposed
		}
		s[idxEstimateSent] = 1
		actions = append(actions, ActSendEstimate)
		notes = append(notes, "Submit the local estimate to the coordinator.")

	case MsgEstimate:
		if s[idxEstimatesReceived] == m.n-1 {
			return core.Effect{}, false
		}
		s[idxEstimatesReceived]++
		notes = append(notes, "Record one further estimate received.")
		// The coordinator's own estimate counts towards the majority.
		if s[idxEstimatesReceived]+s[idxEstimateSent] == m.Majority() {
			actions = append(actions, ActSendProposal)
			notes = append(notes, fmt.Sprintf("Majority (%d) of estimates gathered: propose.", m.Majority()))
		}

	case MsgProposal:
		if s[idxProposalReceived] != 0 {
			return core.Effect{}, false
		}
		s[idxProposalReceived] = 1
		if s[idxAckSent] == 0 {
			s[idxAckSent] = 1
			actions = append(actions, ActSendAck)
			notes = append(notes, "Acknowledge the coordinator's proposal.")
		}

	case MsgAck:
		if s[idxAcksReceived] == m.n-1 {
			return core.Effect{}, false
		}
		s[idxAcksReceived]++
		notes = append(notes, "Record one further acknowledgement received.")
		if s[idxAcksReceived]+s[idxAckSent] == m.Majority() {
			actions = append(actions, ActSendDecide)
			notes = append(notes, fmt.Sprintf("Majority (%d) of acks gathered: decide.", m.Majority()))
			finished = true
		}

	case MsgDecide:
		finished = true
		notes = append(notes, "Adopt the announced decision.")

	default:
		return core.Effect{}, false
	}

	if !finished && s.Equal(v) && len(actions) == 0 {
		return core.Effect{}, false
	}
	return core.Effect{Target: s, Actions: actions, Annotations: notes, Finished: finished}, true
}

// DescribeState implements core.Model.
func (m *Model) DescribeState(v core.Vector) []string {
	lines := make([]string, 0, 4)
	if v[idxEstimateSent] != 0 {
		lines = append(lines, "Have submitted the local estimate.")
	} else {
		lines = append(lines, "Have not yet submitted the local estimate.")
	}
	lines = append(lines, fmt.Sprintf("Have received %d estimates and %d acks.",
		v[idxEstimatesReceived], v[idxAcksReceived]))
	if v[idxProposalReceived] != 0 {
		lines = append(lines, "Have received the coordinator's proposal.")
	}
	if v[idxAckSent] != 0 {
		lines = append(lines, "Have acknowledged the proposal.")
	}
	return lines
}

// Abstraction coalesces the count components for EFSM generation.
type Abstraction struct {
	model *Model
}

var _ core.EFSMAbstraction = (*Abstraction)(nil)

// NewAbstraction returns the EFSM abstraction for the model.
func NewAbstraction(m *Model) *Abstraction { return &Abstraction{model: m} }

// StateLabel implements core.EFSMAbstraction.
func (a *Abstraction) StateLabel(v core.Vector) string {
	b := func(i int) byte {
		if v[i] != 0 {
			return 'T'
		}
		return 'F'
	}
	return fmt.Sprintf("EST%c/PROP%c/ACK%c", b(idxEstimateSent), b(idxProposalReceived), b(idxAckSent))
}

// GuardComponent implements core.EFSMAbstraction.
func (a *Abstraction) GuardComponent(msg string) int {
	switch msg {
	case MsgEstimate:
		return idxEstimatesReceived
	case MsgAck:
		return idxAcksReceived
	default:
		return -1
	}
}

// VarOps implements core.EFSMAbstraction.
func (a *Abstraction) VarOps(msg string) []core.VarOp {
	switch msg {
	case MsgEstimate:
		return []core.VarOp{{Variable: "estimates_received", Delta: 1}}
	case MsgAck:
		return []core.VarOp{{Variable: "acks_received", Delta: 1}}
	default:
		return nil
	}
}

// Symbol implements core.EFSMAbstraction.
func (a *Abstraction) Symbol(component, value int) string {
	maj := a.model.Majority()
	switch value {
	case 0:
		return "0"
	case maj:
		return "majority"
	case maj - 1:
		return "majority-1"
	case maj - 2:
		return "majority-2"
	case a.model.n - 1:
		return "n-1"
	case a.model.n - 2:
		return "n-2"
	}
	return ""
}

// GenerateEFSM generates the consensus machine for n processes and
// coalesces it into the parameter-independent EFSM.
func GenerateEFSM(ctx context.Context, n int) (*core.EFSM, error) {
	m, err := NewModel(n)
	if err != nil {
		return nil, err
	}
	machine, err := core.Generate(ctx, m, core.WithoutDescriptions())
	if err != nil {
		return nil, fmt.Errorf("consensus: generate machine: %w", err)
	}
	return core.GeneralizeEFSM(machine, NewAbstraction(m))
}
