package core

import "sort"

// FinishStateName is the name given to the synthetic terminal state that a
// model's finishing transitions target. The commit protocol, for example,
// finishes once f+1 commit messages have been received; the receiving
// transition leaves the encoded state space and enters this state.
const FinishStateName = "FINISHED"

// StateMachine is the abstract representation of one generated member of a
// machine family (the paper's class StateMachine, Fig. 5). It contains a
// collection of states linked by transitions; states and transitions carry
// annotations used by the documentation renderers.
type StateMachine struct {
	// ModelName identifies the abstract model that generated the machine.
	ModelName string
	// Parameter records the parameter value the model was executed with
	// (the replication factor for the commit protocol).
	Parameter int
	// Components are the state components the state names encode.
	Components []StateComponent
	// Messages lists the message types the machine reacts to.
	Messages []string
	// States holds every state, with the start state first. The finish
	// state, when present, is last.
	States []*State
	// Start is the machine's initial state.
	Start *State
	// Finish is the synthetic terminal state, or nil if the model never
	// finishes.
	Finish *State
	// Stats records the sizes of the intermediate generation stages.
	Stats Stats
}

// Stats records the size of the state space at each stage of the generation
// pipeline, matching the columns of the paper's Table 1.
type Stats struct {
	// InitialStates is the raw cross-product size (32·r² for the commit
	// protocol). It is computed arithmetically, never by materialising the
	// cross product; when the product exceeds math.MaxInt the field
	// saturates at math.MaxInt and InitialOverflow is set.
	InitialStates int
	// InitialOverflow reports that the cross product exceeds math.MaxInt,
	// so InitialStates is a saturated lower bound rather than an exact
	// count. Only the reachability-first path can produce this; the legacy
	// full-enumeration path fails with ErrStateSpaceOverflow instead.
	InitialOverflow bool
	// ReachableStates is the count after pruning unreachable states,
	// including the finish state when one is reachable.
	ReachableStates int
	// FinalStates is the count after merging equivalent states.
	FinalStates int
}

// State is a single machine state (the paper's class State). Outgoing
// transitions are keyed by message type; messages that are not applicable in
// the state have no entry.
type State struct {
	// Name encodes the component values, e.g. "T/2/F/0/F/F/F", or
	// FinishStateName for the terminal state.
	Name string
	// Vector is the component assignment this state encodes; nil for the
	// synthetic finish state. After merging, the vector of the class
	// representative.
	Vector Vector
	// Transitions maps message type to the outgoing transition taken when
	// that message is received.
	Transitions map[string]*Transition
	// Annotations document the state in terms of the generic algorithm.
	Annotations []string
	// Final reports whether this is the synthetic finish state.
	Final bool
	// MergedNames lists the names of all original states combined into
	// this one (including its own); len > 1 only after merging.
	MergedNames []string
}

// Transition records the effect of one message in one state (the paper's
// class Transition).
type Transition struct {
	// Message is the received message type that triggers the transition.
	Message string
	// Target is the resulting state.
	Target *State
	// Actions lists outgoing messages and other effects performed during
	// the transition, e.g. "->vote". A non-empty list marks a phase
	// transition; an empty list is a simple transition.
	Actions []string
	// Annotations document why the transition behaves as it does.
	Annotations []string
}

// IsPhase reports whether the transition is a phase transition, i.e. one
// that performs actions (such as sending messages) rather than merely
// recording a received-message count.
func (t *Transition) IsPhase() bool { return len(t.Actions) > 0 }

// Transition returns the outgoing transition for the given message, or nil
// if the message is not applicable in this state.
func (s *State) Transition(msg string) *Transition {
	return s.Transitions[msg]
}

// SortedMessages returns the messages applicable in this state in the
// machine's canonical message order.
func (s *State) SortedMessages(order []string) []string {
	out := make([]string, 0, len(s.Transitions))
	for _, m := range order {
		if _, ok := s.Transitions[m]; ok {
			out = append(out, m)
		}
	}
	return out
}

// StateByName returns the state with the given name, or nil when absent.
// After merging, every merged-away name still resolves to its class
// representative.
func (m *StateMachine) StateByName(name string) *State {
	for _, s := range m.States {
		if s.Name == name {
			return s
		}
		for _, alias := range s.MergedNames {
			if alias == name {
				return s
			}
		}
	}
	return nil
}

// TransitionCount returns the total number of transitions in the machine.
func (m *StateMachine) TransitionCount() int {
	n := 0
	for _, s := range m.States {
		n += len(s.Transitions)
	}
	return n
}

// StateNames returns the names of all states in machine order.
func (m *StateMachine) StateNames() []string {
	names := make([]string, len(m.States))
	for i, s := range m.States {
		names[i] = s.Name
	}
	return names
}

// sortStates orders states deterministically: start first, finish last,
// remainder in lexicographic vector order (identical to enumeration-index
// order, but defined even when the cross product overflows an int).
func (m *StateMachine) sortStates() {
	sort.SliceStable(m.States, func(i, j int) bool {
		si, sj := m.States[i], m.States[j]
		switch {
		case si == m.Start:
			return sj != m.Start
		case sj == m.Start:
			return false
		case si.Final:
			return false
		case sj.Final:
			return true
		default:
			return si.Vector.Compare(sj.Vector) < 0
		}
	})
}
