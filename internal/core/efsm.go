package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file implements the extended-finite-state-machine end of the
// spectrum described in §3.2 and §5.3 of the paper: instead of encoding
// message counts in the state space, an EFSM keeps them in internal
// variables and guards its transitions on threshold conditions. The EFSM is
// *generated* from a concrete machine by coalescing all states that differ
// only in their count components, exactly as §5.3 proposes ("defining an
// abstract model and then generating an EFSM from it"). For the commit
// protocol this yields a nine-state machine whose state space is
// independent of the replication factor.

// EFSM is an extended finite state machine: states, counter variables, and
// message transitions guarded by conditions over the variables.
type EFSM struct {
	// ModelName identifies the abstract model the EFSM was derived from.
	ModelName string
	// Parameter is the parameter value of the concrete machine the EFSM
	// was generalised from (guard bounds are recorded both concretely and
	// symbolically).
	Parameter int
	// Variables lists the counter variable names, in declaration order.
	Variables []string
	// Messages lists the message vocabulary.
	Messages []string
	// States holds every EFSM state, start first, finish (if any) last.
	States []*EState
	// Start is the initial state.
	Start *EState
	// Finish is the terminal state, or nil.
	Finish *EState
}

// EState is a single EFSM state: transitions are tried in order and the
// first one whose message and guard match is taken.
type EState struct {
	// Name labels the abstract state, e.g. "CHOSEN_VOTED".
	Name string
	// Transitions lists the outgoing guarded transitions.
	Transitions []*ETransition
	// Final marks the terminal state.
	Final bool
}

// ETransition is a guarded EFSM transition.
type ETransition struct {
	// Message is the received message type.
	Message string
	// Guard constrains one counter variable; the zero Guard is
	// unconditional.
	Guard Guard
	// VarOps are the counter updates applied when the transition fires.
	VarOps []VarOp
	// Actions lists the outgoing messages sent (phase transitions).
	Actions []string
	// Target is the resulting state.
	Target *EState
}

// Guard is an inclusive interval condition on one counter variable. The
// zero value (empty Variable) is always satisfied.
type Guard struct {
	// Variable names the constrained counter; empty means unconditional.
	Variable string
	// Min and Max bound the variable inclusively, in concrete values of
	// the machine the EFSM was generalised from.
	Min, Max int
	// MinSym and MaxSym are parameter-independent renderings of the
	// bounds (e.g. "vote_threshold-1"); empty when the literal is used.
	MinSym, MaxSym string
}

// Unconditional reports whether the guard always holds.
func (g Guard) Unconditional() bool { return g.Variable == "" }

// Holds reports whether the guard is satisfied by the given variable
// values.
func (g Guard) Holds(vars map[string]int) bool {
	if g.Unconditional() {
		return true
	}
	v := vars[g.Variable]
	return v >= g.Min && v <= g.Max
}

// String renders the guard, preferring symbolic bounds.
func (g Guard) String() string {
	if g.Unconditional() {
		return "true"
	}
	lo := g.MinSym
	if lo == "" {
		lo = strconv.Itoa(g.Min)
	}
	hi := g.MaxSym
	if hi == "" {
		hi = strconv.Itoa(g.Max)
	}
	if lo == hi {
		return fmt.Sprintf("%s == %s", g.Variable, lo)
	}
	return fmt.Sprintf("%s <= %s <= %s", lo, g.Variable, hi)
}

// VarOp is a counter update performed by a transition.
type VarOp struct {
	// Variable names the counter to update.
	Variable string
	// Delta is added to the counter.
	Delta int
}

// String renders the update in the conventional form ("votes_received++").
func (op VarOp) String() string {
	switch op.Delta {
	case 1:
		return op.Variable + "++"
	case -1:
		return op.Variable + "--"
	default:
		return fmt.Sprintf("%s += %d", op.Variable, op.Delta)
	}
}

// EFSMAbstraction tells GeneralizeEFSM how to coalesce a concrete machine:
// which components are counters (moved into variables) and how to label the
// remaining abstract states.
type EFSMAbstraction interface {
	// StateLabel maps a concrete state vector to its abstract EFSM state
	// name. Vectors differing only in counter components must map to the
	// same label.
	StateLabel(v Vector) string
	// GuardComponent returns the index of the counter component whose
	// value selects among msg's possible outcomes, or -1 when msg's
	// behaviour is independent of all counters.
	GuardComponent(msg string) int
	// VarOps returns the counter updates performed when msg is received
	// (e.g. votes_received++ on a vote).
	VarOps(msg string) []VarOp
	// Symbol renders the concrete counter value as a parameter-independent
	// expression ("vote_threshold-1"), or "" to keep the literal.
	Symbol(component int, value int) string
}

// outcome is the observable result of one concrete transition, used to
// group transitions into guarded EFSM transitions.
type outcome struct {
	targetLabel string
	actionsKey  string
	actions     []string
}

// GeneralizeEFSM coalesces a generated machine into an EFSM under the given
// abstraction. It fails if the abstraction is unsound: two concrete states
// with the same label and the same guard-component value must react to every
// message with the same actions and the same target label, and the guard
// values selecting each outcome must form a contiguous interval.
func GeneralizeEFSM(machine *StateMachine, abs EFSMAbstraction) (*EFSM, error) {
	efsm := &EFSM{
		ModelName: machine.ModelName,
		Parameter: machine.Parameter,
		Messages:  append([]string(nil), machine.Messages...),
	}

	// Collect the counter variable names in component order.
	seenVar := map[string]bool{}
	for _, msg := range machine.Messages {
		if c := abs.GuardComponent(msg); c >= 0 {
			name := machine.Components[c].Name()
			if !seenVar[name] {
				seenVar[name] = true
				efsm.Variables = append(efsm.Variables, name)
			}
		}
		for _, op := range abs.VarOps(msg) {
			if !seenVar[op.Variable] {
				seenVar[op.Variable] = true
				efsm.Variables = append(efsm.Variables, op.Variable)
			}
		}
	}

	// Group concrete states by label, preserving first-seen order.
	states := map[string]*EState{}
	labelOf := map[*State]string{}
	addState := func(label string, final bool) *EState {
		if s, ok := states[label]; ok {
			return s
		}
		s := &EState{Name: label, Final: final}
		states[label] = s
		efsm.States = append(efsm.States, s)
		return s
	}
	for _, s := range machine.States {
		label := FinishStateName
		if !s.Final {
			label = abs.StateLabel(s.Vector)
		}
		labelOf[s] = label
		es := addState(label, s.Final)
		if s == machine.Start {
			efsm.Start = es
		}
		if s.Final {
			efsm.Finish = es
		}
	}
	if efsm.Start == nil {
		return nil, fmt.Errorf("core: efsm: start state missing")
	}

	// For each (label, message), map guard values to outcomes and check
	// consistency.
	type groupKey struct {
		label string
		msg   string
	}
	groups := map[groupKey]map[int]outcome{}
	for _, s := range machine.States {
		if s.Final {
			continue
		}
		label := labelOf[s]
		for _, msg := range machine.Messages {
			tr := s.Transition(msg)
			if tr == nil {
				continue
			}
			guardComp := abs.GuardComponent(msg)
			val := 0
			if guardComp >= 0 {
				val = s.Vector[guardComp]
			}
			out := outcome{
				targetLabel: labelOf[tr.Target],
				actionsKey:  strings.Join(tr.Actions, ","),
				actions:     tr.Actions,
			}
			key := groupKey{label, msg}
			byVal, ok := groups[key]
			if !ok {
				byVal = map[int]outcome{}
				groups[key] = byVal
			}
			if prev, dup := byVal[val]; dup {
				if prev.targetLabel != out.targetLabel || prev.actionsKey != out.actionsKey {
					return nil, fmt.Errorf(
						"core: efsm: abstraction unsound: state %s, message %s, %s=%d maps to both (%s,%s) and (%s,%s)",
						label, msg, guardVarName(machine, guardComp), val,
						prev.targetLabel, prev.actionsKey, out.targetLabel, out.actionsKey)
				}
				continue
			}
			byVal[val] = out
		}
	}

	// Turn each group's value->outcome map into interval-guarded
	// transitions.
	for _, es := range efsm.States {
		if es.Final {
			continue
		}
		for _, msg := range machine.Messages {
			byVal, ok := groups[groupKey{es.Name, msg}]
			if !ok {
				continue
			}
			trs, err := intervalTransitions(machine, abs, es.Name, msg, byVal, states)
			if err != nil {
				return nil, err
			}
			es.Transitions = append(es.Transitions, trs...)
		}
	}

	// Deterministic state order: start first, finish last, others by name.
	sort.SliceStable(efsm.States, func(i, j int) bool {
		si, sj := efsm.States[i], efsm.States[j]
		switch {
		case si == efsm.Start:
			return sj != efsm.Start
		case sj == efsm.Start:
			return false
		case si.Final:
			return false
		case sj.Final:
			return true
		default:
			return si.Name < sj.Name
		}
	})
	return efsm, nil
}

func guardVarName(machine *StateMachine, comp int) string {
	if comp < 0 {
		return "(none)"
	}
	return machine.Components[comp].Name()
}

// intervalTransitions converts a guard-value→outcome map into contiguous
// interval transitions, sorted by lower bound.
func intervalTransitions(machine *StateMachine, abs EFSMAbstraction, label, msg string, byVal map[int]outcome, states map[string]*EState) ([]*ETransition, error) {
	vals := make([]int, 0, len(byVal))
	for v := range byVal {
		vals = append(vals, v)
	}
	sort.Ints(vals)

	guardComp := abs.GuardComponent(msg)
	varOps := abs.VarOps(msg)

	var trs []*ETransition
	for i := 0; i < len(vals); {
		start := i
		out := byVal[vals[i]]
		for i+1 < len(vals) &&
			vals[i+1] == vals[i]+1 &&
			byVal[vals[i+1]].targetLabel == out.targetLabel &&
			byVal[vals[i+1]].actionsKey == out.actionsKey {
			i++
		}
		lo, hi := vals[start], vals[i]
		i++
		// An outcome may legitimately recur in disjoint intervals (e.g. a
		// count that is simple both below and above its threshold); each
		// contiguous run becomes its own guarded transition, and the runs
		// are disjoint by construction, so determinism is preserved.

		guard := Guard{}
		if guardComp >= 0 {
			guard = Guard{
				Variable: machine.Components[guardComp].Name(),
				Min:      lo,
				Max:      hi,
				MinSym:   abs.Symbol(guardComp, lo),
				MaxSym:   abs.Symbol(guardComp, hi),
			}
		}
		trs = append(trs, &ETransition{
			Message: msg,
			Guard:   guard,
			VarOps:  append([]VarOp(nil), varOps...),
			Actions: append([]string(nil), out.actions...),
			Target:  states[out.targetLabel],
		})
	}
	return trs, nil
}

// EFSMInstance executes an EFSM: an abstract state plus concrete counter
// variables.
type EFSMInstance struct {
	efsm  *EFSM
	state *EState
	vars  map[string]int
}

// NewEFSMInstance returns an instance at the EFSM's start state with all
// counters zero.
func NewEFSMInstance(e *EFSM) (*EFSMInstance, error) {
	if e == nil || e.Start == nil {
		return nil, fmt.Errorf("core: efsm instance: missing start state")
	}
	vars := make(map[string]int, len(e.Variables))
	for _, v := range e.Variables {
		vars[v] = 0
	}
	return &EFSMInstance{efsm: e, state: e.Start, vars: vars}, nil
}

// StateName returns the current abstract state name.
func (in *EFSMInstance) StateName() string { return in.state.Name }

// Finished reports whether the instance has reached the terminal state.
func (in *EFSMInstance) Finished() bool { return in.state.Final }

// Var returns the current value of a counter variable.
func (in *EFSMInstance) Var(name string) int { return in.vars[name] }

// Deliver feeds one message to the instance. It returns the actions of the
// transition taken, and false when no transition's guard matched (the
// message is ignored, as in the concrete machines).
func (in *EFSMInstance) Deliver(msg string) ([]string, bool) {
	if in.state.Final {
		return nil, false
	}
	for _, tr := range in.state.Transitions {
		if tr.Message != msg || !tr.Guard.Holds(in.vars) {
			continue
		}
		for _, op := range tr.VarOps {
			in.vars[op.Variable] += op.Delta
		}
		in.state = tr.Target
		return tr.Actions, true
	}
	return nil, false
}

// TransitionCount returns the total number of guarded transitions.
func (e *EFSM) TransitionCount() int {
	n := 0
	for _, s := range e.States {
		n += len(s.Transitions)
	}
	return n
}

// StateNames returns the state names in machine order.
func (e *EFSM) StateNames() []string {
	names := make([]string, len(e.States))
	for i, s := range e.States {
		names[i] = s.Name
	}
	return names
}
