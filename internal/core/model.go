package core

// Effect is the outcome of delivering one message to a machine in a given
// state, as computed by an abstract model: the resulting state vector, the
// actions performed (outgoing messages etc.), and documentation annotations
// explaining the reaction.
type Effect struct {
	// Target is the resulting state vector. Ignored when Finished is set.
	Target Vector
	// Actions lists effects performed during the transition, in order,
	// e.g. "->vote", "->commit". Empty for simple transitions.
	Actions []string
	// Annotations document the reasons for the state change.
	Annotations []string
	// Finished marks a transition into the synthetic finish state: the
	// algorithm instance has completed and leaves the encoded state space.
	Finished bool
}

// Model is a problem-specific abstract model: it captures the structure
// common to all members of a family of finite state machines, and is
// executed with Generate to produce a particular member.
//
// Implementations must be deterministic and side-effect free: Apply is
// called for every (state, message) combination during generation, so the
// control decisions that a generic algorithm would take dynamically are
// taken at generation time (§3.4).
type Model interface {
	// Name identifies the model, e.g. "bft-commit".
	Name() string
	// Parameter returns the parameter value this model instance was
	// constructed with (e.g. the replication factor).
	Parameter() int
	// Components defines the state space dimensions, in state-name order.
	Components() []StateComponent
	// Messages lists the message types the machine can receive, in
	// canonical order.
	Messages() []string
	// Start returns the machine's initial state vector.
	Start() Vector
	// Apply computes the effect of receiving msg in state v. The second
	// return value is false when the message is not applicable in v, in
	// which case no transition is recorded (the paper's
	// InvalidStateException path, Fig. 10).
	Apply(v Vector, msg string) (Effect, bool)
	// DescribeState returns human-readable documentation lines for state
	// v, in terms of the generic algorithm (used in the Fig. 14 style
	// renderings). May return nil.
	DescribeState(v Vector) []string
}
