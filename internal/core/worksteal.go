package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

const (
	// parallelThreshold is the minimum frontier population for which
	// parallel expansion is dispatched to the workers. Below it the
	// coordinator expands inline: goroutine hand-off and merge bookkeeping
	// cost more than a few hundred Apply calls, which is how WithWorkers
	// used to lose to the serial explorer on small machines.
	parallelThreshold = 512
	// wsSegmentSize is the number of states per work-stealing segment.
	wsSegmentSize = 64
)

// wsCell is one Apply result computed by a worker, before the coordinator's
// deterministic merge interns its target.
type wsCell struct {
	eff Effect
	ok  bool
}

// wsCellPool recycles the per-level cell buffers across levels and across
// concurrent generations.
var wsCellPool = sync.Pool{
	New: func() any { return new([]wsCell) },
}

// wsExplorer owns a pool of persistent worker goroutines that expand
// frontier stretches. Work is distributed as fixed-size segments over
// per-worker work-stealing deques: each worker drains its own deque from
// the bottom and steals from the top of a victim's when it runs dry, so an
// uneven Apply cost profile cannot leave workers idle behind a barrier the
// way the old chunk-and-barrier sharding did.
//
// Determinism: workers only compute effects; the coordinator alone interns
// targets, walking the completed level in ascending state id and message
// order — the exact order the serial explorer interns in. The resulting
// arena ids, columns, and machine are therefore bit-identical to the
// serial result regardless of worker count or scheduling.
type wsExplorer struct {
	m          Model
	components []StateComponent
	messages   []string
	workers    int
	levelCh    chan *wsLevel
	started    bool
}

func newWSExplorer(m Model, components []StateComponent, messages []string, workers int) *wsExplorer {
	return &wsExplorer{m: m, components: components, messages: messages, workers: workers}
}

// start lazily spawns the worker goroutines; explorations that never reach
// parallelThreshold never pay for them.
func (e *wsExplorer) start() {
	if e.started {
		return
	}
	e.started = true
	e.levelCh = make(chan *wsLevel)
	for i := 0; i < e.workers; i++ {
		go e.worker(i)
	}
}

// stop terminates the worker pool, if it was ever started.
func (e *wsExplorer) stop() {
	if e.started {
		close(e.levelCh)
	}
}

func (e *wsExplorer) worker(idx int) {
	for lvl := range e.levelCh {
		lvl.run(idx)
	}
}

// expandLevel expands states [lo, hi) on the worker pool and merges the
// results into ex in deterministic order. It returns the next cursor (hi).
func (e *wsExplorer) expandLevel(ctx context.Context, ex *exploration, lo, hi int) (int, error) {
	e.start()
	nm := len(e.messages)
	need := (hi - lo) * nm

	cellsp := wsCellPool.Get().(*[]wsCell)
	if cap(*cellsp) < need {
		*cellsp = make([]wsCell, need)
	}
	cells := (*cellsp)[:need]

	nseg := (hi - lo + wsSegmentSize - 1) / wsSegmentSize
	lvl := &wsLevel{
		lo: lo, hi: hi,
		width:      ex.arena.width,
		chunks:     ex.arena.chunks,
		cells:      cells,
		deques:     make([]*stealDeque, e.workers),
		done:       make(chan struct{}),
		ctx:        ctx,
		m:          e.m,
		components: e.components,
		messages:   e.messages,
	}
	lvl.pending.Store(int64(nseg))
	// Seed each worker's deque with a contiguous run of segments, so the
	// no-stealing fast path touches memory sequentially.
	per := (nseg + e.workers - 1) / e.workers
	for w := 0; w < e.workers; w++ {
		a := min(w*per, nseg)
		b := min(a+per, nseg)
		lvl.deques[w] = newStealDeque(a, b)
	}

	for i := 0; i < e.workers; i++ {
		e.levelCh <- lvl
	}
	<-lvl.done
	err := lvl.errOf()
	if err == nil {
		// Deterministic merge: ascending state id, message order.
		for i := 0; i < hi-lo; i++ {
			base := i * nm
			for mi := 0; mi < nm; mi++ {
				c := cells[base+mi]
				ex.cols[mi] = append(ex.cols[mi], ex.cellOf(c.eff, c.ok))
			}
		}
	}
	clear(cells) // release Effect references before pooling the buffer
	wsCellPool.Put(cellsp)
	if err != nil {
		return 0, err
	}
	return hi, nil
}

// wsLevel is one dispatched frontier stretch. It is self-contained — late
// workers that receive it after the level already completed find only
// drained deques and return without touching shared state.
type wsLevel struct {
	lo, hi  int
	width   int
	chunks  [][]int
	cells   []wsCell
	deques  []*stealDeque
	pending atomic.Int64
	done    chan struct{}

	errMu sync.Mutex
	err   error

	ctx        context.Context
	m          Model
	components []StateComponent
	messages   []string
}

// vecOf reads state id from the chunk snapshot. Chunks never move, so the
// snapshot covers every id below hi even while the coordinator (which is
// blocked on done anyway) would intern more.
func (l *wsLevel) vecOf(id int) Vector {
	c := l.chunks[id>>arenaChunkShift]
	off := (id & (arenaChunkSize - 1)) * l.width
	return Vector(c[off : off+l.width : off+l.width])
}

func (l *wsLevel) fail(err error) {
	l.errMu.Lock()
	if l.err == nil {
		l.err = err
	}
	l.errMu.Unlock()
}

func (l *wsLevel) errOf() error {
	l.errMu.Lock()
	defer l.errMu.Unlock()
	return l.err
}

func (l *wsLevel) failed() bool { return l.errOf() != nil }

// run drains segments — own deque first, then stealing — until no work is
// left anywhere, completing the level when the last segment finishes.
func (l *wsLevel) run(w int) {
	own := l.deques[w]
	for {
		seg, ok := own.pop()
		if !ok {
			seg, ok = l.steal(w)
			if !ok {
				return
			}
		}
		l.process(seg)
		if l.pending.Add(-1) == 0 {
			close(l.done)
		}
	}
}

// steal claims a segment from some other worker's deque, retrying while any
// deque still appears populated (a failed CAS means another thief won the
// race, not that the work is gone).
func (l *wsLevel) steal(w int) (int, bool) {
	for {
		busy := false
		for i := range l.deques {
			if i == w {
				continue
			}
			if seg, ok := l.deques[i].steal(); ok {
				return seg, true
			}
			if !l.deques[i].empty() {
				busy = true
			}
		}
		if !busy {
			return 0, false
		}
	}
}

// process expands one segment of states, recording raw effects into the
// level's cell buffer. After a failure, remaining segments are drained
// without work so pending still reaches zero.
func (l *wsLevel) process(seg int) {
	if l.failed() {
		return
	}
	if err := l.ctx.Err(); err != nil {
		l.fail(err)
		return
	}
	base := l.lo + seg*wsSegmentSize
	end := min(base+wsSegmentSize, l.hi)
	nm := len(l.messages)
	for id := base; id < end; id++ {
		v := l.vecOf(id)
		out := l.cells[(id-l.lo)*nm:]
		for mi, msg := range l.messages {
			eff, ok := l.m.Apply(v, msg)
			if ok && !eff.Finished {
				if err := eff.Target.validate(l.components); err != nil {
					l.fail(fmt.Errorf("core: %s on %s: %w", msg, v.Name(l.components), err))
					return
				}
			}
			out[mi] = wsCell{eff: eff, ok: ok}
		}
	}
}

// stealDeque is a work-stealing deque of segment indices specialised for
// the level protocol: all pushes happen before the workers see the level,
// so the buffer is immutable while owner pops (bottom end) and thief steals
// (top end) race. That immutability reduces the classic Chase-Lev algorithm
// to its pop/steal halves — the only synchronisation point is the CAS on
// top when the two ends meet.
type stealDeque struct {
	base   int // segment index of buffer slot 0
	size   int
	top    atomic.Int64
	bottom atomic.Int64
}

// newStealDeque seeds a deque holding segments [a, b).
func newStealDeque(a, b int) *stealDeque {
	d := &stealDeque{base: a, size: b - a}
	d.bottom.Store(int64(b - a))
	return d
}

func (d *stealDeque) empty() bool {
	return d.top.Load() >= d.bottom.Load()
}

// pop takes a segment from the bottom; the owner is the only caller.
func (d *stealDeque) pop() (int, bool) {
	b := d.bottom.Add(-1)
	t := d.top.Load()
	if t > b {
		// Deque was empty; restore bottom.
		d.bottom.Store(t)
		return 0, false
	}
	if t == b {
		// Last element: race the thieves for it.
		ok := d.top.CompareAndSwap(t, t+1)
		d.bottom.Store(b + 1)
		if !ok {
			return 0, false
		}
	}
	return d.base + int(b), true
}

// steal takes a segment from the top. A false return means either the deque
// is empty or another thief won the CAS; callers distinguish via empty().
func (d *stealDeque) steal() (int, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return 0, false
	}
	if !d.top.CompareAndSwap(t, t+1) {
		return 0, false
	}
	return d.base + int(t), true
}
