package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// slowModel is a linear chain of states whose Apply sleeps, so a
// generation is reliably in flight when a test cancels it. Its
// fingerprint depends only on the declared structure, so a slow and a
// fast instance with equal sizes share a cache entry.
type slowModel struct {
	states int
	delay  time.Duration
}

func (m *slowModel) Name() string   { return "slow" }
func (m *slowModel) Parameter() int { return m.states }
func (m *slowModel) Components() []StateComponent {
	return []StateComponent{NewIntComponent("i", m.states)}
}
func (m *slowModel) Messages() []string { return []string{"next"} }
func (m *slowModel) Start() Vector      { return Vector{0} }

func (m *slowModel) Apply(v Vector, msg string) (Effect, bool) {
	if msg != "next" {
		return Effect{}, false
	}
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	if v[0] == m.states {
		return Effect{Finished: true}, true
	}
	return Effect{Target: Vector{v[0] + 1}}, true
}

func (m *slowModel) DescribeState(Vector) []string { return nil }

// TestGenerateCancellation: cancelling the context mid-exploration makes
// Generate return ctx.Err() promptly instead of finishing the frontier.
func TestGenerateCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "serial", 4: "parallel"}[workers], func(t *testing.T) {
			// Full generation would take ~5s; the cancel arrives after ~10ms.
			m := &slowModel{states: 50000, delay: 100 * time.Microsecond}
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(10 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			// WithoutMerging keeps the worst case bounded: merge cost on a
			// long chain is quadratic and irrelevant to cancellation.
			_, err := Generate(ctx, m, WithoutDescriptions(), WithoutMerging(), WithWorkers(workers))
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("Generate error = %v, want context.Canceled", err)
			}
			if elapsed := time.Since(start); elapsed > 3*time.Second {
				t.Errorf("cancelled Generate took %v, want prompt abort", elapsed)
			}
		})
	}
}

// TestGenerateDeadline: an expired deadline surfaces as
// context.DeadlineExceeded.
func TestGenerateDeadline(t *testing.T) {
	m := &slowModel{states: 50000, delay: 100 * time.Microsecond}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := Generate(ctx, m, WithoutDescriptions(), WithoutMerging()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Generate error = %v, want context.DeadlineExceeded", err)
	}
}

// TestGenerateNilContext: a nil context is treated as background.
func TestGenerateNilContext(t *testing.T) {
	machine, err := Generate(nil, &toyModel{max: 3}, WithoutDescriptions())
	if err != nil {
		t.Fatalf("Generate(nil ctx): %v", err)
	}
	if len(machine.States) == 0 {
		t.Error("empty machine")
	}
}

// TestCacheCancellationLeavesNoPoisonedEntry is the cancellation
// acceptance test: a large generation cancelled mid-flight returns
// ctx.Err() promptly, every single-flight waiter observes the error, the
// cache retains no entry for the fingerprint, and the next request
// regenerates successfully.
func TestCacheCancellationLeavesNoPoisonedEntry(t *testing.T) {
	cache := NewGenerationCache(WithoutDescriptions(), WithoutMerging())
	slow := &slowModel{states: 50000, delay: 100 * time.Microsecond}

	ctx, cancel := context.WithCancel(context.Background())
	const waiters = 4
	errs := make([]error, waiters+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the owner: starts the generation under the cancellable ctx
		defer wg.Done()
		_, errs[0] = cache.MachineFor(ctx, slow)
	}()

	// Wait until the generation is in flight before attaching waiters.
	waitFor(t, func() bool { return cache.Stats().Misses >= 1 })
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Waiters use their own (background) context: they must still
			// observe the owner's error through the shared entry.
			_, errs[i] = cache.MachineFor(context.Background(), slow)
		}(i)
	}
	waitFor(t, func() bool { return cache.Stats().Hits >= waiters })

	start := time.Now()
	cancel()
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("cancelled generation settled after %v, want prompt abort", elapsed)
	}
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("request %d error = %v, want context.Canceled", i, err)
		}
	}

	st := cache.Stats()
	if st.Cancellations != 1 {
		t.Errorf("cancellations = %d, want 1", st.Cancellations)
	}
	if st.Generations != 0 {
		t.Errorf("generations = %d, want 0 (the aborted run must not count)", st.Generations)
	}
	if cache.Len() != 0 {
		t.Fatalf("cache kept %d entries after a cancelled generation (poisoned entry)", cache.Len())
	}

	// The same fingerprint regenerates cleanly on the next request (the
	// fast twin shares the slow model's fingerprint).
	fast := &slowModel{states: 50000}
	if cache.Fingerprint(fast) != cache.Fingerprint(slow) {
		t.Fatal("fast and slow models should share a fingerprint")
	}
	machine, err := cache.MachineFor(context.Background(), fast)
	if err != nil {
		t.Fatalf("regeneration after cancellation: %v", err)
	}
	if machine == nil || len(machine.States) == 0 {
		t.Fatal("regeneration produced no machine")
	}
	if st := cache.Stats(); st.Generations != 1 {
		t.Errorf("generations after regeneration = %d, want 1", st.Generations)
	}
}

// TestCacheWaiterCancellation: a waiter whose own context is cancelled
// stops waiting promptly while the owner's generation continues and is
// cached normally.
func TestCacheWaiterCancellation(t *testing.T) {
	cache := NewGenerationCache(WithoutDescriptions(), WithoutMerging())
	slow := &slowModel{states: 2000, delay: 100 * time.Microsecond}

	ownerDone := make(chan error, 1)
	go func() {
		_, err := cache.MachineFor(context.Background(), slow)
		ownerDone <- err
	}()
	waitFor(t, func() bool { return cache.Stats().Misses >= 1 })

	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := cache.MachineFor(waiterCtx, slow)
		waiterDone <- err
	}()
	waitFor(t, func() bool { return cache.Stats().Hits >= 1 })

	cancelWaiter()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter error = %v, want context.Canceled", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cancelled waiter did not return promptly")
	}

	if err := <-ownerDone; err != nil {
		t.Fatalf("owner generation failed: %v", err)
	}
	st := cache.Stats()
	if st.Generations != 1 || st.Cancellations != 0 {
		t.Errorf("stats = %+v, want 1 generation and 0 cancellations", st)
	}
	if cache.Len() != 1 {
		t.Errorf("cache entries = %d, want the completed generation retained", cache.Len())
	}
}

// waitFor polls cond until it holds or the test deadline budget runs out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
