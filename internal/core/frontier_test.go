package core

import (
	"context"
	"errors"
	"math"
	"testing"
)

// hugeModel has a component cross product of 512^7 = 2^63, which overflows
// int, while only three states are reachable: the frontier explorer must
// generate it, and the legacy enumeration path must refuse with
// ErrStateSpaceOverflow.
type hugeModel struct{}

func hugeComponents() []StateComponent {
	comps := make([]StateComponent, 7)
	for i := range comps {
		comps[i] = NewIntComponent("dim", 511)
	}
	return comps
}

func (hugeModel) Name() string                  { return "huge" }
func (hugeModel) Parameter() int                { return 511 }
func (hugeModel) Components() []StateComponent  { return hugeComponents() }
func (hugeModel) Messages() []string            { return []string{"inc"} }
func (hugeModel) Start() Vector                 { return make(Vector, 7) }
func (hugeModel) DescribeState(Vector) []string { return nil }
func (hugeModel) Apply(v Vector, msg string) (Effect, bool) {
	if msg != "inc" {
		return Effect{}, false
	}
	if v[0] == 2 {
		return Effect{Finished: true}, true
	}
	next := v.Clone()
	next[0]++
	return Effect{Target: next}, true
}

func TestFrontierToleratesCrossProductOverflow(t *testing.T) {
	machine, err := Generate(context.Background(), hugeModel{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if !machine.Stats.InitialOverflow {
		t.Error("InitialOverflow not set for a 2^63 cross product")
	}
	if machine.Stats.InitialStates != math.MaxInt {
		t.Errorf("InitialStates = %d, want saturated math.MaxInt", machine.Stats.InitialStates)
	}
	// Reachable: values 0,1,2 on the first dimension, plus the finish state.
	if got := machine.Stats.ReachableStates; got != 4 {
		t.Errorf("ReachableStates = %d, want 4", got)
	}
	if machine.Finish == nil {
		t.Error("finish state missing")
	}
}

func TestLegacyEnumerationRejectsOverflow(t *testing.T) {
	_, err := Generate(context.Background(), hugeModel{}, WithoutPruning())
	if !errors.Is(err, ErrStateSpaceOverflow) {
		t.Fatalf("Generate(context.Background(), WithoutPruning) error = %v, want ErrStateSpaceOverflow", err)
	}
}

func TestStateSpaceSizeOverflow(t *testing.T) {
	if _, err := stateSpaceSize(hugeComponents()); !errors.Is(err, ErrStateSpaceOverflow) {
		t.Errorf("stateSpaceSize error = %v, want ErrStateSpaceOverflow", err)
	}
	size, err := stateSpaceSize([]StateComponent{NewBoolComponent("a"), NewIntComponent("b", 4)})
	if err != nil || size != 10 {
		t.Errorf("stateSpaceSize = %d, %v, want 10, nil", size, err)
	}
}

func TestVectorIndexOverflow(t *testing.T) {
	// 512^8 = 2^72: the top indices of this space exceed math.MaxInt.
	comps := append(hugeComponents(), NewIntComponent("dim", 511))
	v := make(Vector, 8)
	for i := range v {
		v[i] = 511
	}
	if _, err := v.index(comps); !errors.Is(err, ErrStateSpaceOverflow) {
		t.Errorf("index error = %v, want ErrStateSpaceOverflow", err)
	}
	small := Vector{1, 2}
	idx, err := small.index([]StateComponent{NewBoolComponent("a"), NewIntComponent("b", 4)})
	if err != nil || idx != 7 {
		t.Errorf("index = %d, %v, want 7, nil", idx, err)
	}
}

func TestVectorCompareMatchesIndexOrder(t *testing.T) {
	comps := []StateComponent{NewIntComponent("a", 2), NewBoolComponent("b"), NewIntComponent("c", 3)}
	size, err := stateSpaceSize(comps)
	if err != nil {
		t.Fatal(err)
	}
	prev := Vector(nil)
	for idx := 0; idx < size; idx++ {
		v := vectorFromIndex(idx, comps)
		if prev != nil && prev.Compare(v) >= 0 {
			t.Fatalf("Compare(%v, %v) >= 0, want < 0 (index order)", prev, v)
		}
		if v.Compare(v) != 0 {
			t.Fatalf("Compare(%v, itself) != 0", v)
		}
		prev = v
	}
}

// TestWorkersMatchSerialToy checks the parallel frontier explorer on the
// toy model for several worker counts, including counts exceeding the
// frontier size.
func TestWorkersMatchSerialToy(t *testing.T) {
	serial, err := Generate(context.Background(), &toyModel{max: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 3, 8, 64} {
		parallel, err := Generate(context.Background(), &toyModel{max: 5}, WithWorkers(n))
		if err != nil {
			t.Fatalf("WithWorkers(%d): %v", n, err)
		}
		if parallel.Stats != serial.Stats {
			t.Errorf("WithWorkers(%d) stats = %+v, want %+v", n, parallel.Stats, serial.Stats)
		}
		ns, np := serial.StateNames(), parallel.StateNames()
		if len(ns) != len(np) {
			t.Fatalf("WithWorkers(%d): %d states, want %d", n, len(np), len(ns))
		}
		for i := range ns {
			if ns[i] != np[i] {
				t.Errorf("WithWorkers(%d): state[%d] = %q, want %q", n, i, np[i], ns[i])
			}
		}
	}
}

// TestFrontierSkipsUnreachable asserts the memory contract of the default
// path: states unreachable from the start vector are never visited, so the
// model's Apply is never called on them.
type probeModel struct {
	toyModel
	visited map[string]bool
}

func (m *probeModel) Apply(v Vector, msg string) (Effect, bool) {
	if m.visited != nil {
		m.visited[v.Name(m.Components())] = true
	}
	return m.toyModel.Apply(v, msg)
}

func TestFrontierSkipsUnreachable(t *testing.T) {
	m := &probeModel{toyModel: toyModel{max: 3}, visited: map[string]bool{}}
	if _, err := Generate(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	// The poison bit is never set by any transition, so no poisoned state
	// may ever be passed to Apply.
	for name := range m.visited {
		if name[len(name)-1] == 'T' {
			t.Errorf("Apply called on unreachable poisoned state %s", name)
		}
	}
	if len(m.visited) != 4 {
		t.Errorf("Apply visited %d states, want 4 reachable", len(m.visited))
	}
}
