package core

import (
	"errors"
	"fmt"
	"strings"
)

// Errors returned by Generate for malformed models.
var (
	ErrNoComponents = errors.New("core: model declares no state components")
	ErrNoMessages   = errors.New("core: model declares no messages")
)

type genConfig struct {
	prune           bool
	merge           bool
	singlePassMerge bool
	describe        bool
}

// Option configures the generation pipeline.
type Option func(*genConfig)

// WithoutPruning disables step 3 (removal of unreachable states); the
// resulting machine contains the full enumerated state space. Used by the
// pipeline-ablation experiments.
func WithoutPruning() Option { return func(c *genConfig) { c.prune = false } }

// WithoutMerging disables step 4 (combining equivalent states). Used by the
// pipeline-ablation experiments.
func WithoutMerging() Option { return func(c *genConfig) { c.merge = false } }

// WithSinglePassMerge makes step 4 perform exactly one round of equivalence
// combining (states whose outgoing transitions perform the same actions and
// lead to the same destination state) instead of iterating to a fixpoint.
func WithSinglePassMerge() Option { return func(c *genConfig) { c.singlePassMerge = true } }

// WithoutDescriptions skips attaching the model's per-state documentation,
// which speeds up generation for large parameter values.
func WithoutDescriptions() Option { return func(c *genConfig) { c.describe = false } }

// rawTransition is the per-(state,message) effect computed during step 2.
type rawTransition struct {
	// msg is the message that triggers the transition.
	msg string
	// target is the enumeration index of the resulting state, or
	// finishTarget for transitions into the synthetic finish state.
	target      int
	actions     []string
	annotations []string
}

const finishTarget = -1

// Generate executes the abstract model and returns the corresponding finite
// state machine, following the four pipeline steps of §3.4: enumerate all
// possible states, generate the transitions resulting from all possible
// messages, prune unreachable states, and combine equivalent states.
func Generate(m Model, opts ...Option) (*StateMachine, error) {
	cfg := genConfig{prune: true, merge: true, describe: true}
	for _, opt := range opts {
		opt(&cfg)
	}

	components := m.Components()
	if len(components) == 0 {
		return nil, ErrNoComponents
	}
	messages := m.Messages()
	if len(messages) == 0 {
		return nil, ErrNoMessages
	}
	if err := checkUnique(messages); err != nil {
		return nil, err
	}
	start := m.Start()
	if err := start.validate(components); err != nil {
		return nil, fmt.Errorf("core: start state: %w", err)
	}

	// Step 1+2: enumerate every possible state and compute the transitions
	// resulting from each possible message.
	size := stateSpaceSize(components)
	table := make([][]rawTransition, size)
	hasFinish := false
	for idx := 0; idx < size; idx++ {
		v := vectorFromIndex(idx, components)
		row := make([]rawTransition, 0, len(messages))
		for _, msg := range messages {
			eff, ok := m.Apply(v, msg)
			if !ok {
				continue
			}
			rt := rawTransition{msg: msg, actions: eff.Actions, annotations: eff.Annotations}
			if eff.Finished {
				rt.target = finishTarget
				hasFinish = true
			} else {
				if err := eff.Target.validate(components); err != nil {
					return nil, fmt.Errorf("core: %s on %s: %w", msg, v.Name(components), err)
				}
				rt.target = eff.Target.index(components)
			}
			row = append(row, rt)
		}
		table[idx] = row
	}

	// Step 3: prune unreachable states via breadth-first traversal from the
	// start state.
	startIdx := start.index(components)
	reachable := make([]bool, size)
	finishReachable := false
	if cfg.prune {
		queue := []int{startIdx}
		reachable[startIdx] = true
		for len(queue) > 0 {
			idx := queue[0]
			queue = queue[1:]
			for _, rt := range table[idx] {
				if rt.target == finishTarget {
					finishReachable = true
					continue
				}
				if !reachable[rt.target] {
					reachable[rt.target] = true
					queue = append(queue, rt.target)
				}
			}
		}
	} else {
		for i := range reachable {
			reachable[i] = true
		}
		finishReachable = hasFinish
	}

	machine := buildMachine(m, cfg, table, reachable, finishReachable, startIdx)
	machine.Stats.InitialStates = size
	machine.Stats.ReachableStates = len(machine.States)

	// Step 4: combine equivalent states.
	if cfg.merge {
		mergeEquivalent(machine, cfg.singlePassMerge)
	}
	machine.Stats.FinalStates = len(machine.States)
	machine.sortStates()
	return machine, nil
}

// buildMachine materialises State and Transition objects for the reachable
// portion of the transition table.
func buildMachine(m Model, cfg genConfig, table [][]rawTransition, reachable []bool, finishReachable bool, startIdx int) *StateMachine {
	components := m.Components()
	machine := &StateMachine{
		ModelName:  m.Name(),
		Parameter:  m.Parameter(),
		Components: components,
		Messages:   append([]string(nil), m.Messages()...),
	}

	states := make(map[int]*State, len(table))
	for idx, row := range table {
		if !reachable[idx] {
			continue
		}
		v := vectorFromIndex(idx, components)
		s := &State{
			Name:        v.Name(components),
			Vector:      v,
			Transitions: make(map[string]*Transition, len(row)),
		}
		if cfg.describe {
			s.Annotations = m.DescribeState(v)
		}
		s.MergedNames = []string{s.Name}
		states[idx] = s
		machine.States = append(machine.States, s)
	}

	var finish *State
	if finishReachable {
		finish = &State{
			Name:        FinishStateName,
			Final:       true,
			Transitions: map[string]*Transition{},
			MergedNames: []string{FinishStateName},
			Annotations: []string{"The algorithm instance has completed."},
		}
		machine.States = append(machine.States, finish)
		machine.Finish = finish
	}

	for idx, row := range table {
		if !reachable[idx] {
			continue
		}
		s := states[idx]
		for _, rt := range row {
			var target *State
			if rt.target == finishTarget {
				target = finish
			} else {
				target = states[rt.target]
				if target == nil {
					// Target pruned: cannot happen for reachable sources,
					// since reachability propagates through transitions.
					continue
				}
			}
			s.Transitions[rt.msg] = &Transition{
				Message:     rt.msg,
				Target:      target,
				Actions:     append([]string(nil), rt.actions...),
				Annotations: append([]string(nil), rt.annotations...),
			}
		}
	}

	machine.Start = states[startIdx]
	return machine
}

func checkUnique(messages []string) error {
	seen := make(map[string]struct{}, len(messages))
	for _, msg := range messages {
		if strings.TrimSpace(msg) == "" {
			return errors.New("core: empty message name")
		}
		if _, dup := seen[msg]; dup {
			return fmt.Errorf("core: duplicate message %q", msg)
		}
		seen[msg] = struct{}{}
	}
	return nil
}
