package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
)

// Errors returned by Generate for malformed models.
var (
	ErrNoComponents = errors.New("core: model declares no state components")
	ErrNoMessages   = errors.New("core: model declares no messages")
)

type genConfig struct {
	prune           bool
	merge           bool
	singlePassMerge bool
	describe        bool
	workers         int
}

// Option configures the generation pipeline.
type Option func(*genConfig)

// newGenConfig applies opts to the default configuration.
func newGenConfig(opts []Option) genConfig {
	cfg := genConfig{prune: true, merge: true, describe: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// WithoutPruning disables reachability-first exploration and falls back to
// the paper's literal §3.4 pipeline: enumerate the full component cross
// product, generate transitions for every state, and keep unreachable
// states in the resulting machine. Used by the pipeline-ablation
// experiments. The cross product must fit in an int; Generate returns
// ErrStateSpaceOverflow otherwise.
func WithoutPruning() Option { return func(c *genConfig) { c.prune = false } }

// WithoutMerging disables step 4 (combining equivalent states). Used by the
// pipeline-ablation experiments.
func WithoutMerging() Option { return func(c *genConfig) { c.merge = false } }

// WithSinglePassMerge makes step 4 perform exactly one round of equivalence
// combining (states whose outgoing transitions perform the same actions and
// lead to the same destination state) instead of iterating to a fixpoint.
func WithSinglePassMerge() Option { return func(c *genConfig) { c.singlePassMerge = true } }

// WithoutDescriptions skips attaching the model's per-state documentation,
// which speeds up generation for large parameter values.
func WithoutDescriptions() Option { return func(c *genConfig) { c.describe = false } }

// WithWorkers shards frontier expansion across n goroutines. Each BFS level
// is split into chunks whose transitions are computed concurrently and then
// merged in deterministic state order, so the generated machine is
// bit-identical to the serial result. The model's Apply method is called
// concurrently; Model implementations must be deterministic and side-effect
// free (as the Model contract already requires), which makes concurrent
// calls safe. Values of n below 2 select the serial explorer. Ignored on
// the WithoutPruning path, which retains the legacy serial enumeration.
func WithWorkers(n int) Option { return func(c *genConfig) { c.workers = n } }

// rawTransition is the per-(state,message) effect computed during
// exploration.
type rawTransition struct {
	// msg is the message that triggers the transition.
	msg string
	// target is the state id of the resulting state, or finishTarget for
	// transitions into the synthetic finish state.
	target      int
	actions     []string
	annotations []string
}

const finishTarget = -1

// stateStore interns state vectors: each distinct vector is assigned a dense
// id in discovery order. It replaces the legacy row-major ordinal indexing,
// so only visited states are ever materialised.
type stateStore struct {
	ids    map[string]int
	vecs   []Vector
	keyBuf []byte
}

func newStateStore() *stateStore {
	return &stateStore{ids: make(map[string]int, 64)}
}

// intern returns the id of v, assigning the next free id when v has not been
// seen before. The vector is copied, so callers may reuse v.
func (st *stateStore) intern(v Vector) int {
	st.keyBuf = v.appendKey(st.keyBuf[:0])
	if id, ok := st.ids[string(st.keyBuf)]; ok {
		return id
	}
	id := len(st.vecs)
	st.ids[string(st.keyBuf)] = id
	st.vecs = append(st.vecs, v.Clone())
	return id
}

// Generate executes the abstract model and returns the corresponding finite
// state machine. The default path is reachability-first: starting from the
// model's start vector, a breadth-first frontier exploration generates
// transitions only for states actually reachable, so memory and time scale
// with the reachable set rather than the component cross product (§3.4
// steps 1–3 fused). Equivalent states are then combined (step 4).
// WithoutPruning selects the legacy full-enumeration pipeline instead.
//
// Generation honours ctx: cancellation is observed between state
// expansions, so a long-running generation for a large parameter value
// aborts promptly with ctx.Err(). A nil ctx is treated as
// context.Background().
func Generate(ctx context.Context, m Model, opts ...Option) (*StateMachine, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := newGenConfig(opts)

	components := m.Components()
	if len(components) == 0 {
		return nil, ErrNoComponents
	}
	messages := m.Messages()
	if len(messages) == 0 {
		return nil, ErrNoMessages
	}
	if err := checkUnique(messages); err != nil {
		return nil, err
	}
	start := m.Start()
	if err := start.validate(components); err != nil {
		return nil, fmt.Errorf("core: start state: %w", err)
	}

	var (
		store      *stateStore
		table      [][]rawTransition
		hasFinish  bool
		err        error
		crossSize  int
		overflowed bool
	)
	crossSize, err = stateSpaceSize(components)
	if err != nil {
		if !cfg.prune {
			// The legacy pipeline must materialise the cross product.
			return nil, err
		}
		crossSize, overflowed = math.MaxInt, true
	}

	if cfg.prune {
		store, table, hasFinish, err = exploreFrontier(ctx, m, components, messages, start, cfg.workers)
	} else {
		store, table, hasFinish, err = enumerateAll(ctx, m, components, messages, crossSize)
	}
	if err != nil {
		return nil, err
	}

	startID := 0
	if !cfg.prune {
		if startID, err = start.index(components); err != nil {
			return nil, err
		}
	}
	finishReachable := hasFinish // every explored state is reachable on the frontier path

	machine := buildMachine(m, cfg, store.vecs, table, finishReachable, startID)
	machine.Stats.InitialStates = crossSize
	machine.Stats.InitialOverflow = overflowed
	machine.Stats.ReachableStates = len(machine.States)

	// Step 4: combine equivalent states.
	if cfg.merge {
		mergeEquivalent(machine, cfg.singlePassMerge)
	}
	machine.Stats.FinalStates = len(machine.States)
	machine.sortStates()
	return machine, nil
}

// exploreFrontier performs the reachability-first exploration: a worklist
// BFS from the start vector, interning each newly discovered vector in the
// store. Processing states in id order is exactly FIFO order, since new
// states are appended in discovery order. With workers > 1 each BFS level is
// expanded concurrently and merged deterministically.
func exploreFrontier(ctx context.Context, m Model, components []StateComponent, messages []string, start Vector, workers int) (*stateStore, [][]rawTransition, bool, error) {
	if workers > 1 {
		return exploreFrontierParallel(ctx, m, components, messages, start, workers)
	}
	store := newStateStore()
	store.intern(start)
	table := make([][]rawTransition, 0, 64)
	hasFinish := false
	for cursor := 0; cursor < len(store.vecs); cursor++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, false, err
		}
		v := store.vecs[cursor]
		row := make([]rawTransition, 0, len(messages))
		for _, msg := range messages {
			eff, ok := m.Apply(v, msg)
			if !ok {
				continue
			}
			rt := rawTransition{msg: msg, actions: eff.Actions, annotations: eff.Annotations}
			if eff.Finished {
				rt.target = finishTarget
				hasFinish = true
			} else {
				if err := eff.Target.validate(components); err != nil {
					return nil, nil, false, fmt.Errorf("core: %s on %s: %w", msg, v.Name(components), err)
				}
				rt.target = store.intern(eff.Target)
			}
			row = append(row, rt)
		}
		table = append(table, row)
	}
	return store, table, hasFinish, nil
}

// appliedEffect is one applicable (message, effect) pair computed by a
// frontier-expansion worker before the deterministic merge assigns ids.
type appliedEffect struct {
	msg string
	eff Effect
}

// exploreFrontierParallel is the level-synchronised variant of
// exploreFrontier: the states of one BFS level are sharded across workers,
// each worker computes the raw effects for its shard, and the main goroutine
// merges the shards in ascending state id, interning targets in the same
// order the serial explorer would. The resulting store and table are
// identical to the serial ones.
func exploreFrontierParallel(ctx context.Context, m Model, components []StateComponent, messages []string, start Vector, workers int) (*stateStore, [][]rawTransition, bool, error) {
	store := newStateStore()
	store.intern(start)
	table := make([][]rawTransition, 0, 64)
	hasFinish := false

	for lo := 0; lo < len(store.vecs); {
		hi := len(store.vecs)
		n := hi - lo
		results := make([][]appliedEffect, n)
		chunk := (n + workers - 1) / workers

		var (
			wg       sync.WaitGroup
			errMu    sync.Mutex
			firstErr error
		)
		for w := 0; w < workers; w++ {
			a := lo + w*chunk
			b := min(a+chunk, hi)
			if a >= b {
				break
			}
			wg.Add(1)
			go func(a, b int) {
				defer wg.Done()
				for id := a; id < b; id++ {
					if err := ctx.Err(); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
					v := store.vecs[id]
					effs := make([]appliedEffect, 0, len(messages))
					for _, msg := range messages {
						eff, ok := m.Apply(v, msg)
						if !ok {
							continue
						}
						if !eff.Finished {
							if err := eff.Target.validate(components); err != nil {
								errMu.Lock()
								if firstErr == nil {
									firstErr = fmt.Errorf("core: %s on %s: %w", msg, v.Name(components), err)
								}
								errMu.Unlock()
								return
							}
						}
						effs = append(effs, appliedEffect{msg: msg, eff: eff})
					}
					results[id-lo] = effs
				}
			}(a, b)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, nil, false, firstErr
		}

		for i := 0; i < n; i++ {
			row := make([]rawTransition, 0, len(results[i]))
			for _, ae := range results[i] {
				rt := rawTransition{msg: ae.msg, actions: ae.eff.Actions, annotations: ae.eff.Annotations}
				if ae.eff.Finished {
					rt.target = finishTarget
					hasFinish = true
				} else {
					rt.target = store.intern(ae.eff.Target)
				}
				row = append(row, rt)
			}
			table = append(table, row)
		}
		lo = hi
	}
	return store, table, hasFinish, nil
}

// enumerateAll is the legacy §3.4 steps 1+2: materialise every possible
// state in row-major order and compute the transitions resulting from each
// possible message. State ids coincide with enumeration indices.
func enumerateAll(ctx context.Context, m Model, components []StateComponent, messages []string, size int) (*stateStore, [][]rawTransition, bool, error) {
	store := &stateStore{vecs: make([]Vector, size)}
	table := make([][]rawTransition, size)
	hasFinish := false
	for idx := 0; idx < size; idx++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, false, err
		}
		v := vectorFromIndex(idx, components)
		store.vecs[idx] = v
		row := make([]rawTransition, 0, len(messages))
		for _, msg := range messages {
			eff, ok := m.Apply(v, msg)
			if !ok {
				continue
			}
			rt := rawTransition{msg: msg, actions: eff.Actions, annotations: eff.Annotations}
			if eff.Finished {
				rt.target = finishTarget
				hasFinish = true
			} else {
				if err := eff.Target.validate(components); err != nil {
					return nil, nil, false, fmt.Errorf("core: %s on %s: %w", msg, v.Name(components), err)
				}
				target, err := eff.Target.index(components)
				if err != nil {
					return nil, nil, false, err
				}
				rt.target = target
			}
			row = append(row, rt)
		}
		table[idx] = row
	}
	return store, table, hasFinish, nil
}

// buildMachine materialises State and Transition objects for the explored
// states. vecs[i] is the vector of state id i; table[i] its outgoing raw
// transitions.
func buildMachine(m Model, cfg genConfig, vecs []Vector, table [][]rawTransition, finishReachable bool, startID int) *StateMachine {
	components := m.Components()
	machine := &StateMachine{
		ModelName:  m.Name(),
		Parameter:  m.Parameter(),
		Components: components,
		Messages:   append([]string(nil), m.Messages()...),
	}

	states := make([]*State, len(table))
	for id, row := range table {
		v := vecs[id]
		s := &State{
			Name:        v.Name(components),
			Vector:      v,
			Transitions: make(map[string]*Transition, len(row)),
		}
		if cfg.describe {
			s.Annotations = m.DescribeState(v)
		}
		s.MergedNames = []string{s.Name}
		states[id] = s
		machine.States = append(machine.States, s)
	}

	var finish *State
	if finishReachable {
		finish = &State{
			Name:        FinishStateName,
			Final:       true,
			Transitions: map[string]*Transition{},
			MergedNames: []string{FinishStateName},
			Annotations: []string{"The algorithm instance has completed."},
		}
		machine.States = append(machine.States, finish)
		machine.Finish = finish
	}

	for id, row := range table {
		s := states[id]
		for _, rt := range row {
			var target *State
			if rt.target == finishTarget {
				target = finish
			} else {
				target = states[rt.target]
			}
			s.Transitions[rt.msg] = &Transition{
				Message:     rt.msg,
				Target:      target,
				Actions:     append([]string(nil), rt.actions...),
				Annotations: append([]string(nil), rt.annotations...),
			}
		}
	}

	machine.Start = states[startID]
	return machine
}

func checkUnique(messages []string) error {
	seen := make(map[string]struct{}, len(messages))
	for _, msg := range messages {
		if strings.TrimSpace(msg) == "" {
			return errors.New("core: empty message name")
		}
		if _, dup := seen[msg]; dup {
			return fmt.Errorf("core: duplicate message %q", msg)
		}
		seen[msg] = struct{}{}
	}
	return nil
}
