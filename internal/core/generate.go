package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
)

// Errors returned by Generate for malformed models.
var (
	ErrNoComponents = errors.New("core: model declares no state components")
	ErrNoMessages   = errors.New("core: model declares no messages")
)

type genConfig struct {
	prune           bool
	merge           bool
	singlePassMerge bool
	describe        bool
	workers         int
	sizeHint        int
}

// behaviourEqual reports whether two configurations produce identical
// machines. Worker count and size hints only change how the exploration is
// scheduled, never its result.
func (c genConfig) behaviourEqual(o genConfig) bool {
	return c.prune == o.prune && c.merge == o.merge &&
		c.singlePassMerge == o.singlePassMerge && c.describe == o.describe
}

// Option configures the generation pipeline.
type Option func(*genConfig)

// newGenConfig applies opts to the default configuration.
func newGenConfig(opts []Option) genConfig {
	cfg := genConfig{prune: true, merge: true, describe: true}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// WithoutPruning disables reachability-first exploration and falls back to
// the paper's literal §3.4 pipeline: enumerate the full component cross
// product, generate transitions for every state, and keep unreachable
// states in the resulting machine. Used by the pipeline-ablation
// experiments. The cross product must fit in an int; Generate returns
// ErrStateSpaceOverflow otherwise.
func WithoutPruning() Option { return func(c *genConfig) { c.prune = false } }

// WithoutMerging disables step 4 (combining equivalent states). Used by the
// pipeline-ablation experiments.
func WithoutMerging() Option { return func(c *genConfig) { c.merge = false } }

// WithSinglePassMerge makes step 4 perform exactly one round of equivalence
// combining (states whose outgoing transitions perform the same actions and
// lead to the same destination state) instead of iterating to a fixpoint.
func WithSinglePassMerge() Option { return func(c *genConfig) { c.singlePassMerge = true } }

// WithoutDescriptions skips attaching the model's per-state documentation,
// which speeds up generation for large parameter values.
func WithoutDescriptions() Option { return func(c *genConfig) { c.describe = false } }

// WithWorkers expands the frontier with n goroutines. Frontier segments are
// distributed over per-worker work-stealing deques, computed concurrently,
// and merged in deterministic state order, so the generated machine is
// bit-identical to the serial result. Frontiers smaller than an internal
// threshold are expanded serially, so small models never pay goroutine
// overhead. The model's Apply method is called concurrently; Model
// implementations must be deterministic and side-effect free (as the Model
// contract already requires), which makes concurrent calls safe. Values of
// n below 2 select the serial explorer, and n is capped at GOMAXPROCS: on
// a single-CPU machine the serial explorer always runs, since extra
// goroutines could only add scheduling overhead without any parallelism.
// Ignored on the WithoutPruning path, which retains the legacy serial
// enumeration.
func WithWorkers(n int) Option { return func(c *genConfig) { c.workers = n } }

// WithSizeHint pre-sizes the exploration's interning arena for
// approximately n reachable states, eliminating hash-table growth during
// exploration. The generation cache supplies this automatically from the
// Stats of prior generations of the same model family; the hint never
// changes the generated machine and is excluded from model fingerprints.
func WithSizeHint(n int) Option {
	return func(c *genConfig) {
		if n > 0 {
			c.sizeHint = n
		}
	}
}

// Generate executes the abstract model and returns the corresponding finite
// state machine. The default path is reachability-first: starting from the
// model's start vector, a breadth-first frontier exploration generates
// transitions only for states actually reachable, so memory and time scale
// with the reachable set rather than the component cross product (§3.4
// steps 1–3 fused). Equivalent states are then combined (step 4).
// WithoutPruning selects the legacy full-enumeration pipeline instead.
//
// Generation honours ctx: cancellation is observed between state
// expansions, so a long-running generation for a large parameter value
// aborts promptly with ctx.Err(). A nil ctx is treated as
// context.Background().
func Generate(ctx context.Context, m Model, opts ...Option) (*StateMachine, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := newGenConfig(opts)

	components := m.Components()
	if len(components) == 0 {
		return nil, ErrNoComponents
	}
	messages := m.Messages()
	if len(messages) == 0 {
		return nil, ErrNoMessages
	}
	if err := checkUnique(messages); err != nil {
		return nil, err
	}
	start := m.Start()
	if err := start.validate(components); err != nil {
		return nil, fmt.Errorf("core: start state: %w", err)
	}

	var (
		ex         *exploration
		err        error
		crossSize  int
		overflowed bool
	)
	crossSize, err = stateSpaceSize(components)
	if err != nil {
		if !cfg.prune {
			// The legacy pipeline must materialise the cross product.
			return nil, err
		}
		crossSize, overflowed = math.MaxInt, true
	}

	if cfg.prune {
		ex, err = explore(ctx, m, components, messages, start, cfg)
	} else {
		ex, err = enumerateAll(ctx, m, components, messages, crossSize, cfg)
	}
	if err != nil {
		return nil, err
	}

	startID := 0
	if !cfg.prune {
		if startID, err = start.index(components); err != nil {
			return nil, err
		}
	}
	finishReachable := ex.hasFinish // every explored state is reachable on the frontier path

	machine := buildMachine(m, cfg, ex, nil, finishReachable, startID)
	machine.Stats.InitialStates = crossSize
	machine.Stats.InitialOverflow = overflowed
	machine.Stats.ReachableStates = len(machine.States)

	// Step 4: combine equivalent states.
	if cfg.merge {
		mergeEquivalent(machine, cfg.singlePassMerge)
	}
	machine.Stats.FinalStates = len(machine.States)
	machine.sortStates()
	if cfg.prune {
		// Retain the raw exploration for incremental regeneration. The
		// legacy path keeps unreachable states in the machine, a shape
		// Regenerate does not reproduce, so it retains nothing.
		machine.explored = ex
	}
	return machine, nil
}

// explore performs the reachability-first exploration: a worklist BFS from
// the start vector, interning each newly discovered vector in the arena.
// Processing states in id order is exactly FIFO order, since new states are
// appended in discovery order. With workers > 1, frontier stretches above
// parallelThreshold are expanded by the work-stealing explorer and merged
// deterministically; smaller stretches are expanded inline.
func explore(ctx context.Context, m Model, components []StateComponent, messages []string, start Vector, cfg genConfig) (*exploration, error) {
	ex := newExploration(len(components), len(messages), cfg)
	ex.arena.intern(start)

	var ws *wsExplorer
	if w := min(cfg.workers, runtime.GOMAXPROCS(0)); w > 1 {
		ws = newWSExplorer(m, components, messages, w)
		defer ws.stop()
	}

	for cursor := 0; cursor < ex.arena.n; {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if ws != nil && ex.arena.n-cursor >= parallelThreshold {
			next, err := ws.expandLevel(ctx, ex, cursor, ex.arena.n)
			if err != nil {
				return nil, err
			}
			cursor = next
			continue
		}
		if err := ex.expandState(m, components, messages, cursor); err != nil {
			return nil, err
		}
		cursor++
	}
	return ex, nil
}

// enumerateAll is the legacy §3.4 steps 1+2: materialise every possible
// state in row-major order and compute the transitions resulting from each
// possible message. State ids coincide with enumeration indices, because
// every vector is interned in row-major order before expansion starts.
func enumerateAll(ctx context.Context, m Model, components []StateComponent, messages []string, size int, cfg genConfig) (*exploration, error) {
	cfg.sizeHint = size
	ex := newExploration(len(components), len(messages), cfg)
	for idx := 0; idx < size; idx++ {
		if idx&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		ex.arena.intern(vectorFromIndex(idx, components))
	}
	for id := 0; id < size; id++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := ex.expandState(m, components, messages, id); err != nil {
			return nil, err
		}
	}
	return ex, nil
}

// buildMachine materialises State and Transition objects for the explored
// states. reach lists the arena ids to materialise in ascending order (nil
// selects every id); startID must be among them. States and transitions
// are block-allocated, and action/annotation slices alias the effect cells
// rather than being copied.
func buildMachine(m Model, cfg genConfig, ex *exploration, reach []int32, finishReachable bool, startID int) *StateMachine {
	components := m.Components()
	machine := &StateMachine{
		ModelName:  m.Name(),
		Parameter:  m.Parameter(),
		Components: components,
		Messages:   append([]string(nil), m.Messages()...),
	}
	nm := len(machine.Messages)

	n := ex.arena.n
	if reach != nil {
		n = len(reach)
	}
	idFor := func(k int) int32 {
		if reach != nil {
			return reach[k]
		}
		return int32(k)
	}
	// posOf maps arena id -> machine state index.
	var posOf []int32
	if reach != nil {
		posOf = make([]int32, ex.arena.n)
		for i := range posOf {
			posOf[i] = -1
		}
		for k, id := range reach {
			posOf[id] = int32(k)
		}
	}

	// Count transitions up front so the transition block never reallocates;
	// handed-out pointers must stay stable.
	total := 0
	for k := 0; k < n; k++ {
		id := idFor(k)
		for mi := 0; mi < nm; mi++ {
			if ex.cols[mi][id].target != cellNone {
				total++
			}
		}
	}

	stateBlock := make([]State, n)
	states := make([]*State, n)
	transBlock := make([]Transition, 0, total)
	// One backing array serves every state's initial single-entry
	// MergedNames list; merging replaces whole slices, never appends in
	// place, so full slice expressions keep the views independent.
	nameBlock := make([]string, n)
	var nameBuf []byte

	for k := 0; k < n; k++ {
		id := idFor(k)
		v := ex.arena.vec(int(id))
		cnt := 0
		for mi := 0; mi < nm; mi++ {
			if ex.cols[mi][id].target != cellNone {
				cnt++
			}
		}
		s := &stateBlock[k]
		nameBuf = v.appendName(nameBuf[:0], components)
		s.Name = string(nameBuf)
		s.Vector = v
		s.Transitions = make(map[string]*Transition, cnt)
		if cfg.describe {
			s.Annotations = m.DescribeState(v)
		}
		nameBlock[k] = s.Name
		s.MergedNames = nameBlock[k : k+1 : k+1]
		states[k] = s
		machine.States = append(machine.States, s)
	}

	var finish *State
	if finishReachable {
		finish = &State{
			Name:        FinishStateName,
			Final:       true,
			Transitions: map[string]*Transition{},
			MergedNames: []string{FinishStateName},
			Annotations: []string{"The algorithm instance has completed."},
		}
		machine.States = append(machine.States, finish)
		machine.Finish = finish
	}

	for k := 0; k < n; k++ {
		id := idFor(k)
		s := states[k]
		for mi := 0; mi < nm; mi++ {
			cell := ex.cols[mi][id]
			if cell.target == cellNone {
				continue
			}
			var target *State
			switch {
			case cell.target == cellFinish:
				target = finish
			case reach != nil:
				target = states[posOf[cell.target]]
			default:
				target = states[cell.target]
			}
			actions := cell.actions
			if len(actions) == 0 {
				actions = nil
			}
			annotations := cell.annotations
			if len(annotations) == 0 {
				annotations = nil
			}
			msg := machine.Messages[mi]
			transBlock = append(transBlock, Transition{
				Message:     msg,
				Target:      target,
				Actions:     actions,
				Annotations: annotations,
			})
			s.Transitions[msg] = &transBlock[len(transBlock)-1]
		}
	}

	if reach != nil {
		machine.Start = states[posOf[startID]]
	} else {
		machine.Start = states[startID]
	}
	return machine
}

func checkUnique(messages []string) error {
	seen := make(map[string]struct{}, len(messages))
	for _, msg := range messages {
		if strings.TrimSpace(msg) == "" {
			return errors.New("core: empty message name")
		}
		if _, dup := seen[msg]; dup {
			return fmt.Errorf("core: duplicate message %q", msg)
		}
		seen[msg] = struct{}{}
	}
	return nil
}
