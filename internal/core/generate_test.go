package core

import (
	"context"
	"errors"
	"testing"
)

// toyModel is a configurable model for exercising the generation pipeline.
// Its state is (value, poison): value counts 0..max, poison is a boolean
// that no transition ever sets, so poisoned states are unreachable.
//
// Messages:
//
//	inc   — value++, finishing when value would exceed max
//	reset — value = 0 (a phase transition: it emits an action)
//	same  — no effect (never applicable)
type toyModel struct {
	max       int
	mergeTail bool // values >= max-1 behave identically on reset
}

func (m *toyModel) Name() string   { return "toy" }
func (m *toyModel) Parameter() int { return m.max }
func (m *toyModel) Components() []StateComponent {
	return []StateComponent{
		NewIntComponent("value", m.max),
		NewBoolComponent("poison"),
	}
}
func (m *toyModel) Messages() []string { return []string{"inc", "reset", "same"} }
func (m *toyModel) Start() Vector      { return Vector{0, 0} }

func (m *toyModel) Apply(v Vector, msg string) (Effect, bool) {
	switch msg {
	case "inc":
		if v[0] == m.max {
			return Effect{Finished: true, Actions: []string{"->done"}}, true
		}
		return Effect{Target: Vector{v[0] + 1, v[1]}}, true
	case "reset":
		target := Vector{0, v[1]}
		if m.mergeTail && v[0] >= m.max-1 {
			// Tail states reset identically, making them equivalent when
			// inc from each also behaves identically.
			target = Vector{0, v[1]}
		}
		return Effect{Target: target, Actions: []string{"->zero"}}, true
	default:
		return Effect{}, false
	}
}

func (m *toyModel) DescribeState(v Vector) []string {
	return []string{"value state"}
}

func TestGenerateToyPipeline(t *testing.T) {
	machine, err := Generate(context.Background(), &toyModel{max: 3})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Raw space: 4 values x 2 poison = 8. Poisoned states unreachable.
	if got := machine.Stats.InitialStates; got != 8 {
		t.Errorf("InitialStates = %d, want 8", got)
	}
	// Reachable: values 0..3 with poison=0, plus the finish state.
	if got := machine.Stats.ReachableStates; got != 5 {
		t.Errorf("ReachableStates = %d, want 5", got)
	}
	if machine.Start == nil || machine.Start.Name != "0/F" {
		t.Fatalf("Start = %+v, want state 0/F", machine.Start)
	}
	if machine.Finish == nil || !machine.Finish.Final {
		t.Fatal("missing finish state")
	}
	if machine.States[0] != machine.Start {
		t.Error("start state is not first after sorting")
	}
	if machine.States[len(machine.States)-1] != machine.Finish {
		t.Error("finish state is not last after sorting")
	}

	// The inc chain must walk 0 -> 1 -> 2 -> 3 -> FINISHED.
	s := machine.Start
	for i := 0; i < 3; i++ {
		tr := s.Transition("inc")
		if tr == nil {
			t.Fatalf("state %s: no inc transition", s.Name)
		}
		if tr.IsPhase() {
			t.Errorf("state %s: inc should be a simple transition", s.Name)
		}
		s = tr.Target
	}
	last := s.Transition("inc")
	if last == nil || !last.Target.Final {
		t.Fatalf("state %s: inc should finish, got %+v", s.Name, last)
	}
	if !last.IsPhase() {
		t.Error("finishing transition should carry the ->done action")
	}

	// reset is a phase transition back to start.
	tr := s.Transition("reset")
	if tr == nil || tr.Target != machine.Start || !tr.IsPhase() {
		t.Errorf("reset transition = %+v, want phase transition to start", tr)
	}

	// "same" is never applicable.
	if s.Transition("same") != nil {
		t.Error("inapplicable message recorded a transition")
	}
}

func TestGenerateWithoutPruning(t *testing.T) {
	machine, err := Generate(context.Background(), &toyModel{max: 3}, WithoutPruning())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// All 8 raw states plus the finish state are kept.
	if got := machine.Stats.ReachableStates; got != 9 {
		t.Errorf("ReachableStates = %d, want 9 (8 raw + finish)", got)
	}
}

func TestGenerateWithoutMerging(t *testing.T) {
	machine, err := Generate(context.Background(), &toyModel{max: 3}, WithoutMerging())
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if machine.Stats.FinalStates != machine.Stats.ReachableStates {
		t.Errorf("FinalStates = %d, want %d (merging disabled)",
			machine.Stats.FinalStates, machine.Stats.ReachableStates)
	}
}

// unmergeableTwin has two boolean components where the second is dead: both
// values of the dead bit behave identically, so merging must halve the
// reachable space.
type twinModel struct{}

func (twinModel) Name() string   { return "twin" }
func (twinModel) Parameter() int { return 0 }
func (twinModel) Components() []StateComponent {
	return []StateComponent{NewBoolComponent("live"), NewBoolComponent("dead")}
}
func (twinModel) Messages() []string { return []string{"flip", "poke"} }
func (twinModel) Start() Vector      { return Vector{0, 0} }
func (twinModel) Apply(v Vector, msg string) (Effect, bool) {
	switch msg {
	case "flip":
		eff := Effect{Target: Vector{1 - v[0], v[1]}}
		if v[0] == 1 {
			eff.Actions = []string{"->down"} // makes the live bit observable
		}
		return eff, true
	case "poke":
		// Sets the dead bit; behaviourally invisible afterwards, but the
		// presence of the poke edge itself distinguishes states.
		if v[1] == 1 {
			return Effect{}, false
		}
		return Effect{Target: Vector{v[0], 1}}, true
	default:
		return Effect{}, false
	}
}
func (twinModel) DescribeState(v Vector) []string { return nil }

func TestMergeCollapsesDeadBit(t *testing.T) {
	machine, err := Generate(context.Background(), twinModel{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if got := machine.Stats.ReachableStates; got != 4 {
		t.Fatalf("ReachableStates = %d, want 4", got)
	}
	// poke distinguishes dead=0 from dead=1 states structurally (the
	// latter lack the edge), so no merge happens under fixpoint
	// refinement; this guards against over-merging.
	if got := machine.Stats.FinalStates; got != 4 {
		t.Errorf("FinalStates = %d, want 4 (poke edge distinguishes)", got)
	}
}

// trueTwinModel makes the dead bit fully invisible: poke is a recorded
// self-loop on both values, so merging must collapse the pairs.
type trueTwinModel struct{}

func (trueTwinModel) Name() string   { return "truetwin" }
func (trueTwinModel) Parameter() int { return 0 }
func (trueTwinModel) Components() []StateComponent {
	return []StateComponent{NewBoolComponent("live"), NewBoolComponent("dead")}
}
func (trueTwinModel) Messages() []string { return []string{"flip", "poke"} }
func (trueTwinModel) Start() Vector      { return Vector{0, 0} }
func (trueTwinModel) Apply(v Vector, msg string) (Effect, bool) {
	switch msg {
	case "flip":
		eff := Effect{Target: Vector{1 - v[0], v[1]}}
		if v[0] == 1 {
			eff.Actions = []string{"->down"} // makes the live bit observable
		}
		return eff, true
	case "poke":
		// Always applicable (a self-loop once dead=1), so the dead bit is
		// fully invisible and the twin states must merge.
		return Effect{Target: Vector{v[0], 1}}, true
	default:
		return Effect{}, false
	}
}
func (trueTwinModel) DescribeState(v Vector) []string { return nil }

func TestMergeCollapsesTrueTwins(t *testing.T) {
	machine, err := Generate(context.Background(), trueTwinModel{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if got := machine.Stats.ReachableStates; got != 4 {
		t.Fatalf("ReachableStates = %d, want 4", got)
	}
	if got := machine.Stats.FinalStates; got != 2 {
		t.Errorf("FinalStates = %d, want 2", got)
	}
	// The merged start state must advertise both collapsed names.
	if got := len(machine.Start.MergedNames); got != 2 {
		t.Errorf("start MergedNames = %v, want 2 entries", machine.Start.MergedNames)
	}
	// Merged-away names still resolve.
	if machine.StateByName("F/T") != machine.Start {
		t.Error("StateByName alias lookup failed after merge")
	}
}

type badModel struct {
	components []StateComponent
	messages   []string
	start      Vector
	target     Vector
}

func (m badModel) Name() string                    { return "bad" }
func (m badModel) Parameter() int                  { return 0 }
func (m badModel) Components() []StateComponent    { return m.components }
func (m badModel) Messages() []string              { return m.messages }
func (m badModel) Start() Vector                   { return m.start }
func (m badModel) DescribeState(v Vector) []string { return nil }
func (m badModel) Apply(v Vector, msg string) (Effect, bool) {
	return Effect{Target: m.target}, true
}

func TestGenerateRejectsMalformedModels(t *testing.T) {
	comps := []StateComponent{NewBoolComponent("a")}
	tests := []struct {
		name  string
		model badModel
		want  error
	}{
		{"no components", badModel{messages: []string{"m"}}, ErrNoComponents},
		{"no messages", badModel{components: comps, start: Vector{0}}, ErrNoMessages},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Generate(context.Background(), tt.model)
			if !errors.Is(err, tt.want) {
				t.Errorf("Generate error = %v, want %v", err, tt.want)
			}
		})
	}

	t.Run("duplicate messages", func(t *testing.T) {
		_, err := Generate(context.Background(), badModel{components: comps, messages: []string{"m", "m"}, start: Vector{0}, target: Vector{0}})
		if err == nil {
			t.Error("Generate accepted duplicate messages")
		}
	})
	t.Run("empty message name", func(t *testing.T) {
		_, err := Generate(context.Background(), badModel{components: comps, messages: []string{" "}, start: Vector{0}, target: Vector{0}})
		if err == nil {
			t.Error("Generate accepted empty message name")
		}
	})
	t.Run("invalid start", func(t *testing.T) {
		_, err := Generate(context.Background(), badModel{components: comps, messages: []string{"m"}, start: Vector{5}, target: Vector{0}})
		if err == nil {
			t.Error("Generate accepted out-of-range start state")
		}
	})
	t.Run("invalid target", func(t *testing.T) {
		_, err := Generate(context.Background(), badModel{components: comps, messages: []string{"m"}, start: Vector{0}, target: Vector{9}})
		if err == nil {
			t.Error("Generate accepted out-of-range transition target")
		}
	})
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(context.Background(), &toyModel{max: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(context.Background(), &toyModel{max: 5})
	if err != nil {
		t.Fatal(err)
	}
	na, nb := a.StateNames(), b.StateNames()
	if len(na) != len(nb) {
		t.Fatalf("state count differs: %d vs %d", len(na), len(nb))
	}
	for i := range na {
		if na[i] != nb[i] {
			t.Errorf("state order differs at %d: %q vs %q", i, na[i], nb[i])
		}
	}
}

func TestTransitionCount(t *testing.T) {
	machine, err := Generate(context.Background(), &toyModel{max: 3})
	if err != nil {
		t.Fatal(err)
	}
	// 4 value states x (inc + reset) = 8 transitions; finish state has none.
	if got := machine.TransitionCount(); got != 8 {
		t.Errorf("TransitionCount = %d, want 8", got)
	}
}

func TestStateByNameMissing(t *testing.T) {
	machine, err := Generate(context.Background(), &toyModel{max: 2})
	if err != nil {
		t.Fatal(err)
	}
	if machine.StateByName("no/such") != nil {
		t.Error("StateByName returned a state for an unknown name")
	}
}

func TestSortedMessages(t *testing.T) {
	machine, err := Generate(context.Background(), &toyModel{max: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := machine.Start.SortedMessages(machine.Messages)
	want := []string{"inc", "reset"}
	if len(got) != len(want) {
		t.Fatalf("SortedMessages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("SortedMessages[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
