package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// countingFactory counts model constructions to observe memoisation.
type countingFactory struct {
	calls atomic.Int64
}

func (f *countingFactory) make(parameter int) (Model, error) {
	f.calls.Add(1)
	if parameter < 1 {
		return nil, errors.New("bad parameter")
	}
	return &toyModel{max: parameter}, nil
}

func TestCacheMemoises(t *testing.T) {
	f := &countingFactory{}
	cache, err := NewCache(f.make, WithoutDescriptions())
	if err != nil {
		t.Fatal(err)
	}
	m1, err := cache.Machine(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := cache.Machine(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("second request regenerated the machine")
	}
	if got := f.calls.Load(); got != 1 {
		t.Errorf("factory called %d times, want 1", got)
	}
	if _, err := cache.Machine(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != 2 {
		t.Errorf("Len = %d, want 2", cache.Len())
	}
}

func TestCacheMemoisesErrors(t *testing.T) {
	f := &countingFactory{}
	cache, err := NewCache(f.make)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Machine(context.Background(), -1); err == nil {
		t.Fatal("bad parameter accepted")
	}
	if _, err := cache.Machine(context.Background(), -1); err == nil {
		t.Fatal("bad parameter accepted on second call")
	}
	if got := f.calls.Load(); got != 1 {
		t.Errorf("factory called %d times for failing parameter, want 1", got)
	}
}

func TestCacheInvalidate(t *testing.T) {
	f := &countingFactory{}
	cache, err := NewCache(f.make)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Machine(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	cache.Invalidate(3)
	if _, err := cache.Machine(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if got := f.calls.Load(); got != 2 {
		t.Errorf("factory called %d times after invalidation, want 2", got)
	}
}

func TestCacheConcurrentFirstUse(t *testing.T) {
	f := &countingFactory{}
	cache, err := NewCache(f.make)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	machines := make([]*StateMachine, goroutines)
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			machines[i], errs[i] = cache.Machine(context.Background(), 4)
		}()
	}
	wg.Wait()
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if machines[i] != machines[0] {
			t.Fatal("concurrent first use produced different machines")
		}
	}
	if got := f.calls.Load(); got != 1 {
		t.Errorf("factory called %d times under concurrency, want 1", got)
	}
}

func TestNewCacheValidation(t *testing.T) {
	if _, err := NewCache(nil); err == nil {
		t.Error("nil factory accepted")
	}
}

func TestCacheStatsAndSingleFlight(t *testing.T) {
	f := &countingFactory{}
	cache, err := NewCache(f.make, WithoutDescriptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Machine(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Machine(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Generations != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 generation, 1 entry", st)
	}
}

// TestCacheMachineForSharesFingerprint: two distinct model values that
// would generate identical machines share one cache entry and one
// generation.
func TestCacheMachineForSharesFingerprint(t *testing.T) {
	cache := NewGenerationCache(WithoutDescriptions())
	m1, err := cache.MachineFor(context.Background(), &toyModel{max: 3})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := cache.MachineFor(context.Background(), &toyModel{max: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("equal-fingerprint models generated twice")
	}
	if st := cache.Stats(); st.Generations != 1 {
		t.Errorf("generations = %d, want 1", st.Generations)
	}
	if _, err := cache.Machine(context.Background(), 3); err == nil {
		t.Error("factory-less cache accepted Machine call")
	}
}

func TestCacheLimitEvictsLRU(t *testing.T) {
	f := &countingFactory{}
	cache, err := NewCache(f.make, WithoutDescriptions())
	if err != nil {
		t.Fatal(err)
	}
	cache.SetLimit(2)
	for _, p := range []int{1, 2, 3} {
		if _, err := cache.Machine(context.Background(), p); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2 under limit", st.Entries)
	}
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	// Parameter 1 was least recently used and must regenerate; the cached
	// parameters must not.
	calls := f.calls.Load()
	if _, err := cache.Machine(context.Background(), 3); err != nil {
		t.Fatal(err)
	}
	if f.calls.Load() != calls {
		t.Error("cached parameter re-invoked the factory")
	}
	gens := cache.Stats().Generations
	if _, err := cache.Machine(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Generations; got != gens+1 {
		t.Errorf("evicted parameter did not regenerate (generations %d -> %d)", gens, got)
	}
}

func TestCachePurge(t *testing.T) {
	f := &countingFactory{}
	cache, err := NewCache(f.make)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 3} {
		if _, err := cache.Machine(context.Background(), p); err != nil {
			t.Fatal(err)
		}
	}
	if n := cache.Purge(); n != 2 {
		t.Errorf("Purge removed %d entries, want 2", n)
	}
	if cache.Len() != 0 {
		t.Errorf("Len = %d after purge", cache.Len())
	}
	calls := f.calls.Load()
	if _, err := cache.Machine(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	if f.calls.Load() != calls+1 {
		t.Error("purged parameter did not re-invoke the factory")
	}
}
