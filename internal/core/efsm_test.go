package core

import (
	"context"
	"strings"
	"testing"
)

// counterModel is a toy family: count to max, beep at the threshold t,
// finish past max. One boolean "armed" gates counting.
type counterModel struct {
	max int
}

func (m counterModel) Name() string   { return "counter" }
func (m counterModel) Parameter() int { return m.max }
func (m counterModel) Components() []StateComponent {
	return []StateComponent{
		NewBoolComponent("armed"),
		NewIntComponent("count", m.max),
	}
}
func (m counterModel) Messages() []string { return []string{"arm", "tick"} }
func (m counterModel) Start() Vector      { return Vector{0, 0} }
func (m counterModel) Apply(v Vector, msg string) (Effect, bool) {
	switch msg {
	case "arm":
		if v[0] == 1 {
			return Effect{}, false
		}
		return Effect{Target: Vector{1, v[1]}}, true
	case "tick":
		if v[0] == 0 {
			return Effect{}, false
		}
		if v[1] == m.max {
			return Effect{Finished: true, Actions: []string{"->done"}}, true
		}
		eff := Effect{Target: Vector{1, v[1] + 1}}
		if v[1]+1 == m.max {
			eff.Actions = []string{"->beep"}
		}
		return eff, true
	default:
		return Effect{}, false
	}
}
func (m counterModel) DescribeState(Vector) []string { return nil }

// counterAbstraction coalesces the count into an EFSM variable.
type counterAbstraction struct {
	model counterModel
}

func (a counterAbstraction) StateLabel(v Vector) string {
	if v[0] == 1 {
		return "ARMED"
	}
	return "DISARMED"
}
func (a counterAbstraction) GuardComponent(msg string) int {
	if msg == "tick" {
		return 1
	}
	return -1
}
func (a counterAbstraction) VarOps(msg string) []VarOp {
	if msg == "tick" {
		return []VarOp{{Variable: "count", Delta: 1}}
	}
	return nil
}
func (a counterAbstraction) Symbol(component, value int) string {
	switch value {
	case 0:
		return "0"
	case a.model.max:
		return "max"
	case a.model.max - 1:
		return "max-1"
	case a.model.max - 2:
		return "max-2"
	}
	return ""
}

func buildCounterEFSM(t *testing.T, max int) *EFSM {
	t.Helper()
	model := counterModel{max: max}
	machine, err := Generate(context.Background(), model)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	efsm, err := GeneralizeEFSM(machine, counterAbstraction{model: model})
	if err != nil {
		t.Fatalf("GeneralizeEFSM: %v", err)
	}
	return efsm
}

func TestGeneralizeCounterEFSM(t *testing.T) {
	efsm := buildCounterEFSM(t, 5)
	if len(efsm.States) != 3 { // DISARMED, ARMED, FINISHED
		t.Fatalf("states = %v", efsm.StateNames())
	}
	if efsm.Start == nil || efsm.Start.Name != "DISARMED" {
		t.Errorf("start = %v", efsm.Start)
	}
	if efsm.Finish == nil || !efsm.Finish.Final {
		t.Error("missing finish state")
	}
	if len(efsm.Variables) != 1 || efsm.Variables[0] != "count" {
		t.Errorf("variables = %v", efsm.Variables)
	}
	if efsm.TransitionCount() == 0 {
		t.Error("no transitions")
	}
}

func TestEFSMStructureIndependentOfMax(t *testing.T) {
	structure := func(e *EFSM) string {
		var b strings.Builder
		for _, s := range e.States {
			b.WriteString(s.Name + ":")
			for _, tr := range s.Transitions {
				b.WriteString(" " + tr.Message + "[" + tr.Guard.String() + "]{" +
					strings.Join(tr.Actions, ",") + "}->" + tr.Target.Name)
			}
			b.WriteString("\n")
		}
		return b.String()
	}
	base := structure(buildCounterEFSM(t, 5))
	for _, max := range []int{7, 11} {
		if got := structure(buildCounterEFSM(t, max)); got != base {
			t.Errorf("max=%d: structure differs:\n%s\nvs base:\n%s", max, got, base)
		}
	}
}

func TestEFSMInstanceWalk(t *testing.T) {
	efsm := buildCounterEFSM(t, 3)
	inst, err := NewEFSMInstance(efsm)
	if err != nil {
		t.Fatal(err)
	}
	if inst.StateName() != "DISARMED" {
		t.Fatalf("start = %s", inst.StateName())
	}
	// tick before arming: ignored.
	if _, ok := inst.Deliver("tick"); ok {
		t.Error("tick applied while disarmed")
	}
	if _, ok := inst.Deliver("arm"); !ok {
		t.Fatal("arm not applied")
	}
	// Count to the beep.
	var last []string
	for i := 0; i < 3; i++ {
		actions, ok := inst.Deliver("tick")
		if !ok {
			t.Fatalf("tick %d not applied", i)
		}
		last = actions
	}
	if len(last) != 1 || last[0] != "->beep" {
		t.Errorf("beep actions = %v", last)
	}
	if inst.Var("count") != 3 {
		t.Errorf("count = %d", inst.Var("count"))
	}
	// Final tick finishes.
	if _, ok := inst.Deliver("tick"); !ok {
		t.Fatal("finishing tick not applied")
	}
	if !inst.Finished() {
		t.Error("not finished")
	}
	// Delivery after finish is ignored.
	if _, ok := inst.Deliver("tick"); ok {
		t.Error("delivery accepted after finish")
	}
}

func TestNewEFSMInstanceValidation(t *testing.T) {
	if _, err := NewEFSMInstance(nil); err == nil {
		t.Error("nil EFSM accepted")
	}
	if _, err := NewEFSMInstance(&EFSM{}); err == nil {
		t.Error("EFSM without start accepted")
	}
}

// badAbstraction maps every state to one label, making states with
// different behaviour collide: GeneralizeEFSM must reject it.
type badAbstraction struct{}

func (badAbstraction) StateLabel(Vector) string      { return "EVERYTHING" }
func (badAbstraction) GuardComponent(msg string) int { return -1 }
func (badAbstraction) VarOps(string) []VarOp         { return nil }
func (badAbstraction) Symbol(int, int) string        { return "" }

func TestGeneralizeRejectsUnsoundAbstraction(t *testing.T) {
	machine, err := Generate(context.Background(), counterModel{max: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GeneralizeEFSM(machine, badAbstraction{}); err == nil {
		t.Error("unsound abstraction accepted")
	}
}

func TestVarOpString(t *testing.T) {
	tests := []struct {
		op   VarOp
		want string
	}{
		{VarOp{Variable: "v", Delta: 1}, "v++"},
		{VarOp{Variable: "v", Delta: -1}, "v--"},
		{VarOp{Variable: "v", Delta: 3}, "v += 3"},
	}
	for _, tt := range tests {
		if got := tt.op.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestGuardHolds(t *testing.T) {
	g := Guard{Variable: "v", Min: 2, Max: 4}
	for val, want := range map[int]bool{1: false, 2: true, 3: true, 4: true, 5: false} {
		if got := g.Holds(map[string]int{"v": val}); got != want {
			t.Errorf("Holds(v=%d) = %v, want %v", val, got, want)
		}
	}
}

func TestEFSMStateNames(t *testing.T) {
	efsm := buildCounterEFSM(t, 4)
	names := efsm.StateNames()
	if len(names) != 3 || names[0] != "DISARMED" {
		t.Errorf("StateNames = %v", names)
	}
}
