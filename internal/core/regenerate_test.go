package core

import (
	"context"
	"fmt"
	"testing"
)

// gateModel exercises incremental regeneration: its state is
// (value, poison), and the "inc" rule only advances while value < gate.
// Raising the gate makes new states reachable; lowering it strands
// previously reachable ones. The gate is behavioural identity beyond the
// declared structure, so it is folded into the fingerprint extra.
//
// Messages:
//
//	inc   — value++ while value < gate
//	reset — value = 0 (emits an action)
//	fin   — finish when value == max (emits an action)
type gateModel struct {
	max, gate int
	// describeGen varies DescribeState output without touching any rule,
	// modelling a documentation-only edit.
	describeGen int
}

func (m *gateModel) Name() string   { return "gate" }
func (m *gateModel) Parameter() int { return m.max }
func (m *gateModel) Components() []StateComponent {
	return []StateComponent{
		NewIntComponent("value", m.max),
		NewBoolComponent("poison"),
	}
}
func (m *gateModel) Messages() []string { return []string{"inc", "reset", "fin"} }
func (m *gateModel) Start() Vector      { return Vector{0, 0} }

func (m *gateModel) Apply(v Vector, msg string) (Effect, bool) {
	switch msg {
	case "inc":
		if v[0] < m.gate {
			return Effect{Target: Vector{v[0] + 1, v[1]}}, true
		}
		return Effect{}, false
	case "reset":
		return Effect{Target: Vector{0, v[1]}, Actions: []string{"->zero"}}, true
	case "fin":
		if v[0] == m.max {
			return Effect{Finished: true, Actions: []string{"->done"}}, true
		}
		return Effect{}, false
	default:
		return Effect{}, false
	}
}

func (m *gateModel) DescribeState(v Vector) []string {
	return []string{fmt.Sprintf("value %d (gen %d)", v[0], m.describeGen)}
}

func (m *gateModel) FingerprintExtra() []string {
	return []string{fmt.Sprintf("gate:%d", m.gate), fmt.Sprintf("describe:%d", m.describeGen)}
}

// mustGenerate is a test helper wrapping Generate.
func mustGenerate(t *testing.T, m Model, opts ...Option) *StateMachine {
	t.Helper()
	machine, err := Generate(context.Background(), m, opts...)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return machine
}

// TestRegenerateGrowsFrontier raises the gate so regeneration must
// re-explore newly reachable states (and discover the finish state) and
// still match from-scratch generation bit for bit.
func TestRegenerateGrowsFrontier(t *testing.T) {
	old := mustGenerate(t, &gateModel{max: 6, gate: 2})
	if old.Finish != nil {
		t.Fatal("finish should be unreachable at gate 2")
	}

	edited := &gateModel{max: 6, gate: 6}
	got, err := Regenerate(context.Background(), old, edited, ModelDelta{Messages: []string{"inc"}})
	if err != nil {
		t.Fatalf("Regenerate: %v", err)
	}
	want := mustGenerate(t, edited)
	if got.Fingerprint() != want.Fingerprint() {
		t.Errorf("regenerated fingerprint %s != from-scratch %s", got.Fingerprint(), want.Fingerprint())
	}
	if got.Finish == nil {
		t.Error("regeneration should have discovered the finish state")
	}
	if got.Stats.ReachableStates != want.Stats.ReachableStates {
		t.Errorf("ReachableStates = %d, want %d", got.Stats.ReachableStates, want.Stats.ReachableStates)
	}
}

// TestRegenerateShrinksFrontier lowers the gate: states that the edit
// disconnects must not be materialised, matching fresh generation.
func TestRegenerateShrinksFrontier(t *testing.T) {
	old := mustGenerate(t, &gateModel{max: 6, gate: 6})
	edited := &gateModel{max: 6, gate: 3}
	got, err := Regenerate(context.Background(), old, edited, ModelDelta{Messages: []string{"inc"}})
	if err != nil {
		t.Fatalf("Regenerate: %v", err)
	}
	want := mustGenerate(t, edited)
	if got.Fingerprint() != want.Fingerprint() {
		t.Errorf("regenerated fingerprint %s != from-scratch %s", got.Fingerprint(), want.Fingerprint())
	}
	if got.Finish != nil {
		t.Error("finish must be unreachable after the gate was lowered")
	}
}

// TestRegenerateRebuildOnly checks the empty non-full delta: no Apply
// behaviour changed, only state documentation, so the machine is rebuilt
// from the retained exploration without re-expansion.
func TestRegenerateRebuildOnly(t *testing.T) {
	old := mustGenerate(t, &gateModel{max: 4, gate: 4})
	edited := &gateModel{max: 4, gate: 4, describeGen: 1}
	got, err := Regenerate(context.Background(), old, edited, ModelDelta{})
	if err != nil {
		t.Fatalf("Regenerate: %v", err)
	}
	want := mustGenerate(t, edited)
	if got.Fingerprint() != want.Fingerprint() {
		t.Errorf("regenerated fingerprint %s != from-scratch %s", got.Fingerprint(), want.Fingerprint())
	}
	if got.Fingerprint() == old.Fingerprint() {
		t.Error("documentation edit should have changed the machine fingerprint")
	}
}

// TestRegenerateChain applies a sequence of gate edits, regenerating each
// step from the previous step's machine.
func TestRegenerateChain(t *testing.T) {
	cur := mustGenerate(t, &gateModel{max: 8, gate: 1})
	for _, gate := range []int{3, 8, 2, 5, 8} {
		edited := &gateModel{max: 8, gate: gate}
		next, err := Regenerate(context.Background(), cur, edited, ModelDelta{Messages: []string{"inc"}})
		if err != nil {
			t.Fatalf("Regenerate gate=%d: %v", gate, err)
		}
		want := mustGenerate(t, edited)
		if next.Fingerprint() != want.Fingerprint() {
			t.Fatalf("gate=%d: regenerated fingerprint %s != from-scratch %s",
				gate, next.Fingerprint(), want.Fingerprint())
		}
		cur = next
	}
}

// TestRegenerateDoesNotMutateOld regenerates twice from one source machine
// and checks the source is untouched.
func TestRegenerateDoesNotMutateOld(t *testing.T) {
	old := mustGenerate(t, &gateModel{max: 6, gate: 3})
	before := old.Fingerprint()
	oldN := old.explored.arena.n
	for _, gate := range []int{6, 1} {
		if _, err := Regenerate(context.Background(), old, &gateModel{max: 6, gate: gate},
			ModelDelta{Messages: []string{"inc"}}); err != nil {
			t.Fatalf("Regenerate: %v", err)
		}
	}
	if old.Fingerprint() != before {
		t.Error("Regenerate mutated the source machine")
	}
	if old.explored.arena.n != oldN {
		t.Errorf("Regenerate grew the source exploration: %d -> %d", oldN, old.explored.arena.n)
	}
}

// TestRegenerateFallbacks drives every transparent-fallback path and
// checks each still produces the from-scratch machine.
func TestRegenerateFallbacks(t *testing.T) {
	edited := &gateModel{max: 5, gate: 5}
	want := mustGenerate(t, edited)

	t.Run("nil old", func(t *testing.T) {
		got, err := Regenerate(context.Background(), nil, edited, ModelDelta{Messages: []string{"inc"}})
		if err != nil {
			t.Fatalf("Regenerate: %v", err)
		}
		if got.Fingerprint() != want.Fingerprint() {
			t.Error("fallback machine differs from Generate")
		}
	})
	t.Run("no retained exploration", func(t *testing.T) {
		old := mustGenerate(t, &gateModel{max: 5, gate: 2}, WithoutPruning())
		if old.explored != nil {
			t.Fatal("legacy path should retain no exploration")
		}
		got, err := Regenerate(context.Background(), old, edited, ModelDelta{Messages: []string{"inc"}},
			WithoutPruning())
		if err != nil {
			t.Fatalf("Regenerate: %v", err)
		}
		legacy := mustGenerate(t, edited, WithoutPruning())
		if got.Fingerprint() != legacy.Fingerprint() {
			t.Error("fallback machine differs from Generate")
		}
	})
	t.Run("full delta", func(t *testing.T) {
		old := mustGenerate(t, &gateModel{max: 5, gate: 2})
		got, err := Regenerate(context.Background(), old, edited, ModelDelta{Full: true})
		if err != nil {
			t.Fatalf("Regenerate: %v", err)
		}
		if got.Fingerprint() != want.Fingerprint() {
			t.Error("fallback machine differs from Generate")
		}
	})
	t.Run("option mismatch", func(t *testing.T) {
		old := mustGenerate(t, &gateModel{max: 5, gate: 2})
		got, err := Regenerate(context.Background(), old, edited, ModelDelta{Messages: []string{"inc"}},
			WithoutMerging())
		if err != nil {
			t.Fatalf("Regenerate: %v", err)
		}
		unmerged := mustGenerate(t, edited, WithoutMerging())
		if got.Fingerprint() != unmerged.Fingerprint() {
			t.Error("fallback machine differs from Generate")
		}
	})
	t.Run("structure mismatch", func(t *testing.T) {
		old := mustGenerate(t, &gateModel{max: 7, gate: 2}) // different domain
		got, err := Regenerate(context.Background(), old, edited, ModelDelta{Messages: []string{"inc"}})
		if err != nil {
			t.Fatalf("Regenerate: %v", err)
		}
		if got.Fingerprint() != want.Fingerprint() {
			t.Error("fallback machine differs from Generate")
		}
	})
	t.Run("unknown delta message", func(t *testing.T) {
		old := mustGenerate(t, &gateModel{max: 5, gate: 2})
		got, err := Regenerate(context.Background(), old, edited, ModelDelta{Messages: []string{"nonsense"}})
		if err != nil {
			t.Fatalf("Regenerate: %v", err)
		}
		if got.Fingerprint() != want.Fingerprint() {
			t.Error("fallback machine differs from Generate")
		}
	})
}

// TestRegenerateWorkerOptionCompatible: worker count and size hints are
// scheduling detail, so an old machine generated serially is a valid
// regeneration source under WithWorkers and vice versa.
func TestRegenerateWorkerOptionCompatible(t *testing.T) {
	old := mustGenerate(t, &gateModel{max: 6, gate: 2}, WithWorkers(4))
	edited := &gateModel{max: 6, gate: 6}
	got, err := Regenerate(context.Background(), old, edited, ModelDelta{Messages: []string{"inc"}},
		WithSizeHint(64))
	if err != nil {
		t.Fatalf("Regenerate: %v", err)
	}
	want := mustGenerate(t, edited)
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("regenerated machine differs from Generate")
	}
}

// TestCacheLinkDeltaRegeneratesIncrementally exercises the cache-level
// wiring: a registered delta link makes the miss for the new fingerprint
// patch the cached old machine, observable through the Incremental stat.
func TestCacheLinkDeltaRegeneratesIncrementally(t *testing.T) {
	cache := NewGenerationCache()
	oldModel := &gateModel{max: 6, gate: 2}
	newModel := &gateModel{max: 6, gate: 6}

	oldMachine, err := cache.MachineFor(context.Background(), oldModel)
	if err != nil {
		t.Fatalf("MachineFor(old): %v", err)
	}
	oldFP := cache.Fingerprint(oldModel)
	newFP := cache.Fingerprint(newModel)
	if oldFP == newFP {
		t.Fatal("gate must be fingerprint-relevant for this test")
	}
	cache.LinkDelta(newFP, oldFP, ModelDelta{Messages: []string{"inc"}})

	newMachine, err := cache.MachineFor(context.Background(), newModel)
	if err != nil {
		t.Fatalf("MachineFor(new): %v", err)
	}
	want := mustGenerate(t, newModel)
	if newMachine.Fingerprint() != want.Fingerprint() {
		t.Error("incrementally regenerated machine differs from Generate")
	}
	stats := cache.Stats()
	if stats.Incremental != 1 {
		t.Errorf("Incremental = %d, want 1", stats.Incremental)
	}
	if stats.Generations != 2 {
		t.Errorf("Generations = %d, want 2", stats.Generations)
	}
	if oldMachine.Fingerprint() == newMachine.Fingerprint() {
		t.Error("old and new machines should differ")
	}

	// A link whose source entry is gone degrades to a full generation.
	cache.Purge()
	cache.LinkDelta(newFP, oldFP, ModelDelta{Messages: []string{"inc"}})
	again, err := cache.MachineFor(context.Background(), newModel)
	if err != nil {
		t.Fatalf("MachineFor after purge: %v", err)
	}
	if again.Fingerprint() != want.Fingerprint() {
		t.Error("post-purge machine differs from Generate")
	}
}
