package core

import (
	"fmt"
	"sync"
)

// This file implements the generation policies of §4.2: generation may be
// performed once during development (the fsmgen artefact path), every time
// the algorithm is needed, or whenever a new parameter value is
// encountered. For the last policy the paper suggests caching generated
// implementations so regeneration is amortised; Cache provides that,
// safely under concurrent use.

// ModelFactory constructs the abstract model for a parameter value, e.g.
// the commit model for a replication factor.
type ModelFactory func(parameter int) (Model, error)

// Cache generates machines on demand and memoises them per parameter
// value, so that dynamic changes to the parameter (a new replication
// factor, §4.2) pay the generation cost once.
type Cache struct {
	factory ModelFactory
	opts    []Option

	mu       sync.Mutex
	machines map[int]*cacheEntry
}

// cacheEntry memoises one generation, sharing the work among concurrent
// first requests for the same parameter.
type cacheEntry struct {
	once    sync.Once
	machine *StateMachine
	err     error
}

// NewCache returns a cache that builds models with the factory and
// generates them with the given options.
func NewCache(factory ModelFactory, opts ...Option) (*Cache, error) {
	if factory == nil {
		return nil, fmt.Errorf("core: cache: nil model factory")
	}
	return &Cache{
		factory:  factory,
		opts:     append([]Option(nil), opts...),
		machines: make(map[int]*cacheEntry),
	}, nil
}

// Machine returns the generated machine for the parameter, generating it
// on first use. Errors are memoised too: a parameter the factory rejects
// keeps being rejected without repeated work.
func (c *Cache) Machine(parameter int) (*StateMachine, error) {
	c.mu.Lock()
	entry, ok := c.machines[parameter]
	if !ok {
		entry = &cacheEntry{}
		c.machines[parameter] = entry
	}
	c.mu.Unlock()

	entry.once.Do(func() {
		model, err := c.factory(parameter)
		if err != nil {
			entry.err = err
			return
		}
		entry.machine, entry.err = Generate(model, c.opts...)
	})
	return entry.machine, entry.err
}

// Len returns the number of memoised parameters (including memoised
// failures).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.machines)
}

// Invalidate drops the memoised machine for a parameter, forcing
// regeneration on next use (e.g. after a model change).
func (c *Cache) Invalidate(parameter int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.machines, parameter)
}
