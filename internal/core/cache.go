package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
)

// This file implements the generation policies of §4.2: generation may be
// performed once during development (the fsmgen artefact path), every time
// the algorithm is needed, or whenever a new parameter value is
// encountered. For the last policy the paper suggests caching generated
// implementations so regeneration is amortised; Cache provides that,
// safely under concurrent use.
//
// The cache is keyed by model fingerprint (see fingerprint.go), not by the
// raw parameter value: any two models that would generate bit-identical
// machines — regardless of how they were constructed — share one entry,
// and a long-running generation service can bound and observe the cache
// through SetLimit, Purge and Stats.
//
// Lookups are context-aware. A generation runs under the context of the
// request that started it; concurrent requests for the same fingerprint
// wait on the in-flight generation but stop waiting as soon as their own
// context is cancelled. A generation aborted by cancellation is removed
// from the cache — the entry is never poisoned with a context error — so
// the next request regenerates from scratch.

// ModelFactory constructs the abstract model for a parameter value, e.g.
// the commit model for a replication factor.
type ModelFactory func(parameter int) (Model, error)

// CacheStats is a snapshot of the cache's counters.
type CacheStats struct {
	// Hits counts lookups answered from a memoised entry.
	Hits int64
	// Misses counts lookups that created a new entry.
	Misses int64
	// Evictions counts entries dropped by the size bound.
	Evictions int64
	// Generations counts machine generations that ran to completion. Under
	// concurrent first use of one fingerprint this stays at one: the
	// in-flight generation is shared (single-flight).
	Generations int64
	// Cancellations counts generations aborted by context cancellation.
	// Aborted generations never count as Generations and leave no entry.
	Cancellations int64
	// Incremental counts generations satisfied by patching a previously
	// cached machine's exploration (see LinkDelta) instead of exploring
	// from scratch. Incremental generations also count as Generations.
	Incremental int64
	// Entries is the current number of memoised machines.
	Entries int
}

// Cache generates machines on demand and memoises them per model
// fingerprint, so that dynamic changes to the parameter (a new replication
// factor, §4.2) pay the generation cost once. Concurrent first requests
// for the same fingerprint share a single in-flight generation.
type Cache struct {
	factory ModelFactory
	opts    []Option

	mu    sync.Mutex
	limit int
	// entries memoises generation per model fingerprint; order tracks
	// recency (front = least recently used) for the size bound.
	entries map[Fingerprint]*cacheEntry
	order   []Fingerprint
	// params memoises the factory per parameter value, so repeated
	// Machine calls neither rebuild the model nor re-run a failing
	// factory, and concurrent first calls invoke the factory once.
	params map[int]*paramEntry
	// hints records the reachable-state count of completed generations
	// per model family member (name:parameter), so the next generation of
	// the same member — e.g. after a spec edit — pre-sizes its interning
	// arena and never grows mid-exploration.
	hints map[string]int
	// links records registered regeneration edges: links[newFP] says the
	// machine for newFP can be derived from the cached machine for an old
	// fingerprint by incremental regeneration under a model delta.
	links map[Fingerprint]regenLink

	hits, misses, evictions, generations, cancellations, incremental int64
}

// regenLink is one registered incremental-regeneration edge.
type regenLink struct {
	oldFP Fingerprint
	delta ModelDelta
}

// cacheEntry memoises one generation, sharing the work among concurrent
// first requests for the same fingerprint. done is closed when machine and
// err are final; waiters select on it against their own context.
type cacheEntry struct {
	done    chan struct{}
	machine *StateMachine
	err     error
}

// paramEntry memoises one factory invocation and the resulting model
// fingerprint.
type paramEntry struct {
	once  sync.Once
	fp    Fingerprint
	model Model
	err   error
}

// NewCache returns a cache that builds models with the factory and
// generates them with the given options.
func NewCache(factory ModelFactory, opts ...Option) (*Cache, error) {
	if factory == nil {
		return nil, fmt.Errorf("core: cache: nil model factory")
	}
	c := NewGenerationCache(opts...)
	c.factory = factory
	return c, nil
}

// NewGenerationCache returns a cache without a parameter factory: machines
// are requested through MachineFor with caller-constructed models. The
// artefact pipeline uses this form, since it generates machines for many
// registered models rather than one parameterised family.
func NewGenerationCache(opts ...Option) *Cache {
	return &Cache{
		opts:    append([]Option(nil), opts...),
		entries: make(map[Fingerprint]*cacheEntry),
		params:  make(map[int]*paramEntry),
		hints:   make(map[string]int),
		links:   make(map[Fingerprint]regenLink),
	}
}

// Fingerprint returns the cache key for the model: its fingerprint under
// the cache's generation options.
func (c *Cache) Fingerprint(m Model) Fingerprint {
	return FingerprintModel(m, c.opts...)
}

// Machine returns the generated machine for the parameter, generating it
// on first use. Errors are memoised too: a parameter the factory rejects
// keeps being rejected without repeated work. Cancelling ctx aborts an
// in-flight generation (or stops waiting on one another request owns) and
// returns ctx.Err().
func (c *Cache) Machine(ctx context.Context, parameter int) (*StateMachine, error) {
	if c.factory == nil {
		return nil, fmt.Errorf("core: cache has no model factory; use MachineFor")
	}
	c.mu.Lock()
	pe, ok := c.params[parameter]
	if !ok {
		pe = &paramEntry{}
		c.params[parameter] = pe
	}
	c.mu.Unlock()

	pe.once.Do(func() {
		model, err := c.factory(parameter)
		var fp Fingerprint
		if err == nil {
			fp = c.Fingerprint(model)
		}
		// Stored under the cache mutex so Invalidate can read fp while a
		// first call is still in flight.
		c.mu.Lock()
		pe.model, pe.err, pe.fp = model, err, fp
		c.mu.Unlock()
	})
	if pe.err != nil {
		return nil, pe.err
	}
	return c.machineFor(ctx, pe.fp, pe.model)
}

// MachineFor returns the generated machine for an already-constructed
// model, memoised by the model's fingerprint. Two distinct model values
// with equal fingerprints share one generation and one machine.
func (c *Cache) MachineFor(ctx context.Context, m Model) (*StateMachine, error) {
	return c.machineFor(ctx, c.Fingerprint(m), m)
}

// MachineForFingerprint is MachineFor with the fingerprint precomputed by
// the caller (it must be c.Fingerprint(m)), so callers that also need the
// fingerprint — e.g. for cache headers — hash the model once per request.
func (c *Cache) MachineForFingerprint(ctx context.Context, fp Fingerprint, m Model) (*StateMachine, error) {
	return c.machineFor(ctx, fp, m)
}

func (c *Cache) machineFor(ctx context.Context, fp Fingerprint, m Model) (*StateMachine, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.mu.Lock()
	entry, ok := c.entries[fp]
	if ok {
		c.hits++
		c.touchLocked(fp)
		c.mu.Unlock()
		// Another request owns the generation; wait for it, but no longer
		// than this request's own context allows.
		select {
		case <-entry.done:
			return entry.machine, entry.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	c.misses++
	entry = &cacheEntry{done: make(chan struct{})}
	c.entries[fp] = entry
	c.order = append(c.order, fp)
	c.evictLocked()
	key := familyKey(m)
	hint := c.hints[key]
	link, hasLink := c.links[fp]
	var old *StateMachine
	if hasLink {
		old = c.completedMachineLocked(link.oldFP)
	}
	c.mu.Unlock()

	opts := c.opts
	if hint > 0 {
		opts = append(append(make([]Option, 0, len(c.opts)+1), c.opts...), WithSizeHint(hint))
	}
	var wasIncremental bool
	if old != nil {
		entry.machine, wasIncremental, entry.err = regenerate(ctx, old, m, link.delta, opts)
	} else {
		entry.machine, entry.err = Generate(ctx, m, opts...)
	}
	c.mu.Lock()
	if isCancellation(entry.err) {
		// An aborted generation must not poison the cache: drop the entry
		// (all current waiters still observe the error through done) so
		// the next request regenerates.
		c.cancellations++
		c.dropLocked(fp, entry)
	} else {
		c.generations++
		if wasIncremental {
			c.incremental++
		}
		if entry.err == nil {
			c.hints[key] = entry.machine.Stats.ReachableStates
		}
	}
	c.mu.Unlock()
	close(entry.done)
	return entry.machine, entry.err
}

// familyKey identifies one model family member for exploration size hints.
func familyKey(m Model) string {
	return m.Name() + ":" + strconv.Itoa(m.Parameter())
}

// completedMachineLocked returns the memoised machine for fp when its
// generation has already completed successfully, nil otherwise. It never
// blocks on an in-flight generation.
func (c *Cache) completedMachineLocked(fp Fingerprint) *StateMachine {
	entry, ok := c.entries[fp]
	if !ok {
		return nil
	}
	select {
	case <-entry.done:
		if entry.err != nil {
			return nil
		}
		return entry.machine
	default:
		return nil
	}
}

// LinkDelta records that the machine for newFP can be derived from the
// cached machine for oldFP by incremental regeneration under delta (see
// Regenerate). The next MachineFor miss on newFP patches the old
// machine's retained exploration instead of exploring from scratch —
// falling back to full generation transparently when the old entry is
// gone, still in flight, or incompatible. The artefact pipeline registers
// links when a registered model is replaced in place.
func (c *Cache) LinkDelta(newFP, oldFP Fingerprint, delta ModelDelta) {
	if newFP == oldFP {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.links[newFP] = regenLink{oldFP: oldFP, delta: delta}
}

// isCancellation reports whether err is a context cancellation or
// deadline error.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// dropLocked removes the entry for fp if it is still the one given (it may
// already have been evicted or replaced after a Purge).
func (c *Cache) dropLocked(fp Fingerprint, entry *cacheEntry) {
	if cur, ok := c.entries[fp]; ok && cur == entry {
		delete(c.entries, fp)
		for i, o := range c.order {
			if o == fp {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
	}
}

// touchLocked moves fp to the most-recently-used end of the recency list.
func (c *Cache) touchLocked(fp Fingerprint) {
	for i, o := range c.order {
		if o == fp {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = fp
			return
		}
	}
}

// evictLocked drops least-recently-used entries until the size bound is
// met. Goroutines still waiting on an evicted entry's generation complete
// normally; the entry is simply no longer findable.
func (c *Cache) evictLocked() {
	if c.limit <= 0 {
		return
	}
	for len(c.entries) > c.limit && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		if _, ok := c.entries[victim]; ok {
			delete(c.entries, victim)
			c.evictions++
		}
	}
}

// SetLimit bounds the number of memoised machines; least recently used
// entries are evicted beyond it. A limit of zero (the default) means
// unbounded. A long-running serve process should set a limit so an
// unbounded parameter stream cannot grow the cache without bound.
func (c *Cache) SetLimit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = n
	c.evictLocked()
}

// Purge drops every memoised machine and factory result, returning the
// number of machine entries removed.
func (c *Cache) Purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	c.entries = make(map[Fingerprint]*cacheEntry)
	c.order = nil
	c.params = make(map[int]*paramEntry)
	c.links = make(map[Fingerprint]regenLink)
	// Size hints survive a purge: they estimate exploration sizes, which a
	// purge does not change.
	return n
}

// Drop removes the memoised machine for one fingerprint, reporting whether
// an entry was present. Goroutines still waiting on a dropped entry's
// in-flight generation complete normally; the entry is simply no longer
// findable, so the next request regenerates. Used by the artefact pipeline
// to purge a dynamically unregistered model's generations.
func (c *Cache) Drop(fp Fingerprint) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[fp]; !ok {
		return false
	}
	delete(c.entries, fp)
	for i, o := range c.order {
		if o == fp {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	return true
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Generations:   c.generations,
		Cancellations: c.cancellations,
		Incremental:   c.incremental,
		Entries:       len(c.entries),
	}
}

// Len returns the number of memoised machines.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Invalidate drops the memoised machine for a parameter, forcing
// regeneration on next use (e.g. after a model change).
func (c *Cache) Invalidate(parameter int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	pe, ok := c.params[parameter]
	if !ok {
		return
	}
	delete(c.params, parameter)
	if pe.fp.IsZero() {
		return
	}
	if _, ok := c.entries[pe.fp]; ok {
		delete(c.entries, pe.fp)
		for i, o := range c.order {
			if o == pe.fp {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
	}
}
