package core

import "fmt"

const (
	// arenaChunkShift sizes the arena chunks: 1<<arenaChunkShift vectors per
	// chunk. Chunks never move once allocated, so readers holding a chunk
	// snapshot stay valid while the owner interns further states.
	arenaChunkShift = 8
	arenaChunkSize  = 1 << arenaChunkShift
)

// vecArena interns state vectors in struct-of-arrays form: each distinct
// vector occupies one width-sized row of a chunked flat []int backing store
// and is identified by a dense id assigned in first-intern order. Lookup
// goes through an open-addressed hash table over the packed component
// values, so steady-state interning allocates nothing — a hit costs a probe
// sequence and an equality check, a miss additionally one row copy into the
// current chunk.
//
// Ids fit an int32 because a state space large enough to overflow one would
// exhaust memory long before: 2³¹ rows of even a two-component vector are
// 32 GiB of backing store alone.
type vecArena struct {
	width  int
	n      int
	chunks [][]int
	// table holds id+1 per occupied slot (0 = empty); its length is a power
	// of two so the probe sequence can wrap with a mask.
	table []int32
	mask  uint64
}

// newVecArena returns an arena for vectors of the given width, pre-sized so
// that sizeHint states can be interned without growing the hash table.
func newVecArena(width, sizeHint int) *vecArena {
	size := 64
	// Keep the table at most half full at the hinted population.
	for size < sizeHint*2 && size < 1<<30 {
		size <<= 1
	}
	return &vecArena{
		width: width,
		table: make([]int32, size),
		mask:  uint64(size - 1),
	}
}

// vec returns the interned vector with the given id as a view into the
// arena. The view must not be mutated.
func (a *vecArena) vec(id int) Vector {
	chunk := a.chunks[id>>arenaChunkShift]
	off := (id & (arenaChunkSize - 1)) * a.width
	return Vector(chunk[off : off+a.width : off+a.width])
}

// hashVec is FNV-1a over the component values, word at a time.
func hashVec(v Vector) uint64 {
	h := uint64(14695981039346656037)
	for _, x := range v {
		h ^= uint64(x)
		h *= 1099511628211
	}
	return h
}

// intern returns the id of v, copying it into the arena when it has not
// been seen before. Callers may reuse v afterwards.
func (a *vecArena) intern(v Vector) int {
	for i := hashVec(v) & a.mask; ; i = (i + 1) & a.mask {
		e := a.table[i]
		if e == 0 {
			id := a.add(v)
			a.table[i] = int32(id) + 1
			if uint64(a.n)*2 > a.mask {
				a.grow()
			}
			return id
		}
		if a.vec(int(e - 1)).Equal(v) {
			return int(e - 1)
		}
	}
}

// lookup returns the id of v without interning, or -1 when absent.
func (a *vecArena) lookup(v Vector) int {
	for i := hashVec(v) & a.mask; ; i = (i + 1) & a.mask {
		e := a.table[i]
		if e == 0 {
			return -1
		}
		if a.vec(int(e - 1)).Equal(v) {
			return int(e - 1)
		}
	}
}

// add appends v as the next row, allocating a fresh chunk when the current
// one is full. Existing chunks are never reallocated or moved.
func (a *vecArena) add(v Vector) int {
	id := a.n
	ci := id >> arenaChunkShift
	if ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]int, 0, arenaChunkSize*a.width))
	}
	a.chunks[ci] = append(a.chunks[ci], v...)
	a.n++
	return id
}

// grow doubles the hash table and reinserts every id.
func (a *vecArena) grow() {
	size := len(a.table) * 2
	table := make([]int32, size)
	mask := uint64(size - 1)
	for id := 0; id < a.n; id++ {
		for i := hashVec(a.vec(id)) & mask; ; i = (i + 1) & mask {
			if table[i] == 0 {
				table[i] = int32(id) + 1
				break
			}
		}
	}
	a.table, a.mask = table, mask
}

// clone returns a deep copy whose chunks and table are independent of a, so
// incremental regeneration can patch the copy while the original remains
// attached to a cached machine.
func (a *vecArena) clone() *vecArena {
	b := &vecArena{width: a.width, n: a.n, mask: a.mask}
	b.table = append([]int32(nil), a.table...)
	b.chunks = make([][]int, len(a.chunks))
	for i, c := range a.chunks {
		nc := make([]int, len(c), cap(c))
		copy(nc, c)
		b.chunks[i] = nc
	}
	return b
}

// Sentinel targets for effect cells.
const (
	// cellNone marks a message that is not applicable in the state.
	cellNone int32 = -2
	// cellFinish marks a transition into the synthetic finish state.
	cellFinish int32 = -1
)

// effectCell is the stored result of one Apply call: the interned target id
// (or a sentinel) plus the effect's action and annotation lists, aliased
// from the model's Effect without copying.
type effectCell struct {
	target      int32
	actions     []string
	annotations []string
}

// exploration is the raw product of state-space exploration in
// struct-of-arrays form: the interned vectors plus one effect column per
// message, where cols[mi][id] is the effect of message mi on state id. It
// is retained (unexported) on generated machines so Regenerate can patch
// the affected columns instead of re-exploring from scratch.
type exploration struct {
	arena     *vecArena
	cols      [][]effectCell
	hasFinish bool
	// cfg records the generation configuration the exploration was produced
	// under, so Regenerate can refuse to reuse it under different options.
	cfg genConfig
}

func newExploration(width, nmsg int, cfg genConfig) *exploration {
	ex := &exploration{
		arena: newVecArena(width, cfg.sizeHint),
		cols:  make([][]effectCell, nmsg),
		cfg:   cfg,
	}
	capHint := cfg.sizeHint
	if capHint <= 0 {
		capHint = 64
	}
	for i := range ex.cols {
		ex.cols[i] = make([]effectCell, 0, capHint)
	}
	return ex
}

// clone deep-copies the arena and columns; the cells' action and annotation
// slices stay shared (they are immutable by the Model contract).
func (ex *exploration) clone() *exploration {
	out := &exploration{
		arena:     ex.arena.clone(),
		cols:      make([][]effectCell, len(ex.cols)),
		hasFinish: ex.hasFinish,
		cfg:       ex.cfg,
	}
	for i, col := range ex.cols {
		out.cols[i] = append(make([]effectCell, 0, len(col)+64), col...)
	}
	return out
}

// cellOf converts one Apply result into an effect cell, interning the
// target. The target must already be validated.
func (ex *exploration) cellOf(eff Effect, ok bool) effectCell {
	switch {
	case !ok:
		return effectCell{target: cellNone}
	case eff.Finished:
		ex.hasFinish = true
		return effectCell{target: cellFinish, actions: eff.Actions, annotations: eff.Annotations}
	default:
		return effectCell{
			target:      int32(ex.arena.intern(eff.Target)),
			actions:     eff.Actions,
			annotations: eff.Annotations,
		}
	}
}

// expandState computes and records the effect of every message on state id.
// It must be called with id == len(cols[*]), i.e. states are expanded in id
// order.
func (ex *exploration) expandState(m Model, components []StateComponent, messages []string, id int) error {
	v := ex.arena.vec(id)
	for mi, msg := range messages {
		eff, ok := m.Apply(v, msg)
		if ok && !eff.Finished {
			if err := eff.Target.validate(components); err != nil {
				return fmt.Errorf("core: %s on %s: %w", msg, v.Name(components), err)
			}
		}
		ex.cols[mi] = append(ex.cols[mi], ex.cellOf(eff, ok))
	}
	return nil
}
