package core

import (
	"testing"
	"testing/quick"
)

func TestBoolComponent(t *testing.T) {
	c := NewBoolComponent("vote_sent")
	if got := c.Name(); got != "vote_sent" {
		t.Errorf("Name() = %q, want %q", got, "vote_sent")
	}
	if got := c.Cardinality(); got != 2 {
		t.Errorf("Cardinality() = %d, want 2", got)
	}
	if got := c.ValueName(0); got != "F" {
		t.Errorf("ValueName(0) = %q, want F", got)
	}
	if got := c.ValueName(1); got != "T" {
		t.Errorf("ValueName(1) = %q, want T", got)
	}
}

func TestIntComponent(t *testing.T) {
	c := NewIntComponent("votes_received", 3)
	if got := c.Name(); got != "votes_received" {
		t.Errorf("Name() = %q, want %q", got, "votes_received")
	}
	if got := c.Cardinality(); got != 4 {
		t.Errorf("Cardinality() = %d, want 4", got)
	}
	if got := c.Max(); got != 3 {
		t.Errorf("Max() = %d, want 3", got)
	}
	for v, want := range []string{"0", "1", "2", "3"} {
		if got := c.ValueName(v); got != want {
			t.Errorf("ValueName(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestIntComponentNegativeMaxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewIntComponent with negative max did not panic")
		}
	}()
	NewIntComponent("bad", -1)
}

func TestVectorName(t *testing.T) {
	comps := []StateComponent{
		NewBoolComponent("u"),
		NewIntComponent("v", 3),
		NewBoolComponent("w"),
	}
	tests := []struct {
		v    Vector
		want string
	}{
		{Vector{0, 0, 0}, "F/0/F"},
		{Vector{1, 2, 0}, "T/2/F"},
		{Vector{1, 3, 1}, "T/3/T"},
	}
	for _, tt := range tests {
		if got := tt.v.Name(comps); got != tt.want {
			t.Errorf("Name(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestVectorCloneIndependent(t *testing.T) {
	v := Vector{1, 2, 3}
	w := v.Clone()
	w[0] = 9
	if v[0] != 1 {
		t.Error("Clone shares backing storage with original")
	}
	if !v.Equal(Vector{1, 2, 3}) {
		t.Error("original mutated")
	}
}

func TestVectorEqual(t *testing.T) {
	tests := []struct {
		a, b Vector
		want bool
	}{
		{Vector{1, 2}, Vector{1, 2}, true},
		{Vector{1, 2}, Vector{2, 1}, false},
		{Vector{1}, Vector{1, 0}, false},
		{nil, nil, true},
		{Vector{}, nil, true},
	}
	for _, tt := range tests {
		if got := tt.a.Equal(tt.b); got != tt.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

// TestVectorIndexRoundTrip is a property test: converting any index in the
// state space to a vector and back is the identity, and the vector is a
// valid assignment.
func TestVectorIndexRoundTrip(t *testing.T) {
	comps := []StateComponent{
		NewBoolComponent("a"),
		NewIntComponent("b", 6),
		NewBoolComponent("c"),
		NewIntComponent("d", 2),
	}
	size, err := stateSpaceSize(comps)
	if err != nil {
		t.Fatalf("stateSpaceSize: %v", err)
	}
	if size != 2*7*2*3 {
		t.Fatalf("stateSpaceSize = %d, want %d", size, 2*7*2*3)
	}
	prop := func(raw uint32) bool {
		idx := int(raw) % size
		v := vectorFromIndex(idx, comps)
		if err := v.validate(comps); err != nil {
			return false
		}
		got, err := v.index(comps)
		return err == nil && got == idx
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestVectorIndexBijective checks that distinct indices decode to distinct
// vectors over the whole space.
func TestVectorIndexBijective(t *testing.T) {
	comps := []StateComponent{
		NewIntComponent("a", 3),
		NewBoolComponent("b"),
		NewIntComponent("c", 4),
	}
	size, err := stateSpaceSize(comps)
	if err != nil {
		t.Fatalf("stateSpaceSize: %v", err)
	}
	seen := make(map[string]bool, size)
	for idx := 0; idx < size; idx++ {
		name := vectorFromIndex(idx, comps).Name(comps)
		if seen[name] {
			t.Fatalf("duplicate vector %q at index %d", name, idx)
		}
		seen[name] = true
	}
	if len(seen) != size {
		t.Errorf("decoded %d distinct vectors, want %d", len(seen), size)
	}
}

func TestVectorValidate(t *testing.T) {
	comps := []StateComponent{NewBoolComponent("a"), NewIntComponent("b", 2)}
	tests := []struct {
		name    string
		v       Vector
		wantErr bool
	}{
		{"ok", Vector{1, 2}, false},
		{"zero", Vector{0, 0}, false},
		{"arity", Vector{1}, true},
		{"range high", Vector{1, 3}, true},
		{"range negative", Vector{-1, 0}, true},
		{"bool out of range", Vector{2, 0}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.v.validate(comps)
			if (err != nil) != tt.wantErr {
				t.Errorf("validate(%v) error = %v, wantErr %v", tt.v, err, tt.wantErr)
			}
		})
	}
}
