package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrStateSpaceOverflow reports that the component cross product exceeds
// math.MaxInt, so it cannot be enumerated (or even counted) in an int. The
// reachability-first generation path tolerates this — it never materialises
// the cross product — while the legacy WithoutPruning path propagates it.
var ErrStateSpaceOverflow = errors.New("core: state space size overflows int")

// Vector is a concrete assignment of values to the state components of an
// abstract model: element i is the value of component i. Vectors are the
// working representation during generation; they are converted to named
// State objects in the resulting StateMachine.
type Vector []int

// Clone returns an independent copy of the vector.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Equal reports whether v and w assign identical values to every component.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// Compare orders vectors lexicographically by component value. For vectors
// over the same components this coincides with comparing row-major
// enumeration indices, but never overflows, so it is the canonical ordering
// for state spaces too large to index.
func (v Vector) Compare(w Vector) int {
	for i := range v {
		if i >= len(w) {
			return 1
		}
		switch {
		case v[i] < w[i]:
			return -1
		case v[i] > w[i]:
			return 1
		}
	}
	if len(v) < len(w) {
		return -1
	}
	return 0
}

// Name renders the vector as a state name in the paper's encoding: the
// component value names joined by "/", e.g. "T/2/F/0/F/F/F".
func (v Vector) Name(components []StateComponent) string {
	return string(v.appendName(nil, components))
}

// appendName appends the state-name rendering to buf, so bulk callers can
// reuse one buffer across states.
func (v Vector) appendName(buf []byte, components []StateComponent) []byte {
	for i, val := range v {
		if i > 0 {
			buf = append(buf, '/')
		}
		buf = append(buf, components[i].ValueName(val)...)
	}
	return buf
}

// appendKey appends a compact byte encoding of the vector to buf, for use as
// an interning key in the frontier explorer's visited store. Two vectors over
// the same components produce equal keys iff they are Equal.
func (v Vector) appendKey(buf []byte) []byte {
	for _, val := range v {
		buf = binary.AppendUvarint(buf, uint64(val))
	}
	return buf
}

// index converts the vector to its ordinal position in the row-major
// enumeration of the component cross product. It returns
// ErrStateSpaceOverflow when the enumeration index cannot be represented in
// an int.
func (v Vector) index(components []StateComponent) (int, error) {
	idx := 0
	for i, val := range v {
		card := components[i].Cardinality()
		if idx > (math.MaxInt-val)/card {
			return 0, fmt.Errorf("core: index of %v: %w", []int(v), ErrStateSpaceOverflow)
		}
		idx = idx*card + val
	}
	return idx, nil
}

// vectorFromIndex is the inverse of Vector.index.
func vectorFromIndex(idx int, components []StateComponent) Vector {
	v := make(Vector, len(components))
	for i := len(components) - 1; i >= 0; i-- {
		card := components[i].Cardinality()
		v[i] = idx % card
		idx /= card
	}
	return v
}

// stateSpaceSize returns the product of all component cardinalities, or
// ErrStateSpaceOverflow when the product exceeds math.MaxInt.
func stateSpaceSize(components []StateComponent) (int, error) {
	size := 1
	for _, c := range components {
		card := c.Cardinality()
		if card == 0 {
			return 0, nil
		}
		if size > math.MaxInt/card {
			return 0, fmt.Errorf("core: %d-component cross product: %w", len(components), ErrStateSpaceOverflow)
		}
		size *= card
	}
	return size, nil
}

// validate checks that the vector has the right arity and every value is in
// its component's domain.
func (v Vector) validate(components []StateComponent) error {
	if len(v) != len(components) {
		return fmt.Errorf("core: vector arity %d, want %d components", len(v), len(components))
	}
	for i, val := range v {
		if val < 0 || val >= components[i].Cardinality() {
			return fmt.Errorf("core: component %q value %d out of range [0,%d)",
				components[i].Name(), val, components[i].Cardinality())
		}
	}
	return nil
}
