package core

import (
	"fmt"
	"strings"
)

// Vector is a concrete assignment of values to the state components of an
// abstract model: element i is the value of component i. Vectors are the
// working representation during generation; they are converted to named
// State objects in the resulting StateMachine.
type Vector []int

// Clone returns an independent copy of the vector.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Equal reports whether v and w assign identical values to every component.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// Name renders the vector as a state name in the paper's encoding: the
// component value names joined by "/", e.g. "T/2/F/0/F/F/F".
func (v Vector) Name(components []StateComponent) string {
	parts := make([]string, len(v))
	for i, val := range v {
		parts[i] = components[i].ValueName(val)
	}
	return strings.Join(parts, "/")
}

// index converts the vector to its ordinal position in the row-major
// enumeration of the component cross product.
func (v Vector) index(components []StateComponent) int {
	idx := 0
	for i, val := range v {
		idx = idx*components[i].Cardinality() + val
	}
	return idx
}

// vectorFromIndex is the inverse of Vector.index.
func vectorFromIndex(idx int, components []StateComponent) Vector {
	v := make(Vector, len(components))
	for i := len(components) - 1; i >= 0; i-- {
		card := components[i].Cardinality()
		v[i] = idx % card
		idx /= card
	}
	return v
}

// stateSpaceSize returns the product of all component cardinalities.
func stateSpaceSize(components []StateComponent) int {
	size := 1
	for _, c := range components {
		size *= c.Cardinality()
	}
	return size
}

// validate checks that the vector has the right arity and every value is in
// its component's domain.
func (v Vector) validate(components []StateComponent) error {
	if len(v) != len(components) {
		return fmt.Errorf("core: vector arity %d, want %d components", len(v), len(components))
	}
	for i, val := range v {
		if val < 0 || val >= components[i].Cardinality() {
			return fmt.Errorf("core: component %q value %d out of range [0,%d)",
				components[i].Name(), val, components[i].Cardinality())
		}
	}
	return nil
}
