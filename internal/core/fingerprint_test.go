package core

import "context"

import "testing"

// fpModel returns a toyModel fingerprint under the given options.
func fpModel(t *testing.T, max int, opts ...Option) Fingerprint {
	t.Helper()
	return FingerprintModel(&toyModel{max: max}, opts...)
}

func TestFingerprintDeterministic(t *testing.T) {
	a := fpModel(t, 3)
	b := fpModel(t, 3)
	if a != b {
		t.Errorf("fingerprints differ across runs: %s vs %s", a, b)
	}
	if a.IsZero() {
		t.Error("fingerprint is zero")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := fpModel(t, 3)
	if other := fpModel(t, 4); other == base {
		t.Error("different parameter produced an equal fingerprint")
	}
	if other := fpModel(t, 3, WithoutMerging()); other == base {
		t.Error("WithoutMerging did not change the fingerprint")
	}
	if other := fpModel(t, 3, WithoutDescriptions()); other == base {
		t.Error("WithoutDescriptions did not change the fingerprint")
	}
	if other := fpModel(t, 3, WithoutPruning()); other == base {
		t.Error("WithoutPruning did not change the fingerprint")
	}
}

// TestFingerprintIgnoresWorkers: worker count must not fragment the cache,
// because parallel expansion is bit-identical to serial exploration.
func TestFingerprintIgnoresWorkers(t *testing.T) {
	if fpModel(t, 3) != fpModel(t, 3, WithWorkers(8)) {
		t.Error("WithWorkers changed the fingerprint")
	}
}

func TestMachineFingerprintMatchesContent(t *testing.T) {
	gen := func(opts ...Option) *StateMachine {
		m, err := Generate(context.Background(), &toyModel{max: 3}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := gen(), gen()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical generations fingerprint differently")
	}
	if gen().Fingerprint() == gen(WithoutDescriptions()).Fingerprint() {
		t.Error("machines with and without descriptions fingerprint equally")
	}
	if fpModel(t, 3).String() == "" || len(fpModel(t, 3).Short()) != 12 {
		t.Error("fingerprint renderings malformed")
	}
}
