package core

import (
	"sort"
	"strconv"
	"strings"
)

// mergeEquivalent combines sets of equivalent states (§3.4 step 4): states
// are equivalent when the outgoing transitions from each perform the same
// actions and lead to the same destination state. Because combining two
// states can make their predecessors newly equivalent, the relation is
// computed by partition refinement to a fixpoint (Moore-style DFA
// minimisation) unless singlePass is set, in which case exactly one
// combining round is performed.
func mergeEquivalent(machine *StateMachine, singlePass bool) {
	states := machine.States
	n := len(states)
	if n == 0 {
		return
	}

	pos := make(map[*State]int, n)
	for i, s := range states {
		pos[s] = i
	}

	// class[i] is the equivalence class of states[i]. Initially all states
	// are in one class except the finish state, which is observably
	// distinct (it terminates the machine).
	class := make([]int, n)
	for i, s := range states {
		if s.Final {
			class[i] = 1
		}
	}
	classes := 2
	if machine.Finish == nil {
		classes = 1
	}

	for {
		next, count := refine(machine, states, pos, class)
		if count == classes && !changed(class, next) {
			break
		}
		class, classes = next, count
		if singlePass {
			break
		}
	}

	collapse(machine, class)
}

// refine splits the current partition: two states stay together only if for
// every message they either both lack a transition, or both have one with
// identical actions leading into the same class.
func refine(machine *StateMachine, states []*State, pos map[*State]int, class []int) ([]int, int) {
	sigs := make(map[string]int, len(states))
	next := make([]int, len(states))
	var b strings.Builder
	for i, s := range states {
		b.Reset()
		b.WriteString(strconv.Itoa(class[i]))
		for _, msg := range machine.Messages {
			t, ok := s.Transitions[msg]
			if !ok {
				b.WriteString("|-")
				continue
			}
			b.WriteString("|")
			b.WriteString(strings.Join(t.Actions, ","))
			b.WriteString(">")
			b.WriteString(strconv.Itoa(class[pos[t.Target]]))
		}
		sig := b.String()
		id, ok := sigs[sig]
		if !ok {
			id = len(sigs)
			sigs[sig] = id
		}
		next[i] = id
	}
	return next, len(sigs)
}

func changed(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return true
		}
	}
	return false
}

// collapse rewrites the machine so each equivalence class is represented by
// a single state: the lexicographically smallest member (the start
// state wins its class outright so the entry point is stable). Transition
// targets are redirected to class representatives and merged-away names are
// recorded on the representative.
func collapse(machine *StateMachine, class []int) {
	states := machine.States
	pos := make(map[*State]int, len(states))
	for i, s := range states {
		pos[s] = i
	}

	rep := make(map[int]*State)
	members := make(map[int][]*State)
	for i, s := range states {
		c := class[i]
		members[c] = append(members[c], s)
		cur, ok := rep[c]
		switch {
		case !ok:
			rep[c] = s
		case s == machine.Start:
			rep[c] = s
		case cur == machine.Start:
			// keep current
		case !s.Final && s.Vector.Compare(cur.Vector) < 0:
			rep[c] = s
		}
	}

	kept := make([]*State, 0, len(rep))
	for _, s := range states {
		c := class[pos[s]]
		if rep[c] != s {
			continue
		}
		names := make([]string, 0, len(members[c]))
		for _, m := range members[c] {
			names = append(names, m.MergedNames...)
		}
		sort.Strings(names)
		s.MergedNames = names
		kept = append(kept, s)
	}

	for _, s := range kept {
		for _, t := range s.Transitions {
			t.Target = rep[class[pos[t.Target]]]
		}
	}

	machine.States = kept
	machine.Start = rep[class[pos[machine.Start]]]
	if machine.Finish != nil {
		machine.Finish = rep[class[pos[machine.Finish]]]
	}
}
