package core

import (
	"encoding/binary"
	"sort"
)

// mergeEquivalent combines sets of equivalent states (§3.4 step 4): states
// are equivalent when the outgoing transitions from each perform the same
// actions and lead to the same destination state. Because combining two
// states can make their predecessors newly equivalent, the relation is
// computed by partition refinement to a fixpoint (Moore-style DFA
// minimisation) unless singlePass is set, in which case exactly one
// combining round is performed.
//
// The refinement works on a flattened integer view of the machine —
// transition targets as state indices and action lists interned to small
// ids — so each round builds compact byte signatures in a reused buffer
// instead of per-state strings; only distinct signatures (bounded by the
// final class count) are ever copied into the lookup map.
func mergeEquivalent(machine *StateMachine, singlePass bool) {
	states := machine.States
	n := len(states)
	if n == 0 {
		return
	}

	msgs := machine.Messages
	nm := len(msgs)

	pos := make(map[*State]int, n)
	for i, s := range states {
		pos[s] = i
	}

	// Flatten the transition structure once: targetOf[i*nm+j] is the state
	// index message j leads to from state i (-1 when not applicable), and
	// actIDOf[i*nm+j] the interned id of the transition's action list.
	targetOf := make([]int32, n*nm)
	actIDOf := make([]int32, n*nm)
	actIDs := make(map[string]int32, 8)
	var buf []byte
	for i, s := range states {
		base := i * nm
		for j, msg := range msgs {
			t, ok := s.Transitions[msg]
			if !ok {
				targetOf[base+j] = -1
				actIDOf[base+j] = -1
				continue
			}
			targetOf[base+j] = int32(pos[t.Target])
			buf = buf[:0]
			for _, a := range t.Actions {
				buf = binary.AppendUvarint(buf, uint64(len(a)))
				buf = append(buf, a...)
			}
			id, seen := actIDs[string(buf)]
			if !seen {
				id = int32(len(actIDs))
				actIDs[string(buf)] = id
			}
			actIDOf[base+j] = id
		}
	}

	// class[i] is the equivalence class of states[i]. Initially all states
	// are in one class except the finish state, which is observably
	// distinct (it terminates the machine).
	class := make([]int32, n)
	classes := 1
	if machine.Finish != nil {
		for i, s := range states {
			if s.Final {
				class[i] = 1
			}
		}
		classes = 2
	}

	next := make([]int32, n)
	sigs := newSigSet(n)
	for {
		// Refine: two states stay together only if for every message they
		// either both lack a transition, or both have one with identical
		// actions leading into the same class.
		sigs.reset()
		stable := true
		for i := 0; i < n; i++ {
			buf = binary.AppendUvarint(buf[:0], uint64(class[i]))
			base := i * nm
			for j := 0; j < nm; j++ {
				tgt := targetOf[base+j]
				if tgt < 0 {
					buf = append(buf, 0)
					continue
				}
				buf = binary.AppendUvarint(buf, uint64(actIDOf[base+j])+1)
				buf = binary.AppendUvarint(buf, uint64(class[tgt])+1)
			}
			id := sigs.intern(buf)
			next[i] = id
			if id != class[i] {
				stable = false
			}
		}
		if sigs.len() == classes && stable {
			break
		}
		class, next = next, class
		classes = sigs.len()
		if singlePass {
			break
		}
	}

	collapse(machine, class, classes, pos)
}

// sigSet interns byte-slice signatures to dense int32 ids without copying
// each key into a map: keys are appended to one flat buffer, looked up via
// an open-addressed table, and everything is reused across refinement
// rounds, so steady-state interning allocates nothing.
type sigSet struct {
	data  []byte
	offs  []int32 // offs[i]..offs[i+1] is key i's slice of data
	table []int32 // id+1 per occupied slot; 0 = empty
	mask  uint64
}

func newSigSet(n int) *sigSet {
	size := 64
	for size < n*2 {
		size <<= 1
	}
	return &sigSet{
		offs:  make([]int32, 1, n+1),
		table: make([]int32, size),
		mask:  uint64(size - 1),
	}
}

func (s *sigSet) len() int { return len(s.offs) - 1 }

func (s *sigSet) reset() {
	s.data = s.data[:0]
	s.offs = s.offs[:1]
	clear(s.table)
}

func (s *sigSet) key(id int32) []byte {
	return s.data[s.offs[id]:s.offs[id+1]]
}

func (s *sigSet) intern(key []byte) int32 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for i := h & s.mask; ; i = (i + 1) & s.mask {
		e := s.table[i]
		if e == 0 {
			id := int32(s.len())
			s.data = append(s.data, key...)
			s.offs = append(s.offs, int32(len(s.data)))
			s.table[i] = id + 1
			if uint64(s.len())*2 > s.mask {
				s.grow()
			}
			return id
		}
		if string(s.key(e-1)) == string(key) {
			return e - 1
		}
	}
}

func (s *sigSet) grow() {
	size := len(s.table) * 2
	table := make([]int32, size)
	mask := uint64(size - 1)
	for id := int32(0); id < int32(s.len()); id++ {
		k := s.key(id)
		h := uint64(14695981039346656037)
		for _, b := range k {
			h ^= uint64(b)
			h *= 1099511628211
		}
		for i := h & mask; ; i = (i + 1) & mask {
			if table[i] == 0 {
				table[i] = id + 1
				break
			}
		}
	}
	s.table, s.mask = table, mask
}

// collapse rewrites the machine so each equivalence class is represented by
// a single state: the lexicographically smallest member (the start
// state wins its class outright so the entry point is stable). Transition
// targets are redirected to class representatives and merged-away names are
// recorded on the representative.
func collapse(machine *StateMachine, class []int32, classes int, pos map[*State]int) {
	states := machine.States
	if classes == len(states) {
		// Identity partition: every state is its own representative and no
		// transition needs redirecting.
		return
	}

	rep := make([]int32, classes)
	size := make([]int32, classes)
	for i := range rep {
		rep[i] = -1
	}
	for i, s := range states {
		c := class[i]
		size[c]++
		switch r := rep[c]; {
		case r < 0:
			rep[c] = int32(i)
		case s == machine.Start:
			rep[c] = int32(i)
		case states[r] == machine.Start:
			// keep current
		case !s.Final && s.Vector.Compare(states[r].Vector) < 0:
			rep[c] = int32(i)
		}
	}

	// Gather merged-away names per class; singleton classes keep their
	// existing single-entry MergedNames untouched.
	var classNames [][]string
	for i, s := range states {
		c := class[i]
		if size[c] == 1 {
			continue
		}
		if classNames == nil {
			classNames = make([][]string, classes)
		}
		classNames[c] = append(classNames[c], s.MergedNames...)
	}

	kept := make([]*State, 0, classes)
	for i, s := range states {
		c := class[i]
		if rep[c] != int32(i) {
			continue
		}
		if size[c] > 1 {
			names := classNames[c]
			sort.Strings(names)
			s.MergedNames = names
		}
		kept = append(kept, s)
	}

	for _, s := range kept {
		for _, t := range s.Transitions {
			t.Target = states[rep[class[pos[t.Target]]]]
		}
	}

	machine.States = kept
	machine.Start = states[rep[class[pos[machine.Start]]]]
	if machine.Finish != nil {
		machine.Finish = states[rep[class[pos[machine.Finish]]]]
	}
}
