package core

import (
	"context"
	"fmt"
	"math"
)

// ModelDelta describes how an edited model's transition function may differ
// from the model that produced an existing machine. It is the contract
// between spec-level diffing (spec.Diff) and core-level incremental
// regeneration (Regenerate): the delta must be conservative — every message
// whose Apply results could differ in any state must be listed, or Full set
// when the change cannot be scoped to messages.
type ModelDelta struct {
	// Full forces from-scratch generation: the edit changed the declared
	// structure (components, domains, message set, start state) or could
	// not be classified.
	Full bool
	// Messages lists the messages whose Apply behaviour may have changed.
	// Empty with Full unset means the transition structure is untouched
	// (e.g. only state descriptions changed) and the machine is rebuilt
	// from the existing exploration without any re-expansion.
	Messages []string
}

// IsFull reports whether the delta demands from-scratch generation.
func (d ModelDelta) IsFull() bool { return d.Full }

// Regenerate produces the machine for model m by patching the retained
// exploration of old — a machine previously generated from a model of the
// same family — instead of exploring from scratch. Only the effect columns
// of delta-affected messages are recomputed; states newly reachable through
// changed transitions are explored to closure, reachability is re-derived
// by a pure graph walk, and the machine is rebuilt and merged from the
// patched store. The result is identical to Generate(ctx, m, opts...) —
// byte-identical fingerprints — because machine content is independent of
// discovery order: state names, transitions, merging and the final sort
// depend only on the reachable set.
//
// Regenerate falls back to Generate transparently when old carries no
// exploration (legacy path, or a machine from an older process), when the
// delta is Full, when the options differ from those old was generated
// under, or when the declared structure changed. The old machine is never
// mutated: the exploration is cloned before patching, so old remains valid
// as a regeneration source for further edits.
func Regenerate(ctx context.Context, old *StateMachine, m Model, delta ModelDelta, opts ...Option) (*StateMachine, error) {
	machine, _, err := regenerate(ctx, old, m, delta, opts)
	return machine, err
}

// regenerate additionally reports whether the incremental path was taken,
// for cache statistics.
func regenerate(ctx context.Context, old *StateMachine, m Model, delta ModelDelta, opts []Option) (*StateMachine, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := newGenConfig(opts)
	if old == nil || old.explored == nil || delta.Full || !cfg.behaviourEqual(old.explored.cfg) {
		machine, err := Generate(ctx, m, opts...)
		return machine, false, err
	}

	components := m.Components()
	if len(components) == 0 {
		return nil, false, ErrNoComponents
	}
	messages := m.Messages()
	if len(messages) == 0 {
		return nil, false, ErrNoMessages
	}
	if err := checkUnique(messages); err != nil {
		return nil, false, err
	}
	start := m.Start()
	if err := start.validate(components); err != nil {
		return nil, false, fmt.Errorf("core: start state: %w", err)
	}

	// The retained exploration is only reusable when the state encoding and
	// message set are unchanged and the start state is the same interned
	// row. Anything else is a structural edit: fall back.
	if !structureMatches(old, components, messages, start) {
		machine, err := Generate(ctx, m, opts...)
		return machine, false, err
	}

	affected := make([]int, 0, len(delta.Messages))
	msgIdx := make(map[string]int, len(messages))
	for i, msg := range messages {
		msgIdx[msg] = i
	}
	for _, msg := range delta.Messages {
		mi, ok := msgIdx[msg]
		if !ok {
			// The delta names a message the model does not declare; the
			// delta cannot be trusted to be conservative.
			machine, err := Generate(ctx, m, opts...)
			return machine, false, err
		}
		affected = append(affected, mi)
	}

	ex := old.explored.clone()
	ex.cfg = cfg
	oldN := ex.arena.n

	// Patch the affected columns over every previously interned state.
	// Targets outside the interned set are appended to the arena; they form
	// the frontier of the edit.
	for _, mi := range affected {
		msg := messages[mi]
		col := ex.cols[mi]
		for id := 0; id < oldN; id++ {
			if id&255 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, false, err
				}
			}
			v := ex.arena.vec(id)
			eff, ok := m.Apply(v, msg)
			if ok && !eff.Finished {
				if err := eff.Target.validate(components); err != nil {
					return nil, false, fmt.Errorf("core: %s on %s: %w", msg, v.Name(components), err)
				}
			}
			col[id] = ex.cellOf(eff, ok)
		}
	}

	// Explore the edit frontier to closure: states the patch discovered get
	// full rows, exactly as fresh exploration would give them.
	for cursor := oldN; cursor < ex.arena.n; cursor++ {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		if err := ex.expandState(m, components, messages, cursor); err != nil {
			return nil, false, err
		}
	}

	// Reachability is a pure graph walk over the patched columns — no Apply
	// calls. The patched store may hold states that the edit disconnected
	// (or that were only ever reachable under a previous rule set); they
	// stay interned for future regenerations but are not materialised.
	startID := ex.arena.lookup(start)
	if startID != 0 {
		// Start is always row 0 of a fresh exploration; structureMatches
		// guarantees this, so reaching here is a programming error — but
		// degrade to a full generation rather than building a wrong machine.
		machine, err := Generate(ctx, m, opts...)
		return machine, false, err
	}
	reach, finishReachable := reachableFrom(ex, int32(startID))

	machine := buildMachine(m, cfg, ex, reach, finishReachable, startID)
	machine.Stats.ReachableStates = len(machine.States)
	crossSize, err := stateSpaceSize(components)
	if err != nil {
		crossSize = math.MaxInt
		machine.Stats.InitialOverflow = true
	}
	machine.Stats.InitialStates = crossSize

	if cfg.merge {
		mergeEquivalent(machine, cfg.singlePassMerge)
	}
	machine.Stats.FinalStates = len(machine.States)
	machine.sortStates()
	machine.explored = ex
	return machine, true, nil
}

// structureMatches reports whether the new model's declared structure is
// compatible with the old machine's exploration: same component domains,
// same message list, and the same start vector (which fresh exploration
// interned as row 0).
func structureMatches(old *StateMachine, components []StateComponent, messages []string, start Vector) bool {
	if len(components) != len(old.Components) {
		return false
	}
	for i, c := range components {
		if c.Cardinality() != old.Components[i].Cardinality() {
			return false
		}
	}
	if len(messages) != len(old.Messages) {
		return false
	}
	for i, msg := range messages {
		if msg != old.Messages[i] {
			return false
		}
	}
	return len(start) == old.explored.arena.width && start.Equal(old.explored.arena.vec(0))
}

// reachableFrom walks the effect columns from the start id and returns the
// reachable ids in ascending order, plus whether the finish state is
// reachable.
func reachableFrom(ex *exploration, start int32) ([]int32, bool) {
	n := ex.arena.n
	seen := make([]bool, n)
	seen[start] = true
	queue := make([]int32, 0, n)
	queue = append(queue, start)
	finish := false
	for qi := 0; qi < len(queue); qi++ {
		id := queue[qi]
		for mi := range ex.cols {
			tgt := ex.cols[mi][id].target
			switch {
			case tgt == cellNone:
			case tgt == cellFinish:
				finish = true
			case !seen[tgt]:
				seen[tgt] = true
				queue = append(queue, tgt)
			}
		}
	}
	reach := make([]int32, 0, len(queue))
	for id := 0; id < n; id++ {
		if seen[id] {
			reach = append(reach, int32(id))
		}
	}
	return reach, finish
}
