// Package core implements the generic abstract-model framework of the
// generative state-machine methodology: an abstract model describes the
// components of a parameterised state space and the transition logic of an
// algorithm; executing the model generates a concrete finite state machine
// (one member of a family), which is then pruned of unreachable states and
// simplified by merging behaviourally equivalent states.
//
// The pipeline mirrors §3.4 of the paper:
//
//  1. enumerate all possible states from the state components
//  2. generate the transitions resulting from every message in every state
//  3. prune states unreachable from the start state
//  4. combine equivalent states
//
// Problem-specific abstract models (e.g. the BFT commit protocol in package
// commit) implement the Model interface and are initialised with a slice of
// StateComponent values, exactly as the paper's generic AbstractModel is
// configured in its Fig. 20.
package core

import (
	"fmt"
	"strconv"
)

// StateComponent describes one dimension of the abstract state space. A
// state is an assignment of one legal value to every component; the raw
// state space is the cross product of all component domains.
type StateComponent interface {
	// Name returns the component's identifier, e.g. "votes_received".
	Name() string
	// Cardinality returns the number of legal values. Values are the
	// integers [0, Cardinality()).
	Cardinality() int
	// ValueName renders value v for use in state names, e.g. "T" or "3".
	ValueName(v int) string
}

// BoolComponent is a boolean state component with values 0 (false, rendered
// "F") and 1 (true, rendered "T").
type BoolComponent struct {
	name string
}

var _ StateComponent = BoolComponent{}

// NewBoolComponent returns a boolean component with the given name.
func NewBoolComponent(name string) BoolComponent {
	return BoolComponent{name: name}
}

// Name implements StateComponent.
func (c BoolComponent) Name() string { return c.name }

// Cardinality implements StateComponent; booleans have two values.
func (c BoolComponent) Cardinality() int { return 2 }

// ValueName implements StateComponent.
func (c BoolComponent) ValueName(v int) string {
	if v != 0 {
		return "T"
	}
	return "F"
}

// IntComponent is an integer state component ranging over [0, Max].
type IntComponent struct {
	name string
	max  int
}

var _ StateComponent = IntComponent{}

// NewIntComponent returns an integer component with values 0..max
// inclusive. It panics if max is negative, which indicates a programming
// error in the abstract model (component domains are fixed at model
// construction, before any generation runs).
func NewIntComponent(name string, max int) IntComponent {
	if max < 0 {
		panic(fmt.Sprintf("core: IntComponent %q: negative max %d", name, max))
	}
	return IntComponent{name: name, max: max}
}

// Name implements StateComponent.
func (c IntComponent) Name() string { return c.name }

// Max returns the largest legal value.
func (c IntComponent) Max() int { return c.max }

// Cardinality implements StateComponent.
func (c IntComponent) Cardinality() int { return c.max + 1 }

// ValueName implements StateComponent.
func (c IntComponent) ValueName(v int) string { return strconv.Itoa(v) }
