package core

import (
	"context"
	"runtime"
	"sync"
	"testing"
)

// forceParallel raises GOMAXPROCS above 1 for the duration of a test, so
// the WithWorkers tests exercise the work-stealing path even on a
// single-CPU host, where explore's GOMAXPROCS cap would otherwise route
// them through the serial explorer.
func forceParallel(t *testing.T) {
	t.Helper()
	if prev := runtime.GOMAXPROCS(0); prev < 2 {
		runtime.GOMAXPROCS(8)
		t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
	}
}

// cubeModel is a wide model whose BFS frontier grows fast enough to cross
// parallelThreshold: state is an n-dimensional counter vector, each
// dimension independently incrementable up to max, finishing when all
// dimensions are saturated.
type cubeModel struct {
	dims, max int
}

func (m *cubeModel) Name() string   { return "cube" }
func (m *cubeModel) Parameter() int { return m.max }
func (m *cubeModel) Components() []StateComponent {
	out := make([]StateComponent, m.dims)
	for i := range out {
		out[i] = NewIntComponent(string(rune('a'+i)), m.max)
	}
	return out
}
func (m *cubeModel) Messages() []string {
	out := make([]string, m.dims+1)
	for i := 0; i < m.dims; i++ {
		out[i] = "inc-" + string(rune('a'+i))
	}
	out[m.dims] = "fin"
	return out
}
func (m *cubeModel) Start() Vector { return make(Vector, m.dims) }

func (m *cubeModel) Apply(v Vector, msg string) (Effect, bool) {
	if msg == "fin" {
		for _, x := range v {
			if x != m.max {
				return Effect{}, false
			}
		}
		return Effect{Finished: true, Actions: []string{"->done"}}, true
	}
	i := int(msg[len(msg)-1] - 'a')
	if v[i] == m.max {
		return Effect{}, false
	}
	t := v.Clone()
	t[i]++
	return Effect{Target: t}, true
}

func (m *cubeModel) DescribeState(v Vector) []string { return nil }

// TestCubeFrontierCrossesParallelThreshold proves the cube model actually
// drives the explorer through the parallel branch: replaying the serial
// BFS, the pending-state gap (interned minus expanded) must exceed
// parallelThreshold at some point, or the WithWorkers tests below would
// silently test the serial path only.
func TestCubeFrontierCrossesParallelThreshold(t *testing.T) {
	m := &cubeModel{dims: 6, max: 4}
	ex, err := explore(context.Background(), m, m.Components(), m.Messages(), m.Start(),
		genConfig{prune: true, merge: true, describe: true})
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	// Replay discovery order against a fresh arena to track the gap.
	maxGap := 0
	replay := newVecArena(ex.arena.width, 0)
	replay.intern(m.Start())
	for cursor := 0; cursor < replay.n; cursor++ {
		if gap := replay.n - cursor; gap > maxGap {
			maxGap = gap
		}
		v := replay.vec(cursor)
		for _, msg := range m.Messages() {
			if eff, ok := m.Apply(v, msg); ok && !eff.Finished {
				replay.intern(eff.Target)
			}
		}
	}
	if maxGap < parallelThreshold {
		t.Fatalf("max pending gap %d never crossed parallelThreshold %d; widen the model",
			maxGap, parallelThreshold)
	}
}

// TestWorkersBitIdenticalToSerial checks the core determinism claim: the
// work-stealing explorer produces a machine bit-identical to the serial
// explorer, across worker counts.
func TestWorkersBitIdenticalToSerial(t *testing.T) {
	forceParallel(t)
	m := &cubeModel{dims: 6, max: 4}
	serial := mustGenerate(t, m)
	for _, workers := range []int{2, 3, 4, 8} {
		parallel := mustGenerate(t, m, WithWorkers(workers))
		if parallel.Fingerprint() != serial.Fingerprint() {
			t.Errorf("workers=%d: fingerprint %s != serial %s",
				workers, parallel.Fingerprint(), serial.Fingerprint())
		}
		if parallel.Stats != serial.Stats {
			t.Errorf("workers=%d: stats %+v != serial %+v", workers, parallel.Stats, serial.Stats)
		}
	}
}

// TestWorkersPropagateModelErrors: a model returning an out-of-domain
// target must fail identically under parallel expansion.
func TestWorkersPropagateModelErrors(t *testing.T) {
	forceParallel(t)
	m := &invalidTargetCube{cubeModel{dims: 6, max: 4}}
	_, serialErr := Generate(context.Background(), m)
	if serialErr == nil {
		t.Fatal("serial generation should reject the invalid target")
	}
	_, parallelErr := Generate(context.Background(), m, WithWorkers(4))
	if parallelErr == nil {
		t.Fatal("parallel generation should reject the invalid target")
	}
}

// invalidTargetCube corrupts one deep state's target so the failure only
// appears after the frontier has gone parallel.
type invalidTargetCube struct{ cubeModel }

func (m *invalidTargetCube) Apply(v Vector, msg string) (Effect, bool) {
	eff, ok := m.cubeModel.Apply(v, msg)
	if ok && !eff.Finished && v[0] == m.max/2 && v[1] == m.max/2 {
		eff.Target = append(Vector(nil), eff.Target...)
		eff.Target[0] = -1
	}
	return eff, ok
}

// TestWorkersCancellation: cancelling mid-exploration aborts promptly with
// the context error under the parallel path.
func TestWorkersCancellation(t *testing.T) {
	forceParallel(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Generate(ctx, &cubeModel{dims: 6, max: 4}, WithWorkers(4))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestStealDequeExactlyOnce hammers one deque with an owner popping and
// several thieves stealing concurrently; every segment must be claimed
// exactly once.
func TestStealDequeExactlyOnce(t *testing.T) {
	const (
		segments = 4096
		thieves  = 4
	)
	d := newStealDeque(0, segments)
	var mu sync.Mutex
	claimed := make(map[int]int, segments)
	claim := func(seg int) {
		mu.Lock()
		claimed[seg]++
		mu.Unlock()
	}

	var wg sync.WaitGroup
	wg.Add(1 + thieves)
	go func() {
		defer wg.Done()
		for {
			seg, ok := d.pop()
			if !ok {
				if d.empty() {
					return
				}
				continue
			}
			claim(seg)
		}
	}()
	for i := 0; i < thieves; i++ {
		go func() {
			defer wg.Done()
			for {
				seg, ok := d.steal()
				if !ok {
					if d.empty() {
						return
					}
					continue
				}
				claim(seg)
			}
		}()
	}
	wg.Wait()

	if len(claimed) != segments {
		t.Fatalf("claimed %d distinct segments, want %d", len(claimed), segments)
	}
	for seg, n := range claimed {
		if n != 1 {
			t.Fatalf("segment %d claimed %d times", seg, n)
		}
	}
}
