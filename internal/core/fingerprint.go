package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"sync"
)

// This file implements deterministic fingerprints for abstract models and
// generated machines. A fingerprint identifies everything that determines
// the generated output: the model's identity (name, parameter, components,
// messages, start vector) and the generation options that change the
// resulting machine. It is the key of the generation cache and the basis
// for content-addressed artefact storage and HTTP cache validators: two
// requests with equal fingerprints are guaranteed bit-identical artefacts,
// so regeneration can be skipped (§4.2's cached generation policy).

// Fingerprint is a 256-bit content hash identifying one generated machine
// family member together with the generation options used to produce it.
type Fingerprint [sha256.Size]byte

// String returns the full lowercase hex rendering.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Short returns a 12-hex-digit prefix, convenient for filenames and logs.
func (f Fingerprint) Short() string { return hex.EncodeToString(f[:6]) }

// IsZero reports whether the fingerprint is unset.
func (f Fingerprint) IsZero() bool { return f == Fingerprint{} }

// fpWriter accumulates length-prefixed fields into a hash, so that field
// boundaries are unambiguous ("ab"+"c" never collides with "a"+"bc").
type fpWriter struct {
	h   hash.Hash
	buf []byte
}

func (w *fpWriter) writeInt(v int) {
	w.buf = binary.AppendVarint(w.buf[:0], int64(v))
	w.h.Write(w.buf)
}

func (w *fpWriter) writeString(s string) {
	w.writeInt(len(s))
	w.buf = append(w.buf[:0], s...)
	w.h.Write(w.buf)
}

func (w *fpWriter) writeStrings(ss []string) {
	w.writeInt(len(ss))
	for _, s := range ss {
		w.writeString(s)
	}
}

// fpPool recycles fingerprint writers: fingerprinting runs on every
// cache lookup (the serve hot path), so the hasher, writer and scratch
// buffer are reused instead of allocated per call.
var fpPool = sync.Pool{New: func() any {
	return &fpWriter{h: sha256.New(), buf: make([]byte, 0, 64)}
}}

func newFPWriter() *fpWriter {
	w := fpPool.Get().(*fpWriter)
	w.h.Reset()
	return w
}

// sum finalises the hash into a stack-allocated Fingerprint and returns
// the writer to the pool; w must not be used afterwards.
func (w *fpWriter) sum() Fingerprint {
	var f Fingerprint
	w.h.Sum(f[:0])
	fpPool.Put(w)
	return f
}

// Fingerprinter is implemented by models whose behavioural identity is
// not fully determined by their declared structure — e.g. variant readings
// of one protocol that share name, parameter, components and messages but
// differ in transition logic. The extra material is folded into
// FingerprintModel, keeping variants from colliding in the cache.
type Fingerprinter interface {
	// FingerprintExtra returns deterministic identity material beyond the
	// declared structure.
	FingerprintExtra() []string
}

// FingerprintModel returns the fingerprint of the machine that Generate
// would produce for the model under the given options. It is computed from
// the model's declared structure alone — the machine is never generated —
// so it is cheap enough to serve as a cache key on every request.
//
// A model whose transition logic varies independently of its declared
// structure must implement Fingerprinter; otherwise two behaviourally
// different models could collide on one cache entry.
//
// Options that change the generated machine (pruning, merging, single-pass
// merging, descriptions) are folded into the hash. WithWorkers is
// deliberately excluded: parallel frontier expansion is bit-identical to
// serial exploration, so worker count must not fragment the cache.
func FingerprintModel(m Model, opts ...Option) Fingerprint {
	cfg := newGenConfig(opts)
	w := newFPWriter()
	w.writeString("asagen/model-fingerprint/v1")
	w.writeString(m.Name())
	w.writeInt(m.Parameter())

	components := m.Components()
	w.writeInt(len(components))
	for _, c := range components {
		w.writeString(c.Name())
		w.writeInt(c.Cardinality())
	}
	w.writeStrings(m.Messages())

	start := m.Start()
	w.writeInt(len(start))
	for _, v := range start {
		w.writeInt(v)
	}

	var extra []string
	if fx, ok := m.(Fingerprinter); ok {
		extra = fx.FingerprintExtra()
	}
	w.writeStrings(extra)

	flags := 0
	if cfg.prune {
		flags |= 1
	}
	if cfg.merge {
		flags |= 2
	}
	if cfg.singlePassMerge {
		flags |= 4
	}
	if cfg.describe {
		flags |= 8
	}
	w.writeInt(flags)
	return w.sum()
}

// Fingerprint returns a content hash of the generated machine itself:
// states in machine order with their annotations and merged-name lists,
// and every transition with its actions. Two machines with equal
// fingerprints render to identical artefacts in every format.
func (m *StateMachine) Fingerprint() Fingerprint {
	w := newFPWriter()
	w.writeString("asagen/machine-fingerprint/v1")
	w.writeString(m.ModelName)
	w.writeInt(m.Parameter)
	w.writeStrings(m.Messages)
	w.writeInt(len(m.States))
	for _, s := range m.States {
		w.writeString(s.Name)
		flags := 0
		if s == m.Start {
			flags |= 1
		}
		if s.Final {
			flags |= 2
		}
		w.writeInt(flags)
		w.writeStrings(s.Annotations)
		w.writeStrings(s.MergedNames)
		w.writeInt(len(s.Transitions))
		for _, msg := range s.SortedMessages(m.Messages) {
			tr := s.Transitions[msg]
			w.writeString(msg)
			w.writeString(tr.Target.Name)
			w.writeStrings(tr.Actions)
			w.writeStrings(tr.Annotations)
		}
	}
	return w.sum()
}
