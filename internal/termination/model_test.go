package termination

import (
	"context"
	"strings"
	"testing"

	"asagen/internal/core"
	"asagen/internal/runtime"
)

func generate(t *testing.T, k int) *core.StateMachine {
	t.Helper()
	m, err := NewModel(k)
	if err != nil {
		t.Fatalf("NewModel(%d): %v", k, err)
	}
	machine, err := core.Generate(context.Background(), m)
	if err != nil {
		t.Fatalf("Generate(k=%d): %v", k, err)
	}
	return machine
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(0); err == nil {
		t.Error("k=0 accepted")
	}
	m, err := NewModel(3)
	if err != nil {
		t.Fatal(err)
	}
	if m.FanOut() != 3 {
		t.Errorf("FanOut = %d", m.FanOut())
	}
}

// TestFamilySize: the reachable family member has 2(k+1) − 1 states plus
// the finish state (active with 0..k outstanding, idle-waiting with 1..k
// outstanding, the idle start, FINISHED).
func TestFamilySize(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		machine := generate(t, k)
		want := 2*(k+1) + 1 // incl. finish state
		if got := machine.Stats.FinalStates; got != want {
			t.Errorf("k=%d: final states = %d, want %d", k, got, want)
		}
		if got := machine.Stats.InitialStates; got != 2*(k+1) {
			t.Errorf("k=%d: initial states = %d, want %d", k, got, 2*(k+1))
		}
	}
}

// TestWorkerLifecycle walks activate → spawn ×2 → idle → children complete
// → done.
func TestWorkerLifecycle(t *testing.T) {
	machine := generate(t, 3)
	var actions []string
	inst, err := runtime.New(machine, runtime.ActionFunc(func(a string) { actions = append(actions, a) }))
	if err != nil {
		t.Fatal(err)
	}
	deliver := func(msg string) {
		t.Helper()
		if _, err := inst.Deliver(msg); err != nil {
			t.Fatalf("Deliver(%s): %v", msg, err)
		}
	}

	deliver(MsgTask)
	deliver(MsgSpawn)
	deliver(MsgSpawn)
	if got := countOf(actions, ActSendTask); got != 2 {
		t.Fatalf("spawned %d tasks, want 2", got)
	}

	deliver(MsgIdle) // still waiting on 2 children
	if inst.Finished() {
		t.Fatal("finished while children outstanding")
	}
	deliver(MsgChildDone)
	if inst.Finished() {
		t.Fatal("finished with one child outstanding")
	}
	deliver(MsgChildDone)
	if !inst.Finished() {
		t.Fatal("not finished after last child completed")
	}
	if countOf(actions, ActSendDone) != 1 {
		t.Errorf("done reported %d times, want 1", countOf(actions, ActSendDone))
	}
}

// TestImmediateCompletion: a process that goes idle without spawning
// reports done at once.
func TestImmediateCompletion(t *testing.T) {
	machine := generate(t, 2)
	var actions []string
	inst, err := runtime.New(machine, runtime.ActionFunc(func(a string) { actions = append(actions, a) }))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Deliver(MsgTask); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Deliver(MsgIdle); err != nil {
		t.Fatal(err)
	}
	if !inst.Finished() {
		t.Error("not finished")
	}
	if countOf(actions, ActSendDone) != 1 {
		t.Errorf("actions = %v", actions)
	}
}

func TestGuards(t *testing.T) {
	m, err := NewModel(2)
	if err != nil {
		t.Fatal(err)
	}
	start := m.Start()
	// Spawn while idle: not applicable.
	if _, ok := m.Apply(start, MsgSpawn); ok {
		t.Error("spawn applicable while idle")
	}
	// ChildDone with no children: not applicable.
	if _, ok := m.Apply(start, MsgChildDone); ok {
		t.Error("child_done applicable with no children")
	}
	// Idle while idle: not applicable.
	if _, ok := m.Apply(start, MsgIdle); ok {
		t.Error("idle applicable while idle")
	}
	// Spawn at the fan-out bound: not applicable.
	full := core.Vector{1, 2}
	if _, ok := m.Apply(full, MsgSpawn); ok {
		t.Error("spawn applicable at bound")
	}
	// Task while active: not applicable.
	if _, ok := m.Apply(core.Vector{1, 0}, MsgTask); ok {
		t.Error("task applicable while active")
	}
}

// TestEFSMIndependentOfK: the coalesced machine has three states (ACTIVE,
// IDLE_WAITING, FINISHED) regardless of the fan-out bound.
func TestEFSMIndependentOfK(t *testing.T) {
	for _, k := range []int{2, 4, 16} {
		e, err := GenerateEFSM(context.Background(), k)
		if err != nil {
			t.Fatalf("GenerateEFSM(context.Background(), %d): %v", k, err)
		}
		if len(e.States) != 3 {
			t.Errorf("k=%d: EFSM has %d states (%v), want 3", k, len(e.States), e.StateNames())
		}
	}
}

func TestEFSMLifecycle(t *testing.T) {
	e, err := GenerateEFSM(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := core.NewEFSMInstance(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range []string{MsgTask, MsgSpawn, MsgSpawn, MsgIdle, MsgChildDone, MsgChildDone} {
		inst.Deliver(msg)
	}
	if !inst.Finished() {
		t.Errorf("EFSM not finished; state %s outstanding=%d",
			inst.StateName(), inst.Var("outstanding"))
	}
}

func TestDescribeState(t *testing.T) {
	m, err := NewModel(3)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Join(m.DescribeState(core.Vector{1, 2}), " ")
	if !strings.Contains(lines, "active") || !strings.Contains(lines, "2 delegated") {
		t.Errorf("description = %s", lines)
	}
}

func countOf(list []string, want string) int {
	n := 0
	for _, s := range list {
		if s == want {
			n++
		}
	}
	return n
}
