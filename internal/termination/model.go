// Package termination applies the generative state-machine methodology to
// distributed termination detection, the second §5.2 candidate: most
// termination algorithms are based on message counting (a computation has
// terminated when every process is locally idle and no messages are in
// transit), so their per-process state is amenable to the same treatment.
//
// The model is a Dijkstra–Scholten-style per-process detector: a process is
// activated by a task, may spawn up to k child tasks, counts child
// completions, and signals its own completion once it is idle and all
// children have completed. The parameter k (maximum outstanding children)
// plays the role the replication factor plays in the commit protocol.
package termination

import (
	"context"
	"fmt"

	"asagen/internal/core"
)

// Message types received by a termination-detection machine.
const (
	// MsgTask activates the process.
	MsgTask = "TASK"
	// MsgSpawn makes the active process delegate a child task.
	MsgSpawn = "SPAWN"
	// MsgChildDone reports a delegated task's completion.
	MsgChildDone = "CHILD_DONE"
	// MsgIdle marks the local work as finished.
	MsgIdle = "IDLE"
)

// Actions performed on phase transitions.
const (
	// ActSendTask delegates a task to a child process.
	ActSendTask = "->task"
	// ActSendDone signals completion to the parent.
	ActSendDone = "->done"
)

// Component indices.
const (
	idxActive = iota
	idxOutstanding
	numComponents
)

// Model is the termination-detection abstract model for a fixed fan-out
// bound k. It implements core.Model.
type Model struct {
	k int
}

var _ core.Model = (*Model)(nil)

// NewModel returns the model for a maximum of k outstanding children.
func NewModel(k int) (*Model, error) {
	if k < 1 {
		return nil, fmt.Errorf("termination: fan-out bound %d < 1", k)
	}
	return &Model{k: k}, nil
}

// FanOut returns k.
func (m *Model) FanOut() int { return m.k }

// Name implements core.Model.
func (m *Model) Name() string { return "termination-detection" }

// Parameter implements core.Model.
func (m *Model) Parameter() int { return m.k }

// Components implements core.Model.
func (m *Model) Components() []core.StateComponent {
	return []core.StateComponent{
		core.NewBoolComponent("active"),
		core.NewIntComponent("outstanding", m.k),
	}
}

// Messages implements core.Model.
func (m *Model) Messages() []string {
	return []string{MsgTask, MsgSpawn, MsgChildDone, MsgIdle}
}

// Start implements core.Model: idle with no children; the first task
// activates the process.
func (m *Model) Start() core.Vector { return make(core.Vector, numComponents) }

// Apply implements core.Model.
func (m *Model) Apply(v core.Vector, msg string) (core.Effect, bool) {
	s := v.Clone()
	var actions, notes []string
	finished := false

	switch msg {
	case MsgTask:
		if s[idxActive] != 0 {
			return core.Effect{}, false // already active
		}
		s[idxActive] = 1
		notes = append(notes, "Activated by an incoming task.")

	case MsgSpawn:
		if s[idxActive] == 0 || s[idxOutstanding] == m.k {
			return core.Effect{}, false
		}
		s[idxOutstanding]++
		actions = append(actions, ActSendTask)
		notes = append(notes, "Delegate a child task and count it outstanding.")

	case MsgChildDone:
		if s[idxOutstanding] == 0 {
			return core.Effect{}, false
		}
		s[idxOutstanding]--
		notes = append(notes, "One delegated task completed.")
		if s[idxOutstanding] == 0 && s[idxActive] == 0 {
			actions = append(actions, ActSendDone)
			notes = append(notes, "Idle with no outstanding children: report completion.")
			finished = true
		}

	case MsgIdle:
		if s[idxActive] == 0 {
			return core.Effect{}, false
		}
		s[idxActive] = 0
		notes = append(notes, "Local work finished.")
		if s[idxOutstanding] == 0 {
			actions = append(actions, ActSendDone)
			notes = append(notes, "No outstanding children: report completion.")
			finished = true
		}

	default:
		return core.Effect{}, false
	}
	return core.Effect{Target: s, Actions: actions, Annotations: notes, Finished: finished}, true
}

// DescribeState implements core.Model.
func (m *Model) DescribeState(v core.Vector) []string {
	state := "idle"
	if v[idxActive] != 0 {
		state = "active"
	}
	return []string{
		fmt.Sprintf("Process is %s.", state),
		fmt.Sprintf("%d delegated tasks outstanding (bound %d).", v[idxOutstanding], m.k),
	}
}

// Abstraction coalesces the outstanding-children counter for EFSM
// generation.
type Abstraction struct {
	model *Model
}

var _ core.EFSMAbstraction = (*Abstraction)(nil)

// NewAbstraction returns the EFSM abstraction for the model.
func NewAbstraction(m *Model) *Abstraction { return &Abstraction{model: m} }

// StateLabel implements core.EFSMAbstraction.
func (a *Abstraction) StateLabel(v core.Vector) string {
	if v[idxActive] != 0 {
		return "ACTIVE"
	}
	return "IDLE_WAITING"
}

// GuardComponent implements core.EFSMAbstraction.
func (a *Abstraction) GuardComponent(msg string) int {
	switch msg {
	case MsgSpawn, MsgChildDone, MsgIdle:
		// Idle's outcome (report done or wait for children) also depends
		// on the outstanding count.
		return idxOutstanding
	default:
		return -1
	}
}

// VarOps implements core.EFSMAbstraction.
func (a *Abstraction) VarOps(msg string) []core.VarOp {
	switch msg {
	case MsgSpawn:
		return []core.VarOp{{Variable: "outstanding", Delta: 1}}
	case MsgChildDone:
		return []core.VarOp{{Variable: "outstanding", Delta: -1}}
	default:
		return nil
	}
}

// Symbol implements core.EFSMAbstraction.
func (a *Abstraction) Symbol(component, value int) string {
	switch value {
	case 0:
		return "0"
	case 1:
		return "1"
	case a.model.k:
		return "k"
	case a.model.k - 1:
		return "k-1"
	}
	return ""
}

// GenerateEFSM generates the machine for fan-out k and coalesces it into
// the parameter-independent EFSM.
func GenerateEFSM(ctx context.Context, k int) (*core.EFSM, error) {
	m, err := NewModel(k)
	if err != nil {
		return nil, err
	}
	machine, err := core.Generate(ctx, m, core.WithoutDescriptions())
	if err != nil {
		return nil, fmt.Errorf("termination: generate machine: %w", err)
	}
	return core.GeneralizeEFSM(machine, NewAbstraction(m))
}
