package fleetsim

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asagen/internal/api"
	"asagen/internal/artifact"
	"asagen/internal/models"
	"asagen/internal/trace"
)

// smallScenario is a fast scenario for unit tests.
func smallScenario() Scenario {
	return Scenario{
		Name:       "test",
		Model:      "commit",
		Param:      4,
		Instances:  200,
		Shards:     4,
		Seed:       1,
		DurationMS: 5000,
		Arrival:    Arrival{Process: ArrivalPoisson, RatePerSec: 200},
		Faults:     Faults{DropRate: 0.02, DuplicateRate: 0.05, InvalidRate: 0.02, UnknownRate: 0.01},
		Tolerance:  1,
	}
}

// TestRunDeterministic proves the report contract: the same scenario
// produces byte-identical reports across runs and across worker counts —
// concurrency bounds execution, never outcome.
func TestRunDeterministic(t *testing.T) {
	sc := smallScenario()
	var reports [][]byte
	for _, workers := range []int{1, 4, 16} {
		rep, err := Run(context.Background(), sc, workers)
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		data, err := rep.MarshalCanonical()
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, data)
	}
	for i := 1; i < len(reports); i++ {
		if !bytes.Equal(reports[0], reports[i]) {
			t.Fatalf("report %d differs from report 0: worker count leaked into the report", i)
		}
	}
}

// TestRunSeedSensitivity: a different seed must change the outcome (the
// PRNG is actually wired through).
func TestRunSeedSensitivity(t *testing.T) {
	sc := smallScenario()
	rep1, err := Run(context.Background(), sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed = 2
	rep2, err := Run(context.Background(), sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := rep1.MarshalCanonical()
	d2, _ := rep2.MarshalCanonical()
	if bytes.Equal(d1, d2) {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestRunAccounting checks the lifecycle and verdict invariants that hold
// for every scenario: instances are fully accounted for, every judged
// event carries exactly one delivery verdict, and no legitimate delivery
// was rejected.
func TestRunAccounting(t *testing.T) {
	rep, err := Run(context.Background(), smallScenario(), 4)
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Fleet
	if f.Born != f.Finished+f.Truncated+f.DeadEnd {
		t.Errorf("born %d != finished %d + truncated %d + dead-end %d",
			f.Born, f.Finished, f.Truncated, f.DeadEnd)
	}
	if f.Born > f.Instances {
		t.Errorf("born %d exceeds fleet size %d", f.Born, f.Instances)
	}
	v := rep.Verdicts
	deliveries := v.Count(trace.KindAccepted) + v.Count(trace.KindIgnored) +
		v.Count(trace.KindSkipped) + v.Count(trace.KindViolation)
	if deliveries != rep.Events {
		t.Errorf("verdict deliveries %d != events %d", deliveries, rep.Events)
	}
	if got := v.Count(trace.KindViolation); got != rep.ExpectedViolations+rep.UnexpectedViolations {
		t.Errorf("violation verdicts %d != expected %d + unexpected %d",
			got, rep.ExpectedViolations, rep.UnexpectedViolations)
	}
	if rep.UnexpectedViolations != 0 {
		t.Errorf("unexpected violations %d: machine and interpreter disagree", rep.UnexpectedViolations)
	}
	if v.Count(trace.KindFinished) != int64(f.Finished) {
		t.Errorf("finished verdicts %d != finished instances %d", v.Count(trace.KindFinished), f.Finished)
	}
	if rep.CompletionHistogram.Count() != int64(f.Finished) {
		t.Errorf("completion samples %d != finished instances %d",
			rep.CompletionHistogram.Count(), f.Finished)
	}
}

// TestCommitChurnScenarioFile is the acceptance check: the checked-in
// commit-churn scenario drives at least 1000 instances and two runs of the
// same seed produce byte-identical reports.
func TestCommitChurnScenarioFile(t *testing.T) {
	sc, err := Load(filepath.Join("..", "..", "examples", "fleetsim", "commit-churn.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := Run(context.Background(), sc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Fleet.Born < 1000 {
		t.Fatalf("commit-churn born %d instances, want >= 1000", rep1.Fleet.Born)
	}
	if rep1.UnexpectedViolations != 0 {
		t.Fatalf("commit-churn produced %d unexpected violations", rep1.UnexpectedViolations)
	}
	rep2, err := Run(context.Background(), sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := rep1.MarshalCanonical()
	d2, _ := rep2.MarshalCanonical()
	if !bytes.Equal(d1, d2) {
		t.Fatal("same-seed runs produced different report bytes")
	}
}

// TestGoldenReports replays every checked-in scenario and compares the
// report byte-for-byte against its golden — the in-repo form of the CI
// drift gate.
func TestGoldenReports(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "fleetsim")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".json")
		t.Run(name, func(t *testing.T) {
			sc, err := Load(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := Run(context.Background(), sc, 8)
			if err != nil {
				t.Fatal(err)
			}
			got, err := rep.MarshalCanonical()
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join(dir, "golden", e.Name()))
			if err != nil {
				t.Fatalf("missing golden (regenerate with `go run ./cmd/fleetsim -config %s -out %s`): %v",
					filepath.Join(dir, e.Name()), filepath.Join(dir, "golden", e.Name()), err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("report drifted from golden %s.json; regenerate if intended", name)
			}
		})
		ran++
	}
	if ran < 6 {
		t.Fatalf("scenario matrix has %d scenarios, want at least the 6 registry models", ran)
	}
}

// TestScenarioValidation exercises the config diagnostics.
func TestScenarioValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"no model", func(s *Scenario) { s.Model = "" }, "needs a model"},
		{"zero instances", func(s *Scenario) { s.Instances = 0 }, "instances"},
		{"bad duration", func(s *Scenario) { s.DurationMS = 0 }, "duration_ms"},
		{"bad process", func(s *Scenario) { s.Arrival.Process = "burst" }, "arrival process"},
		{"bad rate", func(s *Scenario) { s.Arrival.RatePerSec = 0 }, "rate_per_sec"},
		{"bad think", func(s *Scenario) { s.Think = Interval{MinMS: 10, MaxMS: 5} }, "think range"},
		{"bad fault", func(s *Scenario) { s.Faults.DropRate = 1.5 }, "drop_rate"},
		{"fault sum", func(s *Scenario) { s.Faults.DropRate = 0.5; s.Faults.InvalidRate = 0.5 }, "sum"},
		{"negative tolerance", func(s *Scenario) { s.Tolerance = -1 }, "tolerance"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := smallScenario()
			tc.mut(&sc)
			err := sc.Normalize()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Normalize() = %v, want error containing %q", err, tc.want)
			}
		})
	}
	t.Run("unknown model", func(t *testing.T) {
		sc := smallScenario()
		sc.Model = "no-such-model"
		if _, err := Run(context.Background(), sc, 1); err == nil {
			t.Fatal("Run accepted an unknown model")
		}
	})
	t.Run("unknown config key", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "bad.json")
		os.WriteFile(path, []byte(`{"model":"commit","instances":1,"duration_ms":1,"arival":{}}`), 0o644)
		if _, err := Load(path); err == nil {
			t.Fatal("Load accepted a misspelled config key")
		}
	})
}

// TestInlineSpecScenario runs the checked-in leader-lease scenario, whose
// model exists only as an inline spec document.
func TestInlineSpecScenario(t *testing.T) {
	sc, err := Load(filepath.Join("..", "..", "examples", "fleetsim", "leader-lease.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := models.Get(sc.Model); err == nil {
		t.Fatalf("model %q unexpectedly in the built-in registry; the test wants an inline-spec-only model", sc.Model)
	}
	rep, err := Run(context.Background(), sc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fleet.Born == 0 || rep.UnexpectedViolations != 0 {
		t.Fatalf("inline-spec run: born %d, unexpected violations %d", rep.Fleet.Born, rep.UnexpectedViolations)
	}
}

// TestConformingTrace feeds the generated trace back through the trace
// monitor: it must conform by construction.
func TestConformingTrace(t *testing.T) {
	sc := smallScenario()
	machine, err := BuildMachine(context.Background(), &sc)
	if err != nil {
		t.Fatal(err)
	}
	data := ConformingTrace(machine, 99, 128)
	if len(data) == 0 {
		t.Fatal("empty conforming trace for commit")
	}
	mon, err := trace.NewMonitor(trace.WithTarget("m", machine))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mon.Run(context.Background(), trace.NewJSONLDecoder(bytes.NewReader(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Conforming() {
		t.Fatalf("generated trace violates its own machine: %+v", rep)
	}
}

// TestLive drives the live mode against an in-process /v1 server: render
// GETs and /check POSTs both succeed, and the report carries the same
// accounting shape as the simulation.
func TestLive(t *testing.T) {
	ts := httptest.NewServer(api.NewHandler(artifact.New(artifact.WithRegistry(models.Default().Clone()))))
	defer ts.Close()

	sc := smallScenario()
	sc.Instances = 30
	sc.Arrival = Arrival{Process: ArrivalConstant, RatePerSec: 500}
	sc.DurationMS = 10000
	sc.CheckEvery = 3
	sc.Formats = []string{"text", "dot"}
	rep, err := Live(context.Background(), sc, ts.URL, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Harness != "live" {
		t.Fatalf("harness = %q, want live", rep.Harness)
	}
	if rep.Fleet.Born != 30 {
		t.Fatalf("live born %d, want 30", rep.Fleet.Born)
	}
	if rep.UnexpectedViolations != 0 {
		t.Fatalf("live run reported %d unexpected violations", rep.UnexpectedViolations)
	}
	if rep.Fleet.Finished == 0 {
		t.Fatal("no /check requests completed")
	}
	if got := rep.Verdicts.Count(trace.KindAccepted); got != int64(rep.Fleet.Born) {
		t.Fatalf("accepted %d, want every scheduled request (%d)", got, rep.Fleet.Born)
	}
	if rep.Events != int64(rep.Fleet.Born) {
		t.Fatalf("events %d != born %d", rep.Events, rep.Fleet.Born)
	}
}

// TestLiveInlineSpec registers the scenario's inline spec on the live
// server before driving it.
func TestLiveInlineSpec(t *testing.T) {
	ts := httptest.NewServer(api.NewHandler(artifact.New(artifact.WithRegistry(models.Default().Clone()))))
	defer ts.Close()

	sc, err := Load(filepath.Join("..", "..", "examples", "fleetsim", "leader-lease.json"))
	if err != nil {
		t.Fatal(err)
	}
	sc.Instances = 12
	sc.Arrival = Arrival{Process: ArrivalConstant, RatePerSec: 500}
	sc.DurationMS = 10000
	rep, err := Live(context.Background(), sc, ts.URL, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fleet.Born != 12 || rep.UnexpectedViolations != 0 {
		t.Fatalf("live inline-spec run: born %d, unexpected %d", rep.Fleet.Born, rep.UnexpectedViolations)
	}
}
