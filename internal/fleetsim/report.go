package fleetsim

import (
	"encoding/json"
	"math"
	"time"

	"asagen/internal/latency"
	"asagen/internal/trace"
)

// MachineInfo summarises the generated machine the fleet executed.
type MachineInfo struct {
	Model       string `json:"model"`
	Param       int    `json:"param"`
	States      int    `json:"states"`
	Transitions int    `json:"transitions"`
	Messages    int    `json:"messages"`
}

// FleetInfo counts instance lifecycles.
type FleetInfo struct {
	// Instances is the configured fleet size.
	Instances int `json:"instances"`
	// Born counts instances whose arrival fell inside the experiment
	// duration and that were actually started.
	Born int `json:"born"`
	// Finished counts instances whose machine reached its finish state.
	Finished int `json:"finished"`
	// Truncated counts instances stopped by the virtual-time bound or the
	// per-instance step cap while still running.
	Truncated int `json:"truncated"`
	// DeadEnd counts instances stranded in a non-final state with no
	// outgoing transitions.
	DeadEnd int `json:"dead_end"`
}

// Percentiles is the fixed percentile row read off a histogram.
type Percentiles struct {
	Count int64 `json:"count"`
	P50Ns int64 `json:"p50_ns"`
	P95Ns int64 `json:"p95_ns"`
	P99Ns int64 `json:"p99_ns"`
	MaxNs int64 `json:"max_ns"`
}

// percentilesOf reads the report row off a histogram.
func percentilesOf(h *latency.Histogram) Percentiles {
	return Percentiles{
		Count: h.Count(),
		P50Ns: int64(h.Quantile(0.50)),
		P95Ns: int64(h.Quantile(0.95)),
		P99Ns: int64(h.Quantile(0.99)),
		MaxNs: int64(h.Max()),
	}
}

// Report is the experiment outcome. Every field is either copied from the
// normalized scenario or computed deterministically from the seeded
// simulation, so marshalling a simulation report is byte-stable: same
// scenario ⇒ same bytes, which is what the CI golden gate diffs. Live-mode
// reports share the shape but carry wall-clock measurements.
type Report struct {
	// Harness distinguishes the deterministic simulation ("sim") from the
	// live HTTP mode ("live").
	Harness string `json:"harness"`
	// Scenario echoes the normalized config the experiment ran.
	Scenario Scenario `json:"scenario"`
	// Machine describes the generated machine (zero-valued counts in live
	// mode when the target server generated the machine remotely).
	Machine MachineInfo `json:"machine"`
	// Fleet counts instance lifecycles; in live mode an "instance" is one
	// scheduled request.
	Fleet FleetInfo `json:"fleet"`
	// Events counts deliveries judged (sim) or requests completed (live).
	Events int64 `json:"events"`
	// Verdicts counts every judged delivery by trace verdict kind.
	Verdicts *trace.Tally `json:"verdicts"`
	// ExpectedViolations counts violations caused by the fault schedule:
	// injected or duplicated messages the machine rightly rejected past
	// the tolerance budget.
	ExpectedViolations int64 `json:"expected_violations"`
	// UnexpectedViolations counts rejections of legitimately scheduled
	// deliveries — zero unless the generated machine or its interpreter
	// is broken. The CI gate fails on any non-zero count.
	UnexpectedViolations int64 `json:"unexpected_violations"`
	// VirtualMS is the experiment's virtual-time bound (sim) or measured
	// wall time (live), in milliseconds.
	VirtualMS int64 `json:"virtual_ms"`
	// ThroughputPerSec is Events per (virtual or wall) second, rounded to
	// two decimals.
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	// Delivery holds per-delivery latency percentiles: virtual network
	// latency from send to delivery (sim), or request latency measured
	// from scheduled arrival (live, no coordinated omission).
	Delivery Percentiles `json:"delivery"`
	// Completion holds per-instance birth-to-finish latency percentiles
	// (sim), or the /check request subset (live).
	Completion Percentiles `json:"completion"`
	// DeliveryHistogram and CompletionHistogram embed the full sparse
	// histograms so reports merge offline like loadgen artifacts.
	DeliveryHistogram   *latency.Histogram `json:"delivery_histogram"`
	CompletionHistogram *latency.Histogram `json:"completion_histogram"`
}

// finish derives the summary fields from the accumulated histograms.
func (r *Report) finish(virtual time.Duration) {
	r.VirtualMS = virtual.Milliseconds()
	r.Delivery = percentilesOf(r.DeliveryHistogram)
	r.Completion = percentilesOf(r.CompletionHistogram)
	if secs := virtual.Seconds(); secs > 0 {
		r.ThroughputPerSec = math.Round(float64(r.Events)/secs*100) / 100
	}
}

// MarshalCanonical renders the report as indented JSON with a trailing
// newline. Field order is fixed by the struct, histograms marshal their
// sparse buckets in ascending index order, and no map is involved, so
// equal reports are byte-identical — cmp-diffable in CI.
func (r *Report) MarshalCanonical() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
