package fleetsim

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"asagen/internal/core"
	"asagen/internal/latency"
	"asagen/internal/models"
	"asagen/internal/runtime"
	"asagen/internal/simnet"
	"asagen/internal/spec"
	"asagen/internal/trace"
)

// noiseMessage is the out-of-vocabulary message the unknown-rate fault
// injects; no model vocabulary contains punctuation, so it can never be
// applicable.
const noiseMessage = "@fleetsim/noise"

// BuildMachine resolves the scenario's model — registering an inline spec
// document first when present — and generates the machine the fleet
// executes.
func BuildMachine(ctx context.Context, sc *Scenario) (*core.StateMachine, error) {
	reg := models.Default().Clone()
	if len(sc.Spec) > 0 {
		compiled, err := spec.ParseAndCompile(sc.Spec)
		if err != nil {
			return nil, fmt.Errorf("fleetsim: inline spec: %w", err)
		}
		if _, err := reg.Replace(compiled.Entry()); err != nil {
			return nil, fmt.Errorf("fleetsim: inline spec: %w", err)
		}
	}
	model, err := reg.Build(sc.Model, sc.Param)
	if err != nil {
		return nil, err
	}
	machine, err := core.Generate(ctx, model)
	if err != nil {
		return nil, err
	}
	if sc.Param <= 0 {
		// Echo the effective parameter so the report is self-describing.
		sc.Param = machine.Parameter
	}
	return machine, nil
}

// machineInfo summarises a generated machine for the report.
func machineInfo(m *core.StateMachine) MachineInfo {
	return MachineInfo{
		Model:       m.ModelName,
		Param:       m.Parameter,
		States:      len(m.States),
		Transitions: m.TransitionCount(),
		Messages:    len(m.Messages),
	}
}

// stateMsgs caches, per machine state, the messages applicable there and
// the vocabulary remainder, both in canonical message order. The index is
// built once and read concurrently by every shard, keeping the per-step
// hot path allocation-free.
type stateMsgs struct {
	applicable   []string
	inapplicable []string
}

func indexMachine(m *core.StateMachine) map[*core.State]stateMsgs {
	idx := make(map[*core.State]stateMsgs, len(m.States))
	for _, st := range m.States {
		var sm stateMsgs
		for _, msg := range m.Messages {
			if st.Transition(msg) != nil {
				sm.applicable = append(sm.applicable, msg)
			} else {
				sm.inapplicable = append(sm.inapplicable, msg)
			}
		}
		idx[st] = sm
	}
	return idx
}

// arrivalTimes precomputes every instance's birth time from the arrival
// process. The schedule depends only on (seed, arrival, instances) — not
// on the shard partition — so resharding an experiment keeps its arrival
// history.
func arrivalTimes(sc *Scenario) []time.Duration {
	rng := rand.New(rand.NewSource(sc.Seed))
	births := make([]time.Duration, sc.Instances)
	var t time.Duration
	for i := range births {
		switch sc.Arrival.Process {
		case ArrivalPoisson:
			t += time.Duration(rng.ExpFloat64() / sc.Arrival.RatePerSec * float64(time.Second))
		default: // ArrivalConstant
			t += time.Duration(float64(time.Second) / sc.Arrival.RatePerSec)
		}
		births[i] = t
	}
	return births
}

// shardSeed mixes the scenario seed with the shard index (splitmix64-style
// increment) so shard PRNG streams are decorrelated but fully determined
// by the scenario.
func shardSeed(seed int64, shard int) int64 {
	return seed + int64(shard+1)*-0x61c8864680b583eb // golden-ratio increment, wrapping
}

// stepMsg is the payload of one in-flight step event: which instance it
// drives and when it was sent, so delivery records the sampled virtual
// network latency.
type stepMsg struct {
	in     *instance
	sentAt time.Duration
}

// shardRun is one shard's self-contained simulation: its own seeded
// network, instances, tally and histograms. Shards never share mutable
// state, which is what makes worker concurrency invisible in the report.
type shardRun struct {
	sc       *Scenario
	machine  *core.StateMachine
	index    map[*core.State]stateMsgs
	net      *simnet.Network
	duration time.Duration
	thinkMin time.Duration
	thinkMax time.Duration

	tally      trace.Tally
	delivery   latency.Histogram
	completion latency.Histogram
	events     int64
	expected   int64
	unexpected int64
	born       int
	finished   int
	truncated  int
	deadEnd    int
}

// instance is one fleet member: a running machine instance plus its
// driver state.
type instance struct {
	s      *shardRun
	inst   *runtime.Instance
	node   simnet.NodeID
	birth  time.Duration
	budget int
	steps  int
	done   bool
}

// Run executes the scenario as a deterministic simulation and returns its
// report. workers bounds how many shards execute concurrently (<= 1 runs
// them serially); it affects wall time only, never the report.
func Run(ctx context.Context, sc Scenario, workers int) (*Report, error) {
	if err := sc.Normalize(); err != nil {
		return nil, err
	}
	machine, err := BuildMachine(ctx, &sc)
	if err != nil {
		return nil, err
	}
	index := indexMachine(machine)
	births := arrivalTimes(&sc)
	if workers < 1 {
		workers = 1
	}

	shards := make([]*shardRun, sc.Shards)
	errs := make([]error, sc.Shards)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for s := 0; s < sc.Shards; s++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(s int) {
			defer wg.Done()
			defer func() { <-sem }()
			shards[s], errs[s] = runShard(ctx, &sc, machine, index, births, s)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	rep := &Report{
		Harness:             "sim",
		Scenario:            sc,
		Machine:             machineInfo(machine),
		Verdicts:            &trace.Tally{},
		DeliveryHistogram:   &latency.Histogram{},
		CompletionHistogram: &latency.Histogram{},
	}
	rep.Fleet.Instances = sc.Instances
	// Merge in shard order: every aggregate is order-insensitive, but a
	// fixed order keeps the invariant obvious and future-proof.
	for _, sh := range shards {
		rep.Verdicts.Merge(&sh.tally)
		rep.DeliveryHistogram.Merge(&sh.delivery)
		rep.CompletionHistogram.Merge(&sh.completion)
		rep.Events += sh.events
		rep.ExpectedViolations += sh.expected
		rep.UnexpectedViolations += sh.unexpected
		rep.Fleet.Born += sh.born
		rep.Fleet.Finished += sh.finished
		rep.Fleet.Truncated += sh.truncated
		rep.Fleet.DeadEnd += sh.deadEnd
	}
	rep.finish(sc.Duration())
	return rep, nil
}

// runShard simulates the instances assigned to one shard (i mod Shards)
// over the shard's own network, stopping every driver at the virtual-time
// bound and draining the residual event queue.
func runShard(ctx context.Context, sc *Scenario, machine *core.StateMachine,
	index map[*core.State]stateMsgs, births []time.Duration, shard int) (*shardRun, error) {
	netMin, netMax := sc.Net.durations()
	thinkMin, thinkMax := sc.Think.durations()
	s := &shardRun{
		sc:       sc,
		machine:  machine,
		index:    index,
		net:      simnet.New(shardSeed(sc.Seed, shard), simnet.WithLatency(netMin, netMax)),
		duration: sc.Duration(),
		thinkMin: thinkMin,
		thinkMax: thinkMax,
	}
	for i := shard; i < len(births); i += sc.Shards {
		birth := births[i]
		if birth >= s.duration {
			continue // arrives after the experiment ends: never born
		}
		id := i
		s.net.After(birth, func() { s.start(id, birth) })
	}
	// Drain in virtual-time slices so cancellation is honoured on long
	// runs; the cut points are fixed fractions of the deadline, so
	// slicing cannot perturb determinism. Every event chain ends within
	// one think+latency hop past the duration bound.
	deadline := s.duration + thinkMax + netMax + time.Millisecond
	slice := deadline / 64
	if slice <= 0 {
		slice = deadline
	}
	for t := slice; ; t += slice {
		if t > deadline {
			t = deadline
		}
		s.net.RunUntilTime(t)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if t >= deadline {
			break
		}
	}
	if pending := s.net.Pending(); pending != 0 {
		return nil, fmt.Errorf("fleetsim: shard %d left %d events past the deadline (driver bug)", shard, pending)
	}
	return s, nil
}

// start births one instance and sends its first step event.
func (s *shardRun) start(id int, birth time.Duration) {
	ri, err := runtime.New(s.machine, nil)
	if err != nil {
		// Generation guarantees a start state; a failure here is a
		// driver bug surfaced by the accounting invariants.
		s.deadEnd++
		return
	}
	in := &instance{
		s:      s,
		inst:   ri,
		node:   simnet.NodeID(fmt.Sprintf("i%d", id)),
		birth:  birth,
		budget: s.sc.Tolerance,
	}
	if err := s.net.AddNode(in.node, simnet.HandlerFunc(in.handle)); err != nil {
		s.deadEnd++
		return
	}
	s.born++
	in.sendStep()
}

// sendStep puts the instance's next step event in flight; simnet samples
// the virtual network latency it travels under.
func (in *instance) sendStep() {
	in.s.net.Send(simnet.Message{
		From:    in.node,
		To:      in.node,
		Type:    "step",
		Payload: stepMsg{in: in, sentAt: in.s.net.Now()},
	})
}

// handle processes one delivered step: it rolls the fault schedule,
// delivers the chosen event to the machine, classifies the outcome with
// the trace verdict vocabulary, and schedules the next step.
func (in *instance) handle(_ *simnet.Network, msg simnet.Message) {
	s := in.s
	step := msg.Payload.(stepMsg)
	if in.done {
		return
	}
	now := s.net.Now()
	if now >= s.duration {
		in.done = true
		s.truncated++
		return
	}
	s.delivery.Record(now - step.sentAt)

	rng := s.net.Rand()
	sm := s.index[in.inst.State()]
	roll := rng.Float64()
	f := s.sc.Faults
	switch {
	case roll < f.DropRate:
		// The peer's message was lost before the machine saw it.
		s.events++
		s.tally.Add(trace.KindSkipped)
	case roll < f.DropRate+f.InvalidRate && len(sm.inapplicable) > 0:
		in.deliver(sm.inapplicable[rng.Intn(len(sm.inapplicable))], false)
	case roll < f.DropRate+f.InvalidRate+f.UnknownRate:
		in.deliver(noiseMessage, false)
	default:
		if len(sm.applicable) == 0 {
			// Non-final state with no outgoing transitions: the walk is
			// stranded.
			in.done = true
			s.deadEnd++
			return
		}
		chosen := sm.applicable[rng.Intn(len(sm.applicable))]
		in.deliver(chosen, true)
		if !in.done && f.DuplicateRate > 0 && rng.Float64() < f.DuplicateRate {
			// Duplicated network message: redelivered after the state
			// advanced, so the machine either tolerates it (another
			// transition fires) or rightly rejects it.
			in.deliver(chosen, false)
		}
	}
	if in.done {
		return
	}
	in.steps++
	if s.sc.MaxSteps > 0 && in.steps >= s.sc.MaxSteps {
		in.done = true
		s.truncated++
		return
	}
	think := in.thinkDelay(rng)
	s.net.After(think, func() {
		if !in.done {
			in.sendStep()
		}
	})
}

// thinkDelay samples the uniform think interval from the shard PRNG.
func (in *instance) thinkDelay(rng *rand.Rand) time.Duration {
	span := in.s.thinkMax - in.s.thinkMin
	if span <= 0 {
		return in.s.thinkMin
	}
	return in.s.thinkMin + time.Duration(rng.Int63n(int64(span)+1))
}

// deliver feeds one event to the machine and classifies the outcome.
// legit marks an event the driver chose from the applicable set: its
// rejection would mean the generated machine and its interpreter disagree
// — the unexpected-violation count the CI gate keeps at zero. Fault
// injections are expected to be rejected: tolerated while the budget
// lasts, expected violations afterwards.
func (in *instance) deliver(event string, legit bool) {
	s := in.s
	s.events++
	_, err := in.inst.Deliver(event)
	if err == nil {
		s.tally.Add(trace.KindAccepted)
		if in.inst.Finished() {
			s.tally.Add(trace.KindFinished)
			s.completion.Record(s.net.Now() - in.birth)
			s.finished++
			in.done = true
		}
		return
	}
	if legit {
		s.unexpected++
		s.tally.Add(trace.KindViolation)
		return
	}
	if in.budget > 0 {
		in.budget--
		s.tally.Add(trace.KindIgnored)
		return
	}
	s.expected++
	s.tally.Add(trace.KindViolation)
}
