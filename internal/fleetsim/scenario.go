// Package fleetsim is the fleet-scale simulation harness: it instantiates
// thousands of generated machine instances over simnet virtual time from
// one declarative scenario config, drives them concurrently with bounded
// workers, classifies every delivery with the trace verdict vocabulary,
// and emits a canonical JSON report (throughput, latency percentiles,
// per-verdict counts). The design follows cothority's simul/ runner: a
// checked-in config fully determines an experiment, so every registry
// model × fault schedule × arrival process is a named, reproducible,
// CI-gated experiment rather than an ad-hoc invocation.
//
// Determinism is the core contract: the fleet is split into a fixed number
// of shards, each shard runs its own seeded simnet.Network and judges its
// own instances, and shard results are merged in shard order. Worker
// concurrency bounds how many shards execute at once but never affects the
// outcome, so the same seed produces a byte-identical report no matter the
// machine — reports are diffable artifacts, and CI compares them with cmp
// against checked-in goldens.
//
// The same scenario can instead be pointed at a live /v1 server (Live):
// the arrival process then schedules real HTTP requests against the render
// and /check routes, replacing ad-hoc loadgen invocations with named
// scenarios. Live reports share the report shape but measure wall-clock
// latency, so they are not byte-reproducible.
package fleetsim

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"
)

// Arrival processes.
const (
	// ArrivalConstant births instances on a fixed interval.
	ArrivalConstant = "constant"
	// ArrivalPoisson births instances with exponentially distributed
	// inter-arrival times drawn from the scenario's seeded PRNG.
	ArrivalPoisson = "poisson"
)

// Arrival configures the instance arrival process.
type Arrival struct {
	// Process selects the arrival process: ArrivalConstant or
	// ArrivalPoisson.
	Process string `json:"process"`
	// RatePerSec is the arrival rate in instances per virtual second.
	RatePerSec float64 `json:"rate_per_sec"`
}

// Interval is a uniform virtual-time range in milliseconds.
type Interval struct {
	MinMS int64 `json:"min_ms"`
	MaxMS int64 `json:"max_ms"`
}

// Faults is the per-delivery fault schedule, applied from the shard's
// seeded PRNG as each instance steps. Rates are probabilities in [0, 1)
// and are rolled independently.
type Faults struct {
	// DropRate loses the scheduled event before the machine sees it (the
	// peer's message was lost; the driver keeps stepping, modelling
	// retransmission). Dropped deliveries are classified skipped.
	DropRate float64 `json:"drop_rate,omitempty"`
	// DuplicateRate redelivers an accepted event immediately, modelling a
	// duplicated network message. The redelivery is judged like any fault
	// injection: tolerated while the budget lasts, a violation afterwards
	// — unless the machine genuinely accepts the duplicate.
	DuplicateRate float64 `json:"duplicate_rate,omitempty"`
	// InvalidRate injects a message from the machine's vocabulary that is
	// not applicable in the instance's current state.
	InvalidRate float64 `json:"invalid_rate,omitempty"`
	// UnknownRate injects a message outside the machine's vocabulary
	// entirely (a corrupted frame).
	UnknownRate float64 `json:"unknown_rate,omitempty"`
}

// Scenario is the declarative experiment config. The zero values of the
// optional fields are replaced by defaults in Normalize.
type Scenario struct {
	// Name labels the experiment in reports and filenames.
	Name string `json:"name"`
	// Model names the registry model to instantiate.
	Model string `json:"model"`
	// Param is the model parameter; 0 selects the model's default.
	Param int `json:"param,omitempty"`
	// Spec optionally carries an inline declarative model spec document
	// (internal/spec). It is registered before Model is resolved, so a
	// scenario can drive a machine that is not in the built-in registry;
	// Model must then name the spec's model.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Instances is the fleet size. The acceptance-grade scenarios run
	// 1000 and more.
	Instances int `json:"instances"`
	// Shards fixes the deterministic partition of the fleet; it is part
	// of the experiment identity (default 8). Instance i runs on shard
	// i mod Shards, each shard on its own seeded network.
	Shards int `json:"shards,omitempty"`
	// Seed drives every PRNG in the experiment.
	Seed int64 `json:"seed"`
	// DurationMS bounds the experiment in virtual milliseconds: no step
	// is delivered at or after this virtual time.
	DurationMS int64 `json:"duration_ms"`
	// Arrival configures the instance arrival process.
	Arrival Arrival `json:"arrival"`
	// Think is the per-instance virtual delay between a delivery and the
	// send of its next event (default 5–50ms).
	Think Interval `json:"think,omitempty"`
	// Net is the virtual network latency applied to each in-flight event
	// (default 1–10ms, the simnet default).
	Net Interval `json:"net,omitempty"`
	// Faults is the fault schedule.
	Faults Faults `json:"faults,omitempty"`
	// Tolerance is each instance's rejected-delivery budget before a
	// further rejection becomes a violation (the trace monitor's
	// vocabulary).
	Tolerance int `json:"tolerance,omitempty"`
	// MaxSteps caps deliveries per instance; 0 means bounded only by
	// DurationMS.
	MaxSteps int `json:"max_steps,omitempty"`
	// Formats is the artifact format mix the live mode cycles through on
	// the render route (default ["text"]). Ignored by the simulation.
	Formats []string `json:"formats,omitempty"`
	// CheckEvery makes every k-th live arrival a POST /check of a
	// generated conforming trace instead of a render GET; 0 disables the
	// check mix (default 8). Ignored by the simulation.
	CheckEvery int `json:"check_every,omitempty"`
}

// Load reads and normalizes a scenario config file.
func Load(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("fleetsim: %s: %w", path, err)
	}
	if err := sc.Normalize(); err != nil {
		return Scenario{}, fmt.Errorf("fleetsim: %s: %w", path, err)
	}
	return sc, nil
}

// Normalize fills defaults and validates the scenario. It is idempotent;
// the normalized form is what reports echo, so a report is self-describing
// even when the config relied on defaults.
func (sc *Scenario) Normalize() error {
	if sc.Model == "" {
		return errors.New("scenario needs a model")
	}
	if sc.Name == "" {
		sc.Name = sc.Model
	}
	if sc.Instances <= 0 {
		return fmt.Errorf("scenario %s: instances must be positive, got %d", sc.Name, sc.Instances)
	}
	if sc.Shards == 0 {
		sc.Shards = 8
	}
	if sc.Shards < 0 {
		return fmt.Errorf("scenario %s: shards must be positive, got %d", sc.Name, sc.Shards)
	}
	if sc.Shards > sc.Instances {
		sc.Shards = sc.Instances
	}
	if sc.DurationMS <= 0 {
		return fmt.Errorf("scenario %s: duration_ms must be positive, got %d", sc.Name, sc.DurationMS)
	}
	switch sc.Arrival.Process {
	case "":
		sc.Arrival.Process = ArrivalConstant
	case ArrivalConstant, ArrivalPoisson:
	default:
		return fmt.Errorf("scenario %s: unknown arrival process %q (want %s or %s)",
			sc.Name, sc.Arrival.Process, ArrivalConstant, ArrivalPoisson)
	}
	if sc.Arrival.RatePerSec <= 0 {
		return fmt.Errorf("scenario %s: arrival rate_per_sec must be positive, got %g", sc.Name, sc.Arrival.RatePerSec)
	}
	if sc.Think == (Interval{}) {
		sc.Think = Interval{MinMS: 5, MaxMS: 50}
	}
	if sc.Net == (Interval{}) {
		sc.Net = Interval{MinMS: 1, MaxMS: 10}
	}
	for _, iv := range []struct {
		label string
		Interval
	}{{"think", sc.Think}, {"net", sc.Net}} {
		if iv.MinMS < 0 || iv.MaxMS < iv.MinMS {
			return fmt.Errorf("scenario %s: %s range [%d, %d] ms is not a valid interval",
				sc.Name, iv.label, iv.MinMS, iv.MaxMS)
		}
	}
	for _, rate := range []struct {
		label string
		value float64
	}{
		{"drop_rate", sc.Faults.DropRate},
		{"duplicate_rate", sc.Faults.DuplicateRate},
		{"invalid_rate", sc.Faults.InvalidRate},
		{"unknown_rate", sc.Faults.UnknownRate},
	} {
		if rate.value < 0 || rate.value >= 1 {
			return fmt.Errorf("scenario %s: %s %g outside [0, 1)", sc.Name, rate.label, rate.value)
		}
	}
	if sum := sc.Faults.DropRate + sc.Faults.InvalidRate + sc.Faults.UnknownRate; sum >= 1 {
		return fmt.Errorf("scenario %s: drop+invalid+unknown rates sum to %g, want < 1", sc.Name, sum)
	}
	if sc.Tolerance < 0 {
		return fmt.Errorf("scenario %s: negative tolerance %d", sc.Name, sc.Tolerance)
	}
	if sc.MaxSteps < 0 {
		return fmt.Errorf("scenario %s: negative max_steps %d", sc.Name, sc.MaxSteps)
	}
	if len(sc.Formats) == 0 {
		sc.Formats = []string{"text"}
	}
	if sc.CheckEvery == 0 {
		sc.CheckEvery = 8
	}
	if sc.CheckEvery < 0 {
		sc.CheckEvery = 0 // negative disables the live check mix explicitly
	}
	return nil
}

// Duration returns the virtual-time bound as a time.Duration.
func (sc *Scenario) Duration() time.Duration {
	return time.Duration(sc.DurationMS) * time.Millisecond
}

// uniform returns the interval as time.Durations.
func (iv Interval) durations() (minD, maxD time.Duration) {
	return time.Duration(iv.MinMS) * time.Millisecond, time.Duration(iv.MaxMS) * time.Millisecond
}
