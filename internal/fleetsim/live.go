package fleetsim

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"asagen/internal/core"
	"asagen/internal/latency"
	"asagen/internal/runtime"
	"asagen/internal/trace"
)

// liveJob is one scheduled request: its open-loop due time and arrival
// index (which selects render vs check and the format rotation).
type liveJob struct {
	due time.Time
	i   int
}

// Live points the scenario's arrival process at a running /v1 server:
// each scheduled arrival issues a render GET — or, every CheckEvery-th
// arrival, POSTs a generated conforming trace to the /check route — and
// latency is measured from the scheduled arrival time, so queueing under
// overload is charged to the distribution (no coordinated omission).
// baseURL may be a comma-separated list of servers — the nodes of a
// `fsmgen serve -cluster` ring, say — and arrivals then round-robin
// across them; a single URL behaves exactly as before. The
// report shares the simulation's shape: request outcomes are classified
// with the trace verdict vocabulary, any non-conforming outcome counts as
// an unexpected violation, and the latency histograms carry the wall-clock
// distribution. Live reports are measurements, not reproducible artifacts.
func Live(ctx context.Context, sc Scenario, baseURL string, workers int) (*Report, error) {
	if err := sc.Normalize(); err != nil {
		return nil, err
	}
	if workers < 1 {
		workers = 1
	}
	// The machine is generated locally from the same registry (and inline
	// spec) the server uses, both to describe it in the report and to
	// derive a conforming trace for the /check mix.
	machine, err := BuildMachine(ctx, &sc)
	if err != nil {
		return nil, err
	}
	var bases []string
	for _, b := range strings.Split(baseURL, ",") {
		if b = strings.TrimSuffix(strings.TrimSpace(b), "/"); b != "" {
			bases = append(bases, b)
		}
	}
	if len(bases) == 0 {
		return nil, fmt.Errorf("fleetsim: empty live target list %q", baseURL)
	}
	client := &http.Client{Timeout: time.Minute}
	if len(sc.Spec) > 0 {
		// Registrations are per serving instance, so an inline spec must
		// land on every target.
		for _, base := range bases {
			if err := registerSpec(ctx, client, base, sc.Spec); err != nil {
				return nil, err
			}
		}
	}

	// URL lists are ordered base-fastest, so the arrival index's
	// round-robin cycles across the servers before repeating a format.
	renderURLs := make([]string, 0, len(sc.Formats)*len(bases))
	for _, format := range sc.Formats {
		for _, base := range bases {
			renderURLs = append(renderURLs,
				fmt.Sprintf("%s/v1/models/%s/artifacts/%s?r=%d", base, sc.Model, format, sc.Param))
		}
	}
	checkURLs := make([]string, len(bases))
	for i, base := range bases {
		checkURLs[i] = fmt.Sprintf("%s/v1/models/%s/check?r=%d&tolerance=%d", base, sc.Model, sc.Param, sc.Tolerance)
	}
	checkTrace := ConformingTrace(machine, sc.Seed, 128)

	// Fail fast on a broken mix before committing to the run.
	for _, u := range renderURLs {
		if err := probe(ctx, client, u); err != nil {
			return nil, fmt.Errorf("fleetsim: probe %s: %w", u, err)
		}
	}

	rep := &Report{
		Harness:             "live",
		Scenario:            sc,
		Machine:             machineInfo(machine),
		Verdicts:            &trace.Tally{},
		DeliveryHistogram:   &latency.Histogram{},
		CompletionHistogram: &latency.Histogram{},
	}
	rep.Fleet.Instances = sc.Instances

	var (
		mu         sync.Mutex
		wg         sync.WaitGroup
		delivery   latency.Histogram
		completion latency.Histogram
	)
	jobs := make(chan liveJob, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local latency.Histogram
			var localCheck latency.Histogram
			var tally trace.Tally
			var finished, unexpected int64
			for job := range jobs {
				if wait := time.Until(job.due); wait > 0 {
					select {
					case <-time.After(wait):
					case <-ctx.Done():
						return
					}
				}
				isCheck := sc.CheckEvery > 0 && job.i%sc.CheckEvery == sc.CheckEvery-1
				var err error
				if isCheck {
					err = postCheck(ctx, client, checkURLs[job.i%len(checkURLs)], checkTrace)
				} else {
					err = probe(ctx, client, renderURLs[job.i%len(renderURLs)])
				}
				lat := time.Since(job.due)
				local.Record(lat)
				if err != nil {
					tally.Add(trace.KindViolation)
					unexpected++
					continue
				}
				tally.Add(trace.KindAccepted)
				if isCheck {
					tally.Add(trace.KindFinished)
					localCheck.Record(lat)
					finished++
				}
			}
			mu.Lock()
			delivery.Merge(&local)
			completion.Merge(&localCheck)
			rep.Verdicts.Merge(&tally)
			rep.Fleet.Finished += int(finished)
			rep.UnexpectedViolations += unexpected
			mu.Unlock()
		}()
	}

	// The same arrival processes as the simulation, over wall time.
	arrivalRng := rand.New(rand.NewSource(sc.Seed))
	start := time.Now()
	end := start.Add(sc.Duration())
	var offset time.Duration
	issued := 0
scheduling:
	for i := 0; i < sc.Instances; i++ {
		switch sc.Arrival.Process {
		case ArrivalPoisson:
			offset += time.Duration(arrivalRng.ExpFloat64() / sc.Arrival.RatePerSec * float64(time.Second))
		default:
			offset += time.Duration(float64(time.Second) / sc.Arrival.RatePerSec)
		}
		due := start.Add(offset)
		if due.After(end) {
			break
		}
		select {
		case jobs <- liveJob{due: due, i: i}:
			issued++
		case <-ctx.Done():
			break scheduling
		}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	rep.Fleet.Born = issued
	rep.Fleet.Truncated = sc.Instances - issued
	rep.DeliveryHistogram.Merge(&delivery)
	rep.CompletionHistogram.Merge(&completion)
	rep.Events = rep.DeliveryHistogram.Count()
	rep.finish(elapsed)
	return rep, ctx.Err()
}

// probe issues one GET and drains the body, failing on any non-200.
func probe(ctx context.Context, client *http.Client, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	return nil
}

// postCheck streams the trace to the /check route and requires the SSE
// stream to end in a conforming summary.
func postCheck(ctx context.Context, client *http.Client, url string, trace []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(trace))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	if !bytes.Contains(body, []byte("event: summary")) {
		return fmt.Errorf("check stream ended without a summary event")
	}
	if !bytes.Contains(body, []byte(`"violations":0`)) {
		return fmt.Errorf("conforming trace reported violations")
	}
	return nil
}

// registerSpec registers the scenario's inline spec document on the live
// server; an already-registered model (409) is fine.
func registerSpec(ctx context.Context, client *http.Client, base string, doc []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/models", bytes.NewReader(doc))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		return fmt.Errorf("fleetsim: register inline spec: status %s", resp.Status)
	}
	return nil
}

// ConformingTrace walks the machine with a seeded random applicable-only
// policy and renders the walk as a JSON Lines trace: by construction the
// /check route judges it conforming. The walk stops at the finish state
// or after maxLines deliveries.
func ConformingTrace(machine *core.StateMachine, seed int64, maxLines int) []byte {
	rng := rand.New(rand.NewSource(seed))
	inst, err := runtime.New(machine, nil)
	if err != nil {
		return nil
	}
	var buf bytes.Buffer
	for line := 0; line < maxLines && !inst.Finished(); line++ {
		applicable := inst.State().SortedMessages(machine.Messages)
		if len(applicable) == 0 {
			break
		}
		msg := applicable[rng.Intn(len(applicable))]
		if _, err := inst.Deliver(msg); err != nil {
			break
		}
		fmt.Fprintf(&buf, "{\"msg\":%q}\n", msg)
	}
	return buf.Bytes()
}
