package api

import (
	"flag"
	"os"
	"testing"

	"asagen/internal/artifact"
)

var update = flag.Bool("update", false, "rewrite API.md from the served route table")

// TestAPIDocument checks the repository's API.md against the route table
// the handler actually serves, so the document cannot drift from the
// implementation. Regenerate with:
//
//	go test ./internal/api -run TestAPIDocument -update
func TestAPIDocument(t *testing.T) {
	const path = "../../API.md"
	want := NewHandler(artifact.New()).Markdown()
	if *update {
		if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("API.md unreadable (run with -update to generate): %v", err)
	}
	if string(got) != want {
		t.Error("API.md drifted from the served route table; regenerate with: go test ./internal/api -run TestAPIDocument -update")
	}
}
