package api

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"asagen/internal/artifact"
	"asagen/internal/store"
)

// TestIfNoneMatchHas covers the RFC 9110 comparison corners: weak
// validators on either side, multi-element lists, the wildcard, and the
// malformed values that must never match.
func TestIfNoneMatchHas(t *testing.T) {
	const etag = `"abc123"`
	cases := []struct {
		header string
		want   bool
	}{
		{``, false},
		{`"abc123"`, true},
		{`W/"abc123"`, true}, // weak validator matches its strong form
		{`"zzz", "abc123"`, true},
		{`"zzz" , W/"abc123"`, true}, // spaces around separators
		{`"zzz", "yyy"`, false},
		{`*`, true},
		{` * `, true},
		{`"zzz", *`, true}, // wildcard anywhere in the list
		{`abc123`, false},  // unquoted value is not the validator
		{`"abc1234"`, false},
		{`"abc"`, false},
		{`W/"zzz"`, false},
		{`W/`, false},
		{`,`, false},
		{`""`, false},
	}
	for _, c := range cases {
		if got := ifNoneMatchHas(c.header, etag); got != c.want {
			t.Errorf("ifNoneMatchHas(%q, %q) = %v, want %v", c.header, etag, got, c.want)
		}
	}
	// A weak ETag on the server side compares weakly too.
	if !ifNoneMatchHas(`"abc123"`, `W/"abc123"`) {
		t.Error(`strong candidate did not match weak server validator`)
	}
}

// TestConditionalRequestsOnHotPath: the precomputed-Result fast path keeps
// the conditional contract — same ETag across hot hits, 304 with no body
// for matching validators (weak or listed), full response otherwise.
func TestConditionalRequestsOnHotPath(t *testing.T) {
	p := artifact.New()
	ts := httptest.NewServer(NewHandler(p))
	defer ts.Close()
	const path = "/v1/models/commit/artifacts/text"

	first, body := get(t, ts, path, nil)
	if first.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("prime request: %d %q", first.StatusCode, body)
	}
	etag := first.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on the prime response")
	}

	// The repeat request is a hot-memo hit; its validator must not change.
	second, body2 := get(t, ts, path, nil)
	if second.Header.Get("ETag") != etag || body2 != body {
		t.Fatalf("hot hit diverged: etag %q vs %q", second.Header.Get("ETag"), etag)
	}
	if got, want := second.Header.Get("Content-Length"), first.Header.Get("Content-Length"); got != want || got == "" {
		t.Fatalf("hot hit Content-Length = %q, want %q", got, want)
	}

	for _, header := range []string{etag, "W/" + etag, `"stale", ` + etag, "*"} {
		resp, body := get(t, ts, path, http.Header{"If-None-Match": []string{header}})
		if resp.StatusCode != http.StatusNotModified {
			t.Errorf("If-None-Match %q: status %d, want 304", header, resp.StatusCode)
		}
		if body != "" {
			t.Errorf("If-None-Match %q: 304 carried a body (%d bytes)", header, len(body))
		}
		if resp.Header.Get("ETag") != etag {
			t.Errorf("If-None-Match %q: 304 ETag = %q, want %q", header, resp.Header.Get("ETag"), etag)
		}
	}
	for _, header := range []string{`"stale"`, `W/"stale"`} {
		resp, body := get(t, ts, path, http.Header{"If-None-Match": []string{header}})
		if resp.StatusCode != http.StatusOK || body != body2 {
			t.Errorf("If-None-Match %q: %d (%d bytes), want full 200", header, resp.StatusCode, len(body))
		}
	}
}

// TestServeRestartWarmth is the handler-level restart acceptance check: a
// server restarted over the same store directory answers its first
// request from disk — byte- and validator-identical, zero generations.
func TestServeRestartWarmth(t *testing.T) {
	dir := t.TempDir()
	const path = "/v1/models/termination/artifacts/dot?r=5"

	s1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p1 := artifact.New(artifact.WithStore(s1))
	ts1 := httptest.NewServer(NewHandler(p1))
	first, body1 := get(t, ts1, path, nil)
	ts1.Close()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("pre-restart: %d %q", first.StatusCode, body1)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	p2 := artifact.New(artifact.WithStore(s2))
	ts2 := httptest.NewServer(NewHandler(p2))
	defer ts2.Close()

	second, body2 := get(t, ts2, path, nil)
	if second.StatusCode != http.StatusOK || body2 != body1 {
		t.Fatalf("post-restart response diverged: %d, %d vs %d bytes", second.StatusCode, len(body2), len(body1))
	}
	for _, hdr := range []string{"ETag", "Content-Type", "Content-Length", "X-Machine-Fingerprint"} {
		if second.Header.Get(hdr) != first.Header.Get(hdr) {
			t.Errorf("%s diverged across restart: %q vs %q", hdr, second.Header.Get(hdr), first.Header.Get(hdr))
		}
	}
	st := p2.Stats()
	if st.Machine.Generations != 0 {
		t.Errorf("restarted server generated %d machines, want 0 (disk-warm)", st.Machine.Generations)
	}
	if st.Store == nil || st.Store.Hits == 0 {
		t.Errorf("restarted server recorded no store hit: %+v", st.Store)
	}
	// The pre-restart validator still short-circuits to 304.
	resp, _ := get(t, ts2, path, http.Header{"If-None-Match": []string{first.Header.Get("ETag")}})
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("conditional request after restart: %d, want 304", resp.StatusCode)
	}
}
