package api

// Tests for the writable model collection: POST /v1/models and
// DELETE /v1/models/{model}. Every handler here is constructed over its
// own registry clone — exactly as `fsmgen serve` does — so the tests also
// pin the per-server isolation property.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"asagen/internal/artifact"
	"asagen/internal/models"
	"asagen/internal/spec"
)

// countDoc is a minimal spec with an EFSM abstraction: count steps up to
// the parameter, then finish.
func countDoc(name string) spec.Doc {
	zero := spec.Lit(0)
	return spec.Doc{
		Name:         name,
		Description:  "synthetic step counter for writable-API tests",
		ParamName:    "steps",
		DefaultParam: 3,
		MinParam:     2,
		SweepParams:  []int{2, 3, 5},
		Components: []spec.Component{
			{Name: "count", Kind: spec.KindInt, Max: spec.ParamValue(0)},
		},
		Messages: []string{"STEP", "RESET"},
		Rules: []spec.Rule{
			{
				Message: "STEP",
				When:    []spec.Cond{{Component: "count", Op: spec.OpLt, Value: spec.ParamValue(0)}},
				Set:     []spec.Assign{{Component: "count", Add: 1}},
			},
			{
				Message: "STEP",
				When:    []spec.Cond{{Component: "count", Op: spec.OpEq, Value: spec.ParamValue(0)}},
				Actions: []string{"->done"},
				Finish:  true,
			},
			{
				Message: "RESET",
				When:    []spec.Cond{{Component: "count", Op: spec.OpGt, Value: spec.Lit(0)}},
				Set:     []spec.Assign{{Component: "count", Set: &zero}},
			},
		},
		Describe: []spec.DescribeRule{{Text: "{count} of {param} steps taken."}},
		Abstraction: &spec.Abstraction{
			Labels: []spec.LabelRule{{Label: "COUNTING"}},
			Guards: []spec.GuardRule{
				{Message: "STEP", Component: "count"},
				{Message: "RESET", Component: "count"},
			},
			Ops:     []spec.VarOpRule{{Message: "STEP", Component: "count", Delta: 1}},
			Symbols: []spec.SymbolRule{{Value: spec.ParamValue(0), Text: "n"}},
		},
	}
}

func specJSON(t *testing.T, doc spec.Doc) []byte {
	t.Helper()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// isolatedServer returns a test server over its own registry clone, plus
// the clone for direct inspection.
func isolatedServer(t *testing.T) (*httptest.Server, *models.Registry) {
	t.Helper()
	reg := models.Default().Clone()
	ts := httptest.NewServer(NewHandler(artifact.New(artifact.WithRegistry(reg))))
	t.Cleanup(ts.Close)
	return ts, reg
}

func do(t *testing.T, ts *httptest.Server, method, path string, body []byte) (*http.Response, string) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(data)
}

// TestRegisterGenerateRenderUnregister walks the full lifecycle: a model
// registered over the wire is immediately listable, generatable and
// renderable with full caching-header hygiene, and unregistering removes
// it and its artefacts.
func TestRegisterGenerateRenderUnregister(t *testing.T) {
	ts, _ := isolatedServer(t)

	resp, body := do(t, ts, http.MethodPost, "/v1/models", specJSON(t, countDoc("steps")))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/models = %d, body %s", resp.StatusCode, body)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/models/steps" {
		t.Errorf("Location = %q", loc)
	}
	var info struct {
		Name    string `json:"name"`
		HasEFSM bool   `json:"has_efsm"`
	}
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("201 body is not model info: %v\n%s", err, body)
	}
	if info.Name != "steps" || !info.HasEFSM {
		t.Errorf("registered info = %+v", info)
	}

	// Immediately listable and describable.
	resp, body = do(t, ts, http.MethodGet, "/v1/models/steps", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/models/steps = %d", resp.StatusCode)
	}
	resp, body = do(t, ts, http.MethodGet, "/v1/models", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"steps"`) {
		t.Errorf("model listing does not include the registration: %d\n%s", resp.StatusCode, body)
	}

	// Immediately renderable, in machine and EFSM formats, with ETag
	// revalidation.
	for _, format := range []string{"text", "go", "efsm"} {
		path := "/v1/models/steps/artifacts/" + format
		resp, body = do(t, ts, http.MethodGet, path, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, body %s", path, resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s returned an empty artefact", path)
		}
		etag := resp.Header.Get("ETag")
		if etag == "" || resp.Header.Get("Vary") != "Accept-Encoding" {
			t.Errorf("GET %s hygiene: ETag %q, Vary %q", path, etag, resp.Header.Get("Vary"))
		}
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("If-None-Match", etag)
		revalidated, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		revalidated.Body.Close()
		if revalidated.StatusCode != http.StatusNotModified {
			t.Errorf("GET %s with If-None-Match = %d, want 304", path, revalidated.StatusCode)
		}
	}

	// The artefact honours ?r= with the usual parameter handling.
	resp, body = do(t, ts, http.MethodGet, "/v1/models/steps/artifacts/text?r=5", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "parameter: 5") {
		t.Errorf("parameterised render = %d\n%.200s", resp.StatusCode, body)
	}
	resp, body = do(t, ts, http.MethodGet, "/v1/models/steps/artifacts/text?r=1", nil)
	if resp.StatusCode != http.StatusBadRequest || envelope(t, body).Code != CodeBadParameter {
		t.Errorf("r=1 (below min_param) = %d, want 400, body %.200s", resp.StatusCode, body)
	}

	// Unregister: gone from the collection, artefact requests 404.
	resp, _ = do(t, ts, http.MethodDelete, "/v1/models/steps", nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE /v1/models/steps = %d", resp.StatusCode)
	}
	resp, body = do(t, ts, http.MethodGet, "/v1/models/steps/artifacts/text", nil)
	if resp.StatusCode != http.StatusNotFound || envelope(t, body).Code != CodeUnknownModel {
		t.Errorf("render after DELETE = %d %s", resp.StatusCode, body)
	}
	resp, body = do(t, ts, http.MethodDelete, "/v1/models/steps", nil)
	if resp.StatusCode != http.StatusNotFound || envelope(t, body).Code != CodeUnknownModel {
		t.Errorf("second DELETE = %d %s", resp.StatusCode, body)
	}
}

// TestRegisterErrors: duplicate names conflict (409, model_exists),
// invalid specs are caller mistakes (400, invalid_spec) with the
// diagnostics' document paths in the message, and malformed JSON is
// rejected the same way.
func TestRegisterErrors(t *testing.T) {
	ts, _ := isolatedServer(t)

	if resp, body := do(t, ts, http.MethodPost, "/v1/models", specJSON(t, countDoc("dup"))); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first POST = %d %s", resp.StatusCode, body)
	}
	resp, body := do(t, ts, http.MethodPost, "/v1/models", specJSON(t, countDoc("dup")))
	if resp.StatusCode != http.StatusConflict || envelope(t, body).Code != CodeModelExists {
		t.Errorf("duplicate POST = %d %s", resp.StatusCode, body)
	}

	// A built-in name conflicts too.
	resp, body = do(t, ts, http.MethodPost, "/v1/models", specJSON(t, countDoc("commit")))
	if resp.StatusCode != http.StatusConflict || envelope(t, body).Code != CodeModelExists {
		t.Errorf("built-in shadowing POST = %d %s", resp.StatusCode, body)
	}

	bad := countDoc("bad")
	bad.Rules[0].When[0].Component = "no-such-component"
	resp, body = do(t, ts, http.MethodPost, "/v1/models", specJSON(t, bad))
	if resp.StatusCode != http.StatusBadRequest || envelope(t, body).Code != CodeInvalidSpec {
		t.Fatalf("invalid spec POST = %d %s", resp.StatusCode, body)
	}
	if msg := envelope(t, body).Message; !strings.Contains(msg, "rules[0].when[0].component") {
		t.Errorf("invalid_spec message lacks the document path: %s", msg)
	}

	resp, body = do(t, ts, http.MethodPost, "/v1/models", []byte(`{"name": "x", not json`))
	if resp.StatusCode != http.StatusBadRequest || envelope(t, body).Code != CodeInvalidSpec {
		t.Errorf("malformed JSON POST = %d %s", resp.StatusCode, body)
	}
	resp, body = do(t, ts, http.MethodPost, "/v1/models", []byte(`{"name":"x","bogus_key":1}`))
	if resp.StatusCode != http.StatusBadRequest || envelope(t, body).Code != CodeInvalidSpec {
		t.Errorf("unknown-field POST = %d %s", resp.StatusCode, body)
	}
}

// TestServerRegistryIsolation: registrations on one server are invisible
// to a concurrently running server and to the process-wide default
// registry.
func TestServerRegistryIsolation(t *testing.T) {
	tsA, _ := isolatedServer(t)
	tsB, _ := isolatedServer(t)

	if resp, body := do(t, tsA, http.MethodPost, "/v1/models", specJSON(t, countDoc("only-a"))); resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST on A = %d %s", resp.StatusCode, body)
	}
	if resp, _ := do(t, tsA, http.MethodGet, "/v1/models/only-a", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("GET on A = %d, want 200", resp.StatusCode)
	}
	if resp, _ := do(t, tsB, http.MethodGet, "/v1/models/only-a", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET on B = %d, want 404", resp.StatusCode)
	}
	if _, err := models.Get("only-a"); err == nil {
		t.Error("registration leaked into the process-wide default registry")
	}

	// Deleting a built-in on A is A's business alone.
	if resp, _ := do(t, tsA, http.MethodDelete, "/v1/models/chord", nil); resp.StatusCode != http.StatusNoContent {
		t.Errorf("DELETE built-in on A = %d, want 204", resp.StatusCode)
	}
	if resp, _ := do(t, tsB, http.MethodGet, "/v1/models/chord", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("GET chord on B after A's delete = %d, want 200", resp.StatusCode)
	}
	if _, err := models.Get("chord"); err != nil {
		t.Errorf("built-in vanished from the default registry: %v", err)
	}
}

// TestConcurrentRegisterAndRender exercises the writable surface under
// the race detector: distinct models register and render concurrently
// while the listing endpoint reads the registry.
func TestConcurrentRegisterAndRender(t *testing.T) {
	ts, _ := isolatedServer(t)
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n*2)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("conc-%d", i)
			doc := countDoc(name)
			doc.DefaultParam = 2 + i
			resp, body := do(t, ts, http.MethodPost, "/v1/models", specJSON(t, doc))
			if resp.StatusCode != http.StatusCreated {
				errs <- fmt.Errorf("POST %s = %d %s", name, resp.StatusCode, body)
				return
			}
			resp, body = do(t, ts, http.MethodGet, "/v1/models/"+name+"/artifacts/text", nil)
			if resp.StatusCode != http.StatusOK || len(body) == 0 {
				errs <- fmt.Errorf("render %s = %d", name, resp.StatusCode)
			}
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := do(t, ts, http.MethodGet, "/v1/models", nil)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("concurrent listing = %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
