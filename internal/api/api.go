// Package api is the versioned HTTP wire surface of the generation
// service: the /v1 route family served by `fsmgen serve`, backed by the
// artefact pipeline. Artefacts are immutable per fingerprint, so
// responses carry a content-hash ETag and conditional requests are
// answered 304 without rendering. Failures are reported in a JSON error
// envelope:
//
//	{"error": {"code": "unknown_model", "message": "..."}}
//
// Every request is scoped to its own context: when the client disconnects
// mid-generation, the generation aborts promptly and leaves no cache
// entry (observable as a cancelled generation in /v1/stats).
//
// The model collection is writable: POST /v1/models registers a model
// from a declarative JSON spec and DELETE /v1/models/{model} unregisters
// one, purging its cached work. Registrations are scoped to the serving
// instance's registry — `fsmgen serve` hands every server its own clone —
// so concurrent servers never share mutable state.
//
// The pre-/v1 routes (/machine/{model}, /models, /formats, /stats) are
// kept as thin deprecated shims with their original status-code mapping;
// they answer with Deprecation and Link headers naming the successor
// route.
package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"asagen/internal/artifact"
	"asagen/internal/cluster"
	"asagen/internal/core"
	"asagen/internal/models"
	"asagen/internal/render"
	"asagen/internal/spec"
)

// Error codes carried in the JSON error envelope.
const (
	CodeUnknownModel      = "unknown_model"
	CodeUnknownFormat     = "unknown_format"
	CodeNoEFSM            = "no_efsm"
	CodeBadParameter      = "bad_parameter"
	CodeRenderFailed      = "render_failed"
	CodeNotFound          = "not_found"
	CodeMethodNotAllowed  = "method_not_allowed"
	CodeGenerationAborted = "generation_aborted"
	CodeModelExists       = "model_exists"
	CodeInvalidSpec       = "invalid_spec"
	CodeBadTrace          = "bad_trace"
	CodeTraceAborted      = "trace_aborted"
	CodeNotClustered      = "not_clustered"
	CodeBadClusterPayload = "bad_cluster_payload"
	CodeProxyFailed       = "proxy_failed"
)

// maxSpecBytes bounds the POST /v1/models request body; a model spec is a
// compact document, so anything beyond this is a caller mistake, not a
// bigger scenario.
const maxSpecBytes = 1 << 20

// Route documents one wire endpoint; the served mux and the generated
// API.md route table are both derived from the same list, so the document
// cannot drift from the implementation.
type Route struct {
	// Method and Pattern are the net/http mux pattern parts, e.g. "GET"
	// and "/v1/models/{model}".
	Method  string
	Pattern string
	// Summary is a one-line description for the route table.
	Summary string
	// Query documents accepted query parameters as "name: meaning".
	Query []string
	// SupersededBy names the /v1 successor when the route is a deprecated
	// legacy shim; empty for current routes.
	SupersededBy string

	handler http.HandlerFunc
}

// Handler serves the wire API over an artefact pipeline. Model names
// resolve against the pipeline's registry, so a server constructed over a
// cloned registry (as `fsmgen serve` always does) accepts dynamic model
// registrations without sharing mutable state with any other instance.
type Handler struct {
	p      *artifact.Pipeline
	reg    *models.Registry
	routes []Route
	mux    *http.ServeMux
	// cluster, when set, shards the artifact hot path across a node ring:
	// every render request is routed by its fingerprint key and either
	// served locally (owner or warm replica) or proxied to the owner.
	cluster     *cluster.Node
	proxyClient *http.Client
}

// HandlerOption configures a Handler.
type HandlerOption func(*Handler)

// WithCluster attaches a cluster node: artifact requests are routed over
// its hash ring and the /v1/cluster routes answer with live state
// instead of enabled=false.
func WithCluster(n *cluster.Node) HandlerOption {
	return func(h *Handler) { h.cluster = n }
}

// WithProxyClient substitutes the HTTP client used to proxy artifact
// requests to owning nodes (default: 10-second timeout).
func WithProxyClient(c *http.Client) HandlerOption {
	return func(h *Handler) {
		if c != nil {
			h.proxyClient = c
		}
	}
}

// NewHandler returns the HTTP handler serving the /v1 API and the legacy
// shims over the pipeline.
func NewHandler(p *artifact.Pipeline, opts ...HandlerOption) *Handler {
	h := &Handler{p: p, reg: p.Registry(), proxyClient: &http.Client{Timeout: 10 * time.Second}}
	for _, opt := range opts {
		opt(h)
	}
	h.routes = []Route{
		{
			Method:  "GET",
			Pattern: "/v1/models",
			Summary: "List registered models with their metadata.",
			handler: h.handleModels,
		},
		{
			Method:  "POST",
			Pattern: "/v1/models",
			Summary: "Register a model from a JSON spec; it is immediately generatable and renderable.",
			handler: h.handleRegisterModel,
		},
		{
			Method:  "GET",
			Pattern: "/v1/models/{model}",
			Summary: "Describe one registered model.",
			handler: h.handleModel,
		},
		{
			Method:  "PUT",
			Pattern: "/v1/models/{model}",
			Summary: "Register or replace a model in place; compatible edits regenerate cached machines incrementally.",
			handler: h.handleUpdateModel,
		},
		{
			Method:  "DELETE",
			Pattern: "/v1/models/{model}",
			Summary: "Unregister a model and purge its cached machines and artefacts.",
			handler: h.handleUnregisterModel,
		},
		{
			Method:  "GET",
			Pattern: "/v1/models/{model}/artifacts/{format}",
			Summary: "Generate and render one artefact; cancelling the request aborts the generation.",
			Query:   []string{"r: model parameter (default: the model's default)"},
			handler: h.handleArtifact,
		},
		{
			Method:  "POST",
			Pattern: "/v1/models/{model}/check",
			Summary: "Check a streamed trace against the model's machine; verdicts arrive as Server-Sent Events.",
			Query: []string{
				"r: model parameter (default: the model's default)",
				"format: trace encoding, `jsonl` (default) or `regex`",
				"tolerance: rejected deliveries absorbed before a violation (default 0)",
				"match: regex transition pattern `PATTERN` or `PATTERN=>TEMPLATE` (repeatable; implies format=regex)",
				"keep_going: `1`/`true` keeps checking past the first violation",
			},
			handler: h.handleCheck,
		},
		{
			Method:  "GET",
			Pattern: "/v1/formats",
			Summary: "List registered artefact formats.",
			handler: h.handleFormats,
		},
		{
			Method:  "GET",
			Pattern: "/v1/stats",
			Summary: "Report pipeline cache statistics, including cancelled generations.",
			handler: h.handleStats,
		},
		{
			Method:  "GET",
			Pattern: "/v1/cluster",
			Summary: "Report cluster membership, hash ring and routing-oracle status; standalone servers report enabled=false.",
			handler: h.handleClusterStatus,
		},
		{
			Method:  "POST",
			Pattern: "/v1/cluster/gossip",
			Summary: "Cluster-internal: merge a gossiped membership view; a push is answered with this node's own view.",
			handler: h.handleClusterGossip,
		},
		{
			Method:  "POST",
			Pattern: "/v1/cluster/artifacts",
			Summary: "Cluster-internal: ingest an artefact pushed by its owner, verified against its content sum.",
			handler: h.handleClusterIngest,
		},
		{
			Method:       "GET",
			Pattern:      "/machine/{model}",
			Summary:      "Legacy artefact endpoint.",
			Query:        []string{"format: artefact format (default text)", "r: model parameter"},
			SupersededBy: "/v1/models/{model}/artifacts/{format}",
			handler:      h.handleLegacyMachine,
		},
		{
			Method:       "GET",
			Pattern:      "/models",
			Summary:      "Legacy model listing.",
			SupersededBy: "/v1/models",
			handler:      h.handleModels,
		},
		{
			Method:       "GET",
			Pattern:      "/formats",
			Summary:      "Legacy format listing.",
			SupersededBy: "/v1/formats",
			handler:      h.handleFormats,
		},
		{
			Method:       "GET",
			Pattern:      "/stats",
			Summary:      "Legacy statistics endpoint.",
			SupersededBy: "/v1/stats",
			handler:      h.handleStats,
		},
	}
	h.mux = http.NewServeMux()
	byPattern := map[string][]Route{}
	var patterns []string
	for _, route := range h.routes {
		if _, seen := byPattern[route.Pattern]; !seen {
			patterns = append(patterns, route.Pattern)
		}
		byPattern[route.Pattern] = append(byPattern[route.Pattern], route)
	}
	for _, pattern := range patterns {
		h.mux.HandleFunc(pattern, methodDispatch(byPattern[pattern]))
	}
	// Unmatched paths get the JSON envelope rather than the mux's plain
	// text 404.
	h.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("no route %s %s; see API.md", r.Method, r.URL.Path))
	})
	return h
}

// Routes returns the route table the handler serves.
func (h *Handler) Routes() []Route {
	return append([]Route(nil), h.routes...)
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// methodDispatch selects among the routes sharing one pattern by request
// method (HEAD is served by the GET route), answering unsupported methods
// 405 with an Allow header and the JSON error envelope, and stamps
// deprecation headers on legacy shims.
func methodDispatch(routes []Route) http.HandlerFunc {
	var allowed []string
	for _, route := range routes {
		allowed = append(allowed, route.Method)
		if route.Method == http.MethodGet {
			allowed = append(allowed, http.MethodHead)
		}
	}
	allow := strings.Join(allowed, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		for _, route := range routes {
			if r.Method != route.Method && !(route.Method == http.MethodGet && r.Method == http.MethodHead) {
				continue
			}
			if route.SupersededBy != "" {
				w.Header().Set("Deprecation", "true")
				w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", route.SupersededBy))
			}
			route.handler(w, r)
			return
		}
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			fmt.Sprintf("method %s not allowed on %s (allow: %s)", r.Method, routes[0].Pattern, allow))
	}
}

// modelInfo is the wire representation of a registry entry.
type modelInfo struct {
	Name         string `json:"name"`
	Description  string `json:"description"`
	ParamName    string `json:"param_name"`
	DefaultParam int    `json:"default_param"`
	SweepParams  []int  `json:"sweep_params,omitempty"`
	HasEFSM      bool   `json:"has_efsm"`
	Vocabulary   string `json:"vocabulary,omitempty"`
}

func modelInfoFor(e models.Entry) modelInfo {
	return modelInfo{
		Name:         e.Name,
		Description:  e.Description,
		ParamName:    e.ParamName,
		DefaultParam: e.DefaultParam,
		SweepParams:  append([]int(nil), e.SweepParams...),
		HasEFSM:      e.EFSM != nil,
		Vocabulary:   e.Vocabulary,
	}
}

func (h *Handler) handleModels(w http.ResponseWriter, r *http.Request) {
	names := h.reg.Names()
	out := make([]modelInfo, 0, len(names))
	for _, name := range names {
		e, err := h.reg.Get(name)
		if err != nil {
			continue
		}
		out = append(out, modelInfoFor(e))
	}
	writeJSON(w, out)
}

func (h *Handler) handleModel(w http.ResponseWriter, r *http.Request) {
	e, err := h.reg.Get(r.PathValue("model"))
	if err != nil {
		writeError(w, http.StatusNotFound, CodeUnknownModel, err.Error())
		return
	}
	writeJSON(w, modelInfoFor(e))
}

// handleRegisterModel serves POST /v1/models: the body is a JSON model
// spec (see the spec package and the README's authoring section), decoded
// strictly and compiled; a valid spec registers on this server's registry
// and is immediately generatable and renderable. Malformed or invalid
// specs are caller mistakes (400, code invalid_spec, with the compile
// diagnostics in the message); a taken name is a conflict (409).
func (h *Handler) handleRegisterModel(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec,
			fmt.Sprintf("read spec body: %v", err))
		return
	}
	compiled, err := spec.ParseAndCompile(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err.Error())
		return
	}
	if err := h.reg.Add(compiled.Entry()); err != nil {
		if errors.Is(err, models.ErrExists) {
			writeError(w, http.StatusConflict, CodeModelExists, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err.Error())
		return
	}
	e, err := h.reg.Get(compiled.Name())
	if err != nil {
		// Registered and immediately removed by a concurrent DELETE; the
		// registration itself succeeded.
		e = compiled.Entry()
	}
	w.Header().Set("Location", "/v1/models/"+compiled.Name())
	writeJSONStatus(w, http.StatusCreated, modelInfoFor(e))
}

// handleUpdateModel serves PUT /v1/models/{model}: the body is a JSON
// model spec as for POST /v1/models, but the name may already be taken —
// the entry is replaced in place (200) or newly registered (201). The
// spec's name must match the path segment (400 otherwise). On
// replacement, stale EFSMs and rendered artefacts are purged; when the
// previous entry was also spec-defined and the edit preserves the
// declared structure, previously generated machines are kept and linked
// so the replacement's first generation regenerates incrementally from
// the cached exploration (spec.Diff → core.Regenerate) instead of
// exploring from scratch.
func (h *Handler) handleUpdateModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec,
			fmt.Sprintf("read spec body: %v", err))
		return
	}
	compiled, err := spec.ParseAndCompile(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err.Error())
		return
	}
	if compiled.Name() != name {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec,
			fmt.Sprintf("spec name %q does not match path model %q", compiled.Name(), name))
		return
	}
	delta := core.ModelDelta{Full: true}
	if old, err := h.reg.Get(name); err == nil {
		if oldDoc, ok := old.Spec.(spec.Doc); ok {
			delta = spec.Diff(oldDoc, compiled.Doc())
		}
	}
	replaced, err := h.p.UpdateModel(compiled.Entry(), delta)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err.Error())
		return
	}
	e, err := h.reg.Get(name)
	if err != nil {
		// Replaced and immediately removed by a concurrent DELETE; the
		// update itself succeeded.
		e = compiled.Entry()
	}
	w.Header().Set("Location", "/v1/models/"+name)
	status := http.StatusOK
	if !replaced {
		status = http.StatusCreated
	}
	writeJSONStatus(w, status, modelInfoFor(e))
}

// handleUnregisterModel serves DELETE /v1/models/{model}: the model is
// removed from this server's registry and its cached machines, EFSMs and
// rendered artefacts are purged, so re-registering the name never
// observes stale work.
func (h *Handler) handleUnregisterModel(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("model")
	if !h.reg.Remove(name) {
		writeError(w, http.StatusNotFound, CodeUnknownModel,
			fmt.Sprintf("models: unknown model %q (known: %v)", name, h.reg.Names()))
		return
	}
	h.p.PurgeModel(name)
	w.WriteHeader(http.StatusNoContent)
}

func (h *Handler) handleFormats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, render.Formats())
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, h.p.Stats())
}

// handleArtifact serves /v1/models/{model}/artifacts/{format}. Unknown
// models and formats are missing resources (404); parameter problems are
// caller mistakes (400).
func (h *Handler) handleArtifact(w http.ResponseWriter, r *http.Request) {
	h.renderArtifact(w, r, artifact.Request{
		Model:  r.PathValue("model"),
		Format: r.PathValue("format"),
	}, false)
}

// handleLegacyMachine serves the deprecated /machine/{model}?format=&r=
// shim with its original status mapping (unknown format was 400 there).
func (h *Handler) handleLegacyMachine(w http.ResponseWriter, r *http.Request) {
	req := artifact.Request{Model: r.PathValue("model"), Format: "text"}
	if f := r.URL.Query().Get("format"); f != "" {
		req.Format = f
	}
	h.renderArtifact(w, r, req, true)
}

func (h *Handler) renderArtifact(w http.ResponseWriter, r *http.Request, req artifact.Request, legacy bool) {
	if rs := r.URL.Query().Get("r"); rs != "" {
		param, err := strconv.Atoi(rs)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadParameter,
				fmt.Sprintf("bad parameter %q: %v", rs, err))
			return
		}
		req.Param = param
	}

	if h.cluster != nil && !legacy {
		h.serveClustered(w, r, req)
		return
	}

	res := h.p.Render(r.Context(), req)
	if res.Err != nil {
		h.writeRenderError(w, r, res.Err, legacy)
		return
	}
	h.writeArtifact(w, r, res, "")
}

// writeArtifact writes a successful render. relation, when non-empty, is
// the serving node's cluster role for the key (owner/replica), stamped
// with the node identity so clients and CI can see who answered.
func (h *Handler) writeArtifact(w http.ResponseWriter, r *http.Request, res artifact.Result, relation string) {
	// The validator, length and bytes were all precomputed at render time
	// (artifact.Result); a cache hit writes the memoised byte slice without
	// hashing, formatting or copying anything per request.
	header := w.Header()
	header.Set("ETag", res.ETag)
	header.Set("Cache-Control", "public, max-age=3600")
	header.Set("Vary", "Accept-Encoding")
	if !res.Fingerprint.IsZero() {
		header.Set("X-Machine-Fingerprint", res.Fingerprint.String())
	}
	if relation != "" {
		header.Set(HeaderNode, h.cluster.ID())
		header.Set(HeaderRoute, relation)
	}
	if ifNoneMatchHas(r.Header.Get("If-None-Match"), res.ETag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	header.Set("Content-Type", res.Artifact.MediaType)
	header.Set("Content-Length", res.ContentLength)
	w.Write(res.Artifact.Data)
}

// writeRenderError maps a pipeline error to a wire response. On the /v1
// surface unknown models and formats are path segments, hence 404; the
// legacy shim kept unknown formats at 400 because the format was a query
// parameter there.
func (h *Handler) writeRenderError(w http.ResponseWriter, r *http.Request, err error, legacy bool) {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		if r.Context().Err() != nil {
			// The client is gone (request-scoped cancellation); nothing
			// useful can be written. Close without a body.
			return
		}
		// This request is alive but shared work it waited on was aborted
		// (e.g. the generation's starter disconnected): tell the client to
		// retry rather than letting the server write an empty 200.
		writeError(w, http.StatusServiceUnavailable, CodeGenerationAborted, err.Error())
	case errors.Is(err, artifact.ErrUnknownModel):
		writeError(w, http.StatusNotFound, CodeUnknownModel, err.Error())
	case errors.Is(err, artifact.ErrUnknownFormat):
		status := http.StatusNotFound
		if legacy {
			status = http.StatusBadRequest
		}
		writeError(w, status, CodeUnknownFormat, err.Error())
	case errors.Is(err, artifact.ErrNoEFSM):
		writeError(w, http.StatusBadRequest, CodeNoEFSM, err.Error())
	case errors.Is(err, artifact.ErrRender):
		// A renderer failure on a well-formed request is a server defect,
		// not a caller mistake.
		writeError(w, http.StatusInternalServerError, CodeRenderFailed, err.Error())
	default:
		// Model construction rejected the parameter value.
		writeError(w, http.StatusBadRequest, CodeBadParameter, err.Error())
	}
}

// ifNoneMatchHas reports whether the If-None-Match header value names the
// ETag. Comparison is RFC 9110 weak comparison — a W/ prefix on either
// side is ignored — the wildcard `*` matches anything, and the list is
// walked without allocating.
func ifNoneMatchHas(header, etag string) bool {
	etag = strings.TrimPrefix(etag, "W/")
	for header != "" {
		var candidate string
		if i := strings.IndexByte(header, ','); i >= 0 {
			candidate, header = header[:i], header[i+1:]
		} else {
			candidate, header = header, ""
		}
		candidate = strings.TrimSpace(candidate)
		if candidate == "*" {
			return true
		}
		if strings.TrimPrefix(candidate, "W/") == etag {
			return true
		}
	}
	return false
}

// errorEnvelope is the wire error shape of the /v1 API.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// bufPool recycles the encode buffers behind every JSON response, so the
// serve path's envelope writes stop allocating a fresh buffer per request
// and every JSON response carries an exact Content-Length.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeJSONStatus encodes v through a pooled buffer and writes it with
// the given status (0 means 200 via the implicit WriteHeader).
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	buf := bufPool.Get().(*bytes.Buffer)
	defer bufPool.Put(buf)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	if status != 0 {
		w.WriteHeader(status)
	}
	w.Write(buf.Bytes())
}

func writeError(w http.ResponseWriter, status int, code, message string) {
	writeJSONStatus(w, status, errorEnvelope{Error: errorBody{Code: code, Message: message}})
}

func writeJSON(w http.ResponseWriter, v any) {
	writeJSONStatus(w, 0, v)
}
