package api

// Tests for PUT /v1/models/{model}: create-or-replace semantics, the
// name-match contract, and incremental regeneration of cached machines
// after a compatible edit.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestUpdateModelCreatesThenReplaces: PUT on an unknown name registers
// (201), a second PUT replaces in place (200), and the replacement is
// what renders afterwards.
func TestUpdateModelCreatesThenReplaces(t *testing.T) {
	ts, _ := isolatedServer(t)

	resp, body := do(t, ts, http.MethodPut, "/v1/models/steps", specJSON(t, countDoc("steps")))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("first PUT = %d %s", resp.StatusCode, body)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/models/steps" {
		t.Errorf("Location = %q", loc)
	}

	// Warm the cache so the replacement has something to regenerate from.
	resp, before := do(t, ts, http.MethodGet, "/v1/models/steps/artifacts/text", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm render = %d", resp.StatusCode)
	}

	// Rule-level edit: the STEP finish rule now emits an extra action.
	edited := countDoc("steps")
	edited.Rules[1].Actions = append(edited.Rules[1].Actions, "->notify")
	resp, body = do(t, ts, http.MethodPut, "/v1/models/steps", specJSON(t, edited))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replacing PUT = %d %s", resp.StatusCode, body)
	}

	resp, after := do(t, ts, http.MethodGet, "/v1/models/steps/artifacts/text", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("render after replace = %d", resp.StatusCode)
	}
	if after == before {
		t.Error("artefact unchanged after replacing the model")
	}
	if !strings.Contains(after, "->notify") {
		t.Errorf("replacement's action missing from the artefact:\n%.300s", after)
	}

	// The compatible edit regenerated incrementally, visible in stats.
	resp, body = do(t, ts, http.MethodGet, "/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d", resp.StatusCode)
	}
	var stats struct {
		Machine struct {
			Incremental int64
		}
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("stats body: %v\n%s", err, body)
	}
	if stats.Machine.Incremental != 1 {
		t.Errorf("Machine.Incremental = %d, want 1\n%s", stats.Machine.Incremental, body)
	}
}

// TestUpdateModelNameMismatch: the spec name must match the path segment.
func TestUpdateModelNameMismatch(t *testing.T) {
	ts, _ := isolatedServer(t)
	resp, body := do(t, ts, http.MethodPut, "/v1/models/other", specJSON(t, countDoc("steps")))
	if resp.StatusCode != http.StatusBadRequest || envelope(t, body).Code != CodeInvalidSpec {
		t.Fatalf("mismatched PUT = %d %s", resp.StatusCode, body)
	}
	if msg := envelope(t, body).Message; !strings.Contains(msg, "does not match") {
		t.Errorf("mismatch message: %s", msg)
	}
}

// TestUpdateModelInvalidSpec: validation failures are reported like POST.
func TestUpdateModelInvalidSpec(t *testing.T) {
	ts, _ := isolatedServer(t)
	bad := countDoc("bad")
	bad.Rules[0].When[0].Component = "no-such-component"
	resp, body := do(t, ts, http.MethodPut, "/v1/models/bad", specJSON(t, bad))
	if resp.StatusCode != http.StatusBadRequest || envelope(t, body).Code != CodeInvalidSpec {
		t.Fatalf("invalid PUT = %d %s", resp.StatusCode, body)
	}
	resp, body = do(t, ts, http.MethodPut, "/v1/models/x", []byte(`{"name": "x", not json`))
	if resp.StatusCode != http.StatusBadRequest || envelope(t, body).Code != CodeInvalidSpec {
		t.Errorf("malformed PUT = %d %s", resp.StatusCode, body)
	}
}

// TestUpdateModelReplacesBuiltIn: unlike POST (409 on an existing name),
// PUT may replace a built-in registration on this server instance.
func TestUpdateModelReplacesBuiltIn(t *testing.T) {
	ts, _ := isolatedServer(t)
	resp, body := do(t, ts, http.MethodPut, "/v1/models/commit", specJSON(t, countDoc("commit")))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT over built-in = %d %s", resp.StatusCode, body)
	}
	resp, body = do(t, ts, http.MethodGet, "/v1/models/commit/artifacts/text", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "STEP") {
		t.Errorf("replaced built-in render = %d\n%.200s", resp.StatusCode, body)
	}
}
