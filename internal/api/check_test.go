package api

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"asagen/internal/artifact"
	"asagen/internal/trace"
)

// conformingTrace finishes one commit member at r=4 (vote threshold 3 is
// met by two received votes plus the member's own, commit threshold 2).
const conformingTrace = `{"msg":"FREE"}
"UPDATE"
"VOTE"
"VOTE"
"COMMIT"
"COMMIT"
`

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// parseSSE splits a complete event-stream body into events.
func parseSSE(t *testing.T, body string) []sseEvent {
	t.Helper()
	var events []sseEvent
	for _, block := range strings.Split(strings.TrimSuffix(body, "\n\n"), "\n\n") {
		lines := strings.Split(block, "\n")
		if len(lines) != 2 || !strings.HasPrefix(lines[0], "event: ") || !strings.HasPrefix(lines[1], "data: ") {
			t.Fatalf("malformed SSE block %q", block)
		}
		events = append(events, sseEvent{
			name: strings.TrimPrefix(lines[0], "event: "),
			data: strings.TrimPrefix(lines[1], "data: "),
		})
	}
	return events
}

func postCheck(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/jsonl", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(raw)
}

func TestCheckRouteConformingStream(t *testing.T) {
	ts := httptest.NewServer(NewHandler(artifact.New()))
	defer ts.Close()

	resp, body := postCheck(t, ts, "/v1/models/commit/check?r=4", conformingTrace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control = %q", cc)
	}
	events := parseSSE(t, body)
	var names []string
	for _, ev := range events {
		names = append(names, ev.name)
	}
	want := []string{"accepted", "accepted", "accepted", "accepted", "accepted",
		"accepted", "finished", "summary"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("event names = %v, want %v", names, want)
	}
	last := events[len(events)-1]
	var summary struct {
		Kind  string `json:"kind"`
		Stats struct {
			Lines      int    `json:"lines"`
			Accepted   int    `json:"accepted"`
			Violations int    `json:"violations"`
			Finished   bool   `json:"finished"`
			FinalState string `json:"final_state"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(last.data), &summary); err != nil {
		t.Fatalf("summary data %q: %v", last.data, err)
	}
	st := summary.Stats
	if st.Lines != 6 || st.Accepted != 6 || st.Violations != 0 || !st.Finished || st.FinalState == "" {
		t.Errorf("summary stats = %+v", st)
	}
}

// TestCheckRouteVerdictBytesMatchMonitor pins the cross-surface contract:
// the SSE data payloads are byte-identical to the canonical verdict JSON
// the trace layer produces directly (and hence to `fsmgen check -json`
// and the SDK iterator, which share the same encoder).
func TestCheckRouteVerdictBytesMatchMonitor(t *testing.T) {
	p := artifact.New()
	ts := httptest.NewServer(NewHandler(p))
	defer ts.Close()

	traceBody := "\"FREE\"\n\"UPDATE\"\n\"NOPE\"\n\"NOPE\"\n" // one tolerated rejection, then a violation
	_, body := postCheck(t, ts, "/v1/models/commit/check?r=4&tolerance=1", traceBody)
	events := parseSSE(t, body)

	machine, _, _, err := p.Machine(context.Background(), "commit", 4)
	if err != nil {
		t.Fatal(err)
	}
	var wantData []string
	mon, err := trace.NewMonitor(
		trace.WithTarget("", machine),
		trace.WithTolerance(1),
		trace.WithObserver(trace.ObserverFunc(func(v trace.Verdict) bool {
			wantData = append(wantData, string(v.AppendJSON(nil)))
			return true
		})),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mon.Run(context.Background(), trace.NewJSONLDecoder(strings.NewReader(traceBody)))
	if err != nil {
		t.Fatal(err)
	}
	wantData = append(wantData, string(trace.Terminal(rep, nil).AppendJSON(nil)))

	if len(events) != len(wantData) {
		t.Fatalf("got %d events, want %d", len(events), len(wantData))
	}
	for i, ev := range events {
		if ev.data != wantData[i] {
			t.Errorf("event %d data = %s\nwant       %s", i, ev.data, wantData[i])
		}
	}
}

func TestCheckRouteMalformedTrace(t *testing.T) {
	ts := httptest.NewServer(NewHandler(artifact.New()))
	defer ts.Close()

	resp, body := postCheck(t, ts, "/v1/models/commit/check?r=4", "\"UPDATE\"\n{broken\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (the stream had already started)", resp.StatusCode)
	}
	events := parseSSE(t, body)
	last := events[len(events)-1]
	if last.name != "error" {
		t.Fatalf("terminal event = %q, want error; body %q", last.name, body)
	}
	var envelope struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal([]byte(last.data), &envelope); err != nil {
		t.Fatalf("error data %q: %v", last.data, err)
	}
	if envelope.Error.Code != CodeBadTrace || !strings.Contains(envelope.Error.Message, "line 2") {
		t.Errorf("error envelope = %+v", envelope.Error)
	}
	// The conforming prefix was still judged before the failure.
	if events[0].name != "accepted" {
		t.Errorf("first event = %q, want accepted", events[0].name)
	}
}

func TestCheckRouteRegexFormat(t *testing.T) {
	ts := httptest.NewServer(NewHandler(artifact.New()))
	defer ts.Close()

	trace := "12:01 recv FREE\nplain noise line\n12:02 recv UPDATE\n"
	resp, body := postCheck(t, ts, "/v1/models/commit/check?r=4&format=regex", trace)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	events := parseSSE(t, body)
	var names []string
	for _, ev := range events {
		names = append(names, ev.name)
	}
	if strings.Join(names, ",") != "accepted,skipped,accepted,summary" {
		t.Fatalf("event names = %v", names)
	}

	// A custom match pattern implies the regex format.
	q := url.Values{"r": {"4"}, "match": {`recv ([A-Z_]+)`}}
	resp, body = postCheck(t, ts, "/v1/models/commit/check?"+q.Encode(), "ignored recv FREE\n")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if events := parseSSE(t, body); events[0].name != "accepted" {
		t.Errorf("events = %+v", events)
	}
}

func TestCheckRoutePreflightErrors(t *testing.T) {
	ts := httptest.NewServer(NewHandler(artifact.New()))
	defer ts.Close()

	for _, tc := range []struct {
		path   string
		status int
		code   string
	}{
		{"/v1/models/nonsense/check", http.StatusNotFound, CodeUnknownModel},
		{"/v1/models/commit/check?r=banana", http.StatusBadRequest, CodeBadParameter},
		{"/v1/models/commit/check?tolerance=-1", http.StatusBadRequest, CodeBadParameter},
		{"/v1/models/commit/check?keep_going=maybe", http.StatusBadRequest, CodeBadParameter},
		{"/v1/models/commit/check?format=xml", http.StatusBadRequest, CodeBadTrace},
		{"/v1/models/commit/check?match=%28broken", http.StatusBadRequest, CodeBadTrace},
	} {
		resp, body := postCheck(t, ts, tc.path, "\"UPDATE\"\n")
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d (body %s)", tc.path, resp.StatusCode, tc.status, body)
			continue
		}
		var envelope struct {
			Error struct {
				Code string `json:"code"`
			} `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &envelope); err != nil {
			t.Errorf("%s: body %q not an error envelope: %v", tc.path, body, err)
			continue
		}
		if envelope.Error.Code != tc.code {
			t.Errorf("%s: code = %q, want %q", tc.path, envelope.Error.Code, tc.code)
		}
	}

	// GET is not served on the check route.
	resp, err := http.Get(ts.URL + "/v1/models/commit/check")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}
}

// TestCheckRouteClientDisconnect pins request-scoped cancellation: when
// the client goes away mid-stream, the handler notices and returns
// instead of blocking on the half-open trace body.
func TestCheckRouteClientDisconnect(t *testing.T) {
	handlerDone := make(chan struct{})
	inner := NewHandler(artifact.New())
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer close(handlerDone)
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/models/commit/check?r=4", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Feed one event, read its verdict back, then vanish mid-stream.
	if _, err := io.WriteString(pw, "\"UPDATE\"\n"); err != nil {
		t.Fatal(err)
	}
	firstEvent := make([]byte, 1)
	if _, err := io.ReadFull(resp.Body, firstEvent); err != nil {
		t.Fatal(err)
	}
	cancel()

	select {
	case <-handlerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("handler still running 5s after client disconnect")
	}
	pw.Close()
}
