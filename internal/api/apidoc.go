package api

import (
	"fmt"
	"strings"
)

// Markdown renders the route table as the API.md document checked into
// the repository root. The document is generated from the same Route list
// the handler serves, and a test fails when the checked-in file drifts
// (regenerate with `go test ./internal/api -run TestAPIDocument -update`).
func (h *Handler) Markdown() string {
	var b strings.Builder
	b.WriteString("# asagen wire API\n\n")
	b.WriteString("<!-- Generated from internal/api; do not edit by hand.\n")
	b.WriteString("     Regenerate: go test ./internal/api -run TestAPIDocument -update -->\n\n")
	b.WriteString("The HTTP generation service started by `fsmgen serve`. Methods not\n")
	b.WriteString("listed for a path are answered `405` with an `Allow` header.\n")
	b.WriteString("Artefact responses carry a content-hash `ETag`, `Cache-Control` and\n")
	b.WriteString("`Vary` headers, and revalidate via `If-None-Match` to `304`. Closing\n")
	b.WriteString("the connection mid-request cancels the generation server-side (the\n")
	b.WriteString("abort is visible as `cancellations` in `/v1/stats`).\n\n")
	b.WriteString("The model collection is writable: `POST /v1/models` accepts a\n")
	b.WriteString("declarative JSON model spec (see the \"Authoring your own model\"\n")
	b.WriteString("section of README.md) and registers it for immediate generation and\n")
	b.WriteString("rendering; `DELETE /v1/models/{model}` unregisters a model and purges\n")
	b.WriteString("its cached machines and artefacts. Registrations are scoped to the\n")
	b.WriteString("serving instance — concurrent servers never share mutable state.\n\n")
	b.WriteString("`PUT /v1/models/{model}` registers (`201`) or replaces (`200`) a model\n")
	b.WriteString("in place; the spec's `name` must match the path segment. Replacing a\n")
	b.WriteString("spec-defined model with an edit that keeps its components, messages\n")
	b.WriteString("and start state intact does not discard the cached machines: the edit\n")
	b.WriteString("is diffed rule-by-rule and the next artefact request regenerates each\n")
	b.WriteString("affected machine incrementally from its cached exploration (visible\n")
	b.WriteString("as `Incremental` in `/v1/stats`). Structural edits fall back to full\n")
	b.WriteString("regeneration transparently.\n\n")

	b.WriteString("## Versioned routes (`/v1`)\n\n")
	b.WriteString("| Method | Path | Query | Description |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, r := range h.routes {
		if r.SupersededBy != "" {
			continue
		}
		fmt.Fprintf(&b, "| %s | `%s` | %s | %s |\n",
			r.Method, r.Pattern, queryCell(r.Query), r.Summary)
	}

	b.WriteString("\n## Trace conformance stream\n\n")
	b.WriteString("`POST /v1/models/{model}/check` checks the request body — a trace,\n")
	b.WriteString("one event per line — against the model's generated machine and\n")
	b.WriteString("answers with a Server-Sent Events stream (`text/event-stream`), one\n")
	b.WriteString("event per verdict. The trace is judged at line rate as it arrives:\n")
	b.WriteString("neither side buffers the whole trace, so arbitrarily long streams\n")
	b.WriteString("check in bounded memory, and closing the request cancels the run\n")
	b.WriteString("server-side. Each event's name is the verdict kind and its `data`\n")
	b.WriteString("line is the canonical verdict JSON — byte-identical to the output of\n")
	b.WriteString("`fsmgen check -json` and the SDK's `Client.Check` for the same trace:\n\n")
	b.WriteString("```\nevent: accepted\ndata: {\"line\":3,\"event\":\"VOTE\",\"kind\":\"accepted\",\"state\":\"T/1/T/0/F/F/F\",\"actions\":[\"->vote\"]}\n```\n\n")
	b.WriteString("Verdict fields (omitted when empty): `line` (1-based trace line),\n")
	b.WriteString("`target` (machine label, only when checking several), `event`\n")
	b.WriteString("(delivered message), `kind`, `state` (machine state after the\n")
	b.WriteString("delivery), `actions` (performed by an accepted delivery), `detail`\n")
	b.WriteString("(rejection, skip or decode-failure reason), `stats` (summary only).\n\n")
	b.WriteString("| Kind | Meaning |\n")
	b.WriteString("|---|---|\n")
	b.WriteString("| `accepted` | the machine consumed the message; a transition fired |\n")
	b.WriteString("| `ignored` | rejected delivery absorbed by the `tolerance` budget |\n")
	b.WriteString("| `skipped` | no transition pattern matched the line (`regex` format) |\n")
	b.WriteString("| `finished` | the machine reached its finish state |\n")
	b.WriteString("| `violation` | rejected delivery with the budget exhausted — the trace does not conform |\n")
	b.WriteString("| `summary` | terminal event of a completed run; `stats` carries line/event/verdict counts, `first_violation` and `final_state` |\n\n")
	b.WriteString("Every stream ends with exactly one terminal event: `summary` (run\n")
	b.WriteString("completed — conforming when `stats.violations` is 0), or `error`\n")
	b.WriteString("whose data is the standard error envelope (`bad_trace` for\n")
	b.WriteString("undecodable input, `trace_aborted` for a failed trace read).\n")
	b.WriteString("Preflight failures — unknown model, bad parameter, bad pattern —\n")
	b.WriteString("are ordinary JSON-envelope responses; the event stream never starts.\n")

	b.WriteString("\n## Cluster tier\n\n")
	b.WriteString("A server started with `-cluster` joins a peer ring (see DESIGN.md,\n")
	b.WriteString("\"Cluster tier\"): artifact requests shard across nodes by consistent\n")
	b.WriteString("hashing on the machine fingerprint, and `GET /v1/cluster` reports the\n")
	b.WriteString("gossiped membership view, the hash ring and the chord routing-oracle\n")
	b.WriteString("state (a standalone server answers `{\"enabled\": false}`). Clustered\n")
	b.WriteString("artefact responses carry `X-Asagen-Node` (the node whose pipeline\n")
	b.WriteString("produced the bytes) and `X-Asagen-Route` (`owner`, `replica` or\n")
	b.WriteString("`proxied`); a proxied response adds `X-Asagen-Proxied-By`. The\n")
	b.WriteString("`/v1/cluster/gossip` and `/v1/cluster/artifacts` routes are the\n")
	b.WriteString("cluster-internal transport — peers exchange membership views and push\n")
	b.WriteString("rendered artefacts to replicas through them; they answer\n")
	b.WriteString("`not_clustered` on standalone servers.\n")

	b.WriteString("\n## Error envelope\n\n")
	b.WriteString("Failures are reported as JSON:\n\n")
	b.WriteString("```json\n{\"error\": {\"code\": \"unknown_model\", \"message\": \"...\"}}\n```\n\n")
	b.WriteString("| Code | Status | Meaning |\n")
	b.WriteString("|---|---|---|\n")
	b.WriteString("| `unknown_model` | 404 | model name absent from the registry |\n")
	b.WriteString("| `unknown_format` | 404 (400 on the legacy shim) | format name absent from the registry |\n")
	b.WriteString("| `no_efsm` | 400 | EFSM format requested for a model without an EFSM generalisation |\n")
	b.WriteString("| `bad_parameter` | 400 | unparsable or model-rejected parameter value |\n")
	b.WriteString("| `render_failed` | 500 | renderer failure on a well-formed request |\n")
	b.WriteString("| `generation_aborted` | 503 | shared in-flight generation aborted by another request's disconnect; retry |\n")
	b.WriteString("| `invalid_spec` | 400 | model spec rejected; the message lists every diagnostic with its document path |\n")
	b.WriteString("| `model_exists` | 409 | spec name already registered; unregister it first to replace |\n")
	b.WriteString("| `bad_trace` | 400 (or in-stream `error` event) | bad trace format/pattern, or undecodable trace content |\n")
	b.WriteString("| `trace_aborted` | in-stream `error` event | trace body read failed mid-check |\n")
	b.WriteString("| `not_clustered` | 404 | cluster-internal route on a server not started with `-cluster` |\n")
	b.WriteString("| `bad_cluster_payload` | 400 | undecodable gossip view or propagation blob, or a blob failing content verification |\n")
	b.WriteString("| `proxy_failed` | 502 | the key's owning node was unreachable while proxying; retry after the next gossip round |\n")
	b.WriteString("| `not_found` | 404 | no such route |\n")
	b.WriteString("| `method_not_allowed` | 405 | method not served on the path; see the `Allow` header |\n")

	b.WriteString("\n## Deprecated routes\n\n")
	b.WriteString("Kept as thin shims; each answers with `Deprecation: true` and a\n")
	b.WriteString("`Link: <successor>; rel=\"successor-version\"` header.\n\n")
	b.WriteString("| Method | Path | Query | Successor |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, r := range h.routes {
		if r.SupersededBy == "" {
			continue
		}
		fmt.Fprintf(&b, "| %s | `%s` | %s | `%s` |\n",
			r.Method, r.Pattern, queryCell(r.Query), r.SupersededBy)
	}
	return b.String()
}

func queryCell(query []string) string {
	if len(query) == 0 {
		return "—"
	}
	return "`" + strings.Join(query, "`; `") + "`"
}
