package api

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"asagen/internal/artifact"
	"asagen/internal/core"
	"asagen/internal/models"
	"asagen/internal/render"
)

// slowModel is a linear chain whose Apply sleeps, so an HTTP-triggered
// generation is reliably in flight when a test disconnects the client.
type slowModel struct {
	states int
	delay  time.Duration
}

func (m *slowModel) Name() string   { return "api-slow" }
func (m *slowModel) Parameter() int { return m.states }
func (m *slowModel) Components() []core.StateComponent {
	return []core.StateComponent{core.NewIntComponent("i", m.states)}
}
func (m *slowModel) Messages() []string { return []string{"next"} }
func (m *slowModel) Start() core.Vector { return core.Vector{0} }

func (m *slowModel) Apply(v core.Vector, msg string) (core.Effect, bool) {
	if msg != "next" {
		return core.Effect{}, false
	}
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	if v[0] == m.states {
		return core.Effect{Finished: true}, true
	}
	return core.Effect{Target: core.Vector{v[0] + 1}}, true
}

func (m *slowModel) DescribeState(core.Vector) []string { return nil }

func init() {
	models.Register(models.Entry{
		Name:         "api-slow",
		Description:  "synthetic slow-generation model for disconnect tests",
		ParamName:    "chain length",
		DefaultParam: 8,
		Build: func(states int) (core.Model, error) {
			return &slowModel{states: states, delay: 100 * time.Microsecond}, nil
		},
	})
}

func get(t *testing.T, ts *httptest.Server, path string, header http.Header) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// envelope decodes the JSON error envelope of a failure response.
func envelope(t *testing.T, body string) errorBody {
	t.Helper()
	var env errorEnvelope
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("response is not an error envelope: %v (%q)", err, body)
	}
	return env.Error
}

func TestV1ArtifactEndpoint(t *testing.T) {
	p := artifact.New()
	ts := httptest.NewServer(NewHandler(p))
	defer ts.Close()

	resp, body := get(t, ts, "/v1/models/commit/artifacts/dot?r=4", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if !strings.HasPrefix(body, "digraph") {
		t.Errorf("body is not a DOT document: %.40s", body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "graphviz") {
		t.Errorf("Content-Type = %q", ct)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" || resp.Header.Get("X-Machine-Fingerprint") == "" {
		t.Error("missing ETag or fingerprint header")
	}
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "max-age") {
		t.Errorf("Cache-Control = %q", cc)
	}
	if vary := resp.Header.Get("Vary"); vary != "Accept-Encoding" {
		t.Errorf("Vary = %q, want Accept-Encoding on cacheable responses", vary)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Error("current /v1 route carries a Deprecation header")
	}

	// Conditional revalidation answers 304 from the fingerprint-derived
	// validator without a body.
	resp2, body2 := get(t, ts, "/v1/models/commit/artifacts/dot?r=4",
		http.Header{"If-None-Match": []string{etag}})
	if resp2.StatusCode != http.StatusNotModified {
		t.Errorf("revalidation status = %d, want 304", resp2.StatusCode)
	}
	if body2 != "" {
		t.Errorf("304 carried a body (%d bytes)", len(body2))
	}
}

func TestV1ModelEndpoints(t *testing.T) {
	ts := httptest.NewServer(NewHandler(artifact.New()))
	defer ts.Close()

	resp, body := get(t, ts, "/v1/models", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("models status = %d", resp.StatusCode)
	}
	for _, want := range []string{"chord", "commit", "consensus", "storage", "termination",
		"replication factor", "successor-list length", "sweep_params"} {
		if !strings.Contains(body, want) {
			t.Errorf("/v1/models missing %q", want)
		}
	}
	var listed []modelInfo
	if err := json.Unmarshal([]byte(body), &listed); err != nil {
		t.Fatalf("models JSON: %v", err)
	}
	if len(listed) < 6 {
		t.Errorf("/v1/models lists %d models, want >= 6", len(listed))
	}

	// The scenario models serve artefacts with parameterized redundancy.
	for _, path := range []string{
		"/v1/models/chord/artifacts/text?r=3",
		"/v1/models/chord/artifacts/efsm",
		"/v1/models/storage/artifacts/dot?r=7",
		"/v1/models/storage/artifacts/efsm-dot",
	} {
		resp, body := get(t, ts, path, nil)
		if resp.StatusCode != http.StatusOK || body == "" {
			t.Errorf("GET %s = %d (%d bytes), want 200 with content", path, resp.StatusCode, len(body))
		}
	}

	resp, body = get(t, ts, "/v1/models/termination", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model status = %d", resp.StatusCode)
	}
	var info modelInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("model JSON: %v", err)
	}
	if info.Name != "termination" || info.ParamName != "fan-out bound" || !info.HasEFSM {
		t.Errorf("model info = %+v", info)
	}

	resp, body = get(t, ts, "/v1/formats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("formats status = %d", resp.StatusCode)
	}
	var formats []string
	if err := json.Unmarshal([]byte(body), &formats); err != nil {
		t.Fatalf("formats JSON: %v", err)
	}
	if len(formats) != 7 {
		t.Errorf("formats = %v, want 7 entries", formats)
	}
}

func TestErrorEnvelope(t *testing.T) {
	ts := httptest.NewServer(NewHandler(artifact.New()))
	defer ts.Close()
	tests := []struct {
		path     string
		want     int
		wantCode string
	}{
		{"/v1/models/nonsense", http.StatusNotFound, CodeUnknownModel},
		{"/v1/models/nonsense/artifacts/text", http.StatusNotFound, CodeUnknownModel},
		{"/v1/models/commit/artifacts/nonsense", http.StatusNotFound, CodeUnknownFormat},
		{"/v1/models/commit/artifacts/text?r=notanumber", http.StatusBadRequest, CodeBadParameter},
		{"/v1/models/commit/artifacts/text?r=3", http.StatusBadRequest, CodeBadParameter},
		{"/nonsense", http.StatusNotFound, CodeNotFound},
		// Legacy shim statuses are preserved: unknown format was 400.
		{"/machine/nonsense", http.StatusNotFound, CodeUnknownModel},
		{"/machine/commit?format=nonsense", http.StatusBadRequest, CodeUnknownFormat},
		{"/machine/commit?r=notanumber", http.StatusBadRequest, CodeBadParameter},
		{"/machine/commit?r=3", http.StatusBadRequest, CodeBadParameter},
	}
	for _, tt := range tests {
		resp, body := get(t, ts, tt.path, nil)
		if resp.StatusCode != tt.want {
			t.Errorf("GET %s = %d, want %d", tt.path, resp.StatusCode, tt.want)
			continue
		}
		if code := envelope(t, body).Code; code != tt.wantCode {
			t.Errorf("GET %s code = %q, want %q", tt.path, code, tt.wantCode)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := httptest.NewServer(NewHandler(artifact.New()))
	defer ts.Close()
	tests := []struct {
		path      string
		wantAllow string
	}{
		{"/v1/models/commit/artifacts/text", "GET, HEAD"},
		{"/v1/stats", "GET, HEAD"},
		{"/models", "GET, HEAD"},
	}
	for _, tt := range tests {
		req, err := http.NewRequest(http.MethodPost, ts.URL+tt.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", tt.path, resp.StatusCode)
			continue
		}
		if allow := resp.Header.Get("Allow"); allow != tt.wantAllow {
			t.Errorf("POST %s Allow = %q, want %q", tt.path, allow, tt.wantAllow)
		}
		if code := envelope(t, string(body)).Code; code != CodeMethodNotAllowed {
			t.Errorf("POST %s code = %q", tt.path, code)
		}
	}

	// Multi-method patterns advertise every served method.
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/models", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT /v1/models = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET, HEAD, POST" {
		t.Errorf("PUT /v1/models Allow = %q, want \"GET, HEAD, POST\"", allow)
	}
}

func TestLegacyShimsDeprecatedButByteIdentical(t *testing.T) {
	ts := httptest.NewServer(NewHandler(artifact.New()))
	defer ts.Close()

	// Every registry (model × format) pair must render byte-identically
	// through the /v1 route and the legacy shim.
	for _, name := range models.Names() {
		entry, err := models.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if name == "api-slow" {
			continue // synthetic cancellation fixture; large default chain
		}
		for _, format := range render.Formats() {
			if render.IsEFSMFormat(format) && entry.EFSM == nil {
				continue
			}
			v1Path := fmt.Sprintf("/v1/models/%s/artifacts/%s", name, format)
			legacyPath := fmt.Sprintf("/machine/%s?format=%s", name, format)
			v1Resp, v1Body := get(t, ts, v1Path, nil)
			legacyResp, legacyBody := get(t, ts, legacyPath, nil)
			if v1Resp.StatusCode != http.StatusOK || legacyResp.StatusCode != http.StatusOK {
				t.Fatalf("%s/%s: status v1=%d legacy=%d", name, format, v1Resp.StatusCode, legacyResp.StatusCode)
			}
			if v1Body != legacyBody {
				t.Errorf("%s/%s: /v1 and legacy artefacts differ (%d vs %d bytes)",
					name, format, len(v1Body), len(legacyBody))
			}
			if v1Resp.Header.Get("ETag") != legacyResp.Header.Get("ETag") {
				t.Errorf("%s/%s: ETag differs between /v1 and legacy", name, format)
			}
			if legacyResp.Header.Get("Deprecation") != "true" {
				t.Errorf("%s/%s: legacy response missing Deprecation header", name, format)
			}
			if link := legacyResp.Header.Get("Link"); !strings.Contains(link, "successor-version") {
				t.Errorf("%s/%s: legacy Link = %q", name, format, link)
			}
		}
	}
}

// TestConcurrentSingleGeneration is the serve-mode acceptance check:
// concurrent requests across formats and repeats of one model cost at most
// one generation per distinct model fingerprint, observed via /v1/stats.
func TestConcurrentSingleGeneration(t *testing.T) {
	p := artifact.New()
	ts := httptest.NewServer(NewHandler(p))
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		for _, format := range []string{"text", "dot", "xml", "go", "doc"} {
			wg.Add(1)
			go func(format string) {
				defer wg.Done()
				resp, body := get(t, ts, "/v1/models/consensus/artifacts/"+format+"?r=5", nil)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: status %d: %s", format, resp.StatusCode, body)
				}
			}(format)
		}
	}
	wg.Wait()

	resp, body := get(t, ts, "/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var got artifact.Stats
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("stats JSON: %v", err)
	}
	if got.Machine.Generations != 1 {
		t.Errorf("reported generations = %d, want 1 for one distinct fingerprint", got.Machine.Generations)
	}
}

// TestEquivalentParamsShareOneGeneration: distinct requests that resolve
// to the same fingerprint (the default parameter given explicitly and
// implicitly) share one cache entry.
func TestEquivalentParamsShareOneGeneration(t *testing.T) {
	p := artifact.New()
	ts := httptest.NewServer(NewHandler(p))
	defer ts.Close()
	for _, path := range []string{
		"/v1/models/termination/artifacts/text",
		"/v1/models/termination/artifacts/text?r=4",
		"/machine/termination?format=text&r=4",
	} {
		if resp, body := get(t, ts, path, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d %s", path, resp.StatusCode, body)
		}
	}
	if st := p.Stats(); st.Machine.Generations != 1 {
		t.Errorf("generations = %d, want 1", st.Machine.Generations)
	}
}

// TestClientDisconnectAbortsGeneration is the /v1 cancellation acceptance
// check: a client that disconnects mid-generation aborts the generation
// server-side — /v1/stats reports a cancellation and no completed
// generation, and the cache holds no entry for the aborted fingerprint.
func TestClientDisconnectAbortsGeneration(t *testing.T) {
	p := artifact.New(artifact.WithGenerateOptions(core.WithoutMerging(), core.WithoutDescriptions()))
	ts := httptest.NewServer(NewHandler(p))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/v1/models/api-slow/artifacts/text?r=5000", nil)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := ts.Client().Do(req)
		errc <- err
	}()

	// Wait until the generation is in flight, then drop the client.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Machine.Misses < 1 {
		if time.Now().After(deadline) {
			t.Fatal("generation did not start within 5s")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("disconnected request reported no error")
	}

	// The server-side abort is observable in the stats shortly after.
	deadline = time.Now().Add(5 * time.Second)
	for p.Stats().Machine.Cancellations < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no cancellation recorded; stats = %+v", p.Stats().Machine)
		}
		time.Sleep(time.Millisecond)
	}
	st := p.Stats().Machine
	if st.Generations != 0 {
		t.Errorf("generations = %d, want 0 (aborted run must not count)", st.Generations)
	}
	if st.Entries != 0 {
		t.Errorf("cache entries = %d, want 0 after the aborted generation", st.Entries)
	}
}

func TestStatsEndpointReportsCancellationsField(t *testing.T) {
	ts := httptest.NewServer(NewHandler(artifact.New()))
	defer ts.Close()
	resp, body := get(t, ts, "/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	if !strings.Contains(body, "Cancellations") {
		t.Errorf("/v1/stats missing the Cancellations counter: %s", body)
	}
}
