package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"asagen/internal/artifact"
	"asagen/internal/cluster"
	"asagen/internal/models"
	"asagen/internal/store"
)

func TestClusterStatusStandalone(t *testing.T) {
	ts := httptest.NewServer(NewHandler(artifact.New()))
	defer ts.Close()
	resp, body := get(t, ts, "/v1/cluster", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/cluster = %s", resp.Status)
	}
	var rep struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Enabled {
		t.Fatal("standalone server reports enabled cluster")
	}
	// The cluster-internal routes refuse to exist without -cluster.
	presp, err := http.Post(ts.URL+"/v1/cluster/gossip", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if presp.StatusCode != http.StatusNotFound {
		t.Fatalf("standalone gossip route = %s, want 404 not_clustered", presp.Status)
	}
}

// startClusterNode boots one clustered handler on an httptest server:
// the server is created first (its URL is the node identity), then the
// cluster node is attached to the already-serving handler.
func startClusterNode(t *testing.T, id string, peer func() string) (*httptest.Server, *cluster.Node) {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), id))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	p := artifact.New(artifact.WithRegistry(models.Default().Clone()), artifact.WithStore(st))

	var h *Handler
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	var peers []string
	if peer != nil {
		peers = append(peers, peer())
	}
	transport := cluster.NewHTTPTransport(nil)
	n, err := cluster.New(cluster.Config{
		ID: id, URL: ts.URL, Replicas: 1, Seed: 1,
		Heartbeat: 50 * time.Millisecond,
		Peers:     peers,
		Transport: transport,
		Clock:     cluster.NewRealClock(),
		Log:       cluster.NewBoundedLog(256),
		Ingest: func(b cluster.Blob) error {
			return st.Ingest(b.Key, b.Data, b.Sum, b.Media, b.Ext)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	transport.Bind(n)
	h = NewHandler(p, WithCluster(n))
	n.Start()
	t.Cleanup(n.Stop)
	return ts, n
}

func TestClusterTwoNodeEndToEnd(t *testing.T) {
	tsA, nodeA := startClusterNode(t, "node-a", nil)
	tsB, nodeB := startClusterNode(t, "node-b", func() string { return tsA.URL })

	waitFor(t, 5*time.Second, "membership convergence", func() bool {
		return len(nodeA.Status().Ring) == 2 && len(nodeB.Status().Ring) == 2
	})

	const path = "/v1/models/commit/artifacts/text?r=4"
	respA, bodyA := get(t, tsA, path, nil)
	respB, bodyB := get(t, tsB, path, nil)
	for _, resp := range []*http.Response{respA, respB} {
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("clustered artifact GET = %s", resp.Status)
		}
	}
	if bodyA != bodyB {
		t.Fatal("the two nodes served divergent bytes for one fingerprint")
	}
	if ea, eb := respA.Header.Get("ETag"), respB.Header.Get("ETag"); ea == "" || ea != eb {
		t.Fatalf("ETags diverge across nodes: %q vs %q", ea, eb)
	}

	// Exactly one node is the key's owner; its response says so, and the
	// producing node header on both responses names that same owner.
	routeA, routeB := respA.Header.Get(HeaderRoute), respB.Header.Get(HeaderRoute)
	var ownerID string
	var replicaServer *httptest.Server
	var replicaNode *cluster.Node
	switch {
	case routeA == "owner" && routeB != "owner":
		ownerID, replicaServer, replicaNode = "node-a", tsB, nodeB
	case routeB == "owner" && routeA != "owner":
		ownerID, replicaServer, replicaNode = "node-b", tsA, nodeA
	default:
		t.Fatalf("want exactly one owner, got routes %q and %q", routeA, routeB)
	}
	// The producing-node header names whichever pipeline rendered or held
	// the bytes: the owner on owner and proxied responses, the serving
	// node itself on a warm replica hit.
	for resp, self := range map[*http.Response]string{respA: "node-a", respB: "node-b"} {
		want := ownerID
		if resp.Header.Get(HeaderRoute) == "replica" {
			want = self
		}
		if got := resp.Header.Get(HeaderNode); got != want {
			t.Fatalf("producing node = %q, want %q (route %q)",
				got, want, resp.Header.Get(HeaderRoute))
		}
	}

	// The owner pushes the artefact to its successor; the other node
	// must eventually serve it warm from its own store — locally, not
	// proxied.
	waitFor(t, 5*time.Second, "replica warmth", func() bool {
		resp, body := get(t, replicaServer, path, nil)
		return resp.StatusCode == http.StatusOK &&
			resp.Header.Get(HeaderRoute) == "replica" &&
			resp.Header.Get(HeaderNode) == replicaNode.ID() &&
			body == bodyA
	})

	// Clean bill of health from the routing oracle on both nodes.
	for _, n := range []*cluster.Node{nodeA, nodeB} {
		if v := n.Violations(); len(v) != 0 {
			t.Fatalf("node %s oracle violations: %v", n.ID(), v)
		}
	}
	resp, body := get(t, tsA, "/v1/cluster", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/cluster = %s", resp.Status)
	}
	var rep cluster.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Enabled || rep.Oracle.ViolationCount != 0 || len(rep.Members) != 2 {
		t.Fatalf("cluster report = enabled=%t violations=%d members=%d",
			rep.Enabled, rep.Oracle.ViolationCount, len(rep.Members))
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
