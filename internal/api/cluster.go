package api

import (
	"fmt"
	"io"
	"net/http"

	"asagen/internal/artifact"
	"asagen/internal/cluster"
	"asagen/internal/store"
)

// Cluster response and routing headers.
const (
	// HeaderNode names the node whose pipeline produced the response —
	// on a proxied response it is the owner, not the proxying node.
	HeaderNode = "X-Asagen-Node"
	// HeaderRoute reports the serving node's role for the request's
	// routing key: owner, replica, or proxied.
	HeaderRoute = "X-Asagen-Route"
	// HeaderForwardedBy marks a proxied request with the forwarding
	// node's ID; the receiver serves locally, so divergent views can
	// never proxy in circles.
	HeaderForwardedBy = "X-Asagen-Forwarded-By"
	// HeaderProxiedBy is stamped on proxied responses with the node that
	// relayed them.
	HeaderProxiedBy = "X-Asagen-Proxied-By"
)

// maxClusterBytes bounds the cluster-internal POST bodies: gossip views
// are small, and propagated artefacts are render outputs, not uploads.
const maxClusterBytes = 16 << 20

// serveClustered routes one artifact request over the cluster ring: the
// key's owner renders locally and seeds its replicas, a warm replica
// serves its copy, and everyone else proxies one hop to the owner.
func (h *Handler) serveClustered(w http.ResponseWriter, r *http.Request, req artifact.Request) {
	key, resolved, err := h.p.RouteKey(req)
	if err != nil {
		h.writeRenderError(w, r, err, false)
		return
	}
	d := h.cluster.Route(key)
	forwarded := r.Header.Get(HeaderForwardedBy) != ""
	switch {
	case d.Relation == cluster.RelOwner || forwarded:
		// Forwarded requests always render locally, whatever this node's
		// own view says: one hop is the loop bound during divergence.
		res := h.p.Render(r.Context(), resolved)
		if res.Err != nil {
			h.writeRenderError(w, r, res.Err, false)
			return
		}
		h.cluster.MaybePropagate(key, resultBlob(res))
		h.writeArtifact(w, r, res, d.Relation.String())
	case d.Relation == cluster.RelReplica:
		if res, ok := h.p.Probe(resolved); ok {
			h.writeArtifact(w, r, res, cluster.RelReplica.String())
			return
		}
		// Cold replica: the owner renders once and pushes the blob back
		// here; serving the miss locally would render the same bytes on
		// every replica instead.
		h.proxyArtifact(w, r, d)
	default:
		h.proxyArtifact(w, r, d)
	}
}

// resultBlob packages a rendered result for replica propagation.
func resultBlob(res artifact.Result) cluster.Blob {
	skey := store.Key{
		Model:  res.Request.Model,
		Param:  res.Request.Param,
		Format: res.Request.Format,
	}
	if !res.Fingerprint.IsZero() {
		skey.Fingerprint = res.Fingerprint.String()
	}
	return cluster.Blob{
		Key:   skey,
		Sum:   res.ContentHash(),
		Media: res.Artifact.MediaType,
		Ext:   res.Artifact.Ext,
		Data:  res.Artifact.Data,
	}
}

// proxyArtifact relays the request to the key's owner and copies the
// response through, preserving the owner's validator and node identity.
func (h *Handler) proxyArtifact(w http.ResponseWriter, r *http.Request, d cluster.Decision) {
	preq, err := http.NewRequestWithContext(r.Context(), r.Method, d.OwnerURL+r.URL.RequestURI(), nil)
	if err != nil {
		writeError(w, http.StatusBadGateway, CodeProxyFailed,
			fmt.Sprintf("proxy to owner %s: %v", d.OwnerID, err))
		return
	}
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		preq.Header.Set("If-None-Match", inm)
	}
	preq.Header.Set(HeaderForwardedBy, h.cluster.ID())
	resp, err := h.proxyClient.Do(preq)
	if err != nil {
		writeError(w, http.StatusBadGateway, CodeProxyFailed,
			fmt.Sprintf("owner %s (%s) unreachable: %v", d.OwnerID, d.OwnerURL, err))
		return
	}
	defer resp.Body.Close()
	header := w.Header()
	for _, k := range []string{
		"ETag", "Cache-Control", "Vary", "Content-Type", "Content-Length",
		"X-Machine-Fingerprint", HeaderNode,
	} {
		if v := resp.Header.Get(k); v != "" {
			header.Set(k, v)
		}
	}
	header.Set(HeaderRoute, "proxied")
	header.Set(HeaderProxiedBy, h.cluster.ID())
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// handleClusterStatus serves GET /v1/cluster.
func (h *Handler) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	if h.cluster == nil {
		writeJSON(w, struct {
			Enabled bool `json:"enabled"`
		}{})
		return
	}
	writeJSON(w, h.cluster.Status())
}

// handleClusterGossip serves POST /v1/cluster/gossip: the body is a
// membership view; a push (the default kind) is answered with this
// node's view, completing the push-pull exchange in one round trip.
func (h *Handler) handleClusterGossip(w http.ResponseWriter, r *http.Request) {
	if h.cluster == nil {
		writeError(w, http.StatusNotFound, CodeNotClustered,
			"this server is not running in cluster mode (-cluster)")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxClusterBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadClusterPayload, err.Error())
		return
	}
	kind := cluster.KindGossip
	if r.Header.Get(cluster.HeaderClusterKind) == cluster.KindGossipAck {
		kind = cluster.KindGossipAck
	}
	reply, err := h.cluster.Handle(kind, body, r.RemoteAddr)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadClusterPayload, err.Error())
		return
	}
	if reply == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", fmt.Sprint(len(reply)))
	w.Write(reply)
}

// handleClusterIngest serves POST /v1/cluster/artifacts: a propagated
// artefact blob, verified against its advertised sum before it lands in
// this node's store.
func (h *Handler) handleClusterIngest(w http.ResponseWriter, r *http.Request) {
	if h.cluster == nil {
		writeError(w, http.StatusNotFound, CodeNotClustered,
			"this server is not running in cluster mode (-cluster)")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxClusterBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadClusterPayload, err.Error())
		return
	}
	if _, err := h.cluster.Handle(cluster.KindPropagate, body, r.RemoteAddr); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadClusterPayload, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
