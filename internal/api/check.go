package api

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"asagen/internal/artifact"
	"asagen/internal/trace"
)

// handleCheck serves POST /v1/models/{model}/check: the request body is a
// trace (JSON Lines by default, or text decoded through regex transition
// patterns) streamed through the model's generated machine, and the
// response is a Server-Sent Events stream with one event per verdict.
// Event names are the verdict kinds and each data payload is the
// canonical verdict JSON — byte-identical to what `fsmgen check -json`
// and the SDK iterator emit for the same trace.
//
// The trace is judged at line rate as the body arrives; neither side
// buffers the whole trace, so arbitrarily long streams check in bounded
// memory. Closing the request mid-stream cancels the run server-side.
//
// Preflight failures (unknown model, bad parameter, bad pattern) are
// ordinary JSON-envelope errors. Once the event stream has started,
// failures arrive as a terminal `error` event whose data is the same
// envelope: code `bad_trace` for undecodable input, `trace_aborted` for
// a failed trace read. A completed run — conforming or violating, per
// its `stats` — ends with a `summary` event.
func (h *Handler) handleCheck(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	param := 0
	if rs := q.Get("r"); rs != "" {
		var err error
		if param, err = strconv.Atoi(rs); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadParameter,
				"bad parameter "+strconv.Quote(rs)+": "+err.Error())
			return
		}
	}
	tolerance := 0
	if ts := q.Get("tolerance"); ts != "" {
		n, err := strconv.Atoi(ts)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, CodeBadParameter,
				"bad tolerance "+strconv.Quote(ts)+": want a non-negative integer")
			return
		}
		tolerance = n
	}
	keepGoing := false
	switch kg := q.Get("keep_going"); kg {
	case "", "0", "false":
	case "1", "true":
		keepGoing = true
	default:
		writeError(w, http.StatusBadRequest, CodeBadParameter,
			"bad keep_going "+strconv.Quote(kg)+": want 1/true or 0/false")
		return
	}
	var rules []trace.Rule
	for _, pattern := range q["match"] {
		rule, err := trace.ParseRule(pattern)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadTrace, err.Error())
			return
		}
		rules = append(rules, rule)
	}
	format := q.Get("format")
	switch format {
	case "":
		format = trace.FormatJSONL
		if len(rules) > 0 {
			format = trace.FormatRegex
		}
	case trace.FormatJSONL, trace.FormatRegex:
	default:
		writeError(w, http.StatusBadRequest, CodeBadTrace,
			"unknown trace format "+strconv.Quote(format)+" (known: jsonl, regex)")
		return
	}

	machine, _, _, err := h.p.Machine(r.Context(), r.PathValue("model"), param)
	if err != nil {
		switch {
		case r.Context().Err() != nil:
			return // client gone before generation finished
		case errors.Is(err, artifact.ErrUnknownModel):
			writeError(w, http.StatusNotFound, CodeUnknownModel, err.Error())
		default:
			// Model construction rejected the parameter value.
			writeError(w, http.StatusBadRequest, CodeBadParameter, err.Error())
		}
		return
	}
	dec, err := trace.NewDecoder(format, r.Body, rules)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadTrace, err.Error())
		return
	}

	// Preflight is clean: commit to the event stream. From here failures
	// are in-band `error` events, not status codes.
	header := w.Header()
	header.Set("Content-Type", "text/event-stream; charset=utf-8")
	header.Set("Cache-Control", "no-store")
	header.Set("X-Accel-Buffering", "no")
	if r.ProtoMajor == 1 {
		// Without this the HTTP/1 server drains the unread request body
		// before releasing the response headers, to keep the connection
		// reusable — a deadlock when the trace is still streaming in.
		// Responses and trace bodies interleave here, so the connection
		// could never be reused anyway.
		header.Set("Connection", "close")
	}
	rc := http.NewResponseController(w)
	w.WriteHeader(http.StatusOK)
	// Push the headers out now: verdicts may be a long time coming on a
	// live trace, and SSE clients act on the content type immediately.
	if rc.Flush() != nil {
		return
	}
	var buf []byte
	writeEvent := func(name string, data []byte) bool {
		buf = buf[:0]
		buf = append(buf, "event: "...)
		buf = append(buf, name...)
		buf = append(buf, "\ndata: "...)
		buf = append(buf, data...)
		buf = append(buf, "\n\n"...)
		if _, err := w.Write(buf); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	var verdictBuf []byte
	opts := []trace.MonitorOption{
		trace.WithTarget("", machine),
		trace.WithTolerance(tolerance),
		trace.WithObserver(trace.ObserverFunc(func(v trace.Verdict) bool {
			verdictBuf = v.AppendJSON(verdictBuf[:0])
			return writeEvent(v.Kind.String(), verdictBuf)
		})),
	}
	if keepGoing {
		opts = append(opts, trace.WithKeepGoing())
	}
	mon, err := trace.NewMonitor(opts...)
	if err != nil {
		writeEvent("error", envelopeJSON(CodeBadTrace, err.Error()))
		return
	}

	rep, err := mon.Run(r.Context(), dec)
	var de *trace.DecodeError
	switch {
	case errors.Is(err, trace.ErrStopped):
		// A verdict write failed; the client is gone.
	case r.Context().Err() != nil:
		// Cancelled mid-run; nothing useful can be written.
	case err == nil:
		verdictBuf = trace.Terminal(rep, nil).AppendJSON(verdictBuf[:0])
		writeEvent("summary", verdictBuf)
	case errors.As(err, &de):
		writeEvent("error", envelopeJSON(CodeBadTrace, de.Error()))
	default:
		writeEvent("error", envelopeJSON(CodeTraceAborted, err.Error()))
	}
}

// envelopeJSON renders the standard error envelope as a compact JSON
// line for use as an SSE data payload.
func envelopeJSON(code, message string) []byte {
	data, err := json.Marshal(errorEnvelope{Error: errorBody{Code: code, Message: message}})
	if err != nil {
		return []byte(`{"error":{"code":"` + code + `","message":"encoding failed"}}`)
	}
	return data
}
