// Package chord implements the key-based routing layer of the ASA
// architecture (§2, Fig. 1): a Chord-style structured overlay that
// dynamically maps any key to a unique live node. Nodes are organised in a
// logical circle over a 64-bit identifier space; each node maintains a
// successor list for resilience and finger-table chords across the circle,
// giving lookup cost logarithmic in the network size.
//
// The overlay is simulated in memory: routing decisions use only each
// node's own (possibly stale) tables, so hop counts and the effects of
// churn are faithful, while the Ring keeps a ground-truth membership view
// for verification and repair scheduling.
package chord

import (
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// ID is a point on the 2^64 identifier circle.
type ID uint64

// idBits is the identifier width; the finger table has one entry per bit.
const idBits = 64

// HashKey maps an arbitrary key to the identifier circle using SHA-1, the
// hash the ASA prototype uses for PIDs (§2.1), truncated to the ring width.
func HashKey(key []byte) ID {
	sum := sha1.Sum(key)
	return ID(binary.BigEndian.Uint64(sum[:8]))
}

// HashString maps a string key to the identifier circle.
func HashString(key string) ID { return HashKey([]byte(key)) }

// between reports whether x lies in the half-open ring interval (a, b].
func between(a, x, b ID) bool {
	if a < b {
		return x > a && x <= b
	}
	if a > b {
		return x > a || x <= b
	}
	// a == b: the interval spans the whole circle.
	return true
}

// betweenOpen reports whether x lies in the open ring interval (a, b).
func betweenOpen(a, x, b ID) bool {
	if a < b {
		return x > a && x < b
	}
	if a > b {
		return x > a || x < b
	}
	return x != a
}

// Errors returned by ring operations.
var (
	// ErrEmptyRing reports an operation on a ring with no nodes.
	ErrEmptyRing = errors.New("chord: empty ring")
	// ErrDuplicateID reports a join that collides with an existing node.
	ErrDuplicateID = errors.New("chord: duplicate node id")
	// ErrLookupFailed reports a lookup that could not make progress, e.g.
	// because routing tables are stale after heavy churn.
	ErrLookupFailed = errors.New("chord: lookup failed")
	// ErrNodeDown reports a routing step through a failed node.
	ErrNodeDown = errors.New("chord: node down")
)

// Node is one overlay participant. Routing state (successors, predecessor,
// fingers) is node-local and may be stale until stabilisation runs.
type Node struct {
	id    ID
	name  string
	alive bool

	successors  []*Node // successor list, nearest first
	predecessor *Node
	fingers     [idBits]*Node

	ring *Ring
}

// ID returns the node's ring identifier.
func (n *Node) ID() ID { return n.id }

// Name returns the node's human-readable name.
func (n *Node) Name() string { return n.name }

// Alive reports whether the node is live.
func (n *Node) Alive() bool { return n.alive }

// Successor returns the node's first live successor-list entry, or the node
// itself when the list is exhausted (single-node ring).
func (n *Node) Successor() *Node {
	for _, s := range n.successors {
		if s != nil && s.alive {
			return s
		}
	}
	return n
}

// Predecessor returns the node's predecessor pointer, which may be nil or
// stale until stabilisation.
func (n *Node) Predecessor() *Node { return n.predecessor }

// Ring is the simulated overlay: the ground-truth membership plus
// configuration. Protocol state lives in the nodes.
type Ring struct {
	rng              *rand.Rand
	nodes            []*Node // live nodes sorted by ID
	successorListLen int
	maxHops          int
}

// Option configures a Ring.
type Option func(*Ring)

// WithSuccessorListLen sets the per-node successor list length (default 4).
func WithSuccessorListLen(n int) Option {
	return func(r *Ring) {
		if n > 0 {
			r.successorListLen = n
		}
	}
}

// NewRing returns an empty ring seeded for deterministic simulation.
func NewRing(seed int64, opts ...Option) *Ring {
	r := &Ring{
		rng:              rand.New(rand.NewSource(seed)),
		successorListLen: 4,
		maxHops:          256,
	}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Size returns the number of live nodes.
func (r *Ring) Size() int { return len(r.nodes) }

// Nodes returns the live nodes sorted by ID.
func (r *Ring) Nodes() []*Node {
	return append([]*Node(nil), r.nodes...)
}

// RandomNode returns a uniformly random live node.
func (r *Ring) RandomNode() (*Node, error) {
	if len(r.nodes) == 0 {
		return nil, ErrEmptyRing
	}
	return r.nodes[r.rng.Intn(len(r.nodes))], nil
}

// Join adds a node named name to the overlay, initialising its tables via
// lookups through an arbitrary existing member, as in the Chord join
// protocol. The new node's tables converge fully on the next Stabilize.
func (r *Ring) Join(name string) (*Node, error) {
	id := HashString(name)
	for _, n := range r.nodes {
		if n.id == id {
			return nil, fmt.Errorf("%w: %s vs %s", ErrDuplicateID, name, n.name)
		}
	}
	node := &Node{id: id, name: name, alive: true, ring: r}

	if len(r.nodes) == 0 {
		node.successors = []*Node{node}
		node.predecessor = node
		for i := range node.fingers {
			node.fingers[i] = node
		}
	} else {
		boot := r.nodes[r.rng.Intn(len(r.nodes))]
		succ, _, err := boot.FindSuccessor(node.id)
		if err != nil {
			return nil, fmt.Errorf("chord: join via %s: %w", boot.name, err)
		}
		node.successors = []*Node{succ}
		node.fingers[0] = succ
	}

	r.insert(node)
	return node, nil
}

func (r *Ring) insert(node *Node) {
	i := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].id >= node.id })
	r.nodes = append(r.nodes, nil)
	copy(r.nodes[i+1:], r.nodes[i:])
	r.nodes[i] = node
}

func (r *Ring) remove(node *Node) {
	for i, n := range r.nodes {
		if n == node {
			r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
			return
		}
	}
}

// Leave removes a node gracefully: its predecessor and successor are
// linked directly before it departs.
func (r *Ring) Leave(node *Node) {
	if !node.alive {
		return
	}
	succ := r.ownerAfter(node)
	pred := r.ownerBefore(node)
	if succ != nil && pred != nil && succ != node {
		pred.successors = append([]*Node{succ}, pred.successors...)
		trimSuccessors(pred, r.successorListLen)
		succ.predecessor = pred
	}
	node.alive = false
	r.remove(node)
}

// Fail removes a node abruptly (fail-stop): no notifications are sent, and
// other nodes discover the failure through their successor lists during
// stabilisation.
func (r *Ring) Fail(node *Node) {
	if !node.alive {
		return
	}
	node.alive = false
	r.remove(node)
}

// ownerAfter returns the ground-truth successor of the node (nil on empty).
func (r *Ring) ownerAfter(node *Node) *Node {
	if len(r.nodes) == 0 {
		return nil
	}
	i := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].id > node.id })
	return r.nodes[i%len(r.nodes)]
}

// ownerBefore returns the ground-truth predecessor of the node.
func (r *Ring) ownerBefore(node *Node) *Node {
	if len(r.nodes) == 0 {
		return nil
	}
	i := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].id >= node.id })
	return r.nodes[(i-1+len(r.nodes))%len(r.nodes)]
}

// NodeFor returns the ground-truth owner of key: the first live node at or
// after key on the circle. Used to verify routed lookups.
func (r *Ring) NodeFor(key ID) (*Node, error) {
	if len(r.nodes) == 0 {
		return nil, ErrEmptyRing
	}
	i := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].id >= key })
	return r.nodes[i%len(r.nodes)], nil
}

// FindSuccessor routes a lookup for key from this node using only local
// routing state, returning the owning node and the number of routing hops
// taken.
func (n *Node) FindSuccessor(key ID) (*Node, int, error) {
	if !n.alive {
		return nil, 0, fmt.Errorf("%w: %s", ErrNodeDown, n.name)
	}
	cur := n
	hops := 0
	for hops <= n.ring.maxHops {
		succ := cur.Successor()
		if succ == cur || between(cur.id, key, succ.id) {
			return succ, hops, nil
		}
		next := cur.closestPrecedingNode(key)
		if next == cur {
			// Fingers exhausted: fall through to the successor.
			next = succ
		}
		cur = next
		hops++
	}
	return nil, hops, fmt.Errorf("%w: key %x from %s after %d hops", ErrLookupFailed, uint64(key), n.name, hops)
}

// closestPrecedingNode scans the finger table (then the successor list) for
// the live node most closely preceding key.
func (n *Node) closestPrecedingNode(key ID) *Node {
	for i := idBits - 1; i >= 0; i-- {
		f := n.fingers[i]
		if f != nil && f.alive && betweenOpen(n.id, f.id, key) {
			return f
		}
	}
	for i := len(n.successors) - 1; i >= 0; i-- {
		s := n.successors[i]
		if s != nil && s.alive && betweenOpen(n.id, s.id, key) {
			return s
		}
	}
	return n
}

// Stabilize runs stabilisation rounds — the Chord stabilize/notify
// exchange, successor-list repair and finger-table rebuild on every live
// node — until the routing state reaches a fixpoint (bounded by a generous
// round cap). Each round propagates membership changes one link further, so
// iterating to quiescence converges the overlay after arbitrary churn.
func (r *Ring) Stabilize() {
	const maxRounds = 128
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, n := range r.Nodes() {
			if n.stabilize() {
				changed = true
			}
		}
		for _, n := range r.Nodes() {
			n.fixFingers()
		}
		if !changed {
			return
		}
	}
}

// stabilize performs one protocol round on the node and reports whether any
// routing state changed.
func (n *Node) stabilize() bool {
	if !n.alive {
		return false
	}
	oldSucc := n.Successor()
	succ := oldSucc
	// Adopt the successor's predecessor when it sits between us.
	if x := succ.predecessor; x != nil && x.alive && betweenOpen(n.id, x.id, succ.id) {
		succ = x
	}
	changed := succ != oldSucc
	// Notify: the successor adopts us as predecessor when appropriate.
	if succ != n {
		if p := succ.predecessor; p == nil || !p.alive || betweenOpen(p.id, n.id, succ.id) {
			if succ.predecessor != n {
				succ.predecessor = n
				changed = true
			}
		}
	}
	// Rebuild the successor list by walking successors' successors.
	list := make([]*Node, 0, n.ring.successorListLen)
	cur := succ
	for len(list) < n.ring.successorListLen && cur != nil && cur.alive && cur != n {
		list = append(list, cur)
		cur = cur.Successor()
	}
	if len(list) == 0 {
		list = []*Node{n}
	}
	if !sameNodes(n.successors, list) {
		n.successors = list
		changed = true
	}
	return changed
}

func sameNodes(a, b []*Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (n *Node) fixFingers() {
	if !n.alive {
		return
	}
	for i := 0; i < idBits; i++ {
		target := n.id + (ID(1) << uint(i))
		owner, err := n.ring.NodeFor(target)
		if err != nil {
			return
		}
		n.fingers[i] = owner
	}
}

// trimSuccessors drops dead entries and truncates to the configured length.
func trimSuccessors(n *Node, maxLen int) {
	out := n.successors[:0]
	for _, s := range n.successors {
		if s != nil && s.alive && s != n {
			out = append(out, s)
		}
		if len(out) == maxLen {
			break
		}
	}
	n.successors = out
}

// Build constructs a stabilised ring of size n with deterministic node
// names, a convenience for tests and experiments.
func Build(seed int64, n int, opts ...Option) (*Ring, error) {
	r := NewRing(seed, opts...)
	for i := 0; i < n; i++ {
		if _, err := r.Join(fmt.Sprintf("node-%d", i)); err != nil {
			return nil, err
		}
		// Stabilise periodically during construction so join lookups
		// route correctly.
		if i%8 == 0 {
			r.Stabilize()
		}
	}
	r.Stabilize()
	r.Stabilize()
	return r, nil
}
