package chord

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestBetween(t *testing.T) {
	tests := []struct {
		a, x, b ID
		want    bool
	}{
		{10, 15, 20, true},
		{10, 10, 20, false}, // half-open: excludes a
		{10, 20, 20, true},  // includes b
		{10, 25, 20, false},
		{20, 25, 10, true},  // wrapping interval
		{20, 5, 10, true},   // wrapping interval
		{20, 15, 10, false}, // wrapping interval, outside
		{10, 99, 10, true},  // full circle
	}
	for _, tt := range tests {
		if got := between(tt.a, tt.x, tt.b); got != tt.want {
			t.Errorf("between(%d,%d,%d) = %v, want %v", tt.a, tt.x, tt.b, got, tt.want)
		}
	}
}

func TestBetweenOpen(t *testing.T) {
	tests := []struct {
		a, x, b ID
		want    bool
	}{
		{10, 15, 20, true},
		{10, 20, 20, false},
		{10, 10, 20, false},
		{20, 5, 10, true},
		{5, 5, 5, false}, // degenerate: everything but a
		{5, 9, 5, true},
	}
	for _, tt := range tests {
		if got := betweenOpen(tt.a, tt.x, tt.b); got != tt.want {
			t.Errorf("betweenOpen(%d,%d,%d) = %v, want %v", tt.a, tt.x, tt.b, got, tt.want)
		}
	}
}

// TestBetweenProperty: exactly one of the two half-open arcs (a,b] and
// (b,a] contains any x distinct from both endpoints' shared cases.
func TestBetweenProperty(t *testing.T) {
	prop := func(a, x, b uint64) bool {
		ia, ix, ib := ID(a), ID(x), ID(b)
		if ia == ib {
			return true // degenerate full-circle case covered elsewhere
		}
		return between(ia, ix, ib) != between(ib, ix, ia)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSingleNodeRing(t *testing.T) {
	r := NewRing(1)
	n, err := r.Join("solo")
	if err != nil {
		t.Fatal(err)
	}
	if n.Successor() != n {
		t.Error("single node is not its own successor")
	}
	owner, hops, err := n.FindSuccessor(HashString("anything"))
	if err != nil {
		t.Fatal(err)
	}
	if owner != n || hops != 0 {
		t.Errorf("lookup = %v/%d, want self/0", owner.Name(), hops)
	}
}

func TestJoinDuplicate(t *testing.T) {
	r := NewRing(1)
	if _, err := r.Join("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Join("a"); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate join error = %v", err)
	}
}

func TestLookupCorrectness(t *testing.T) {
	r, err := Build(42, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := HashString(fmt.Sprintf("key-%d", i))
		want, err := r.NodeFor(key)
		if err != nil {
			t.Fatal(err)
		}
		from, err := r.RandomNode()
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := from.FindSuccessor(key)
		if err != nil {
			t.Fatalf("lookup key-%d from %s: %v", i, from.Name(), err)
		}
		if got != want {
			t.Errorf("key-%d: routed to %s, owner is %s", i, got.Name(), want.Name())
		}
	}
}

func TestLookupLogarithmicHops(t *testing.T) {
	sizes := []int{16, 64, 256}
	var avgs []float64
	for _, size := range sizes {
		r, err := Build(7, size)
		if err != nil {
			t.Fatal(err)
		}
		totalHops := 0
		const lookups = 300
		for i := 0; i < lookups; i++ {
			from, err := r.RandomNode()
			if err != nil {
				t.Fatal(err)
			}
			_, hops, err := from.FindSuccessor(HashString(fmt.Sprintf("k%d", i)))
			if err != nil {
				t.Fatal(err)
			}
			totalHops += hops
		}
		avg := float64(totalHops) / lookups
		avgs = append(avgs, avg)
		// Chord routes in O(log n): allow a generous constant.
		if bound := 2 * math.Log2(float64(size)); avg > bound {
			t.Errorf("size %d: avg hops %.2f exceeds 2·log2(n) = %.2f", size, avg, bound)
		}
	}
	// Hop count grows with ring size but far slower than linearly.
	if avgs[2] > avgs[0]*8 {
		t.Errorf("hop growth from 16 to 256 nodes is superlogarithmic: %v", avgs)
	}
}

func TestGracefulLeave(t *testing.T) {
	r, err := Build(3, 32)
	if err != nil {
		t.Fatal(err)
	}
	nodes := r.Nodes()
	leaver := nodes[10]
	r.Leave(leaver)
	r.Stabilize()
	if r.Size() != 31 {
		t.Fatalf("Size = %d, want 31", r.Size())
	}
	// Keys previously owned by the leaver now route to its successor.
	key := leaver.ID() - 1 // a key just before the departed node
	owner, err := r.NodeFor(key)
	if err != nil {
		t.Fatal(err)
	}
	from, err := r.RandomNode()
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := from.FindSuccessor(key)
	if err != nil {
		t.Fatal(err)
	}
	if got != owner {
		t.Errorf("after leave: routed to %s, want %s", got.Name(), owner.Name())
	}
	if got == leaver {
		t.Error("lookup routed to departed node")
	}
}

func TestFailStopRepair(t *testing.T) {
	r, err := Build(9, 48)
	if err != nil {
		t.Fatal(err)
	}
	// Fail several nodes abruptly.
	nodes := r.Nodes()
	for _, i := range []int{5, 17, 23, 31} {
		r.Fail(nodes[i])
	}
	// Before stabilisation lookups may detour; after repair they must hit
	// the ground-truth owner.
	r.Stabilize()
	r.Stabilize()
	for i := 0; i < 100; i++ {
		key := HashString(fmt.Sprintf("post-fail-%d", i))
		want, err := r.NodeFor(key)
		if err != nil {
			t.Fatal(err)
		}
		from, err := r.RandomNode()
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := from.FindSuccessor(key)
		if err != nil {
			t.Fatalf("lookup after failures: %v", err)
		}
		if got != want {
			t.Errorf("key %d: routed to %s, want %s", i, got.Name(), want.Name())
		}
		if !got.Alive() {
			t.Errorf("key %d routed to dead node %s", i, got.Name())
		}
	}
}

func TestChurn(t *testing.T) {
	r, err := Build(11, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave joins, leaves and failures with stabilisation.
	for round := 0; round < 10; round++ {
		if _, err := r.Join(fmt.Sprintf("churn-%d", round)); err != nil {
			t.Fatal(err)
		}
		nodes := r.Nodes()
		if round%2 == 0 {
			r.Fail(nodes[round%len(nodes)])
		} else {
			r.Leave(nodes[round%len(nodes)])
		}
		r.Stabilize()
	}
	r.Stabilize()
	// The ring must still route every key to its ground-truth owner.
	for i := 0; i < 100; i++ {
		key := HashString(fmt.Sprintf("churn-key-%d", i))
		want, err := r.NodeFor(key)
		if err != nil {
			t.Fatal(err)
		}
		from, err := r.RandomNode()
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := from.FindSuccessor(key)
		if err != nil {
			t.Fatalf("lookup under churn: %v", err)
		}
		if got != want {
			t.Errorf("churn key %d: routed to %s, want %s", i, got.Name(), want.Name())
		}
	}
}

func TestRingInvariants(t *testing.T) {
	r, err := Build(21, 40)
	if err != nil {
		t.Fatal(err)
	}
	nodes := r.Nodes()
	// Sorted, unique IDs.
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].ID() >= nodes[i].ID() {
			t.Fatalf("nodes not strictly sorted at %d", i)
		}
	}
	// After stabilisation every node's successor is the next live node.
	for i, n := range nodes {
		want := nodes[(i+1)%len(nodes)]
		if got := n.Successor(); got != want {
			t.Errorf("node %s successor = %s, want %s", n.Name(), got.Name(), want.Name())
		}
		if n.Predecessor() == nil {
			t.Errorf("node %s has nil predecessor", n.Name())
		}
	}
}

func TestEmptyRingErrors(t *testing.T) {
	r := NewRing(1)
	if _, err := r.NodeFor(42); !errors.Is(err, ErrEmptyRing) {
		t.Errorf("NodeFor on empty ring = %v", err)
	}
	if _, err := r.RandomNode(); !errors.Is(err, ErrEmptyRing) {
		t.Errorf("RandomNode on empty ring = %v", err)
	}
}

func TestHashKeyDeterministic(t *testing.T) {
	if HashString("abc") != HashString("abc") {
		t.Error("hash not deterministic")
	}
	if HashString("abc") == HashString("abd") {
		t.Error("suspicious hash collision on near-identical keys")
	}
	if HashKey([]byte("xyz")) != HashString("xyz") {
		t.Error("HashKey and HashString disagree")
	}
}

func TestFindSuccessorFromDeadNode(t *testing.T) {
	r, err := Build(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := r.Nodes()[0]
	r.Fail(n)
	if _, _, err := n.FindSuccessor(1); !errors.Is(err, ErrNodeDown) {
		t.Errorf("lookup from dead node = %v", err)
	}
}
