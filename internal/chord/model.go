package chord

// This file lifts the routing layer into the generative methodology: the
// ring-membership lifecycle of one overlay node is captured as an abstract
// model (core.Model) and executed to generate the node's membership state
// machine. The redundancy parameter is the successor-list length s — the
// overlay analogue of the commit protocol's replication factor: a node
// survives up to s−1 simultaneous successor failures before it must
// re-bootstrap, exactly as the seed Ring keeps routing alive while any
// successor-list entry is live.
//
// The generated machine is validated differentially: model_test.go replays
// it through the runtime interpreter against the hand-written Ring under
// randomized, simnet-scheduled churn, asserting the generated transitions
// track the live node's observed membership state event for event.

import (
	"context"
	"fmt"

	"asagen/internal/core"
)

// Message types received by a ring-membership machine. They are the
// node-local observations the Chord maintenance protocol reacts to.
const (
	// EvJoin bootstraps the node into the overlay.
	EvJoin = "JOIN"
	// EvStabilize reports a stabilisation round that adopted one further
	// live successor-list entry.
	EvStabilize = "STABILIZE"
	// EvNotify reports a notify exchange that established a predecessor.
	EvNotify = "NOTIFY"
	// EvSuccFail reports the loss of one live successor-list entry.
	EvSuccFail = "SUCC_FAIL"
	// EvPredFail reports the loss of the predecessor.
	EvPredFail = "PRED_FAIL"
	// EvLeave departs the overlay gracefully.
	EvLeave = "LEAVE"
)

// Actions performed on phase transitions.
const (
	// ActLookup routes a bootstrap lookup through an existing member (on
	// join, and again when the successor list is exhausted).
	ActLookup = "->lookup"
	// ActNotify notifies the adopted successor during stabilisation.
	ActNotify = "->notify"
	// ActHandoff transfers owned keys to the successor on departure.
	ActHandoff = "->transfer-keys"
)

// Component indices.
const (
	idxJoined = iota
	idxSuccessors
	idxHasPred
	numComponents
)

// Model is the ring-membership abstract model for a fixed successor-list
// length s. It implements core.Model.
type Model struct {
	s int
}

var _ core.Model = (*Model)(nil)

// NewModel returns the membership model for successor-list length s.
func NewModel(s int) (*Model, error) {
	if s < 1 {
		return nil, fmt.Errorf("chord: successor-list length %d < 1", s)
	}
	return &Model{s: s}, nil
}

// SuccessorListLen returns s.
func (m *Model) SuccessorListLen() int { return m.s }

// FaultTolerance returns s−1: the number of simultaneous successor
// failures a node absorbs from its list before connectivity is lost and a
// re-bootstrap lookup is required.
func (m *Model) FaultTolerance() int { return m.s - 1 }

// Name implements core.Model.
func (m *Model) Name() string { return "chord-membership" }

// Parameter implements core.Model.
func (m *Model) Parameter() int { return m.s }

// Components implements core.Model.
func (m *Model) Components() []core.StateComponent {
	return []core.StateComponent{
		core.NewBoolComponent("joined"),
		core.NewIntComponent("successors", m.s),
		core.NewBoolComponent("has_predecessor"),
	}
}

// Messages implements core.Model.
func (m *Model) Messages() []string {
	return []string{EvJoin, EvStabilize, EvNotify, EvSuccFail, EvPredFail, EvLeave}
}

// Start implements core.Model: outside the overlay, no routing state.
func (m *Model) Start() core.Vector { return make(core.Vector, numComponents) }

// Apply implements core.Model.
func (m *Model) Apply(v core.Vector, msg string) (core.Effect, bool) {
	s := v.Clone()
	var actions, notes []string
	finished := false

	switch msg {
	case EvJoin:
		if s[idxJoined] != 0 {
			return core.Effect{}, false // already a member
		}
		s[idxJoined] = 1
		actions = append(actions, ActLookup)
		notes = append(notes, "Bootstrap: locate the successor by routing a lookup through an existing member.")

	case EvStabilize:
		if s[idxJoined] == 0 || s[idxSuccessors] == m.s {
			return core.Effect{}, false // list already full
		}
		s[idxSuccessors]++
		actions = append(actions, ActNotify)
		notes = append(notes, fmt.Sprintf("Stabilisation adopted one further live successor (%d of %d).", s[idxSuccessors], m.s))

	case EvNotify:
		if s[idxJoined] == 0 || s[idxHasPred] != 0 {
			return core.Effect{}, false
		}
		s[idxHasPred] = 1
		notes = append(notes, "Adopted the notifying node as predecessor.")

	case EvSuccFail:
		if s[idxSuccessors] == 0 {
			return core.Effect{}, false // nothing left to lose
		}
		s[idxSuccessors]--
		notes = append(notes, "One successor-list entry failed.")
		if s[idxSuccessors] == 0 {
			actions = append(actions, ActLookup)
			notes = append(notes, fmt.Sprintf("Successor list exhausted (tolerance %d exceeded): re-bootstrap lookup.", m.s-1))
		}

	case EvPredFail:
		if s[idxHasPred] == 0 {
			return core.Effect{}, false
		}
		s[idxHasPred] = 0
		notes = append(notes, "Predecessor failure detected; await the next notify.")

	case EvLeave:
		if s[idxJoined] == 0 {
			return core.Effect{}, false
		}
		finished = true
		actions = append(actions, ActHandoff)
		notes = append(notes, "Graceful departure: link predecessor to successor and hand off owned keys.")

	default:
		return core.Effect{}, false
	}
	return core.Effect{Target: s, Actions: actions, Annotations: notes, Finished: finished}, true
}

// DescribeState implements core.Model.
func (m *Model) DescribeState(v core.Vector) []string {
	membership := "outside the overlay"
	if v[idxJoined] != 0 {
		membership = "an overlay member"
	}
	pred := "no predecessor"
	if v[idxHasPred] != 0 {
		pred = "a live predecessor"
	}
	return []string{
		fmt.Sprintf("Node is %s with %s.", membership, pred),
		fmt.Sprintf("%d of %d successor-list entries live.", v[idxSuccessors], m.s),
	}
}

// Abstraction coalesces the successor-list counter for EFSM generation:
// the abstract states track only membership and predecessor linkage, and
// the list occupancy becomes a guarded counter variable.
type Abstraction struct {
	model *Model
}

var _ core.EFSMAbstraction = (*Abstraction)(nil)

// NewAbstraction returns the EFSM abstraction for the model.
func NewAbstraction(m *Model) *Abstraction { return &Abstraction{model: m} }

// StateLabel implements core.EFSMAbstraction.
func (a *Abstraction) StateLabel(v core.Vector) string {
	switch {
	case v[idxJoined] == 0:
		return "UNJOINED"
	case v[idxHasPred] == 0:
		return "IN_RING_NO_PRED"
	default:
		return "IN_RING"
	}
}

// GuardComponent implements core.EFSMAbstraction.
func (a *Abstraction) GuardComponent(msg string) int {
	switch msg {
	case EvStabilize, EvSuccFail:
		return idxSuccessors
	default:
		return -1
	}
}

// VarOps implements core.EFSMAbstraction.
func (a *Abstraction) VarOps(msg string) []core.VarOp {
	switch msg {
	case EvStabilize:
		return []core.VarOp{{Variable: "successors", Delta: 1}}
	case EvSuccFail:
		return []core.VarOp{{Variable: "successors", Delta: -1}}
	default:
		return nil
	}
}

// Symbol implements core.EFSMAbstraction.
func (a *Abstraction) Symbol(component, value int) string {
	switch value {
	case 0:
		return "0"
	case 1:
		return "1"
	case a.model.s:
		return "s"
	case a.model.s - 1:
		return "s-1"
	}
	return ""
}

// GenerateEFSM generates the membership machine for successor-list length
// s and coalesces it into the parameter-independent EFSM.
func GenerateEFSM(ctx context.Context, s int) (*core.EFSM, error) {
	m, err := NewModel(s)
	if err != nil {
		return nil, err
	}
	machine, err := core.Generate(ctx, m, core.WithoutDescriptions())
	if err != nil {
		return nil, fmt.Errorf("chord: generate machine: %w", err)
	}
	return core.GeneralizeEFSM(machine, NewAbstraction(m))
}
