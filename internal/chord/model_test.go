package chord

// Differential conformance for the generated ring-membership machines: the
// hand-written Ring is driven through randomized churn schedules (joins,
// fail-stop failures and graceful leaves, scheduled through simnet timers),
// and a designated node's observed membership state is replayed event for
// event through the runtime interpreter and the EFSM instance. The
// generated transitions must track the live node exactly: same successor
// occupancy, same predecessor linkage, same actions on every event, no
// event ever rejected.

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"strings"
	"testing"
	"time"

	"asagen/internal/core"
	"asagen/internal/runtime"
	"asagen/internal/simnet"
)

// conformanceSchedules is the number of randomized fault schedules each
// conformance run covers (the acceptance floor is 100).
const conformanceSchedules = 120

// membershipMachines generates the concrete machine (unmerged, so state
// names are raw component vectors) and the EFSM for one successor-list
// length.
func membershipMachines(t *testing.T, s int) (*Model, *core.StateMachine, *core.EFSM) {
	t.Helper()
	model, err := NewModel(s)
	if err != nil {
		t.Fatal(err)
	}
	machine, err := core.Generate(context.Background(), model,
		core.WithoutDescriptions(), core.WithoutMerging())
	if err != nil {
		t.Fatalf("Generate(s=%d): %v", s, err)
	}
	efsm, err := GenerateEFSM(context.Background(), s)
	if err != nil {
		t.Fatalf("GenerateEFSM(s=%d): %v", s, err)
	}
	return model, machine, efsm
}

// observeMembership reports the designated node's membership view: live
// successor-list entries (excluding itself, capped at s) and whether a live
// non-self predecessor is linked.
func observeMembership(d *Node, s int) (succ int, pred bool) {
	for _, e := range d.successors {
		if e != nil && e.alive && e != d {
			succ++
		}
	}
	if succ > s {
		succ = s
	}
	p := d.predecessor
	return succ, p != nil && p.alive && p != d
}

// replay tracks one schedule's twin execution: the live node on one side,
// the interpreted machine plus the EFSM instance on the other.
type replay struct {
	t     *testing.T
	seed  int64
	model *Model
	inst  *runtime.Instance
	efsm  *core.EFSMInstance
	succ  int
	pred  bool
}

// deliver feeds one event to both the concrete instance and the EFSM and
// asserts they fire with identical actions.
func (rp *replay) deliver(msg string) []string {
	rp.t.Helper()
	actions, err := rp.inst.Deliver(msg)
	if err != nil {
		rp.t.Fatalf("seed %d: machine rejected %s in state %s: %v", rp.seed, msg, rp.inst.StateName(), err)
	}
	eActions, ok := rp.efsm.Deliver(msg)
	if !ok {
		rp.t.Fatalf("seed %d: EFSM rejected %s in state %s", rp.seed, msg, rp.efsm.StateName())
	}
	if !slices.Equal(actions, eActions) {
		rp.t.Fatalf("seed %d: %s actions diverge: machine %v, EFSM %v", rp.seed, msg, actions, eActions)
	}
	return actions
}

// sync replays the delta between the previously tracked view and the live
// node's current view, then asserts both executions landed on the state
// encoding that view.
func (rp *replay) sync(d *Node, s int) {
	rp.t.Helper()
	succ, pred := observeMembership(d, s)
	for rp.succ > succ {
		rp.deliver(EvSuccFail)
		rp.succ--
	}
	if rp.pred && !pred {
		rp.deliver(EvPredFail)
		rp.pred = false
	}
	for rp.succ < succ {
		rp.deliver(EvStabilize)
		rp.succ++
	}
	if !rp.pred && pred {
		rp.deliver(EvNotify)
		rp.pred = true
	}

	want := core.Vector{1, succ, 0}
	if pred {
		want[idxHasPred] = 1
	}
	if got, expect := rp.inst.StateName(), want.Name(rp.model.Components()); got != expect {
		rp.t.Fatalf("seed %d: machine state %s, live node implies %s", rp.seed, got, expect)
	}
	wantLabel := "IN_RING_NO_PRED"
	if pred {
		wantLabel = "IN_RING"
	}
	if got := rp.efsm.StateName(); got != wantLabel {
		rp.t.Fatalf("seed %d: EFSM state %s, live node implies %s", rp.seed, got, wantLabel)
	}
	if got := rp.efsm.Var("successors"); got != succ {
		rp.t.Fatalf("seed %d: EFSM successors = %d, live node has %d", rp.seed, got, succ)
	}
}

// TestMembershipModelConformsToRing is the differential conformance
// harness: ≥100 randomized churn schedules, each driven through simnet
// timers against a live Ring, each replayed through the generated machine.
func TestMembershipModelConformsToRing(t *testing.T) {
	lengths := []int{2, 3, 4}
	type generated struct {
		model   *Model
		machine *core.StateMachine
		efsm    *core.EFSM
	}
	byLen := map[int]generated{}
	for _, s := range lengths {
		model, machine, efsm := membershipMachines(t, s)
		byLen[s] = generated{model, machine, efsm}
	}

	for seed := int64(0); seed < conformanceSchedules; seed++ {
		s := lengths[seed%int64(len(lengths))]
		gen := byLen[s]
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		ring := NewRing(seed, WithSuccessorListLen(s))
		net := simnet.New(seed)

		// A random prefix of the overlay exists before the designated node
		// joins.
		for i := 0; i < rng.Intn(6); i++ {
			if _, err := ring.Join(fmt.Sprintf("pre-%d-%d", seed, i)); err != nil {
				t.Fatalf("seed %d: pre-join: %v", seed, err)
			}
		}
		ring.Stabilize()

		inst, err := runtime.New(gen.machine, nil)
		if err != nil {
			t.Fatal(err)
		}
		efsmInst, err := core.NewEFSMInstance(gen.efsm)
		if err != nil {
			t.Fatal(err)
		}
		rp := &replay{t: t, seed: seed, model: gen.model, inst: inst, efsm: efsmInst}

		d, err := ring.Join(fmt.Sprintf("designated-%d", seed))
		if err != nil {
			t.Fatalf("seed %d: join: %v", seed, err)
		}
		if actions := rp.deliver(EvJoin); !slices.Contains(actions, ActLookup) {
			t.Fatalf("seed %d: JOIN actions = %v, want %s", seed, actions, ActLookup)
		}
		ring.Stabilize()
		rp.sync(d, s)

		// The churn schedule itself is simnet-driven: every event is a
		// timer on the simulated clock, delivered in virtual-time order.
		events := 6 + rng.Intn(5)
		for i := 0; i < events; i++ {
			kind := rng.Intn(3)
			name := fmt.Sprintf("churn-%d-%d", seed, i)
			net.After(time.Duration(1+rng.Intn(40))*time.Millisecond, func() {
				others := make([]*Node, 0, ring.Size())
				for _, n := range ring.Nodes() {
					if n != d {
						others = append(others, n)
					}
				}
				switch {
				case kind == 0 || len(others) == 0:
					if _, err := ring.Join(name); err != nil {
						t.Errorf("seed %d: churn join: %v", seed, err)
					}
				case kind == 1:
					ring.Fail(others[rng.Intn(len(others))])
				default:
					ring.Leave(others[rng.Intn(len(others))])
				}
				ring.Stabilize()
				rp.sync(d, s)
			})
		}
		net.Run(0)

		ring.Leave(d)
		if actions := rp.deliver(EvLeave); !slices.Contains(actions, ActHandoff) {
			t.Fatalf("seed %d: LEAVE actions = %v, want %s", seed, actions, ActHandoff)
		}
		if !inst.Finished() || !efsmInst.Finished() {
			t.Fatalf("seed %d: departed node's machine not finished (machine=%v efsm=%v)",
				seed, inst.Finished(), efsmInst.Finished())
		}
	}
}

// TestMembershipModelRejectsOutOfProtocolEvents pins the guard behaviour
// the conformance replay relies on: events outside the protocol's fault
// envelope are rejected, not mis-transitioned.
func TestMembershipModelRejectsOutOfProtocolEvents(t *testing.T) {
	_, machine, _ := membershipMachines(t, 2)
	inst, err := runtime.New(machine, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range []string{EvStabilize, EvNotify, EvSuccFail, EvPredFail, EvLeave} {
		if _, err := inst.Deliver(msg); err == nil {
			t.Errorf("unjoined node accepted %s", msg)
		}
	}
	if _, err := inst.Deliver(EvJoin); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Deliver(EvJoin); err == nil {
		t.Error("joined node accepted a second JOIN")
	}
	// s-1 = 1 successor failure is tolerated silently; the exhausting one
	// triggers the re-bootstrap lookup.
	if _, err := inst.Deliver(EvStabilize); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Deliver(EvStabilize); err != nil {
		t.Fatal(err)
	}
	if actions, err := inst.Deliver(EvSuccFail); err != nil || len(actions) != 0 {
		t.Fatalf("first SUCC_FAIL: actions=%v err=%v, want silent tolerance", actions, err)
	}
	if actions, err := inst.Deliver(EvSuccFail); err != nil || !slices.Contains(actions, ActLookup) {
		t.Fatalf("exhausting SUCC_FAIL: actions=%v err=%v, want %s", actions, err, ActLookup)
	}
	if _, err := inst.Deliver(EvSuccFail); err == nil {
		t.Error("empty successor list accepted SUCC_FAIL")
	}
}

// efsmStructure renders an EFSM's transition structure with symbolic guard
// bounds (falling back to the concrete literal, which must then be a
// parameter-independent constant), for cross-parameter comparison.
func efsmStructure(e *core.EFSM) string {
	var b []byte
	bound := func(sym string, v int) string {
		if sym != "" {
			return sym
		}
		return fmt.Sprintf("%d", v)
	}
	for _, s := range e.States {
		b = append(b, s.Name...)
		b = append(b, ":\n"...)
		for _, tr := range s.Transitions {
			guard := "true"
			if !tr.Guard.Unconditional() {
				guard = fmt.Sprintf("%s <= %s <= %s",
					bound(tr.Guard.MinSym, tr.Guard.Min), tr.Guard.Variable, bound(tr.Guard.MaxSym, tr.Guard.Max))
			}
			ops := ""
			for _, op := range tr.VarOps {
				ops += " " + op.String()
			}
			b = append(b, fmt.Sprintf("  %s [%s] /%s {%s} -> %s\n",
				tr.Message, guard, ops, strings.Join(tr.Actions, ","), tr.Target.Name)...)
		}
	}
	return string(b)
}

// TestEFSMGenericInSuccessorListLength checks the §5.3 property for the
// membership EFSM: machines generalised from different successor-list
// lengths share an identical symbolic structure. Lengths s ≤ 3 are
// excluded: there the symbolic anchors coincide (s−1 meets the constant
// lower bound of the tolerated-failure interval) and guards degenerate,
// exactly as the commit EFSM's small-f factors do.
func TestEFSMGenericInSuccessorListLength(t *testing.T) {
	base, err := GenerateEFSM(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	baseStruct := efsmStructure(base)
	for _, s := range []int{8, 16} {
		e, err := GenerateEFSM(context.Background(), s)
		if err != nil {
			t.Fatalf("GenerateEFSM(s=%d): %v", s, err)
		}
		if got := efsmStructure(e); got != baseStruct {
			t.Errorf("s=%d: EFSM structure differs from s=4:\n--- s=4:\n%s\n--- s=%d:\n%s", s, baseStruct, s, got)
		}
	}
}
