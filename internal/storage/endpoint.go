package storage

import (
	"errors"
	"fmt"

	"asagen/internal/chord"
	"asagen/internal/simnet"
)

// Errors returned by the storage endpoint.
var (
	// ErrStoreQuorum reports a store that failed to collect r−f
	// acknowledgements.
	ErrStoreQuorum = errors.New("storage: store quorum not reached")
	// ErrNotFound reports a retrieval for which no replica returned a
	// block that verified against the PID.
	ErrNotFound = errors.New("storage: block not found on any replica")
)

// Endpoint is the data storage service endpoint of §2.1: it computes PIDs,
// locates the replica peer set through the routing layer, and runs the
// quorum store / verified retrieve protocols over the simulated network.
type Endpoint struct {
	id   simnet.NodeID
	net  *simnet.Network
	ring *chord.Ring
	r    int
	f    int

	nextReq   uint64
	storeAcks map[uint64]map[simnet.NodeID]bool
	fetches   map[uint64]*FetchReply
	// maxEvents bounds how long one operation may drive the network.
	maxEvents int
}

var _ simnet.Handler = (*Endpoint)(nil)

// NewEndpoint registers a storage client on the network. The replication
// factor must allow Byzantine tolerance (r ≥ 4, r > 3f with f = ⌊(r−1)/3⌋).
func NewEndpoint(id simnet.NodeID, net *simnet.Network, ring *chord.Ring, replicationFactor int) (*Endpoint, error) {
	if replicationFactor < 4 {
		return nil, fmt.Errorf("storage: replication factor %d < 4", replicationFactor)
	}
	e := &Endpoint{
		id:        id,
		net:       net,
		ring:      ring,
		r:         replicationFactor,
		f:         (replicationFactor - 1) / 3,
		storeAcks: make(map[uint64]map[simnet.NodeID]bool),
		fetches:   make(map[uint64]*FetchReply),
		maxEvents: 100000,
	}
	if err := net.AddNode(id, e); err != nil {
		return nil, err
	}
	return e, nil
}

// ReplicationFactor returns r.
func (e *Endpoint) ReplicationFactor() int { return e.r }

// FaultTolerance returns f.
func (e *Endpoint) FaultTolerance() int { return e.f }

// HandleMessage implements simnet.Handler: it collects store
// acknowledgements and fetch replies for in-flight operations.
func (e *Endpoint) HandleMessage(_ *simnet.Network, msg simnet.Message) {
	switch msg.Type {
	case MsgStoreAck:
		ack, ok := msg.Payload.(StoreAck)
		if !ok {
			return
		}
		if acks, pending := e.storeAcks[ack.ReqID]; pending {
			acks[msg.From] = true
		}
	case MsgFetchReply:
		reply, ok := msg.Payload.(FetchReply)
		if !ok {
			return
		}
		if _, pending := e.fetches[reply.ReqID]; pending {
			e.fetches[reply.ReqID] = &reply
		}
	}
}

// Locate resolves each replica key to the network identity of its owning
// node, routing through the overlay.
func (e *Endpoint) Locate(keys []chord.ID) ([]simnet.NodeID, error) {
	ids := make([]simnet.NodeID, 0, len(keys))
	for _, key := range keys {
		from, err := e.ring.RandomNode()
		if err != nil {
			return nil, fmt.Errorf("storage: locate: %w", err)
		}
		owner, _, err := from.FindSuccessor(key)
		if err != nil {
			return nil, fmt.Errorf("storage: locate key %x: %w", uint64(key), err)
		}
		ids = append(ids, simnet.NodeID(owner.Name()))
	}
	return ids, nil
}

// Store writes a data block: it computes the block's PID, locates the r
// replica nodes with the key-generation function, sends each a copy and
// completes once r−f have acknowledged — enough that at least f+1 honest
// nodes hold the block even if f acknowledgements were lies.
func (e *Endpoint) Store(data []byte) (PID, error) {
	pid := ComputePID(data)
	replicas, err := e.Locate(KeysForPID(pid, e.r))
	if err != nil {
		return pid, err
	}

	e.nextReq++
	reqID := e.nextReq
	acks := make(map[simnet.NodeID]bool, len(replicas))
	e.storeAcks[reqID] = acks
	defer delete(e.storeAcks, reqID)

	sent := make(map[simnet.NodeID]bool, len(replicas))
	for _, id := range replicas {
		if sent[id] {
			continue // small rings can map several keys to one node
		}
		sent[id] = true
		e.net.Send(simnet.Message{
			From: e.id, To: id, Type: MsgStore,
			Payload: StoreRequest{ReqID: reqID, PID: pid, Data: data},
		})
	}

	need := e.r - e.f
	if need > len(sent) {
		need = len(sent)
	}
	ok := e.net.RunUntil(func() bool { return len(acks) >= need }, e.maxEvents)
	if !ok {
		return pid, fmt.Errorf("%w: %d/%d acks for %s", ErrStoreQuorum, len(acks), need, pid.Short())
	}
	return pid, nil
}

// Retrieve reads the block named by pid: replicas are tried one at a time
// in random order, and the first reply whose content verifies against the
// PID is returned. Corrupt or missing replicas are skipped — the secure
// hash makes any single honest replica sufficient (§2.1).
func (e *Endpoint) Retrieve(pid PID) ([]byte, error) {
	replicas, err := e.Locate(KeysForPID(pid, e.r))
	if err != nil {
		return nil, err
	}
	order := e.net.Rand().Perm(len(replicas))

	tried := make(map[simnet.NodeID]bool, len(replicas))
	for _, i := range order {
		id := replicas[i]
		if tried[id] {
			continue
		}
		tried[id] = true

		e.nextReq++
		reqID := e.nextReq
		e.fetches[reqID] = nil

		e.net.Send(simnet.Message{
			From: e.id, To: id, Type: MsgFetch,
			Payload: FetchRequest{ReqID: reqID, PID: pid},
		})
		e.net.RunUntil(func() bool { return e.fetches[reqID] != nil }, e.maxEvents)
		reply := e.fetches[reqID]
		delete(e.fetches, reqID)

		if reply == nil || !reply.Found {
			continue // silent or empty replica: try the next one
		}
		if !pid.Verify(reply.Data) {
			continue // corrupt replica detected by the hash check
		}
		return reply.Data, nil
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, pid.Short())
}
