package storage

// This file lifts the data-storage endpoint protocol (§2.1) into the
// generative methodology: the per-block store/retrieve lifecycle run by
// Endpoint is captured as an abstract model (core.Model) and executed to
// generate the endpoint's protocol machine. The redundancy parameter is
// the replication factor r with f = ⌊(r−1)/3⌋, exactly as for the commit
// protocol: a store completes on r−f acknowledgements (so at least f+1
// honest replicas hold the block even if f acknowledgements were lies),
// and a retrieve tolerates up to f failed replica attempts before the
// hash-verified reply — one honest replica suffices.
//
// The generated machine is validated differentially: model_test.go replays
// it through the runtime interpreter against the hand-written Endpoint
// running over simnet with randomized Byzantine replica behaviours,
// asserting the generated transitions track the live operation's observed
// acknowledgement and fetch-attempt counts event for event.

import (
	"context"
	"fmt"

	"asagen/internal/core"
)

// Message types received by a storage-endpoint machine. They are the
// endpoint-local protocol events of one block's lifecycle.
const (
	// EvStore is the client's request to store the block.
	EvStore = "STORE"
	// EvStoreAck is one replica's store acknowledgement.
	EvStoreAck = "STORE_ACK"
	// EvFetch is the client's request to retrieve the block.
	EvFetch = "FETCH"
	// EvFetchMiss is one failed replica attempt: a silent, empty or
	// corrupt replica detected by the PID hash check.
	EvFetchMiss = "FETCH_MISS"
	// EvFetchOK is a replica reply whose content verified against the PID.
	EvFetchOK = "FETCH_OK"
)

// Actions performed on phase transitions.
const (
	// ActStoreBlock sends the block to its r replica owners.
	ActStoreBlock = "->store"
	// ActFetchReplica asks the next replica for the block.
	ActFetchReplica = "->fetch"
)

// Component indices.
const (
	idxStoreSent = iota
	idxAcks
	idxFetching
	idxMisses
	numModelComponents
)

// Model is the storage-endpoint abstract model for a fixed replication
// factor r. It implements core.Model.
type Model struct {
	r int
	f int
}

var _ core.Model = (*Model)(nil)

// NewModel returns the endpoint model for replication factor r. Like
// NewEndpoint it requires r ≥ 4 so the scheme tolerates at least one
// Byzantine replica (r > 3f with f = ⌊(r−1)/3⌋).
func NewModel(r int) (*Model, error) {
	if r < 4 {
		return nil, fmt.Errorf("storage: replication factor %d < 4", r)
	}
	return &Model{r: r, f: (r - 1) / 3}, nil
}

// ReplicationFactor returns r.
func (m *Model) ReplicationFactor() int { return m.r }

// FaultTolerance returns f = ⌊(r−1)/3⌋, the number of Byzantine replicas
// tolerated by both the store quorum and the retrieve retry loop.
func (m *Model) FaultTolerance() int { return m.f }

// StoreQuorum returns r−f, the acknowledgement count that completes a
// store.
func (m *Model) StoreQuorum() int { return m.r - m.f }

// Name implements core.Model.
func (m *Model) Name() string { return "replicated-store" }

// Parameter implements core.Model.
func (m *Model) Parameter() int { return m.r }

// Components implements core.Model.
func (m *Model) Components() []core.StateComponent {
	return []core.StateComponent{
		core.NewBoolComponent("store_sent"),
		core.NewIntComponent("acks_received", m.StoreQuorum()),
		core.NewBoolComponent("fetch_outstanding"),
		core.NewIntComponent("misses", m.f),
	}
}

// Messages implements core.Model.
func (m *Model) Messages() []string {
	return []string{EvStore, EvStoreAck, EvFetch, EvFetchMiss, EvFetchOK}
}

// Start implements core.Model: nothing sent, nothing counted.
func (m *Model) Start() core.Vector { return make(core.Vector, numModelComponents) }

// Apply implements core.Model.
func (m *Model) Apply(v core.Vector, msg string) (core.Effect, bool) {
	s := v.Clone()
	var actions, notes []string
	finished := false

	switch msg {
	case EvStore:
		if s[idxStoreSent] != 0 {
			return core.Effect{}, false // operation already in flight
		}
		s[idxStoreSent] = 1
		actions = append(actions, ActStoreBlock)
		notes = append(notes, fmt.Sprintf("Compute the block's PID and send a copy to its %d replica owners.", m.r))

	case EvStoreAck:
		if s[idxStoreSent] == 0 || s[idxAcks] == m.StoreQuorum() {
			// Before the store, or after the quorum: the endpoint has
			// discarded the pending acknowledgement set.
			return core.Effect{}, false
		}
		s[idxAcks]++
		notes = append(notes, "Record one further store acknowledgement.")
		if s[idxAcks] == m.StoreQuorum() {
			notes = append(notes, fmt.Sprintf("Quorum (r−f = %d) reached: at least f+1 = %d honest replicas hold the block.",
				m.StoreQuorum(), m.f+1))
		}

	case EvFetch:
		if s[idxAcks] != m.StoreQuorum() || s[idxFetching] != 0 {
			return core.Effect{}, false // block not yet durable, or already fetching
		}
		s[idxFetching] = 1
		actions = append(actions, ActFetchReplica)
		notes = append(notes, "Locate the replicas and ask one for the block.")

	case EvFetchMiss:
		if s[idxFetching] == 0 || s[idxMisses] == m.f {
			// More than f misses would exceed the fault model: the
			// delivery is rejected rather than transitioned.
			return core.Effect{}, false
		}
		s[idxMisses]++
		actions = append(actions, ActFetchReplica)
		notes = append(notes, fmt.Sprintf("Replica silent, empty or corrupt (%d of at most f = %d): try the next.", s[idxMisses], m.f))

	case EvFetchOK:
		if s[idxFetching] == 0 {
			return core.Effect{}, false
		}
		finished = true
		notes = append(notes, "A replica's content verified against the PID: retrieve complete.")

	default:
		return core.Effect{}, false
	}
	return core.Effect{Target: s, Actions: actions, Annotations: notes, Finished: finished}, true
}

// DescribeState implements core.Model.
func (m *Model) DescribeState(v core.Vector) []string {
	lines := make([]string, 0, 3)
	if v[idxStoreSent] == 0 {
		lines = append(lines, "No store operation in flight.")
	} else {
		lines = append(lines, fmt.Sprintf("Store sent to %d replicas; %d of %d acknowledgements received.",
			m.r, v[idxAcks], m.StoreQuorum()))
	}
	if v[idxFetching] != 0 {
		lines = append(lines, fmt.Sprintf("Retrieve in progress; %d failed attempts (tolerates %d).", v[idxMisses], m.f))
	}
	return lines
}

// Abstraction coalesces the acknowledgement and miss counters for EFSM
// generation: the abstract states track only the operation phase, and the
// counts become guarded counter variables.
type Abstraction struct {
	model *Model
}

var _ core.EFSMAbstraction = (*Abstraction)(nil)

// NewAbstraction returns the EFSM abstraction for the model.
func NewAbstraction(m *Model) *Abstraction { return &Abstraction{model: m} }

// StateLabel implements core.EFSMAbstraction.
func (a *Abstraction) StateLabel(v core.Vector) string {
	switch {
	case v[idxStoreSent] == 0:
		return "IDLE"
	case v[idxFetching] == 0:
		return "STORING"
	default:
		return "READING"
	}
}

// GuardComponent implements core.EFSMAbstraction.
func (a *Abstraction) GuardComponent(msg string) int {
	switch msg {
	case EvStoreAck, EvFetch:
		return idxAcks
	case EvFetchMiss:
		return idxMisses
	default:
		return -1
	}
}

// VarOps implements core.EFSMAbstraction.
func (a *Abstraction) VarOps(msg string) []core.VarOp {
	switch msg {
	case EvStoreAck:
		return []core.VarOp{{Variable: "acks_received", Delta: 1}}
	case EvFetchMiss:
		return []core.VarOp{{Variable: "misses", Delta: 1}}
	default:
		return nil
	}
}

// Symbol implements core.EFSMAbstraction.
func (a *Abstraction) Symbol(component, value int) string {
	if component == idxAcks {
		switch value {
		case 0:
			return "0"
		case a.model.StoreQuorum():
			return "r-f"
		case a.model.StoreQuorum() - 1:
			return "r-f-1"
		}
		return ""
	}
	switch value {
	case 0:
		return "0"
	case a.model.f:
		return "f"
	case a.model.f - 1:
		return "f-1"
	}
	return ""
}

// GenerateEFSM generates the endpoint machine for replication factor r and
// coalesces it into the parameter-independent EFSM.
func GenerateEFSM(ctx context.Context, r int) (*core.EFSM, error) {
	m, err := NewModel(r)
	if err != nil {
		return nil, err
	}
	machine, err := core.Generate(ctx, m, core.WithoutDescriptions())
	if err != nil {
		return nil, fmt.Errorf("storage: generate machine: %w", err)
	}
	return core.GeneralizeEFSM(machine, NewAbstraction(m))
}
