package storage

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"asagen/internal/chord"
	"asagen/internal/simnet"
)

func TestComputePIDAndVerify(t *testing.T) {
	data := []byte("the quick brown fox")
	pid := ComputePID(data)
	if !pid.Verify(data) {
		t.Error("PID does not verify its own content")
	}
	if pid.Verify([]byte("tampered")) {
		t.Error("PID verifies foreign content")
	}
	if pid != ComputePID(data) {
		t.Error("PID not deterministic")
	}
	if len(pid.String()) != 40 {
		t.Errorf("hex PID length = %d, want 40", len(pid.String()))
	}
	if len(pid.Short()) != 8 {
		t.Errorf("short PID length = %d", len(pid.Short()))
	}
}

// TestPIDVerifyProperty: for arbitrary blobs, Verify accepts the hashed
// content and rejects any single-byte mutation.
func TestPIDVerifyProperty(t *testing.T) {
	prop := func(data []byte, flip uint8) bool {
		pid := ComputePID(data)
		if !pid.Verify(data) {
			return false
		}
		if len(data) == 0 {
			return true
		}
		mutated := append([]byte(nil), data...)
		mutated[int(flip)%len(mutated)] ^= 0x01
		return !pid.Verify(mutated)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestGUID(t *testing.T) {
	a, b := NewGUID("file-a"), NewGUID("file-b")
	if a == b {
		t.Error("distinct names share a GUID")
	}
	if a != NewGUID("file-a") {
		t.Error("GUID not deterministic")
	}
	if len(a.String()) != 40 || len(a.Short()) != 8 {
		t.Error("GUID rendering lengths wrong")
	}
}

func TestReplicaKeysEvenlySpread(t *testing.T) {
	keys := ReplicaKeys(12345, 4)
	if len(keys) != 4 {
		t.Fatalf("len = %d", len(keys))
	}
	stride := keys[1] - keys[0]
	for i := 1; i < len(keys); i++ {
		if keys[i]-keys[i-1] != stride {
			t.Errorf("uneven stride at %d", i)
		}
	}
	// Spread covers the ring: stride ≈ 2^64 / r.
	if stride < (^chord.ID(0))/5 {
		t.Errorf("stride %d too small for even spread", stride)
	}
	if got := ReplicaKeys(1, 0); got != nil {
		t.Error("non-nil keys for zero replication")
	}
}

func TestKeysDeterministic(t *testing.T) {
	pid := ComputePID([]byte("x"))
	a, b := KeysForPID(pid, 7), KeysForPID(pid, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("replica keys not deterministic")
		}
	}
	guid := NewGUID("g")
	if KeysForGUID(guid, 4)[0] == KeysForPID(pid, 4)[0] {
		t.Log("note: coincidental key collision (harmless)")
	}
}

// cluster wires a ring of storage nodes and an endpoint together.
type cluster struct {
	net      *simnet.Network
	ring     *chord.Ring
	endpoint *Endpoint
	nodes    map[simnet.NodeID]*Node
}

// newCluster builds n storage nodes; behaviours assigns fault models to a
// subset of node indices.
func newCluster(t *testing.T, seed int64, n, replication int, behaviours map[int]Behaviour) *cluster {
	t.Helper()
	net := simnet.New(seed)
	ring, err := chord.Build(seed, n)
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{net: net, ring: ring, nodes: make(map[simnet.NodeID]*Node)}
	for i, cn := range ring.Nodes() {
		behaviour := Honest
		if b, ok := behaviours[i]; ok {
			behaviour = b
		}
		id := simnet.NodeID(cn.Name())
		node := NewNode(id, behaviour)
		c.nodes[id] = node
		if err := net.AddNode(id, node); err != nil {
			t.Fatal(err)
		}
	}
	c.endpoint, err = NewEndpoint("client", net, ring, replication)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStoreAndRetrieveAllHonest(t *testing.T) {
	c := newCluster(t, 1, 32, 4, nil)
	data := []byte("hello distributed world")
	pid, err := c.endpoint.Store(data)
	if err != nil {
		t.Fatalf("Store: %v", err)
	}
	got, err := c.endpoint.Retrieve(pid)
	if err != nil {
		t.Fatalf("Retrieve: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("retrieved content differs")
	}
}

func TestStoreReplicationCount(t *testing.T) {
	c := newCluster(t, 2, 32, 4, nil)
	data := []byte("replicate me")
	pid, err := c.endpoint.Store(data)
	if err != nil {
		t.Fatal(err)
	}
	c.net.Run(0) // let stragglers finish
	holders := 0
	for _, n := range c.nodes {
		if n.Holds(pid) {
			holders++
		}
	}
	// All r distinct replica nodes eventually hold the block.
	replicas, err := c.endpoint.Locate(KeysForPID(pid, 4))
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[simnet.NodeID]bool{}
	for _, id := range replicas {
		distinct[id] = true
	}
	if holders != len(distinct) {
		t.Errorf("holders = %d, want %d", holders, len(distinct))
	}
}

func TestStoreToleratesSilentMinority(t *testing.T) {
	// With r = 4, f = 1: one silent node must not block the store.
	for seed := int64(1); seed <= 10; seed++ {
		c := newCluster(t, seed, 16, 4, map[int]Behaviour{0: Silent, 5: Silent})
		// Two silent nodes among 16: a given peer set of 4 contains at
		// most 2; if more than f are silent the store may legitimately
		// fail, so only assert success when ≤ f replicas are silent.
		data := []byte(fmt.Sprintf("payload-%d", seed))
		pid := ComputePID(data)
		replicas, err := c.endpoint.Locate(KeysForPID(pid, 4))
		if err != nil {
			t.Fatal(err)
		}
		silent := 0
		seen := map[simnet.NodeID]bool{}
		for _, id := range replicas {
			if !seen[id] {
				seen[id] = true
				if c.nodes[id].Behaviour() == Silent {
					silent++
				}
			}
		}
		_, err = c.endpoint.Store(data)
		if silent <= 1 && len(seen) == 4 {
			if err != nil {
				t.Errorf("seed %d: store failed with %d silent replicas: %v", seed, silent, err)
			}
		}
	}
}

func TestStoreFailsBeyondQuorum(t *testing.T) {
	// All nodes silent: no acknowledgements, the store must fail.
	behaviours := map[int]Behaviour{}
	for i := 0; i < 16; i++ {
		behaviours[i] = Silent
	}
	c := newCluster(t, 3, 16, 4, behaviours)
	_, err := c.endpoint.Store([]byte("doomed"))
	if !errors.Is(err, ErrStoreQuorum) {
		t.Errorf("Store = %v, want ErrStoreQuorum", err)
	}
}

func TestRetrieveSkipsCorruptReplicas(t *testing.T) {
	// Make most nodes corrupting; retrieval must still find the honest
	// replica by hash verification.
	for seed := int64(1); seed <= 10; seed++ {
		behaviours := map[int]Behaviour{}
		for i := 0; i < 16; i += 2 {
			behaviours[i] = Corrupting
		}
		c := newCluster(t, seed, 16, 4, behaviours)
		data := []byte(fmt.Sprintf("precious-%d", seed))
		pid, err := c.endpoint.Store(data)
		if err != nil {
			t.Fatal(err)
		}
		c.net.Run(0)
		// At least one replica honest?
		replicas, err := c.endpoint.Locate(KeysForPID(pid, 4))
		if err != nil {
			t.Fatal(err)
		}
		honest := 0
		seen := map[simnet.NodeID]bool{}
		for _, id := range replicas {
			if !seen[id] {
				seen[id] = true
				if c.nodes[id].Behaviour() == Honest {
					honest++
				}
			}
		}
		got, err := c.endpoint.Retrieve(pid)
		if honest >= 1 {
			if err != nil {
				t.Errorf("seed %d: Retrieve failed with %d honest replicas: %v", seed, honest, err)
				continue
			}
			if !bytes.Equal(got, data) {
				t.Errorf("seed %d: corrupted data returned", seed)
			}
		}
	}
}

func TestRetrieveUnknownPID(t *testing.T) {
	c := newCluster(t, 4, 16, 4, nil)
	if _, err := c.endpoint.Retrieve(ComputePID([]byte("never stored"))); !errors.Is(err, ErrNotFound) {
		t.Errorf("Retrieve = %v, want ErrNotFound", err)
	}
}

func TestLyingNodesDetectedOnRead(t *testing.T) {
	// Lying nodes ack but discard; with ≤ f liars the store succeeds and
	// the block is still retrievable from honest replicas.
	c := newCluster(t, 5, 16, 4, map[int]Behaviour{2: Lying})
	data := []byte("audit me")
	pid, err := c.endpoint.Store(data)
	if err != nil {
		t.Fatalf("Store: %v", err)
	}
	c.net.Run(0)
	got, err := c.endpoint.Retrieve(pid)
	if err != nil {
		t.Fatalf("Retrieve: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("content differs")
	}
}

func TestEndpointValidation(t *testing.T) {
	net := simnet.New(1)
	ring, err := chord.Build(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEndpoint("c", net, ring, 3); err == nil {
		t.Error("replication factor 3 accepted")
	}
	if _, err := NewEndpoint("c", net, ring, 4); err != nil {
		t.Errorf("valid endpoint rejected: %v", err)
	}
	// Duplicate network identity.
	if _, err := NewEndpoint("c", net, ring, 4); err == nil {
		t.Error("duplicate endpoint id accepted")
	}
}

func TestBehaviourString(t *testing.T) {
	tests := []struct {
		b    Behaviour
		want string
	}{
		{Honest, "honest"}, {Silent, "silent"}, {Lying, "lying"},
		{Corrupting, "corrupting"}, {Behaviour(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.b.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", tt.b, got, tt.want)
		}
	}
}
