package storage

// Differential conformance for the generated storage-endpoint machines:
// the hand-written Endpoint runs real store/retrieve operations over simnet
// against replica nodes with randomized Byzantine behaviours (silent,
// lying, corrupting — at most f faulty per schedule), and the observed
// protocol events — acknowledgements counted to quorum, fetch attempts
// until the hash-verified reply — are replayed through the runtime
// interpreter and the EFSM instance. The generated transitions must track
// the live operation exactly, and events beyond the fault envelope (a
// post-quorum ack, an f+1-th miss) must be rejected.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"strings"
	"testing"

	"asagen/internal/chord"
	"asagen/internal/core"
	"asagen/internal/runtime"
	"asagen/internal/simnet"
)

// conformanceSchedules is the number of randomized fault schedules the
// conformance run must cover (the acceptance floor is 100).
const conformanceSchedules = 110

// endpointMachines generates the concrete machine (unmerged, so state
// names are raw component vectors) and the EFSM for one replication
// factor.
func endpointMachines(t *testing.T, r int) (*Model, *core.StateMachine, *core.EFSM) {
	t.Helper()
	model, err := NewModel(r)
	if err != nil {
		t.Fatal(err)
	}
	machine, err := core.Generate(context.Background(), model,
		core.WithoutDescriptions(), core.WithoutMerging())
	if err != nil {
		t.Fatalf("Generate(r=%d): %v", r, err)
	}
	efsm, err := GenerateEFSM(context.Background(), r)
	if err != nil {
		t.Fatalf("GenerateEFSM(r=%d): %v", r, err)
	}
	return model, machine, efsm
}

// twin drives the concrete instance and the EFSM in lockstep.
type twin struct {
	t    *testing.T
	seed int64
	inst *runtime.Instance
	efsm *core.EFSMInstance
}

func (tw *twin) deliver(msg string) []string {
	tw.t.Helper()
	actions, err := tw.inst.Deliver(msg)
	if err != nil {
		tw.t.Fatalf("seed %d: machine rejected %s in state %s: %v", tw.seed, msg, tw.inst.StateName(), err)
	}
	eActions, ok := tw.efsm.Deliver(msg)
	if !ok {
		tw.t.Fatalf("seed %d: EFSM rejected %s in state %s", tw.seed, msg, tw.efsm.StateName())
	}
	if !slices.Equal(actions, eActions) {
		tw.t.Fatalf("seed %d: %s actions diverge: machine %v, EFSM %v", tw.seed, msg, actions, eActions)
	}
	return actions
}

// rejected asserts both executions refuse the event.
func (tw *twin) rejected(msg, why string) {
	tw.t.Helper()
	var ignored *runtime.IgnoredError
	if _, err := tw.inst.Deliver(msg); !errors.As(err, &ignored) {
		tw.t.Fatalf("seed %d: machine accepted %s (%s), err=%v", tw.seed, msg, why, err)
	}
	if _, ok := tw.efsm.Deliver(msg); ok {
		tw.t.Fatalf("seed %d: EFSM accepted %s (%s)", tw.seed, msg, why)
	}
}

// runSchedule exercises one randomized fault schedule end to end. It
// reports false when the schedule is skipped because the block's replica
// keys collide on the overlay (the machine models r distinct replicas).
func runSchedule(t *testing.T, seed int64, models map[int]*Model, machines map[int]*core.StateMachine, efsms map[int]*core.EFSM) bool {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rs := []int{4, 7}
	r := rs[rng.Intn(len(rs))]
	model := models[r]
	f := model.FaultTolerance()
	quorum := model.StoreQuorum()

	net := simnet.New(seed)
	ring, err := chord.Build(seed, 48)
	if err != nil {
		t.Fatal(err)
	}

	// At most f nodes misbehave, with uniformly random fault types; the
	// fault count is drawn once so max-fault schedules stay as likely as
	// fault-free ones.
	faulty := map[int]Behaviour{}
	behaviours := []Behaviour{Silent, Lying, Corrupting}
	for faults := rng.Intn(f + 1); len(faulty) < faults; {
		faulty[rng.Intn(ring.Size())] = behaviours[rng.Intn(len(behaviours))]
	}
	fetched := make(map[simnet.NodeID]int)
	for i, n := range ring.Nodes() {
		behaviour := Honest
		if b, ok := faulty[i]; ok {
			behaviour = b
		}
		id := simnet.NodeID(n.Name())
		node := NewNode(id, behaviour)
		err := net.AddNode(id, simnet.HandlerFunc(func(net *simnet.Network, msg simnet.Message) {
			if msg.Type == MsgFetch {
				fetched[id]++
			}
			node.HandleMessage(net, msg)
		}))
		if err != nil {
			t.Fatal(err)
		}
	}

	endpoint, err := NewEndpoint("client", net, ring, r)
	if err != nil {
		t.Fatal(err)
	}

	data := make([]byte, 64)
	rng.Read(data)
	pid := ComputePID(data)
	owners := map[string]bool{}
	for _, key := range KeysForPID(pid, r) {
		owner, err := ring.NodeFor(key)
		if err != nil {
			t.Fatal(err)
		}
		owners[owner.Name()] = true
	}
	if len(owners) != r {
		return false // replica keys collide: the machine models r distinct replicas
	}

	inst, err := runtime.New(machines[r], nil)
	if err != nil {
		t.Fatal(err)
	}
	efsmInst, err := core.NewEFSMInstance(efsms[r])
	if err != nil {
		t.Fatal(err)
	}
	tw := &twin{t: t, seed: seed, inst: inst, efsm: efsmInst}

	// Out-of-protocol prefixes must be rejected before the store begins.
	tw.rejected(EvStoreAck, "ack before store")
	tw.rejected(EvFetch, "fetch before the block is durable")

	// Store: the live endpoint collects exactly r−f acknowledgements (with
	// at most f silent or lying replicas the quorum always completes).
	if _, err := endpoint.Store(data); err != nil {
		t.Fatalf("seed %d: Store: %v", seed, err)
	}
	if actions := tw.deliver(EvStore); !slices.Contains(actions, ActStoreBlock) {
		t.Fatalf("seed %d: STORE actions = %v, want %s", seed, actions, ActStoreBlock)
	}
	for i := 0; i < quorum; i++ {
		tw.deliver(EvStoreAck)
	}
	want := core.Vector{1, quorum, 0, 0}.Name(model.Components())
	if got := inst.StateName(); got != want {
		t.Fatalf("seed %d: after store, machine state %s, live endpoint implies %s", seed, got, want)
	}
	if got := efsmInst.Var("acks_received"); got != quorum {
		t.Fatalf("seed %d: EFSM acks_received = %d, want %d", seed, got, quorum)
	}
	// The endpoint discards the pending ack set at quorum; a late ack must
	// be rejected, not counted.
	tw.rejected(EvStoreAck, "ack after quorum")

	// Drain in-flight deliveries (replica copies still propagating) so the
	// retrieve runs against the settled store, then count its attempts.
	net.Run(0)
	got, err := endpoint.Retrieve(pid)
	if err != nil {
		t.Fatalf("seed %d: Retrieve: %v", seed, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("seed %d: Retrieve returned wrong content", seed)
	}
	attempts := 0
	for _, n := range fetched {
		attempts += n
	}
	misses := attempts - 1
	if misses < 0 || misses > f {
		t.Fatalf("seed %d: live endpoint needed %d attempts with f=%d — outside the machine's fault envelope",
			seed, attempts, f)
	}
	if actions := tw.deliver(EvFetch); !slices.Contains(actions, ActFetchReplica) {
		t.Fatalf("seed %d: FETCH actions = %v, want %s", seed, actions, ActFetchReplica)
	}
	for i := 0; i < misses; i++ {
		if actions := tw.deliver(EvFetchMiss); !slices.Contains(actions, ActFetchReplica) {
			t.Fatalf("seed %d: FETCH_MISS actions = %v, want retry %s", seed, actions, ActFetchReplica)
		}
	}
	tw.deliver(EvFetchOK)
	if !inst.Finished() || !efsmInst.Finished() {
		t.Fatalf("seed %d: retrieve complete but machine not finished (machine=%v efsm=%v)",
			seed, inst.Finished(), efsmInst.Finished())
	}
	return true
}

// TestEndpointModelConformsToSimulation is the simnet differential
// conformance harness: ≥100 randomized Byzantine fault schedules, each a
// real quorum store plus verified retrieve replayed through the generated
// machine.
func TestEndpointModelConformsToSimulation(t *testing.T) {
	models := map[int]*Model{}
	machines := map[int]*core.StateMachine{}
	efsms := map[int]*core.EFSM{}
	for _, r := range []int{4, 7} {
		models[r], machines[r], efsms[r] = endpointMachines(t, r)
	}

	valid := 0
	for seed := int64(0); valid < conformanceSchedules && seed < 4*conformanceSchedules; seed++ {
		if runSchedule(t, seed, models, machines, efsms) {
			valid++
		}
	}
	if valid < 100 {
		t.Fatalf("only %d valid schedules ran, want >= 100", valid)
	}
}

// TestEndpointModelFaultExhaustion pins the redundancy bound in the
// generated machine: exactly f misses are tolerated, and the f+1-th is
// rejected as outside the fault model — the machine encoding of "one
// honest replica suffices".
func TestEndpointModelFaultExhaustion(t *testing.T) {
	model, machine, efsm := endpointMachines(t, 4)
	inst, err := runtime.New(machine, nil)
	if err != nil {
		t.Fatal(err)
	}
	efsmInst, err := core.NewEFSMInstance(efsm)
	if err != nil {
		t.Fatal(err)
	}
	tw := &twin{t: t, seed: -1, inst: inst, efsm: efsmInst}

	tw.deliver(EvStore)
	for i := 0; i < model.StoreQuorum(); i++ {
		tw.deliver(EvStoreAck)
	}
	tw.deliver(EvFetch)
	for i := 0; i < model.FaultTolerance(); i++ {
		tw.deliver(EvFetchMiss)
	}
	tw.rejected(EvFetchMiss, fmt.Sprintf("miss %d with f=%d", model.FaultTolerance()+1, model.FaultTolerance()))
	tw.deliver(EvFetchOK)
	if !inst.Finished() {
		t.Fatal("machine not finished after the verified reply")
	}
}

// efsmStructure renders an EFSM's transition structure with symbolic guard
// bounds (falling back to the concrete literal, which must then be a
// parameter-independent constant), for cross-parameter comparison.
func efsmStructure(e *core.EFSM) string {
	var b []byte
	bound := func(sym string, v int) string {
		if sym != "" {
			return sym
		}
		return fmt.Sprintf("%d", v)
	}
	for _, s := range e.States {
		b = append(b, s.Name...)
		b = append(b, ":\n"...)
		for _, tr := range s.Transitions {
			guard := "true"
			if !tr.Guard.Unconditional() {
				guard = fmt.Sprintf("%s <= %s <= %s",
					bound(tr.Guard.MinSym, tr.Guard.Min), tr.Guard.Variable, bound(tr.Guard.MaxSym, tr.Guard.Max))
			}
			ops := ""
			for _, op := range tr.VarOps {
				ops += " " + op.String()
			}
			b = append(b, fmt.Sprintf("  %s [%s] /%s {%s} -> %s\n",
				tr.Message, guard, ops, strings.Join(tr.Actions, ","), tr.Target.Name)...)
		}
	}
	return string(b)
}

// TestEFSMGenericInReplicationFactor checks the §5.3 property for the
// endpoint EFSM: machines generalised from different replication factors
// share an identical symbolic structure. Factors with f = 1 (r < 7) are
// excluded: there the miss-tolerance interval degenerates to a point and
// its symbolic anchors coincide with the constants, exactly as the commit
// EFSM's small-f factors do.
func TestEFSMGenericInReplicationFactor(t *testing.T) {
	base, err := GenerateEFSM(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	baseStruct := efsmStructure(base)
	for _, r := range []int{13, 25} {
		e, err := GenerateEFSM(context.Background(), r)
		if err != nil {
			t.Fatalf("GenerateEFSM(r=%d): %v", r, err)
		}
		if got := efsmStructure(e); got != baseStruct {
			t.Errorf("r=%d: EFSM structure differs from r=7:\n--- r=7:\n%s\n--- r=%d:\n%s", r, baseStruct, r, got)
		}
	}
}
