package storage

import (
	"asagen/internal/simnet"
)

// Message types exchanged between the storage endpoint and storage nodes.
const (
	MsgStore      = "storage.store"
	MsgStoreAck   = "storage.store_ack"
	MsgFetch      = "storage.fetch"
	MsgFetchReply = "storage.fetch_reply"
)

// StoreRequest asks a node to store a replica of a block.
type StoreRequest struct {
	// ReqID correlates acknowledgements with the originating operation.
	ReqID uint64
	// PID names the block.
	PID PID
	// Data is the block content.
	Data []byte
}

// StoreAck acknowledges a successful store.
type StoreAck struct {
	// ReqID echoes the request.
	ReqID uint64
	// PID echoes the block name.
	PID PID
}

// FetchRequest asks a node for a replica.
type FetchRequest struct {
	// ReqID correlates the reply with the originating operation.
	ReqID uint64
	// PID names the block.
	PID PID
}

// FetchReply returns a replica (or nothing, when the node lacks the block).
type FetchReply struct {
	// ReqID echoes the request.
	ReqID uint64
	// PID echoes the block name.
	PID PID
	// Found reports whether the node held the block.
	Found bool
	// Data is the block content when found.
	Data []byte
}

// Behaviour selects how a storage node (mis)behaves — the Byzantine fault
// models the quorum scheme must tolerate.
type Behaviour int

// Storage node behaviours.
const (
	// Honest nodes store and serve blocks faithfully.
	Honest Behaviour = iota + 1
	// Silent nodes never reply (fail-stop from the client's viewpoint).
	Silent
	// Lying nodes acknowledge stores but discard the data.
	Lying
	// Corrupting nodes store data but serve corrupted bytes.
	Corrupting
)

// String names the behaviour.
func (b Behaviour) String() string {
	switch b {
	case Honest:
		return "honest"
	case Silent:
		return "silent"
	case Lying:
		return "lying"
	case Corrupting:
		return "corrupting"
	default:
		return "unknown"
	}
}

// Node is one storage server, attached to a simulated-network identity. It
// holds the replicas whose keys it owns in the routing layer.
type Node struct {
	id        simnet.NodeID
	behaviour Behaviour
	blocks    map[PID][]byte
}

var _ simnet.Handler = (*Node)(nil)

// NewNode returns a storage node with the given behaviour.
func NewNode(id simnet.NodeID, behaviour Behaviour) *Node {
	return &Node{
		id:        id,
		behaviour: behaviour,
		blocks:    make(map[PID][]byte),
	}
}

// ID returns the node's network identity.
func (n *Node) ID() simnet.NodeID { return n.id }

// Behaviour returns the node's fault model.
func (n *Node) Behaviour() Behaviour { return n.behaviour }

// Blocks returns the number of replicas held.
func (n *Node) Blocks() int { return len(n.blocks) }

// Holds reports whether the node has a replica of pid.
func (n *Node) Holds(pid PID) bool {
	_, ok := n.blocks[pid]
	return ok
}

// HandleMessage implements simnet.Handler.
func (n *Node) HandleMessage(net *simnet.Network, msg simnet.Message) {
	if n.behaviour == Silent {
		return
	}
	switch msg.Type {
	case MsgStore:
		req, ok := msg.Payload.(StoreRequest)
		if !ok {
			return
		}
		if n.behaviour != Lying {
			data := make([]byte, len(req.Data))
			copy(data, req.Data)
			n.blocks[req.PID] = data
		}
		net.Send(simnet.Message{
			From: n.id, To: msg.From, Type: MsgStoreAck,
			Payload: StoreAck{ReqID: req.ReqID, PID: req.PID},
		})
	case MsgFetch:
		req, ok := msg.Payload.(FetchRequest)
		if !ok {
			return
		}
		data, found := n.blocks[req.PID]
		reply := FetchReply{ReqID: req.ReqID, PID: req.PID, Found: found}
		if found {
			out := make([]byte, len(data))
			copy(out, data)
			if n.behaviour == Corrupting && len(out) > 0 {
				out[0] ^= 0xFF
			}
			reply.Data = out
		}
		net.Send(simnet.Message{
			From: n.id, To: msg.From, Type: MsgFetchReply, Payload: reply,
		})
	}
}
