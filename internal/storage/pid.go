// Package storage implements the generic key-based storage layer of the
// ASA architecture (§2.1): immutable data blocks named by PIDs (secure
// hashes of their content), replicated across a peer set of nodes located
// through the key-based routing layer. A store completes once r−f replicas
// acknowledge; retrieval verifies the returned block against its PID, so a
// single honest replica suffices.
package storage

import (
	"bytes"
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"

	"asagen/internal/chord"
)

// PID is a Persistent Identifier: the SHA-1 digest of an immutable data
// block's content (§2.1; SHA-1 per the paper's prototype).
type PID [sha1.Size]byte

// ComputePID returns the PID of a data block.
func ComputePID(data []byte) PID {
	return sha1.Sum(data)
}

// String returns the PID in hexadecimal.
func (p PID) String() string { return hex.EncodeToString(p[:]) }

// Short returns an abbreviated hexadecimal form for logs.
func (p PID) Short() string { return hex.EncodeToString(p[:4]) }

// Verify reports whether data hashes to this PID — the integrity check a
// client applies to a retrieved block, making storage nodes untrusted for
// reads.
func (p PID) Verify(data []byte) bool {
	sum := sha1.Sum(data)
	return bytes.Equal(sum[:], p[:])
}

// GUID is a Globally Unique Identifier denoting something with identity,
// such as a file, whose version history maps it to a sequence of PIDs.
type GUID [sha1.Size]byte

// NewGUID derives a GUID from a name.
func NewGUID(name string) GUID {
	return sha1.Sum([]byte("guid:" + name))
}

// String returns the GUID in hexadecimal.
func (g GUID) String() string { return hex.EncodeToString(g[:]) }

// Short returns an abbreviated hexadecimal form for logs.
func (g GUID) Short() string { return hex.EncodeToString(g[:4]) }

// ReplicaKeys is the globally known key-generation function of §2.1: it
// deterministically derives replicationFactor routing keys from a single
// base key, evenly distributed in key space, so replicas land on
// independent nodes.
func ReplicaKeys(base chord.ID, replicationFactor int) []chord.ID {
	if replicationFactor <= 0 {
		return nil
	}
	keys := make([]chord.ID, replicationFactor)
	stride := ^chord.ID(0)/chord.ID(replicationFactor) + 1
	for i := range keys {
		keys[i] = base + chord.ID(i)*stride
	}
	return keys
}

// KeysForPID derives the replica keys for a data block.
func KeysForPID(pid PID, replicationFactor int) []chord.ID {
	return ReplicaKeys(chord.ID(binary.BigEndian.Uint64(pid[:8])), replicationFactor)
}

// KeysForGUID derives the peer-set keys for a version history.
func KeysForGUID(guid GUID, replicationFactor int) []chord.ID {
	return ReplicaKeys(chord.ID(binary.BigEndian.Uint64(guid[:8])), replicationFactor)
}
