package models

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"asagen/internal/core"
)

// diffParams returns the parameter values the differential tests sweep for
// an entry: the registered sweep, capped so the legacy full-enumeration
// reference stays cheap, with the commit family extended to cover r=4..6
// contiguously.
func diffParams(e Entry) []int {
	if e.Vocabulary == VocabularyCommit {
		return []int{4, 5, 6, 7, 13}
	}
	var out []int
	for _, p := range e.SweepParams {
		if p <= 13 {
			out = append(out, p)
		}
	}
	return out
}

// reachableFingerprint renders the portion of a machine reachable from its
// start state as a canonical string: one line per state (in sorted name
// order) listing its outgoing transitions as message->target with actions.
// Two machines are state/transition-isomorphic on their reachable parts iff
// their fingerprints are equal.
func reachableFingerprint(m *core.StateMachine) string {
	reach := map[string]*core.State{}
	queue := []*core.State{m.Start}
	reach[m.Start.Name] = m.Start
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, msg := range s.SortedMessages(m.Messages) {
			t := s.Transition(msg).Target
			if _, ok := reach[t.Name]; !ok {
				reach[t.Name] = t
				queue = append(queue, t)
			}
		}
	}
	names := make([]string, 0, len(reach))
	for name := range reach {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "start=%s\n", m.Start.Name)
	for _, name := range names {
		s := reach[name]
		fmt.Fprintf(&b, "%s final=%v:", name, s.Final)
		for _, msg := range s.SortedMessages(m.Messages) {
			t := s.Transition(msg)
			fmt.Fprintf(&b, " %s->%s[%s]", msg, t.Target.Name, strings.Join(t.Actions, ","))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// fullFingerprint renders the complete machine — state order, merged names,
// annotations, transitions and stats — so two machines compare bit-identical.
func fullFingerprint(m *core.StateMachine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "model=%s param=%d stats=%+v\n", m.ModelName, m.Parameter, m.Stats)
	for _, s := range m.States {
		fmt.Fprintf(&b, "%s final=%v merged=%v ann=%v:", s.Name, s.Final, s.MergedNames, s.Annotations)
		for _, msg := range s.SortedMessages(m.Messages) {
			t := s.Transition(msg)
			fmt.Fprintf(&b, " %s->%s[%s]{%s}", msg, t.Target.Name,
				strings.Join(t.Actions, ","), strings.Join(t.Annotations, ";"))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestFrontierIsomorphicToLegacyPipeline is the generation-equivalence
// differential: for every registered scenario and parameter, the
// reachability-first machine (default path) must be state/transition-
// isomorphic to the reachable portion of the legacy enumerate-then-prune
// pipeline, reconstructed here from the full-enumeration output.
func TestFrontierIsomorphicToLegacyPipeline(t *testing.T) {
	for _, name := range Names() {
		entry, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, param := range diffParams(entry) {
			t.Run(fmt.Sprintf("%s/p=%d", name, param), func(t *testing.T) {
				model, err := entry.Build(param)
				if err != nil {
					t.Fatal(err)
				}
				// Merging is disabled on both sides so the comparison sees
				// the raw explored graphs; merge equivalence is covered by
				// the worker-identity test and the Table 1 checks.
				frontier, err := core.Generate(context.Background(), model, core.WithoutDescriptions(), core.WithoutMerging())
				if err != nil {
					t.Fatalf("frontier Generate: %v", err)
				}
				legacy, err := core.Generate(context.Background(), model, core.WithoutDescriptions(), core.WithoutMerging(), core.WithoutPruning())
				if err != nil {
					t.Fatalf("legacy Generate: %v", err)
				}

				if frontier.Stats.InitialStates != legacy.Stats.InitialStates {
					t.Errorf("InitialStates: frontier %d, legacy %d",
						frontier.Stats.InitialStates, legacy.Stats.InitialStates)
				}
				// The frontier machine can never exceed the enumeration
				// (strictly smaller whenever unreachable states exist —
				// termination is fully reachable, the others are not).
				if len(frontier.States) > len(legacy.States) {
					t.Errorf("frontier kept %d states, legacy enumerated %d",
						len(frontier.States), len(legacy.States))
				}

				got := reachableFingerprint(frontier)
				want := reachableFingerprint(legacy)
				if got != want {
					t.Errorf("frontier machine differs from legacy reachable portion:\nfrontier:\n%s\nlegacy:\n%s", got, want)
				}
				// Every frontier state must itself be reachable: its
				// fingerprint covers all its states.
				if lines, states := strings.Count(got, "\n")-1, len(frontier.States); lines != states {
					t.Errorf("frontier machine has %d states but only %d reachable", states, lines)
				}
			})
		}
	}
}

// TestWorkersIdenticalToSerial asserts the parallel frontier explorer is
// bit-identical to the serial one across every scenario, through the full
// pipeline including merging and state descriptions.
func TestWorkersIdenticalToSerial(t *testing.T) {
	for _, name := range Names() {
		entry, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		params := diffParams(entry)
		param := params[len(params)-1]
		model, err := entry.Build(param)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := core.Generate(context.Background(), model)
		if err != nil {
			t.Fatal(err)
		}
		want := fullFingerprint(serial)
		for _, n := range []int{2, 3, 4, 8} {
			t.Run(fmt.Sprintf("%s/p=%d/workers=%d", name, param, n), func(t *testing.T) {
				parallel, err := core.Generate(context.Background(), model, core.WithWorkers(n))
				if err != nil {
					t.Fatal(err)
				}
				if got := fullFingerprint(parallel); got != want {
					t.Errorf("WithWorkers(%d) output differs from serial:\n%s\nwant:\n%s", n, got, want)
				}
			})
		}
	}
}

// TestFrontierFullPipelineMatchesTable1 pins the end-to-end frontier
// pipeline (with merging) to the published family sizes for both commit
// readings, and records the invariant sizes of the other scenarios.
func TestFrontierFullPipelineMatchesTable1(t *testing.T) {
	finals := map[int]int{4: 33, 7: 85, 13: 261, 25: 901, 46: 2945}
	for _, name := range []string{"commit", "commit-redundant"} {
		entry, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		for r, want := range finals {
			model, err := entry.Build(r)
			if err != nil {
				t.Fatal(err)
			}
			machine, err := core.Generate(context.Background(), model, core.WithoutDescriptions())
			if err != nil {
				t.Fatal(err)
			}
			if machine.Stats.FinalStates != want {
				t.Errorf("%s r=%d: FinalStates = %d, want %d", name, r, machine.Stats.FinalStates, want)
			}
			if machine.Stats.InitialStates != 32*r*r {
				t.Errorf("%s r=%d: InitialStates = %d, want %d", name, r, machine.Stats.InitialStates, 32*r*r)
			}
		}
	}
}
