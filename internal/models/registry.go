// Package models is the scenario registry: every abstract model the
// repository implements is registered here under a stable name, so the
// renderer, runtime, simulation and benchmark layers can select any
// scenario by name instead of being hardwired to one model package.
//
// A registry entry bundles the model builder (parameter → core.Model), the
// optional EFSM generalisation, and the metadata commands need to present
// the scenario (parameter semantics, defaults, sweep values). New model
// packages plug into every command and example by adding one Register call.
//
// Registries are first-class values: the process-wide default registry
// holds the built-in scenarios, and callers that accept dynamic
// registrations (the SDK client, the serve endpoint) may Clone it so
// mutable state is never shared between independent instances.
package models

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"asagen/internal/chord"
	"asagen/internal/commit"
	"asagen/internal/consensus"
	"asagen/internal/core"
	"asagen/internal/storage"
	"asagen/internal/termination"
)

// Builder constructs the abstract model for a parameter value.
type Builder func(param int) (core.Model, error)

// EFSMBuilder generates the parameter-independent EFSM generalisation
// (§5.3) from the family member for the given parameter value. The
// context cancels the underlying machine generation.
type EFSMBuilder func(ctx context.Context, param int) (*core.EFSM, error)

// Entry describes one registered scenario.
type Entry struct {
	// Name is the registry key, e.g. "commit".
	Name string
	// Description is a one-line summary shown in command help.
	Description string
	// ParamName names the model parameter, e.g. "replication factor".
	ParamName string
	// DefaultParam is the parameter used when the caller passes none.
	DefaultParam int
	// SweepParams are representative parameter values for sweep tables and
	// differential tests, in ascending order.
	SweepParams []int
	// Build constructs the abstract model for a parameter value.
	Build Builder
	// EFSM generalises the family to a parameter-independent EFSM, or nil
	// when the model declares no abstraction.
	EFSM EFSMBuilder
	// Vocabulary names the message vocabulary the generated machines
	// react to, e.g. VocabularyCommit for models the version-service
	// runtime can execute. Empty for models with a vocabulary of their
	// own that no runtime layer consumes.
	Vocabulary string
	// Spec optionally carries the declarative source document the entry
	// was compiled from (a spec.Doc), opaque to this package to avoid an
	// import cycle. Layers that replace models in place read it to diff
	// the old and new documents for incremental regeneration. Nil for
	// hand-written models.
	Spec any
}

// VocabularyCommit marks models whose machines react to the commit
// protocol's message set (UPDATE, VOTE, COMMIT, FREE, NOT_FREE), which the
// version-service members dispatch.
const VocabularyCommit = "commit"

// Model builds the entry's model, substituting DefaultParam when param <= 0.
func (e Entry) Model(param int) (core.Model, error) {
	if param <= 0 {
		param = e.DefaultParam
	}
	return e.Build(param)
}

// Errors classifying registry mutations, for callers that map them to
// protocol responses.
var (
	// ErrExists reports a registration under a name already taken.
	ErrExists = errors.New("models: model already registered")
	// ErrInvalidEntry reports a structurally invalid entry (empty name or
	// missing builder).
	ErrInvalidEntry = errors.New("models: invalid entry")
)

// Registry is a named set of scenario entries. It is safe for concurrent
// use: entries are normally added at package initialisation, but dynamic
// registrations (SDK clients, the writable serve endpoint, tests) may Add
// and Remove while concurrent pipeline workers resolve names.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]Entry{}}
}

// defaultRegistry is the process-wide registry holding the built-in
// scenarios; the package-level functions operate on it.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry of built-in scenarios.
func Default() *Registry { return defaultRegistry }

// Clone returns a new registry with a copy of r's current entries.
// Mutations of the clone and the original are independent, which gives
// long-running services per-instance registry isolation.
func (r *Registry) Clone() *Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	entries := make(map[string]Entry, len(r.entries))
	for name, e := range r.entries {
		entries[name] = e
	}
	return &Registry{entries: entries}
}

// Add registers an entry, failing with ErrExists on a duplicate name and
// ErrInvalidEntry on an empty name or missing builder.
func (r *Registry) Add(e Entry) error {
	if e.Name == "" {
		return fmt.Errorf("%w: empty name", ErrInvalidEntry)
	}
	if e.Build == nil {
		return fmt.Errorf("%w: entry %q has no builder", ErrInvalidEntry, e.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[e.Name]; dup {
		return fmt.Errorf("%w: %q", ErrExists, e.Name)
	}
	r.entries[e.Name] = e
	return nil
}

// Replace registers an entry under its name whether or not the name is
// taken, reporting whether an existing entry was replaced (false means the
// entry was newly added). Validation matches Add. Replacement is the
// registry half of in-place model updates (PUT /v1/models/{model}): the
// pipeline layer is responsible for invalidating or re-linking any
// generations cached for the previous entry.
func (r *Registry) Replace(e Entry) (bool, error) {
	if e.Name == "" {
		return false, fmt.Errorf("%w: empty name", ErrInvalidEntry)
	}
	if e.Build == nil {
		return false, fmt.Errorf("%w: entry %q has no builder", ErrInvalidEntry, e.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	_, existed := r.entries[e.Name]
	r.entries[e.Name] = e
	return existed, nil
}

// Remove unregisters the named entry, reporting whether it was present.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; !ok {
		return false
	}
	delete(r.entries, name)
	return true
}

// Get returns the entry registered under name. The error lists the known
// names so command-line mistakes are self-explanatory.
func (r *Registry) Get(name string) (Entry, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return Entry{}, fmt.Errorf("models: unknown model %q (known: %v)", name, r.Names())
	}
	return e, nil
}

// Names returns all registered names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// NamesWithVocabulary returns the sorted names of entries registered with
// the given vocabulary, so commands can present — and validate against —
// exactly the subset a runtime layer can execute.
func (r *Registry) NamesWithVocabulary(vocabulary string) []string {
	r.mu.RLock()
	var names []string
	for name, e := range r.entries {
		if e.Vocabulary == vocabulary {
			names = append(names, name)
		}
	}
	r.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Build constructs the named model for a parameter value (<= 0 selects the
// entry's default parameter).
func (r *Registry) Build(name string, param int) (core.Model, error) {
	e, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	return e.Model(param)
}

// Register adds an entry to the default registry. It panics on a duplicate
// or empty name, which indicates a programming error at package
// initialisation. It is safe for concurrent use with the lookup functions.
func Register(e Entry) {
	if err := defaultRegistry.Add(e); err != nil {
		panic(err.Error())
	}
}

// Get returns the entry registered under name in the default registry.
func Get(name string) (Entry, error) { return defaultRegistry.Get(name) }

// Names returns all names registered in the default registry, sorted.
func Names() []string { return defaultRegistry.Names() }

// NamesWithVocabulary returns the default registry's sorted names of
// entries registered with the given vocabulary.
func NamesWithVocabulary(vocabulary string) []string {
	return defaultRegistry.NamesWithVocabulary(vocabulary)
}

// Build constructs the named model from the default registry for a
// parameter value (<= 0 selects the entry's default parameter).
func Build(name string, param int) (core.Model, error) {
	return defaultRegistry.Build(name, param)
}

func init() {
	Register(Entry{
		Name:         "commit",
		Description:  "BFT commit protocol (strict Fig. 9 reading, matches Table 1)",
		ParamName:    "replication factor",
		DefaultParam: 4,
		SweepParams:  []int{4, 7, 13, 25, 46},
		Build:        func(r int) (core.Model, error) { return commit.NewModel(r) },
		EFSM: func(ctx context.Context, r int) (*core.EFSM, error) {
			return commit.GenerateEFSM(ctx, r)
		},
		Vocabulary: VocabularyCommit,
	})
	Register(Entry{
		Name:         "commit-redundant",
		Description:  "BFT commit protocol, redundant could_choose reading (pre-merge redundancy)",
		ParamName:    "replication factor",
		DefaultParam: 4,
		SweepParams:  []int{4, 7, 13, 25, 46},
		Build: func(r int) (core.Model, error) {
			return commit.NewModel(r, commit.WithVariant(commit.RedundantVariant()))
		},
		EFSM: func(ctx context.Context, r int) (*core.EFSM, error) {
			return commit.GenerateEFSM(ctx, r, commit.WithVariant(commit.RedundantVariant()))
		},
		Vocabulary: VocabularyCommit,
	})
	Register(Entry{
		Name:         "consensus",
		Description:  "Chandra-Toueg-style single-decree consensus (majority thresholds)",
		ParamName:    "process count",
		DefaultParam: 5,
		SweepParams:  []int{3, 5, 7, 9},
		Build:        func(n int) (core.Model, error) { return consensus.NewModel(n) },
		EFSM:         consensus.GenerateEFSM,
	})
	Register(Entry{
		Name:         "chord",
		Description:  "Chord ring-membership lifecycle (successor-list redundancy)",
		ParamName:    "successor-list length",
		DefaultParam: 4,
		SweepParams:  []int{2, 3, 4, 8},
		Build:        func(s int) (core.Model, error) { return chord.NewModel(s) },
		EFSM:         chord.GenerateEFSM,
	})
	Register(Entry{
		Name:         "storage",
		Description:  "Replicated block-store endpoint protocol (quorum store + verified retrieve)",
		ParamName:    "replication factor",
		DefaultParam: 4,
		SweepParams:  []int{4, 7, 13, 25},
		Build:        func(r int) (core.Model, error) { return storage.NewModel(r) },
		EFSM:         storage.GenerateEFSM,
	})
	Register(Entry{
		Name:         "termination",
		Description:  "Dijkstra-Scholten-style termination detection (fan-out bound k)",
		ParamName:    "fan-out bound",
		DefaultParam: 4,
		SweepParams:  []int{1, 2, 4, 8},
		Build:        func(k int) (core.Model, error) { return termination.NewModel(k) },
		EFSM:         termination.GenerateEFSM,
	})
}
