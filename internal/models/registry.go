// Package models is the scenario registry: every abstract model the
// repository implements is registered here under a stable name, so the
// renderer, runtime, simulation and benchmark layers can select any
// scenario by name instead of being hardwired to one model package.
//
// A registry entry bundles the model builder (parameter → core.Model), the
// optional EFSM generalisation, and the metadata commands need to present
// the scenario (parameter semantics, defaults, sweep values). New model
// packages plug into every command and example by adding one Register call.
package models

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"asagen/internal/chord"
	"asagen/internal/commit"
	"asagen/internal/consensus"
	"asagen/internal/core"
	"asagen/internal/storage"
	"asagen/internal/termination"
)

// Builder constructs the abstract model for a parameter value.
type Builder func(param int) (core.Model, error)

// EFSMBuilder generates the parameter-independent EFSM generalisation
// (§5.3) from the family member for the given parameter value. The
// context cancels the underlying machine generation.
type EFSMBuilder func(ctx context.Context, param int) (*core.EFSM, error)

// Entry describes one registered scenario.
type Entry struct {
	// Name is the registry key, e.g. "commit".
	Name string
	// Description is a one-line summary shown in command help.
	Description string
	// ParamName names the model parameter, e.g. "replication factor".
	ParamName string
	// DefaultParam is the parameter used when the caller passes none.
	DefaultParam int
	// SweepParams are representative parameter values for sweep tables and
	// differential tests, in ascending order.
	SweepParams []int
	// Build constructs the abstract model for a parameter value.
	Build Builder
	// EFSM generalises the family to a parameter-independent EFSM, or nil
	// when the model declares no abstraction.
	EFSM EFSMBuilder
	// Vocabulary names the message vocabulary the generated machines
	// react to, e.g. VocabularyCommit for models the version-service
	// runtime can execute. Empty for models with a vocabulary of their
	// own that no runtime layer consumes.
	Vocabulary string
}

// VocabularyCommit marks models whose machines react to the commit
// protocol's message set (UPDATE, VOTE, COMMIT, FREE, NOT_FREE), which the
// version-service members dispatch.
const VocabularyCommit = "commit"

// Model builds the entry's model, substituting DefaultParam when param <= 0.
func (e Entry) Model(param int) (core.Model, error) {
	if param <= 0 {
		param = e.DefaultParam
	}
	return e.Build(param)
}

// registryMu guards registry: entries are normally registered at package
// initialisation, but tests (and future plugins) may Register while
// concurrent pipeline workers resolve names, so reads and writes must
// synchronise.
var (
	registryMu sync.RWMutex
	registry   = map[string]Entry{}
)

// Register adds an entry to the registry. It panics on a duplicate or empty
// name, which indicates a programming error at package initialisation. It
// is safe for concurrent use with the lookup functions.
func Register(e Entry) {
	if e.Name == "" {
		panic("models: register entry with empty name")
	}
	if e.Build == nil {
		panic(fmt.Sprintf("models: entry %q has no builder", e.Name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("models: duplicate registration of %q", e.Name))
	}
	registry[e.Name] = e
}

// Get returns the entry registered under name. The error lists the known
// names so command-line mistakes are self-explanatory.
func Get(name string) (Entry, error) {
	registryMu.RLock()
	e, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return Entry{}, fmt.Errorf("models: unknown model %q (known: %v)", name, Names())
	}
	return e, nil
}

// Names returns all registered names, sorted.
func Names() []string {
	registryMu.RLock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	registryMu.RUnlock()
	sort.Strings(names)
	return names
}

// NamesWithVocabulary returns the sorted names of entries registered with
// the given vocabulary, so commands can present — and validate against —
// exactly the subset a runtime layer can execute.
func NamesWithVocabulary(vocabulary string) []string {
	registryMu.RLock()
	var names []string
	for name, e := range registry {
		if e.Vocabulary == vocabulary {
			names = append(names, name)
		}
	}
	registryMu.RUnlock()
	sort.Strings(names)
	return names
}

// Build constructs the named model for a parameter value (<= 0 selects the
// entry's default parameter).
func Build(name string, param int) (core.Model, error) {
	e, err := Get(name)
	if err != nil {
		return nil, err
	}
	return e.Model(param)
}

func init() {
	Register(Entry{
		Name:         "commit",
		Description:  "BFT commit protocol (strict Fig. 9 reading, matches Table 1)",
		ParamName:    "replication factor",
		DefaultParam: 4,
		SweepParams:  []int{4, 7, 13, 25, 46},
		Build:        func(r int) (core.Model, error) { return commit.NewModel(r) },
		EFSM: func(ctx context.Context, r int) (*core.EFSM, error) {
			return commit.GenerateEFSM(ctx, r)
		},
		Vocabulary: VocabularyCommit,
	})
	Register(Entry{
		Name:         "commit-redundant",
		Description:  "BFT commit protocol, redundant could_choose reading (pre-merge redundancy)",
		ParamName:    "replication factor",
		DefaultParam: 4,
		SweepParams:  []int{4, 7, 13, 25, 46},
		Build: func(r int) (core.Model, error) {
			return commit.NewModel(r, commit.WithVariant(commit.RedundantVariant()))
		},
		EFSM: func(ctx context.Context, r int) (*core.EFSM, error) {
			return commit.GenerateEFSM(ctx, r, commit.WithVariant(commit.RedundantVariant()))
		},
		Vocabulary: VocabularyCommit,
	})
	Register(Entry{
		Name:         "consensus",
		Description:  "Chandra-Toueg-style single-decree consensus (majority thresholds)",
		ParamName:    "process count",
		DefaultParam: 5,
		SweepParams:  []int{3, 5, 7, 9},
		Build:        func(n int) (core.Model, error) { return consensus.NewModel(n) },
		EFSM:         consensus.GenerateEFSM,
	})
	Register(Entry{
		Name:         "chord",
		Description:  "Chord ring-membership lifecycle (successor-list redundancy)",
		ParamName:    "successor-list length",
		DefaultParam: 4,
		SweepParams:  []int{2, 3, 4, 8},
		Build:        func(s int) (core.Model, error) { return chord.NewModel(s) },
		EFSM:         chord.GenerateEFSM,
	})
	Register(Entry{
		Name:         "storage",
		Description:  "Replicated block-store endpoint protocol (quorum store + verified retrieve)",
		ParamName:    "replication factor",
		DefaultParam: 4,
		SweepParams:  []int{4, 7, 13, 25},
		Build:        func(r int) (core.Model, error) { return storage.NewModel(r) },
		EFSM:         storage.GenerateEFSM,
	})
	Register(Entry{
		Name:         "termination",
		Description:  "Dijkstra-Scholten-style termination detection (fan-out bound k)",
		ParamName:    "fan-out bound",
		DefaultParam: 4,
		SweepParams:  []int{1, 2, 4, 8},
		Build:        func(k int) (core.Model, error) { return termination.NewModel(k) },
		EFSM:         termination.GenerateEFSM,
	})
}
