package models

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"asagen/internal/core"
	"asagen/internal/termination"
)

func TestNamesCoversAllScenarios(t *testing.T) {
	want := []string{"chord", "commit", "commit-redundant", "consensus", "storage", "termination"}
	got := Names()
	if len(got) < len(want) {
		t.Fatalf("Names() = %v, want at least %v", got, want)
	}
	for _, name := range want {
		found := false
		for _, g := range got {
			if g == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Names() = %v, missing %q", got, name)
		}
	}
}

func TestGetUnknownListsKnownNames(t *testing.T) {
	_, err := Get("nonsense")
	if err == nil {
		t.Fatal("Get(nonsense) succeeded")
	}
	if !strings.Contains(err.Error(), "commit") {
		t.Errorf("error %q does not list known names", err)
	}
}

func TestBuildDefaultsAndGenerates(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			entry, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			model, err := entry.Model(0) // 0 selects the default parameter
			if err != nil {
				t.Fatalf("Model(0): %v", err)
			}
			if model.Parameter() != entry.DefaultParam {
				t.Errorf("Parameter() = %d, want default %d", model.Parameter(), entry.DefaultParam)
			}
			machine, err := core.Generate(context.Background(), model, core.WithoutDescriptions())
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if len(machine.States) == 0 || machine.Start == nil {
				t.Error("generated machine is empty")
			}
			if entry.EFSM != nil {
				efsm, err := entry.EFSM(context.Background(), entry.DefaultParam)
				if err != nil {
					t.Fatalf("EFSM: %v", err)
				}
				if len(efsm.States) == 0 {
					t.Error("generated EFSM is empty")
				}
			}
		})
	}
}

func TestBuildByName(t *testing.T) {
	model, err := Build("termination", 3)
	if err != nil {
		t.Fatal(err)
	}
	if model.Parameter() != 3 {
		t.Errorf("Parameter() = %d, want 3", model.Parameter())
	}
	if _, err := Build("nonsense", 3); err == nil {
		t.Error("Build(nonsense) succeeded")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(Entry{Name: "commit", Build: func(int) (core.Model, error) { return nil, nil }})
}

func TestNamesWithVocabulary(t *testing.T) {
	got := NamesWithVocabulary(VocabularyCommit)
	want := []string{"commit", "commit-redundant"}
	if len(got) != len(want) {
		t.Fatalf("NamesWithVocabulary(commit) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NamesWithVocabulary(commit) = %v, want %v", got, want)
		}
	}
	if names := NamesWithVocabulary("nonsense"); len(names) != 0 {
		t.Errorf("NamesWithVocabulary(nonsense) = %v, want empty", names)
	}
}

// TestVariantFingerprintsDiffer guards the generation cache against
// collisions between variant readings: commit and commit-redundant share
// declared structure but differ in transition logic, so their fingerprints
// must differ or the cache would serve one family for the other.
func TestVariantFingerprintsDiffer(t *testing.T) {
	strict, err := Build("commit", 4)
	if err != nil {
		t.Fatal(err)
	}
	redundant, err := Build("commit-redundant", 4)
	if err != nil {
		t.Fatal(err)
	}
	if core.FingerprintModel(strict) == core.FingerprintModel(redundant) {
		t.Error("strict and redundant commit models share a fingerprint")
	}
	if core.FingerprintModel(strict) != core.FingerprintModel(strict) {
		t.Error("fingerprint not deterministic")
	}
}

// TestRegistryConcurrentAccess locks in the registry's thread-safety:
// Register may run (e.g. from a test or a future plugin) while pipeline
// workers resolve names concurrently.
func TestRegistryConcurrentAccess(t *testing.T) {
	// The name is unique per run so `-count=N` re-registrations never
	// collide, and the entry is a real generatable model so
	// registry-iterating tests stay healthy whatever order tests run in.
	name := fmt.Sprintf("concurrent-probe-%d", time.Now().UnixNano())
	done := make(chan struct{})
	go func() {
		defer close(done)
		Register(Entry{
			Name:         name,
			Description:  "registry thread-safety probe",
			ParamName:    "fan-out bound",
			DefaultParam: 1,
			SweepParams:  []int{1, 2},
			Build:        func(k int) (core.Model, error) { return termination.NewModel(k) },
		})
	}()
	for i := 0; i < 100; i++ {
		if _, err := Get("commit"); err != nil {
			t.Fatal(err)
		}
		Names()
		NamesWithVocabulary(VocabularyCommit)
	}
	<-done
	if _, err := Get(name); err != nil {
		t.Errorf("concurrently registered entry not visible: %v", err)
	}
}
