package models

import (
	"errors"
	"testing"

	"asagen/internal/core"
	"asagen/internal/termination"
)

func testEntry(name string) Entry {
	return Entry{
		Name:         name,
		Description:  "registry isolation test entry",
		ParamName:    "k",
		DefaultParam: 2,
		Build:        func(k int) (core.Model, error) { return termination.NewModel(k) },
	}
}

// TestRegistryCloneIsolation: mutations of a clone and its origin are
// invisible to each other.
func TestRegistryCloneIsolation(t *testing.T) {
	base := NewRegistry()
	if err := base.Add(testEntry("shared")); err != nil {
		t.Fatal(err)
	}
	clone := base.Clone()

	if err := clone.Add(testEntry("clone-only")); err != nil {
		t.Fatal(err)
	}
	if _, err := base.Get("clone-only"); err == nil {
		t.Error("clone registration leaked into the origin")
	}
	if !clone.Remove("shared") {
		t.Fatal("clone could not remove an inherited entry")
	}
	if _, err := base.Get("shared"); err != nil {
		t.Errorf("clone removal leaked into the origin: %v", err)
	}

	if err := base.Add(testEntry("origin-only")); err != nil {
		t.Fatal(err)
	}
	if _, err := clone.Get("origin-only"); err == nil {
		t.Error("origin registration appeared in a pre-existing clone")
	}
}

// TestRegistryAddErrors: duplicates and invalid entries fail with the
// typed sentinels rather than panicking.
func TestRegistryAddErrors(t *testing.T) {
	r := NewRegistry()
	if err := r.Add(testEntry("dup")); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(testEntry("dup")); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate Add error = %v, want ErrExists", err)
	}
	if err := r.Add(Entry{Name: "", Build: testEntry("x").Build}); !errors.Is(err, ErrInvalidEntry) {
		t.Errorf("empty-name Add error = %v, want ErrInvalidEntry", err)
	}
	if err := r.Add(Entry{Name: "nobuilder"}); !errors.Is(err, ErrInvalidEntry) {
		t.Errorf("no-builder Add error = %v, want ErrInvalidEntry", err)
	}
	if r.Remove("never") {
		t.Error("Remove reported success for an absent entry")
	}
}

// TestDefaultRegistryHoldsBuiltins: the package-level functions operate
// on the default registry, and a clone starts with the built-ins.
func TestDefaultRegistryHoldsBuiltins(t *testing.T) {
	clone := Default().Clone()
	for _, name := range []string{"commit", "commit-redundant", "consensus", "chord", "storage", "termination"} {
		if _, err := clone.Get(name); err != nil {
			t.Errorf("clone lacks built-in %q: %v", name, err)
		}
	}
	if got, want := len(clone.Names()), len(Names()); got < want {
		t.Errorf("clone has %d names, default has %d", got, want)
	}
}
