package artifact

import (
	"fmt"
	"strconv"

	"asagen/internal/render"
	"asagen/internal/store"
)

// routeMemo is one memoised routing-key resolution.
type routeMemo struct {
	key string
	req Request // the request with Param resolved
}

// RouteKey resolves req against the registry and returns the cluster
// routing key the artifact shards on, plus the request with its
// parameter resolved. Machine formats key on the model fingerprint —
// every format of one generated machine lands on the same owner, so a
// single propagation warms all of them — while EFSM formats, which have
// no machine fingerprint, key on (model, param). Resolution is memoised
// per raw request; errors use the package's sentinel classification.
func (p *Pipeline) RouteKey(req Request) (string, Request, error) {
	p.mu.Lock()
	if m, ok := p.routes[req]; ok {
		p.mu.Unlock()
		return m.key, m.req, nil
	}
	epoch := p.epoch
	p.mu.Unlock()

	raw := req
	entry, err := p.reg.Get(req.Model)
	if err != nil {
		return "", req, fmt.Errorf("%w: %q (known: %v)", ErrUnknownModel, req.Model, p.reg.Names())
	}
	if req.Param <= 0 {
		req.Param = entry.DefaultParam
	}
	if !render.Known(req.Format) {
		return "", req, fmt.Errorf("%w: %q (known: %v)", ErrUnknownFormat, req.Format, render.Formats())
	}
	var key string
	if render.IsEFSMFormat(req.Format) {
		if entry.EFSM == nil {
			return "", req, fmt.Errorf("%w: %q", ErrNoEFSM, req.Model)
		}
		key = "efsm/" + req.Model + "/" + strconv.Itoa(req.Param)
	} else {
		model, err := entry.Build(req.Param)
		if err != nil {
			return "", req, err
		}
		fp := p.cache.Fingerprint(model)
		p.recordFingerprint(req.Model, req.Param, fp)
		key = fp.String()
	}

	p.mu.Lock()
	if p.epoch == epoch {
		m := routeMemo{key: key, req: req}
		p.routes[raw] = m
		p.routes[req] = m
	}
	p.mu.Unlock()
	return key, req, nil
}

// Probe reports the completed Result for req if it is already available
// without rendering: from the hot memo, a finished render-memo entry, or
// the attached store. It never generates — a clustered replica uses it
// to decide between serving a warm copy and proxying to the owner.
func (p *Pipeline) Probe(req Request) (Result, bool) {
	p.mu.Lock()
	if res, ok := p.hot[req]; ok {
		p.renderHits++
		p.hotHits++
		p.mu.Unlock()
		return res, true
	}
	p.mu.Unlock()

	res := Result{Request: req}
	entry, err := p.reg.Get(req.Model)
	if err != nil {
		return Result{}, false
	}
	if req.Param <= 0 {
		req.Param = entry.DefaultParam
		res.Request = req
	}
	if !render.Known(req.Format) {
		return Result{}, false
	}
	var key renderKey
	var skey store.Key
	if render.IsEFSMFormat(req.Format) {
		if entry.EFSM == nil {
			return Result{}, false
		}
		key = renderKey{model: req.Model, param: req.Param, format: req.Format}
		skey = store.Key{Model: req.Model, Param: req.Param, Format: req.Format}
	} else {
		model, err := entry.Build(req.Param)
		if err != nil {
			return Result{}, false
		}
		res.Fingerprint = p.cache.Fingerprint(model)
		key = renderKey{fp: res.Fingerprint, format: req.Format}
		skey = store.Key{Model: req.Model, Param: req.Param, Format: req.Format, Fingerprint: res.Fingerprint.String()}
	}

	p.mu.Lock()
	e, ok := p.renders[key]
	p.mu.Unlock()
	if ok {
		select {
		case <-e.done:
			if e.err == nil {
				res.apply(e.out, nil)
				return res, true
			}
		default:
			// A render is in flight; the caller wanted a no-work answer.
		}
		return Result{}, false
	}
	if p.store == nil {
		return Result{}, false
	}
	data, sum, media, ext, ok := p.store.Get(skey)
	if !ok {
		return Result{}, false
	}
	res.apply(rendered{
		art:  render.Artifact{Format: req.Format, MediaType: media, Ext: ext, Data: data},
		sum:  sum,
		etag: etagFor(sum),
		clen: strconv.Itoa(len(data)),
	}, nil)
	return res, true
}
