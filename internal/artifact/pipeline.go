// Package artifact is the unified artefact pipeline: it takes
// (model × format) requests, memoises machine generation per model
// fingerprint in a content-addressed cache, renders formats concurrently
// under a bounded worker pool, and exposes batch (RenderAll) and streaming
// (Stream) APIs. It is the layer behind `fsmgen -all`, `fsmgen serve` and
// the codegen example: one generation per distinct fingerprint no matter
// how many formats or concurrent requests consume it (§4.2's cached
// generation policy, industrialised).
//
// Two layers sit under the render memo for the serve path. A hot-result
// memo keyed by the raw request answers repeat requests with a fully
// precomputed Result (shared bytes, content hash, ETag) without touching
// the registry, and coalesces concurrent misses on the same request into
// one computation. Below it, an optional content-addressed on-disk store
// (WithStore) persists every rendered artefact, so a pipeline reopened
// over a warm store serves previously rendered artefacts from disk
// without regenerating machines.
package artifact

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"

	"asagen/internal/core"
	"asagen/internal/models"
	"asagen/internal/render"
	"asagen/internal/store"
)

// Errors classifying request failures, for callers (such as the serve
// endpoint) that map them to protocol responses.
var (
	// ErrUnknownModel reports a model name absent from the registry.
	ErrUnknownModel = errors.New("artifact: unknown model")
	// ErrUnknownFormat reports a format name absent from the registry.
	ErrUnknownFormat = errors.New("artifact: unknown format")
	// ErrNoEFSM reports an EFSM format requested for a model that
	// declares no EFSM abstraction.
	ErrNoEFSM = errors.New("artifact: model declares no EFSM abstraction")
	// ErrRender wraps a renderer failure on a well-formed request — a
	// server-side defect, as opposed to the request-classification errors
	// above.
	ErrRender = errors.New("artifact: render failed")
)

// Request names one artefact: a registered model, a parameter value
// (<= 0 selects the model's default) and a registered format.
type Request struct {
	Model  string
	Param  int
	Format string
}

// Result is the outcome of one request. Results are shared between
// concurrent and repeat callers; treat Artifact.Data as immutable.
type Result struct {
	// Request echoes the request with Param resolved to the effective
	// parameter value.
	Request Request
	// Fingerprint is the generated machine's model fingerprint; zero for
	// EFSM formats, which bypass machine generation.
	Fingerprint core.Fingerprint
	// Artifact is the rendered artefact; zero when Err is set.
	Artifact render.Artifact
	// Sum is the SHA-256 of the artefact content, for content addressing.
	Sum [sha256.Size]byte
	// ETag is the strong HTTP entity validator for the artefact content
	// (the quoted hex Sum), precomputed at render time so the serve path
	// never re-derives it per request. Empty when Err is set.
	ETag string
	// ContentLength is the decimal rendering of len(Artifact.Data),
	// precomputed at render time for the same reason. Empty when Err is
	// set.
	ContentLength string
	// Err is the failure, classified by the package's sentinel errors.
	Err error
}

// ContentHash returns the hex SHA-256 of the artefact content.
func (r Result) ContentHash() string { return hex.EncodeToString(r.Sum[:]) }

// FileName returns a content-addressed filename:
// <model>-r<param>.<format>.<hash12><ext>. Equal content always maps to
// the same name, so re-running a batch never duplicates artefacts.
func (r Result) FileName() string {
	return fmt.Sprintf("%s-r%d.%s.%s%s",
		r.Request.Model, r.Request.Param, r.Request.Format,
		hex.EncodeToString(r.Sum[:6]), r.Artifact.Ext)
}

// Stats is a snapshot of the pipeline's caches.
type Stats struct {
	// Machine reports the generation cache: at most one generation per
	// distinct model fingerprint, however many formats consume it.
	Machine core.CacheStats
	// RenderHits and RenderMisses count rendered-artefact memo lookups;
	// hits answered by the hot-result memo count here too.
	RenderHits, RenderMisses int64
	// HotHits counts requests answered entirely from the precomputed
	// hot-result memo — no registry lookup, no hashing, no render memo.
	HotHits int64
	// Store reports the on-disk artifact store; nil when none is attached.
	Store *store.Stats
}

// Pipeline renders (model × format) requests with memoised generation and
// rendering. It is safe for concurrent use.
type Pipeline struct {
	jobs    int
	genOpts []core.Option
	cache   *core.Cache
	reg     *models.Registry
	store   *store.Store

	mu      sync.Mutex
	efsms   map[efsmKey]*efsmEntry
	renders map[renderKey]*renderEntry
	// hot maps raw and resolved requests to complete successful Results,
	// the zero-work fast path for repeat serve traffic; flights coalesces
	// concurrent misses on one raw request into a single computation.
	hot     map[Request]Result
	flights map[Request]*flight
	// routes memoises cluster routing-key resolution per raw request, so
	// the clustered serve hot path pays one map hit instead of a registry
	// build + fingerprint per request. Cleared wherever fingerprints can
	// change (Purge, PurgeModel, UpdateModel).
	routes map[Request]routeMemo
	// epoch guards the hot memo and the store against stale repopulation:
	// Purge, PurgeModel and UpdateModel bump it, and a computation begun
	// under an older epoch never writes its result back.
	epoch uint64
	// modelFPs records, per registry name, the machine fingerprints the
	// pipeline generated for it and the parameter each was generated at,
	// so PurgeModel can evict a dynamically unregistered model's
	// generations from the fingerprint-keyed cache and UpdateModel can
	// link each family member's old generation to its replacement for
	// incremental regeneration.
	modelFPs map[string]map[core.Fingerprint]int

	renderHits, renderMisses, hotHits int64
}

type efsmKey struct {
	model string
	param int
}

// efsmEntry memoises one EFSM build; done is closed when efsm and err are
// final.
type efsmEntry struct {
	done chan struct{}
	efsm *core.EFSM
	err  error
}

// renderKey addresses one rendered artefact. Machine formats are keyed by
// fingerprint — two models with equal fingerprints share the rendered
// bytes — while EFSM formats, which have no machine fingerprint, are keyed
// by (model, param).
type renderKey struct {
	fp     core.Fingerprint
	model  string
	param  int
	format string
}

// rendered is the memoised outcome of one successful render: the artefact
// plus every piece of serving metadata precomputed once.
type rendered struct {
	art  render.Artifact
	sum  [sha256.Size]byte
	etag string
	clen string
}

// renderEntry memoises one rendered artefact; done is closed when the
// remaining fields are final.
type renderEntry struct {
	done chan struct{}
	out  rendered
	err  error
}

// flight coalesces concurrent misses on one raw request: the first caller
// computes, the rest wait on done and share the Result.
type flight struct {
	done chan struct{}
	res  Result
}

// Option configures a Pipeline.
type Option func(*Pipeline)

// WithJobs bounds the worker pool used by RenderAll and Stream. Values
// below 1 select GOMAXPROCS.
func WithJobs(n int) Option {
	return func(p *Pipeline) {
		if n >= 1 {
			p.jobs = n
		}
	}
}

// WithGenerateOptions sets the core generation options applied to every
// machine the pipeline generates. They become part of the fingerprint, so
// pipelines with different options never share cache entries.
func WithGenerateOptions(opts ...core.Option) Option {
	return func(p *Pipeline) { p.genOpts = append([]core.Option(nil), opts...) }
}

// WithCache substitutes a caller-owned generation cache, e.g. one shared
// with the version service. Overrides WithGenerateOptions.
func WithCache(c *core.Cache) Option {
	return func(p *Pipeline) { p.cache = c }
}

// WithRegistry substitutes the scenario registry the pipeline resolves
// model names against. The default is the process-wide registry of
// built-in scenarios; a long-running serve instance passes its own clone
// so dynamic registrations are never shared between concurrent servers.
func WithRegistry(r *models.Registry) Option {
	return func(p *Pipeline) {
		if r != nil {
			p.reg = r
		}
	}
}

// WithStore layers a content-addressed on-disk artifact store under the
// render memo. Every artefact rendered is persisted, and a render-memo
// miss probes the store before generating: a pipeline opened over a warm
// store serves previously rendered artefacts from disk — the first
// request after a restart is a disk hit, not a regeneration. The caller
// retains ownership of the store (Close it after the pipeline is done).
func WithStore(s *store.Store) Option {
	return func(p *Pipeline) { p.store = s }
}

// New returns a pipeline with the given options.
func New(opts ...Option) *Pipeline {
	p := &Pipeline{
		jobs:     runtime.GOMAXPROCS(0),
		reg:      models.Default(),
		efsms:    make(map[efsmKey]*efsmEntry),
		renders:  make(map[renderKey]*renderEntry),
		hot:      make(map[Request]Result),
		flights:  make(map[Request]*flight),
		routes:   make(map[Request]routeMemo),
		modelFPs: make(map[string]map[core.Fingerprint]int),
	}
	for _, opt := range opts {
		opt(p)
	}
	if p.cache == nil {
		p.cache = core.NewGenerationCache(p.genOpts...)
	}
	return p
}

// Cache returns the pipeline's generation cache, e.g. to bound it with
// SetLimit for a long-running serve process.
func (p *Pipeline) Cache() *core.Cache { return p.cache }

// Registry returns the scenario registry the pipeline resolves model
// names against.
func (p *Pipeline) Registry() *models.Registry { return p.reg }

// Store returns the attached artifact store; nil when none.
func (p *Pipeline) Store() *store.Store { return p.store }

// Stats returns a snapshot of the pipeline's cache counters.
func (p *Pipeline) Stats() Stats {
	var st *store.Stats
	if p.store != nil {
		s := p.store.Stats()
		st = &s
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Machine:      p.cache.Stats(),
		RenderHits:   p.renderHits,
		RenderMisses: p.renderMisses,
		HotHits:      p.hotHits,
		Store:        st,
	}
}

// Purge drops every memoised machine, EFSM and rendered artefact,
// including the rows and blobs of an attached store.
func (p *Pipeline) Purge() {
	p.mu.Lock()
	p.cache.Purge()
	p.efsms = make(map[efsmKey]*efsmEntry)
	p.renders = make(map[renderKey]*renderEntry)
	p.hot = make(map[Request]Result)
	p.routes = make(map[Request]routeMemo)
	p.modelFPs = make(map[string]map[core.Fingerprint]int)
	p.epoch++
	p.mu.Unlock()
	if p.store != nil {
		p.store.Purge()
	}
}

// PurgeModel drops every memoised machine, EFSM and rendered artefact
// produced for one registry name — in-memory memos and, when a store is
// attached, its on-disk blobs and index rows — returning the number of
// machine generations evicted. Called when a dynamically registered model
// is unregistered, so a later registration under the same name can never
// observe the departed model's cached work.
func (p *Pipeline) PurgeModel(name string) int {
	p.mu.Lock()
	fps := p.modelFPs[name]
	delete(p.modelFPs, name)
	for key := range p.renders {
		if key.model == name {
			delete(p.renders, key)
			continue
		}
		if _, ok := fps[key.fp]; ok {
			delete(p.renders, key)
		}
	}
	for key := range p.efsms {
		if key.model == name {
			delete(p.efsms, key)
		}
	}
	for req := range p.hot {
		if req.Model == name {
			delete(p.hot, req)
		}
	}
	for req := range p.routes {
		if req.Model == name {
			delete(p.routes, req)
		}
	}
	p.epoch++
	p.mu.Unlock()

	dropped := 0
	for fp := range fps {
		if p.cache.Drop(fp) {
			dropped++
		}
	}
	if p.store != nil {
		p.store.EvictModel(name, fpHexSet(fps))
	}
	return dropped
}

// fpHexSet renders a fingerprint set in the store's hex key form.
func fpHexSet(fps map[core.Fingerprint]int) map[string]bool {
	if len(fps) == 0 {
		return nil
	}
	set := make(map[string]bool, len(fps))
	for fp := range fps {
		set[fp.String()] = true
	}
	return set
}

// isCancellation reports whether err stems from context cancellation, the
// one error class that is never memoised.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// etagFor renders the strong HTTP entity validator for a content sum.
func etagFor(sum [sha256.Size]byte) string {
	return `"` + hex.EncodeToString(sum[:]) + `"`
}

// Render produces the artefact for one request. Repeat requests are
// answered from a precomputed hot memo; concurrent first requests for the
// same raw request coalesce into one computation. Below that, generation
// is memoised per model fingerprint and rendering per (fingerprint,
// format), both single-flight, with an optional on-disk store probed
// before machines are generated.
//
// Cancelling ctx aborts an in-flight generation promptly; the aborted
// computation leaves no cache entry, and Result.Err carries ctx.Err().
// Waiters coalesced behind a leader that was cancelled retry with their
// own context rather than inheriting the leader's cancellation. A nil ctx
// is treated as context.Background().
func (p *Pipeline) Render(ctx context.Context, req Request) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Result{Request: req, Err: err}
	}
	for {
		p.mu.Lock()
		if res, ok := p.hot[req]; ok {
			p.renderHits++
			p.hotHits++
			p.mu.Unlock()
			return res
		}
		f, waiting := p.flights[req]
		if !waiting {
			f = &flight{done: make(chan struct{})}
			p.flights[req] = f
		}
		epoch := p.epoch
		p.mu.Unlock()

		if waiting {
			select {
			case <-f.done:
				if isCancellation(f.res.Err) && ctx.Err() == nil {
					continue // the leader was cancelled, not us: retry
				}
				return f.res
			case <-ctx.Done():
				return Result{Request: req, Err: ctx.Err()}
			}
		}

		res := p.render(ctx, req)
		p.mu.Lock()
		if cur, ok := p.flights[req]; ok && cur == f {
			delete(p.flights, req)
		}
		if res.Err == nil && p.epoch == epoch {
			p.hot[req] = res
			p.hot[res.Request] = res
		}
		p.mu.Unlock()
		f.res = res
		close(f.done)
		return res
	}
}

// render is the slow path behind the hot memo: resolve the request
// against the registry and produce the artefact through the render memo.
func (p *Pipeline) render(ctx context.Context, req Request) Result {
	res := Result{Request: req}
	entry, err := p.reg.Get(req.Model)
	if err != nil {
		res.Err = fmt.Errorf("%w: %q (known: %v)", ErrUnknownModel, req.Model, p.reg.Names())
		return res
	}
	if req.Param <= 0 {
		req.Param = entry.DefaultParam
		res.Request = req
	}
	if !render.Known(req.Format) {
		res.Err = fmt.Errorf("%w: %q (known: %v)", ErrUnknownFormat, req.Format, render.Formats())
		return res
	}

	if render.IsEFSMFormat(req.Format) {
		if entry.EFSM == nil {
			res.Err = fmt.Errorf("%w: %q", ErrNoEFSM, req.Model)
			return res
		}
		key := renderKey{model: req.Model, param: req.Param, format: req.Format}
		skey := store.Key{Model: req.Model, Param: req.Param, Format: req.Format}
		res.apply(p.renderMemo(ctx, key, skey, func() (render.Artifact, error) {
			efsm, err := p.efsmFor(ctx, entry, req.Param)
			if err != nil {
				return render.Artifact{}, err
			}
			r, err := render.NewEFSM(req.Format)
			if err != nil {
				return render.Artifact{}, fmt.Errorf("%w: %v", ErrRender, err)
			}
			a, err := r.RenderEFSM(efsm)
			if err != nil {
				return render.Artifact{}, fmt.Errorf("%w: %v", ErrRender, err)
			}
			return a, nil
		}))
		return res
	}

	model, err := entry.Build(req.Param)
	if err != nil {
		res.Err = err
		return res
	}
	res.Fingerprint = p.cache.Fingerprint(model)
	p.recordFingerprint(req.Model, req.Param, res.Fingerprint)
	key := renderKey{fp: res.Fingerprint, format: req.Format}
	skey := store.Key{Model: req.Model, Param: req.Param, Format: req.Format, Fingerprint: res.Fingerprint.String()}
	res.apply(p.renderMemo(ctx, key, skey, func() (render.Artifact, error) {
		machine, err := p.cache.MachineForFingerprint(ctx, res.Fingerprint, model)
		if err != nil {
			return render.Artifact{}, err
		}
		r, err := render.New(req.Format)
		if err != nil {
			return render.Artifact{}, fmt.Errorf("%w: %v", ErrRender, err)
		}
		a, err := r.Render(machine)
		if err != nil {
			return render.Artifact{}, fmt.Errorf("%w: %v", ErrRender, err)
		}
		return a, nil
	}))
	return res
}

// apply copies a memoised render outcome into the Result.
func (r *Result) apply(out rendered, err error) {
	r.Artifact, r.Sum, r.ETag, r.ContentLength, r.Err = out.art, out.sum, out.etag, out.clen, err
}

// efsmFor memoises the EFSM generalisation per (model, param),
// single-flight. As in the generation cache, a build aborted by context
// cancellation is dropped rather than memoised, and waiters stop waiting
// when their own context is cancelled.
func (p *Pipeline) efsmFor(ctx context.Context, entry models.Entry, param int) (*core.EFSM, error) {
	key := efsmKey{model: entry.Name, param: param}
	p.mu.Lock()
	e, ok := p.efsms[key]
	if ok {
		p.mu.Unlock()
		select {
		case <-e.done:
			return e.efsm, e.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	e = &efsmEntry{done: make(chan struct{})}
	p.efsms[key] = e
	p.mu.Unlock()

	e.efsm, e.err = entry.EFSM(ctx, param)
	if e.err != nil && isCancellation(e.err) {
		p.mu.Lock()
		if cur, ok := p.efsms[key]; ok && cur == e {
			delete(p.efsms, key)
		}
		p.mu.Unlock()
	}
	close(e.done)
	return e.efsm, e.err
}

// Machine resolves a model name and parameter against the pipeline's
// registry and returns the generated machine, its fingerprint and the
// resolved parameter (non-positive params select the model's default).
// Generation is memoised and single-flight through the pipeline's cache,
// exactly like the artefact path, and the fingerprint is tracked so
// PurgeModel evicts the machine; the trace-conformance layer generates
// the machines it monitors through here, so a check and a render of the
// same family member share one generation.
func (p *Pipeline) Machine(ctx context.Context, model string, param int) (*core.StateMachine, core.Fingerprint, int, error) {
	entry, err := p.reg.Get(model)
	if err != nil {
		return nil, core.Fingerprint{}, 0,
			fmt.Errorf("%w: %q (known: %v)", ErrUnknownModel, model, p.reg.Names())
	}
	if param <= 0 {
		param = entry.DefaultParam
	}
	m, err := entry.Build(param)
	if err != nil {
		return nil, core.Fingerprint{}, param, err
	}
	fp := p.cache.Fingerprint(m)
	p.recordFingerprint(entry.Name, param, fp)
	machine, err := p.cache.MachineForFingerprint(ctx, fp, m)
	if err != nil {
		return nil, fp, param, err
	}
	return machine, fp, param, nil
}

// TrackFingerprint records that the named model generates under fp at the
// given parameter in the pipeline's cache, so PurgeModel can later evict
// the generation and UpdateModel can link it for incremental
// regeneration. Callers that generate through Cache() directly (the SDK
// facade's default Generate path) must track here for unregistration to
// purge their machines; Render tracks its own requests.
func (p *Pipeline) TrackFingerprint(model string, param int, fp core.Fingerprint) {
	p.recordFingerprint(model, param, fp)
}

// recordFingerprint remembers that the named model generated under fp at
// the parameter, so PurgeModel can later evict the generation and
// UpdateModel can re-link it.
func (p *Pipeline) recordFingerprint(model string, param int, fp core.Fingerprint) {
	p.mu.Lock()
	set, ok := p.modelFPs[model]
	if !ok {
		set = make(map[core.Fingerprint]int, 1)
		p.modelFPs[model] = set
	}
	set[fp] = param
	p.mu.Unlock()
}

// UpdateModel replaces the registry entry under entry.Name in place,
// reporting whether a previous entry existed (false means the model was
// newly registered). Rendered artefacts and EFSMs derived from the
// previous entry are purged (from the store too, when one is attached);
// generated machines are kept and, when delta permits (see
// core.Cache.LinkDelta), each previously generated family member is
// linked so its replacement's first generation regenerates incrementally
// from the cached machine instead of exploring from scratch. The delta
// must conservatively describe the edit from the previous entry's model
// to the new one (spec.Diff produces it for declarative specs); pass a
// full delta when the relationship between the entries is unknown.
func (p *Pipeline) UpdateModel(entry models.Entry, delta core.ModelDelta) (bool, error) {
	oldEntry, oldErr := p.reg.Get(entry.Name)
	replaced, err := p.reg.Replace(entry)
	if err != nil {
		return false, err
	}

	p.mu.Lock()
	old := make(map[core.Fingerprint]int, len(p.modelFPs[entry.Name]))
	for fp, param := range p.modelFPs[entry.Name] {
		old[fp] = param
	}
	// Artefacts derived from the previous entry are stale: EFSM renders
	// are keyed by model name, machine renders by fingerprint (the new
	// entry fingerprints differently, so the old renders are unreachable
	// garbage either way).
	for key := range p.renders {
		if key.model == entry.Name {
			delete(p.renders, key)
			continue
		}
		if _, ok := old[key.fp]; ok {
			delete(p.renders, key)
		}
	}
	for key := range p.efsms {
		if key.model == entry.Name {
			delete(p.efsms, key)
		}
	}
	for req := range p.hot {
		if req.Model == entry.Name {
			delete(p.hot, req)
		}
	}
	for req := range p.routes {
		if req.Model == entry.Name {
			delete(p.routes, req)
		}
	}
	p.epoch++
	p.mu.Unlock()

	if p.store != nil {
		p.store.EvictModel(entry.Name, fpHexSet(old))
	}

	if !replaced || oldErr != nil || delta.IsFull() {
		return replaced, nil
	}
	// Link each parameter value the pipeline has generated at. The old
	// fingerprint is recomputed from the departing entry rather than taken
	// from the recorded set, so fingerprints left over from entries two or
	// more versions back — against which delta says nothing — are never
	// linked.
	params := make(map[int]struct{}, len(old))
	for _, param := range old {
		params[param] = struct{}{}
	}
	for param := range params {
		om, err := oldEntry.Model(param)
		if err != nil {
			continue
		}
		nm, err := entry.Model(param)
		if err != nil {
			continue
		}
		oldFP := p.cache.Fingerprint(om)
		newFP := p.cache.Fingerprint(nm)
		p.recordFingerprint(entry.Name, param, newFP)
		p.cache.LinkDelta(newFP, oldFP, delta)
	}
	return replaced, nil
}

// renderMemo memoises one rendered artefact, single-flight. The leader
// probes the attached store before producing — a disk hit skips
// generation entirely — and persists what it produces, unless a purge
// advanced the epoch while it ran. A production aborted by context
// cancellation is dropped rather than memoised, and waiters whose own
// context is still live retry as the new leader.
func (p *Pipeline) renderMemo(ctx context.Context, key renderKey, skey store.Key, produce func() (render.Artifact, error)) (rendered, error) {
	for {
		p.mu.Lock()
		e, ok := p.renders[key]
		if ok {
			p.renderHits++
			p.mu.Unlock()
			select {
			case <-e.done:
				if isCancellation(e.err) && ctx.Err() == nil {
					continue // the leader was cancelled, not us: retry
				}
				return e.out, e.err
			case <-ctx.Done():
				return rendered{}, ctx.Err()
			}
		}
		p.renderMisses++
		e = &renderEntry{done: make(chan struct{})}
		p.renders[key] = e
		epoch := p.epoch
		p.mu.Unlock()

		if p.store != nil {
			if data, sum, media, ext, ok := p.store.Get(skey); ok {
				e.out = rendered{
					art:  render.Artifact{Format: key.format, MediaType: media, Ext: ext, Data: data},
					sum:  sum,
					etag: etagFor(sum),
					clen: strconv.Itoa(len(data)),
				}
				close(e.done)
				return e.out, nil
			}
		}
		var art render.Artifact
		art, e.err = produce()
		switch {
		case e.err == nil:
			sum := sha256.Sum256(art.Data)
			e.out = rendered{art: art, sum: sum, etag: etagFor(sum), clen: strconv.Itoa(len(art.Data))}
			if p.store != nil {
				p.mu.Lock()
				fresh := p.epoch == epoch
				p.mu.Unlock()
				if fresh {
					// Persist errors degrade to an unpersisted artefact and
					// are counted by the store; the response is unaffected.
					_ = p.store.Put(skey, art.Data, sum, art.MediaType, art.Ext)
				}
			}
		case isCancellation(e.err):
			p.mu.Lock()
			if cur, ok := p.renders[key]; ok && cur == e {
				delete(p.renders, key)
			}
			p.mu.Unlock()
		}
		close(e.done)
		return e.out, e.err
	}
}

// RenderAll renders every request concurrently under the pipeline's
// worker bound and returns the results in request order. Cancelling ctx
// makes the remaining requests complete immediately with ctx.Err() in
// their Result.Err.
func (p *Pipeline) RenderAll(ctx context.Context, reqs []Request) []Result {
	results := make([]Result, len(reqs))
	p.each(ctx, reqs, func(i int, res Result) { results[i] = res })
	return results
}

// Stream renders every request concurrently and delivers results on the
// returned channel as they complete, in arbitrary order. The channel is
// closed once all requests are done. It is buffered for the full request
// count, so a consumer that stops reading early strands at most the
// remaining renders' memory — never the worker goroutines.
func (p *Pipeline) Stream(ctx context.Context, reqs []Request) <-chan Result {
	out := make(chan Result, len(reqs))
	go func() {
		defer close(out)
		p.each(ctx, reqs, func(_ int, res Result) { out <- res })
	}()
	return out
}

// each runs Render for every request on a bounded worker pool. deliver
// must be safe for concurrent calls with distinct indices (slice writes to
// distinct elements and channel sends both are).
func (p *Pipeline) each(ctx context.Context, reqs []Request, deliver func(i int, res Result)) {
	workers := min(p.jobs, len(reqs))
	if workers < 1 {
		return
	}
	var (
		wg   sync.WaitGroup
		next = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				deliver(i, p.Render(ctx, reqs[i]))
			}
		}()
	}
	for i := range reqs {
		next <- i
	}
	close(next)
	wg.Wait()
}

// AllRequests is the full cross product of the pipeline's registry: every
// registered model (at its default parameter) in every registered format,
// skipping EFSM formats for models that declare no EFSM abstraction.
// Requests are ordered by model name, then format name, so dynamically
// registered models join a batch deterministically.
func (p *Pipeline) AllRequests() []Request {
	return registryRequests(p.reg)
}

// AllRequests is the full default-registry cross product; see
// Pipeline.AllRequests for the per-pipeline form.
func AllRequests() []Request {
	return registryRequests(models.Default())
}

func registryRequests(reg *models.Registry) []Request {
	var reqs []Request
	for _, name := range reg.Names() {
		entry, err := reg.Get(name)
		if err != nil {
			continue
		}
		for _, format := range render.Formats() {
			if render.IsEFSMFormat(format) && entry.EFSM == nil {
				continue
			}
			reqs = append(reqs, Request{Model: name, Format: format})
		}
	}
	return reqs
}
