package artifact

import (
	"context"
	"errors"
	"testing"
	"time"

	"asagen/internal/core"
	"asagen/internal/models"
)

// slowModel is a linear chain whose Apply sleeps, so a pipeline
// generation is reliably in flight when a test cancels it.
type slowModel struct {
	states int
	delay  time.Duration
}

func (m *slowModel) Name() string   { return "pipeline-slow" }
func (m *slowModel) Parameter() int { return m.states }
func (m *slowModel) Components() []core.StateComponent {
	return []core.StateComponent{core.NewIntComponent("i", m.states)}
}
func (m *slowModel) Messages() []string { return []string{"next"} }
func (m *slowModel) Start() core.Vector { return core.Vector{0} }

func (m *slowModel) Apply(v core.Vector, msg string) (core.Effect, bool) {
	if msg != "next" {
		return core.Effect{}, false
	}
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	if v[0] == m.states {
		return core.Effect{Finished: true}, true
	}
	return core.Effect{Target: core.Vector{v[0] + 1}}, true
}

func (m *slowModel) DescribeState(core.Vector) []string { return nil }

func init() {
	// The pipeline resolves models through the global registry; register
	// the synthetic slow scenario for this test binary. The parameter is
	// the chain length; delay is fixed so large parameters generate slowly.
	models.Register(models.Entry{
		Name:         "pipeline-slow",
		Description:  "synthetic slow-generation model for cancellation tests",
		ParamName:    "chain length",
		DefaultParam: 8,
		Build: func(states int) (core.Model, error) {
			return &slowModel{states: states, delay: 100 * time.Microsecond}, nil
		},
	})
}

// TestRenderCancellation: cancelling the request context aborts the
// in-flight generation promptly, records a cancellation (not a
// generation) in the stats, leaves no poisoned cache entry, and the next
// request for the same artefact succeeds.
func TestRenderCancellation(t *testing.T) {
	p := New(WithGenerateOptions(core.WithoutMerging(), core.WithoutDescriptions()))
	req := Request{Model: "pipeline-slow", Param: 5000, Format: "text"}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Result, 1)
	go func() { done <- p.Render(ctx, req) }()

	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().Machine.Misses < 1 {
		if time.Now().After(deadline) {
			t.Fatal("generation did not start within 5s")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()

	select {
	case res := <-done:
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("Render error = %v, want context.Canceled", res.Err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("cancelled Render did not return promptly")
	}

	st := p.Stats()
	if st.Machine.Cancellations != 1 || st.Machine.Generations != 0 {
		t.Errorf("stats = %+v, want 1 cancellation and 0 generations", st.Machine)
	}
	if st.Machine.Entries != 0 {
		t.Errorf("cache kept %d entries after cancellation (poisoned entry)", st.Machine.Entries)
	}

	// A fresh context regenerates the artefact successfully. The chain is
	// long, so allow the real generation its time.
	res := p.Render(context.Background(), req)
	if res.Err != nil {
		t.Fatalf("re-render after cancellation: %v", res.Err)
	}
	if len(res.Artifact.Data) == 0 {
		t.Fatal("re-render produced no artefact")
	}
	if st := p.Stats(); st.Machine.Generations != 1 {
		t.Errorf("generations after re-render = %d, want 1", st.Machine.Generations)
	}
}

// TestRenderAllCancellation: a cancelled context fails the whole batch
// with context errors rather than hanging the worker pool.
func TestRenderAllCancellation(t *testing.T) {
	p := New(WithGenerateOptions(core.WithoutMerging(), core.WithoutDescriptions()))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := p.RenderAll(ctx, []Request{
		{Model: "pipeline-slow", Param: 5000, Format: "text"},
		{Model: "pipeline-slow", Param: 5001, Format: "dot"},
	})
	for i, res := range results {
		if !errors.Is(res.Err, context.Canceled) {
			t.Errorf("result %d error = %v, want context.Canceled", i, res.Err)
		}
	}
}
