package artifact

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"asagen/internal/core"
	"asagen/internal/models"
	"asagen/internal/render"
)

// TestCrossProductRenders is the registry cross-product golden test:
// every registered model must render in every registered format without
// error, and the machine must be generated exactly once per model.
func TestCrossProductRenders(t *testing.T) {
	reqs := AllRequests()
	wantLen := 0
	for _, name := range models.Names() {
		entry, err := models.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		wantLen += len(render.MachineFormats())
		if entry.EFSM != nil {
			wantLen += len(render.EFSMFormats())
		}
	}
	if len(reqs) != wantLen {
		t.Fatalf("AllRequests() = %d requests, want %d", len(reqs), wantLen)
	}

	p := New()
	results := p.RenderAll(context.Background(), reqs)
	if len(results) != len(reqs) {
		t.Fatalf("RenderAll returned %d results for %d requests", len(results), len(reqs))
	}
	for _, res := range results {
		if res.Err != nil {
			t.Errorf("%s/%s: %v", res.Request.Model, res.Request.Format, res.Err)
			continue
		}
		if len(res.Artifact.Data) == 0 {
			t.Errorf("%s/%s: empty artefact", res.Request.Model, res.Request.Format)
		}
		if res.Request.Param <= 0 {
			t.Errorf("%s/%s: parameter not resolved", res.Request.Model, res.Request.Format)
		}
		if !render.IsEFSMFormat(res.Request.Format) && res.Fingerprint.IsZero() {
			t.Errorf("%s/%s: missing fingerprint", res.Request.Model, res.Request.Format)
		}
		if !strings.Contains(res.FileName(), res.Request.Model) ||
			!strings.HasSuffix(res.FileName(), res.Artifact.Ext) {
			t.Errorf("malformed content-addressed name %q", res.FileName())
		}
	}
	st := p.Stats()
	if want := int64(len(models.Names())); st.Machine.Generations != want {
		t.Errorf("generations = %d, want %d (one per model)", st.Machine.Generations, want)
	}
	if st.RenderHits != 0 || st.RenderMisses != int64(len(reqs)) {
		t.Errorf("render hits/misses = %d/%d, want 0/%d", st.RenderHits, st.RenderMisses, len(reqs))
	}
}

// TestDeterminism: fingerprints and rendered bytes are identical across
// pipeline runs and across WithWorkers settings of the generation core.
func TestDeterminism(t *testing.T) {
	reqs := AllRequests()
	configs := []struct {
		name string
		opts []Option
	}{
		{"serial", nil},
		{"jobs-1", []Option{WithJobs(1)}},
		{"workers-4", []Option{WithGenerateOptions(core.WithWorkers(4)), WithJobs(8)}},
	}
	var base []Result
	for _, cfg := range configs {
		results := New(cfg.opts...).RenderAll(context.Background(), reqs)
		if base == nil {
			base = results
			// A second run of an identical fresh pipeline must agree too.
			results = New(cfg.opts...).RenderAll(context.Background(), reqs)
		}
		for i, res := range results {
			if res.Err != nil {
				t.Fatalf("%s: %s/%s: %v", cfg.name, res.Request.Model, res.Request.Format, res.Err)
			}
			if res.Fingerprint != base[i].Fingerprint {
				t.Errorf("%s: %s/%s: fingerprint diverged", cfg.name, res.Request.Model, res.Request.Format)
			}
			if res.Sum != base[i].Sum || !bytes.Equal(res.Artifact.Data, base[i].Artifact.Data) {
				t.Errorf("%s: %s/%s: rendered bytes diverged", cfg.name, res.Request.Model, res.Request.Format)
			}
		}
	}
}

// TestConcurrentSingleFlight: many concurrent requests across formats of
// one model cost exactly one generation.
func TestConcurrentSingleFlight(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	formats := render.MachineFormats()
	for i := 0; i < 8; i++ {
		for _, format := range formats {
			wg.Add(1)
			go func(format string) {
				defer wg.Done()
				if res := p.Render(context.Background(), Request{Model: "commit", Format: format}); res.Err != nil {
					t.Errorf("%s: %v", format, res.Err)
				}
			}(format)
		}
	}
	wg.Wait()
	st := p.Stats()
	if st.Machine.Generations != 1 {
		t.Errorf("generations = %d, want 1 for one distinct fingerprint", st.Machine.Generations)
	}
	if st.RenderMisses != int64(len(formats)) {
		t.Errorf("render misses = %d, want %d (one per format)", st.RenderMisses, len(formats))
	}
}

func TestStreamDeliversAll(t *testing.T) {
	reqs := AllRequests()
	p := New(WithJobs(4))
	seen := map[Request]bool{}
	for res := range p.Stream(context.Background(), reqs) {
		if res.Err != nil {
			t.Errorf("%s/%s: %v", res.Request.Model, res.Request.Format, res.Err)
		}
		seen[res.Request] = true
	}
	if len(seen) != len(reqs) {
		t.Errorf("stream delivered %d distinct results, want %d", len(seen), len(reqs))
	}
}

func TestRequestErrors(t *testing.T) {
	p := New()
	if res := p.Render(context.Background(), Request{Model: "nonsense", Format: "text"}); !errors.Is(res.Err, ErrUnknownModel) {
		t.Errorf("unknown model: %v", res.Err)
	}
	if res := p.Render(context.Background(), Request{Model: "commit", Format: "nonsense"}); !errors.Is(res.Err, ErrUnknownFormat) {
		t.Errorf("unknown format: %v", res.Err)
	}
	if res := p.Render(context.Background(), Request{Model: "commit", Param: 3, Format: "text"}); res.Err == nil {
		t.Error("invalid parameter accepted")
	}
}

// TestPurgeForcesRegeneration: after Purge the same request regenerates.
func TestPurgeForcesRegeneration(t *testing.T) {
	p := New()
	req := Request{Model: "termination", Format: "dot"}
	if res := p.Render(context.Background(), req); res.Err != nil {
		t.Fatal(res.Err)
	}
	p.Purge()
	if res := p.Render(context.Background(), req); res.Err != nil {
		t.Fatal(res.Err)
	}
	if st := p.Stats(); st.Machine.Generations != 2 {
		t.Errorf("generations = %d after purge, want 2", st.Machine.Generations)
	}
}
