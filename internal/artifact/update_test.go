package artifact

import (
	"context"
	"testing"

	"asagen/internal/models"
	"asagen/internal/spec"
)

func updatableDoc(finishAt int) spec.Doc {
	return spec.Doc{
		Name:         "updatable",
		DefaultParam: 6,
		Components: []spec.Component{
			{Name: "count", Kind: spec.KindInt, Max: spec.ParamValue(0)},
		},
		Messages: []string{"STEP", "DONE"},
		Rules: []spec.Rule{
			{
				Message: "STEP",
				When:    []spec.Cond{{Component: "count", Op: spec.OpLt, Value: spec.ParamValue(0)}},
				Set:     []spec.Assign{{Component: "count", Add: 1}},
			},
			{
				Message: "DONE",
				When:    []spec.Cond{{Component: "count", Op: spec.OpGe, Value: spec.Lit(finishAt)}},
				Actions: []string{"->done"},
				Finish:  true,
			},
		},
		Start: []spec.Value{spec.Lit(0)},
	}
}

// TestUpdateModelRegeneratesIncrementally: replacing a spec-backed model
// through UpdateModel with a rule-level delta reuses the cached machine,
// and the resulting artefact matches a pipeline that never saw the old
// version.
func TestUpdateModelRegeneratesIncrementally(t *testing.T) {
	ctx := context.Background()
	oldCompiled, err := spec.Compile(updatableDoc(3))
	if err != nil {
		t.Fatal(err)
	}
	newCompiled, err := spec.Compile(updatableDoc(5))
	if err != nil {
		t.Fatal(err)
	}

	reg := models.NewRegistry()
	if err := reg.Add(oldCompiled.Entry()); err != nil {
		t.Fatal(err)
	}
	p := New(WithRegistry(reg))
	req := Request{Model: "updatable", Format: "text"}
	if res := p.Render(ctx, req); res.Err != nil {
		t.Fatalf("initial render: %v", res.Err)
	}

	delta := spec.Diff(oldCompiled.Doc(), newCompiled.Doc())
	if delta.IsFull() {
		t.Fatalf("delta = %+v, want rule-level", delta)
	}
	replaced, err := p.UpdateModel(newCompiled.Entry(), delta)
	if err != nil {
		t.Fatalf("UpdateModel: %v", err)
	}
	if !replaced {
		t.Fatal("UpdateModel did not report a replacement")
	}

	res := p.Render(ctx, req)
	if res.Err != nil {
		t.Fatalf("render after update: %v", res.Err)
	}
	st := p.Stats().Machine
	if st.Incremental != 1 {
		t.Errorf("Incremental = %d, want 1 (stats %+v)", st.Incremental, st)
	}

	// A pipeline that only ever knew the new version must agree exactly.
	freshReg := models.NewRegistry()
	if err := freshReg.Add(newCompiled.Entry()); err != nil {
		t.Fatal(err)
	}
	fresh := New(WithRegistry(freshReg))
	want := fresh.Render(ctx, req)
	if want.Err != nil {
		t.Fatalf("fresh render: %v", want.Err)
	}
	if res.Fingerprint != want.Fingerprint {
		t.Errorf("updated fingerprint %s != fresh %s", res.Fingerprint, want.Fingerprint)
	}
	if string(res.Artifact.Data) != string(want.Artifact.Data) {
		t.Error("updated artefact bytes differ from fresh pipeline")
	}
}

// TestUpdateModelFullDeltaRegeneratesFromScratch: a structural edit keeps
// correctness but never takes the incremental path.
func TestUpdateModelFullDeltaRegeneratesFromScratch(t *testing.T) {
	ctx := context.Background()
	oldCompiled, err := spec.Compile(updatableDoc(3))
	if err != nil {
		t.Fatal(err)
	}
	edited := updatableDoc(3)
	edited.Messages = append(edited.Messages, "EXTRA")
	edited.Rules = append(edited.Rules, spec.Rule{Message: "EXTRA", Actions: []string{"->extra"}})
	newCompiled, err := spec.Compile(edited)
	if err != nil {
		t.Fatal(err)
	}

	reg := models.NewRegistry()
	if err := reg.Add(oldCompiled.Entry()); err != nil {
		t.Fatal(err)
	}
	p := New(WithRegistry(reg))
	req := Request{Model: "updatable", Format: "text"}
	if res := p.Render(ctx, req); res.Err != nil {
		t.Fatal(res.Err)
	}

	delta := spec.Diff(oldCompiled.Doc(), newCompiled.Doc())
	if !delta.IsFull() {
		t.Fatalf("delta = %+v, want full", delta)
	}
	if _, err := p.UpdateModel(newCompiled.Entry(), delta); err != nil {
		t.Fatal(err)
	}
	if res := p.Render(ctx, req); res.Err != nil {
		t.Fatal(res.Err)
	}
	if st := p.Stats().Machine; st.Incremental != 0 {
		t.Errorf("Incremental = %d, want 0 for a full delta", st.Incremental)
	}
}

// TestUpdateModelInsertsWhenAbsent: UpdateModel on an unknown name behaves
// as a plain registration.
func TestUpdateModelInsertsWhenAbsent(t *testing.T) {
	compiled, err := spec.Compile(updatableDoc(3))
	if err != nil {
		t.Fatal(err)
	}
	p := New(WithRegistry(models.NewRegistry()))
	replaced, err := p.UpdateModel(compiled.Entry(), spec.Diff(compiled.Doc(), compiled.Doc()))
	if err != nil {
		t.Fatal(err)
	}
	if replaced {
		t.Error("UpdateModel reported a replacement for a new name")
	}
	if res := p.Render(context.Background(), Request{Model: "updatable", Format: "text"}); res.Err != nil {
		t.Fatalf("render after insert: %v", res.Err)
	}
}
