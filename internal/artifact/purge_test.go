package artifact

import (
	"context"
	"testing"

	"asagen/internal/models"
)

// TestPurgeModelEvictsOnlyThatModel: PurgeModel drops the named model's
// generations, EFSMs and rendered artefacts while other models' cached
// work survives.
func TestPurgeModelEvictsOnlyThatModel(t *testing.T) {
	reg := models.Default().Clone()
	p := New(WithRegistry(reg))
	ctx := context.Background()

	for _, req := range []Request{
		{Model: "termination", Format: "text"},
		{Model: "termination", Format: "efsm"},
		{Model: "commit", Format: "text"},
	} {
		if res := p.Render(ctx, req); res.Err != nil {
			t.Fatalf("%v: %v", req, res.Err)
		}
	}
	if got := p.Cache().Stats().Entries; got != 2 {
		t.Fatalf("cached machines = %d, want 2", got)
	}

	if dropped := p.PurgeModel("termination"); dropped != 1 {
		t.Errorf("PurgeModel dropped %d generations, want 1", dropped)
	}
	if got := p.Cache().Stats().Entries; got != 1 {
		t.Errorf("cached machines after purge = %d, want 1 (commit)", got)
	}

	// The surviving model still answers from its memo; the purged one
	// re-renders from scratch.
	st := p.Stats()
	if res := p.Render(ctx, Request{Model: "commit", Format: "text"}); res.Err != nil {
		t.Fatal(res.Err)
	}
	if after := p.Stats(); after.RenderHits != st.RenderHits+1 {
		t.Errorf("commit render was not a memo hit (%d -> %d)", st.RenderHits, after.RenderHits)
	}
	if res := p.Render(ctx, Request{Model: "termination", Format: "text"}); res.Err != nil {
		t.Fatal(res.Err)
	}
	if after := p.Stats(); after.RenderMisses != st.RenderMisses+1 {
		t.Errorf("termination render after purge was not a miss (%d -> %d)", st.RenderMisses, after.RenderMisses)
	}

	// Purging an unknown name is a no-op.
	if dropped := p.PurgeModel("never-rendered"); dropped != 0 {
		t.Errorf("PurgeModel(unknown) dropped %d", dropped)
	}
}

// TestPipelineAllRequestsFollowsRegistry: the per-pipeline cross product
// reflects dynamic registrations and removals on its registry.
func TestPipelineAllRequestsFollowsRegistry(t *testing.T) {
	reg := models.Default().Clone()
	p := New(WithRegistry(reg))

	base := len(p.AllRequests())
	if base == 0 {
		t.Fatal("empty cross product")
	}
	entry, err := reg.Get("termination")
	if err != nil {
		t.Fatal(err)
	}
	entry.Name = "termination-copy"
	if err := reg.Add(entry); err != nil {
		t.Fatal(err)
	}
	if got := len(p.AllRequests()); got != base+7 {
		t.Errorf("cross product after registration = %d, want %d", got, base+7)
	}
	reg.Remove("termination-copy")
	if got := len(p.AllRequests()); got != base {
		t.Errorf("cross product after removal = %d, want %d", got, base)
	}
	// The package-level helper stays pinned to the default registry.
	if got := len(AllRequests()); got != base {
		t.Errorf("default-registry cross product = %d, want %d", got, base)
	}
}
