package artifact

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"asagen/internal/core"
	"asagen/internal/models"
	"asagen/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRestartWarmth is the persistence acceptance check: a pipeline
// reopened over the store directory of a previous pipeline serves every
// previously rendered artefact from disk — byte-identical, observable as
// store hits, and without generating a single machine.
func TestRestartWarmth(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	reqs := []Request{
		{Model: "commit", Format: "text"},
		{Model: "commit", Format: "dot"},
		{Model: "termination", Format: "text"},
		{Model: "termination", Format: "efsm"},
	}

	s1 := openStore(t, dir)
	p1 := New(WithStore(s1))
	before := make(map[Request]Result, len(reqs))
	for _, req := range reqs {
		res := p1.Render(ctx, req)
		if res.Err != nil {
			t.Fatalf("%v: %v", req, res.Err)
		}
		before[req] = res
	}
	if gens := p1.Stats().Machine.Generations; gens == 0 {
		t.Fatal("cold pipeline generated nothing; test is vacuous")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh pipeline and generation cache over the same dir.
	s2 := openStore(t, dir)
	defer s2.Close()
	p2 := New(WithStore(s2))
	for _, req := range reqs {
		res := p2.Render(ctx, req)
		if res.Err != nil {
			t.Fatalf("restarted %v: %v", req, res.Err)
		}
		want := before[req]
		if !bytes.Equal(res.Artifact.Data, want.Artifact.Data) {
			t.Errorf("%v: bytes diverged across restart", req)
		}
		if res.Sum != want.Sum || res.ETag != want.ETag {
			t.Errorf("%v: validators diverged across restart (%s vs %s)", req, res.ETag, want.ETag)
		}
		if res.Artifact.MediaType != want.Artifact.MediaType || res.Artifact.Ext != want.Artifact.Ext {
			t.Errorf("%v: artefact metadata diverged across restart", req)
		}
	}
	st := p2.Stats()
	if st.Machine.Generations != 0 {
		t.Errorf("generations after restart = %d, want 0 (all served from disk)", st.Machine.Generations)
	}
	if st.Store == nil || st.Store.Hits != int64(len(reqs)) {
		t.Errorf("store stats after restart = %+v, want %d hits", st.Store, len(reqs))
	}
}

// TestPurgeModelEvictsStore: unregistering a model's cached work drops
// its on-disk rows and blobs too — including machine rows, which carry no
// model name in their key — and the eviction survives a store reopen. The
// other model's rows stay serveable.
func TestPurgeModelEvictsStore(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s := openStore(t, dir)
	p := New(WithStore(s))
	for _, req := range []Request{
		{Model: "termination", Format: "text"},
		{Model: "termination", Format: "efsm"},
		{Model: "commit", Format: "text"},
	} {
		if res := p.Render(ctx, req); res.Err != nil {
			t.Fatalf("%v: %v", req, res.Err)
		}
	}
	if n := s.Len(); n != 3 {
		t.Fatalf("store rows before purge = %d, want 3", n)
	}

	if dropped := p.PurgeModel("termination"); dropped != 1 {
		t.Errorf("PurgeModel dropped %d generations, want 1", dropped)
	}
	if n := s.Len(); n != 1 {
		t.Errorf("store rows after purge = %d, want 1 (commit only)", n)
	}
	// The blobs directory holds exactly the surviving artefact's content.
	blobs := 0
	filepath.WalkDir(filepath.Join(dir, "blobs"), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			blobs++
		}
		return nil
	})
	if blobs != 1 {
		t.Errorf("blob files after purge = %d, want 1", blobs)
	}

	commit := p.Render(ctx, Request{Model: "commit", Format: "text"})
	if commit.Err != nil {
		t.Fatal(commit.Err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the eviction is durable, and commit is still disk-warm.
	s2 := openStore(t, dir)
	defer s2.Close()
	p2 := New(WithStore(s2))
	if n := s2.Len(); n != 1 {
		t.Errorf("store rows after reopen = %d, want 1", n)
	}
	res := p2.Render(ctx, Request{Model: "termination", Format: "text"})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := p2.Stats().Machine.Generations; got != 1 {
		t.Errorf("purged model served without regeneration (generations = %d, want 1)", got)
	}
	res2 := p2.Render(ctx, Request{Model: "commit", Format: "text"})
	if res2.Err != nil {
		t.Fatal(res2.Err)
	}
	if !bytes.Equal(res2.Artifact.Data, commit.Artifact.Data) {
		t.Error("surviving model's bytes diverged across reopen")
	}
}

// TestUpdateModelEvictsStore: replacing a registry entry in place drops
// the previous entry's on-disk artefacts, so a warm store can never serve
// bytes rendered from a superseded model.
func TestUpdateModelEvictsStore(t *testing.T) {
	ctx := context.Background()
	s := openStore(t, t.TempDir())
	defer s.Close()
	reg := models.Default().Clone()
	p := New(WithStore(s), WithRegistry(reg))

	if res := p.Render(ctx, Request{Model: "commit", Format: "text"}); res.Err != nil {
		t.Fatal(res.Err)
	}
	if n := s.Len(); n != 1 {
		t.Fatalf("store rows = %d, want 1", n)
	}
	entry, err := reg.Get("commit")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.UpdateModel(entry, core.ModelDelta{Full: true}); err != nil {
		t.Fatal(err)
	}
	if n := s.Len(); n != 0 {
		t.Errorf("store rows after update = %d, want 0", n)
	}
}

// TestPurgePurgesStore: the blanket Purge empties the attached store too.
func TestPurgePurgesStore(t *testing.T) {
	ctx := context.Background()
	s := openStore(t, t.TempDir())
	defer s.Close()
	p := New(WithStore(s))
	if res := p.Render(ctx, Request{Model: "commit", Format: "text"}); res.Err != nil {
		t.Fatal(res.Err)
	}
	if s.Len() == 0 {
		t.Fatal("nothing persisted; test is vacuous")
	}
	p.Purge()
	if n := s.Len(); n != 0 {
		t.Errorf("store rows after Purge = %d, want 0", n)
	}
}

// TestHotMemoServesRepeatRequests: a repeat request is answered from the
// hot memo — same shared bytes, precomputed ETag, and a HotHits tick —
// for both the raw (param 0) and resolved forms of the request.
func TestHotMemoServesRepeatRequests(t *testing.T) {
	ctx := context.Background()
	p := New()
	first := p.Render(ctx, Request{Model: "commit", Format: "text"})
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	if first.ETag == "" || first.ETag != etagFor(first.Sum) {
		t.Fatalf("ETag = %q, want quoted content hash", first.ETag)
	}
	for _, req := range []Request{
		{Model: "commit", Format: "text"},                             // raw
		{Model: "commit", Param: first.Request.Param, Format: "text"}, // resolved
	} {
		before := p.Stats().HotHits
		res := p.Render(ctx, req)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if &res.Artifact.Data[0] != &first.Artifact.Data[0] {
			t.Errorf("%v: repeat request copied the artefact bytes", req)
		}
		if res.ETag != first.ETag {
			t.Errorf("%v: ETag diverged on repeat (%q vs %q)", req, res.ETag, first.ETag)
		}
		if after := p.Stats().HotHits; after != before+1 {
			t.Errorf("%v: HotHits %d -> %d, want +1", req, before, after)
		}
	}
}

// TestConcurrentMissesCoalesce: many concurrent requests for one raw
// request cost one render-memo miss — the flight leader computes, the
// rest share its Result.
func TestConcurrentMissesCoalesce(t *testing.T) {
	p := New()
	const n = 16
	var wg sync.WaitGroup
	results := make([]Result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = p.Render(context.Background(), Request{Model: "commit", Format: "text"})
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
		if &res.Artifact.Data[0] != &results[0].Artifact.Data[0] {
			t.Errorf("request %d: bytes not shared with the flight leader", i)
		}
	}
	st := p.Stats()
	if st.RenderMisses != 1 {
		t.Errorf("render misses = %d, want 1 for one coalesced request", st.RenderMisses)
	}
	if st.Machine.Generations != 1 {
		t.Errorf("generations = %d, want 1", st.Machine.Generations)
	}
}

// TestPurgeModelDropsHotMemo: after PurgeModel the purged model's hot
// results are gone — a re-registration under the same name can never be
// answered with the departed model's bytes.
func TestPurgeModelDropsHotMemo(t *testing.T) {
	ctx := context.Background()
	p := New()
	if res := p.Render(ctx, Request{Model: "commit", Format: "text"}); res.Err != nil {
		t.Fatal(res.Err)
	}
	if res := p.Render(ctx, Request{Model: "commit", Format: "text"}); res.Err != nil || p.Stats().HotHits != 1 {
		t.Fatalf("warm-up failed: err=%v hotHits=%d", res.Err, p.Stats().HotHits)
	}
	p.PurgeModel("commit")
	if res := p.Render(ctx, Request{Model: "commit", Format: "text"}); res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := p.Stats().HotHits; got != 1 {
		t.Errorf("HotHits after purge = %d, want 1 (request must not hit the stale memo)", got)
	}
}
