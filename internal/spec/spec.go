// Package spec implements the declarative model-authoring layer: a
// JSON-serialisable document describing a parameterised scenario — state
// components, message vocabulary, guarded transition rules, state
// documentation and optional EFSM abstraction hints — that compiles into a
// core.Model. The paper's central claim is that fault-tolerant state
// machines should be generated from compact parameterised specifications
// (§3); this package makes the specification itself data, so new scenarios
// can be registered at runtime through the SDK, the wire API or a command
// flag instead of being hand-written Go adapters inside internal/.
//
// A Doc is deliberately a small total language, not a general-purpose one:
// integer values are at most parameter-affine (offset + parameter), guards
// are conjunctions of component comparisons, and effects are component
// assignments and increments. Everything a Doc can express terminates and
// is deterministic, which keeps the Model contract (side-effect-free,
// deterministic Apply) true by construction.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// Value is a possibly parameter-affine integer: Offset, plus the model
// parameter when Param is set. It is the only numeric expression form in a
// spec, so specs stay trivially total and analysable.
type Value struct {
	Param  bool `json:"param,omitempty"`
	Offset int  `json:"offset,omitempty"`
}

// Lit returns the constant value n.
func Lit(n int) Value { return Value{Offset: n} }

// ParamValue returns the value of the model parameter plus offset.
func ParamValue(offset int) Value { return Value{Param: true, Offset: offset} }

// Eval resolves the value for a concrete parameter.
func (v Value) Eval(param int) int {
	if v.Param {
		return param + v.Offset
	}
	return v.Offset
}

// String renders the value symbolically ("p+1", "3").
func (v Value) String() string {
	if !v.Param {
		return fmt.Sprintf("%d", v.Offset)
	}
	switch {
	case v.Offset == 0:
		return "p"
	case v.Offset > 0:
		return fmt.Sprintf("p+%d", v.Offset)
	default:
		return fmt.Sprintf("p%d", v.Offset)
	}
}

// Component kinds.
const (
	KindBool = "bool"
	KindInt  = "int"
)

// Component declares one dimension of the state space.
type Component struct {
	// Name identifies the component, e.g. "outstanding".
	Name string `json:"name"`
	// Kind is KindBool or KindInt.
	Kind string `json:"kind"`
	// Max is the largest legal value of an int component (inclusive); it
	// may be parameter-affine. Ignored for bool components.
	Max Value `json:"max,omitempty"`
}

// Comparison operators usable in conditions.
const (
	OpEq = "=="
	OpNe = "!="
	OpLt = "<"
	OpLe = "<="
	OpGt = ">"
	OpGe = ">="
)

var validOps = map[string]bool{OpEq: true, OpNe: true, OpLt: true, OpLe: true, OpGt: true, OpGe: true}

// Cond compares one component against a value.
type Cond struct {
	Component string `json:"component"`
	Op        string `json:"op"`
	Value     Value  `json:"value"`
}

// holds evaluates the condition against a component value.
func condHolds(op string, have, want int) bool {
	switch op {
	case OpEq:
		return have == want
	case OpNe:
		return have != want
	case OpLt:
		return have < want
	case OpLe:
		return have <= want
	case OpGt:
		return have > want
	case OpGe:
		return have >= want
	}
	return false
}

// Assign updates one component: Set overwrites with a value, otherwise Add
// is added to the current value.
type Assign struct {
	Component string `json:"component"`
	Set       *Value `json:"set,omitempty"`
	Add       int    `json:"add,omitempty"`
}

// Rule is one guarded transition reaction. For each message the rules are
// tried in document order and the first rule whose conditions all hold
// fires; a message with no matching rule is not applicable in that state
// (the paper's InvalidStateException path, Fig. 10).
type Rule struct {
	// Message names the received message the rule reacts to.
	Message string `json:"message"`
	// When are the guard conditions, all of which must hold.
	When []Cond `json:"when,omitempty"`
	// Set are the component updates applied, in order.
	Set []Assign `json:"set,omitempty"`
	// Actions are the outgoing messages performed, e.g. "->vote".
	Actions []string `json:"actions,omitempty"`
	// Annotations document the reaction in generated artefacts.
	Annotations []string `json:"annotations,omitempty"`
	// Finish marks a transition into the synthetic finish state.
	Finish bool `json:"finish,omitempty"`
}

// DescribeRule contributes one line of per-state documentation when its
// conditions hold. The text may reference "{param}" and "{<component>}"
// placeholders, substituted with the concrete values.
type DescribeRule struct {
	When []Cond `json:"when,omitempty"`
	Text string `json:"text"`
}

// LabelRule maps concrete states to an abstract EFSM state label; the
// first rule whose conditions hold wins. The final rule must be
// unconditional so every state has a label.
type LabelRule struct {
	When  []Cond `json:"when,omitempty"`
	Label string `json:"label"`
}

// GuardRule names the counter component whose value selects among a
// message's outcomes during EFSM generalisation.
type GuardRule struct {
	Message   string `json:"message"`
	Component string `json:"component"`
}

// VarOpRule declares the counter update an EFSM transition performs when
// the message is received.
type VarOpRule struct {
	Message   string `json:"message"`
	Component string `json:"component"`
	Delta     int    `json:"delta"`
}

// SymbolRule renders a concrete counter value as a parameter-independent
// expression in EFSM guards; the first rule whose value matches wins, and
// unmatched values render as literals.
type SymbolRule struct {
	Value Value  `json:"value"`
	Text  string `json:"text"`
}

// Abstraction is the optional EFSM generalisation hint set (§5.3): how to
// label coalesced states, which counters guard which messages, the counter
// updates, and the symbolic rendering of guard bounds.
type Abstraction struct {
	Labels  []LabelRule  `json:"labels"`
	Guards  []GuardRule  `json:"guards,omitempty"`
	Ops     []VarOpRule  `json:"ops,omitempty"`
	Symbols []SymbolRule `json:"symbols,omitempty"`
}

// Doc is the declarative model specification. Its JSON encoding is the
// wire format of POST /v1/models and the fsmgen -spec file format.
type Doc struct {
	// Name is the registry key the model is registered under.
	Name string `json:"name"`
	// ModelName is the model identity stamped on generated machines and
	// artefacts; it defaults to Name.
	ModelName string `json:"model_name,omitempty"`
	// Description is a one-line scenario summary.
	Description string `json:"description,omitempty"`
	// ParamName names the model parameter, e.g. "fan-out bound".
	ParamName string `json:"param_name,omitempty"`
	// DefaultParam is the parameter used when a request passes none; it
	// defaults to 1.
	DefaultParam int `json:"default_param,omitempty"`
	// MinParam is the smallest accepted parameter value; it defaults to 1.
	MinParam int `json:"min_param,omitempty"`
	// SweepParams are representative parameter values, ascending.
	SweepParams []int `json:"sweep_params,omitempty"`
	// Vocabulary optionally names the message vocabulary for runtime
	// layers (see models.Entry.Vocabulary).
	Vocabulary string `json:"vocabulary,omitempty"`
	// Components declare the state space dimensions, in state-name order.
	Components []Component `json:"components"`
	// Messages list the receivable message types, in canonical order.
	Messages []string `json:"messages"`
	// Start optionally overrides the all-zero start vector, one value per
	// component.
	Start []Value `json:"start,omitempty"`
	// Rules are the guarded transition reactions.
	Rules []Rule `json:"rules"`
	// Describe are the per-state documentation rules.
	Describe []DescribeRule `json:"describe,omitempty"`
	// Abstraction optionally enables the EFSM formats.
	Abstraction *Abstraction `json:"abstraction,omitempty"`
}

// Diagnostic is one validation finding, addressed by a JSON-path-like
// location inside the document.
type Diagnostic struct {
	// Path locates the offending field, e.g. "rules[2].when[0].component".
	Path string `json:"path"`
	// Message explains the problem.
	Message string `json:"message"`
}

func (d Diagnostic) String() string { return d.Path + ": " + d.Message }

// Error is the typed compilation failure: every problem found in the
// document, not just the first.
type Error struct {
	// Name echoes the spec name, possibly empty.
	Name string
	// Diagnostics lists the problems in document order.
	Diagnostics []Diagnostic
}

// Error implements error, naming each diagnostic.
func (e *Error) Error() string {
	parts := make([]string, len(e.Diagnostics))
	for i, d := range e.Diagnostics {
		parts[i] = d.String()
	}
	name := e.Name
	if name == "" {
		name = "(unnamed)"
	}
	return fmt.Sprintf("spec: invalid model spec %s: %s", name, strings.Join(parts, "; "))
}

// Parse decodes a JSON document strictly: unknown fields are rejected so
// misspelt keys surface as errors rather than silently missing semantics.
func Parse(data []byte) (Doc, error) {
	var d Doc
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return Doc{}, fmt.Errorf("spec: parse: %w", err)
	}
	// Trailing garbage after the document is a malformed payload too.
	if dec.More() {
		return Doc{}, fmt.Errorf("spec: parse: trailing data after document")
	}
	return d, nil
}

// diags accumulates diagnostics during validation.
type diags struct {
	list []Diagnostic
}

func (d *diags) add(path, format string, args ...any) {
	d.list = append(d.list, Diagnostic{Path: path, Message: fmt.Sprintf(format, args...)})
}

// isName reports whether s is usable as a registry key / URL path segment:
// it must start with a letter and continue with letters, digits, '-', '_'
// or '.'.
func isName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case i > 0 && (r >= '0' && r <= '9' || r == '-' || r == '_' || r == '.'):
		default:
			return false
		}
	}
	return true
}

// Compile validates the document and returns the executable compiled form.
// All problems are reported together through *Error.
func Compile(d Doc) (*Compiled, error) {
	var diag diags

	if !isName(d.Name) {
		diag.add("name", "must start with a letter and contain only letters, digits, '-', '_' or '.' (got %q)", d.Name)
	}
	if d.ModelName == "" {
		d.ModelName = d.Name
	}
	if d.MinParam == 0 {
		d.MinParam = 1
	}
	if d.MinParam < 1 {
		diag.add("min_param", "must be >= 1 (got %d)", d.MinParam)
	}
	if d.DefaultParam == 0 {
		d.DefaultParam = d.MinParam
	}
	if d.DefaultParam < d.MinParam {
		diag.add("default_param", "must be >= min_param %d (got %d)", d.MinParam, d.DefaultParam)
	}
	if d.ParamName == "" {
		d.ParamName = "parameter"
	}
	for i, p := range d.SweepParams {
		if p < d.MinParam {
			diag.add(fmt.Sprintf("sweep_params[%d]", i), "parameter %d < min_param %d", p, d.MinParam)
		}
	}

	// Components.
	compIdx := map[string]int{}
	if len(d.Components) == 0 {
		diag.add("components", "at least one state component is required")
	}
	for i, c := range d.Components {
		path := fmt.Sprintf("components[%d]", i)
		if c.Name == "" {
			diag.add(path+".name", "component name must not be empty")
		} else if _, dup := compIdx[c.Name]; dup {
			diag.add(path+".name", "duplicate component %q", c.Name)
		} else {
			compIdx[c.Name] = i
		}
		switch c.Kind {
		case KindBool:
		case KindInt:
			if max := c.Max.Eval(d.DefaultParam); max < 0 {
				diag.add(path+".max", "component %q max %s is negative at the default parameter %d", c.Name, c.Max, d.DefaultParam)
			}
		default:
			diag.add(path+".kind", "unknown kind %q (want %q or %q)", c.Kind, KindBool, KindInt)
		}
	}

	// Messages.
	msgSet := map[string]bool{}
	if len(d.Messages) == 0 {
		diag.add("messages", "at least one message is required")
	}
	for i, m := range d.Messages {
		path := fmt.Sprintf("messages[%d]", i)
		if strings.TrimSpace(m) == "" {
			diag.add(path, "message name must not be blank")
			continue
		}
		if msgSet[m] {
			diag.add(path, "duplicate message %q", m)
		}
		msgSet[m] = true
	}

	// Start vector.
	if len(d.Start) != 0 && len(d.Start) != len(d.Components) {
		diag.add("start", "got %d values for %d components", len(d.Start), len(d.Components))
	}
	if len(d.Start) == len(d.Components) {
		for i, v := range d.Start {
			comp := d.Components[i]
			max := 1
			switch comp.Kind {
			case KindBool:
			case KindInt:
				max = comp.Max.Eval(d.DefaultParam)
			default:
				continue // the kind diagnostic above covers it
			}
			if got := v.Eval(d.DefaultParam); got < 0 || got > max {
				diag.add(fmt.Sprintf("start[%d]", i),
					"value %s of component %q is outside [0, %d] at the default parameter %d",
					v, comp.Name, max, d.DefaultParam)
			}
		}
	}

	checkCond := func(path string, c Cond) {
		if _, ok := compIdx[c.Component]; !ok {
			diag.add(path+".component", "unknown component %q", c.Component)
		}
		if !validOps[c.Op] {
			diag.add(path+".op", "unknown operator %q", c.Op)
		}
	}
	checkConds := func(path string, cs []Cond) {
		for i, c := range cs {
			checkCond(fmt.Sprintf("%s.when[%d]", path, i), c)
		}
	}

	// Rules.
	if len(d.Rules) == 0 {
		diag.add("rules", "at least one rule is required")
	}
	for i, r := range d.Rules {
		path := fmt.Sprintf("rules[%d]", i)
		if !msgSet[r.Message] {
			diag.add(path+".message", "unknown message %q", r.Message)
		}
		checkConds(path, r.When)
		for j, a := range r.Set {
			apath := fmt.Sprintf("%s.set[%d]", path, j)
			if _, ok := compIdx[a.Component]; !ok {
				diag.add(apath+".component", "unknown component %q", a.Component)
			}
			if a.Set != nil && a.Add != 0 {
				diag.add(apath, "set and add are mutually exclusive")
			}
			if a.Set == nil && a.Add == 0 {
				diag.add(apath, "one of set or add is required")
			}
		}
		for j, act := range r.Actions {
			if strings.TrimSpace(act) == "" {
				diag.add(fmt.Sprintf("%s.actions[%d]", path, j), "action must not be blank")
			}
		}
	}

	// Describe rules.
	for i, r := range d.Describe {
		path := fmt.Sprintf("describe[%d]", i)
		if r.Text == "" {
			diag.add(path+".text", "text must not be empty")
		}
		checkConds(path, r.When)
	}

	// Abstraction.
	if a := d.Abstraction; a != nil {
		if len(a.Labels) == 0 {
			diag.add("abstraction.labels", "at least one label rule is required")
		} else {
			last := a.Labels[len(a.Labels)-1]
			if len(last.When) != 0 {
				diag.add("abstraction.labels", "the final label rule must be unconditional so every state has a label")
			}
		}
		for i, l := range a.Labels {
			path := fmt.Sprintf("abstraction.labels[%d]", i)
			if l.Label == "" {
				diag.add(path+".label", "label must not be empty")
			}
			checkConds(path, l.When)
		}
		for i, g := range a.Guards {
			path := fmt.Sprintf("abstraction.guards[%d]", i)
			if !msgSet[g.Message] {
				diag.add(path+".message", "unknown message %q", g.Message)
			}
			if _, ok := compIdx[g.Component]; !ok {
				diag.add(path+".component", "unknown component %q", g.Component)
			}
		}
		for i, op := range a.Ops {
			path := fmt.Sprintf("abstraction.ops[%d]", i)
			if !msgSet[op.Message] {
				diag.add(path+".message", "unknown message %q", op.Message)
			}
			if _, ok := compIdx[op.Component]; !ok {
				diag.add(path+".component", "unknown component %q", op.Component)
			}
			if op.Delta == 0 {
				diag.add(path+".delta", "delta must not be zero")
			}
		}
		for i, s := range a.Symbols {
			if s.Text == "" {
				diag.add(fmt.Sprintf("abstraction.symbols[%d].text", i), "text must not be empty")
			}
		}
	}

	if len(diag.list) > 0 {
		return nil, &Error{Name: d.Name, Diagnostics: diag.list}
	}
	return newCompiled(d), nil
}

// ParseAndCompile decodes and compiles a JSON document in one step.
func ParseAndCompile(data []byte) (*Compiled, error) {
	d, err := Parse(data)
	if err != nil {
		return nil, err
	}
	return Compile(d)
}
