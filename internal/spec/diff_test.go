package spec

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"asagen/internal/core"
)

// editableDoc is the randomized-edit base: a two-counter protocol with
// enough rules per message that random adds, removes and parameter sweeps
// keep producing valid, distinct documents.
func editableDoc() Doc {
	return Doc{
		Name:         "editable",
		DefaultParam: 5,
		Components: []Component{
			{Name: "pending", Kind: KindInt, Max: ParamValue(0)},
			{Name: "acked", Kind: KindInt, Max: ParamValue(0)},
			{Name: "open", Kind: KindBool},
		},
		Messages: []string{"REQ", "ACK", "CLOSE", "RESET"},
		Rules: []Rule{
			{
				Message: "REQ",
				When: []Cond{
					{Component: "open", Op: OpEq, Value: Lit(1)},
					{Component: "pending", Op: OpLt, Value: ParamValue(0)},
				},
				Set:     []Assign{{Component: "pending", Add: 1}},
				Actions: []string{"->req"},
			},
			{
				Message: "ACK",
				When: []Cond{
					{Component: "pending", Op: OpGt, Value: Lit(0)},
				},
				Set: []Assign{
					{Component: "pending", Add: -1},
					{Component: "acked", Add: 1},
				},
			},
			{
				Message: "CLOSE",
				When: []Cond{
					{Component: "acked", Op: OpGe, Value: ParamValue(-1)},
				},
				Actions: []string{"->closed"},
				Finish:  true,
			},
			{
				Message: "RESET",
				Set: []Assign{
					{Component: "pending", Set: ptrVal(Lit(0))},
					{Component: "acked", Set: ptrVal(Lit(0))},
					{Component: "open", Set: ptrVal(Lit(1))},
				},
				Actions: []string{"->reset"},
			},
		},
		Start: []Value{Lit(0), Lit(0), Lit(1)},
	}
}

func ptrVal(v Value) *Value { return &v }

// randomEdit mutates a copy of the document with one of the edit kinds
// the incremental path is specified for: rule added, rule removed, or a
// parameter-affine value swept inside an existing rule. Describe edits
// are mixed in to exercise the empty-delta rebuild path.
func randomEdit(rng *rand.Rand, d Doc) Doc {
	d.Rules = append([]Rule(nil), d.Rules...)
	msgs := d.Messages
	switch rng.Intn(4) {
	case 0: // add a guarded no-progress rule in front of some rule set
		msg := msgs[rng.Intn(len(msgs))]
		d.Rules = append(d.Rules, Rule{
			Message: msg,
			When: []Cond{
				{Component: "acked", Op: OpEq, Value: Lit(rng.Intn(4))},
				{Component: "pending", Op: OpLe, Value: Lit(rng.Intn(4))},
			},
			Set:     []Assign{{Component: "open", Set: ptrVal(Lit(rng.Intn(2)))}},
			Actions: []string{fmt.Sprintf("->edit%d", rng.Intn(1000))},
		})
	case 1: // remove a rule (keep at least one so CLOSE stays plausible)
		if len(d.Rules) > 2 {
			i := rng.Intn(len(d.Rules))
			d.Rules = append(d.Rules[:i], d.Rules[i+1:]...)
		}
	case 2: // sweep a guard threshold in one rule
		i := rng.Intn(len(d.Rules))
		r := d.Rules[i]
		r.When = append([]Cond(nil), r.When...)
		r.When = append(r.When, Cond{
			Component: "pending",
			Op:        []string{OpLt, OpLe, OpGt, OpGe, OpNe}[rng.Intn(5)],
			Value:     ParamValue(-rng.Intn(3)),
		})
		d.Rules[i] = r
	default: // documentation-only edit
		d.Describe = append(append([]DescribeRule(nil), d.Describe...), DescribeRule{
			When: []Cond{{Component: "open", Op: OpEq, Value: Lit(1)}},
			Text: fmt.Sprintf("open, pending {pending} (rev %d)", rng.Intn(1000)),
		})
	}
	return d
}

// TestDiffRegenerateDifferential is the randomized differential test: a
// chain of spec edits, each regenerated incrementally from the previous
// machine via Diff, must match from-scratch generation fingerprint for
// fingerprint at every step.
func TestDiffRegenerateDifferential(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			doc := editableDoc()
			compiled, err := Compile(doc)
			if err != nil {
				t.Fatalf("compile base: %v", err)
			}
			model, err := compiled.Model(0)
			if err != nil {
				t.Fatalf("model: %v", err)
			}
			cur, err := core.Generate(context.Background(), model)
			if err != nil {
				t.Fatalf("generate base: %v", err)
			}
			prevDoc := compiled.Doc()

			for step := 0; step < 6; step++ {
				nextDoc := randomEdit(rng, prevDoc)
				nextCompiled, err := Compile(nextDoc)
				if err != nil {
					// A random removal can orphan the document (e.g. no rules
					// left for a message is still valid, but guard against
					// future validation tightening): skip the edit.
					continue
				}
				delta := Diff(prevDoc, nextCompiled.Doc())
				nextModel, err := nextCompiled.Model(0)
				if err != nil {
					t.Fatalf("step %d: model: %v", step, err)
				}
				inc, err := core.Regenerate(context.Background(), cur, nextModel, delta)
				if err != nil {
					t.Fatalf("step %d: regenerate: %v", step, err)
				}
				fresh, err := core.Generate(context.Background(), nextModel)
				if err != nil {
					t.Fatalf("step %d: generate: %v", step, err)
				}
				if inc.Fingerprint() != fresh.Fingerprint() {
					t.Fatalf("step %d (delta %+v): incremental fingerprint %s != from-scratch %s",
						step, delta, inc.Fingerprint(), fresh.Fingerprint())
				}
				cur, prevDoc = inc, nextCompiled.Doc()
			}
		})
	}
}

func TestDiffClassification(t *testing.T) {
	base := mustCompileDoc(t, editableDoc())

	t.Run("identical docs yield empty delta", func(t *testing.T) {
		d := Diff(base, base)
		if d.Full || len(d.Messages) != 0 {
			t.Fatalf("delta = %+v, want empty", d)
		}
	})
	t.Run("component change is full", func(t *testing.T) {
		edited := editableDoc()
		edited.Components = append([]Component(nil), edited.Components...)
		edited.Components[0].Max = ParamValue(1)
		if d := Diff(base, mustCompileDoc(t, edited)); !d.Full {
			t.Fatalf("delta = %+v, want full", d)
		}
	})
	t.Run("message change is full", func(t *testing.T) {
		edited := editableDoc()
		edited.Messages = append(append([]string(nil), edited.Messages...), "EXTRA")
		if d := Diff(base, mustCompileDoc(t, edited)); !d.Full {
			t.Fatalf("delta = %+v, want full", d)
		}
	})
	t.Run("start change is full", func(t *testing.T) {
		edited := editableDoc()
		edited.Start = []Value{Lit(0), Lit(0), Lit(0)}
		if d := Diff(base, mustCompileDoc(t, edited)); !d.Full {
			t.Fatalf("delta = %+v, want full", d)
		}
	})
	t.Run("rule edit names only its message", func(t *testing.T) {
		edited := editableDoc()
		edited.Rules = append([]Rule(nil), edited.Rules...)
		edited.Rules[0].Actions = []string{"->req", "->log"}
		d := Diff(base, mustCompileDoc(t, edited))
		if d.Full || len(d.Messages) != 1 || d.Messages[0] != "REQ" {
			t.Fatalf("delta = %+v, want {Messages:[REQ]}", d)
		}
	})
	t.Run("rule reorder affects its message", func(t *testing.T) {
		edited := editableDoc()
		edited.Rules = append([]Rule(nil), edited.Rules...)
		extra := edited.Rules[1]
		extra.Set = nil
		edited.Rules = append(edited.Rules, extra) // second ACK rule
		d := Diff(base, mustCompileDoc(t, edited))
		if d.Full || len(d.Messages) != 1 || d.Messages[0] != "ACK" {
			t.Fatalf("delta = %+v, want {Messages:[ACK]}", d)
		}
	})
	t.Run("describe-only edit yields empty delta", func(t *testing.T) {
		edited := editableDoc()
		edited.Describe = []DescribeRule{{Text: "some doc"}}
		d := Diff(base, mustCompileDoc(t, edited))
		if d.Full || len(d.Messages) != 0 {
			t.Fatalf("delta = %+v, want empty", d)
		}
	})
	t.Run("metadata-only edit yields empty delta", func(t *testing.T) {
		edited := editableDoc()
		edited.Description = "renamed description"
		edited.SweepParams = []int{2, 3}
		d := Diff(base, mustCompileDoc(t, edited))
		if d.Full || len(d.Messages) != 0 {
			t.Fatalf("delta = %+v, want empty", d)
		}
	})
}

// mustCompileDoc compiles and returns the default-filled document.
func mustCompileDoc(t *testing.T, d Doc) Doc {
	t.Helper()
	c, err := Compile(d)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c.Doc()
}
