package spec

import (
	"encoding/json"
	"testing"

	"asagen/internal/core"
)

// FuzzCompile exercises the POST /v1/models input path: arbitrary bytes
// are decoded, validated and — when they survive both — instantiated and
// fingerprinted. The target asserts the layer's safety contract: no input
// may panic, every accepted document must compile deterministically, and
// its canonical JSON must re-compile to the same model identity.
//
// Run locally with:
//
//	go test ./internal/spec -run='^$' -fuzz=FuzzCompile -fuzztime=30s
func FuzzCompile(f *testing.F) {
	seed, err := json.Marshal(terminationDoc())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"m","components":[{"name":"c","kind":"int","max":{"param":true}}],` +
		`"messages":["GO"],"rules":[{"message":"GO","set":[{"component":"c","add":1}]}]}`))
	f.Add([]byte(`{"name":"m","default_param":-3}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"name":"m","components":[],"messages":[],"rules":[]} `))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ParseAndCompile(data)
		if err != nil {
			return // rejected input: the only requirement is not panicking
		}
		m, err := c.Model(0)
		if err != nil {
			return // e.g. a component max that is negative at the default
		}
		fp := core.FingerprintModel(m)

		// Accepted documents must survive a canonicalisation round-trip
		// with identical model identity (the re-registration path relies
		// on this to detect changed specs by fingerprint).
		canon, err := json.Marshal(c.Doc())
		if err != nil {
			t.Fatalf("canonicalise accepted doc: %v", err)
		}
		c2, err := ParseAndCompile(canon)
		if err != nil {
			t.Fatalf("canonical JSON of an accepted doc no longer compiles: %v\n%s", err, canon)
		}
		m2, err := c2.Model(0)
		if err != nil {
			t.Fatalf("canonical model rebuild: %v", err)
		}
		if fp2 := core.FingerprintModel(m2); fp2 != fp {
			t.Fatalf("fingerprint changed across canonicalisation: %s -> %s", fp.Short(), fp2.Short())
		}
	})
}
