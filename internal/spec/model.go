package spec

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"asagen/internal/core"
	"asagen/internal/models"
)

// Compiled is a validated specification ready to instantiate core.Model
// family members. It is immutable and safe for concurrent use.
type Compiled struct {
	doc Doc
	// rulesByMsg indexes the rules per message, preserving document order
	// (first matching rule fires).
	rulesByMsg map[string][]Rule
	// compIdx maps component names to their vector index.
	compIdx map[string]int
	// extra is the behavioural identity material folded into model
	// fingerprints, so two specs that share declared structure but differ
	// in rules never collide in the generation cache.
	extra []string
}

// newCompiled indexes a validated document. Compile is the only caller.
func newCompiled(d Doc) *Compiled {
	c := &Compiled{
		doc:        d,
		rulesByMsg: make(map[string][]Rule, len(d.Messages)),
		compIdx:    make(map[string]int, len(d.Components)),
	}
	for i, comp := range d.Components {
		c.compIdx[comp.Name] = i
	}
	for _, r := range d.Rules {
		c.rulesByMsg[r.Message] = append(c.rulesByMsg[r.Message], r)
	}
	// The canonical JSON of the whole document is deterministic (struct
	// field order) and covers every behaviour-bearing field.
	canon, err := json.Marshal(d)
	if err != nil {
		// A Doc is marshalable by construction; failure is a programming
		// error, not an input error.
		panic(fmt.Sprintf("spec: canonicalise %q: %v", d.Name, err))
	}
	c.extra = []string{"asagen/spec/v1", string(canon)}
	return c
}

// Doc returns a copy of the compiled document.
func (c *Compiled) Doc() Doc { return c.doc }

// JSON returns the canonical JSON encoding of the compiled document — the
// wire form of POST /v1/models and the fsmgen -spec file format.
func (c *Compiled) JSON() ([]byte, error) {
	return json.MarshalIndent(c.doc, "", "  ")
}

// Name returns the registry key the spec registers under.
func (c *Compiled) Name() string { return c.doc.Name }

// HasEFSM reports whether the spec declares the EFSM abstraction hints.
func (c *Compiled) HasEFSM() bool { return c.doc.Abstraction != nil }

// Model instantiates the family member for a parameter value (<= 0 selects
// the spec's default parameter).
func (c *Compiled) Model(param int) (core.Model, error) {
	if param <= 0 {
		param = c.doc.DefaultParam
	}
	if param < c.doc.MinParam {
		return nil, fmt.Errorf("spec: model %q: %s %d < %d", c.doc.Name, c.doc.ParamName, param, c.doc.MinParam)
	}
	for i, comp := range c.doc.Components {
		if comp.Kind == KindInt && comp.Max.Eval(param) < 0 {
			return nil, fmt.Errorf("spec: model %q: component %q max %s is negative at %s %d",
				c.doc.Name, comp.Name, comp.Max, c.doc.ParamName, param)
		}
		if i < len(c.doc.Start) {
			if v := c.doc.Start[i].Eval(param); v < 0 || v > c.maxOf(comp, param) {
				return nil, fmt.Errorf("spec: model %q: start value %s of component %q is outside [0, %d] at %s %d",
					c.doc.Name, c.doc.Start[i], comp.Name, c.maxOf(comp, param), c.doc.ParamName, param)
			}
		}
	}
	m := &specModel{c: c, param: param}
	m.compile()
	return m, nil
}

// maxOf returns the component's largest legal value at the parameter.
func (c *Compiled) maxOf(comp Component, param int) int {
	if comp.Kind == KindBool {
		return 1
	}
	return comp.Max.Eval(param)
}

// Entry returns the registry entry for the compiled spec, wiring the model
// builder and — when the spec declares abstraction hints — the EFSM
// generalisation into the same shape the hand-written adapters use.
func (c *Compiled) Entry() models.Entry {
	e := models.Entry{
		Name:         c.doc.Name,
		Description:  c.doc.Description,
		ParamName:    c.doc.ParamName,
		DefaultParam: c.doc.DefaultParam,
		SweepParams:  append([]int(nil), c.doc.SweepParams...),
		Vocabulary:   c.doc.Vocabulary,
		Build:        c.Model,
		Spec:         c.doc,
	}
	if c.HasEFSM() {
		e.EFSM = c.GenerateEFSM
	}
	return e
}

// GenerateEFSM generates the machine for the given parameter and coalesces
// it into the parameter-independent EFSM under the spec's abstraction
// hints, exactly as the hand-written GenerateEFSM builders do.
func (c *Compiled) GenerateEFSM(ctx context.Context, param int) (*core.EFSM, error) {
	if !c.HasEFSM() {
		return nil, fmt.Errorf("spec: model %q declares no abstraction", c.doc.Name)
	}
	m, err := c.Model(param)
	if err != nil {
		return nil, err
	}
	machine, err := core.Generate(ctx, m, core.WithoutDescriptions())
	if err != nil {
		return nil, fmt.Errorf("spec: generate machine for %q: %w", c.doc.Name, err)
	}
	return core.GeneralizeEFSM(machine, &specAbstraction{c: c, param: param})
}

// cGuard is one compiled guard condition: the component's allowed values
// as a packed bitset over its domain [0, max]. Evaluating a guard is a
// single bit test, regardless of the comparison operator it compiled from.
type cGuard struct {
	idx   int
	words []uint64
}

// holds reports whether the guard admits the component value.
func (g *cGuard) holds(val int) bool {
	return g.words[uint(val)>>6]&(1<<(uint(val)&63)) != 0
}

// cAssign is one compiled component update with the parameter resolved.
type cAssign struct {
	idx int
	set bool
	val int // the overwrite value when set, the delta otherwise
}

// cRule is one rule compiled for a concrete parameter: domain bitsets for
// the guards, resolved assignments, and the action/annotation lists copied
// once (empty lists normalised to nil) so Apply returns them without
// per-call cloning.
type cRule struct {
	guards      []cGuard
	sets        []cAssign
	actions     []string
	annotations []string
	finish      bool
}

// specModel is one family member of a compiled spec: core.Model plus the
// Fingerprinter extra identifying the rule set. The rule set is compiled
// against the concrete parameter at construction, so Apply — the
// exploration's inner loop — performs only bit tests and integer updates.
type specModel struct {
	c     *Compiled
	param int
	// maxes[i] is component i's largest legal value at the parameter.
	maxes []int
	// rules holds the compiled rules per message, in document order.
	rules map[string][]cRule
}

// compile resolves every parameter-affine value and precomputes the guard
// bitsets by evaluating each condition over its component's full domain.
// Tautological guards (true for every domain value at this parameter) are
// dropped entirely.
func (m *specModel) compile() {
	d := &m.c.doc
	m.maxes = make([]int, len(d.Components))
	for i, comp := range d.Components {
		m.maxes[i] = m.c.maxOf(comp, m.param)
	}
	m.rules = make(map[string][]cRule, len(m.c.rulesByMsg))
	for msg, rs := range m.c.rulesByMsg {
		crs := make([]cRule, 0, len(rs))
		for _, r := range rs {
			cr := cRule{finish: r.Finish}
			for _, cond := range r.When {
				idx := m.c.compIdx[cond.Component]
				max := m.maxes[idx]
				want := cond.Value.Eval(m.param)
				words := make([]uint64, max>>6+1)
				all := true
				for val := 0; val <= max; val++ {
					if condHolds(cond.Op, val, want) {
						words[uint(val)>>6] |= 1 << (uint(val) & 63)
					} else {
						all = false
					}
				}
				if all {
					continue
				}
				cr.guards = append(cr.guards, cGuard{idx: idx, words: words})
			}
			for _, a := range r.Set {
				ca := cAssign{idx: m.c.compIdx[a.Component]}
				if a.Set != nil {
					ca.set = true
					ca.val = a.Set.Eval(m.param)
				} else {
					ca.val = a.Add
				}
				cr.sets = append(cr.sets, ca)
			}
			if len(r.Actions) > 0 {
				cr.actions = append([]string(nil), r.Actions...)
			}
			if len(r.Annotations) > 0 {
				cr.annotations = append([]string(nil), r.Annotations...)
			}
			crs = append(crs, cr)
		}
		m.rules[msg] = crs
	}
}

var (
	_ core.Model         = (*specModel)(nil)
	_ core.Fingerprinter = (*specModel)(nil)
)

// Name implements core.Model.
func (m *specModel) Name() string { return m.c.doc.ModelName }

// Parameter implements core.Model.
func (m *specModel) Parameter() int { return m.param }

// Components implements core.Model.
func (m *specModel) Components() []core.StateComponent {
	out := make([]core.StateComponent, len(m.c.doc.Components))
	for i, comp := range m.c.doc.Components {
		if comp.Kind == KindBool {
			out[i] = core.NewBoolComponent(comp.Name)
		} else {
			out[i] = core.NewIntComponent(comp.Name, comp.Max.Eval(m.param))
		}
	}
	return out
}

// Messages implements core.Model.
func (m *specModel) Messages() []string {
	return append([]string(nil), m.c.doc.Messages...)
}

// Start implements core.Model.
func (m *specModel) Start() core.Vector {
	v := make(core.Vector, len(m.c.doc.Components))
	for i, val := range m.c.doc.Start {
		v[i] = val.Eval(m.param)
	}
	return v
}

// holds reports whether every condition is satisfied in state v.
func (m *specModel) holds(v core.Vector, conds []Cond) bool {
	for _, c := range conds {
		idx := m.c.compIdx[c.Component]
		if !condHolds(c.Op, v[idx], c.Value.Eval(m.param)) {
			return false
		}
	}
	return true
}

// Apply implements core.Model: the message's compiled rules are tried in
// document order and the first rule whose guard bitsets all admit the
// state fires. A firing rule whose effect would drive any component
// outside its declared domain makes the message not applicable in that
// state instead — the implicit range guard that keeps every expressible
// spec a total, well-formed model (the paper's InvalidStateException
// path, Fig. 10): authors may write an unguarded counter increment and
// the machine simply stops reacting at the bound.
//
// The returned action and annotation slices alias the compiled rule and
// must not be mutated; they are immutable by construction.
func (m *specModel) Apply(v core.Vector, msg string) (core.Effect, bool) {
rules:
	for ri := range m.rules[msg] {
		r := &m.rules[msg][ri]
		for gi := range r.guards {
			if !r.guards[gi].holds(v[r.guards[gi].idx]) {
				continue rules
			}
		}
		s := v.Clone()
		for _, a := range r.sets {
			if a.set {
				s[a.idx] = a.val
			} else {
				s[a.idx] += a.val
			}
			if s[a.idx] < 0 || s[a.idx] > m.maxes[a.idx] {
				return core.Effect{}, false
			}
		}
		return core.Effect{
			Target:      s,
			Actions:     r.actions,
			Annotations: r.annotations,
			Finished:    r.finish,
		}, true
	}
	return core.Effect{}, false
}

// DescribeState implements core.Model: every matching describe rule
// contributes one line, with "{param}" and "{<component>}" placeholders
// substituted.
func (m *specModel) DescribeState(v core.Vector) []string {
	var lines []string
	for _, r := range m.c.doc.Describe {
		if !m.holds(v, r.When) {
			continue
		}
		lines = append(lines, m.expand(r.Text, v))
	}
	return lines
}

// expand substitutes the documentation placeholders in text.
func (m *specModel) expand(text string, v core.Vector) string {
	if !strings.Contains(text, "{") {
		return text
	}
	text = strings.ReplaceAll(text, "{param}", strconv.Itoa(m.param))
	for name, idx := range m.c.compIdx {
		key := "{" + name + "}"
		if strings.Contains(text, key) {
			text = strings.ReplaceAll(text, key, strconv.Itoa(v[idx]))
		}
	}
	return text
}

// FingerprintExtra implements core.Fingerprinter: the canonical document
// JSON, so behaviourally different specs never collide on one cache entry
// even when their declared structure matches.
func (m *specModel) FingerprintExtra() []string { return m.c.extra }

// specAbstraction adapts the spec's abstraction hints to
// core.EFSMAbstraction.
type specAbstraction struct {
	c     *Compiled
	param int
}

var _ core.EFSMAbstraction = (*specAbstraction)(nil)

// StateLabel implements core.EFSMAbstraction: first matching label rule
// wins; validation guarantees the final rule is unconditional.
func (a *specAbstraction) StateLabel(v core.Vector) string {
	for _, l := range a.c.doc.Abstraction.Labels {
		ok := true
		for _, cond := range l.When {
			idx := a.c.compIdx[cond.Component]
			if !condHolds(cond.Op, v[idx], cond.Value.Eval(a.param)) {
				ok = false
				break
			}
		}
		if ok {
			return l.Label
		}
	}
	return "UNLABELLED" // unreachable: the final rule is unconditional
}

// GuardComponent implements core.EFSMAbstraction.
func (a *specAbstraction) GuardComponent(msg string) int {
	for _, g := range a.c.doc.Abstraction.Guards {
		if g.Message == msg {
			return a.c.compIdx[g.Component]
		}
	}
	return -1
}

// VarOps implements core.EFSMAbstraction.
func (a *specAbstraction) VarOps(msg string) []core.VarOp {
	var ops []core.VarOp
	for _, op := range a.c.doc.Abstraction.Ops {
		if op.Message == msg {
			ops = append(ops, core.VarOp{Variable: op.Component, Delta: op.Delta})
		}
	}
	return ops
}

// Symbol implements core.EFSMAbstraction: the first symbol rule whose
// value matches wins; unmatched values keep the literal rendering.
func (a *specAbstraction) Symbol(component, value int) string {
	for _, s := range a.c.doc.Abstraction.Symbols {
		if s.Value.Eval(a.param) == value {
			return s.Text
		}
	}
	return ""
}
