package spec

import (
	"bytes"
	"encoding/json"

	"asagen/internal/core"
)

// Diff compares an old and a new model document and returns the
// core.ModelDelta describing how a machine generated from old must be
// updated to obtain the machine for new. Both documents should be in
// compiled (default-filled) form, i.e. taken from Compiled.Doc.
//
// The comparison is syntactic and conservative:
//
//   - Any change to the declared structure — name, model name, components,
//     messages or start vector — returns a full delta: the state space
//     itself may differ, so nothing from the old exploration can be
//     trusted.
//   - Otherwise the transition rules are compared message by message
//     (document order preserved, since the first matching rule fires); a
//     message whose rule list differs in any way — a rule added, removed,
//     reordered or edited, including a swept parameter value inside a
//     guard or assignment — is listed as affected.
//   - Changes confined to documentation, describe rules, abstraction
//     hints or parameter metadata yield an empty non-full delta: the
//     transition structure is intact and only the machine's derived
//     decoration needs rebuilding.
//
// The result feeds core.Regenerate, which re-explores only the frontier
// region reachable through the affected messages.
func Diff(oldDoc, newDoc Doc) core.ModelDelta {
	if oldDoc.Name != newDoc.Name ||
		oldDoc.ModelName != newDoc.ModelName ||
		!jsonEqual(oldDoc.Components, newDoc.Components) ||
		!jsonEqual(oldDoc.Messages, newDoc.Messages) ||
		!jsonEqual(oldDoc.Start, newDoc.Start) {
		return core.ModelDelta{Full: true}
	}

	oldRules := rulesByMessage(oldDoc)
	newRules := rulesByMessage(newDoc)
	var affected []string
	for _, msg := range newDoc.Messages {
		if !jsonEqual(oldRules[msg], newRules[msg]) {
			affected = append(affected, msg)
		}
	}
	return core.ModelDelta{Messages: affected}
}

// rulesByMessage groups the document's rules per message in document
// order, mirroring the compiled rule index.
func rulesByMessage(d Doc) map[string][]Rule {
	out := make(map[string][]Rule, len(d.Messages))
	for _, r := range d.Rules {
		out[r.Message] = append(out[r.Message], r)
	}
	return out
}

// jsonEqual compares two values by canonical JSON encoding. Doc and its
// parts marshal deterministically (struct field order), so byte equality
// is semantic equality of the declared content.
func jsonEqual(a, b any) bool {
	ab, errA := json.Marshal(a)
	bb, errB := json.Marshal(b)
	return errA == nil && errB == nil && bytes.Equal(ab, bb)
}
