package spec

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"asagen/internal/core"
	"asagen/internal/termination"
)

// terminationDoc is the declarative port of the hand-written termination
// adapter (internal/termination): the proof that the spec language can
// express an existing scenario exactly. The root-package test pins
// byte-identical artefacts; here the machine fingerprints are compared.
func terminationDoc() Doc {
	return Doc{
		Name:         "termination-spec",
		ModelName:    "termination-detection",
		Description:  "declarative port of the termination-detection adapter",
		ParamName:    "fan-out bound",
		DefaultParam: 4,
		SweepParams:  []int{1, 2, 4, 8},
		Components: []Component{
			{Name: "active", Kind: KindBool},
			{Name: "outstanding", Kind: KindInt, Max: ParamValue(0)},
		},
		Messages: []string{"TASK", "SPAWN", "CHILD_DONE", "IDLE"},
		Rules: []Rule{
			{
				Message:     "TASK",
				When:        []Cond{{Component: "active", Op: OpEq, Value: Lit(0)}},
				Set:         []Assign{{Component: "active", Set: ptr(Lit(1))}},
				Annotations: []string{"Activated by an incoming task."},
			},
			{
				Message: "SPAWN",
				When: []Cond{
					{Component: "active", Op: OpEq, Value: Lit(1)},
					{Component: "outstanding", Op: OpLt, Value: ParamValue(0)},
				},
				Set:         []Assign{{Component: "outstanding", Add: 1}},
				Actions:     []string{"->task"},
				Annotations: []string{"Delegate a child task and count it outstanding."},
			},
			{
				Message: "CHILD_DONE",
				When: []Cond{
					{Component: "outstanding", Op: OpEq, Value: Lit(1)},
					{Component: "active", Op: OpEq, Value: Lit(0)},
				},
				Set:     []Assign{{Component: "outstanding", Add: -1}},
				Actions: []string{"->done"},
				Annotations: []string{
					"One delegated task completed.",
					"Idle with no outstanding children: report completion.",
				},
				Finish: true,
			},
			{
				Message:     "CHILD_DONE",
				When:        []Cond{{Component: "outstanding", Op: OpGe, Value: Lit(1)}},
				Set:         []Assign{{Component: "outstanding", Add: -1}},
				Annotations: []string{"One delegated task completed."},
			},
			{
				Message: "IDLE",
				When: []Cond{
					{Component: "active", Op: OpEq, Value: Lit(1)},
					{Component: "outstanding", Op: OpEq, Value: Lit(0)},
				},
				Set:     []Assign{{Component: "active", Set: ptr(Lit(0))}},
				Actions: []string{"->done"},
				Annotations: []string{
					"Local work finished.",
					"No outstanding children: report completion.",
				},
				Finish: true,
			},
			{
				Message:     "IDLE",
				When:        []Cond{{Component: "active", Op: OpEq, Value: Lit(1)}},
				Set:         []Assign{{Component: "active", Set: ptr(Lit(0))}},
				Annotations: []string{"Local work finished."},
			},
		},
		Describe: []DescribeRule{
			{When: []Cond{{Component: "active", Op: OpEq, Value: Lit(1)}}, Text: "Process is active."},
			{When: []Cond{{Component: "active", Op: OpEq, Value: Lit(0)}}, Text: "Process is idle."},
			{Text: "{outstanding} delegated tasks outstanding (bound {param})."},
		},
		Abstraction: &Abstraction{
			Labels: []LabelRule{
				{When: []Cond{{Component: "active", Op: OpEq, Value: Lit(1)}}, Label: "ACTIVE"},
				{Label: "IDLE_WAITING"},
			},
			Guards: []GuardRule{
				{Message: "SPAWN", Component: "outstanding"},
				{Message: "CHILD_DONE", Component: "outstanding"},
				{Message: "IDLE", Component: "outstanding"},
			},
			Ops: []VarOpRule{
				{Message: "SPAWN", Component: "outstanding", Delta: 1},
				{Message: "CHILD_DONE", Component: "outstanding", Delta: -1},
			},
			Symbols: []SymbolRule{
				{Value: Lit(0), Text: "0"},
				{Value: Lit(1), Text: "1"},
				{Value: ParamValue(0), Text: "k"},
				{Value: ParamValue(-1), Text: "k-1"},
			},
		},
	}
}

func ptr(v Value) *Value { return &v }

// TestCompileTerminationEquivalence: the spec-built machine is
// fingerprint-identical (states, transitions, annotations, everything the
// renderers consume) to the hand-written adapter's machine across the
// sweep parameters.
func TestCompileTerminationEquivalence(t *testing.T) {
	c, err := Compile(terminationDoc())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 4, 8} {
		specModel, err := c.Model(k)
		if err != nil {
			t.Fatal(err)
		}
		handModel, err := termination.NewModel(k)
		if err != nil {
			t.Fatal(err)
		}
		specMachine, err := core.Generate(context.Background(), specModel)
		if err != nil {
			t.Fatalf("k=%d: generate spec machine: %v", k, err)
		}
		handMachine, err := core.Generate(context.Background(), handModel)
		if err != nil {
			t.Fatalf("k=%d: generate adapter machine: %v", k, err)
		}
		if got, want := specMachine.Fingerprint(), handMachine.Fingerprint(); got != want {
			t.Errorf("k=%d: machine fingerprints differ: spec %s, adapter %s", k, got.Short(), want.Short())
		}
	}
}

// TestCompileTerminationEFSM: the spec's abstraction hints generalise to
// the same EFSM the hand-written abstraction produces.
func TestCompileTerminationEFSM(t *testing.T) {
	c, err := Compile(terminationDoc())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 8} {
		specEFSM, err := c.GenerateEFSM(context.Background(), k)
		if err != nil {
			t.Fatalf("k=%d: spec EFSM: %v", k, err)
		}
		handEFSM, err := termination.GenerateEFSM(context.Background(), k)
		if err != nil {
			t.Fatalf("k=%d: adapter EFSM: %v", k, err)
		}
		if got, want := specEFSM.StateNames(), handEFSM.StateNames(); !equalStrings(got, want) {
			t.Errorf("k=%d: state names = %v, want %v", k, got, want)
		}
		if got, want := specEFSM.TransitionCount(), handEFSM.TransitionCount(); got != want {
			t.Errorf("k=%d: transitions = %d, want %d", k, got, want)
		}
		if got, want := specEFSM.Variables, handEFSM.Variables; !equalStrings(got, want) {
			t.Errorf("k=%d: variables = %v, want %v", k, got, want)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCompileDiagnostics: every problem is reported with its document
// path, not just the first one.
func TestCompileDiagnostics(t *testing.T) {
	doc := Doc{
		Name: "9bad name",
		Components: []Component{
			{Name: "a", Kind: "bool"},
			{Name: "a", Kind: "float"},
		},
		Messages: []string{"GO", "GO", " "},
		Rules: []Rule{
			{Message: "NOPE", When: []Cond{{Component: "zz", Op: "~=", Value: Lit(0)}}},
			{Message: "GO", Set: []Assign{{Component: "a"}}},
		},
		Abstraction: &Abstraction{
			Labels: []LabelRule{{When: []Cond{{Component: "a", Op: OpEq, Value: Lit(1)}}, Label: "X"}},
			Ops:    []VarOpRule{{Message: "GO", Component: "a", Delta: 0}},
		},
	}
	_, err := Compile(doc)
	var serr *Error
	if !errors.As(err, &serr) {
		t.Fatalf("Compile error = %T (%v), want *Error", err, err)
	}
	wantPaths := []string{
		"name",
		"components[1].name",
		"messages[1]",
		"messages[2]",
		"rules[0].message",
		"rules[0].when[0].component",
		"rules[0].when[0].op",
		"rules[1].set[0]",
		"abstraction.labels",
		"abstraction.ops[0].delta",
	}
	got := map[string]bool{}
	for _, d := range serr.Diagnostics {
		got[d.Path] = true
	}
	for _, p := range wantPaths {
		if !got[p] {
			t.Errorf("missing diagnostic at %s; have %v", p, serr.Diagnostics)
		}
	}
	if !strings.Contains(err.Error(), "9bad name") {
		t.Errorf("error message does not name the spec: %v", err)
	}
}

// TestParseStrict: unknown fields and trailing data are rejected, and a
// valid doc round-trips through JSON to an identical compiled model.
func TestParseStrict(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x","typo_field":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := Parse([]byte(`{"name":"x"} trailing`)); err == nil {
		t.Error("trailing data accepted")
	}

	doc := terminationDoc()
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ParseAndCompile(data)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := c1.Model(0)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := c2.Model(0)
	if err != nil {
		t.Fatal(err)
	}
	if fp1, fp2 := core.FingerprintModel(m1), core.FingerprintModel(m2); fp1 != fp2 {
		t.Errorf("JSON round-trip changed the model fingerprint: %s != %s", fp1.Short(), fp2.Short())
	}
}

// TestModelParameterValidation: parameters below min_param and int
// components whose affine max goes negative are rejected at build time.
func TestModelParameterValidation(t *testing.T) {
	doc := terminationDoc()
	doc.MinParam = 2
	doc.DefaultParam = 4
	doc.SweepParams = []int{2, 4, 8}
	c, err := Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Model(1); err == nil {
		t.Error("parameter below min_param accepted")
	}
	if m, err := c.Model(0); err != nil || m.Parameter() != 4 {
		t.Errorf("Model(0) = (%v, %v), want default parameter 4", m, err)
	}

	neg := Doc{
		Name:       "negmax",
		Components: []Component{{Name: "c", Kind: KindInt, Max: ParamValue(-10)}},
		Messages:   []string{"GO"},
		Rules:      []Rule{{Message: "GO", Set: []Assign{{Component: "c", Add: 1}}}},
		MinParam:   1, DefaultParam: 20,
	}
	nc, err := Compile(neg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Model(5); err == nil {
		t.Error("negative component max accepted")
	}
	if _, err := nc.Model(20); err != nil {
		t.Errorf("Model(20): %v", err)
	}
}

// TestImplicitRangeGuard: a rule whose effect would drive a component
// outside its declared domain makes the message not applicable instead
// of producing an invalid machine — an unguarded counter increment
// saturates at the bound, and the registered spec stays generatable.
func TestImplicitRangeGuard(t *testing.T) {
	doc := Doc{
		Name: "unbounded-counter",
		Components: []Component{
			{Name: "c", Kind: KindInt, Max: ParamValue(0)},
		},
		Messages:     []string{"GO", "BACK"},
		DefaultParam: 2,
		Rules: []Rule{
			{Message: "GO", Set: []Assign{{Component: "c", Add: 1}}},
			{Message: "BACK", Set: []Assign{{Component: "c", Add: -1}}},
		},
	}
	c, err := Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Model(2)
	if err != nil {
		t.Fatal(err)
	}
	machine, err := core.Generate(context.Background(), m)
	if err != nil {
		t.Fatalf("unguarded increments must still generate: %v", err)
	}
	// States 0..2; GO saturates at 2, BACK at 0.
	if got := len(machine.States); got != 3 {
		t.Errorf("states = %d, want 3", got)
	}
	if _, ok := m.Apply(core.Vector{2}, "GO"); ok {
		t.Error("GO applicable at the upper bound")
	}
	if _, ok := m.Apply(core.Vector{0}, "BACK"); ok {
		t.Error("BACK applicable at the lower bound")
	}
	if eff, ok := m.Apply(core.Vector{1}, "GO"); !ok || eff.Target[0] != 2 {
		t.Errorf("GO at 1 = (%v, %v), want target 2", eff, ok)
	}
}

// TestStartVectorValidation: out-of-range start values are compile-time
// diagnostics at the default parameter and build-time errors elsewhere.
func TestStartVectorValidation(t *testing.T) {
	doc := terminationDoc()
	doc.Start = []Value{Lit(2), Lit(1)} // active is bool: max 1
	_, err := Compile(doc)
	var serr *Error
	if !errors.As(err, &serr) {
		t.Fatalf("Compile error = %v, want *Error", err)
	}
	found := false
	for _, d := range serr.Diagnostics {
		if d.Path == "start[0]" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing start[0] diagnostic in %v", serr.Diagnostics)
	}

	// Parameter-affine start values can go out of range only for some
	// parameters; that surfaces at Model build time.
	doc = terminationDoc()
	doc.Start = []Value{Lit(0), ParamValue(-2)} // negative for k < 2
	c, err := Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Model(1); err == nil {
		t.Error("negative start value accepted at k=1")
	}
	if _, err := c.Model(4); err != nil {
		t.Errorf("Model(4): %v", err)
	}
}

// TestDescribeExpansion: placeholder substitution covers {param} and
// component names.
func TestDescribeExpansion(t *testing.T) {
	c, err := Compile(terminationDoc())
	if err != nil {
		t.Fatal(err)
	}
	m, err := c.Model(4)
	if err != nil {
		t.Fatal(err)
	}
	lines := m.DescribeState(core.Vector{1, 3})
	want := []string{"Process is active.", "3 delegated tasks outstanding (bound 4)."}
	if !equalStrings(lines, want) {
		t.Errorf("DescribeState = %v, want %v", lines, want)
	}
}

// TestFingerprintExtraDistinguishesRules: two specs with identical
// declared structure but different transition logic must not collide on
// one generation-cache key.
func TestFingerprintExtraDistinguishesRules(t *testing.T) {
	a := terminationDoc()
	b := terminationDoc()
	b.Rules[0].Annotations = []string{"A different reaction narrative."}
	ca, err := Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Compile(b)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := ca.Model(4)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := cb.Model(4)
	if err != nil {
		t.Fatal(err)
	}
	if core.FingerprintModel(ma) == core.FingerprintModel(mb) {
		t.Error("specs with different rules share a model fingerprint")
	}
}

// TestEntryShape: the registry entry carries the spec metadata and the
// EFSM builder only when abstraction hints exist.
func TestEntryShape(t *testing.T) {
	c, err := Compile(terminationDoc())
	if err != nil {
		t.Fatal(err)
	}
	e := c.Entry()
	if e.Name != "termination-spec" || e.ParamName != "fan-out bound" || e.DefaultParam != 4 {
		t.Errorf("entry = %+v", e)
	}
	if e.EFSM == nil {
		t.Error("entry lost the EFSM builder")
	}

	doc := terminationDoc()
	doc.Abstraction = nil
	c2, err := Compile(doc)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Entry().EFSM != nil {
		t.Error("entry has an EFSM builder without abstraction hints")
	}
}
