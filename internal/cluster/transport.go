package cluster

import (
	"time"

	"asagen/internal/simnet"
)

// SimClock drives the protocol on simnet virtual time.
type SimClock struct{ Net *simnet.Network }

// Now implements Clock.
func (c SimClock) Now() time.Duration { return c.Net.Now() }

// After implements Clock.
func (c SimClock) After(d time.Duration, fn func()) { c.Net.After(d, fn) }

// SimTransport carries cluster payloads as simnet messages; node URLs
// double as simnet node IDs. Delivery is always deferred to the event
// queue, so sends made while holding node locks cannot re-enter.
type SimTransport struct {
	Net  *simnet.Network
	Self simnet.NodeID
}

// Send implements Transport.
func (t SimTransport) Send(toURL, kind string, payload []byte) {
	t.Net.Send(simnet.Message{From: t.Self, To: simnet.NodeID(toURL), Type: kind, Payload: payload})
}

// BindSimnet registers node on net under its URL: delivered cluster
// messages are handed to Node.Handle, and gossip acks are sent back as
// further simnet messages.
func BindSimnet(net *simnet.Network, node *Node) error {
	self := simnet.NodeID(node.cfg.URL)
	return net.AddNode(self, simnet.HandlerFunc(func(nw *simnet.Network, msg simnet.Message) {
		payload, _ := msg.Payload.([]byte)
		reply, err := node.Handle(msg.Type, payload, string(msg.From))
		if err != nil {
			node.record(nw.Now(), "handle-error", err.Error())
			return
		}
		if reply != nil {
			nw.Send(simnet.Message{From: self, To: msg.From, Type: KindGossipAck, Payload: reply})
		}
	}))
}
