package cluster

import "fmt"

// RingEntry is one ring position in a status report.
type RingEntry struct {
	ID string `json:"id"`
	// Position is the member's hex location on the 2^64 circle.
	Position string `json:"position"`
}

// OracleReport summarises the routing oracle for a status report.
type OracleReport struct {
	State          string   `json:"state"`
	Deliveries     int      `json:"deliveries"`
	ViolationCount int      `json:"violation_count"`
	Violations     []string `json:"violations,omitempty"`
}

// Report is the /v1/cluster status document.
type Report struct {
	Enabled  bool         `json:"enabled"`
	ID       string       `json:"id"`
	URL      string       `json:"url"`
	Replicas int          `json:"replicas"`
	Members  []Member     `json:"members"`
	Ring     []RingEntry  `json:"ring"`
	Oracle   OracleReport `json:"oracle"`
	Stats    Stats        `json:"stats"`
	Events   int          `json:"events"`
	Recent   []string     `json:"recent_events,omitempty"`
}

// Status snapshots the node for the /v1/cluster route.
func (n *Node) Status() Report {
	n.mu.Lock()
	defer n.mu.Unlock()
	rep := Report{
		Enabled:  true,
		ID:       n.cfg.ID,
		URL:      n.cfg.URL,
		Replicas: n.cfg.Replicas,
		Stats:    n.stats,
		Events:   n.cfg.Log.Total(),
		Recent:   n.cfg.Log.Recent(16),
	}
	for _, id := range sortedMemberIDs(n.members) {
		rep.Members = append(rep.Members, n.members[id].Member)
	}
	for i := 0; i < n.ring.size(); i++ {
		id, _ := n.ring.at(i)
		rep.Ring = append(rep.Ring, RingEntry{ID: id, Position: fmt.Sprintf("%016x", n.ring.hashes[i])})
	}
	rep.Oracle = OracleReport{
		State:          n.oracle.StateName(),
		Deliveries:     n.oracle.Deliveries(),
		ViolationCount: len(n.oracle.Violations()),
		Violations:     append([]string(nil), n.oracle.Violations()...),
	}
	return rep
}
