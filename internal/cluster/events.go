package cluster

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Log is the cluster event log: an append-only record of membership
// transitions, ring rebuilds, oracle deliveries and artifact propagation.
// Entries are stamped with the protocol clock, never the wall clock, so
// under simnet the same seed produces a byte-identical log — the
// determinism contract the integration test asserts.
//
// A Log may be shared by every node of an in-process cluster (the
// integration tests do, yielding one interleaved history) or owned by a
// single live node.
type Log struct {
	mu      sync.Mutex
	entries []string
	total   int
	// limit bounds retained entries (oldest dropped first); 0 keeps all.
	limit int
}

// NewLog returns an unbounded log.
func NewLog() *Log { return &Log{} }

// NewBoundedLog returns a log retaining only the most recent limit
// entries, for long-running servers where the full history is unbounded.
func NewBoundedLog(limit int) *Log { return &Log{limit: limit} }

// Record appends one event. The timestamp is the caller's protocol
// clock; node is the recording node's ID; kind is a stable event class;
// detail is a deterministic, preformatted description.
func (l *Log) Record(now time.Duration, node, kind, detail string) {
	if l == nil {
		return
	}
	line := fmt.Sprintf("t=%012d node=%s %s %s", now.Microseconds(), node, kind, detail)
	l.mu.Lock()
	l.entries = append(l.entries, line)
	l.total++
	if l.limit > 0 && len(l.entries) > l.limit {
		l.entries = append(l.entries[:0], l.entries[len(l.entries)-l.limit:]...)
	}
	l.mu.Unlock()
}

// Bytes returns the retained log as newline-terminated text.
func (l *Log) Bytes() []byte {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) == 0 {
		return nil
	}
	return []byte(strings.Join(l.entries, "\n") + "\n")
}

// Recent returns up to n most recent entries, oldest first.
func (l *Log) Recent(n int) []string {
	if l == nil || n <= 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > len(l.entries) {
		n = len(l.entries)
	}
	out := make([]string, n)
	copy(out, l.entries[len(l.entries)-n:])
	return out
}

// Total returns the number of events recorded over the log's lifetime,
// including entries a bounded log has since dropped.
func (l *Log) Total() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
