package cluster

import (
	"bytes"
	"io"
	"net/http"
	"time"
)

// HeaderClusterKind carries the protocol message kind on HTTP sends, so
// one gossip route serves both pushes (which warrant an ack body) and
// acks (which do not).
const HeaderClusterKind = "X-Asagen-Cluster-Kind"

// RealClock drives the protocol on the wall clock, measured from
// process start so timestamps stay monotonic and compact.
type RealClock struct{ start time.Time }

// NewRealClock returns a clock whose epoch is now.
func NewRealClock() *RealClock { return &RealClock{start: time.Now()} }

// Now implements Clock.
func (c *RealClock) Now() time.Duration { return time.Since(c.start) }

// After implements Clock.
func (c *RealClock) After(d time.Duration, fn func()) { time.AfterFunc(d, fn) }

// HTTPTransport carries cluster payloads as POSTs to the peer's
// /v1/cluster routes. Sends run on their own goroutines — gossip is
// loss-tolerant, so failures are dropped and repaired by the next round.
type HTTPTransport struct {
	client *http.Client
	node   *Node
}

// NewHTTPTransport returns a transport using client (nil for a
// 5-second-timeout default).
func NewHTTPTransport(client *http.Client) *HTTPTransport {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return &HTTPTransport{client: client}
}

// Bind attaches the local node, the destination for push-pull gossip
// acks carried on response bodies. Must be called before the node
// starts.
func (t *HTTPTransport) Bind(n *Node) { t.node = n }

// Send implements Transport.
func (t *HTTPTransport) Send(toURL, kind string, payload []byte) {
	go t.post(toURL, kind, payload)
}

func (t *HTTPTransport) post(toURL, kind string, payload []byte) {
	path := "/v1/cluster/gossip"
	if kind == KindPropagate {
		path = "/v1/cluster/artifacts"
	}
	req, err := http.NewRequest(http.MethodPost, toURL+path, bytes.NewReader(payload))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderClusterKind, kind)
	resp, err := t.client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if kind == KindGossip && resp.StatusCode == http.StatusOK && t.node != nil {
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err == nil && len(body) > 0 {
			// The response body is the peer's view: merge it like any
			// other ack (push-pull anti-entropy halves convergence time).
			t.node.Handle(KindGossipAck, body, toURL)
		}
	}
}
