package cluster

import (
	"context"
	"fmt"

	"asagen/internal/chord"
	"asagen/internal/core"
	"asagen/internal/models"
	"asagen/internal/runtime"
)

// Oracle validates membership churn against the registry's generated
// chord-membership machine. The cluster node's observed routing state —
// how many of its next s successors are live, whether a predecessor
// exists — is replayed delta-style through a runtime.Instance, exactly as
// the chord model's differential tests replay the hand-written Ring: each
// observation becomes a sequence of STABILIZE / NOTIFY / SUCC_FAIL /
// PRED_FAIL deliveries. A delivery the machine rejects means the node's
// membership view moved in a way the generated protocol model forbids;
// those are counted as violations and gated to zero in CI.
type Oracle struct {
	inst *runtime.Instance
	s    int

	// tracked machine-side view, advanced one delivery at a time.
	joined bool
	succ   int
	pred   bool

	deliveries int
	violations []string
}

// NewOracle generates the chord-membership machine for successor-list
// length s from the model registry and wraps it in an interpreter.
func NewOracle(s int) (*Oracle, error) {
	entry, err := models.Default().Get("chord")
	if err != nil {
		return nil, fmt.Errorf("cluster: routing oracle model: %w", err)
	}
	model, err := entry.Model(s)
	if err != nil {
		return nil, fmt.Errorf("cluster: routing oracle model: %w", err)
	}
	machine, err := core.Generate(context.Background(), model, core.WithoutDescriptions())
	if err != nil {
		return nil, fmt.Errorf("cluster: generate routing oracle: %w", err)
	}
	inst, err := runtime.New(machine, runtime.NopHandler{})
	if err != nil {
		return nil, fmt.Errorf("cluster: routing oracle interpreter: %w", err)
	}
	return &Oracle{inst: inst, s: s}, nil
}

// deliver pushes one event through the machine, recording a violation if
// the generated protocol rejects it.
func (o *Oracle) deliver(msg string) {
	o.deliveries++
	if _, err := o.inst.Deliver(msg); err != nil {
		o.violations = append(o.violations, fmt.Sprintf("%s rejected in %s: %v", msg, o.inst.StateName(), err))
	}
}

// Join bootstraps the machine into the overlay.
func (o *Oracle) Join() {
	o.deliver(chord.EvJoin)
	o.joined = true
}

// Leave departs the overlay; the machine finishes and further
// observations are ignored.
func (o *Oracle) Leave() {
	o.deliver(chord.EvLeave)
	o.joined = false
}

// Observe reconciles the machine with the node's current view: succ live
// successor-list entries (already capped at s by the caller) and whether
// a predecessor exists. Losses are delivered before gains, mirroring the
// failure-detection-then-stabilisation order of a maintenance round.
func (o *Oracle) Observe(succ int, pred bool) {
	if !o.joined || o.inst.Finished() {
		return
	}
	for o.succ > succ {
		o.deliver(chord.EvSuccFail)
		o.succ--
	}
	if o.pred && !pred {
		o.deliver(chord.EvPredFail)
		o.pred = false
	}
	for o.succ < succ {
		o.deliver(chord.EvStabilize)
		o.succ++
	}
	if !o.pred && pred {
		o.deliver(chord.EvNotify)
		o.pred = true
	}
}

// StateName returns the machine's current state name.
func (o *Oracle) StateName() string { return o.inst.StateName() }

// Deliveries returns the number of events replayed through the machine.
func (o *Oracle) Deliveries() int { return o.deliveries }

// Violations returns the recorded protocol violations, oldest first.
func (o *Oracle) Violations() []string { return o.violations }
