package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"asagen/internal/chord"
)

// Config parameterises one cluster node.
type Config struct {
	// ID is the node's stable name; its hash is its ring position.
	ID string
	// URL is the node's advertised base address.
	URL string
	// Replicas is the successor-list length s: each artifact lives on
	// its owner plus the next s ring successors.
	Replicas int
	// Seed drives gossip target selection; combined with the node ID so
	// one scenario seed yields distinct, reproducible per-node streams.
	Seed int64
	// Heartbeat is the gossip round interval.
	Heartbeat time.Duration
	// SuspectAfter is the silence span after which a member is suspected.
	SuspectAfter time.Duration
	// DeadAfter is the silence span after which a suspect is declared
	// dead and evicted from the ring.
	DeadAfter time.Duration
	// Fanout is the number of gossip targets per round.
	Fanout int
	// Peers are seed base URLs contacted until their nodes appear in
	// the membership view.
	Peers []string
	// Transport delivers protocol payloads; Clock schedules rounds.
	Transport Transport
	Clock     Clock
	// Log receives the node's cluster events; nil discards them.
	Log *Log
	// Ingest persists a replica blob pushed by the key's owner; nil
	// leaves replicas cold (they proxy instead of serving warm).
	Ingest func(Blob) error
}

// Stats counts a node's protocol activity.
type Stats struct {
	GossipSent           int64 `json:"gossip_sent"`
	GossipReceived       int64 `json:"gossip_received"`
	PropagationsSent     int64 `json:"propagations_sent"`
	PropagationsReceived int64 `json:"propagations_received"`
	IngestErrors         int64 `json:"ingest_errors"`
	RingRebuilds         int64 `json:"ring_rebuilds"`
	Refutations          int64 `json:"refutations"`
}

// memberState is a Member plus node-local failure-detector state.
type memberState struct {
	Member
	// lastHeard is the protocol time of the last direct or merged
	// evidence of liveness.
	lastHeard time.Duration
}

// Node is one cluster member: the gossiped membership view, the
// consistent-hash ring derived from it, and the chord routing oracle
// that validates every view change.
type Node struct {
	cfg Config

	mu         sync.Mutex
	members    map[string]*memberState
	seeds      map[string]bool // peer URLs not yet resolved to members
	ring       ring
	rng        *rand.Rand
	oracle     *Oracle
	propagated map[string]bool
	started    bool
	stopped    bool
	stats      Stats
}

// view is the gossip payload: the sender's self entry plus its full
// membership view, sorted by ID.
type view struct {
	From    Member   `json:"from"`
	Members []Member `json:"members"`
}

// propagation is the replication payload: the blob plus the subtree of
// replicas the receiver forwards it to.
type propagation struct {
	Key     string   `json:"key"`
	Blob    Blob     `json:"blob"`
	Forward []Member `json:"forward,omitempty"`
}

// New validates cfg, generates the routing oracle and returns a node
// whose view contains only itself. Call Start to join the peer set.
func New(cfg Config) (*Node, error) {
	if cfg.ID == "" || cfg.URL == "" {
		return nil, errors.New("cluster: node needs an ID and a URL")
	}
	if cfg.Transport == nil || cfg.Clock == nil {
		return nil, errors.New("cluster: node needs a transport and a clock")
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 500 * time.Millisecond
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 4 * cfg.Heartbeat
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = 3 * cfg.SuspectAfter
	}
	if cfg.Fanout < 1 {
		cfg.Fanout = 3
	}
	oracle, err := NewOracle(cfg.Replicas)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:        cfg,
		members:    make(map[string]*memberState),
		seeds:      make(map[string]bool),
		rng:        rand.New(rand.NewSource(cfg.Seed ^ int64(chord.HashString(cfg.ID)))),
		oracle:     oracle,
		propagated: make(map[string]bool),
	}
	n.members[cfg.ID] = &memberState{Member: Member{ID: cfg.ID, URL: cfg.URL, Incarnation: 1, Status: StatusAlive}}
	for _, p := range cfg.Peers {
		if p != "" && p != cfg.URL {
			n.seeds[p] = true
		}
	}
	return n, nil
}

// ID returns the node's name.
func (n *Node) ID() string { return n.cfg.ID }

// Start joins the overlay: the oracle bootstraps, the seed peers get an
// immediate view push, and the heartbeat loop is armed.
func (n *Node) Start() {
	n.mu.Lock()
	if n.started {
		n.mu.Unlock()
		return
	}
	n.started = true
	now := n.cfg.Clock.Now()
	n.oracle.Join()
	n.record(now, "join", fmt.Sprintf("url=%s replicas=%d", n.cfg.URL, n.cfg.Replicas))
	n.rebuildLocked(now)
	payload := n.snapshotPayloadLocked()
	targets := sortedKeys(n.seeds)
	n.stats.GossipSent += int64(len(targets))
	n.mu.Unlock()

	for _, url := range targets {
		n.cfg.Transport.Send(url, KindGossip, payload)
	}
	n.cfg.Clock.After(n.cfg.Heartbeat, n.heartbeat)
}

// Stop departs gracefully: the oracle leaves, the view marks this node
// left at a fresh incarnation, and the final view is pushed to every
// live member so the ring heals without a suspicion round.
func (n *Node) Stop() {
	n.mu.Lock()
	if !n.started || n.stopped {
		n.mu.Unlock()
		return
	}
	n.stopped = true
	now := n.cfg.Clock.Now()
	self := n.members[n.cfg.ID]
	self.Incarnation++
	self.Status = StatusLeft
	n.oracle.Leave()
	n.record(now, "leave", fmt.Sprintf("incarnation=%d", self.Incarnation))
	payload := n.snapshotPayloadLocked()
	var targets []string
	for _, id := range sortedMemberIDs(n.members) {
		m := n.members[id]
		if id != n.cfg.ID && m.Status.participating() {
			targets = append(targets, m.URL)
		}
	}
	n.stats.GossipSent += int64(len(targets))
	n.mu.Unlock()

	for _, url := range targets {
		n.cfg.Transport.Send(url, KindGossipAck, payload)
	}
}

// Handle processes one protocol payload. For KindGossip the returned
// bytes are the ack view the caller transports back to fromURL;
// other kinds return nil.
func (n *Node) Handle(kind string, payload []byte, fromURL string) ([]byte, error) {
	switch kind {
	case KindGossip, KindGossipAck:
		var v view
		if err := json.Unmarshal(payload, &v); err != nil {
			return nil, fmt.Errorf("cluster: bad gossip payload: %w", err)
		}
		if v.From.ID == "" {
			return nil, errors.New("cluster: gossip without sender identity")
		}
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.stopped {
			return nil, nil
		}
		n.stats.GossipReceived++
		n.mergeViewLocked(v)
		if kind == KindGossip {
			n.stats.GossipSent++
			return n.snapshotPayloadLocked(), nil
		}
		return nil, nil
	case KindPropagate:
		var p propagation
		if err := json.Unmarshal(payload, &p); err != nil {
			return nil, fmt.Errorf("cluster: bad propagation payload: %w", err)
		}
		n.receivePropagation(p)
		return nil, nil
	default:
		return nil, fmt.Errorf("cluster: unknown message kind %q", kind)
	}
}

// mergeViewLocked folds a received view into the membership map,
// rebuilding the ring if participation changed.
func (n *Node) mergeViewLocked(v view) {
	now := n.cfg.Clock.Now()
	changed := false
	for _, rm := range v.Members {
		if n.mergeMemberLocked(rm, now) {
			changed = true
		}
	}
	// The sender's self entry is direct liveness evidence, stronger than
	// the merged hearsay: a suspect heard from directly is alive again.
	if n.mergeMemberLocked(v.From, now) {
		changed = true
	}
	if s, ok := n.members[v.From.ID]; ok && v.From.ID != n.cfg.ID {
		s.lastHeard = now
		if s.Status == StatusSuspect {
			s.Status = StatusAlive
			n.record(now, "member", fmt.Sprintf("id=%s status=%s incarnation=%d", s.ID, s.Status, s.Incarnation))
			changed = true
		}
	}
	if changed {
		n.rebuildLocked(now)
	}
}

// mergeMemberLocked applies one view entry; it reports whether ring
// participation may have changed.
func (n *Node) mergeMemberLocked(rm Member, now time.Duration) bool {
	if rm.ID == "" {
		return false
	}
	if rm.ID == n.cfg.ID {
		self := n.members[n.cfg.ID]
		// Refute rumours of our own demise: re-assert liveness at an
		// incarnation above the rumour's so the refutation wins merges.
		if rm.Status != StatusAlive && !n.stopped && rm.Incarnation >= self.Incarnation {
			self.Incarnation = rm.Incarnation + 1
			self.Status = StatusAlive
			n.stats.Refutations++
			n.record(now, "refute", fmt.Sprintf("status=%s incarnation=%d", rm.Status, self.Incarnation))
		} else if rm.Status == StatusAlive && rm.Incarnation > self.Incarnation {
			self.Incarnation = rm.Incarnation
		}
		return false
	}
	cur, ok := n.members[rm.ID]
	if !ok {
		n.members[rm.ID] = &memberState{Member: rm, lastHeard: now}
		delete(n.seeds, rm.URL)
		n.record(now, "member", fmt.Sprintf("id=%s status=%s incarnation=%d", rm.ID, rm.Status, rm.Incarnation))
		return rm.Status.participating()
	}
	if !rm.supersedes(cur.Member) {
		return false
	}
	before := cur.Status.participating()
	cur.Member = rm
	cur.lastHeard = now
	delete(n.seeds, rm.URL)
	n.record(now, "member", fmt.Sprintf("id=%s status=%s incarnation=%d", rm.ID, rm.Status, rm.Incarnation))
	return before != rm.Status.participating()
}

// heartbeat is one gossip round: sweep the failure detector, then push
// the view to a seeded selection of peers. It re-arms itself until the
// node stops.
func (n *Node) heartbeat() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	now := n.cfg.Clock.Now()
	n.sweepLocked(now)
	payload := n.snapshotPayloadLocked()
	targets := n.gossipTargetsLocked()
	n.stats.GossipSent += int64(len(targets))
	n.mu.Unlock()

	for _, url := range targets {
		n.cfg.Transport.Send(url, KindGossip, payload)
	}
	n.cfg.Clock.After(n.cfg.Heartbeat, n.heartbeat)
}

// sweepLocked advances the failure detector: silent members become
// suspect, silent suspects become dead and leave the ring.
func (n *Node) sweepLocked(now time.Duration) {
	changed := false
	for _, id := range sortedMemberIDs(n.members) {
		m := n.members[id]
		if id == n.cfg.ID || !m.Status.participating() {
			continue
		}
		silent := now - m.lastHeard
		switch {
		case m.Status == StatusAlive && silent > n.cfg.SuspectAfter:
			m.Status = StatusSuspect
			n.record(now, "member", fmt.Sprintf("id=%s status=%s incarnation=%d", m.ID, m.Status, m.Incarnation))
		case m.Status == StatusSuspect && silent > n.cfg.DeadAfter:
			m.Status = StatusDead
			n.record(now, "member", fmt.Sprintf("id=%s status=%s incarnation=%d", m.ID, m.Status, m.Incarnation))
			changed = true
		}
	}
	if changed {
		n.rebuildLocked(now)
	}
}

// gossipTargetsLocked picks this round's peers: a seeded sample of the
// participating members plus any seed URLs not yet resolved, so a node
// keeps knocking until its configured peers come up.
func (n *Node) gossipTargetsLocked() []string {
	var candidates []string
	for _, id := range sortedMemberIDs(n.members) {
		m := n.members[id]
		if id != n.cfg.ID && m.Status.participating() {
			candidates = append(candidates, m.URL)
		}
	}
	candidates = append(candidates, sortedKeys(n.seeds)...)
	if len(candidates) <= n.cfg.Fanout {
		return candidates
	}
	picked := make([]string, 0, n.cfg.Fanout)
	for _, i := range n.rng.Perm(len(candidates))[:n.cfg.Fanout] {
		picked = append(picked, candidates[i])
	}
	return picked
}

// rebuildLocked recomputes the ring from the participating members and
// reconciles the routing oracle with the new successor view.
func (n *Node) rebuildLocked(now time.Duration) {
	var parts []Member
	for _, id := range sortedMemberIDs(n.members) {
		if m := n.members[id]; m.Status.participating() {
			parts = append(parts, m.Member)
		}
	}
	n.ring = buildRing(parts)
	n.stats.RingRebuilds++
	// A membership epoch invalidates the propagation dedup: the next
	// serve of each key re-pushes it to the key's current successors.
	n.propagated = make(map[string]bool)
	n.record(now, "ring", fmt.Sprintf("size=%d members=%s", n.ring.size(), strings.Join(n.ring.ids, ",")))

	size := n.ring.size()
	succ := size - 1
	if succ > n.cfg.Replicas {
		succ = n.cfg.Replicas
	}
	if succ < 0 {
		succ = 0
	}
	before := len(n.oracle.Violations())
	n.oracle.Observe(succ, size >= 2)
	n.record(now, "oracle", fmt.Sprintf("state=%s successors=%d predecessor=%t", n.oracle.StateName(), succ, size >= 2))
	for _, v := range n.oracle.Violations()[before:] {
		n.record(now, "violation", v)
	}
}

// Route classifies this node's responsibility for a routing key against
// the current ring: owner, replica, or remote (proxy to the owner).
func (n *Node) Route(key string) Decision {
	h := hashKey(key)
	n.mu.Lock()
	defer n.mu.Unlock()
	i := n.ring.ownerIndex(h)
	if i < 0 {
		return Decision{OwnerID: n.cfg.ID, OwnerURL: n.cfg.URL, Relation: RelOwner}
	}
	id, url := n.ring.at(i)
	d := Decision{OwnerID: id, OwnerURL: url}
	if id == n.cfg.ID {
		d.Relation = RelOwner
		return d
	}
	size := n.ring.size()
	for j := 1; j <= n.cfg.Replicas && j < size; j++ {
		if rid, _ := n.ring.at(i + j); rid == n.cfg.ID {
			d.Relation = RelReplica
			return d
		}
	}
	d.Relation = RelRemote
	return d
}

// Violations returns the routing oracle's recorded protocol violations.
func (n *Node) Violations() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.oracle.Violations()...)
}

// snapshotPayloadLocked marshals the current view for gossip.
func (n *Node) snapshotPayloadLocked() []byte {
	v := view{From: n.members[n.cfg.ID].Member}
	for _, id := range sortedMemberIDs(n.members) {
		v.Members = append(v.Members, n.members[id].Member)
	}
	payload, err := json.Marshal(v)
	if err != nil {
		// The view is plain data; marshalling cannot fail.
		panic(fmt.Sprintf("cluster: marshal view: %v", err))
	}
	return payload
}

// record appends one event to the configured log.
func (n *Node) record(now time.Duration, kind, detail string) {
	n.cfg.Log.Record(now, n.cfg.ID, kind, detail)
}

func sortedMemberIDs(m map[string]*memberState) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
