package cluster

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
	"time"

	"asagen/internal/artifact"
	"asagen/internal/models"
	"asagen/internal/simnet"
	"asagen/internal/store"
)

// The acceptance scenario for the cluster tier: three nodes join over
// simnet under seeded gossip, requests shard by fingerprint with every
// request landing on the owner or a current replica, a crash and a
// graceful leave churn the ring with zero routing-oracle violations, and
// the same seed replays to a byte-identical cluster event log.

const (
	simHeartbeat = 100 * time.Millisecond
	simSuspect   = 300 * time.Millisecond
	simDead      = 600 * time.Millisecond
)

// simEnv is one running scenario: a simnet, its cluster nodes and the
// per-node artifact pipelines backed by on-disk stores.
type simEnv struct {
	t       *testing.T
	net     *simnet.Network
	log     *Log
	nodes   map[string]*Node
	pipes   map[string]*artifact.Pipeline
	stores  map[string]*store.Store
	crashed map[string]bool
	ref     *artifact.Pipeline // single-node reference for expected bytes
}

func newSimEnv(t *testing.T, seed int64) *simEnv {
	t.Helper()
	return &simEnv{
		t:       t,
		net:     simnet.New(seed),
		log:     NewLog(),
		nodes:   map[string]*Node{},
		pipes:   map[string]*artifact.Pipeline{},
		stores:  map[string]*store.Store{},
		crashed: map[string]bool{},
		ref:     artifact.New(artifact.WithRegistry(models.Default().Clone())),
	}
}

// addNode builds a node whose URL doubles as its simnet ID, with a
// store-backed pipeline and replica ingest wired to that store.
func (e *simEnv) addNode(id string, peers ...string) {
	e.t.Helper()
	st, err := store.Open(filepath.Join(e.t.TempDir(), id))
	if err != nil {
		e.t.Fatal(err)
	}
	e.t.Cleanup(func() { st.Close() })
	p := artifact.New(artifact.WithRegistry(models.Default().Clone()), artifact.WithStore(st))
	n, err := New(Config{
		ID: id, URL: id, Replicas: 1, Seed: 1,
		Heartbeat: simHeartbeat, SuspectAfter: simSuspect, DeadAfter: simDead,
		Peers:     peers,
		Transport: SimTransport{Net: e.net, Self: simnet.NodeID(id)},
		Clock:     SimClock{Net: e.net},
		Log:       e.log,
		Ingest: func(b Blob) error {
			return st.Ingest(b.Key, b.Data, b.Sum, b.Media, b.Ext)
		},
	})
	if err != nil {
		e.t.Fatal(err)
	}
	if err := BindSimnet(e.net, n); err != nil {
		e.t.Fatal(err)
	}
	e.nodes[id], e.pipes[id], e.stores[id] = n, p, st
}

// crash fail-stops a node: every link to it is cut in both directions,
// so in-flight and future messages drop and peers must detect the
// silence through the failure detector.
func (e *simEnv) crash(id string) {
	e.crashed[id] = true
	for other := range e.nodes {
		if other != id {
			e.net.Partition(simnet.NodeID(id), simnet.NodeID(other))
		}
	}
}

func blobOf(res artifact.Result) Blob {
	skey := store.Key{
		Model:  res.Request.Model,
		Param:  res.Request.Param,
		Format: res.Request.Format,
	}
	if !res.Fingerprint.IsZero() {
		skey.Fingerprint = res.Fingerprint.String()
	}
	return Blob{Key: skey, Sum: res.ContentHash(), Media: res.Artifact.MediaType,
		Ext: res.Artifact.Ext, Data: res.Artifact.Data}
}

// serve emulates the api layer's clustered artifact path from one node:
// the owner renders and seeds replicas, a warm replica serves its store
// copy, everyone else forwards one hop to the owner.
func (e *simEnv) serve(from string, req artifact.Request) artifact.Result {
	e.t.Helper()
	p := e.pipes[from]
	key, resolved, err := p.RouteKey(req)
	if err != nil {
		e.t.Fatalf("%s: route key for %+v: %v", from, req, err)
	}
	d := e.nodes[from].Route(key)
	switch d.Relation {
	case RelOwner:
		res := p.Render(context.Background(), resolved)
		if res.Err != nil {
			e.t.Fatalf("%s: render %+v: %v", from, req, res.Err)
		}
		e.nodes[from].MaybePropagate(key, blobOf(res))
		return res
	case RelReplica:
		if res, ok := p.Probe(resolved); ok {
			return res
		}
	}
	// Cold replica or remote: one proxy hop to the owner in this node's
	// view. A request must never be forwarded to a crashed node — the
	// requester's ring is stale if it still routes there.
	owner := d.OwnerID
	if e.crashed[owner] {
		e.t.Fatalf("%s routed key %s to crashed node %s", from, key, owner)
	}
	op := e.pipes[owner]
	okey, oresolved, err := op.RouteKey(req)
	if err != nil {
		e.t.Fatalf("%s: route key for %+v: %v", owner, req, err)
	}
	if od := e.nodes[owner].Route(okey); od.Relation == RelRemote {
		e.t.Errorf("request for %s forwarded to %s, which is neither owner nor replica in its own view", key, owner)
	}
	res := op.Render(context.Background(), oresolved)
	if res.Err != nil {
		e.t.Fatalf("%s: render %+v: %v", owner, req, res.Err)
	}
	e.nodes[owner].MaybePropagate(okey, blobOf(res))
	return res
}

// wave serves every request from every given node and checks the bytes
// and validators match the single-node reference pipeline exactly.
func (e *simEnv) wave(froms []string, reqs []artifact.Request) {
	e.t.Helper()
	for _, req := range reqs {
		ref := e.ref.Render(context.Background(), req)
		if ref.Err != nil {
			e.t.Fatalf("reference render %+v: %v", req, ref.Err)
		}
		for _, from := range froms {
			res := e.serve(from, req)
			if !bytes.Equal(res.Artifact.Data, ref.Artifact.Data) {
				e.t.Fatalf("bytes served via %s for %+v diverge from reference", from, req)
			}
			if res.ETag != ref.ETag {
				e.t.Fatalf("ETag via %s = %s, reference %s: same fingerprint must validate identically", from, res.ETag, ref.ETag)
			}
		}
	}
}

// checkReplicaWarmth asserts that, propagation having drained, every
// live node that considers itself a replica of a request's key holds
// the exact artefact bytes in its local store.
func (e *simEnv) checkReplicaWarmth(live []string, reqs []artifact.Request) {
	e.t.Helper()
	for _, req := range reqs {
		ref := e.ref.Render(context.Background(), req)
		skey := blobOf(ref).Key
		key, _, err := e.pipes[live[0]].RouteKey(req)
		if err != nil {
			e.t.Fatal(err)
		}
		for _, id := range live {
			if e.nodes[id].Route(key).Relation != RelReplica {
				continue
			}
			data, sum, _, _, ok := e.stores[id].Get(skey)
			if !ok {
				e.t.Fatalf("replica %s has no copy of %v after propagation drained", id, skey)
			}
			if sum != ref.Sum || !bytes.Equal(data, ref.Artifact.Data) {
				e.t.Fatalf("replica %s holds divergent bytes for %v", id, skey)
			}
		}
	}
}

func (e *simEnv) checkRingSize(id string, want int) {
	e.t.Helper()
	rep := e.nodes[id].Status()
	if len(rep.Ring) != want {
		e.t.Fatalf("node %s ring = %d entries (%v), want %d at t=%v",
			id, len(rep.Ring), rep.Ring, want, e.net.Now())
	}
}

// runClusterScenario drives the full churn schedule and returns the
// cluster event log it produced.
func runClusterScenario(t *testing.T, seed int64) []byte {
	e := newSimEnv(t, seed)
	e.addNode("node-a")
	e.addNode("node-b", "node-a")
	e.addNode("node-c", "node-a")

	reqs := []artifact.Request{
		{Model: "commit", Param: 4, Format: "text"},
		{Model: "commit", Param: 5, Format: "dot"},
		{Model: "chord", Param: 2, Format: "text"},
		{Model: "termination", Param: 2, Format: "efsm"},
	}

	// Staggered joins, then a full stabilisation window.
	e.net.After(0, e.nodes["node-a"].Start)
	e.net.After(50*time.Millisecond, e.nodes["node-b"].Start)
	e.net.After(120*time.Millisecond, e.nodes["node-c"].Start)
	e.net.RunUntilTime(1 * time.Second)
	for _, id := range []string{"node-a", "node-b", "node-c"} {
		e.checkRingSize(id, 3)
	}

	// Wave 1: all requests from all three nodes, then drain replica
	// propagation and verify warmth.
	e.wave([]string{"node-a", "node-b", "node-c"}, reqs)
	e.net.RunUntilTime(1500 * time.Millisecond)
	e.checkReplicaWarmth([]string{"node-a", "node-b", "node-c"}, reqs)

	// Crash node-c. The survivors must detect the silence, evict it and
	// shrink the ring to two — and requests must keep resolving.
	e.crash("node-c")
	e.net.RunUntilTime(3 * time.Second)
	e.checkRingSize("node-a", 2)
	e.checkRingSize("node-b", 2)
	e.wave([]string{"node-a", "node-b"}, reqs)

	// A fresh node joins the depleted ring.
	e.addNode("node-d", "node-a")
	e.net.After(3200*time.Millisecond-e.net.Now(), e.nodes["node-d"].Start)
	e.net.RunUntilTime(4 * time.Second)
	for _, id := range []string{"node-a", "node-b", "node-d"} {
		e.checkRingSize(id, 3)
	}
	e.wave([]string{"node-a", "node-b", "node-d"}, reqs)
	e.net.RunUntilTime(4500 * time.Millisecond)
	e.checkReplicaWarmth([]string{"node-a", "node-b", "node-d"}, reqs)

	// Graceful leave: node-b announces departure, so the ring heals
	// immediately without a suspicion round.
	e.nodes["node-b"].Stop()
	e.net.RunUntilTime(5 * time.Second)
	e.checkRingSize("node-a", 2)
	e.checkRingSize("node-d", 2)
	e.wave([]string{"node-a", "node-d"}, reqs)
	e.net.RunUntilTime(5500 * time.Millisecond)

	// No node — including the crashed and the departed — may have driven
	// the chord routing oracle through a forbidden transition.
	for id, n := range e.nodes {
		if v := n.Violations(); len(v) != 0 {
			t.Errorf("node %s oracle violations: %v", id, v)
		}
	}
	return e.log.Bytes()
}

func TestClusterChurnScenario(t *testing.T) {
	log := runClusterScenario(t, 42)
	if len(log) == 0 {
		t.Fatal("scenario produced an empty event log")
	}
	if t.Failed() {
		t.Logf("event log:\n%s", log)
	}
}

func TestClusterScenarioDeterministic(t *testing.T) {
	first := runClusterScenario(t, 42)
	second := runClusterScenario(t, 42)
	if !bytes.Equal(first, second) {
		a, b := bytes.Split(first, []byte("\n")), bytes.Split(second, []byte("\n"))
		for i := 0; i < len(a) && i < len(b); i++ {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("event logs diverge at line %d:\n  run1: %s\n  run2: %s", i+1, a[i], b[i])
			}
		}
		t.Fatalf("event logs diverge in length: %d vs %d lines", len(a), len(b))
	}
	if other := runClusterScenario(t, 7); bytes.Equal(first, other) {
		t.Fatal("different seeds produced identical histories — the schedule is not actually seeded")
	}
}
