package cluster

import (
	"encoding/json"
	"fmt"
	"strings"
)

// MaybePropagate pushes a freshly rendered artifact to the key's next s
// ring successors over a binary broadcast tree, once per key per
// membership epoch. Only the key's owner propagates: a node that
// rendered under a divergent view would otherwise seed the wrong
// successor set.
func (n *Node) MaybePropagate(key string, b Blob) {
	n.mu.Lock()
	if n.stopped || n.propagated[key] {
		n.mu.Unlock()
		return
	}
	h := hashKey(key)
	i := n.ring.ownerIndex(h)
	if i < 0 {
		n.mu.Unlock()
		return
	}
	if id, _ := n.ring.at(i); id != n.cfg.ID {
		n.mu.Unlock()
		return
	}
	var targets []Member
	size := n.ring.size()
	for j := 1; j <= n.cfg.Replicas && j < size; j++ {
		id, url := n.ring.at(i + j)
		if id == n.cfg.ID {
			break // wrapped all the way around a small ring
		}
		targets = append(targets, Member{ID: id, URL: url})
	}
	n.propagated[key] = true
	if len(targets) == 0 {
		n.mu.Unlock()
		return
	}
	n.stats.PropagationsSent++
	ids := make([]string, len(targets))
	for j, t := range targets {
		ids[j] = t.ID
	}
	n.record(n.cfg.Clock.Now(), "propagate", fmt.Sprintf("key=%s targets=%s", key, strings.Join(ids, ",")))
	n.mu.Unlock()

	n.forward(targets, propagation{Key: key, Blob: b})
}

// receivePropagation ingests a pushed replica and forwards it down this
// node's subtree of the broadcast tree.
func (n *Node) receivePropagation(p propagation) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stats.PropagationsReceived++
	now := n.cfg.Clock.Now()
	if n.cfg.Ingest == nil {
		n.record(now, "ingest", fmt.Sprintf("key=%s skipped=no-store", p.Key))
	} else if err := n.cfg.Ingest(p.Blob); err != nil {
		n.stats.IngestErrors++
		n.record(now, "ingest-error", fmt.Sprintf("key=%s err=%v", p.Key, err))
	} else {
		n.record(now, "ingest", fmt.Sprintf("key=%s sum=%s", p.Key, p.Blob.Sum))
	}
	n.mu.Unlock()

	n.forward(p.Forward, propagation{Key: p.Key, Blob: p.Blob})
}

// forward fans a propagation out to up to two children, each carrying
// half of the remaining subtree, so a push to s replicas completes in
// O(log s) sequential hops instead of s direct sends from the owner.
func (n *Node) forward(targets []Member, p propagation) {
	if len(targets) == 0 {
		return
	}
	mid := (len(targets) + 1) / 2
	groups := [][]Member{targets[:mid]}
	if mid < len(targets) {
		groups = append(groups, targets[mid:])
	}
	for _, g := range groups {
		p.Forward = g[1:]
		payload, err := json.Marshal(p)
		if err != nil {
			panic(fmt.Sprintf("cluster: marshal propagation: %v", err))
		}
		n.cfg.Transport.Send(g[0].URL, KindPropagate, payload)
	}
}
