package cluster

import (
	"sort"

	"asagen/internal/chord"
)

// ring is the consistent-hash routing table: the participating members'
// ID hashes in circle order. It is rebuilt on every membership change and
// immutable between rebuilds, so lookups are a single binary search with
// no allocation — the serve hot path pays one hash and one search per
// request.
type ring struct {
	// hashes are the members' ring positions, ascending.
	hashes []uint64
	// ids and urls are the members at the matching hashes index.
	ids  []string
	urls []string
}

// hashKey maps a routing key to the identifier circle, sharing the seed
// Ring's hash so the cluster and the in-memory overlay agree on
// placement.
func hashKey(key string) uint64 { return uint64(chord.HashString(key)) }

// buildRing constructs the ring over the given members. Members are
// placed at chord.HashString(ID), matching the seed Ring's placement, and
// sorted into circle order.
func buildRing(members []Member) ring {
	r := ring{
		hashes: make([]uint64, len(members)),
		ids:    make([]string, len(members)),
		urls:   make([]string, len(members)),
	}
	idx := make([]int, len(members))
	for i, m := range members {
		r.hashes[i] = uint64(chord.HashString(m.ID))
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return r.hashes[idx[a]] < r.hashes[idx[b]] })
	hashes := make([]uint64, len(members))
	for out, in := range idx {
		hashes[out] = r.hashes[in]
		r.ids[out] = members[in].ID
		r.urls[out] = members[in].URL
	}
	r.hashes = hashes
	return r
}

// ownerIndex returns the index of the key's successor: the first member
// at or clockwise of the key's position. An empty ring returns -1.
func (r *ring) ownerIndex(key uint64) int {
	n := len(r.hashes)
	if n == 0 {
		return -1
	}
	i := sort.Search(n, func(j int) bool { return r.hashes[j] >= key })
	if i == n {
		i = 0 // wrap past the highest position to the circle's start
	}
	return i
}

// at returns the member ID and URL at index i modulo the ring size.
func (r *ring) at(i int) (id, url string) {
	i %= len(r.ids)
	return r.ids[i], r.urls[i]
}

// indexOf returns the ring index of the given member ID, or -1.
func (r *ring) indexOf(id string) int {
	for i, rid := range r.ids {
		if rid == id {
			return i
		}
	}
	return -1
}

// size returns the number of ring positions.
func (r *ring) size() int { return len(r.ids) }
