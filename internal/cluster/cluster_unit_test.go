package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
	"testing"
	"time"

	"asagen/internal/chord"
)

// stubTransport records sends for inspection.
type stubTransport struct {
	sent []stubSend
}

type stubSend struct {
	to      string
	kind    string
	payload []byte
}

func (t *stubTransport) Send(toURL, kind string, payload []byte) {
	t.sent = append(t.sent, stubSend{to: toURL, kind: kind, payload: payload})
}

// stubClock is a manual clock whose timers never fire; tests drive the
// node's handlers directly.
type stubClock struct{ now time.Duration }

func (c *stubClock) Now() time.Duration          { return c.now }
func (c *stubClock) After(time.Duration, func()) {}

func newTestNode(t *testing.T, id string, replicas int) (*Node, *stubTransport, *stubClock) {
	t.Helper()
	tr := &stubTransport{}
	ck := &stubClock{}
	n, err := New(Config{
		ID: id, URL: "http://" + id, Replicas: replicas, Seed: 7,
		Transport: tr, Clock: ck, Log: NewLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	return n, tr, ck
}

// inject merges a membership view into the node as if gossiped.
func inject(t *testing.T, n *Node, from Member, members ...Member) {
	t.Helper()
	payload, err := json.Marshal(view{From: from, Members: members})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Handle(KindGossipAck, payload, from.URL); err != nil {
		t.Fatal(err)
	}
}

func alive(id string) Member {
	return Member{ID: id, URL: "http://" + id, Incarnation: 1, Status: StatusAlive}
}

func TestRouteAgreesWithIndependentPlacement(t *testing.T) {
	ids := []string{"node-a", "node-b", "node-c", "node-d"}
	nodes := make(map[string]*Node, len(ids))
	for _, id := range ids {
		n, _, _ := newTestNode(t, id, 1)
		var others []Member
		for _, other := range ids {
			if other != id {
				others = append(others, alive(other))
			}
		}
		inject(t, n, others[0], others...)
		nodes[id] = n
	}

	// Independent placement: sort the ring positions by hand and find
	// each key's successor by linear scan.
	ring := make([]ringPos, len(ids))
	for i, id := range ids {
		ring[i] = ringPos{hash: uint64(chord.HashString(id)), id: id}
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].hash < ring[j].hash })
	ownerOf := func(key string) (string, string) {
		h := uint64(chord.HashString(key))
		for _, p := range ring {
			if p.hash >= h {
				return p.id, nextID(ring, p.id)
			}
		}
		return ring[0].id, nextID(ring, ring[0].id)
	}

	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("fingerprint-%02d", i)
		owner, successor := ownerOf(key)
		for id, n := range nodes {
			d := n.Route(key)
			if d.OwnerID != owner {
				t.Fatalf("node %s routes %q to %s, independent placement says %s", id, key, d.OwnerID, owner)
			}
			want := RelRemote
			switch id {
			case owner:
				want = RelOwner
			case successor:
				want = RelReplica // replicas=1: only the immediate successor
			}
			if d.Relation != want {
				t.Fatalf("node %s relation for %q = %v, want %v", id, key, d.Relation, want)
			}
		}
	}
}

type ringPos struct {
	hash uint64
	id   string
}

func nextID(ring []ringPos, id string) string {
	for i, p := range ring {
		if p.id == id {
			return ring[(i+1)%len(ring)].id
		}
	}
	return ""
}

func TestRouteStandaloneOwnsEverything(t *testing.T) {
	n, _, _ := newTestNode(t, "solo", 2)
	d := n.Route("any-key")
	if d.Relation != RelOwner || d.OwnerID != "solo" {
		t.Fatalf("standalone Route = %+v", d)
	}
}

func TestRefutationOutlivesRumour(t *testing.T) {
	n, _, _ := newTestNode(t, "node-a", 1)
	inject(t, n, alive("node-b"), alive("node-b"),
		Member{ID: "node-a", URL: "http://node-a", Incarnation: 1, Status: StatusDead})
	rep := n.Status()
	var self Member
	for _, m := range rep.Members {
		if m.ID == "node-a" {
			self = m
		}
	}
	if self.Status != StatusAlive || self.Incarnation != 2 {
		t.Fatalf("self after dead rumour = %+v, want alive at incarnation 2", self)
	}
	if rep.Stats.Refutations != 1 {
		t.Fatalf("refutations = %d, want 1", rep.Stats.Refutations)
	}
}

func TestGracefulLeaveSupersedesAlive(t *testing.T) {
	n, tr, _ := newTestNode(t, "node-a", 1)
	inject(t, n, alive("node-b"), alive("node-b"))
	tr.sent = nil
	n.Stop()
	if len(tr.sent) != 1 || tr.sent[0].kind != KindGossipAck {
		t.Fatalf("leave broadcast = %+v", tr.sent)
	}
	var v view
	if err := json.Unmarshal(tr.sent[0].payload, &v); err != nil {
		t.Fatal(err)
	}
	if v.From.Status != StatusLeft || v.From.Incarnation != 2 {
		t.Fatalf("leave self entry = %+v", v.From)
	}
	if !v.From.supersedes(Member{ID: "node-a", Incarnation: 1, Status: StatusAlive}) {
		t.Fatal("leave entry does not supersede the alive entry peers hold")
	}
}

func TestPropagateCoversSuccessorsViaTree(t *testing.T) {
	n, tr, _ := newTestNode(t, "node-a", 3)
	others := []Member{alive("node-b"), alive("node-c"), alive("node-d"), alive("node-e")}
	inject(t, n, others[0], others...)

	// Find a key this node owns.
	var key string
	for i := 0; ; i++ {
		k := fmt.Sprintf("key-%d", i)
		if n.Route(k).Relation == RelOwner {
			key = k
			break
		}
	}
	blob := Blob{Sum: "00", Media: "text/plain", Ext: ".txt", Data: []byte("x")}
	n.MaybePropagate(key, blob)

	// The owner sends at most two tree roots; the roots' Forward lists
	// must cover exactly the 3 successors, each once.
	if len(tr.sent) == 0 || len(tr.sent) > 2 {
		t.Fatalf("owner sent %d messages, want 1..2 tree roots", len(tr.sent))
	}
	covered := map[string]int{}
	for _, s := range tr.sent {
		if s.kind != KindPropagate {
			t.Fatalf("unexpected send kind %s", s.kind)
		}
		var p propagation
		if err := json.Unmarshal(s.payload, &p); err != nil {
			t.Fatal(err)
		}
		covered[s.to]++
		for _, f := range p.Forward {
			covered[f.URL]++
		}
	}
	if len(covered) != 3 {
		t.Fatalf("tree covers %d targets, want 3: %v", len(covered), covered)
	}
	for url, times := range covered {
		if times != 1 {
			t.Fatalf("target %s covered %d times", url, times)
		}
		if url == "http://node-a" {
			t.Fatal("owner propagated to itself")
		}
	}

	// Second serve of the same key in the same membership epoch is
	// deduplicated; a ring change re-opens it.
	tr.sent = nil
	n.MaybePropagate(key, blob)
	if len(tr.sent) != 0 {
		t.Fatalf("re-propagated within one epoch: %d sends", len(tr.sent))
	}
	inject(t, n, alive("node-f"), alive("node-f"))
	n.MaybePropagate(key, blob)
	if len(tr.sent) == 0 {
		t.Fatal("ring change did not re-open propagation")
	}
}

func TestReceivePropagationIngestsAndForwards(t *testing.T) {
	tr := &stubTransport{}
	var got []Blob
	n, err := New(Config{
		ID: "node-b", URL: "http://node-b", Replicas: 2, Transport: tr, Clock: &stubClock{},
		Ingest: func(b Blob) error { got = append(got, b); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	p := propagation{
		Key:  "k",
		Blob: Blob{Sum: "ab", Data: []byte("y")},
		Forward: []Member{
			{ID: "node-c", URL: "http://node-c"},
			{ID: "node-d", URL: "http://node-d"},
		},
	}
	payload, _ := json.Marshal(p)
	if _, err := n.Handle(KindPropagate, payload, "http://node-a"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Data) != "y" {
		t.Fatalf("ingest = %+v", got)
	}
	if len(tr.sent) != 2 {
		t.Fatalf("forwarded %d, want 2 subtree children", len(tr.sent))
	}
}

func TestOracleTracksLifecycleWithoutViolations(t *testing.T) {
	o, err := NewOracle(2)
	if err != nil {
		t.Fatal(err)
	}
	o.Join()
	o.Observe(1, true)
	o.Observe(2, true)
	o.Observe(0, false)
	o.Observe(2, true)
	o.Leave()
	if v := o.Violations(); len(v) != 0 {
		t.Fatalf("violations = %v", v)
	}
	if o.Deliveries() == 0 {
		t.Fatal("no deliveries recorded")
	}
}

func TestOracleFlagsForbiddenTransition(t *testing.T) {
	o, err := NewOracle(1)
	if err != nil {
		t.Fatal(err)
	}
	o.Join()
	o.deliver(chord.EvJoin) // joining twice is forbidden by the model
	if v := o.Violations(); len(v) != 1 {
		t.Fatalf("violations = %v, want exactly the double join", v)
	}
}
