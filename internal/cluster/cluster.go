// Package cluster is the distributed serve tier: a set of long-running
// fsmgen serve processes that form a fingerprint-sharded artifact ring.
// Nodes discover each other through a seeded gossip membership protocol
// (periodic heartbeats, anti-entropy view merges, suspicion timeouts),
// route artifact requests by consistent hashing of machine fingerprints
// onto the live member ring, and push newly rendered artifacts to the
// next s successors over a broadcast tree so replicas answer warm.
//
// The subsystem dogfoods the reproduction itself: every membership change
// is replayed through a runtime.Instance of the registry's generated
// chord-membership machine, which acts as the routing oracle — a delivery
// the machine rejects is a protocol violation, surfaced on /v1/cluster
// and gated to zero in CI.
//
// All protocol behaviour is driven through the Transport and Clock
// interfaces, so the same Node runs over HTTP in production and over
// simnet virtual time in the deterministic multi-node integration tests:
// one seed reproduces one byte-identical cluster event log.
package cluster

import (
	"time"

	"asagen/internal/store"
)

// Message kinds exchanged between nodes. Over HTTP they map to the
// /v1/cluster/* routes; over simnet they are the Message.Type values.
const (
	// KindGossip is a membership view push that warrants an ack carrying
	// the receiver's view (push-pull anti-entropy).
	KindGossip = "gossip"
	// KindGossipAck is a membership view merged without reply.
	KindGossipAck = "gossip-ack"
	// KindPropagate is an artifact replication push along the broadcast
	// tree.
	KindPropagate = "propagate"
)

// Status is a member's lifecycle state in the gossip view.
type Status string

// Member lifecycle states, in increasing precedence: at equal
// incarnation, the higher-precedence status wins a view merge.
const (
	StatusAlive   Status = "alive"
	StatusSuspect Status = "suspect"
	StatusDead    Status = "dead"
	StatusLeft    Status = "left"
)

// rank orders statuses for merge precedence.
func (s Status) rank() int {
	switch s {
	case StatusAlive:
		return 0
	case StatusSuspect:
		return 1
	case StatusDead:
		return 2
	case StatusLeft:
		return 3
	}
	return -1
}

// participating reports whether a member in this status holds a ring
// position. Suspect members still serve — suspicion is a hint, not a
// verdict — while dead and departed members are excluded.
func (s Status) participating() bool { return s == StatusAlive || s == StatusSuspect }

// Member is one node's entry in the gossiped membership view.
type Member struct {
	// ID is the node's stable name; its hash is the ring position.
	ID string `json:"id"`
	// URL is the node's base address, the target for transport sends.
	URL string `json:"url"`
	// Incarnation is the member's self-asserted epoch: only the member
	// itself increments it, to refute suspicion or rejoin after being
	// declared dead.
	Incarnation uint64 `json:"incarnation"`
	// Status is the lifecycle state asserted by this view entry.
	Status Status `json:"status"`
}

// supersedes reports whether view entry m should replace cur in a merge.
func (m Member) supersedes(cur Member) bool {
	if m.Incarnation != cur.Incarnation {
		return m.Incarnation > cur.Incarnation
	}
	return m.Status.rank() > cur.Status.rank()
}

// Blob is one rendered artifact pushed to replicas: the store key, the
// content sum the bytes must verify against, and the bytes themselves.
type Blob struct {
	Key   store.Key `json:"key"`
	Sum   string    `json:"sum"`
	Media string    `json:"media"`
	Ext   string    `json:"ext"`
	Data  []byte    `json:"data"`
}

// Transport delivers protocol payloads to peer nodes by base URL. Sends
// are fire-and-forget: loss is tolerated by the next gossip round.
type Transport interface {
	Send(toURL, kind string, payload []byte)
}

// Clock abstracts time so the protocol runs identically on the wall
// clock and on simnet virtual time.
type Clock interface {
	// Now returns the elapsed time on this clock's epoch.
	Now() time.Duration
	// After schedules fn once, d from now.
	After(d time.Duration, fn func())
}

// Relation classifies this node's responsibility for a routing key.
type Relation uint8

// Routing relations.
const (
	// RelRemote: another node owns the key and this node holds no
	// replica; the request is proxied.
	RelRemote Relation = iota
	// RelOwner: this node is the key's successor on the ring.
	RelOwner
	// RelReplica: this node is one of the owner's next s successors.
	RelReplica
)

// String names the relation for headers and logs.
func (r Relation) String() string {
	switch r {
	case RelOwner:
		return "owner"
	case RelReplica:
		return "replica"
	}
	return "remote"
}

// Decision is the outcome of routing one key against the current ring.
type Decision struct {
	// OwnerID and OwnerURL identify the key's owning node.
	OwnerID  string
	OwnerURL string
	// Relation is this node's own responsibility for the key.
	Relation Relation
}
