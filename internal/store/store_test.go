package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func put(t *testing.T, s *Store, key Key, content string) [sha256.Size]byte {
	t.Helper()
	sum := sha256.Sum256([]byte(content))
	if err := s.Put(key, []byte(content), sum, "text/plain", ".txt"); err != nil {
		t.Fatal(err)
	}
	return sum
}

func machineKey(model, fp, format string) Key {
	return Key{Model: model, Param: 4, Format: format, Fingerprint: fp}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	key := machineKey("commit", "aabb", "text")
	sum := put(t, s, key, "machine artefact")

	data, gotSum, media, ext, ok := s.Get(key)
	if !ok {
		t.Fatal("Get missed a just-written key")
	}
	if string(data) != "machine artefact" || gotSum != sum || media != "text/plain" || ext != ".txt" {
		t.Fatalf("Get = %q/%x/%s/%s", data, gotSum, media, ext)
	}
	if _, _, _, _, ok := s.Get(machineKey("commit", "other", "text")); ok {
		t.Fatal("Get hit an absent fingerprint")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEFSMKeysAreModelScoped(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	put(t, s, Key{Model: "a", Param: 4, Format: "efsm"}, "efsm-a")
	put(t, s, Key{Model: "b", Param: 4, Format: "efsm"}, "efsm-b")
	data, _, _, _, ok := s.Get(Key{Model: "b", Param: 4, Format: "efsm"})
	if !ok || string(data) != "efsm-b" {
		t.Fatalf("Get(b) = %q, %v", data, ok)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

// TestReopenServesPreviousWrites: the restart-warmth core — a fresh Store
// over the same directory serves every previously written artefact.
func TestReopenServesPreviousWrites(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	keys := make([]Key, 0, 8)
	for i := 0; i < 8; i++ {
		key := machineKey("commit", fmt.Sprintf("fp%02d", i), "text")
		put(t, s, key, fmt.Sprintf("content %d", i))
		keys = append(keys, key)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reopened := mustOpen(t, dir)
	if reopened.Len() != len(keys) {
		t.Fatalf("reopened Len = %d, want %d", reopened.Len(), len(keys))
	}
	for i, key := range keys {
		data, _, _, _, ok := reopened.Get(key)
		if !ok || string(data) != fmt.Sprintf("content %d", i) {
			t.Fatalf("reopened Get(%v) = %q, %v", key, data, ok)
		}
	}
}

// TestReopenIgnoresTornTailLine: a crash mid-append leaves a partial JSON
// line; replay must drop it and keep everything before it.
func TestReopenIgnoresTornTailLine(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	key := machineKey("commit", "feed", "text")
	put(t, s, key, "survives")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "index.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"put","model":"torn","fo`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reopened := mustOpen(t, dir)
	if reopened.Len() != 1 {
		t.Fatalf("Len after torn tail = %d, want 1", reopened.Len())
	}
	if _, _, _, _, ok := reopened.Get(key); !ok {
		t.Fatal("intact row lost after torn tail")
	}
}

// TestReopenDropsRowsWithMissingBlobs: an index row whose blob vanished is
// dead on replay, not a latent serving error.
func TestReopenDropsRowsWithMissingBlobs(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	key := machineKey("commit", "dead", "text")
	sum := put(t, s, key, "to be unlinked")
	keep := machineKey("commit", "live", "text")
	put(t, s, keep, "kept")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	hexSum := hex.EncodeToString(sum[:])
	if err := os.Remove(filepath.Join(dir, "blobs", hexSum[:2], hexSum[2:])); err != nil {
		t.Fatal(err)
	}

	reopened := mustOpen(t, dir)
	if _, _, _, _, ok := reopened.Get(key); ok {
		t.Fatal("row with missing blob survived replay")
	}
	if _, _, _, _, ok := reopened.Get(keep); !ok {
		t.Fatal("intact row lost")
	}
}

// TestCorruptBlobReadsAsMiss: content is re-verified on Get, so flipped
// bits degrade to a miss and the row is dropped.
func TestCorruptBlobReadsAsMiss(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	key := machineKey("commit", "bits", "text")
	sum := put(t, s, key, "pristine content")
	hexSum := hex.EncodeToString(sum[:])
	path := filepath.Join(dir, "blobs", hexSum[:2], hexSum[2:])
	if err := os.WriteFile(path, []byte("tampered content"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, ok := s.Get(key); ok {
		t.Fatal("corrupt blob served")
	}
	if s.Len() != 0 {
		t.Fatalf("corrupt row not dropped: Len = %d", s.Len())
	}
}

// TestSizeBoundEvictsLRU: beyond the byte limit the least recently used
// rows go first, and their blobs are unlinked once unreferenced.
func TestSizeBoundEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	content := strings.Repeat("x", 100)
	var keys []Key
	for i := 0; i < 4; i++ {
		key := machineKey("commit", fmt.Sprintf("lru%d", i), "text")
		put(t, s, key, content+fmt.Sprint(i))
		keys = append(keys, key)
	}
	// Touch key 0 so key 1 is the LRU victim.
	if _, _, _, _, ok := s.Get(keys[0]); !ok {
		t.Fatal("touch miss")
	}
	s.SetLimit(3 * 101)
	if s.Len() != 3 {
		t.Fatalf("Len after limit = %d, want 3", s.Len())
	}
	if _, _, _, _, ok := s.Get(keys[1]); ok {
		t.Fatal("LRU victim survived")
	}
	if _, _, _, _, ok := s.Get(keys[0]); !ok {
		t.Fatal("recently used entry evicted")
	}
	if st := s.Stats(); st.Evictions != 1 || st.Bytes > 3*101 {
		t.Fatalf("stats = %+v", st)
	}
	// Victim blob gone from disk; survivors intact.
	left := 0
	filepath.Walk(filepath.Join(dir, "blobs"), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			left++
		}
		return nil
	})
	if left != 3 {
		t.Fatalf("%d blobs on disk, want 3", left)
	}
}

// TestSharedBlobSurvivesPartialEviction: two keys with identical content
// share one blob; evicting one key keeps the blob for the other.
func TestSharedBlobSurvivesPartialEviction(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	a := machineKey("commit", "sharea", "text")
	b := machineKey("commit", "shareb", "text")
	put(t, s, a, "identical bytes")
	put(t, s, b, "identical bytes")
	if st := s.Stats(); st.Bytes != int64(len("identical bytes")) {
		t.Fatalf("shared blob double-counted: %+v", st)
	}
	s.EvictModel("", map[string]bool{"sharea": true})
	if _, _, _, _, ok := s.Get(b); !ok {
		t.Fatal("shared blob unlinked while still referenced")
	}
}

// TestEvictModel removes rows by owner name and by fingerprint set, which
// is how the pipeline purges an unregistered model's disk footprint.
func TestEvictModel(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	put(t, s, machineKey("lease", "leasefp", "text"), "lease machine")
	put(t, s, Key{Model: "lease", Param: 3, Format: "efsm"}, "lease efsm")
	put(t, s, machineKey("commit", "commitfp", "text"), "commit machine")

	if n := s.EvictModel("lease", map[string]bool{"leasefp": true}); n != 2 {
		t.Fatalf("EvictModel removed %d rows, want 2", n)
	}
	if _, _, _, _, ok := s.Get(machineKey("lease", "leasefp", "text")); ok {
		t.Fatal("machine row survived model eviction")
	}
	if _, _, _, _, ok := s.Get(Key{Model: "lease", Param: 3, Format: "efsm"}); ok {
		t.Fatal("EFSM row survived model eviction")
	}
	if _, _, _, _, ok := s.Get(machineKey("commit", "commitfp", "text")); !ok {
		t.Fatal("unrelated model evicted")
	}
}

// TestEvictionsSurviveReopen: del rows are replayed, so an evicted key
// stays evicted after restart.
func TestEvictionsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	gone := machineKey("lease", "gonefp", "text")
	put(t, s, gone, "gone")
	put(t, s, machineKey("commit", "stayfp", "text"), "stay")
	s.EvictModel("lease", nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	reopened := mustOpen(t, dir)
	if _, _, _, _, ok := reopened.Get(gone); ok {
		t.Fatal("evicted row resurrected by replay")
	}
	if reopened.Len() != 1 {
		t.Fatalf("Len = %d, want 1", reopened.Len())
	}
}

// TestCompactRewritesLog: compaction drops tombstones and the store still
// replays correctly afterwards.
func TestCompactRewritesLog(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	for i := 0; i < 6; i++ {
		put(t, s, machineKey("m", fmt.Sprintf("c%d", i), "text"), fmt.Sprintf("v%d", i))
	}
	for i := 0; i < 5; i++ {
		s.EvictModel("", map[string]bool{fmt.Sprintf("c%d", i): true})
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "index.log"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 1 {
		t.Fatalf("compacted log has %d lines, want 1", lines)
	}
	// The compacted store keeps accepting writes and replays cleanly.
	put(t, s, machineKey("m", "after", "text"), "after-compact")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	reopened := mustOpen(t, dir)
	if reopened.Len() != 2 {
		t.Fatalf("Len after compact+reopen = %d, want 2", reopened.Len())
	}
}

// TestReopenCompactsTombstoneHeavyLog: Open rewrites the log when
// tombstones outnumber live rows.
func TestReopenCompactsTombstoneHeavyLog(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	for i := 0; i < 4; i++ {
		put(t, s, machineKey("m", fmt.Sprintf("t%d", i), "text"), fmt.Sprintf("v%d", i))
	}
	for i := 0; i < 3; i++ {
		s.EvictModel("", map[string]bool{fmt.Sprintf("t%d", i): true})
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	reopened := mustOpen(t, dir)
	reopened.Close()
	data, err := os.ReadFile(filepath.Join(dir, "index.log"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 1 {
		t.Fatalf("log has %d lines after auto-compaction, want 1", lines)
	}
}

// TestPutSameKeySameContentIsIdempotent: re-putting identical bytes under
// an existing key neither duplicates rows nor grows the log's live state.
func TestPutSameKeySameContentIsIdempotent(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	key := machineKey("commit", "idem", "text")
	put(t, s, key, "same bytes")
	put(t, s, key, "same bytes")
	if st := s.Stats(); st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPutReplacesChangedContent: a key re-put with different bytes serves
// the new bytes, and the orphaned old blob is accounted out.
func TestPutReplacesChangedContent(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	key := Key{Model: "m", Param: 2, Format: "efsm"}
	put(t, s, key, "old bytes")
	put(t, s, key, "new longer bytes")
	data, _, _, _, ok := s.Get(key)
	if !ok || string(data) != "new longer bytes" {
		t.Fatalf("Get = %q, %v", data, ok)
	}
	if st := s.Stats(); st.Bytes != int64(len("new longer bytes")) {
		t.Fatalf("bytes = %d, want %d", st.Bytes, len("new longer bytes"))
	}
}

func TestPurgeRemovesEverything(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	put(t, s, machineKey("m", "p1", "text"), "one")
	put(t, s, machineKey("m", "p2", "text"), "two")
	if n := s.Purge(); n != 2 {
		t.Fatalf("Purge = %d, want 2", n)
	}
	if st := s.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after purge = %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if reopened := mustOpen(t, dir); reopened.Len() != 0 {
		t.Fatalf("purged store reopened with %d rows", reopened.Len())
	}
}

// TestIngestVerifiesContent: a replica push whose bytes do not match the
// advertised sum must be rejected before anything reaches the index.
func TestIngestVerifiesContent(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	key := machineKey("commit", "fpaa", "text")
	data := []byte("propagated artefact")
	sum := sha256.Sum256(data)

	if err := s.Ingest(key, data, "zz-not-hex", "text/plain", ".txt"); err == nil {
		t.Fatal("Ingest accepted a malformed sum")
	}
	wrong := sha256.Sum256([]byte("other bytes"))
	if err := s.Ingest(key, data, hex.EncodeToString(wrong[:]), "text/plain", ".txt"); err == nil {
		t.Fatal("Ingest accepted mismatched content")
	}
	if s.Len() != 0 {
		t.Fatalf("rejected ingests left %d index rows", s.Len())
	}
	if err := s.Ingest(key, data, hex.EncodeToString(sum[:]), "text/plain", ".txt"); err != nil {
		t.Fatal(err)
	}
	got, gotSum, _, _, ok := s.Get(key)
	if !ok || string(got) != string(data) || gotSum != sum {
		t.Fatalf("Get after ingest = %q, %v", got, ok)
	}
}

// TestConcurrentIngestSameBlob: many writers racing to ingest the same
// content-addressed blob — under the same key and under a second key
// sharing the bytes — must leave a consistent index: one entry per key,
// the shared blob's bytes counted once, and a clean replay on reopen.
func TestConcurrentIngestSameBlob(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	data := []byte("shared replica bytes")
	sum := sha256.Sum256(data)
	hexSum := hex.EncodeToString(sum[:])
	keyA := machineKey("commit", "fp-shared", "text")
	keyB := machineKey("commit", "fp-shared", "dot")

	const writers = 16
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		key := keyA
		if i%2 == 1 {
			key = keyB
		}
		wg.Add(1)
		go func(key Key) {
			defer wg.Done()
			errs <- s.Ingest(key, data, hexSum, "text/plain", ".txt")
		}(key)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	st := s.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 (one per key)", st.Entries)
	}
	if st.Bytes != int64(len(data)) {
		t.Fatalf("bytes = %d, want %d (shared blob counted once)", st.Bytes, len(data))
	}
	for _, key := range []Key{keyA, keyB} {
		got, gotSum, _, _, ok := s.Get(key)
		if !ok || string(got) != string(data) || gotSum != sum {
			t.Fatalf("Get(%v) = %q, %v", key, got, ok)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	reopened := mustOpen(t, dir)
	if st := reopened.Stats(); st.Entries != 2 || st.Bytes != int64(len(data)) {
		t.Fatalf("reopened stats = %+v", st)
	}
}
