// Package store is the content-addressed on-disk artefact store that sits
// under the artefact pipeline's render memo. Every rendered artefact is
// persisted as a sha256-named blob plus an index row keyed the same way the
// pipeline keys its in-memory memo — machine artefacts by (model
// fingerprint, format), EFSM artefacts by (model, parameter, format) — so
// a restarted serve process answers every previously rendered artefact
// from disk instead of regenerating it (the ROADMAP's "cold-start warm,
// survives restarts" tier).
//
// Layout under the store directory:
//
//	blobs/<hh>/<sha256-hex>   artefact content, named by its own hash
//	index.log                 JSONL rows: put/del per key
//
// Blobs are written tmp-file-then-rename with an fsync in between, so a
// crash never leaves a partially written blob under its final name. The
// index is an append-only log; reopening replays it, ignoring an
// unparsable trailing line (the torn write of a crash) and rows whose blob
// is missing, and compacts the log when tombstones outnumber live rows.
// Blob content is verified against its name on every read, so disk
// corruption degrades to a cache miss, never to serving wrong bytes.
//
// The store is size-bounded: beyond SetLimit bytes of unique blob content,
// least-recently-used index rows are evicted and their blobs deleted once
// no surviving row references them (two keys may share one blob when their
// rendered bytes are equal).
package store

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// Key addresses one artefact in the index. Machine artefacts carry the hex
// model fingerprint and are shared by every model that generates under it;
// EFSM artefacts have no machine fingerprint and are keyed by (model,
// parameter) instead.
type Key struct {
	// Model is the registry name the artefact was rendered for. For
	// machine artefacts it records the first owner (lookup ignores it);
	// for EFSM artefacts it is part of the key.
	Model string
	// Param is the resolved model parameter.
	Param int
	// Format is the registry format name.
	Format string
	// Fingerprint is the hex model fingerprint; empty for EFSM artefacts.
	Fingerprint string
}

// id returns the index-map key: fingerprint-addressed for machine
// artefacts, (model, param)-addressed for EFSM artefacts.
func (k Key) id() string {
	if k.Fingerprint != "" {
		return "m/" + k.Fingerprint + "/" + k.Format
	}
	return "e/" + k.Model + "/" + strconv.Itoa(k.Param) + "/" + k.Format
}

// row is the JSONL wire form of one index mutation.
type row struct {
	Op     string `json:"op"` // "put" or "del"
	Model  string `json:"model,omitempty"`
	Param  int    `json:"param,omitempty"`
	Format string `json:"format,omitempty"`
	FP     string `json:"fp,omitempty"`
	Sum    string `json:"sum,omitempty"`
	Media  string `json:"media,omitempty"`
	Ext    string `json:"ext,omitempty"`
	Size   int64  `json:"size,omitempty"`
}

// entry is one live index row in memory.
type entry struct {
	key   Key
	sum   [sha256.Size]byte
	media string
	ext   string
	size  int64
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	// Entries is the number of live index rows; Bytes the unique blob
	// bytes they reference (shared blobs counted once).
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Hits and Misses count Get lookups; a hit includes reading and
	// verifying the blob from disk.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Puts counts index rows written; Evictions rows dropped by the size
	// bound; Errors I/O or verification failures (each degraded to a miss
	// or a skipped persist, never to a wrong answer).
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
	Errors    int64 `json:"errors"`
}

// Store is a content-addressed artefact store rooted at one directory. It
// is safe for concurrent use.
type Store struct {
	dir string

	mu      sync.Mutex
	log     *os.File
	logw    *bufio.Writer
	entries map[string]*entry
	// order tracks recency (front = least recently used) for the size
	// bound, mirroring the generation cache's LRU bookkeeping.
	order []string
	// refs counts live index rows per blob hex, so a blob shared by two
	// keys survives the eviction of one.
	refs      map[string]int
	bytes     int64
	limit     int64
	tombstone int

	hits, misses, puts, evictions, errors int64
}

// Open opens (creating if necessary) the store rooted at dir and replays
// its index. Rows whose blob file is missing are dropped; an unparsable
// line ends the replay of that line only. When tombstones outnumber live
// rows the log is compacted in place.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     dir,
		entries: make(map[string]*entry),
		refs:    make(map[string]int),
	}
	if err := s.replay(); err != nil {
		return nil, err
	}
	if s.tombstone > len(s.entries) {
		if err := s.compactLocked(); err != nil {
			return nil, err
		}
	}
	log, err := os.OpenFile(s.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.log = log
	s.logw = bufio.NewWriter(log)
	return s, nil
}

func (s *Store) indexPath() string { return filepath.Join(s.dir, "index.log") }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// replay loads the index log into memory. A line that fails to decode is
// skipped: the only expected cause is the torn final line of a crashed
// append, and skipping a hypothetically corrupt interior line costs at
// most a regeneration.
func (s *Store) replay() error {
	f, err := os.Open(s.indexPath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r row
		if err := json.Unmarshal(line, &r); err != nil {
			continue
		}
		key := Key{Model: r.Model, Param: r.Param, Format: r.Format, Fingerprint: r.FP}
		switch r.Op {
		case "put":
			sum, err := hex.DecodeString(r.Sum)
			if err != nil || len(sum) != sha256.Size {
				continue
			}
			if _, err := os.Stat(s.blobPath(r.Sum)); err != nil {
				// The blob vanished (crash between GC unlink and log
				// append, or external tampering): the row is dead.
				continue
			}
			e := &entry{key: key, media: r.Media, ext: r.Ext, size: r.Size}
			copy(e.sum[:], sum)
			s.insertLocked(e)
		case "del":
			s.removeLocked(key.id())
			s.tombstone++
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: replay: %w", err)
	}
	return nil
}

// insertLocked adds or replaces the entry and fixes refcounts and byte
// accounting.
func (s *Store) insertLocked(e *entry) {
	id := e.key.id()
	if old, ok := s.entries[id]; ok {
		s.unrefLocked(old, false)
		s.touchLocked(id)
	} else {
		s.order = append(s.order, id)
	}
	s.entries[id] = e
	hexSum := hex.EncodeToString(e.sum[:])
	if s.refs[hexSum] == 0 {
		s.bytes += e.size
	}
	s.refs[hexSum]++
}

// removeLocked drops the entry by id, returning it (nil when absent).
func (s *Store) removeLocked(id string) *entry {
	e, ok := s.entries[id]
	if !ok {
		return nil
	}
	delete(s.entries, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.unrefLocked(e, true)
	return e
}

// unrefLocked releases the entry's blob reference; when unlink is set the
// blob file itself is deleted once unreferenced.
func (s *Store) unrefLocked(e *entry, unlink bool) {
	hexSum := hex.EncodeToString(e.sum[:])
	s.refs[hexSum]--
	if s.refs[hexSum] > 0 {
		return
	}
	delete(s.refs, hexSum)
	s.bytes -= e.size
	if unlink {
		os.Remove(s.blobPath(hexSum))
	}
}

func (s *Store) touchLocked(id string) {
	for i, o := range s.order {
		if o == id {
			copy(s.order[i:], s.order[i+1:])
			s.order[len(s.order)-1] = id
			return
		}
	}
}

func (s *Store) blobPath(hexSum string) string {
	return filepath.Join(s.dir, "blobs", hexSum[:2], hexSum[2:])
}

// Get returns the stored artefact bytes and metadata for the key. The
// blob is re-verified against its content hash on every read; a missing
// or corrupt blob is dropped from the index and reported as a miss.
func (s *Store) Get(key Key) (data []byte, sum [sha256.Size]byte, media, ext string, ok bool) {
	id := key.id()
	s.mu.Lock()
	e, found := s.entries[id]
	if !found {
		s.misses++
		s.mu.Unlock()
		return nil, sum, "", "", false
	}
	hexSum := hex.EncodeToString(e.sum[:])
	s.mu.Unlock()

	// Disk I/O runs outside the lock; concurrent eviction of this entry at
	// worst deletes the blob first, which reads as a miss below.
	blob, err := os.ReadFile(s.blobPath(hexSum))
	if err != nil || sha256.Sum256(blob) != e.sum {
		s.mu.Lock()
		if cur, still := s.entries[id]; still && cur == e {
			s.removeLocked(id)
			s.appendLocked(row{Op: "del", Model: key.Model, Param: key.Param, Format: key.Format, FP: key.Fingerprint})
		}
		s.misses++
		if err != nil && !os.IsNotExist(err) {
			s.errors++
		}
		s.mu.Unlock()
		return nil, sum, "", "", false
	}

	s.mu.Lock()
	s.hits++
	s.touchLocked(id)
	media, ext = e.media, e.ext
	s.mu.Unlock()
	return blob, e.sum, media, ext, true
}

// Put persists one artefact under the key: the blob is written atomically
// (tmp + fsync + rename, skipped when the content already exists) and an
// index row is appended. Beyond the size limit, least-recently-used
// entries are evicted — never the one just written.
func (s *Store) Put(key Key, data []byte, sum [sha256.Size]byte, media, ext string) error {
	hexSum := hex.EncodeToString(sum[:])
	if err := s.writeBlob(hexSum, data); err != nil {
		s.mu.Lock()
		s.errors++
		s.mu.Unlock()
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	id := key.id()
	if old, ok := s.entries[id]; ok && old.sum == sum {
		s.touchLocked(id)
		return nil
	}
	e := &entry{key: key, sum: sum, media: media, ext: ext, size: int64(len(data))}
	s.insertLocked(e)
	s.puts++
	if err := s.appendLocked(row{
		Op: "put", Model: key.Model, Param: key.Param, Format: key.Format,
		FP: key.Fingerprint, Sum: hexSum, Media: media, Ext: ext, Size: e.size,
	}); err != nil {
		return err
	}
	s.evictLocked(id)
	return nil
}

// Ingest persists an artefact pushed by a remote node, verifying the
// content against the advertised hex sum before anything touches disk —
// a replica never trusts the wire. The write itself is Put, so ingest
// and local renders share the refcounted blob space and LRU policy.
func (s *Store) Ingest(key Key, data []byte, hexSum, media, ext string) error {
	want, err := hex.DecodeString(hexSum)
	if err != nil || len(want) != sha256.Size {
		return fmt.Errorf("store: ingest %s: malformed content sum %q", key.id(), hexSum)
	}
	sum := sha256.Sum256(data)
	if !bytes.Equal(sum[:], want) {
		return fmt.Errorf("store: ingest %s: content does not match advertised sum %s", key.id(), hexSum)
	}
	return s.Put(key, data, sum, media, ext)
}

// writeBlob writes the content under its hash name, atomically. An
// existing blob is trusted: its name is its hash, and Get re-verifies.
func (s *Store) writeBlob(hexSum string, data []byte) error {
	path := s.blobPath(hexSum)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// appendLocked writes one index row and flushes it to the log file.
func (s *Store) appendLocked(r row) error {
	if s.logw == nil {
		return nil
	}
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := s.logw.Write(data); err != nil {
		s.errors++
		return fmt.Errorf("store: index append: %w", err)
	}
	if err := s.logw.Flush(); err != nil {
		s.errors++
		return fmt.Errorf("store: index append: %w", err)
	}
	if r.Op == "del" {
		s.tombstone++
	}
	return nil
}

// evictLocked drops least-recently-used entries until the byte bound is
// met, sparing the id just written.
func (s *Store) evictLocked(spare string) {
	if s.limit <= 0 {
		return
	}
	for s.bytes > s.limit && len(s.order) > 1 {
		victim := s.order[0]
		if victim == spare {
			if len(s.order) == 1 {
				return
			}
			// Rotate the spared id to the MRU end and retry.
			s.touchLocked(victim)
			continue
		}
		e := s.removeLocked(victim)
		if e == nil {
			continue
		}
		s.evictions++
		s.appendLocked(row{Op: "del", Model: e.key.Model, Param: e.key.Param, Format: e.key.Format, FP: e.key.Fingerprint})
	}
}

// SetLimit bounds the unique blob bytes kept on disk; zero (the default)
// means unbounded. Lowering the limit evicts immediately.
func (s *Store) SetLimit(bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.limit = bytes
	s.evictLocked("")
}

// EvictModel removes every index row owned by the model name or keyed by
// one of its machine fingerprints (hex), deleting blobs that no surviving
// row references, and returns the number of rows removed. The pipeline
// calls it when a dynamically registered model is unregistered, so a later
// registration under the same name can never be served the departed
// model's bytes from disk.
func (s *Store) EvictModel(model string, fingerprints map[string]bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var victims []string
	for id, e := range s.entries {
		if e.key.Model == model || (e.key.Fingerprint != "" && fingerprints[e.key.Fingerprint]) {
			victims = append(victims, id)
		}
	}
	for _, id := range victims {
		e := s.removeLocked(id)
		if e == nil {
			continue
		}
		s.appendLocked(row{Op: "del", Model: e.key.Model, Param: e.key.Param, Format: e.key.Format, FP: e.key.Fingerprint})
	}
	return len(victims)
}

// Purge removes every index row and every blob, returning the number of
// rows removed.
func (s *Store) Purge() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.entries)
	for _, e := range s.entries {
		s.appendLocked(row{Op: "del", Model: e.key.Model, Param: e.key.Param, Format: e.key.Format, FP: e.key.Fingerprint})
		os.Remove(s.blobPath(hex.EncodeToString(e.sum[:])))
	}
	s.entries = make(map[string]*entry)
	s.refs = make(map[string]int)
	s.order = nil
	s.bytes = 0
	return n
}

// Compact rewrites the index log to the live rows only, atomically.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.logw != nil {
		if err := s.logw.Flush(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := s.compactLocked(); err != nil {
		return err
	}
	// Reopen the append handle on the rewritten file.
	if s.log != nil {
		s.log.Close()
	}
	log, err := os.OpenFile(s.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.log = log
	s.logw = bufio.NewWriter(log)
	return nil
}

// compactLocked rewrites the index to the live rows in LRU order (so a
// replay reconstructs the same recency), tmp + rename.
func (s *Store) compactLocked() error {
	tmp, err := os.CreateTemp(s.dir, ".index-*")
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	for _, id := range s.order {
		e, ok := s.entries[id]
		if !ok {
			continue
		}
		data, err := json.Marshal(row{
			Op: "put", Model: e.key.Model, Param: e.key.Param, Format: e.key.Format,
			FP: e.key.Fingerprint, Sum: hex.EncodeToString(e.sum[:]),
			Media: e.media, Ext: e.ext, Size: e.size,
		})
		if err != nil {
			tmp.Close()
			return err
		}
		if _, err := w.Write(append(data, '\n')); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compact: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.indexPath()); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	s.tombstone = 0
	return nil
}

// Len returns the number of live index rows.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:   len(s.entries),
		Bytes:     s.bytes,
		Hits:      s.hits,
		Misses:    s.misses,
		Puts:      s.puts,
		Evictions: s.evictions,
		Errors:    s.errors,
	}
}

// Close flushes and closes the index log. The store must not be used
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.logw != nil {
		if err := s.logw.Flush(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.logw = nil
	}
	if s.log != nil {
		err := s.log.Close()
		s.log = nil
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}
