package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
)

// Event is one decoded trace element: the message carried by one input
// line.
type Event struct {
	// Line is the 1-based input line number.
	Line int
	// Msg is the machine message type decoded from the line; empty when
	// Skip is set.
	Msg string
	// Skip marks a non-blank line the decoder produced no event for
	// (e.g. no transition pattern matched); the monitor reports it as a
	// skipped verdict instead of a delivery.
	Skip bool
}

// Decoder produces the event stream of one trace. Next returns io.EOF at
// the end of the input and a *DecodeError for undecodable lines; any
// other error is an I/O failure of the underlying reader.
type Decoder interface {
	Next() (Event, error)
}

// DecodeError reports an input line that is not a trace element in the
// decoder's format.
type DecodeError struct {
	// Line is the 1-based position of the offending line.
	Line int
	// Reason describes why the line was rejected.
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("trace: line %d: %s", e.Line, e.Reason)
}

// maxLineBytes bounds a single trace line. The monitor's memory use is
// bounded by this, never by the trace length.
const maxLineBytes = 1 << 20

// lineReader is the scanning core shared by the decoders: it hands out
// one line at a time from a reused buffer, tracking the 1-based line
// number. Returned slices are valid only until the next call.
type lineReader struct {
	sc   *bufio.Scanner
	line int
}

func newLineReader(r io.Reader) *lineReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	return &lineReader{sc: sc}
}

// next returns the next input line without its terminator. io.EOF marks
// the end of input; a too-long line is a *DecodeError.
func (lr *lineReader) next() ([]byte, error) {
	if !lr.sc.Scan() {
		if err := lr.sc.Err(); err != nil {
			if err == bufio.ErrTooLong {
				return nil, &DecodeError{Line: lr.line + 1,
					Reason: fmt.Sprintf("line exceeds %d bytes", maxLineBytes)}
			}
			return nil, fmt.Errorf("trace: read line %d: %w", lr.line+1, err)
		}
		return nil, io.EOF
	}
	lr.line++
	return lr.sc.Bytes(), nil
}

// interner deduplicates message strings so steady-state decoding of a
// trace over a machine's (small) vocabulary performs no per-line
// allocation. The table is bounded; an adversarial stream of distinct
// messages falls back to plain allocation rather than growing memory.
type interner map[string]string

const maxInterned = 1024

func (in interner) get(b []byte) string {
	// The string(b) conversions in the map index expressions do not
	// allocate (compiler-recognised pattern).
	if s, ok := in[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(in) < maxInterned {
		in[s] = s
	}
	return s
}

// JSONLDecoder decodes JSON Lines traces: one event per line, either a
// bare JSON string naming the message ("VOTE") or an object with a
// "msg" member ({"msg":"VOTE", ...}; other members are ignored, so
// richer event records pass through untouched). Blank lines are
// skipped silently.
type JSONLDecoder struct {
	lr     *lineReader
	intern interner
}

// NewJSONLDecoder returns a JSON Lines decoder over r.
func NewJSONLDecoder(r io.Reader) *JSONLDecoder {
	return &JSONLDecoder{lr: newLineReader(r), intern: make(interner)}
}

// jsonlEvent is the decoded object form of one JSON Lines event.
type jsonlEvent struct {
	Msg string `json:"msg"`
}

// Next implements Decoder.
func (d *JSONLDecoder) Next() (Event, error) {
	for {
		b, err := d.lr.next()
		if err != nil {
			return Event{}, err
		}
		b = bytes.TrimSpace(b)
		if len(b) == 0 {
			continue
		}
		switch b[0] {
		case '{':
			// Fast path for the canonical {"msg":"..."} shape with no
			// escapes: the message bytes are extracted and interned
			// without invoking the JSON decoder.
			if msg, ok := fastMsg(b); ok {
				return Event{Line: d.lr.line, Msg: d.intern.get(msg)}, nil
			}
			var ev jsonlEvent
			if err := json.Unmarshal(b, &ev); err != nil {
				return Event{}, &DecodeError{Line: d.lr.line,
					Reason: fmt.Sprintf("invalid JSON event: %v", err)}
			}
			if ev.Msg == "" {
				return Event{}, &DecodeError{Line: d.lr.line,
					Reason: `JSON event object has no "msg" member`}
			}
			return Event{Line: d.lr.line, Msg: ev.Msg}, nil
		case '"':
			var msg string
			if err := json.Unmarshal(b, &msg); err != nil || msg == "" {
				return Event{}, &DecodeError{Line: d.lr.line,
					Reason: "invalid JSON string event"}
			}
			return Event{Line: d.lr.line, Msg: msg}, nil
		default:
			return Event{}, &DecodeError{Line: d.lr.line,
				Reason: fmt.Sprintf("not a JSON Lines event (starts with %q); expected a string or an object with a \"msg\" member", b[0])}
		}
	}
}

// fastMsg extracts the msg value from a {"msg":"..."} prefix when the
// value contains no escapes. ok is false when the line needs the full
// JSON decoder.
func fastMsg(b []byte) (msg []byte, ok bool) {
	const prefix = `{"msg":"`
	if len(b) < len(prefix) || string(b[:len(prefix)]) != prefix {
		return nil, false
	}
	rest := b[len(prefix):]
	end := bytes.IndexByte(rest, '"')
	if end < 0 || bytes.IndexByte(rest[:end], '\\') >= 0 {
		return nil, false
	}
	switch {
	case end == 0:
		return nil, false // empty msg: let the slow path reject it
	case len(rest) == end+1 || rest[end+1] == '}' || rest[end+1] == ',':
		return rest[:end], true
	default:
		return nil, false
	}
}

// Rule maps a transition pattern to a machine message, go-rst style: a
// line matching Pattern decodes to Message with capture-group references
// ($1, ${name}) expanded.
type Rule struct {
	Pattern *regexp.Regexp
	// Message is the message template; when empty, "$1" (the first
	// capture group, or the whole match when the pattern declares no
	// groups) is used.
	Message string
}

// ParseRule compiles a rule from its flag/query syntax:
//
//	PATTERN             message is capture group 1 (or the whole match)
//	PATTERN=>TEMPLATE   message is TEMPLATE with $1/${name} expanded
func ParseRule(s string) (Rule, error) {
	pattern, template := s, ""
	if i := indexRuleSep(s); i >= 0 {
		pattern, template = s[:i], s[i+2:]
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return Rule{}, fmt.Errorf("trace: bad match rule %q: %v", s, err)
	}
	return Rule{Pattern: re, Message: template}, nil
}

// indexRuleSep locates the last "=>" separator, so patterns containing
// "=>" can still be written by putting the template after the final one.
func indexRuleSep(s string) int {
	for i := len(s) - 2; i >= 0; i-- {
		if s[i] == '=' && s[i+1] == '>' {
			return i
		}
	}
	return -1
}

// DefaultRules returns the regex front-end's fallback rule set: the
// first ALL_CAPS token of a line (two or more characters) is the
// message — the shape of the repository's machine vocabularies (VOTE,
// STORE_ACK, SUCC_FAIL, ...).
func DefaultRules() []Rule {
	return []Rule{{Pattern: regexp.MustCompile(`\b([A-Z][A-Z0-9_]+)\b`)}}
}

// RegexDecoder decodes text traces through an ordered rule list:
// the first matching rule supplies the message (first-match wins, like
// go-rst's per-state transition lists). Non-blank lines matching no rule
// decode to skip events; blank lines are skipped silently.
type RegexDecoder struct {
	lr     *lineReader
	rules  []Rule
	intern interner
	buf    []byte
}

// NewRegexDecoder returns a regex decoder over r. A nil or empty rule
// list selects DefaultRules.
func NewRegexDecoder(r io.Reader, rules []Rule) *RegexDecoder {
	if len(rules) == 0 {
		rules = DefaultRules()
	}
	return &RegexDecoder{lr: newLineReader(r), rules: rules, intern: make(interner)}
}

// Next implements Decoder.
func (d *RegexDecoder) Next() (Event, error) {
	for {
		b, err := d.lr.next()
		if err != nil {
			return Event{}, err
		}
		if len(bytes.TrimSpace(b)) == 0 {
			continue
		}
		for i := range d.rules {
			rule := &d.rules[i]
			m := rule.Pattern.FindSubmatchIndex(b)
			if m == nil {
				continue
			}
			d.buf = d.buf[:0]
			switch {
			case rule.Message != "":
				d.buf = rule.Pattern.Expand(d.buf, []byte(rule.Message), b, m)
			case len(m) >= 4 && m[2] >= 0:
				d.buf = append(d.buf, b[m[2]:m[3]]...)
			default:
				d.buf = append(d.buf, b[m[0]:m[1]]...)
			}
			if len(d.buf) == 0 {
				return Event{}, &DecodeError{Line: d.lr.line,
					Reason: fmt.Sprintf("match rule %q produced an empty message", rule.Pattern)}
			}
			return Event{Line: d.lr.line, Msg: d.intern.get(d.buf)}, nil
		}
		return Event{Line: d.lr.line, Skip: true}, nil
	}
}

// NewDecoder returns the decoder for a named trace format over r:
// "jsonl" (JSON Lines, the default for an empty name) or "regex" (text
// via transition patterns; rules may be nil for the defaults). Unknown
// formats return an error naming the known ones.
func NewDecoder(format string, r io.Reader, rules []Rule) (Decoder, error) {
	switch format {
	case "", FormatJSONL:
		return NewJSONLDecoder(r), nil
	case FormatRegex:
		return NewRegexDecoder(r, rules), nil
	default:
		return nil, fmt.Errorf("trace: unknown trace format %q (known: %s, %s)",
			format, FormatJSONL, FormatRegex)
	}
}

// Trace format names accepted by NewDecoder, the check CLI and the
// check API route.
const (
	FormatJSONL = "jsonl"
	FormatRegex = "regex"
)
