package trace

import (
	"context"
	"errors"
	"fmt"
	"io"

	"asagen/internal/core"
	"asagen/internal/runtime"
)

// ErrStopped is returned by Monitor.Run when an observer ended the run
// by returning false. The Report covers everything observed up to the
// stop; no terminal verdict should be emitted for such a run.
var ErrStopped = errors.New("trace: observer stopped the run")

// Observer receives verdicts as the monitor produces them. Returning
// false stops the run (Monitor.Run returns ErrStopped), mirroring the
// yield convention of iter.Seq so iterator adapters need no goroutines.
type Observer interface {
	Observe(Verdict) bool
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Verdict) bool

// Observe implements Observer.
func (f ObserverFunc) Observe(v Verdict) bool { return f(v) }

// target is one machine under observation, with its per-run state.
type target struct {
	name     string
	machine  *core.StateMachine
	inst     *runtime.Instance
	budget   int
	finished bool
}

// Monitor drives one or more generated machines over a decoded event
// stream at line rate, judging every delivery. A Monitor is reusable —
// each Run starts every machine from its start state — but not safe for
// concurrent Runs.
type Monitor struct {
	targets   []*target
	observers []Observer
	tolerance int
	keepGoing bool
}

// MonitorOption configures a Monitor.
type MonitorOption func(*Monitor) error

// WithTarget adds a machine to observe. The name labels its verdicts
// when the monitor drives more than one machine; with a single target
// the label is omitted from verdicts entirely.
func WithTarget(name string, machine *core.StateMachine) MonitorOption {
	return func(m *Monitor) error {
		if machine == nil {
			return fmt.Errorf("trace: nil machine for target %q", name)
		}
		inst, err := runtime.New(machine, nil)
		if err != nil {
			return fmt.Errorf("trace: target %q: %w", name, err)
		}
		m.targets = append(m.targets, &target{name: name, machine: machine, inst: inst})
		return nil
	}
}

// WithTolerance sets the number of rejected deliveries each target
// absorbs before a further rejection becomes a violation. The default
// is 0: the first rejection violates.
func WithTolerance(n int) MonitorOption {
	return func(m *Monitor) error {
		if n < 0 {
			return fmt.Errorf("trace: negative tolerance %d", n)
		}
		m.tolerance = n
		return nil
	}
}

// WithObserver registers verdict observers, called in registration
// order for every verdict.
func WithObserver(obs ...Observer) MonitorOption {
	return func(m *Monitor) error {
		m.observers = append(m.observers, obs...)
		return nil
	}
}

// WithKeepGoing makes Run read the whole trace even after a violation,
// counting every violation, instead of stopping at the first one.
func WithKeepGoing() MonitorOption {
	return func(m *Monitor) error {
		m.keepGoing = true
		return nil
	}
}

// NewMonitor returns a monitor over the configured targets. At least
// one WithTarget is required.
func NewMonitor(opts ...MonitorOption) (*Monitor, error) {
	m := &Monitor{}
	for _, opt := range opts {
		if err := opt(m); err != nil {
			return nil, err
		}
	}
	if len(m.targets) == 0 {
		return nil, errors.New("trace: monitor needs at least one target machine")
	}
	return m, nil
}

// emit delivers one verdict to every observer; false means stop.
func (m *Monitor) emit(v Verdict) bool {
	for _, obs := range m.observers {
		if !obs.Observe(v) {
			return false
		}
	}
	return true
}

// Run drives the targets over the decoder's event stream until the
// input ends, the context is cancelled, an observer stops the run, or —
// unless WithKeepGoing — a violation occurs. The Report covers
// everything judged; err classifies abnormal ends: a *DecodeError for
// malformed input, the context error for cancellation, ErrStopped for
// an observer stop, and nil for a completed run (conforming or not —
// consult Report.Conforming).
func (m *Monitor) Run(ctx context.Context, dec Decoder) (Report, error) {
	var rep Report
	for _, t := range m.targets {
		t.inst.Reset()
		t.budget = m.tolerance
		t.finished = false
	}
	single := len(m.targets) == 1
	done := ctx.Done()
	for {
		select {
		case <-done:
			return rep, ctx.Err()
		default:
		}
		ev, err := dec.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			var de *DecodeError
			if errors.As(err, &de) {
				rep.Lines = max(rep.Lines, de.Line)
				return rep, de
			}
			return rep, err
		}
		rep.Lines = ev.Line
		if ev.Skip {
			rep.Skipped++
			if !m.emit(Verdict{Line: ev.Line, Kind: KindSkipped,
				Detail: "no transition pattern matched"}) {
				return rep, ErrStopped
			}
			continue
		}
		rep.Events++
		for _, t := range m.targets {
			name := t.name
			if single {
				name = ""
			}
			actions, err := t.inst.Deliver(ev.Msg)
			if err == nil {
				rep.Accepted++
				if !m.emit(Verdict{Line: ev.Line, Target: name, Event: ev.Msg,
					Kind: KindAccepted, State: t.inst.StateName(), Actions: actions}) {
					return rep, ErrStopped
				}
				if t.inst.Finished() && !t.finished {
					t.finished = true
					if !m.emit(Verdict{Line: ev.Line, Target: name, Event: ev.Msg,
						Kind: KindFinished, State: t.inst.StateName()}) {
						return rep, ErrStopped
					}
				}
				continue
			}
			// Rejected delivery: tolerated while the budget lasts,
			// a violation afterwards.
			if t.budget > 0 {
				t.budget--
				rep.Ignored++
				if !m.emit(Verdict{Line: ev.Line, Target: name, Event: ev.Msg,
					Kind: KindIgnored, State: t.inst.StateName(), Detail: err.Error()}) {
					return rep, ErrStopped
				}
				continue
			}
			rep.Violations++
			if rep.FirstViolation == 0 {
				rep.FirstViolation = ev.Line
			}
			if !m.emit(Verdict{Line: ev.Line, Target: name, Event: ev.Msg,
				Kind: KindViolation, State: t.inst.StateName(), Detail: err.Error()}) {
				return rep, ErrStopped
			}
			if !m.keepGoing {
				m.finalize(&rep, single)
				return rep, nil
			}
		}
	}
	m.finalize(&rep, single)
	return rep, nil
}

// finalize fills the report fields derived from the targets' end state.
func (m *Monitor) finalize(rep *Report, single bool) {
	rep.Finished = true
	for _, t := range m.targets {
		if !t.inst.Finished() {
			rep.Finished = false
		}
	}
	if single {
		rep.FinalState = m.targets[0].inst.StateName()
	}
}
