package trace

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"asagen/internal/core"
)

// chainModel is a three-state machine: 0 -inc-> 1 -inc-> 2 -inc-> FINISHED,
// with a "ring" phase transition (and action) from state 1 only.
type chainModel struct{}

func (chainModel) Name() string   { return "chain" }
func (chainModel) Parameter() int { return 2 }
func (chainModel) Components() []core.StateComponent {
	return []core.StateComponent{core.NewIntComponent("n", 2)}
}
func (chainModel) Messages() []string { return []string{"inc", "ring"} }
func (chainModel) Start() core.Vector { return core.Vector{0} }
func (chainModel) Apply(v core.Vector, msg string) (core.Effect, bool) {
	switch msg {
	case "inc":
		if v[0] == 2 {
			return core.Effect{Finished: true}, true
		}
		return core.Effect{Target: core.Vector{v[0] + 1}}, true
	case "ring":
		if v[0] != 1 {
			return core.Effect{}, false
		}
		return core.Effect{Target: core.Vector{1}, Actions: []string{"->bell"}}, true
	default:
		return core.Effect{}, false
	}
}
func (chainModel) DescribeState(core.Vector) []string { return nil }

func chainMachine(t *testing.T) *core.StateMachine {
	t.Helper()
	m, err := core.Generate(context.Background(), chainModel{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return m
}

func collect(t *testing.T, machine *core.StateMachine, input string, opts ...MonitorOption) ([]Verdict, Report, error) {
	t.Helper()
	var verdicts []Verdict
	opts = append([]MonitorOption{
		WithTarget("", machine),
		WithObserver(ObserverFunc(func(v Verdict) bool {
			verdicts = append(verdicts, v)
			return true
		})),
	}, opts...)
	m, err := NewMonitor(opts...)
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	rep, err := m.Run(context.Background(), NewJSONLDecoder(strings.NewReader(input)))
	return verdicts, rep, err
}

func TestMonitorConformingTrace(t *testing.T) {
	machine := chainMachine(t)
	input := `{"msg":"inc"}
"ring"

{"msg":"inc","seq":7}
{"msg":"inc"}
`
	verdicts, rep, err := collect(t, machine, input)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	kinds := make([]Kind, 0, len(verdicts))
	for _, v := range verdicts {
		kinds = append(kinds, v.Kind)
	}
	want := []Kind{KindAccepted, KindAccepted, KindAccepted, KindAccepted, KindFinished}
	if len(kinds) != len(want) {
		t.Fatalf("verdicts = %v, want kinds %v", verdicts, want)
	}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("verdict %d kind = %s, want %s (all: %v)", i, kinds[i], k, verdicts)
		}
	}
	if verdicts[1].Actions == nil || verdicts[1].Actions[0] != "->bell" {
		t.Errorf("ring verdict actions = %v", verdicts[1].Actions)
	}
	if verdicts[1].Line != 2 {
		t.Errorf("ring verdict line = %d, want 2 (blank line must still count)", verdicts[1].Line)
	}
	if !rep.Conforming() || !rep.Finished {
		t.Errorf("report = %+v, want conforming and finished", rep)
	}
	if rep.Lines != 5 || rep.Events != 4 || rep.Accepted != 4 {
		t.Errorf("report counters = %+v", rep)
	}
	if rep.FinalState == "" {
		t.Error("single-target report has no final state")
	}
}

func TestMonitorViolationStops(t *testing.T) {
	machine := chainMachine(t)
	// ring is not applicable in state 0: first delivery violates at
	// tolerance 0 and the run stops before the trailing inc.
	verdicts, rep, err := collect(t, machine, "\"ring\"\n\"inc\"\n")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(verdicts) != 1 || verdicts[0].Kind != KindViolation {
		t.Fatalf("verdicts = %v, want one violation", verdicts)
	}
	if verdicts[0].Detail == "" {
		t.Error("violation verdict has no detail")
	}
	if rep.Conforming() || rep.Violations != 1 || rep.FirstViolation != 1 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Events != 1 {
		t.Errorf("events = %d, want 1 (run must stop at the violation)", rep.Events)
	}
}

func TestMonitorTolerance(t *testing.T) {
	machine := chainMachine(t)
	verdicts, rep, err := collect(t, machine, "\"ring\"\n\"ring\"\n\"inc\"\n", WithTolerance(1))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(verdicts) != 2 {
		t.Fatalf("verdicts = %v", verdicts)
	}
	if verdicts[0].Kind != KindIgnored || verdicts[1].Kind != KindViolation {
		t.Fatalf("kinds = %s, %s; want ignored, violation", verdicts[0].Kind, verdicts[1].Kind)
	}
	if rep.Ignored != 1 || rep.Violations != 1 || rep.FirstViolation != 2 {
		t.Errorf("report = %+v", rep)
	}
}

func TestMonitorKeepGoing(t *testing.T) {
	machine := chainMachine(t)
	verdicts, rep, err := collect(t, machine, "\"ring\"\n\"ring\"\n\"inc\"\n", WithKeepGoing())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Violations != 2 || rep.FirstViolation != 1 {
		t.Errorf("report = %+v", rep)
	}
	if len(verdicts) != 3 || verdicts[2].Kind != KindAccepted {
		t.Errorf("verdicts = %v", verdicts)
	}
}

func TestMonitorTrailingEventsAfterFinish(t *testing.T) {
	machine := chainMachine(t)
	input := "\"inc\"\n\"inc\"\n\"inc\"\n\"inc\"\n"
	verdicts, rep, err := collect(t, machine, input)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	last := verdicts[len(verdicts)-1]
	if last.Kind != KindViolation || last.Line != 4 {
		t.Fatalf("trailing delivery verdict = %+v, want violation at line 4", last)
	}
	if rep.Conforming() {
		t.Error("trailing events after finish must violate")
	}
}

func TestMonitorObserverStop(t *testing.T) {
	machine := chainMachine(t)
	var seen int
	m, err := NewMonitor(
		WithTarget("", machine),
		WithObserver(ObserverFunc(func(Verdict) bool {
			seen++
			return false
		})))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background(), NewJSONLDecoder(strings.NewReader("\"inc\"\n\"inc\"\n")))
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if seen != 1 || rep.Accepted != 1 {
		t.Errorf("seen=%d report=%+v", seen, rep)
	}
}

func TestMonitorCancellation(t *testing.T) {
	machine := chainMachine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := NewMonitor(WithTarget("", machine))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(ctx, NewJSONLDecoder(strings.NewReader("\"inc\"\n"))); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestMonitorMalformedTrace(t *testing.T) {
	machine := chainMachine(t)
	verdicts, rep, err := collect(t, machine, "\"inc\"\n{\"msg\": \n")
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("Run = %v, want DecodeError", err)
	}
	if de.Line != 2 {
		t.Errorf("DecodeError line = %d, want 2", de.Line)
	}
	if len(verdicts) != 1 || rep.Accepted != 1 {
		t.Errorf("pre-failure verdicts = %v, report = %+v", verdicts, rep)
	}
	if rep.Lines != 2 {
		t.Errorf("report lines = %d, want 2", rep.Lines)
	}
}

func TestMonitorMultiTarget(t *testing.T) {
	machine := chainMachine(t)
	var verdicts []Verdict
	m, err := NewMonitor(
		WithTarget("a", machine),
		WithTarget("b", machine),
		WithObserver(ObserverFunc(func(v Verdict) bool {
			verdicts = append(verdicts, v)
			return true
		})))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background(), NewJSONLDecoder(strings.NewReader("\"inc\"\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 2 || verdicts[0].Target != "a" || verdicts[1].Target != "b" {
		t.Fatalf("multi-target verdicts = %v", verdicts)
	}
	if rep.Accepted != 2 || rep.Events != 1 {
		t.Errorf("report = %+v", rep)
	}
	if rep.FinalState != "" {
		t.Errorf("multi-target report has final state %q", rep.FinalState)
	}
}

func TestMonitorReuse(t *testing.T) {
	machine := chainMachine(t)
	m, err := NewMonitor(WithTarget("", machine))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rep, err := m.Run(context.Background(), NewJSONLDecoder(strings.NewReader("\"inc\"\n\"inc\"\n\"inc\"\n")))
		if err != nil || !rep.Conforming() || !rep.Finished {
			t.Fatalf("run %d: rep=%+v err=%v", i, rep, err)
		}
	}
}

func TestNewMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(); err == nil {
		t.Error("NewMonitor with no targets accepted")
	}
	if _, err := NewMonitor(WithTarget("x", nil)); err == nil {
		t.Error("nil machine accepted")
	}
	if _, err := NewMonitor(WithTarget("", chainMachine(t)), WithTolerance(-1)); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestJSONLDecoder(t *testing.T) {
	in := `"VOTE"
{"msg":"COMMIT"}
{"msg":"UPDATE","seq":12,"node":"n3"}

{"seq": 1, "msg": "FREE"}
`
	d := NewJSONLDecoder(strings.NewReader(in))
	var msgs []string
	var lines []int
	for {
		ev, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		msgs = append(msgs, ev.Msg)
		lines = append(lines, ev.Line)
	}
	if got, want := strings.Join(msgs, ","), "VOTE,COMMIT,UPDATE,FREE"; got != want {
		t.Errorf("msgs = %s, want %s", got, want)
	}
	if lines[3] != 5 {
		t.Errorf("lines = %v; blank line must advance the count", lines)
	}
}

func TestJSONLDecoderInterning(t *testing.T) {
	d := NewJSONLDecoder(strings.NewReader("{\"msg\":\"VOTE\"}\n{\"msg\":\"VOTE\"}\n"))
	a, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Next()
	if err != nil {
		t.Fatal(err)
	}
	// Interning must hand back the identical string, not merely an equal
	// one (zero-allocation steady state).
	if a.Msg != b.Msg {
		t.Fatalf("messages differ: %q vs %q", a.Msg, b.Msg)
	}
}

func TestJSONLDecoderErrors(t *testing.T) {
	cases := []string{
		"{\"msg\": \n",     // truncated JSON
		"{\"seq\":1}\n",    // no msg member
		"VOTE\n",           // bare token is not JSON Lines
		"\"\"\n",           // empty message
		"{\"msg\":\"\"}\n", // empty message via object
	}
	for _, in := range cases {
		d := NewJSONLDecoder(strings.NewReader(in))
		_, err := d.Next()
		var de *DecodeError
		if !errors.As(err, &de) {
			t.Errorf("Next(%q) = %v, want DecodeError", in, err)
		} else if de.Line != 1 || de.Error() == "" {
			t.Errorf("Next(%q) DecodeError = %+v", in, de)
		}
	}
}

func TestFastMsg(t *testing.T) {
	cases := []struct {
		in   string
		msg  string
		fast bool
	}{
		{`{"msg":"VOTE"}`, "VOTE", true},
		{`{"msg":"VOTE","seq":1}`, "VOTE", true},
		{`{"msg":"a\"b"}`, "", false},
		{`{"msg":""}`, "", false},
		{`{"seq":1,"msg":"VOTE"}`, "", false},
		{`{"msg":"VOTE" }`, "", false},
	}
	for _, c := range cases {
		msg, ok := fastMsg([]byte(c.in))
		if ok != c.fast || (ok && string(msg) != c.msg) {
			t.Errorf("fastMsg(%s) = %q, %v; want %q, %v", c.in, msg, ok, c.msg, c.fast)
		}
	}
}

func TestRegexDecoderDefaultRules(t *testing.T) {
	in := `2026-08-07T12:00:01Z node3 recv UPDATE seq=1
# operator note: nothing interesting here
12:00:02 node3 recv STORE_ACK from n1
`
	d := NewRegexDecoder(strings.NewReader(in), nil)
	ev, err := d.Next()
	if err != nil || ev.Msg != "UPDATE" {
		t.Fatalf("Next = %+v, %v; want UPDATE", ev, err)
	}
	ev, err = d.Next()
	if err != nil || !ev.Skip || ev.Line != 2 {
		t.Fatalf("Next = %+v, %v; want skip at line 2", ev, err)
	}
	ev, err = d.Next()
	if err != nil || ev.Msg != "STORE_ACK" {
		t.Fatalf("Next = %+v, %v; want STORE_ACK", ev, err)
	}
	if _, err := d.Next(); err != io.EOF {
		t.Fatalf("trailing Next = %v, want EOF", err)
	}
}

func TestRegexDecoderCustomRules(t *testing.T) {
	rule, err := ParseRule(`recv (\w+)=>RECV_$1`)
	if err != nil {
		t.Fatal(err)
	}
	d := NewRegexDecoder(strings.NewReader("node recv vote\nnode sent ack\n"), []Rule{rule})
	ev, err := d.Next()
	if err != nil || ev.Msg != "RECV_vote" {
		t.Fatalf("Next = %+v, %v; want RECV_vote", ev, err)
	}
	ev, err = d.Next()
	if err != nil || !ev.Skip {
		t.Fatalf("Next = %+v, %v; want skip", ev, err)
	}
}

func TestParseRuleErrors(t *testing.T) {
	if _, err := ParseRule("([unclosed"); err == nil {
		t.Error("bad pattern accepted")
	}
	if r, err := ParseRule(`a=>b=>$0`); err != nil || r.Message != "$0" || r.Pattern.String() != "a=>b" {
		t.Errorf("last-separator split = %+v, %v", r, err)
	}
}

func TestVerdictJSONCanonical(t *testing.T) {
	v := Verdict{Line: 3, Event: "VOTE", Kind: KindAccepted, State: "2.1",
		Actions: []string{"->vote", "->commit"}}
	got := string(v.AppendJSON(nil))
	want := `{"line":3,"event":"VOTE","kind":"accepted","state":"2.1","actions":["->vote","->commit"]}`
	if got != want {
		t.Errorf("AppendJSON = %s, want %s", got, want)
	}

	rep := Report{Lines: 5, Events: 4, Accepted: 3, Ignored: 1, Violations: 0, Finished: true, FinalState: "FIN"}
	sum := Terminal(rep, nil)
	got = string(sum.AppendJSON(nil))
	want = `{"kind":"summary","stats":{"lines":5,"events":4,"accepted":3,"ignored":1,"skipped":0,"violations":0,"finished":true,"final_state":"FIN"}}`
	if got != want {
		t.Errorf("summary JSON = %s, want %s", got, want)
	}
}

func TestVerdictJSONEscaping(t *testing.T) {
	v := Verdict{Kind: KindMalformed, Detail: "quote \" slash \\ newline \n bell \x07"}
	got := string(v.AppendJSON(nil))
	want := `{"kind":"malformed","detail":"quote \" slash \\ newline \n bell \u0007"}`
	if got != want {
		t.Errorf("escaped JSON = %s, want %s", got, want)
	}
}

func TestTerminal(t *testing.T) {
	if v := Terminal(Report{}, &DecodeError{Line: 7, Reason: "bad"}); v.Kind != KindMalformed || v.Line != 7 {
		t.Errorf("Terminal(decode) = %+v", v)
	}
	if v := Terminal(Report{}, context.Canceled); v.Kind != KindAborted {
		t.Errorf("Terminal(cancel) = %+v", v)
	}
	if v := Terminal(Report{Violations: 1}, nil); v.Kind != KindSummary || v.Stats == nil || v.Stats.Violations != 1 {
		t.Errorf("Terminal(nil) = %+v", v)
	}
}
