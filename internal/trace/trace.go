// Package trace is the streaming conformance-monitoring layer: it drives
// generated state machines over unbounded event streams at line rate and
// classifies every delivery into a typed verdict. This is the paper's
// dynamic-deployment path (§4.2) turned outward — instead of the machine
// acting inside the protocol, it runs beside a live system and judges the
// message stream the system actually produced, the way go-rst's state
// machine consumes an unbounded list of input lines through per-state
// transition patterns and observer callbacks.
//
// The layer has three parts:
//
//   - Decoders turn an io.Reader into a stream of Events, one per input
//     line: JSON Lines for structured traces, and a regex front-end that
//     maps captured text lines to machine messages (go-rst style).
//   - A Monitor feeds the events to one or more runtime.Instances,
//     emitting a Verdict per delivery to registered observers and
//     accumulating a Report (lines, verdicts, violations,
//     first-violation position).
//   - A canonical JSON encoding of verdicts shared by every consumer
//     (SSE wire stream, CLI, SDK iterator), so the same trace always
//     produces byte-identical verdict streams on every path.
//
// Memory is bounded by the longest input line, never by the trace: lines
// are decoded, judged and discarded one at a time.
package trace

import "strconv"

// Kind classifies one verdict.
type Kind uint8

const (
	// KindAccepted reports a message the machine consumed: a transition
	// fired, the actions on it were performed.
	KindAccepted Kind = iota
	// KindIgnored reports a tolerated rejection: the machine records no
	// transition for the message in its current state (guard-rejected or
	// out-of-vocabulary), and the monitor's tolerance budget absorbed it.
	KindIgnored
	// KindSkipped reports an input line the decoder produced no event
	// for (e.g. no regex transition pattern matched).
	KindSkipped
	// KindFinished reports the machine reaching its finish state. It is
	// emitted in addition to the KindAccepted verdict of the delivery
	// that finished the machine.
	KindFinished
	// KindViolation reports a rejected message after the tolerance
	// budget was exhausted: the trace does not conform to the machine.
	KindViolation
	// KindMalformed reports undecodable input: the trace is neither
	// conforming nor violating, it is not a trace in the declared format.
	KindMalformed
	// KindAborted reports a run stopped by context cancellation.
	KindAborted
	// KindSummary is the terminal verdict of a completed run; it carries
	// the Report.
	KindSummary
)

var kindNames = [...]string{
	KindAccepted:  "accepted",
	KindIgnored:   "ignored",
	KindSkipped:   "skipped",
	KindFinished:  "finished",
	KindViolation: "violation",
	KindMalformed: "malformed",
	KindAborted:   "aborted",
	KindSummary:   "summary",
}

// String returns the verdict kind's wire name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Verdict is the monitor's judgement of one delivery (or one stream
// event for the terminal kinds). The zero Line means the verdict is not
// anchored to an input line.
type Verdict struct {
	// Line is the 1-based input line the verdict judges.
	Line int
	// Target names the machine the verdict applies to; empty when the
	// monitor drives a single machine.
	Target string
	// Event is the delivered message type.
	Event string
	// Kind classifies the verdict.
	Kind Kind
	// State is the machine state after the delivery (unchanged for
	// rejections).
	State string
	// Actions are the actions performed by an accepted delivery, in
	// transition order. The slice is shared with the machine structure
	// and must not be mutated.
	Actions []string
	// Detail carries the rejection reason, the skip reason, or the
	// decode error message.
	Detail string
	// Stats is the run report; non-nil only on KindSummary.
	Stats *Report
}

// Report accumulates a run's statistics; it is carried by the summary
// verdict and returned by Monitor.Run.
type Report struct {
	// Lines counts input lines consumed, including blank and skipped
	// ones.
	Lines int
	// Events counts decoded events delivered to the machines.
	Events int
	// Accepted, Ignored, Skipped and Violations count verdicts by kind
	// (across all targets).
	Accepted   int
	Ignored    int
	Skipped    int
	Violations int
	// FirstViolation is the 1-based line of the first violation; 0 when
	// the trace conforms.
	FirstViolation int
	// Finished reports whether every target machine reached its finish
	// state.
	Finished bool
	// FinalState is the final machine state when the monitor drives a
	// single target; empty otherwise.
	FinalState string
}

// Conforming reports whether the monitored trace conformed: every
// delivered event was consumed or tolerated.
func (r Report) Conforming() bool { return r.Violations == 0 }

// AppendJSON appends the canonical JSON encoding of the verdict to dst
// and returns the extended slice. The encoding is deterministic — fixed
// key order, no insignificant whitespace — so equal verdict streams are
// byte-identical wherever they are rendered (SSE, CLI, SDK).
func (v Verdict) AppendJSON(dst []byte) []byte {
	dst = append(dst, '{')
	if v.Line > 0 {
		dst = append(dst, `"line":`...)
		dst = strconv.AppendInt(dst, int64(v.Line), 10)
		dst = append(dst, ',')
	}
	if v.Target != "" {
		dst = append(dst, `"target":`...)
		dst = appendJSONString(dst, v.Target)
		dst = append(dst, ',')
	}
	if v.Event != "" {
		dst = append(dst, `"event":`...)
		dst = appendJSONString(dst, v.Event)
		dst = append(dst, ',')
	}
	dst = append(dst, `"kind":`...)
	dst = appendJSONString(dst, v.Kind.String())
	if v.State != "" {
		dst = append(dst, `,"state":`...)
		dst = appendJSONString(dst, v.State)
	}
	if len(v.Actions) > 0 {
		dst = append(dst, `,"actions":[`...)
		for i, a := range v.Actions {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, a)
		}
		dst = append(dst, ']')
	}
	if v.Detail != "" {
		dst = append(dst, `,"detail":`...)
		dst = appendJSONString(dst, v.Detail)
	}
	if v.Stats != nil {
		dst = append(dst, `,"stats":`...)
		dst = v.Stats.AppendJSON(dst)
	}
	return append(dst, '}')
}

// AppendJSON appends the canonical JSON encoding of the report to dst.
func (r Report) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"lines":`...)
	dst = strconv.AppendInt(dst, int64(r.Lines), 10)
	dst = append(dst, `,"events":`...)
	dst = strconv.AppendInt(dst, int64(r.Events), 10)
	dst = append(dst, `,"accepted":`...)
	dst = strconv.AppendInt(dst, int64(r.Accepted), 10)
	dst = append(dst, `,"ignored":`...)
	dst = strconv.AppendInt(dst, int64(r.Ignored), 10)
	dst = append(dst, `,"skipped":`...)
	dst = strconv.AppendInt(dst, int64(r.Skipped), 10)
	dst = append(dst, `,"violations":`...)
	dst = strconv.AppendInt(dst, int64(r.Violations), 10)
	if r.FirstViolation > 0 {
		dst = append(dst, `,"first_violation":`...)
		dst = strconv.AppendInt(dst, int64(r.FirstViolation), 10)
	}
	dst = append(dst, `,"finished":`...)
	dst = strconv.AppendBool(dst, r.Finished)
	if r.FinalState != "" {
		dst = append(dst, `,"final_state":`...)
		dst = appendJSONString(dst, r.FinalState)
	}
	return append(dst, '}')
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal. Control
// characters, quotes and backslashes are escaped per RFC 8259; all other
// bytes pass through verbatim (valid UTF-8 in means valid UTF-8 out).
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue
		}
		dst = append(dst, s[start:i]...)
		switch c {
		case '"', '\\':
			dst = append(dst, '\\', c)
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		default:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		start = i + 1
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// Terminal derives the terminal verdict of a run from Monitor.Run's
// results: a summary for a completed run (conforming or not), a
// malformed verdict for a decode failure, and an aborted verdict for a
// cancelled run. Callers that stopped the run themselves (ErrStopped)
// should not emit a terminal verdict.
func Terminal(rep Report, err error) Verdict {
	switch e := err.(type) {
	case nil:
		r := rep
		return Verdict{Kind: KindSummary, Stats: &r}
	case *DecodeError:
		return Verdict{Line: e.Line, Kind: KindMalformed, Detail: e.Error()}
	default:
		return Verdict{Kind: KindAborted, Detail: err.Error()}
	}
}
