package trace

import "strconv"

// Tally accumulates verdict counts by kind. It is the aggregation half of
// the verdict vocabulary: streaming consumers (the monitor's observers, the
// fleet simulation harness) count classifications into a Tally and merge
// per-worker tallies deterministically, the way latency histograms are
// merged. The zero value is ready to use. A Tally is not safe for
// concurrent use; count into per-worker tallies and Merge them.
type Tally struct {
	counts [KindSummary + 1]int64
}

// Add counts one verdict of the given kind. Kinds outside the vocabulary
// are ignored.
func (t *Tally) Add(k Kind) {
	if int(k) < len(t.counts) {
		t.counts[k]++
	}
}

// Count returns the number of verdicts counted for the kind.
func (t *Tally) Count(k Kind) int64 {
	if int(k) < len(t.counts) {
		return t.counts[k]
	}
	return 0
}

// Total returns the number of verdicts counted across all kinds.
func (t *Tally) Total() int64 {
	var n int64
	for _, c := range t.counts {
		n += c
	}
	return n
}

// Observe implements Observer by counting the verdict's kind; it never
// stops the run.
func (t *Tally) Observe(v Verdict) bool {
	t.Add(v.Kind)
	return true
}

var _ Observer = (*Tally)(nil)

// Merge folds o's counts into t.
func (t *Tally) Merge(o *Tally) {
	if o == nil {
		return
	}
	for i, c := range o.counts {
		t.counts[i] += c
	}
}

// AppendJSON appends the canonical JSON encoding of the tally to dst: one
// key per kind in declaration order, every kind always present, so equal
// tallies are byte-identical and reports embedding them are diffable.
func (t *Tally) AppendJSON(dst []byte) []byte {
	dst = append(dst, '{')
	for k := Kind(0); int(k) < len(t.counts); k++ {
		if k > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, k.String())
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, t.counts[k], 10)
	}
	return append(dst, '}')
}

// MarshalJSON implements json.Marshaler with the canonical encoding.
func (t *Tally) MarshalJSON() ([]byte, error) {
	return t.AppendJSON(nil), nil
}
