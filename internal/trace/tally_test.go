package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTallyAddCountTotal(t *testing.T) {
	var tl Tally
	tl.Add(KindAccepted)
	tl.Add(KindAccepted)
	tl.Add(KindViolation)
	tl.Add(Kind(200)) // outside the vocabulary: ignored
	if got := tl.Count(KindAccepted); got != 2 {
		t.Errorf("Count(accepted) = %d, want 2", got)
	}
	if got := tl.Count(KindViolation); got != 1 {
		t.Errorf("Count(violation) = %d, want 1", got)
	}
	if got := tl.Count(Kind(200)); got != 0 {
		t.Errorf("Count(out of range) = %d, want 0", got)
	}
	if got := tl.Total(); got != 3 {
		t.Errorf("Total = %d, want 3", got)
	}
}

func TestTallyObserve(t *testing.T) {
	var tl Tally
	for _, k := range []Kind{KindAccepted, KindFinished, KindSummary} {
		if !tl.Observe(Verdict{Kind: k}) {
			t.Fatalf("Observe(%v) stopped the run", k)
		}
	}
	if tl.Count(KindAccepted) != 1 || tl.Count(KindFinished) != 1 || tl.Count(KindSummary) != 1 {
		t.Errorf("observed counts wrong: %s", mustJSON(t, &tl))
	}
}

func TestTallyMerge(t *testing.T) {
	var a, b, combined Tally
	for i := 0; i < 10; i++ {
		k := Kind(i % int(KindSummary+1))
		combined.Add(k)
		if i%2 == 0 {
			a.Add(k)
		} else {
			b.Add(k)
		}
	}
	a.Merge(&b)
	a.Merge(nil) // no-op
	for k := Kind(0); k <= KindSummary; k++ {
		if a.Count(k) != combined.Count(k) {
			t.Errorf("Count(%v): merged %d != combined %d", k, a.Count(k), combined.Count(k))
		}
	}
	if a.Total() != combined.Total() {
		t.Errorf("Total: merged %d != combined %d", a.Total(), combined.Total())
	}
}

// TestTallyCanonicalJSON: every kind is always present, in declaration
// order, so equal tallies are byte-identical — the property fleet reports
// rely on for golden diffing.
func TestTallyCanonicalJSON(t *testing.T) {
	var a, b Tally
	a.Add(KindViolation)
	b.Add(KindViolation)
	aj, bj := mustJSON(t, &a), mustJSON(t, &b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("equal tallies marshalled differently:\n%s\n%s", aj, bj)
	}
	want := `{"accepted":0,"ignored":0,"skipped":0,"finished":0,"violation":1,"malformed":0,"aborted":0,"summary":0}`
	if string(aj) != want {
		t.Errorf("canonical JSON = %s, want %s", aj, want)
	}
	// The encoding must be valid JSON with all kinds as keys.
	var decoded map[string]int64
	if err := json.Unmarshal(aj, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != int(KindSummary)+1 {
		t.Errorf("decoded %d keys, want %d", len(decoded), int(KindSummary)+1)
	}
}

func mustJSON(t *testing.T, v json.Marshaler) []byte {
	t.Helper()
	data, err := v.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}
