package render

import (
	"errors"
	"fmt"
	"sort"

	"asagen/internal/core"
)

// This file defines the renderer abstraction and the format registry. The
// paper generates "various artefacts ... including diagrams, source-level
// protocol implementations and documentation" (§1); each artefact class is
// a Renderer registered under a stable format name, so commands and the
// artefact pipeline can select — or enumerate — formats without hardwiring
// a switch per format. The registration pattern mirrors the model registry
// in internal/models: a new format plugs into every command, the batch
// renderer and the serve endpoint with one Register call.

// Artifact is one rendered artefact: the bytes plus the metadata consumers
// need to store or serve it.
type Artifact struct {
	// Format is the registry name of the format that produced it.
	Format string
	// MediaType is the artefact's MIME type, for HTTP responses.
	MediaType string
	// Ext is the suggested filename extension, including the dot.
	Ext string
	// Data is the rendered content.
	Data []byte
}

// String returns the artefact content as a string.
func (a Artifact) String() string { return string(a.Data) }

// Renderer renders a generated state machine as one artefact class.
// Implementations must be safe for concurrent use of Render; registered
// factories return fresh instances so callers may also adjust exported
// configuration fields before rendering.
type Renderer interface {
	// Name returns the registry name of the format, e.g. "dot".
	Name() string
	// Render produces the artefact for the machine.
	Render(m *core.StateMachine) (Artifact, error)
}

// EFSMRenderer renders the parameter-independent EFSM generalisation
// (§5.3) instead of a concrete machine.
type EFSMRenderer interface {
	// Name returns the registry name of the format, e.g. "efsm-dot".
	Name() string
	// RenderEFSM produces the artefact for the EFSM.
	RenderEFSM(e *core.EFSM) (Artifact, error)
}

// ErrUnknownFormat reports a format name absent from the registry.
var ErrUnknownFormat = errors.New("render: unknown format")

// formatEntry holds the factory for one registered format; exactly one of
// the two fields is set.
type formatEntry struct {
	machine func() Renderer
	efsm    func() EFSMRenderer
}

var formats = map[string]formatEntry{}

// Register adds a machine-artefact format to the registry. The factory is
// invoked once to learn the format name, and again on every New call. It
// panics on duplicate or empty names — a programming error at package
// initialisation.
func Register(factory func() Renderer) {
	registerEntry(factory().Name(), formatEntry{machine: factory})
}

// RegisterEFSM adds an EFSM-artefact format to the registry.
func RegisterEFSM(factory func() EFSMRenderer) {
	registerEntry(factory().Name(), formatEntry{efsm: factory})
}

func registerEntry(name string, e formatEntry) {
	if name == "" {
		panic("render: register format with empty name")
	}
	if _, dup := formats[name]; dup {
		panic(fmt.Sprintf("render: duplicate registration of format %q", name))
	}
	formats[name] = e
}

// New returns a fresh renderer for a machine-artefact format.
func New(name string) (Renderer, error) {
	e, ok := formats[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (known: %v)", ErrUnknownFormat, name, Formats())
	}
	if e.machine == nil {
		return nil, fmt.Errorf("render: format %q renders EFSMs; use NewEFSM", name)
	}
	return e.machine(), nil
}

// NewEFSM returns a fresh renderer for an EFSM-artefact format.
func NewEFSM(name string) (EFSMRenderer, error) {
	e, ok := formats[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q (known: %v)", ErrUnknownFormat, name, Formats())
	}
	if e.efsm == nil {
		return nil, fmt.Errorf("render: format %q renders machines; use New", name)
	}
	return e.efsm(), nil
}

// Known reports whether the format name is registered.
func Known(name string) bool {
	_, ok := formats[name]
	return ok
}

// IsEFSMFormat reports whether the registered format renders the EFSM
// generalisation rather than a concrete machine.
func IsEFSMFormat(name string) bool {
	return formats[name].efsm != nil
}

// Formats returns all registered format names, sorted.
func Formats() []string {
	names := make([]string, 0, len(formats))
	for name := range formats {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MachineFormats returns the sorted names of formats rendering concrete
// machines.
func MachineFormats() []string {
	var names []string
	for name, e := range formats {
		if e.machine != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// EFSMFormats returns the sorted names of formats rendering the EFSM
// generalisation.
func EFSMFormats() []string {
	var names []string
	for name, e := range formats {
		if e.efsm != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

func init() {
	Register(func() Renderer { return NewTextRenderer() })
	Register(func() Renderer { return NewDotRenderer() })
	Register(func() Renderer { return NewXMLRenderer() })
	Register(func() Renderer { return NewGoSourceRenderer("") })
	Register(func() Renderer { return NewDocRenderer() })
	RegisterEFSM(func() EFSMRenderer { return NewEFSMTextRenderer() })
	RegisterEFSM(func() EFSMRenderer { return NewEFSMDotRenderer() })
}
