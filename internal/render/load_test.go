package render

import (
	"errors"
	"math/rand"
	"testing"

	"asagen/internal/runtime"
)

func TestLoadMachineXMLRoundTrip(t *testing.T) {
	machine := commitMachine(t, 4)
	xml, err := NewXMLRenderer().Render(machine)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMachineXML(xml.Data)
	if err != nil {
		t.Fatalf("LoadMachineXML: %v", err)
	}
	if loaded.ModelName != machine.ModelName || loaded.Parameter != machine.Parameter {
		t.Errorf("header = %s/%d", loaded.ModelName, loaded.Parameter)
	}
	if len(loaded.States) != len(machine.States) {
		t.Fatalf("states = %d, want %d", len(loaded.States), len(machine.States))
	}
	if loaded.TransitionCount() != machine.TransitionCount() {
		t.Errorf("transitions = %d, want %d", loaded.TransitionCount(), machine.TransitionCount())
	}
	if loaded.Start.Name != machine.Start.Name {
		t.Errorf("start = %s, want %s", loaded.Start.Name, machine.Start.Name)
	}
	if loaded.Finish == nil || loaded.Finish.Name != machine.Finish.Name {
		t.Error("finish state not preserved")
	}
}

// TestLoadedMachineExecutesIdentically drives the original and the
// XML-round-tripped machine with identical random schedules through the
// interpreter: states, actions and completion must agree — the shipped
// artefact is executable.
func TestLoadedMachineExecutesIdentically(t *testing.T) {
	machine := commitMachine(t, 4)
	xml, err := NewXMLRenderer().Render(machine)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMachineXML(xml.Data)
	if err != nil {
		t.Fatal(err)
	}

	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a, err := runtime.New(machine, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := runtime.New(loaded, nil)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 200 && !a.Finished(); step++ {
			msg := machine.Messages[rng.Intn(len(machine.Messages))]
			actsA, errA := a.Deliver(msg)
			actsB, errB := b.Deliver(msg)
			var ignA, ignB *runtime.IgnoredError
			if errors.As(errA, &ignA) != errors.As(errB, &ignB) {
				t.Fatalf("seed=%d step=%d %s: applicability diverges", seed, step, msg)
			}
			if len(actsA) != len(actsB) {
				t.Fatalf("seed=%d step=%d %s: actions diverge: %v vs %v", seed, step, msg, actsA, actsB)
			}
			for i := range actsA {
				if actsA[i] != actsB[i] {
					t.Fatalf("seed=%d step=%d: action %d differs", seed, step, i)
				}
			}
			if a.StateName() != b.StateName() || a.Finished() != b.Finished() {
				t.Fatalf("seed=%d step=%d: state diverges: %s vs %s", seed, step, a.StateName(), b.StateName())
			}
		}
	}
}

func TestLoadMachineXMLErrors(t *testing.T) {
	if _, err := LoadMachineXML([]byte("<not-xml")); err == nil {
		t.Error("malformed XML accepted")
	}
	if _, err := MachineFromDocument(nil); err == nil {
		t.Error("nil document accepted")
	}
	if _, err := MachineFromDocument(&XMLDiagram{}); err == nil {
		t.Error("empty document accepted")
	}

	tests := []struct {
		name string
		doc  XMLDiagram
	}{
		{"no start", XMLDiagram{States: []XMLState{{ID: "s0", Name: "a"}}}},
		{"duplicate id", XMLDiagram{States: []XMLState{
			{ID: "s0", Name: "a", Start: true}, {ID: "s0", Name: "b"},
		}}},
		{"two starts", XMLDiagram{States: []XMLState{
			{ID: "s0", Name: "a", Start: true}, {ID: "s1", Name: "b", Start: true},
		}}},
		{"missing id", XMLDiagram{States: []XMLState{{Name: "a", Start: true}}}},
		{"edge unknown source", XMLDiagram{
			States: []XMLState{{ID: "s0", Name: "a", Start: true}},
			Edges:  []XMLTransition{{From: "zz", To: "s0", Message: "m"}},
		}},
		{"edge unknown target", XMLDiagram{
			States: []XMLState{{ID: "s0", Name: "a", Start: true}},
			Edges:  []XMLTransition{{From: "s0", To: "zz", Message: "m"}},
		}},
		{"edge no message", XMLDiagram{
			States: []XMLState{{ID: "s0", Name: "a", Start: true}},
			Edges:  []XMLTransition{{From: "s0", To: "s0"}},
		}},
		{"duplicate message edge", XMLDiagram{
			States: []XMLState{{ID: "s0", Name: "a", Start: true}},
			Edges: []XMLTransition{
				{From: "s0", To: "s0", Message: "m"},
				{From: "s0", To: "s0", Message: "m"},
			},
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			doc := tt.doc
			if _, err := MachineFromDocument(&doc); err == nil {
				t.Error("malformed document accepted")
			}
		})
	}
}

// TestLoadedMachineRenders: the loaded machine feeds the text and DOT
// renderers without the original model.
func TestLoadedMachineRenders(t *testing.T) {
	machine := commitMachine(t, 4)
	xml, err := NewXMLRenderer().Render(machine)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMachineXML(xml.Data)
	if err != nil {
		t.Fatal(err)
	}
	if out, err := NewTextRenderer().Render(loaded); err != nil || len(out.Data) == 0 {
		t.Errorf("empty text artefact from loaded machine (err %v)", err)
	}
	if out, err := NewDotRenderer().Render(loaded); err != nil || len(out.Data) == 0 {
		t.Errorf("empty DOT artefact from loaded machine (err %v)", err)
	}
}
