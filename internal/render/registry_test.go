package render

import (
	"errors"
	"testing"
)

func TestRegistryCoversAllFormats(t *testing.T) {
	want := []string{"doc", "dot", "efsm", "efsm-dot", "go", "text", "xml"}
	got := Formats()
	if len(got) != len(want) {
		t.Fatalf("Formats() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Formats() = %v, want %v", got, want)
		}
	}
	for _, name := range MachineFormats() {
		if IsEFSMFormat(name) {
			t.Errorf("machine format %q reports as EFSM format", name)
		}
		r, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if r.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, r.Name())
		}
	}
	for _, name := range EFSMFormats() {
		if !IsEFSMFormat(name) {
			t.Errorf("EFSM format %q not reported as such", name)
		}
		r, err := NewEFSM(name)
		if err != nil {
			t.Fatalf("NewEFSM(%q): %v", name, err)
		}
		if r.Name() != name {
			t.Errorf("NewEFSM(%q).Name() = %q", name, r.Name())
		}
	}
}

func TestRegistryErrors(t *testing.T) {
	if _, err := New("nonsense"); !errors.Is(err, ErrUnknownFormat) {
		t.Errorf("New(nonsense) = %v, want ErrUnknownFormat", err)
	}
	if _, err := NewEFSM("nonsense"); !errors.Is(err, ErrUnknownFormat) {
		t.Errorf("NewEFSM(nonsense) = %v, want ErrUnknownFormat", err)
	}
	// Kind mismatches are rejected with a pointer to the right call.
	if _, err := New("efsm"); err == nil {
		t.Error("New(efsm) accepted an EFSM format")
	}
	if _, err := NewEFSM("text"); err == nil {
		t.Error("NewEFSM(text) accepted a machine format")
	}
	if Known("nonsense") || !Known("dot") {
		t.Error("Known misreports registration")
	}
}

// TestNewReturnsFreshInstances: callers may configure the returned
// renderer (e.g. the go package name) without affecting other users.
func TestNewReturnsFreshInstances(t *testing.T) {
	a, err := New("go")
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("go")
	if err != nil {
		t.Fatal(err)
	}
	ga, gb := a.(*GoSourceRenderer), b.(*GoSourceRenderer)
	ga.PackageName = "mutated"
	if gb.PackageName == "mutated" {
		t.Error("New returned a shared instance")
	}
}

// TestArtifactMetadata: every registered format declares a media type and
// an extension, and stamps its name into the artefact.
func TestArtifactMetadata(t *testing.T) {
	machine := commitMachine(t, 4)
	for _, name := range MachineFormats() {
		r, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		art, err := r.Render(machine)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if art.Format != name || art.MediaType == "" || art.Ext == "" || len(art.Data) == 0 {
			t.Errorf("%s: incomplete artefact metadata %+v", name, art)
		}
	}
}
