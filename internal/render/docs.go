package render

import (
	"strings"

	"asagen/internal/core"
)

// DocRenderer renders a generated machine as a markdown document: an
// overview table followed by a catalogue of states with their generated
// commentary and transitions. This is the paper's "documentation" artefact
// class (§1: "various artefacts are generated ... including diagrams,
// source-level protocol implementations and documentation").
type DocRenderer struct {
	// Title overrides the document title; derived from the model when
	// empty.
	Title string
}

// NewDocRenderer returns a DocRenderer with default settings.
func NewDocRenderer() *DocRenderer { return &DocRenderer{} }

// Name implements Renderer.
func (r *DocRenderer) Name() string { return "doc" }

// Render produces the markdown document.
func (r *DocRenderer) Render(m *core.StateMachine) (Artifact, error) {
	return Artifact{
		Format:    r.Name(),
		MediaType: "text/markdown; charset=utf-8",
		Ext:       ".md",
		Data:      []byte(r.renderDoc(m)),
	}, nil
}

func (r *DocRenderer) renderDoc(m *core.StateMachine) string {
	b := NewBuffer()
	title := r.Title
	if title == "" {
		title = "State machine `" + m.ModelName + "` (parameter " + itoa(m.Parameter) + ")"
	}
	b.AddLn("# ", title)
	b.BlankLn()
	b.AddLn("Generated from the abstract model; do not edit.")
	b.BlankLn()
	b.AddLn("| Property | Value |")
	b.AddLn("|---|---|")
	b.AddLn("| Model | `", m.ModelName, "` |")
	b.AddLn("| Parameter | ", itoa(m.Parameter), " |")
	b.AddLn("| Messages | ", codeList(m.Messages), " |")
	b.AddLn("| States (raw) | ", itoa(m.Stats.InitialStates), " |")
	b.AddLn("| States (reachable) | ", itoa(m.Stats.ReachableStates), " |")
	b.AddLn("| States (merged) | ", itoa(m.Stats.FinalStates), " |")
	b.AddLn("| Transitions | ", itoa(m.TransitionCount()), " |")
	b.AddLn("| Start state | `", m.Start.Name, "` |")
	if m.Finish != nil {
		b.AddLn("| Finish state | `", m.Finish.Name, "` |")
	}
	b.BlankLn()
	b.AddLn("Component encoding of state names: `", componentList(m), "`.")
	b.BlankLn()

	b.AddLn("## States")
	b.BlankLn()
	for _, s := range m.States {
		b.AddLn("### `", s.Name, "`")
		b.BlankLn()
		if len(s.MergedNames) > 1 {
			b.AddLn("Combines equivalent states: ", codeList(s.MergedNames), ".")
			b.BlankLn()
		}
		for _, line := range s.Annotations {
			b.AddLn(line, "  ") // two-space markdown line break
		}
		if len(s.Annotations) > 0 {
			b.BlankLn()
		}
		if len(s.Transitions) == 0 {
			if s.Final {
				b.AddLn("_Terminal state._")
			} else {
				b.AddLn("_No outgoing transitions._")
			}
			b.BlankLn()
			continue
		}
		b.AddLn("| Message | Actions | Next state |")
		b.AddLn("|---|---|---|")
		for _, msg := range s.SortedMessages(m.Messages) {
			tr := s.Transitions[msg]
			actions := "—"
			if len(tr.Actions) > 0 {
				actions = codeList(tr.Actions)
			}
			b.AddLn("| `", msg, "` | ", actions, " | `", tr.Target.Name, "` |")
		}
		b.BlankLn()
	}
	return b.String()
}

func codeList(items []string) string {
	if len(items) == 0 {
		return ""
	}
	quoted := make([]string, len(items))
	for i, it := range items {
		quoted[i] = "`" + it + "`"
	}
	return strings.Join(quoted, ", ")
}
