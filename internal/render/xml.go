package render

import (
	"encoding/xml"
	"fmt"

	"asagen/internal/core"
)

// The XML renderer emits a diagram-interchange document equivalent to the
// one the paper imported into its diagramming tool (Fig. 15): states with
// stable identifiers and annotated edges, consumable by external tooling.

// XMLDiagram is the root element of the diagram interchange document.
type XMLDiagram struct {
	XMLName   xml.Name        `xml:"stateMachineDiagram"`
	Model     string          `xml:"model,attr"`
	Parameter int             `xml:"parameter,attr"`
	Messages  []string        `xml:"messages>message"`
	States    []XMLState      `xml:"states>state"`
	Edges     []XMLTransition `xml:"transitions>transition"`
}

// XMLState is one diagram node.
type XMLState struct {
	ID          string   `xml:"id,attr"`
	Name        string   `xml:"name,attr"`
	Start       bool     `xml:"start,attr,omitempty"`
	Final       bool     `xml:"final,attr,omitempty"`
	Annotations []string `xml:"annotation,omitempty"`
}

// XMLTransition is one diagram edge.
type XMLTransition struct {
	From    string   `xml:"from,attr"`
	To      string   `xml:"to,attr"`
	Message string   `xml:"message,attr"`
	Phase   bool     `xml:"phase,attr,omitempty"`
	Actions []string `xml:"action,omitempty"`
}

// XMLRenderer renders a machine as the XML diagram document.
type XMLRenderer struct {
	// IncludeAnnotations embeds the state commentary in the document.
	IncludeAnnotations bool
	// Indent sets the marshalling indent; two spaces when empty.
	Indent string
}

// NewXMLRenderer returns a renderer with annotations enabled.
func NewXMLRenderer() *XMLRenderer {
	return &XMLRenderer{IncludeAnnotations: true}
}

// Document builds the interchange structure without marshalling it.
func (r *XMLRenderer) Document(m *core.StateMachine) *XMLDiagram {
	doc := &XMLDiagram{
		Model:     m.ModelName,
		Parameter: m.Parameter,
		Messages:  append([]string(nil), m.Messages...),
	}
	ids := make(map[*core.State]string, len(m.States))
	for i, s := range m.States {
		id := fmt.Sprintf("s%d", i)
		ids[s] = id
		st := XMLState{
			ID:    id,
			Name:  s.Name,
			Start: s == m.Start,
			Final: s.Final,
		}
		if r.IncludeAnnotations {
			st.Annotations = append([]string(nil), s.Annotations...)
		}
		doc.States = append(doc.States, st)
	}
	for _, s := range m.States {
		for _, msg := range s.SortedMessages(m.Messages) {
			tr := s.Transitions[msg]
			doc.Edges = append(doc.Edges, XMLTransition{
				From:    ids[s],
				To:      ids[tr.Target],
				Message: msg,
				Phase:   tr.IsPhase(),
				Actions: append([]string(nil), tr.Actions...),
			})
		}
	}
	return doc
}

// Name implements Renderer.
func (r *XMLRenderer) Name() string { return "xml" }

// Render marshals the machine's diagram document.
func (r *XMLRenderer) Render(m *core.StateMachine) (Artifact, error) {
	indent := r.Indent
	if indent == "" {
		indent = "  "
	}
	out, err := xml.MarshalIndent(r.Document(m), "", indent)
	if err != nil {
		return Artifact{}, fmt.Errorf("render: marshal diagram: %w", err)
	}
	return Artifact{
		Format:    r.Name(),
		MediaType: "application/xml; charset=utf-8",
		Ext:       ".xml",
		Data:      []byte(xml.Header + string(out) + "\n"),
	}, nil
}

// ParseXML decodes a diagram document produced by Render, for round-trip
// tooling.
func ParseXML(data []byte) (*XMLDiagram, error) {
	var doc XMLDiagram
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("render: parse diagram: %w", err)
	}
	return &doc, nil
}
