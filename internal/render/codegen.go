// Package render turns abstract machine representations into concrete
// artefacts: textual state catalogues (Fig. 14), state-transition diagrams
// in Graphviz DOT and an XML interchange format (Fig. 15), generated Go
// source implementing the protocol (Fig. 16), and markdown documentation.
//
// Generative code is notoriously hard to read; following §4.1 the package
// restricts itself to string manipulation structured by a small set of
// buffer utilities (add, addLn, enterBlock, exitBlock — Fig. 18) that keep
// both the generative and the generated code legible.
package render

import "strings"

// Buffer accumulates generated text with managed indentation, providing the
// utility methods of the paper's Fig. 18.
type Buffer struct {
	b      strings.Builder
	indent int
	// IndentWith is the string emitted per indentation level; tab when
	// empty.
	IndentWith  string
	atLineStart bool
}

// NewBuffer returns an empty buffer at indentation level zero.
func NewBuffer() *Buffer {
	return &Buffer{atLineStart: true}
}

func (b *Buffer) indentUnit() string {
	if b.IndentWith == "" {
		return "\t"
	}
	return b.IndentWith
}

func (b *Buffer) writeIndent() {
	if !b.atLineStart {
		return
	}
	for i := 0; i < b.indent; i++ {
		b.b.WriteString(b.indentUnit())
	}
	b.atLineStart = false
}

// Add appends the items to the output buffer.
func (b *Buffer) Add(items ...string) {
	for _, it := range items {
		if it == "" {
			continue
		}
		b.writeIndent()
		b.b.WriteString(it)
	}
}

// AddLn appends the items to the output buffer followed by a newline.
func (b *Buffer) AddLn(items ...string) {
	b.Add(items...)
	b.b.WriteString("\n")
	b.atLineStart = true
}

// BlankLn emits an empty line.
func (b *Buffer) BlankLn() {
	b.b.WriteString("\n")
	b.atLineStart = true
}

// EnterBlock opens a new brace block and increases the indent level.
func (b *Buffer) EnterBlock(header ...string) {
	b.Add(header...)
	if len(header) > 0 {
		b.Add(" ")
	}
	b.AddLn("{")
	b.IncreaseIndent()
}

// ExitBlock closes the current brace block and decreases the indent level.
func (b *Buffer) ExitBlock(trailer ...string) {
	b.DecreaseIndent()
	b.Add("}")
	b.Add(trailer...)
	b.AddLn()
}

// IncreaseIndent increases the indentation level.
func (b *Buffer) IncreaseIndent() { b.indent++ }

// DecreaseIndent decreases the indentation level; it saturates at zero.
func (b *Buffer) DecreaseIndent() {
	if b.indent > 0 {
		b.indent--
	}
}

// ResetIndent returns the indentation level to zero.
func (b *Buffer) ResetIndent() { b.indent = 0 }

// Len returns the number of bytes accumulated.
func (b *Buffer) Len() int { return b.b.Len() }

// String returns the accumulated output.
func (b *Buffer) String() string { return b.b.String() }
