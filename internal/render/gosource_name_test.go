package render

import (
	"context"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"asagen/internal/core"
)

// TestSanitizePackageName: arbitrary dynamic model names map onto valid
// Go package identifiers.
func TestSanitizePackageName(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"bft-commit", "bftcommit"},
		{"termination-detection", "terminationdetection"},
		{"UPPER_case", "uppercase"},
		{"3phase", "m3phase"},
		{"2pc-commit", "m2pccommit"},
		{"---", "machine"},
		{"", "machine"},
		{"   ", "machine"},
		{"lease.v2", "leasev2"},
		{"héllo-wörld", "héllowörld"},
		{"日本語", "日本語"},
		{"٣phase", "m٣phase"}, // Arabic-Indic digit: valid in identifiers, not first
		{"a b c", "abc"},
		{"!@#$%^&*()", "machine"},
		{"x", "x"},
		{"42", "m42"},
		{"go", "mgo"},       // Go keywords are not identifiers
		{"Range", "mrange"}, // keyword after lower-casing
		{"func", "mfunc"},
		{"type!", "mtype"}, // keyword after stripping
	}
	for _, tt := range tests {
		if got := SanitizePackageName(tt.in); got != tt.want {
			t.Errorf("SanitizePackageName(%q) = %q, want %q", tt.in, got, tt.want)
		}
		// Every output must be usable in a package clause.
		src := "package " + SanitizePackageName(tt.in) + "\n"
		if _, err := parser.ParseFile(token.NewFileSet(), "x.go", src, parser.PackageClauseOnly); err != nil {
			t.Errorf("SanitizePackageName(%q) is not a valid package clause: %v", tt.in, err)
		}
	}
}

// TestGoSourceRendersHostileModelNames: the go format produces parseable
// source for models whose names would previously break the derived
// package clause.
func TestGoSourceRendersHostileModelNames(t *testing.T) {
	for _, name := range []string{"3phase", "lease-v2", "日本語", "#!?"} {
		m := &namedModel{name: name}
		machine, err := core.Generate(context.Background(), m)
		if err != nil {
			t.Fatalf("%q: generate: %v", name, err)
		}
		art, err := NewGoSourceRenderer("").Render(machine)
		if err != nil {
			t.Fatalf("%q: render: %v", name, err)
		}
		// Render already gofmt-parses the output; additionally pin the
		// derived clause.
		want := "package " + SanitizePackageName(name) + "2"
		if !strings.Contains(string(art.Data), want) {
			t.Errorf("%q: generated source lacks %q", name, want)
		}
	}
}

// namedModel is a trivial two-state model with a configurable name.
type namedModel struct {
	name string
}

func (m *namedModel) Name() string   { return m.name }
func (m *namedModel) Parameter() int { return 2 }
func (m *namedModel) Components() []core.StateComponent {
	return []core.StateComponent{core.NewBoolComponent("on")}
}
func (m *namedModel) Messages() []string { return []string{"TOGGLE"} }
func (m *namedModel) Start() core.Vector { return core.Vector{0} }
func (m *namedModel) Apply(v core.Vector, msg string) (core.Effect, bool) {
	if msg != "TOGGLE" {
		return core.Effect{}, false
	}
	s := v.Clone()
	s[0] = 1 - s[0]
	return core.Effect{Target: s}, true
}
func (m *namedModel) DescribeState(core.Vector) []string { return nil }
