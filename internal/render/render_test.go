package render

import (
	"context"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"asagen/internal/commit"
	"asagen/internal/core"
)

func commitMachine(t *testing.T, r int) *core.StateMachine {
	t.Helper()
	m, err := commit.NewModel(r)
	if err != nil {
		t.Fatalf("NewModel(%d): %v", r, err)
	}
	machine, err := core.Generate(context.Background(), m)
	if err != nil {
		t.Fatalf("Generate(r=%d): %v", r, err)
	}
	return machine
}

func TestTextRendererFig14Shape(t *testing.T) {
	machine := commitMachine(t, 4)
	art, err := NewTextRenderer().Render(machine)
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := art.String()

	// Every state section appears.
	for _, s := range machine.States {
		if !strings.Contains(out, "state: "+s.Name+"\n") {
			t.Errorf("missing section for state %s", s.Name)
		}
	}
	// The Fig. 14 structural elements appear.
	for _, want := range []string{
		"Description:",
		"Transitions:",
		"message: VOTE",
		"action: ->vote",
		"action: ->commit",
		"transition to: ",
		"Have received initial update from client.",
		"external commit threshold (2)",
		"vote threshold (3)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "states: 33") == false {
		t.Error("missing state count header")
	}
}

func TestTextRendererSingleState(t *testing.T) {
	machine := commitMachine(t, 4)
	s := machine.Start
	out := NewTextRenderer().RenderState(machine, s)
	if !strings.HasPrefix(out, "state: "+s.Name+"\n") {
		t.Errorf("RenderState output starts with %q", out[:40])
	}
	if !strings.Contains(out, "Transitions:") {
		t.Error("missing transitions section")
	}
}

func TestDotRenderer(t *testing.T) {
	machine := commitMachine(t, 4)
	art, err := NewDotRenderer().Render(machine)
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := art.String()
	if !strings.HasPrefix(out, "digraph") {
		t.Fatalf("not a digraph: %q", out[:20])
	}
	if !strings.Contains(out, "rankdir=LR;") {
		t.Error("missing rankdir")
	}
	// One node line per state.
	for _, s := range machine.States {
		if !strings.Contains(out, "\""+s.Name+"\"") {
			t.Errorf("missing node %s", s.Name)
		}
	}
	// Phase transitions drawn thick (Fig. 8 convention).
	if !strings.Contains(out, "penwidth=2.2") {
		t.Error("no thick phase-transition edges")
	}
	// Edge count matches machine transitions.
	if got, want := strings.Count(out, " -> "), machine.TransitionCount(); got != want {
		t.Errorf("edge count = %d, want %d", got, want)
	}
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces")
	}
}

func TestDotRendererEFSM(t *testing.T) {
	efsm, err := commit.GenerateEFSM(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderEFSMDot(efsm)
	if !strings.Contains(out, commit.EFSMChosenVoted) {
		t.Error("missing EFSM state node")
	}
	if !strings.Contains(out, "votes_received++") {
		t.Error("missing variable update label")
	}
}

func TestXMLRendererRoundTrip(t *testing.T) {
	machine := commitMachine(t, 4)
	xmlArt, err := NewXMLRenderer().Render(machine)
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := xmlArt.String()
	if !strings.HasPrefix(out, "<?xml") {
		t.Error("missing XML header")
	}
	doc, err := ParseXML([]byte(strings.TrimPrefix(out, "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n")))
	if err != nil {
		t.Fatalf("ParseXML: %v", err)
	}
	if doc.Model != "bft-commit" || doc.Parameter != 4 {
		t.Errorf("doc header = %s/%d", doc.Model, doc.Parameter)
	}
	if len(doc.States) != len(machine.States) {
		t.Errorf("states = %d, want %d", len(doc.States), len(machine.States))
	}
	if len(doc.Edges) != machine.TransitionCount() {
		t.Errorf("edges = %d, want %d", len(doc.Edges), machine.TransitionCount())
	}
	// Start and final flags survive the round trip.
	var starts, finals int
	for _, s := range doc.States {
		if s.Start {
			starts++
		}
		if s.Final {
			finals++
		}
	}
	if starts != 1 || finals != 1 {
		t.Errorf("starts=%d finals=%d, want 1/1", starts, finals)
	}
	// Phase edges carry actions.
	foundPhase := false
	for _, e := range doc.Edges {
		if e.Phase && len(e.Actions) > 0 {
			foundPhase = true
			break
		}
	}
	if !foundPhase {
		t.Error("no phase edge with actions in document")
	}
}

func TestGoSourceRendererParses(t *testing.T) {
	machine := commitMachine(t, 4)
	art, err := NewGoSourceRenderer("commitfsm4").Render(machine)
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	src := art.String()
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "generated.go", src, parser.AllErrors); err != nil {
		t.Fatalf("generated source does not parse: %v", err)
	}
	for _, want := range []string{
		"package commitfsm4",
		"func (m *Machine) ReceiveVote()",
		"func (m *Machine) ReceiveNotFree()",
		"m.actions.SendCommit()",
		"type Actions interface",
		"SendNotFree() // ->not free",
		"State_FINISHED",
		"func New(actions Actions) *Machine",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated source missing %q", want)
		}
	}
	// One case branch per transition plus five dispatch cases.
	if got, want := strings.Count(src, "case State_"), machine.TransitionCount(); got != want {
		t.Errorf("case branches = %d, want %d", got, want)
	}
}

func TestGoSourceRendererErrors(t *testing.T) {
	if _, err := NewGoSourceRenderer("x").Render(&core.StateMachine{}); err == nil {
		t.Error("empty machine accepted")
	}
}

func TestGoSourceRendererDerivesPackageName(t *testing.T) {
	machine := commitMachine(t, 4)
	art, err := (&GoSourceRenderer{}).Render(machine)
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	if want := "package bftcommit4"; !strings.Contains(art.String(), want) {
		t.Errorf("derived source missing %q", want)
	}
	if got := DefaultPackageName(machine); got != "bftcommit4" {
		t.Errorf("DefaultPackageName = %q, want bftcommit4", got)
	}
}

func TestDefaultActionMethod(t *testing.T) {
	tests := []struct{ in, want string }{
		{"->vote", "SendVote"},
		{"->commit", "SendCommit"},
		{"->not free", "SendNotFree"},
		{"->free", "SendFree"},
		{"->done", "SendDone"},
	}
	for _, tt := range tests {
		if got := DefaultActionMethod(tt.in); got != tt.want {
			t.Errorf("DefaultActionMethod(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestCamel(t *testing.T) {
	tests := []struct{ in, want string }{
		{"UPDATE", "Update"},
		{"NOT_FREE", "NotFree"},
		{"not free", "NotFree"},
		{"vote", "Vote"},
	}
	for _, tt := range tests {
		if got := camel(tt.in); got != tt.want {
			t.Errorf("camel(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestDocRenderer(t *testing.T) {
	machine := commitMachine(t, 4)
	art, err := NewDocRenderer().Render(machine)
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := art.String()
	for _, want := range []string{
		"# State machine `bft-commit` (parameter 4)",
		"| States (merged) | 33 |",
		"| States (raw) | 512 |",
		"## States",
		"| Message | Actions | Next state |",
		"_Terminal state._",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("doc missing %q", want)
		}
	}
	// One section per state.
	if got, want := strings.Count(out, "### `"), len(machine.States); got != want {
		t.Errorf("state sections = %d, want %d", got, want)
	}
}

func TestEFSMTextRenderer(t *testing.T) {
	efsm, err := commit.GenerateEFSM(context.Background(), 13)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderEFSMText(efsm)
	for _, want := range []string{
		"extended state machine: bft-commit",
		"variables: votes_received, commits_received",
		"states: 9",
		"guard: ",
		"update: votes_received++",
		"(terminal state)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("EFSM text missing %q", want)
		}
	}
}

func TestBufferUtilities(t *testing.T) {
	b := NewBuffer()
	b.IndentWith = "  "
	b.EnterBlock("func f()")
	b.AddLn("x := 1")
	b.EnterBlock("if x > 0")
	b.AddLn("return")
	b.ExitBlock()
	b.ExitBlock()
	want := "func f() {\n  x := 1\n  if x > 0 {\n    return\n  }\n}\n"
	if got := b.String(); got != want {
		t.Errorf("buffer output:\n%q\nwant:\n%q", got, want)
	}
	if b.Len() != len(want) {
		t.Errorf("Len() = %d, want %d", b.Len(), len(want))
	}

	b2 := NewBuffer()
	b2.DecreaseIndent() // saturates at zero
	b2.IncreaseIndent()
	b2.ResetIndent()
	b2.AddLn("top")
	if got := b2.String(); got != "top\n" {
		t.Errorf("after ResetIndent: %q", got)
	}
}
