package render

import (
	"strings"

	"asagen/internal/core"
)

// DotRenderer renders a generated machine as a Graphviz DOT state-transition
// diagram (the Fig. 15 artefact; the paper targeted a proprietary
// diagramming tool, this repository targets dot and the XML renderer).
// Simple transitions are drawn as thin edges; phase transitions — those
// performing actions — as bold edges, matching the Fig. 8 convention.
type DotRenderer struct {
	// RankDir sets the graph direction; "LR" when empty.
	RankDir string
	// IncludeActions labels phase-transition edges with their actions.
	IncludeActions bool
}

// NewDotRenderer returns a renderer with action labels enabled.
func NewDotRenderer() *DotRenderer {
	return &DotRenderer{IncludeActions: true}
}

// Name implements Renderer.
func (r *DotRenderer) Name() string { return "dot" }

// Render produces the DOT document.
func (r *DotRenderer) Render(m *core.StateMachine) (Artifact, error) {
	return Artifact{
		Format:    r.Name(),
		MediaType: "text/vnd.graphviz; charset=utf-8",
		Ext:       ".dot",
		Data:      []byte(r.renderDot(m)),
	}, nil
}

func (r *DotRenderer) renderDot(m *core.StateMachine) string {
	b := NewBuffer()
	b.IndentWith = "  "
	b.AddLn("digraph \"", escapeDot(m.ModelName), "\" {")
	b.IncreaseIndent()
	rank := r.RankDir
	if rank == "" {
		rank = "LR"
	}
	b.AddLn("rankdir=", rank, ";")
	b.AddLn("node [shape=box, fontname=\"Helvetica\"];")

	for _, s := range m.States {
		attrs := []string{}
		switch {
		case s == m.Start:
			attrs = append(attrs, "style=filled", "fillcolor=lightblue")
		case s.Final:
			attrs = append(attrs, "shape=doublecircle")
		}
		line := "\"" + escapeDot(s.Name) + "\""
		if len(attrs) > 0 {
			line += " [" + strings.Join(attrs, ", ") + "]"
		}
		b.AddLn(line, ";")
	}

	for _, s := range m.States {
		for _, msg := range s.SortedMessages(m.Messages) {
			tr := s.Transitions[msg]
			label := "<-" + strings.ToLower(msg)
			if r.IncludeActions && len(tr.Actions) > 0 {
				label += "\\n" + strings.Join(tr.Actions, "\\n")
			}
			attrs := []string{"label=\"" + escapeDot(label) + "\""}
			if tr.IsPhase() {
				attrs = append(attrs, "penwidth=2.2") // thick arrow: phase transition
			}
			b.AddLn("\"", escapeDot(s.Name), "\" -> \"", escapeDot(tr.Target.Name),
				"\" [", strings.Join(attrs, ", "), "];")
		}
	}

	b.DecreaseIndent()
	b.AddLn("}")
	return b.String()
}

// RenderEFSMDot renders an EFSM as a DOT diagram with guard/update labels.
func RenderEFSMDot(e *core.EFSM) string {
	b := NewBuffer()
	b.IndentWith = "  "
	b.AddLn("digraph \"", escapeDot(e.ModelName), "-efsm\" {")
	b.IncreaseIndent()
	b.AddLn("rankdir=LR;")
	b.AddLn("node [shape=box, fontname=\"Helvetica\"];")
	for _, s := range e.States {
		attrs := ""
		switch {
		case s == e.Start:
			attrs = " [style=filled, fillcolor=lightblue]"
		case s.Final:
			attrs = " [shape=doublecircle]"
		}
		b.AddLn("\"", escapeDot(s.Name), "\"", attrs, ";")
	}
	for _, s := range e.States {
		for _, tr := range s.Transitions {
			parts := []string{"<-" + strings.ToLower(tr.Message)}
			if !tr.Guard.Unconditional() {
				parts = append(parts, "["+tr.Guard.String()+"]")
			}
			for _, op := range tr.VarOps {
				parts = append(parts, op.String())
			}
			parts = append(parts, tr.Actions...)
			attrs := []string{"label=\"" + escapeDot(strings.Join(parts, "\\n")) + "\""}
			if len(tr.Actions) > 0 {
				attrs = append(attrs, "penwidth=2.2")
			}
			b.AddLn("\"", escapeDot(s.Name), "\" -> \"", escapeDot(tr.Target.Name),
				"\" [", strings.Join(attrs, ", "), "];")
		}
	}
	b.DecreaseIndent()
	b.AddLn("}")
	return b.String()
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	// Preserve intentional newline escapes in labels.
	s = strings.ReplaceAll(s, "\\\\n", "\\n")
	return strings.ReplaceAll(s, "\"", "\\\"")
}
