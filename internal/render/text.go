package render

import (
	"strings"

	"asagen/internal/core"
)

// TextRenderer renders a generated machine as the simple textual
// representation of the paper's Fig. 14: one section per state with its
// auto-generated commentary and outgoing transitions.
type TextRenderer struct {
	// IncludeDescriptions controls whether state annotations are emitted.
	IncludeDescriptions bool
	// IncludeMergedNames lists the original state names combined into a
	// merged state.
	IncludeMergedNames bool
}

// NewTextRenderer returns a renderer with descriptions enabled.
func NewTextRenderer() *TextRenderer {
	return &TextRenderer{IncludeDescriptions: true}
}

// Name implements Renderer.
func (r *TextRenderer) Name() string { return "text" }

// Render produces the textual representation of the whole machine.
func (r *TextRenderer) Render(m *core.StateMachine) (Artifact, error) {
	b := NewBuffer()
	b.AddLn("state machine: ", m.ModelName)
	b.AddLn("parameter: ", itoa(m.Parameter))
	b.AddLn("messages: ", strings.Join(m.Messages, ", "))
	b.AddLn("states: ", itoa(len(m.States)))
	b.BlankLn()
	for _, s := range m.States {
		r.renderState(b, m, s)
	}
	return Artifact{
		Format:    r.Name(),
		MediaType: "text/plain; charset=utf-8",
		Ext:       ".txt",
		Data:      []byte(b.String()),
	}, nil
}

// RenderState produces the Fig. 14 style section for a single state.
func (r *TextRenderer) RenderState(m *core.StateMachine, s *core.State) string {
	b := NewBuffer()
	r.renderState(b, m, s)
	return b.String()
}

func (r *TextRenderer) renderState(b *Buffer, m *core.StateMachine, s *core.State) {
	b.AddLn("state: ", s.Name)
	b.AddLn(strings.Repeat("-", len("state: ")+len(s.Name)))

	if r.IncludeMergedNames && len(s.MergedNames) > 1 {
		b.AddLn("Combines: ", strings.Join(s.MergedNames, ", "))
	}

	if r.IncludeDescriptions && len(s.Annotations) > 0 {
		b.AddLn("Description:")
		b.BlankLn()
		for _, line := range s.Annotations {
			b.AddLn(line)
		}
		b.BlankLn()
	}

	b.AddLn("Transitions:")
	b.BlankLn()
	if len(s.Transitions) == 0 {
		b.IncreaseIndent()
		if s.Final {
			b.AddLn("(terminal state)")
		} else {
			b.AddLn("(none)")
		}
		b.DecreaseIndent()
		b.BlankLn()
		return
	}
	for _, msg := range s.SortedMessages(m.Messages) {
		tr := s.Transitions[msg]
		b.IncreaseIndent()
		b.AddLn("message: ", msg)
		b.IncreaseIndent()
		for _, a := range tr.Actions {
			b.AddLn("action: ", a)
		}
		b.AddLn("transition to: ", tr.Target.Name)
		b.DecreaseIndent()
		b.DecreaseIndent()
		b.BlankLn()
	}
}

// RenderEFSMText renders an EFSM as a textual catalogue: per state, the
// guarded transitions with variable updates and actions.
func RenderEFSMText(e *core.EFSM) string {
	b := NewBuffer()
	b.AddLn("extended state machine: ", e.ModelName)
	b.AddLn("generalised from parameter: ", itoa(e.Parameter))
	b.AddLn("variables: ", strings.Join(e.Variables, ", "))
	b.AddLn("states: ", itoa(len(e.States)))
	b.BlankLn()
	for _, s := range e.States {
		b.AddLn("state: ", s.Name)
		b.AddLn(strings.Repeat("-", len("state: ")+len(s.Name)))
		if s.Final {
			b.IncreaseIndent()
			b.AddLn("(terminal state)")
			b.DecreaseIndent()
			b.BlankLn()
			continue
		}
		for _, tr := range s.Transitions {
			b.IncreaseIndent()
			b.AddLn("message: ", tr.Message)
			b.IncreaseIndent()
			if !tr.Guard.Unconditional() {
				b.AddLn("guard: ", tr.Guard.String())
			}
			for _, op := range tr.VarOps {
				b.AddLn("update: ", op.String())
			}
			for _, a := range tr.Actions {
				b.AddLn("action: ", a)
			}
			b.AddLn("transition to: ", tr.Target.Name)
			b.DecreaseIndent()
			b.DecreaseIndent()
			b.BlankLn()
		}
	}
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
