package render

import "asagen/internal/core"

// EFSM renderer types: the §5.3 artefact classes as registry formats. The
// underlying string renderers (RenderEFSMText, RenderEFSMDot) remain
// exported for direct use.

// EFSMTextRenderer renders an EFSM as the textual guarded-transition
// catalogue.
type EFSMTextRenderer struct{}

// NewEFSMTextRenderer returns the textual EFSM renderer.
func NewEFSMTextRenderer() *EFSMTextRenderer { return &EFSMTextRenderer{} }

// Name implements EFSMRenderer.
func (r *EFSMTextRenderer) Name() string { return "efsm" }

// RenderEFSM implements EFSMRenderer.
func (r *EFSMTextRenderer) RenderEFSM(e *core.EFSM) (Artifact, error) {
	return Artifact{
		Format:    r.Name(),
		MediaType: "text/plain; charset=utf-8",
		Ext:       ".txt",
		Data:      []byte(RenderEFSMText(e)),
	}, nil
}

// EFSMDotRenderer renders an EFSM as a Graphviz DOT diagram with
// guard/update labels.
type EFSMDotRenderer struct{}

// NewEFSMDotRenderer returns the DOT EFSM renderer.
func NewEFSMDotRenderer() *EFSMDotRenderer { return &EFSMDotRenderer{} }

// Name implements EFSMRenderer.
func (r *EFSMDotRenderer) Name() string { return "efsm-dot" }

// RenderEFSM implements EFSMRenderer.
func (r *EFSMDotRenderer) RenderEFSM(e *core.EFSM) (Artifact, error) {
	return Artifact{
		Format:    r.Name(),
		MediaType: "text/vnd.graphviz; charset=utf-8",
		Ext:       ".dot",
		Data:      []byte(RenderEFSMDot(e)),
	}, nil
}
