package render

import (
	"fmt"

	"asagen/internal/core"
)

// MachineFromDocument rebuilds an executable machine representation from an
// XML diagram document, closing the artefact loop: a machine rendered with
// XMLRenderer, shipped between tools or hosts, can be loaded and executed
// by the runtime without access to the abstract model — the paper's
// dynamic-deployment direction (§4.3) without on-the-fly compilation.
//
// Component metadata is not carried by the diagram format, so the loaded
// machine has state names but nil vectors; execution and rendering to
// text/DOT work, regeneration of Fig. 14 commentary does not.
func MachineFromDocument(doc *XMLDiagram) (*core.StateMachine, error) {
	if doc == nil {
		return nil, fmt.Errorf("render: nil diagram document")
	}
	if len(doc.States) == 0 {
		return nil, fmt.Errorf("render: diagram has no states")
	}

	machine := &core.StateMachine{
		ModelName: doc.Model,
		Parameter: doc.Parameter,
		Messages:  append([]string(nil), doc.Messages...),
	}
	byID := make(map[string]*core.State, len(doc.States))
	for _, xs := range doc.States {
		if xs.ID == "" {
			return nil, fmt.Errorf("render: state %q has no id", xs.Name)
		}
		if _, dup := byID[xs.ID]; dup {
			return nil, fmt.Errorf("render: duplicate state id %q", xs.ID)
		}
		s := &core.State{
			Name:        xs.Name,
			Final:       xs.Final,
			Transitions: make(map[string]*core.Transition),
			Annotations: append([]string(nil), xs.Annotations...),
			MergedNames: []string{xs.Name},
		}
		byID[xs.ID] = s
		machine.States = append(machine.States, s)
		if xs.Start {
			if machine.Start != nil {
				return nil, fmt.Errorf("render: multiple start states")
			}
			machine.Start = s
		}
		if xs.Final {
			machine.Finish = s
		}
	}
	if machine.Start == nil {
		return nil, fmt.Errorf("render: diagram has no start state")
	}

	for _, e := range doc.Edges {
		from, ok := byID[e.From]
		if !ok {
			return nil, fmt.Errorf("render: edge from unknown state %q", e.From)
		}
		to, ok := byID[e.To]
		if !ok {
			return nil, fmt.Errorf("render: edge to unknown state %q", e.To)
		}
		if e.Message == "" {
			return nil, fmt.Errorf("render: edge %s->%s has no message", e.From, e.To)
		}
		if _, dup := from.Transitions[e.Message]; dup {
			return nil, fmt.Errorf("render: state %q has two transitions for %q", from.Name, e.Message)
		}
		from.Transitions[e.Message] = &core.Transition{
			Message: e.Message,
			Target:  to,
			Actions: append([]string(nil), e.Actions...),
		}
	}

	machine.Stats = core.Stats{
		InitialStates:   len(machine.States),
		ReachableStates: len(machine.States),
		FinalStates:     len(machine.States),
	}
	return machine, nil
}

// LoadMachineXML parses an XML diagram document and rebuilds the machine.
func LoadMachineXML(data []byte) (*core.StateMachine, error) {
	doc, err := ParseXML(data)
	if err != nil {
		return nil, err
	}
	return MachineFromDocument(doc)
}
