package latency

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestSmallValuesAreExact(t *testing.T) {
	var h Histogram
	for v := 0; v < subCount; v++ {
		h.Record(time.Duration(v))
	}
	if h.Count() != subCount || h.Min() != 0 || h.Max() != subCount-1 {
		t.Fatalf("summary: %s", h.String())
	}
	// Below subCount every value has its own bucket, so quantiles are
	// exact.
	for _, q := range []float64{0.25, 0.5, 0.75, 1} {
		want := time.Duration(math.Ceil(q*subCount)) - 1
		if got := h.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// Every bucket's upper bound must map back into the same bucket, and
	// the next value into the next bucket.
	for idx := 0; idx < 40*subCount; idx++ {
		upper := bucketUpper(idx)
		if got := bucketIndex(upper); got != idx {
			t.Fatalf("bucketIndex(bucketUpper(%d)=%d) = %d", idx, upper, got)
		}
		if got := bucketIndex(upper + 1); got != idx+1 {
			t.Fatalf("bucketIndex(%d) = %d, want %d", upper+1, got, idx+1)
		}
	}
}

// TestQuantileErrorBound: against an exact sorted sample, every quantile is
// within the log-linear resolution (1/32 relative) of the true value.
func TestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	exact := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Mix of microsecond and millisecond scales, like a real latency
		// distribution with a tail.
		v := int64(rng.ExpFloat64() * 120_000)
		if rng.Intn(100) == 0 {
			v += int64(rng.ExpFloat64() * 5_000_000)
		}
		exact = append(exact, v)
		h.Record(time.Duration(v))
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		rank := int(math.Ceil(q*float64(len(exact)))) - 1
		want := float64(exact[rank])
		got := float64(h.Quantile(q))
		if want == 0 {
			continue
		}
		if rel := math.Abs(got-want) / want; rel > 1.0/subCount {
			t.Errorf("Quantile(%v) = %.0f, exact %.0f, rel err %.3f > %.3f",
				q, got, want, rel, 1.0/subCount)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Errorf("Quantile(1) = %v, want max %v", h.Quantile(1), h.Max())
	}
}

func TestMergeMatchesCombinedRecording(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, combined Histogram
	for i := 0; i < 5000; i++ {
		v := time.Duration(rng.Int63n(10_000_000))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		combined.Record(v)
	}
	a.Merge(&b)
	if a.Count() != combined.Count() || a.Min() != combined.Min() || a.Max() != combined.Max() || a.Mean() != combined.Mean() {
		t.Fatalf("merged %s != combined %s", a.String(), combined.String())
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if a.Quantile(q) != combined.Quantile(q) {
			t.Errorf("Quantile(%v): merged %v != combined %v", q, a.Quantile(q), combined.Quantile(q))
		}
	}
}

func TestMergeIntoEmpty(t *testing.T) {
	var a, b Histogram
	b.Record(5 * time.Millisecond)
	b.Record(1 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 || a.Min() != 1*time.Millisecond || a.Max() != 5*time.Millisecond {
		t.Fatalf("merged into empty: %s", a.String())
	}
	a.Merge(nil) // no-op
	if a.Count() != 2 {
		t.Fatalf("Merge(nil) changed count: %d", a.Count())
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram: %s", h.String())
	}
	// Every quantile of an empty histogram is zero, including the
	// boundary and out-of-range inputs.
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1, -1, 2, math.NaN()} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}

// TestSingleSample: with one observation every quantile is that exact
// value — bucket upper bounds are clamped to the recorded max/min.
func TestSingleSample(t *testing.T) {
	var h Histogram
	v := 1234567 * time.Nanosecond // mid-bucket, not a bucket boundary
	h.Record(v)
	if h.Count() != 1 || h.Min() != v || h.Max() != v || h.Mean() != v {
		t.Fatalf("single sample summary: %s", h.String())
	}
	for _, q := range []float64{0, 0.001, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != v {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, v)
		}
	}
}

// TestBelowBucketRange: zero and negative durations land in the first
// exact bucket rather than corrupting the distribution.
func TestBelowBucketRange(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(-time.Hour)
	h.Record(time.Nanosecond)
	if h.Count() != 3 || h.Min() != 0 || h.Max() != time.Nanosecond {
		t.Fatalf("below-range summary: %s", h.String())
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("Quantile(0.5) = %v, want 0", got)
	}
	if got := h.Quantile(1); got != time.Nanosecond {
		t.Errorf("Quantile(1) = %v, want 1ns", got)
	}
}

// TestAboveBucketRange: values far beyond any real latency (up to the
// 2^62-1 design limit) still index a valid bucket and keep quantiles
// clamped to the recorded max.
func TestAboveBucketRange(t *testing.T) {
	var h Histogram
	huge := time.Duration(1<<62 - 1)
	h.Record(huge)
	h.Record(24 * 365 * time.Hour)
	if idx := bucketIndex(int64(huge)); idx < 0 || idx >= nBuckets {
		t.Fatalf("bucketIndex(2^62-1) = %d out of [0,%d)", idx, nBuckets)
	}
	if h.Count() != 2 || h.Max() != huge {
		t.Fatalf("above-range summary: %s", h.String())
	}
	for _, q := range []float64{0.99, 1} {
		if got := h.Quantile(q); got != huge {
			t.Errorf("Quantile(%v) = %v, want max %v", q, got, huge)
		}
	}
	// Merging extreme histograms keeps the invariants.
	var other Histogram
	other.Record(time.Millisecond)
	h.Merge(&other)
	if h.Count() != 3 || h.Min() != time.Millisecond || h.Max() != huge {
		t.Fatalf("merged above-range summary: %s", h.String())
	}
}

func TestNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Record(-time.Second)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative record: %s", h.String())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Record(time.Duration(rng.Int63n(50_000_000)))
	}
	data, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != h.Count() || back.Min() != h.Min() || back.Max() != h.Max() || back.Mean() != h.Mean() {
		t.Fatalf("round trip %s != %s", back.String(), h.String())
	}
	for _, q := range []float64{0.5, 0.99} {
		if back.Quantile(q) != h.Quantile(q) {
			t.Errorf("Quantile(%v): %v != %v", q, back.Quantile(q), h.Quantile(q))
		}
	}
	// Bad bucket index rejected.
	if err := json.Unmarshal([]byte(`{"count":1,"buckets":[[99999,1]]}`), &back); err == nil {
		t.Error("out-of-range bucket index accepted")
	}
}
