// Package latency implements the HDR-style histogram behind the serve-path
// percentile numbers: loadgen records one value per request, workers merge
// their histograms, and the p50/p95/p99 rows the benchgate gates are read
// off the merged distribution. Buckets are log-linear — 32 linear
// sub-buckets per power of two — so quantiles carry a bounded relative
// error (at most 1/32, ~3.2%) across the full nanosecond-to-minutes range
// while the whole histogram stays a few kilobytes and recording is one
// array increment, cheap enough to sit inside a latency measurement.
package latency

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"time"
)

// subBits sets the linear resolution: 2^subBits sub-buckets per octave.
const subBits = 5

const subCount = 1 << subBits

// nBuckets covers values up to 2^62 ns (beyond any latency this package
// will ever see): indices 0..subCount-1 are exact, then one block of
// subCount buckets per octave above.
const nBuckets = subCount + (63-subBits)*subCount

// Histogram is a log-linear latency histogram. The zero value is ready to
// use. It is not safe for concurrent use; record into per-worker
// histograms and Merge them.
type Histogram struct {
	counts [nBuckets]int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	exp := bits.Len64(u) - 1 // floor(log2(u)), >= subBits
	shift := exp - subBits   // linear resolution within the octave
	sub := int(u>>shift) - subCount
	return subCount + shift*subCount + sub
}

// bucketUpper returns the largest value mapping to the bucket.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	shift := (idx - subCount) / subCount
	sub := (idx - subCount) % subCount
	return int64(subCount+sub+1)<<shift - 1
}

// Record adds one observation. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count }

// Min returns the smallest recorded value (exact), zero when empty.
func (h *Histogram) Min() time.Duration { return time.Duration(h.min) }

// Max returns the largest recorded value (exact), zero when empty.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max) }

// Mean returns the arithmetic mean (exact), zero when empty.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Quantile returns the value at quantile q in [0, 1]: the upper bound of
// the bucket holding the q-th observation (clamped to Max, so Quantile(1)
// is exact). Zero when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i]
		if seen >= rank {
			upper := bucketUpper(i)
			if upper > h.max {
				upper = h.max
			}
			if upper < h.min {
				upper = h.min
			}
			return time.Duration(upper)
		}
	}
	return time.Duration(h.max)
}

// Merge folds o's observations into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i := range o.counts {
		h.counts[i] += o.counts[i]
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// histogramJSON is the wire form: summary fields plus the sparse non-zero
// buckets as [index, count] pairs.
type histogramJSON struct {
	Count   int64      `json:"count"`
	SumNs   int64      `json:"sum_ns"`
	MinNs   int64      `json:"min_ns"`
	MaxNs   int64      `json:"max_ns"`
	Buckets [][2]int64 `json:"buckets"`
}

// MarshalJSON renders the histogram as summary fields plus the sparse
// non-zero buckets, so uploaded artefacts stay small and mergeable.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	out := histogramJSON{Count: h.count, SumNs: h.sum, MinNs: h.min, MaxNs: h.max}
	for i, c := range h.counts {
		if c != 0 {
			out.Buckets = append(out.Buckets, [2]int64{int64(i), c})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON restores a histogram marshalled by MarshalJSON.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var in histogramJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*h = Histogram{count: in.Count, sum: in.SumNs, min: in.MinNs, max: in.MaxNs}
	for _, b := range in.Buckets {
		if b[0] < 0 || b[0] >= nBuckets {
			return fmt.Errorf("latency: bucket index %d out of range", b[0])
		}
		h.counts[b[0]] = b[1]
	}
	return nil
}

// String summarises the distribution for logs and test failures.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d min=%v p50=%v p95=%v p99=%v max=%v",
		h.count, h.Min(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}
