// Package runtime executes generated state machines. A peer-set member
// creates one Instance per ongoing update (§3.1); incoming messages drive
// the machine along its transitions, and the actions attached to phase
// transitions are dispatched to an ActionHandler supplied by the embedding
// application (the paper's §5.1: "the rendering code is parameterised with
// a class defining appropriate action methods").
//
// The interpreter is the dynamic-deployment path of §4.2: instead of
// compiling generated source on the fly (the paper uses the Java 6 runtime
// compiler), the abstract machine representation is bound dynamically and
// interpreted. The equivalence of the interpreted machine, the generated Go
// source, and the generic algorithm is established by differential tests.
package runtime

import (
	"errors"
	"fmt"

	"asagen/internal/core"
)

// Errors reported by Instance.Deliver.
var (
	// ErrFinished is returned when a message is delivered to an instance
	// whose machine has already reached the finish state.
	ErrFinished = errors.New("runtime: machine already finished")
)

// IgnoredError reports a message that is not applicable in the machine's
// current state (the generated model records no transition for it). The
// paper's generated code simply has no case branch for such combinations.
type IgnoredError struct {
	// StateName is the machine state at delivery time.
	StateName string
	// Message is the inapplicable message type.
	Message string
}

func (e *IgnoredError) Error() string {
	return fmt.Sprintf("runtime: message %s not applicable in state %s", e.Message, e.StateName)
}

// ActionHandler receives the actions performed on phase transitions.
// Implementations typically send protocol messages to the other peer-set
// members.
type ActionHandler interface {
	// Act is invoked once per action, in transition order, e.g. with
	// "->vote" or "->commit".
	Act(action string)
}

// ActionFunc adapts a function to the ActionHandler interface.
type ActionFunc func(action string)

// Act implements ActionHandler.
func (f ActionFunc) Act(action string) { f(action) }

var _ ActionHandler = ActionFunc(nil)

// NopHandler discards all actions.
type NopHandler struct{}

// Act implements ActionHandler.
func (NopHandler) Act(string) {}

var _ ActionHandler = NopHandler{}

// Instance is a running occurrence of a generated state machine: current
// state plus the machine structure it walks.
type Instance struct {
	machine *core.StateMachine
	state   *core.State
	handler ActionHandler
}

// New returns an Instance positioned at the machine's start state. A nil
// handler discards actions.
func New(machine *core.StateMachine, handler ActionHandler) (*Instance, error) {
	if machine == nil {
		return nil, errors.New("runtime: nil machine")
	}
	if machine.Start == nil {
		return nil, errors.New("runtime: machine has no start state")
	}
	if handler == nil {
		handler = NopHandler{}
	}
	return &Instance{machine: machine, state: machine.Start, handler: handler}, nil
}

// State returns the machine's current state.
func (in *Instance) State() *core.State { return in.state }

// StateName returns the name of the current state.
func (in *Instance) StateName() string { return in.state.Name }

// Finished reports whether the machine has reached its finish state.
func (in *Instance) Finished() bool { return in.state.Final }

// Machine returns the machine definition being executed.
func (in *Instance) Machine() *core.StateMachine { return in.machine }

// Deliver feeds one message to the machine. It returns the actions
// performed (already dispatched to the handler, in order). A message that
// is not applicable in the current state returns an *IgnoredError and
// leaves the state unchanged; delivering to a finished machine returns
// ErrFinished.
func (in *Instance) Deliver(msg string) ([]string, error) {
	if in.state.Final {
		return nil, ErrFinished
	}
	tr := in.state.Transition(msg)
	if tr == nil {
		return nil, &IgnoredError{StateName: in.state.Name, Message: msg}
	}
	in.state = tr.Target
	for _, a := range tr.Actions {
		in.handler.Act(a)
	}
	return tr.Actions, nil
}

// Reset returns the machine to its start state.
func (in *Instance) Reset() { in.state = in.machine.Start }
