package runtime

import (
	"context"
	"errors"
	"testing"

	"asagen/internal/core"
)

// chainModel is a three-state machine: 0 -inc-> 1 -inc-> 2 -inc-> FINISHED,
// with a "ring" phase transition from state 1.
type chainModel struct{}

func (chainModel) Name() string   { return "chain" }
func (chainModel) Parameter() int { return 2 }
func (chainModel) Components() []core.StateComponent {
	return []core.StateComponent{core.NewIntComponent("n", 2)}
}
func (chainModel) Messages() []string { return []string{"inc", "ring"} }
func (chainModel) Start() core.Vector { return core.Vector{0} }
func (chainModel) Apply(v core.Vector, msg string) (core.Effect, bool) {
	switch msg {
	case "inc":
		if v[0] == 2 {
			return core.Effect{Finished: true}, true
		}
		return core.Effect{Target: core.Vector{v[0] + 1}}, true
	case "ring":
		if v[0] != 1 {
			return core.Effect{}, false
		}
		return core.Effect{Target: core.Vector{1}, Actions: []string{"->bell"}}, true
	default:
		return core.Effect{}, false
	}
}
func (chainModel) DescribeState(core.Vector) []string { return nil }

func buildChain(t *testing.T) *core.StateMachine {
	t.Helper()
	m, err := core.Generate(context.Background(), chainModel{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return m
}

func TestInstanceWalk(t *testing.T) {
	machine := buildChain(t)
	var acted []string
	inst, err := New(machine, ActionFunc(func(a string) { acted = append(acted, a) }))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if inst.StateName() != "0" {
		t.Fatalf("start state = %s", inst.StateName())
	}
	if inst.Finished() {
		t.Fatal("finished at start")
	}

	if _, err := inst.Deliver("inc"); err != nil {
		t.Fatalf("inc: %v", err)
	}
	actions, err := inst.Deliver("ring")
	if err != nil {
		t.Fatalf("ring: %v", err)
	}
	if len(actions) != 1 || actions[0] != "->bell" {
		t.Fatalf("ring actions = %v", actions)
	}
	if len(acted) != 1 || acted[0] != "->bell" {
		t.Fatalf("handler saw %v", acted)
	}

	if _, err := inst.Deliver("inc"); err != nil {
		t.Fatalf("inc: %v", err)
	}
	if _, err := inst.Deliver("inc"); err != nil {
		t.Fatalf("final inc: %v", err)
	}
	if !inst.Finished() {
		t.Fatal("not finished after walking the chain")
	}
	if _, err := inst.Deliver("inc"); !errors.Is(err, ErrFinished) {
		t.Fatalf("Deliver after finish = %v, want ErrFinished", err)
	}
}

func TestInstanceIgnoredMessage(t *testing.T) {
	machine := buildChain(t)
	inst, err := New(machine, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, err = inst.Deliver("ring") // not applicable in state 0
	var ignored *IgnoredError
	if !errors.As(err, &ignored) {
		t.Fatalf("Deliver = %v, want IgnoredError", err)
	}
	if ignored.StateName != "0" || ignored.Message != "ring" {
		t.Errorf("IgnoredError = %+v", ignored)
	}
	if inst.StateName() != "0" {
		t.Error("ignored message changed state")
	}
	if ignored.Error() == "" {
		t.Error("empty error string")
	}
}

func TestInstanceUnknownMessage(t *testing.T) {
	machine := buildChain(t)
	inst, err := New(machine, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var ignored *IgnoredError
	if _, err := inst.Deliver("bogus"); !errors.As(err, &ignored) {
		t.Fatalf("Deliver(bogus) = %v, want IgnoredError", err)
	}
}

func TestInstanceReset(t *testing.T) {
	machine := buildChain(t)
	inst, err := New(machine, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, m := range []string{"inc", "inc", "inc"} {
		if _, err := inst.Deliver(m); err != nil {
			t.Fatalf("Deliver(%s): %v", m, err)
		}
	}
	if !inst.Finished() {
		t.Fatal("not finished")
	}
	inst.Reset()
	if inst.Finished() || inst.StateName() != "0" {
		t.Errorf("after Reset: finished=%v state=%s", inst.Finished(), inst.StateName())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("New(nil) accepted")
	}
	if _, err := New(&core.StateMachine{}, nil); err == nil {
		t.Error("New with no start state accepted")
	}
}

func TestMachineAccessor(t *testing.T) {
	machine := buildChain(t)
	inst, err := New(machine, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Machine() != machine {
		t.Error("Machine() returned a different machine")
	}
	if inst.State() != machine.Start {
		t.Error("State() is not the start state")
	}
}
