package runtime

import (
	"context"
	"errors"
	"testing"

	"asagen/internal/commit"
	"asagen/internal/core"
	"asagen/internal/storage"
)

// chainModel is a three-state machine: 0 -inc-> 1 -inc-> 2 -inc-> FINISHED,
// with a "ring" phase transition from state 1.
type chainModel struct{}

func (chainModel) Name() string   { return "chain" }
func (chainModel) Parameter() int { return 2 }
func (chainModel) Components() []core.StateComponent {
	return []core.StateComponent{core.NewIntComponent("n", 2)}
}
func (chainModel) Messages() []string { return []string{"inc", "ring"} }
func (chainModel) Start() core.Vector { return core.Vector{0} }
func (chainModel) Apply(v core.Vector, msg string) (core.Effect, bool) {
	switch msg {
	case "inc":
		if v[0] == 2 {
			return core.Effect{Finished: true}, true
		}
		return core.Effect{Target: core.Vector{v[0] + 1}}, true
	case "ring":
		if v[0] != 1 {
			return core.Effect{}, false
		}
		return core.Effect{Target: core.Vector{1}, Actions: []string{"->bell"}}, true
	default:
		return core.Effect{}, false
	}
}
func (chainModel) DescribeState(core.Vector) []string { return nil }

func buildChain(t *testing.T) *core.StateMachine {
	t.Helper()
	m, err := core.Generate(context.Background(), chainModel{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return m
}

func TestInstanceWalk(t *testing.T) {
	machine := buildChain(t)
	var acted []string
	inst, err := New(machine, ActionFunc(func(a string) { acted = append(acted, a) }))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if inst.StateName() != "0" {
		t.Fatalf("start state = %s", inst.StateName())
	}
	if inst.Finished() {
		t.Fatal("finished at start")
	}

	if _, err := inst.Deliver("inc"); err != nil {
		t.Fatalf("inc: %v", err)
	}
	actions, err := inst.Deliver("ring")
	if err != nil {
		t.Fatalf("ring: %v", err)
	}
	if len(actions) != 1 || actions[0] != "->bell" {
		t.Fatalf("ring actions = %v", actions)
	}
	if len(acted) != 1 || acted[0] != "->bell" {
		t.Fatalf("handler saw %v", acted)
	}

	if _, err := inst.Deliver("inc"); err != nil {
		t.Fatalf("inc: %v", err)
	}
	if _, err := inst.Deliver("inc"); err != nil {
		t.Fatalf("final inc: %v", err)
	}
	if !inst.Finished() {
		t.Fatal("not finished after walking the chain")
	}
	if _, err := inst.Deliver("inc"); !errors.Is(err, ErrFinished) {
		t.Fatalf("Deliver after finish = %v, want ErrFinished", err)
	}
}

func TestInstanceIgnoredMessage(t *testing.T) {
	machine := buildChain(t)
	inst, err := New(machine, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	_, err = inst.Deliver("ring") // not applicable in state 0
	var ignored *IgnoredError
	if !errors.As(err, &ignored) {
		t.Fatalf("Deliver = %v, want IgnoredError", err)
	}
	if ignored.StateName != "0" || ignored.Message != "ring" {
		t.Errorf("IgnoredError = %+v", ignored)
	}
	if inst.StateName() != "0" {
		t.Error("ignored message changed state")
	}
	if ignored.Error() == "" {
		t.Error("empty error string")
	}
}

func TestInstanceUnknownMessage(t *testing.T) {
	machine := buildChain(t)
	inst, err := New(machine, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var ignored *IgnoredError
	if _, err := inst.Deliver("bogus"); !errors.As(err, &ignored) {
		t.Fatalf("Deliver(bogus) = %v, want IgnoredError", err)
	}
}

func TestInstanceReset(t *testing.T) {
	machine := buildChain(t)
	inst, err := New(machine, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, m := range []string{"inc", "inc", "inc"} {
		if _, err := inst.Deliver(m); err != nil {
			t.Fatalf("Deliver(%s): %v", m, err)
		}
	}
	if !inst.Finished() {
		t.Fatal("not finished")
	}
	inst.Reset()
	if inst.Finished() || inst.StateName() != "0" {
		t.Errorf("after Reset: finished=%v state=%s", inst.Finished(), inst.StateName())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("New(nil) accepted")
	}
	if _, err := New(&core.StateMachine{}, nil); err == nil {
		t.Error("New with no start state accepted")
	}
}

func TestMachineAccessor(t *testing.T) {
	machine := buildChain(t)
	inst, err := New(machine, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Machine() != machine {
		t.Error("Machine() returned a different machine")
	}
	if inst.State() != machine.Start {
		t.Error("State() is not the start state")
	}
}

// The remaining tests drive real generated scenario machines (not the
// synthetic chain) through the interpreter's error paths: unknown events,
// guard rejections, and fault-tolerance exhaustion — the cases a
// peer-set member hits when the network delivers more faults than the
// redundancy parameter covers.

func generateModel(t *testing.T, m core.Model) *core.StateMachine {
	t.Helper()
	machine, err := core.Generate(context.Background(), m, core.WithoutDescriptions())
	if err != nil {
		t.Fatalf("Generate(%s): %v", m.Name(), err)
	}
	return machine
}

func TestInstanceUnknownEventOnGeneratedMachine(t *testing.T) {
	model, err := storage.NewModel(4)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := New(generateModel(t, model), nil)
	if err != nil {
		t.Fatal(err)
	}
	var ignored *IgnoredError
	if _, err := inst.Deliver("NO_SUCH_EVENT"); !errors.As(err, &ignored) {
		t.Fatalf("Deliver(NO_SUCH_EVENT) = %v, want IgnoredError", err)
	}
	if ignored.Message != "NO_SUCH_EVENT" || ignored.StateName != inst.StateName() {
		t.Errorf("IgnoredError = %+v", ignored)
	}
}

func TestInstanceGuardRejection(t *testing.T) {
	model, err := storage.NewModel(4)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := New(generateModel(t, model), nil)
	if err != nil {
		t.Fatal(err)
	}
	// A fetch before the block is durable is guarded out, state unchanged.
	start := inst.StateName()
	var ignored *IgnoredError
	if _, err := inst.Deliver(storage.EvFetch); !errors.As(err, &ignored) {
		t.Fatalf("premature FETCH = %v, want IgnoredError", err)
	}
	if inst.StateName() != start {
		t.Error("rejected event changed state")
	}
	// An acknowledgement with no store in flight is likewise rejected.
	if _, err := inst.Deliver(storage.EvStoreAck); !errors.As(err, &ignored) {
		t.Fatalf("unsolicited STORE_ACK = %v, want IgnoredError", err)
	}

	// Counter saturation on the commit protocol: at r=4 only r−1 = 3 peer
	// votes exist, so a fourth vote is rejected by the generated guards.
	commitModel, err := commit.NewModel(4)
	if err != nil {
		t.Fatal(err)
	}
	inst, err = New(generateModel(t, commitModel), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := inst.Deliver(commit.MsgVote); err != nil {
			t.Fatalf("vote %d: %v", i+1, err)
		}
	}
	if _, err := inst.Deliver(commit.MsgVote); !errors.As(err, &ignored) {
		t.Fatalf("vote 4 of 3 = %v, want IgnoredError", err)
	}
}

func TestInstanceFaultToleranceExhaustion(t *testing.T) {
	model, err := storage.NewModel(7) // f = 2
	if err != nil {
		t.Fatal(err)
	}
	inst, err := New(generateModel(t, model), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Deliver(storage.EvStore); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < model.StoreQuorum(); i++ {
		if _, err := inst.Deliver(storage.EvStoreAck); err != nil {
			t.Fatalf("ack %d: %v", i+1, err)
		}
	}
	// The quorum discards the pending ack set: a late ack is rejected.
	var ignored *IgnoredError
	if _, err := inst.Deliver(storage.EvStoreAck); !errors.As(err, &ignored) {
		t.Fatalf("post-quorum ack = %v, want IgnoredError", err)
	}
	if _, err := inst.Deliver(storage.EvFetch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < model.FaultTolerance(); i++ {
		if _, err := inst.Deliver(storage.EvFetchMiss); err != nil {
			t.Fatalf("tolerated miss %d: %v", i+1, err)
		}
	}
	// The f+1-th miss exceeds the redundancy parameter: rejected, and the
	// machine still completes on the verified reply.
	if _, err := inst.Deliver(storage.EvFetchMiss); !errors.As(err, &ignored) {
		t.Fatalf("miss %d with f=%d = %v, want IgnoredError", model.FaultTolerance()+1, model.FaultTolerance(), err)
	}
	if _, err := inst.Deliver(storage.EvFetchOK); err != nil {
		t.Fatal(err)
	}
	if !inst.Finished() {
		t.Error("machine not finished after the verified reply")
	}
	if _, err := inst.Deliver(storage.EvFetchOK); !errors.Is(err, ErrFinished) {
		t.Errorf("delivery after finish = %v, want ErrFinished", err)
	}
}
