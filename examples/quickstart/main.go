// Quickstart: execute the abstract model of the BFT commit protocol for a
// chosen replication factor, inspect the generated machine family member,
// and run one commit round through the machine interpreter.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"asagen/internal/commit"
	"asagen/internal/core"
	"asagen/internal/models"
	"asagen/internal/render"
	"asagen/internal/runtime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Build the abstract model through the scenario registry: the
	// structure shared by every member of the FSM family, parameterised by
	// the replication factor.
	generic, err := models.Build("commit", 4)
	if err != nil {
		return err
	}
	model, ok := generic.(*commit.Model)
	if !ok {
		return fmt.Errorf("registry entry %q built %T, want *commit.Model", "commit", generic)
	}
	fmt.Printf("model %s: r=%d, tolerates f=%d Byzantine members\n",
		model.Name(), model.ReplicationFactor(), model.FaultTolerance())
	fmt.Printf("vote threshold %d (votes sent+received), commit threshold %d (received)\n\n",
		model.VoteThreshold(), model.CommitThreshold())

	// 2. Execute it: enumerate, generate transitions, prune, merge.
	machine, err := core.Generate(model)
	if err != nil {
		return err
	}
	fmt.Printf("generated machine: %d raw states -> %d reachable -> %d final (paper: 512 -> 48 -> 33)\n\n",
		machine.Stats.InitialStates, machine.Stats.ReachableStates, machine.Stats.FinalStates)

	// 3. Render one state in the paper's Fig. 14 textual format.
	state := machine.StateByName("T/2/F/0/F/F/F")
	if state == nil {
		state = machine.Start
	}
	fmt.Println(render.NewTextRenderer().RenderState(machine, state))

	// 4. Execute the machine: one uncontended commit round as seen by a
	// member that receives the client update while free.
	inst, err := runtime.New(machine, runtime.ActionFunc(func(action string) {
		fmt.Printf("    action: %s\n", action)
	}))
	if err != nil {
		return err
	}
	fmt.Println("driving one commit round through the interpreter:")
	for _, msg := range []string{
		commit.MsgFree, commit.MsgUpdate, commit.MsgVote, commit.MsgVote,
		commit.MsgCommit, commit.MsgCommit,
	} {
		if _, err := inst.Deliver(msg); err != nil {
			return fmt.Errorf("deliver %s: %w", msg, err)
		}
		fmt.Printf("  %-8s -> %s\n", msg, inst.StateName())
	}
	fmt.Printf("finished: %v\n", inst.Finished())
	return nil
}
