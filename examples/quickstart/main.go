// Quickstart: the public asagen SDK end to end — list the registered
// scenarios, execute the BFT commit model for a chosen replication
// factor, inspect the generated machine family member, render an
// artefact, and run one commit round through the machine interpreter.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"asagen"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	client := asagen.NewClient()
	ctx := context.Background()

	// 1. The scenario registry: every abstract model is selectable by
	// name, with its parameter semantics described in the metadata.
	fmt.Println("registered models:")
	for _, m := range client.Models() {
		fmt.Printf("  %-17s %s (%s, default %d)\n",
			m.Name, m.Description, m.ParamName, m.DefaultParam)
	}

	// 2. Execute the commit model: generate the machine family member for
	// replication factor 4. Repeated calls are answered from the client's
	// fingerprint-keyed cache.
	machine, err := client.Generate(ctx, "commit", asagen.WithParam(4))
	if err != nil {
		return err
	}
	f, _ := machine.FaultTolerance()
	st := machine.Stats()
	fmt.Printf("\nmodel %s: r=%d, tolerates f=%d Byzantine members\n",
		machine.ModelName(), machine.Parameter(), f)
	fmt.Printf("generated machine: %d raw states -> %d reachable -> %d final (paper: 512 -> 48 -> 33)\n",
		st.InitialStates, st.ReachableStates, st.FinalStates)
	fmt.Printf("fingerprint: %s\n\n", machine.Fingerprint()[:12])

	// 3. Render the paper's Fig. 14 textual catalogue; print its header.
	res, err := machine.Render("text")
	if err != nil {
		return err
	}
	for _, line := range strings.SplitN(string(res.Data), "\n", 6)[:5] {
		fmt.Println(line)
	}

	// 4. Execute the machine: one uncontended commit round as seen by a
	// member that receives the client update while free.
	inst, err := machine.NewInstance(func(action string) {
		fmt.Printf("    action: %s\n", action)
	})
	if err != nil {
		return err
	}
	fmt.Println("\ndriving one commit round through the interpreter:")
	for _, msg := range []string{"FREE", "UPDATE", "VOTE", "VOTE", "COMMIT", "COMMIT"} {
		if _, err := inst.Deliver(msg); err != nil {
			return fmt.Errorf("deliver %s: %w", msg, err)
		}
		fmt.Printf("  %-8s -> %s\n", msg, inst.StateName())
	}
	fmt.Printf("finished: %v\n", inst.Finished())
	return nil
}
