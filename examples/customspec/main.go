// Customspec: authoring a brand-new scenario purely through the public
// API — no adapter inside the repository, no fork, no recompile of the
// library. The example defines a leader-lease lifecycle as a declarative
// ModelSpec, registers it on a client, generates the machine family
// member, renders artefacts (including the parameter-independent EFSM),
// and drives one lease round through the interpreter.
//
// The scenario: a candidate campaigns for a leadership lease by
// collecting grants from its n peers. Unanimous grants promote it to
// leader (announcing "->lead"); a single denial aborts the campaign, and
// a leader's lease eventually expires, ending the lifecycle. One
// instance of the machine is one campaign.
//
//	go run ./examples/customspec
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"asagen"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// leaseSpec builds the leader-lease model: components, messages, guarded
// rules, state documentation, and the EFSM abstraction hints that let the
// efsm formats render a parameter-independent generalisation.
func leaseSpec() *asagen.ModelSpec {
	s := asagen.NewModelSpec("leader-lease").
		Description("leader election by unanimous lease grants from n peers").
		Parameter("peer count", 3, 2, 3, 5, 8).
		MinParam(2).
		Bool("leader").
		Int("grants", asagen.Param()).
		Messages("GRANT", "DENY", "EXPIRE")

	// Collecting grants: the decisive grant promotes to leader.
	s.Rule("GRANT").
		When("leader", "==", asagen.Lit(0)).
		When("grants", "==", asagen.Param().Plus(-1)).
		Add("grants", 1).
		Set("leader", asagen.Lit(1)).
		Do("->lead").
		Note("The final grant arrived: the lease is unanimous, announce leadership.")
	s.Rule("GRANT").
		When("leader", "==", asagen.Lit(0)).
		Add("grants", 1).
		Note("Count one more lease grant.")

	// A denial aborts the campaign; an expiry ends a leadership.
	s.Rule("DENY").
		When("leader", "==", asagen.Lit(0)).
		Do("->abort").
		Note("A peer denied the lease: abandon this campaign.").
		Finish()
	s.Rule("EXPIRE").
		When("leader", "==", asagen.Lit(1)).
		Do("->release").
		Note("The lease expired: step down and end the lifecycle.").
		Finish()

	s.DescribeWhen("Campaigning: collecting lease grants.", asagen.When("leader", "==", asagen.Lit(0))).
		DescribeWhen("Leading under a unanimous lease.", asagen.When("leader", "==", asagen.Lit(1))).
		DescribeWhen("{grants} of {param} grants collected.")

	// EFSM hints: coalesce the grant counter into a guarded variable, so
	// the whole family generalises to one campaign/leader machine.
	s.EFSMLabel("LEADER", asagen.When("leader", "==", asagen.Lit(1))).
		EFSMLabel("CAMPAIGNING").
		EFSMGuard("grants", "GRANT").
		EFSMCounter("GRANT", "grants", 1).
		EFSMSymbol(asagen.Param(), "n").
		EFSMSymbol(asagen.Param().Plus(-1), "n-1")
	return s
}

func run() error {
	spec := leaseSpec()
	// Compile early for its diagnostics; RegisterModel would do it too.
	if err := spec.Compile(); err != nil {
		return err
	}

	client := asagen.NewClient(asagen.WithIsolatedRegistry())
	if err := client.RegisterModel(spec); err != nil {
		return err
	}
	ctx := context.Background()

	// The registered spec is a first-class scenario: listed, generatable,
	// renderable, batchable.
	info, err := client.Model("leader-lease")
	if err != nil {
		return err
	}
	fmt.Printf("registered: %s — %s (%s, default %d, efsm=%v)\n\n",
		info.Name, info.Description, info.ParamName, info.DefaultParam, info.HasEFSM)

	machine, err := client.Generate(ctx, "leader-lease", asagen.WithParam(5))
	if err != nil {
		return err
	}
	st := machine.Stats()
	fmt.Printf("generated %s (n=%d): %d reachable states, %d after merging, %d transitions\n",
		machine.ModelName(), machine.Parameter(), st.ReachableStates, st.FinalStates, st.Transitions)
	fmt.Printf("fingerprint: %s\n\n", machine.Fingerprint()[:12])

	// Render the textual catalogue and the parameter-independent EFSM.
	text, err := client.Render(ctx, asagen.Request{Model: "leader-lease", Param: 5, Format: "text"})
	if err != nil {
		return err
	}
	fmt.Printf("text artefact: %d bytes (%s)\n", len(text.Data), text.FileName())
	efsm, err := client.Render(ctx, asagen.Request{Model: "leader-lease", Param: 5, Format: "efsm"})
	if err != nil {
		return err
	}
	fmt.Println("\nEFSM generalisation:")
	fmt.Println(strings.TrimRight(string(efsm.Data), "\n"))

	// Drive one campaign through the interpreter: four grants, the
	// decisive fifth, then expiry.
	var actions []string
	inst, err := machine.NewInstance(func(a string) { actions = append(actions, a) })
	if err != nil {
		return err
	}
	for i := 0; i < 5; i++ {
		if _, err := inst.Deliver("GRANT"); err != nil {
			return fmt.Errorf("grant %d: %w", i+1, err)
		}
	}
	if _, err := inst.Deliver("EXPIRE"); err != nil {
		return err
	}
	fmt.Printf("\none campaign: actions %v, finished=%v\n", actions, inst.Finished())
	return nil
}
