// Codegen: render every artefact class the paper generates from one
// abstract model execution — textual catalogue (Fig. 14), Graphviz and XML
// diagrams (Fig. 15), a compilable Go protocol implementation (Fig. 16),
// markdown documentation, and the nine-state EFSM of §5.3 — into an output
// directory.
//
//	go run ./examples/codegen [-r 7] [-out artefacts]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"asagen/internal/commit"
	"asagen/internal/core"
	"asagen/internal/render"
)

func main() {
	r := flag.Int("r", 7, "replication factor")
	out := flag.String("out", "artefacts", "output directory")
	flag.Parse()
	if err := run(*r, *out); err != nil {
		log.Fatal(err)
	}
}

func run(r int, outDir string) error {
	model, err := commit.NewModel(r)
	if err != nil {
		return err
	}
	machine, err := core.Generate(model)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	write := func(name, content string) error {
		path := filepath.Join(outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(content))
		return nil
	}

	if err := write(fmt.Sprintf("commit-r%d.txt", r),
		render.NewTextRenderer().Render(machine)); err != nil {
		return err
	}
	if err := write(fmt.Sprintf("commit-r%d.dot", r),
		render.NewDotRenderer().Render(machine)); err != nil {
		return err
	}
	xml, err := render.NewXMLRenderer().Render(machine)
	if err != nil {
		return err
	}
	if err := write(fmt.Sprintf("commit-r%d.xml", r), xml); err != nil {
		return err
	}
	src, err := render.NewGoSourceRenderer(fmt.Sprintf("commitfsm%d", r)).Render(machine)
	if err != nil {
		return err
	}
	if err := write(fmt.Sprintf("commitfsm%d.go", r), src); err != nil {
		return err
	}
	if err := write(fmt.Sprintf("commit-r%d.md", r),
		render.NewDocRenderer().Render(machine)); err != nil {
		return err
	}

	// The EFSM formulation: nine states, generic in the replication
	// factor.
	efsm, err := commit.GenerateEFSM(r)
	if err != nil {
		return err
	}
	if err := write("commit-efsm.txt", render.RenderEFSMText(efsm)); err != nil {
		return err
	}
	if err := write("commit-efsm.dot", render.RenderEFSMDot(efsm)); err != nil {
		return err
	}

	fmt.Printf("\nmachine: %d states, %d transitions; EFSM: %d states (generic in r)\n",
		len(machine.States), machine.TransitionCount(), len(efsm.States))
	return nil
}
