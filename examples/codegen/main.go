// Codegen: render every artefact class the paper generates from one
// abstract model execution — textual catalogue (Fig. 14), Graphviz and XML
// diagrams (Fig. 15), a compilable Go protocol implementation (Fig. 16),
// markdown documentation, and the nine-state EFSM of §5.3 — into an output
// directory, through the public SDK's streaming batch API. The machine is
// generated exactly once however many formats consume it.
//
//	go run ./examples/codegen [-model commit] [-r 7] [-out artefacts]
//	go run ./examples/codegen -model termination -r 4
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"asagen"
)

func main() {
	client := asagen.NewClient()
	modelNames := make([]string, 0, len(client.Models()))
	for _, m := range client.Models() {
		modelNames = append(modelNames, m.Name)
	}
	modelName := flag.String("model", "commit", "registered model: "+strings.Join(modelNames, ", "))
	r := flag.Int("r", 7, "model parameter")
	out := flag.String("out", "artefacts", "output directory")
	flag.Parse()
	if err := run(client, *modelName, *r, *out); err != nil {
		log.Fatal(err)
	}
}

func run(client *asagen.Client, modelName string, r int, outDir string) error {
	ctx := context.Background()
	info, err := client.Model(modelName)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	// One request per registered format; the client renders them
	// concurrently against a single memoised generation and streams
	// results as they complete.
	var reqs []asagen.Request
	for _, format := range client.Formats() {
		if client.IsEFSMFormat(format) && !info.HasEFSM {
			continue
		}
		reqs = append(reqs, asagen.Request{Model: info.Name, Param: r, Format: format})
	}

	for res := range client.Stream(ctx, reqs) {
		if res.Err != nil {
			return fmt.Errorf("%s/%s: %w", res.Model, res.Format, res.Err)
		}
		path := filepath.Join(outDir, res.FileName())
		if err := os.WriteFile(path, res.Data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(res.Data))
	}

	st := client.Stats()
	fmt.Printf("\n%d artefacts from %d machine generation(s); render hits/misses %d/%d\n",
		len(reqs), st.Generations, st.RenderHits, st.RenderMisses)
	return nil
}
