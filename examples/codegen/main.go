// Codegen: render every artefact class the paper generates from one
// abstract model execution — textual catalogue (Fig. 14), Graphviz and XML
// diagrams (Fig. 15), a compilable Go protocol implementation (Fig. 16),
// markdown documentation, and the nine-state EFSM of §5.3 — into an output
// directory. Any model in the registry can be rendered; the requests run
// through the artefact pipeline, so the machine is generated exactly once
// however many formats consume it.
//
//	go run ./examples/codegen [-model commit] [-r 7] [-out artefacts]
//	go run ./examples/codegen -model termination -r 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"asagen/internal/artifact"
	"asagen/internal/models"
	"asagen/internal/render"
)

func main() {
	modelName := flag.String("model", "commit", "registered model: "+strings.Join(models.Names(), ", "))
	r := flag.Int("r", 7, "model parameter")
	out := flag.String("out", "artefacts", "output directory")
	flag.Parse()
	if err := run(*modelName, *r, *out); err != nil {
		log.Fatal(err)
	}
}

func run(modelName string, r int, outDir string) error {
	entry, err := models.Get(modelName)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	// One request per registered format; the pipeline renders them
	// concurrently against a single memoised generation.
	var reqs []artifact.Request
	for _, format := range render.Formats() {
		if render.IsEFSMFormat(format) && entry.EFSM == nil {
			continue
		}
		reqs = append(reqs, artifact.Request{Model: entry.Name, Param: r, Format: format})
	}

	p := artifact.New()
	for _, res := range p.RenderAll(reqs) {
		if res.Err != nil {
			return fmt.Errorf("%s/%s: %w", res.Request.Model, res.Request.Format, res.Err)
		}
		path := filepath.Join(outDir, res.FileName())
		if err := os.WriteFile(path, res.Artifact.Data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(res.Artifact.Data))
	}

	st := p.Stats()
	fmt.Printf("\n%d artefacts from %d machine generation(s); render hits/misses %d/%d\n",
		len(reqs), st.Machine.Generations, st.RenderHits, st.RenderMisses)
	return nil
}
