// Codegen: render every artefact class the paper generates from one
// abstract model execution — textual catalogue (Fig. 14), Graphviz and XML
// diagrams (Fig. 15), a compilable Go protocol implementation (Fig. 16),
// markdown documentation, and the nine-state EFSM of §5.3 — into an output
// directory. Any model in the registry can be rendered.
//
//	go run ./examples/codegen [-model commit] [-r 7] [-out artefacts]
//	go run ./examples/codegen -model termination -r 4
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"asagen/internal/core"
	"asagen/internal/models"
	"asagen/internal/render"
)

func main() {
	modelName := flag.String("model", "commit", "registered model: "+strings.Join(models.Names(), ", "))
	r := flag.Int("r", 7, "model parameter")
	out := flag.String("out", "artefacts", "output directory")
	flag.Parse()
	if err := run(*modelName, *r, *out); err != nil {
		log.Fatal(err)
	}
}

func run(modelName string, r int, outDir string) error {
	entry, err := models.Get(modelName)
	if err != nil {
		return err
	}
	model, err := entry.Model(r)
	if err != nil {
		return err
	}
	machine, err := core.Generate(model)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	write := func(name, content string) error {
		path := filepath.Join(outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(content))
		return nil
	}

	base := fmt.Sprintf("%s-p%d", entry.Name, model.Parameter())
	if err := write(base+".txt", render.NewTextRenderer().Render(machine)); err != nil {
		return err
	}
	if err := write(base+".dot", render.NewDotRenderer().Render(machine)); err != nil {
		return err
	}
	xml, err := render.NewXMLRenderer().Render(machine)
	if err != nil {
		return err
	}
	if err := write(base+".xml", xml); err != nil {
		return err
	}
	pkg := fmt.Sprintf("%sfsm%d", strings.ReplaceAll(entry.Name, "-", ""), model.Parameter())
	src, err := render.NewGoSourceRenderer(pkg).Render(machine)
	if err != nil {
		return err
	}
	if err := write(pkg+".go", src); err != nil {
		return err
	}
	if err := write(base+".md", render.NewDocRenderer().Render(machine)); err != nil {
		return err
	}

	// The EFSM formulation: a fixed-size machine generic in the parameter.
	efsmStates := 0
	if entry.EFSM != nil {
		efsm, err := entry.EFSM(model.Parameter())
		if err != nil {
			return err
		}
		if err := write(entry.Name+"-efsm.txt", render.RenderEFSMText(efsm)); err != nil {
			return err
		}
		if err := write(entry.Name+"-efsm.dot", render.RenderEFSMDot(efsm)); err != nil {
			return err
		}
		efsmStates = len(efsm.States)
	}

	fmt.Printf("\nmachine: %d states, %d transitions; EFSM: %d states (generic in the parameter)\n",
		len(machine.States), machine.TransitionCount(), efsmStates)
	return nil
}
