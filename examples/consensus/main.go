// Consensus: the §5.2 applicability claim in action through the public
// SDK — the same generative machinery applied to the further
// message-counting algorithms in the model registry: a
// Chandra–Toueg-style consensus (rotating-coordinator round, majority
// thresholds) and Dijkstra–Scholten-style termination detection. For
// each, the FSM family member is generated for several parameter values,
// and the EFSM generalisation collapses the family to a
// parameter-independent machine.
//
//	go run ./examples/consensus
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"asagen"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// sweep generates the model's family member for each sweep parameter and
// prints the size trajectory, demonstrating that any registered scenario
// runs through the same reachability-first core.
func sweep(ctx context.Context, client *asagen.Client, info asagen.ModelInfo) error {
	for _, param := range info.SweepParams {
		machine, err := client.Generate(ctx, info.Name, asagen.WithParam(param))
		if err != nil {
			return err
		}
		st := machine.Stats()
		fmt.Printf("%s=%d: %5d raw states -> %3d final\n",
			info.ParamName, param, st.InitialStates, st.FinalStates)
	}
	return nil
}

func run() error {
	client := asagen.NewClient()
	ctx := context.Background()

	fmt.Println("== consensus (Chandra-Toueg style) ==")
	cinfo, err := client.Model("consensus")
	if err != nil {
		return err
	}
	if err := sweep(ctx, client, cinfo); err != nil {
		return err
	}

	// Drive one decided round on the generated n=5 machine.
	machine, err := client.Generate(ctx, "consensus", asagen.WithParam(5))
	if err != nil {
		return err
	}
	inst, err := machine.NewInstance(func(a string) {
		fmt.Printf("    action: %s\n", a)
	})
	if err != nil {
		return err
	}
	fmt.Println("coordinator's round on the n=5 machine:")
	for _, msg := range []string{
		"PROPOSE", "ESTIMATE", "ESTIMATE", "PROPOSAL", "ACK", "ACK",
	} {
		if _, err := inst.Deliver(msg); err != nil {
			return fmt.Errorf("deliver %s: %w", msg, err)
		}
		fmt.Printf("  %-9s -> %s\n", msg, inst.StateName())
	}
	fmt.Printf("decided: %v\n", inst.Finished())

	cefsm, err := client.Render(ctx, asagen.Request{Model: "consensus", Param: 7, Format: "efsm"})
	if err != nil {
		return err
	}
	fmt.Printf("consensus EFSM, independent of n:\n%s\n", firstLines(string(cefsm.Data), 3))

	fmt.Println("== termination detection (message counting) ==")
	tinfo, err := client.Model("termination")
	if err != nil {
		return err
	}
	if err := sweep(ctx, client, tinfo); err != nil {
		return err
	}

	// The EFSM generalisation renders through the same request surface as
	// every other artefact format.
	res, err := client.Render(ctx, asagen.Request{Model: "termination", Param: 4, Format: "efsm"})
	if err != nil {
		return err
	}
	fmt.Printf("\ntermination EFSM, independent of k:\n%s", res.Data)
	return nil
}

// firstLines returns the first n lines of s.
func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
