// Consensus: the §5.2 applicability claim in action — the same generative
// machinery applied to two further message-counting algorithms: a
// Chandra–Toueg-style consensus (rotating-coordinator round, majority
// thresholds) and Dijkstra–Scholten-style termination detection. For each,
// the FSM family member is generated for several parameter values, and the
// EFSM generalisation collapses the family to a parameter-independent
// machine.
//
//	go run ./examples/consensus
package main

import (
	"fmt"
	"log"

	"asagen/internal/consensus"
	"asagen/internal/core"
	"asagen/internal/render"
	"asagen/internal/runtime"
	"asagen/internal/termination"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== consensus (Chandra-Toueg style) ==")
	for _, n := range []int{3, 5, 7, 9} {
		model, err := consensus.NewModel(n)
		if err != nil {
			return err
		}
		machine, err := core.Generate(model, core.WithoutDescriptions())
		if err != nil {
			return err
		}
		fmt.Printf("n=%d (majority %d): %5d raw states -> %3d final\n",
			n, model.Majority(), machine.Stats.InitialStates, machine.Stats.FinalStates)
	}
	efsm, err := consensus.GenerateEFSM(7)
	if err != nil {
		return err
	}
	fmt.Printf("EFSM: %d states, independent of n: %v\n\n", len(efsm.States), efsm.StateNames())

	// Drive one decided round on the generated n=5 machine.
	model, err := consensus.NewModel(5)
	if err != nil {
		return err
	}
	machine, err := core.Generate(model, core.WithoutDescriptions())
	if err != nil {
		return err
	}
	inst, err := runtime.New(machine, runtime.ActionFunc(func(a string) {
		fmt.Printf("    action: %s\n", a)
	}))
	if err != nil {
		return err
	}
	fmt.Println("coordinator's round on the n=5 machine:")
	for _, msg := range []string{
		consensus.MsgPropose, consensus.MsgEstimate, consensus.MsgEstimate,
		consensus.MsgProposal, consensus.MsgAck, consensus.MsgAck,
	} {
		if _, err := inst.Deliver(msg); err != nil {
			return fmt.Errorf("deliver %s: %w", msg, err)
		}
		fmt.Printf("  %-9s -> %s\n", msg, inst.StateName())
	}
	fmt.Printf("decided: %v\n\n", inst.Finished())

	fmt.Println("== termination detection (message counting) ==")
	for _, k := range []int{1, 2, 4, 8} {
		tm, err := termination.NewModel(k)
		if err != nil {
			return err
		}
		tmachine, err := core.Generate(tm, core.WithoutDescriptions())
		if err != nil {
			return err
		}
		fmt.Printf("k=%d: %2d raw states -> %2d final\n",
			k, tmachine.Stats.InitialStates, tmachine.Stats.FinalStates)
	}
	tefsm, err := termination.GenerateEFSM(4)
	if err != nil {
		return err
	}
	fmt.Printf("EFSM: %d states, independent of k\n\n", len(tefsm.States))
	fmt.Println(render.RenderEFSMText(tefsm))
	return nil
}
