// Consensus: the §5.2 applicability claim in action — the same generative
// machinery applied to the further message-counting algorithms registered
// in the model registry: a Chandra–Toueg-style consensus
// (rotating-coordinator round, majority thresholds) and
// Dijkstra–Scholten-style termination detection. For each, the FSM family
// member is generated for several parameter values, and the EFSM
// generalisation collapses the family to a parameter-independent machine.
//
//	go run ./examples/consensus
package main

import (
	"fmt"
	"log"

	"asagen/internal/consensus"
	"asagen/internal/core"
	"asagen/internal/models"
	"asagen/internal/render"
	"asagen/internal/runtime"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// sweep generates the entry's family member for each sweep parameter and
// prints the size trajectory, demonstrating that any registered scenario
// runs through the same reachability-first core.
func sweep(entry models.Entry) error {
	for _, param := range entry.SweepParams {
		model, err := entry.Build(param)
		if err != nil {
			return err
		}
		machine, err := core.Generate(model, core.WithoutDescriptions())
		if err != nil {
			return err
		}
		fmt.Printf("%s=%d: %5d raw states -> %3d final\n",
			entry.ParamName, param, machine.Stats.InitialStates, machine.Stats.FinalStates)
	}
	return nil
}

func run() error {
	fmt.Println("== consensus (Chandra-Toueg style) ==")
	centry, err := models.Get("consensus")
	if err != nil {
		return err
	}
	if err := sweep(centry); err != nil {
		return err
	}
	efsm, err := centry.EFSM(7)
	if err != nil {
		return err
	}
	fmt.Printf("EFSM: %d states, independent of n: %v\n\n", len(efsm.States), efsm.StateNames())

	// Drive one decided round on the generated n=5 machine.
	model, err := centry.Build(5)
	if err != nil {
		return err
	}
	machine, err := core.Generate(model, core.WithoutDescriptions())
	if err != nil {
		return err
	}
	inst, err := runtime.New(machine, runtime.ActionFunc(func(a string) {
		fmt.Printf("    action: %s\n", a)
	}))
	if err != nil {
		return err
	}
	fmt.Println("coordinator's round on the n=5 machine:")
	for _, msg := range []string{
		consensus.MsgPropose, consensus.MsgEstimate, consensus.MsgEstimate,
		consensus.MsgProposal, consensus.MsgAck, consensus.MsgAck,
	} {
		if _, err := inst.Deliver(msg); err != nil {
			return fmt.Errorf("deliver %s: %w", msg, err)
		}
		fmt.Printf("  %-9s -> %s\n", msg, inst.StateName())
	}
	fmt.Printf("decided: %v\n\n", inst.Finished())

	fmt.Println("== termination detection (message counting) ==")
	tentry, err := models.Get("termination")
	if err != nil {
		return err
	}
	if err := sweep(tentry); err != nil {
		return err
	}
	tefsm, err := tentry.EFSM(4)
	if err != nil {
		return err
	}
	fmt.Printf("EFSM: %d states, independent of k\n\n", len(tefsm.States))
	fmt.Println(render.RenderEFSMText(tefsm))
	return nil
}
