// Storage cluster: the full ASA stack of the paper's Fig. 1 in simulation —
// a Chord overlay for key-based routing, the replicated block store
// (PID -> immutable data), and the version-history service (GUID ->
// sequence of PIDs) whose peer set executes the generated BFT commit
// machines, here with one Byzantine (silent) member and one corrupting
// block replica in the mix.
//
//	go run ./examples/storagecluster
package main

import (
	"context"
	"fmt"
	"log"

	"asagen/internal/chord"
	"asagen/internal/simnet"
	"asagen/internal/storage"
	"asagen/internal/version"
)

const (
	overlaySize       = 48
	replicationFactor = 4
	seed              = 2026
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := simnet.New(seed)
	ring, err := chord.Build(seed, overlaySize)
	if err != nil {
		return err
	}

	// Block storage on every overlay node; one replica will corrupt reads.
	blockNodes := make(map[simnet.NodeID]*storage.Node)
	for i, n := range ring.Nodes() {
		behaviour := storage.Honest
		if i == 7 {
			behaviour = storage.Corrupting
		}
		id := simnet.NodeID(n.Name())
		node := storage.NewNode(id, behaviour)
		blockNodes[id] = node
		if err := net.AddNode(id, node); err != nil {
			return err
		}
	}
	blocks, err := storage.NewEndpoint("block-client", net, ring, replicationFactor)
	if err != nil {
		return err
	}

	// The version service needs its own network identities for members.
	versionNet := simnet.New(seed + 1)
	svc, err := version.NewService(context.Background(), versionNet, ring, replicationFactor)
	if err != nil {
		return err
	}
	versions, err := svc.NewClient("version-client")
	if err != nil {
		return err
	}

	guid := storage.NewGUID("reports/design.txt")
	peers, err := svc.PeerSet(guid)
	if err != nil {
		return err
	}
	// Make one peer-set member Byzantine: the protocol tolerates f = 1.
	distinct := map[simnet.NodeID]bool{}
	for _, p := range peers {
		distinct[p] = true
	}
	for p := range distinct {
		if err := svc.SetBehaviour(p, version.SilentMember); err != nil {
			return err
		}
		fmt.Printf("member %s made Byzantine (silent)\n", p)
		break
	}

	// Store three versions of the file: the block layer holds the data,
	// the version layer agrees on the order.
	for i := 1; i <= 3; i++ {
		content := []byte(fmt.Sprintf("design document, revision %d", i))
		pid, err := blocks.Store(content)
		if err != nil {
			return fmt.Errorf("store v%d: %w", i, err)
		}
		if err := versions.Update(guid, pid); err != nil {
			return fmt.Errorf("commit v%d: %w", i, err)
		}
		fmt.Printf("v%d stored as %s and committed (attempts: %d)\n", i, pid.Short(), versions.Attempts)
	}
	net.Run(0)
	versionNet.Run(0)

	// Read back: agreed history from the version peers, verified content
	// from the block replicas (the corrupting replica is skipped by the
	// hash check).
	history, err := versions.History(guid)
	if err != nil {
		return err
	}
	fmt.Printf("\nagreed history has %d versions:\n", len(history))
	for i, pid := range history {
		data, err := blocks.Retrieve(pid)
		if err != nil {
			return fmt.Errorf("retrieve v%d: %w", i+1, err)
		}
		fmt.Printf("  v%d %s: %q\n", i+1, pid.Short(), data)
	}

	latest, err := versions.Latest(guid)
	if err != nil {
		return err
	}
	fmt.Printf("\nlatest version: %s\n", latest.Short())
	fmt.Printf("block network: %+v\n", net.Stats())
	fmt.Printf("version network: %+v\n", versionNet.Stats())
	return nil
}
