package asagen

import (
	"errors"

	"asagen/internal/spec"
)

// This file is the public model-authoring surface: a declarative,
// JSON-serialisable ModelSpec with a fluent builder, compiled into the
// same abstract-model form the built-in scenarios use. A compiled spec
// flows through the frontier-BFS generator, the fingerprint cache and
// every registered renderer unchanged — authoring a scenario no longer
// requires writing a Go adapter inside this repository (the paper's §3
// "compact parameterised specification", made first-class data).

// Value is a possibly parameter-affine integer used in component bounds,
// guards, assignments and EFSM symbol rules: a literal, or the model
// parameter plus an offset.
type Value struct {
	v spec.Value
}

// Lit returns the constant value n.
func Lit(n int) Value { return Value{v: spec.Lit(n)} }

// Param returns the model parameter (the replication factor, fan-out
// bound, … of the family member being generated).
func Param() Value { return Value{v: spec.ParamValue(0)} }

// Plus returns the value shifted by n, e.g. Param().Plus(-1).
func (v Value) Plus(n int) Value {
	v.v.Offset += n
	return v
}

// Comparison operators accepted by When: "==", "!=", "<", "<=", ">", ">=".

// Cond is one guard condition: a comparison of a state component against
// a Value.
type Cond struct {
	c spec.Cond
}

// When builds a guard condition, e.g. When("outstanding", "<", Param()).
func When(component, op string, v Value) Cond {
	return Cond{c: spec.Cond{Component: component, Op: op, Value: v.v}}
}

// SpecDiagnostic is one validation finding inside a model spec.
type SpecDiagnostic struct {
	// Path locates the offending field in the spec document, e.g.
	// "rules[2].when[0].component".
	Path string
	// Message explains the problem.
	Message string
}

// SpecError reports every problem found while compiling a ModelSpec; it
// matches ErrInvalidSpec under errors.Is.
type SpecError struct {
	// Name echoes the spec name, possibly empty.
	Name string
	// Diagnostics lists the problems in document order.
	Diagnostics []SpecDiagnostic
}

// Error implements error.
func (e *SpecError) Error() string {
	inner := &spec.Error{Name: e.Name}
	for _, d := range e.Diagnostics {
		inner.Diagnostics = append(inner.Diagnostics, spec.Diagnostic{Path: d.Path, Message: d.Message})
	}
	return inner.Error()
}

// ModelSpec is a declarative scenario specification under construction:
// state components, message vocabulary, guarded transition rules,
// per-state documentation, and optional EFSM abstraction hints. Build one
// with NewModelSpec, finish it with Compile (or let RegisterModel compile
// it), and register it on a Client. A ModelSpec is not safe for
// concurrent mutation; compiled forms are immutable and safe to share.
type ModelSpec struct {
	doc      spec.Doc
	rules    []*RuleSpec
	compiled *spec.Compiled
}

// NewModelSpec starts a spec registered under name. The name is the
// registry key (and URL path segment on the wire API): it must start with
// a letter and contain only letters, digits, '-', '_' or '.'.
func NewModelSpec(name string) *ModelSpec {
	return &ModelSpec{doc: spec.Doc{Name: name}}
}

// ParseModelSpec decodes the JSON form of a spec — the same document
// POST /v1/models accepts and fsmgen -spec reads. Unknown fields are
// rejected. The result still goes through Compile-time validation on
// registration.
func ParseModelSpec(data []byte) (*ModelSpec, error) {
	doc, err := spec.Parse(data)
	if err != nil {
		return nil, wrapSentinel(ErrInvalidSpec, err)
	}
	return &ModelSpec{doc: doc}, nil
}

// Name returns the registry key the spec registers under.
func (s *ModelSpec) Name() string { return s.doc.Name }

// touch invalidates the cached compilation after a mutation.
func (s *ModelSpec) touch() { s.compiled = nil }

// Description sets the one-line scenario summary shown by listings.
func (s *ModelSpec) Description(text string) *ModelSpec {
	s.touch()
	s.doc.Description = text
	return s
}

// ModelName sets the model identity stamped on generated machines and
// artefacts; it defaults to the registry name.
func (s *ModelSpec) ModelName(name string) *ModelSpec {
	s.touch()
	s.doc.ModelName = name
	return s
}

// Parameter names the model parameter, sets its default value and the
// representative sweep values (ascending).
func (s *ModelSpec) Parameter(name string, def int, sweep ...int) *ModelSpec {
	s.touch()
	s.doc.ParamName = name
	s.doc.DefaultParam = def
	s.doc.SweepParams = append([]int(nil), sweep...)
	return s
}

// MinParam sets the smallest accepted parameter value (default 1).
func (s *ModelSpec) MinParam(n int) *ModelSpec {
	s.touch()
	s.doc.MinParam = n
	return s
}

// Vocabulary names the message vocabulary for runtime layers (see
// ModelInfo.Vocabulary); most specs leave it empty.
func (s *ModelSpec) Vocabulary(v string) *ModelSpec {
	s.touch()
	s.doc.Vocabulary = v
	return s
}

// Bool declares a boolean state component.
func (s *ModelSpec) Bool(name string) *ModelSpec {
	s.touch()
	s.doc.Components = append(s.doc.Components, spec.Component{Name: name, Kind: spec.KindBool})
	return s
}

// Int declares an integer state component ranging over [0, max]; max may
// be parameter-affine, e.g. Int("outstanding", Param()).
func (s *ModelSpec) Int(name string, max Value) *ModelSpec {
	s.touch()
	s.doc.Components = append(s.doc.Components, spec.Component{Name: name, Kind: spec.KindInt, Max: max.v})
	return s
}

// Messages declares the receivable message types, in canonical order.
func (s *ModelSpec) Messages(msgs ...string) *ModelSpec {
	s.touch()
	s.doc.Messages = append(s.doc.Messages, msgs...)
	return s
}

// Start overrides the all-zero start vector; pass one value per declared
// component, in declaration order.
func (s *ModelSpec) Start(values ...Value) *ModelSpec {
	s.touch()
	s.doc.Start = nil
	for _, v := range values {
		s.doc.Start = append(s.doc.Start, v.v)
	}
	return s
}

// Rule starts a guarded reaction to msg. For each message the rules are
// tried in declaration order and the first rule whose conditions all hold
// fires; a message with no matching rule is ignored in that state.
func (s *ModelSpec) Rule(msg string) *RuleSpec {
	s.touch()
	r := &RuleSpec{spec: s, rule: spec.Rule{Message: msg}}
	s.rules = append(s.rules, r)
	return r
}

// DescribeWhen adds one line of per-state documentation emitted when all
// conditions hold (unconditional when none are given). The text may
// reference "{param}" and "{<component>}" placeholders.
func (s *ModelSpec) DescribeWhen(text string, when ...Cond) *ModelSpec {
	s.touch()
	s.doc.Describe = append(s.doc.Describe, spec.DescribeRule{When: conds(when), Text: text})
	return s
}

// abstraction lazily allocates the EFSM hint set.
func (s *ModelSpec) abstraction() *spec.Abstraction {
	if s.doc.Abstraction == nil {
		s.doc.Abstraction = &spec.Abstraction{}
	}
	return s.doc.Abstraction
}

// EFSMLabel adds an abstract-state labelling rule for EFSM generalisation:
// concrete states satisfying the conditions coalesce under the label. The
// first matching rule wins; the final rule must be unconditional.
// Declaring any EFSM hint enables the efsm formats for the model.
func (s *ModelSpec) EFSMLabel(label string, when ...Cond) *ModelSpec {
	s.touch()
	a := s.abstraction()
	a.Labels = append(a.Labels, spec.LabelRule{When: conds(when), Label: label})
	return s
}

// EFSMGuard names the counter component whose value selects among the
// messages' outcomes during EFSM generalisation.
func (s *ModelSpec) EFSMGuard(component string, msgs ...string) *ModelSpec {
	s.touch()
	a := s.abstraction()
	for _, msg := range msgs {
		a.Guards = append(a.Guards, spec.GuardRule{Message: msg, Component: component})
	}
	return s
}

// EFSMCounter declares the counter update an EFSM transition performs
// when msg is received, e.g. EFSMCounter("SPAWN", "outstanding", +1).
func (s *ModelSpec) EFSMCounter(msg, component string, delta int) *ModelSpec {
	s.touch()
	a := s.abstraction()
	a.Ops = append(a.Ops, spec.VarOpRule{Message: msg, Component: component, Delta: delta})
	return s
}

// EFSMSymbol renders the concrete counter value v as a
// parameter-independent expression in EFSM guards, e.g.
// EFSMSymbol(Param(), "k"). The first matching rule wins; unmatched values
// render as literals.
func (s *ModelSpec) EFSMSymbol(v Value, text string) *ModelSpec {
	s.touch()
	a := s.abstraction()
	a.Symbols = append(a.Symbols, spec.SymbolRule{Value: v.v, Text: text})
	return s
}

// Compile validates the spec. It returns nil when the spec is well
// formed, and otherwise an error matching ErrInvalidSpec whose *SpecError
// (via errors.As) lists every diagnostic with its document path. Compile
// is idempotent; RegisterModel calls it implicitly.
func (s *ModelSpec) Compile() error {
	_, err := s.compile()
	return err
}

// compile assembles and validates the document, memoising the result.
func (s *ModelSpec) compile() (*spec.Compiled, error) {
	if s.compiled != nil {
		return s.compiled, nil
	}
	doc := s.doc
	if len(s.rules) > 0 {
		doc.Rules = append([]spec.Rule(nil), doc.Rules...)
		for _, r := range s.rules {
			doc.Rules = append(doc.Rules, r.rule)
		}
	}
	compiled, err := spec.Compile(doc)
	if err != nil {
		var serr *spec.Error
		if errors.As(err, &serr) {
			pub := &SpecError{Name: serr.Name}
			for _, d := range serr.Diagnostics {
				pub.Diagnostics = append(pub.Diagnostics, SpecDiagnostic{Path: d.Path, Message: d.Message})
			}
			return nil, wrapSentinel(ErrInvalidSpec, pub)
		}
		return nil, wrapSentinel(ErrInvalidSpec, err)
	}
	s.compiled = compiled
	return compiled, nil
}

// JSON returns the spec's canonical JSON document — the body accepted by
// POST /v1/models and fsmgen -spec. The spec must compile.
func (s *ModelSpec) JSON() ([]byte, error) {
	compiled, err := s.compile()
	if err != nil {
		return nil, err
	}
	return compiled.JSON()
}

func conds(cs []Cond) []spec.Cond {
	if len(cs) == 0 {
		return nil
	}
	out := make([]spec.Cond, len(cs))
	for i, c := range cs {
		out[i] = c.c
	}
	return out
}

// RuleSpec builds one guarded transition reaction; its methods chain and
// mutate the rule in place.
type RuleSpec struct {
	spec *ModelSpec
	rule spec.Rule
}

// When adds a guard condition; all conditions must hold for the rule to
// fire.
func (r *RuleSpec) When(component, op string, v Value) *RuleSpec {
	r.spec.touch()
	r.rule.When = append(r.rule.When, spec.Cond{Component: component, Op: op, Value: v.v})
	return r
}

// Set overwrites a component with a value when the rule fires.
func (r *RuleSpec) Set(component string, v Value) *RuleSpec {
	r.spec.touch()
	val := v.v
	r.rule.Set = append(r.rule.Set, spec.Assign{Component: component, Set: &val})
	return r
}

// Add increments a component by delta when the rule fires.
func (r *RuleSpec) Add(component string, delta int) *RuleSpec {
	r.spec.touch()
	r.rule.Set = append(r.rule.Set, spec.Assign{Component: component, Add: delta})
	return r
}

// Do records the outgoing messages performed on the transition, e.g.
// "->vote".
func (r *RuleSpec) Do(actions ...string) *RuleSpec {
	r.spec.touch()
	r.rule.Actions = append(r.rule.Actions, actions...)
	return r
}

// Note documents the reaction; the lines appear as transition annotations
// in generated artefacts.
func (r *RuleSpec) Note(lines ...string) *RuleSpec {
	r.spec.touch()
	r.rule.Annotations = append(r.rule.Annotations, lines...)
	return r
}

// Finish marks the transition as entering the synthetic finish state: the
// algorithm instance has completed.
func (r *RuleSpec) Finish() *RuleSpec {
	r.spec.touch()
	r.rule.Finish = true
	return r
}
