package asagen_test

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"

	"asagen"
)

// ExampleClient_Generate executes the BFT commit model for replication
// factor 4 and inspects the generated family member — the paper's Table 1
// first row.
func ExampleClient_Generate() {
	client := asagen.NewClient()
	machine, err := client.Generate(context.Background(), "commit", asagen.WithParam(4))
	if err != nil {
		log.Fatal(err)
	}
	f, _ := machine.FaultTolerance()
	st := machine.Stats()
	fmt.Printf("%s r=%d tolerates f=%d\n", machine.ModelName(), machine.Parameter(), f)
	fmt.Printf("%d initial -> %d final states\n", st.InitialStates, st.FinalStates)
	// Output:
	// commit r=4 tolerates f=1
	// 512 initial -> 33 final states
}

// ExampleClient_Models lists the registered scenarios.
func ExampleClient_Models() {
	client := asagen.NewClient()
	for _, m := range client.Models() {
		if m.Vocabulary == asagen.VocabularyCommit {
			fmt.Printf("%s (default %s %d)\n", m.Name, m.ParamName, m.DefaultParam)
		}
	}
	// Output:
	// commit (default replication factor 4)
	// commit-redundant (default replication factor 4)
}

// ExampleClient_Render produces one artefact through the cached request
// surface; repeated requests cost neither generation nor rendering.
func ExampleClient_Render() {
	client := asagen.NewClient()
	res, err := client.Render(context.Background(), asagen.Request{Model: "commit", Format: "text"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(strings.SplitN(string(res.Data), "\n", 2)[0])
	fmt.Println("media type:", res.MediaType)
	// Output:
	// state machine: bft-commit
	// media type: text/plain; charset=utf-8
}

// ExampleClient_Stream renders a batch concurrently and consumes results
// as they complete, via the iterator API.
func ExampleClient_Stream() {
	client := asagen.NewClient()
	reqs := []asagen.Request{
		{Model: "commit", Format: "dot"},
		{Model: "consensus", Format: "dot"},
		{Model: "termination", Format: "dot"},
	}
	var names []string
	for res := range client.Stream(context.Background(), reqs) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		names = append(names, fmt.Sprintf("%s (%d bytes ok)", res.Model, min(1, len(res.Data))))
	}
	sort.Strings(names) // completion order is arbitrary
	for _, n := range names {
		fmt.Println(n)
	}
	// Output:
	// commit (1 bytes ok)
	// consensus (1 bytes ok)
	// termination (1 bytes ok)
}

// ExampleMachine_NewInstance drives one uncontended commit round through
// the machine interpreter.
func ExampleMachine_NewInstance() {
	client := asagen.NewClient()
	machine, err := client.Generate(context.Background(), "commit")
	if err != nil {
		log.Fatal(err)
	}
	inst, err := machine.NewInstance(nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, msg := range []string{"FREE", "UPDATE", "VOTE", "VOTE", "COMMIT", "COMMIT"} {
		if _, err := inst.Deliver(msg); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("finished:", inst.Finished())
	// Output:
	// finished: true
}
