#!/usr/bin/env bash
# wait-server.sh <base-url>: poll a just-started fsmgen server until its
# /v1/formats route answers, failing after ~10 seconds. Shared by every CI
# job that boots the server in the background.
set -euo pipefail
url="${1:?usage: wait-server.sh <base-url>}"
for _ in $(seq 1 50); do
  if curl -sf "$url/v1/formats" >/dev/null; then
    exit 0
  fi
  sleep 0.2
done
echo "server at $url did not come up" >&2
exit 1
