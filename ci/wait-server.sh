#!/usr/bin/env bash
# wait-server.sh <base-url-or-port>...: poll one or more just-started
# fsmgen servers until every /v1/formats route answers, failing after ~10
# seconds per server. A bare port argument is shorthand for
# http://localhost:<port>, so multi-node cluster jobs can wait on
# "8091 8092". Shared by every CI job that boots servers in the
# background.
set -euo pipefail
if [ "$#" -lt 1 ]; then
  echo "usage: wait-server.sh <base-url-or-port>..." >&2
  exit 2
fi
for target in "$@"; do
  case "$target" in
    *://*) url="$target" ;;
    *) url="http://localhost:$target" ;;
  esac
  up=0
  for _ in $(seq 1 50); do
    if curl -sf "$url/v1/formats" >/dev/null; then
      up=1
      break
    fi
    sleep 0.2
  done
  if [ "$up" -ne 1 ]; then
    echo "server at $url did not come up" >&2
    exit 1
  fi
done
