module asagen

go 1.24
