module asagen

go 1.23
