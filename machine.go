package asagen

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"

	"asagen/internal/core"
	"asagen/internal/render"
	"asagen/internal/runtime"
)

// Machine is one generated finite state machine family member: the result
// of executing an abstract model for a concrete parameter value. It can be
// rendered into any registered machine-artefact format and executed
// through an Instance. A Machine is immutable and safe for concurrent
// use.
type Machine struct {
	name    string
	param   int
	machine *core.StateMachine
	model   core.Model
	fp      core.Fingerprint
}

// MachineStats records the size of the state space at each stage of the
// generation pipeline, matching the columns of the paper's Table 1.
type MachineStats struct {
	// InitialStates is the raw component cross-product size, computed
	// arithmetically. When the product exceeds the addressable range it
	// saturates and InitialOverflow is set.
	InitialStates   int
	InitialOverflow bool
	// ReachableStates counts states reachable from the start state;
	// FinalStates the count after merging equivalent states.
	ReachableStates int
	FinalStates     int
	// Transitions is the total transition count of the final machine.
	Transitions int
}

// ModelName returns the registry name of the model that generated the
// machine.
func (m *Machine) ModelName() string { return m.name }

// Parameter returns the parameter value the model was executed with.
func (m *Machine) Parameter() int { return m.param }

// Messages returns the message types the machine reacts to.
func (m *Machine) Messages() []string {
	return append([]string(nil), m.machine.Messages...)
}

// StateNames returns the machine's state names, start state first.
func (m *Machine) StateNames() []string { return m.machine.StateNames() }

// StartState returns the name of the machine's initial state.
func (m *Machine) StartState() string { return m.machine.Start.Name }

// Stats returns the generation-stage state counts.
func (m *Machine) Stats() MachineStats {
	return MachineStats{
		InitialStates:   m.machine.Stats.InitialStates,
		InitialOverflow: m.machine.Stats.InitialOverflow,
		ReachableStates: m.machine.Stats.ReachableStates,
		FinalStates:     m.machine.Stats.FinalStates,
		Transitions:     m.machine.TransitionCount(),
	}
}

// Fingerprint returns the hex fingerprint identifying this family member
// together with the generation options that produced it. Equal
// fingerprints guarantee bit-identical artefacts in every format.
func (m *Machine) Fingerprint() string { return m.fp.String() }

// FaultTolerance returns the model's tolerated fault count and true when
// the model exposes one (e.g. the commit protocol's f = ⌊(r−1)/3⌋).
func (m *Machine) FaultTolerance() (int, bool) {
	if ft, ok := m.model.(interface{ FaultTolerance() int }); ok {
		return ft.FaultTolerance(), true
	}
	return 0, false
}

// Render produces the artefact for one machine-artefact format (EFSM
// formats generalise the whole family rather than one member; request
// those through Client.Render). Rendering is not memoised here — use
// Client.Render for the cached path.
func (m *Machine) Render(format string, opts ...RenderOption) (Result, error) {
	out := Result{Model: m.name, Param: m.param, Format: format, Fingerprint: m.fp.String()}
	renderer, err := render.New(format)
	if err != nil {
		out.Err = mapErr(err)
		return out, out.Err
	}
	var goPackage string
	for _, opt := range opts {
		if opt.goPackage != "" {
			goPackage = opt.goPackage
		}
	}
	if g, ok := renderer.(*render.GoSourceRenderer); ok && goPackage != "" {
		g.PackageName = goPackage
	}
	art, err := renderer.Render(m.machine)
	if err != nil {
		out.Err = wrapSentinel(ErrRender, err)
		return out, out.Err
	}
	sum := sha256.Sum256(art.Data)
	out.MediaType = art.MediaType
	out.Ext = art.Ext
	out.Data = art.Data
	out.ContentHash = hex.EncodeToString(sum[:])
	return out, nil
}

// NewInstance returns a running occurrence of the machine, positioned at
// its start state. onAction, when non-nil, receives the actions performed
// on each transition (e.g. "->vote"), in order.
func (m *Machine) NewInstance(onAction func(action string)) (*Instance, error) {
	var handler runtime.ActionHandler
	if onAction != nil {
		handler = runtime.ActionFunc(onAction)
	}
	inst, err := runtime.New(m.machine, handler)
	if err != nil {
		return nil, err
	}
	return &Instance{inst: inst}, nil
}

// Instance executes a generated machine by interpretation: incoming
// messages drive it along its transitions (the paper's dynamic-deployment
// path, §4.2).
type Instance struct {
	inst *runtime.Instance
}

// Deliver feeds one message to the machine and returns the actions
// performed (already dispatched to the action handler, in order). A
// rejected delivery leaves the state unchanged and returns a typed
// error: *IgnoredError (match with errors.As) when the message is not
// applicable in the current state, ErrFinished (match with errors.Is)
// when the machine has already finished.
func (i *Instance) Deliver(msg string) ([]string, error) {
	actions, err := i.inst.Deliver(msg)
	if err != nil {
		return nil, mapDeliverErr(err)
	}
	return actions, nil
}

// mapDeliverErr lifts runtime delivery failures to the public typed
// errors.
func mapDeliverErr(err error) error {
	var ignored *runtime.IgnoredError
	switch {
	case errors.Is(err, runtime.ErrFinished):
		return wrapSentinel(ErrFinished, err)
	case errors.As(err, &ignored):
		return &IgnoredError{State: ignored.StateName, Message: ignored.Message}
	default:
		return err
	}
}

// StateName returns the name of the current state.
func (i *Instance) StateName() string { return i.inst.StateName() }

// Finished reports whether the machine has reached its finish state.
func (i *Instance) Finished() bool { return i.inst.Finished() }

// Reset returns the machine to its start state.
func (i *Instance) Reset() { i.inst.Reset() }
