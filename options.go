package asagen

import (
	"fmt"
	"sort"
	"strings"

	"asagen/internal/core"
)

// ClientOption configures a Client at construction time.
type ClientOption func(*clientConfig)

type clientConfig struct {
	jobs       int
	cacheLimit int
	isolated   bool
	genOpts    []GenerateOption
}

// WithJobs bounds the worker pool used by RenderAll and Stream. Values
// below 1 select GOMAXPROCS.
func WithJobs(n int) ClientOption {
	return func(c *clientConfig) { c.jobs = n }
}

// WithCacheLimit bounds the number of generated machines the client keeps
// memoised; least recently used machines are evicted beyond it. Zero (the
// default) means unbounded. Long-running services should set a limit so an
// unbounded parameter stream cannot grow memory without bound.
func WithCacheLimit(n int) ClientOption {
	return func(c *clientConfig) { c.cacheLimit = n }
}

// WithIsolatedRegistry gives the client its own clone of the scenario
// registry (seeded with the built-in models), so RegisterModel and
// UnregisterModel never affect — and are never affected by — other
// clients in the process. Long-running multi-tenant services should
// isolate; short-lived tools may prefer the shared default.
func WithIsolatedRegistry() ClientOption {
	return func(c *clientConfig) { c.isolated = true }
}

// WithGenerateOptions applies generation options to every machine the
// client generates or renders. Options that change the generated machine
// are part of the machine's identity, so clients constructed with
// different options never share cached work.
func WithGenerateOptions(opts ...GenerateOption) ClientOption {
	return func(c *clientConfig) { c.genOpts = append(c.genOpts, opts...) }
}

// GenerateOption configures one Generate call (or, via
// WithGenerateOptions, every generation a client performs).
type GenerateOption struct {
	// key identifies behaviour-changing options so per-call option sets
	// map onto distinct memoisation caches; empty for request-scoped
	// options like WithParam.
	key string
	// opt is the corresponding core option; nil for request-scoped
	// options.
	opt core.Option
	// param/setParam carry WithParam.
	param    int
	setParam bool
	// fresh marks WithoutCache.
	fresh bool
}

// WithParam selects the model parameter (replication factor, process
// count, fan-out bound — see ModelInfo.ParamName). Values <= 0 select the
// model's default. Ignored when passed at client level.
func WithParam(r int) GenerateOption {
	return GenerateOption{param: r, setParam: true}
}

// WithoutCache makes the Generate call bypass the client's machine cache:
// the machine is generated from scratch and not memoised. Intended for
// benchmarking generation cost.
func WithoutCache() GenerateOption {
	return GenerateOption{fresh: true}
}

// WithoutMerging disables the equivalent-state merging step (§3.4 step 4).
func WithoutMerging() GenerateOption {
	return GenerateOption{key: "no-merge", opt: core.WithoutMerging()}
}

// WithoutPruning selects the legacy full-enumeration pipeline instead of
// reachability-first exploration; the cross product must fit in an int or
// Generate fails with ErrStateSpaceOverflow.
func WithoutPruning() GenerateOption {
	return GenerateOption{key: "no-prune", opt: core.WithoutPruning()}
}

// WithSinglePassMerge performs exactly one round of equivalent-state
// merging instead of iterating to a fixpoint.
func WithSinglePassMerge() GenerateOption {
	return GenerateOption{key: "single-pass-merge", opt: core.WithSinglePassMerge()}
}

// WithoutDescriptions skips attaching per-state documentation, which
// speeds up generation for large parameter values.
func WithoutDescriptions() GenerateOption {
	return GenerateOption{key: "no-descriptions", opt: core.WithoutDescriptions()}
}

// WithWorkers shards frontier expansion across n goroutines. The generated
// machine is bit-identical to the serial result, so worker count never
// fragments the cache key space.
func WithWorkers(n int) GenerateOption {
	return GenerateOption{key: fmt.Sprintf("workers=%d", n), opt: core.WithWorkers(n)}
}

// splitGenerateOptions separates request-scoped parts (param, fresh) from
// behaviour-changing core options, and derives the stable cache key of the
// behaviour set.
func splitGenerateOptions(opts []GenerateOption) (param int, setParam, fresh bool, coreOpts []core.Option, key string) {
	var keys []string
	for _, o := range opts {
		if o.setParam {
			param, setParam = o.param, true
		}
		if o.fresh {
			fresh = true
		}
		if o.opt != nil {
			coreOpts = append(coreOpts, o.opt)
			keys = append(keys, o.key)
		}
	}
	sort.Strings(keys)
	return param, setParam, fresh, coreOpts, strings.Join(keys, ",")
}

// RenderOption configures one Machine.Render call.
type RenderOption struct {
	goPackage string
}

// WithGoPackage sets the package clause of the "go" format's generated
// source. Empty (the default) derives the name from the machine.
func WithGoPackage(name string) RenderOption {
	return RenderOption{goPackage: name}
}
