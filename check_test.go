package asagen_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"asagen"
)

// collectVerdicts drains a verdict stream into a slice.
func collectVerdicts(t *testing.T, seq func(func(asagen.Verdict) bool)) []asagen.Verdict {
	t.Helper()
	var out []asagen.Verdict
	for v := range seq {
		out = append(out, v)
	}
	return out
}

// conformingCommitTrace drives one commit member (r=4) to its finish
// state, matching TestInstanceExecution's delivery sequence.
const conformingCommitTrace = `{"msg":"FREE"}
"UPDATE"
{"msg":"VOTE","from":"m1"}
{"msg":"VOTE","from":"m2"}
"COMMIT"
"COMMIT"
`

func TestCheckConforming(t *testing.T) {
	client := asagen.NewClient()
	seq, err := client.Check(context.Background(), "commit",
		strings.NewReader(conformingCommitTrace), asagen.WithTraceParam(4))
	if err != nil {
		t.Fatal(err)
	}
	verdicts := collectVerdicts(t, seq)
	var kinds []asagen.VerdictKind
	for _, v := range verdicts {
		kinds = append(kinds, v.Kind)
	}
	want := []asagen.VerdictKind{
		asagen.VerdictAccepted, asagen.VerdictAccepted, asagen.VerdictAccepted,
		asagen.VerdictAccepted, asagen.VerdictAccepted, asagen.VerdictAccepted,
		asagen.VerdictFinished, asagen.VerdictSummary,
	}
	if len(kinds) != len(want) {
		t.Fatalf("verdict kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("verdict kinds = %v, want %v", kinds, want)
		}
	}
	summary := verdicts[len(verdicts)-1]
	if summary.Stats == nil {
		t.Fatal("summary verdict has no stats")
	}
	st := summary.Stats
	if !st.Conforming() || !st.Finished || st.Accepted != 6 || st.Events != 6 || st.Lines != 6 {
		t.Errorf("summary stats = %+v", st)
	}
	if st.FinalState == "" {
		t.Error("summary final state empty")
	}
	// Accepted verdicts carry the post-delivery state and the line.
	if verdicts[1].Line != 2 || verdicts[1].Event != "UPDATE" || verdicts[1].State == "" {
		t.Errorf("second verdict = %+v", verdicts[1])
	}
}

func TestCheckViolation(t *testing.T) {
	client := asagen.NewClient()
	// An out-of-vocabulary message is never applicable.
	seq, err := client.Check(context.Background(), "commit",
		strings.NewReader("\"UPDATE\"\n\"NOPE\"\n\"VOTE\"\n"), asagen.WithTraceParam(4))
	if err != nil {
		t.Fatal(err)
	}
	verdicts := collectVerdicts(t, seq)
	if len(verdicts) != 3 {
		t.Fatalf("got %d verdicts %+v, want accepted+violation+summary", len(verdicts), verdicts)
	}
	if verdicts[1].Kind != asagen.VerdictViolation || verdicts[1].Line != 2 {
		t.Errorf("violation verdict = %+v", verdicts[1])
	}
	if verdicts[1].Detail == "" {
		t.Error("violation verdict has no detail")
	}
	summary := verdicts[2]
	if summary.Kind != asagen.VerdictSummary || summary.Stats == nil {
		t.Fatalf("terminal verdict = %+v", summary)
	}
	if summary.Stats.Conforming() || summary.Stats.FirstViolation != 2 || summary.Stats.Violations != 1 {
		t.Errorf("summary stats = %+v", summary.Stats)
	}
}

func TestCheckToleranceAndKeepGoing(t *testing.T) {
	client := asagen.NewClient()
	trace := "\"NOPE\"\n\"NOPE\"\n\"NOPE\"\n"
	seq, err := client.Check(context.Background(), "commit", strings.NewReader(trace),
		asagen.WithTraceParam(4), asagen.WithTolerance(1), asagen.WithKeepGoing())
	if err != nil {
		t.Fatal(err)
	}
	verdicts := collectVerdicts(t, seq)
	var ignored, violations int
	for _, v := range verdicts {
		switch v.Kind {
		case asagen.VerdictIgnored:
			ignored++
		case asagen.VerdictViolation:
			violations++
		}
	}
	if ignored != 1 || violations != 2 {
		t.Errorf("ignored=%d violations=%d, want 1 and 2 (keep-going)", ignored, violations)
	}
	st := verdicts[len(verdicts)-1].Stats
	if st == nil || st.Violations != 2 || st.Ignored != 1 {
		t.Errorf("summary stats = %+v", st)
	}
}

func TestCheckRegexFormat(t *testing.T) {
	client := asagen.NewClient()
	trace := "12:00:01 member recv FREE from peer\n# log noise without any event\n12:00:02 member recv UPDATE\n"
	seq, err := client.Check(context.Background(), "commit", strings.NewReader(trace),
		asagen.WithTraceParam(4), asagen.WithTraceFormat(asagen.TraceFormatRegex))
	if err != nil {
		t.Fatal(err)
	}
	verdicts := collectVerdicts(t, seq)
	var kinds []asagen.VerdictKind
	for _, v := range verdicts {
		kinds = append(kinds, v.Kind)
	}
	want := []asagen.VerdictKind{asagen.VerdictAccepted, asagen.VerdictSkipped,
		asagen.VerdictAccepted, asagen.VerdictSummary}
	if len(kinds) != len(want) {
		t.Fatalf("verdict kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("verdict kinds = %v, want %v", kinds, want)
		}
	}
	if verdicts[0].Event != "FREE" || verdicts[2].Event != "UPDATE" {
		t.Errorf("decoded events = %q, %q", verdicts[0].Event, verdicts[2].Event)
	}
}

func TestCheckCustomPattern(t *testing.T) {
	client := asagen.NewClient()
	trace := "deliver msg=vote\ndeliver msg=update\n"
	seq, err := client.Check(context.Background(), "commit", strings.NewReader(trace),
		asagen.WithTraceParam(4), asagen.WithTolerance(1),
		asagen.WithTracePattern(`msg=(\w+)=>{$1}`), asagen.WithTracePattern(`msg=(\w+)`))
	if err != nil {
		t.Fatal(err)
	}
	_ = seq
	// The first pattern wins and uppercasing is the caller's problem; use
	// a template mapping lowercase to the machine vocabulary instead.
	seq, err = client.Check(context.Background(), "commit", strings.NewReader("deliver msg=update\n"),
		asagen.WithTraceParam(4), asagen.WithTracePattern(`msg=update=>UPDATE`))
	if err != nil {
		t.Fatal(err)
	}
	verdicts := collectVerdicts(t, seq)
	if len(verdicts) != 2 || verdicts[0].Kind != asagen.VerdictAccepted || verdicts[0].Event != "UPDATE" {
		t.Fatalf("verdicts = %+v", verdicts)
	}
}

func TestCheckMalformedTrace(t *testing.T) {
	client := asagen.NewClient()
	seq, err := client.Check(context.Background(), "commit",
		strings.NewReader("\"UPDATE\"\n{broken\n"), asagen.WithTraceParam(4))
	if err != nil {
		t.Fatal(err)
	}
	verdicts := collectVerdicts(t, seq)
	last := verdicts[len(verdicts)-1]
	if last.Kind != asagen.VerdictMalformed || last.Line != 2 || last.Detail == "" {
		t.Errorf("terminal verdict = %+v, want malformed at line 2", last)
	}
	if last.Stats != nil {
		t.Error("malformed verdict carries stats")
	}
}

func TestCheckPreflightErrors(t *testing.T) {
	client := asagen.NewClient()
	ctx := context.Background()
	if _, err := client.Check(ctx, "nonsense", strings.NewReader("")); !errors.Is(err, asagen.ErrUnknownModel) {
		t.Errorf("unknown model error = %v, want ErrUnknownModel", err)
	}
	if _, err := client.Check(ctx, "commit", strings.NewReader(""),
		asagen.WithTraceFormat("xml")); !errors.Is(err, asagen.ErrBadTrace) {
		t.Errorf("bad format error = %v, want ErrBadTrace", err)
	}
	if _, err := client.Check(ctx, "commit", strings.NewReader(""),
		asagen.WithTracePattern("([broken")); !errors.Is(err, asagen.ErrBadTrace) {
		t.Errorf("bad pattern error = %v, want ErrBadTrace", err)
	}
}

func TestCheckEarlyBreak(t *testing.T) {
	client := asagen.NewClient()
	seq, err := client.Check(context.Background(), "commit",
		strings.NewReader(conformingCommitTrace), asagen.WithTraceParam(4))
	if err != nil {
		t.Fatal(err)
	}
	var got int
	for range seq {
		got++
		break
	}
	if got != 1 {
		t.Fatalf("consumed %d verdicts after break", got)
	}
}

func TestCheckCancellation(t *testing.T) {
	client := asagen.NewClient()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seq, err := client.Check(ctx, "commit",
		strings.NewReader(conformingCommitTrace), asagen.WithTraceParam(4))
	if err != nil {
		t.Fatal(err)
	}
	var verdicts []asagen.Verdict
	for v := range seq {
		verdicts = append(verdicts, v)
		cancel()
	}
	last := verdicts[len(verdicts)-1]
	if last.Kind != asagen.VerdictAborted {
		t.Errorf("terminal verdict after cancel = %+v, want aborted", last)
	}
	if !strings.Contains(last.Detail, "context canceled") {
		t.Errorf("aborted detail = %q", last.Detail)
	}
}

// TestCheckVerdictJSON pins the canonical verdict encoding the SDK, CLI
// and API all emit.
func TestCheckVerdictJSON(t *testing.T) {
	client := asagen.NewClient()
	seq, err := client.Check(context.Background(), "commit",
		strings.NewReader("\"UPDATE\"\n\"NOPE\"\n"), asagen.WithTraceParam(4))
	if err != nil {
		t.Fatal(err)
	}
	verdicts := collectVerdicts(t, seq)
	if len(verdicts) != 3 {
		t.Fatalf("got %d verdicts", len(verdicts))
	}
	got, err := json.Marshal(verdicts[2])
	if err != nil {
		t.Fatal(err)
	}
	want := `{"kind":"summary","stats":{"lines":2,"events":2,"accepted":1,"ignored":0,"skipped":0,"violations":1,"first_violation":2,"finished":false,"final_state":` +
		string(mustJSON(t, verdicts[2].Stats.FinalState)) + `}}`
	if string(got) != want {
		t.Errorf("summary JSON = %s\nwant %s", got, want)
	}
	got, err = json.Marshal(verdicts[0])
	if err != nil {
		t.Fatal(err)
	}
	wantPrefix := `{"line":1,"event":"UPDATE","kind":"accepted","state":`
	if !strings.HasPrefix(string(got), wantPrefix) {
		t.Errorf("accepted JSON = %s\nwant prefix %s", got, wantPrefix)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDeliverTypedErrors pins the satellite contract: runtime delivery
// failure classes surface as matchable typed errors on the SDK Instance.
func TestDeliverTypedErrors(t *testing.T) {
	client := asagen.NewClient()
	machine, err := client.Generate(context.Background(), "commit", asagen.WithParam(4))
	if err != nil {
		t.Fatal(err)
	}
	inst, err := machine.NewInstance(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Out of vocabulary, so never applicable: *IgnoredError via errors.As.
	_, err = inst.Deliver("NOPE")
	var ignored *asagen.IgnoredError
	if !errors.As(err, &ignored) {
		t.Fatalf("Deliver(NOPE) at start = %v, want *IgnoredError", err)
	}
	if ignored.Message != "NOPE" || ignored.State == "" {
		t.Errorf("IgnoredError = %+v", ignored)
	}
	if !strings.Contains(ignored.Error(), "NOPE") {
		t.Errorf("IgnoredError message = %q", ignored.Error())
	}
	// ErrFinished is not an IgnoredError and vice versa.
	if errors.Is(err, asagen.ErrFinished) {
		t.Error("IgnoredError matches ErrFinished")
	}
	for _, msg := range []string{"FREE", "UPDATE", "VOTE", "VOTE", "COMMIT", "COMMIT"} {
		if _, err := inst.Deliver(msg); err != nil {
			t.Fatalf("deliver %s: %v", msg, err)
		}
	}
	if !inst.Finished() {
		t.Fatal("round did not finish")
	}
	_, err = inst.Deliver("UPDATE")
	if !errors.Is(err, asagen.ErrFinished) {
		t.Fatalf("Deliver after finish = %v, want ErrFinished", err)
	}
	if errors.As(err, &ignored) {
		t.Error("ErrFinished matches *IgnoredError")
	}
}
